// Package opentla is a Go reproduction of Martín Abadi and Leslie
// Lamport's "Open Systems in TLA" (PODC 1994): assumption/guarantee
// specifications E ⊳ M written in a TLA fragment, the Composition Theorem
// for conjunctions of such specifications, and an explicit-state model
// checker that discharges the theorem's hypotheses mechanically.
//
// The implementation lives under internal/:
//
//	value, state   — the TLA value universe, states, behaviors, lassos
//	form           — expressions, actions, temporal formulas, ⊳ + ⊥ C(·)
//	spec           — canonical-form component specifications (§2.2)
//	ts             — transition systems, state graphs, monitor products
//	check          — safety/liveness model checking, fair-cycle search
//	ag             — the Composition Theorem (§5), Corollary, Propositions
//	handshake      — the two-phase handshake channel substrate (§A.1)
//	queue          — the queue example, CDQ ⇒ CQ^dbl, Figure 9 (App. A)
//	circular       — the §1 introductory examples
//	trace          — Figure 2-style trace rendering
//
// The benchmarks in this directory regenerate every figure and result of
// the paper; see EXPERIMENTS.md for the index.
package opentla
