package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opentla/internal/models"
)

var update = flag.Bool("update", false, "rewrite the specvet -json golden file")

func TestAllModelsPass(t *testing.T) {
	// The bundled models carry a handful of info-level findings (the
	// paper's own queue fairness subscript triggers SV034) but nothing
	// that fails: every model line is either "clean" or a 0-errors,
	// 0-warnings summary.
	var out, errb bytes.Buffer
	code := run(nil, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, name := range models.Names() {
		clean := strings.Contains(out.String(), name+": clean")
		summary := strings.Contains(out.String(), name+": 0 errors, 0 warnings")
		if !clean && !summary {
			t.Errorf("model %s neither clean nor 0-errors in stdout:\n%s", name, out.String())
		}
	}
}

func TestStrictAllModelsStillClean(t *testing.T) {
	// The bundled models carry no warnings either, so -strict passes too.
	var out, errb bytes.Buffer
	if code := run([]string{"-strict"}, &out, &errb); code != 0 {
		t.Errorf("exit code = %d, want 0\nstdout: %s", code, out.String())
	}
}

func TestSingleModel(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-model", "queue"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "queue: 0 errors, 0 warnings") {
		t.Errorf("stdout missing the queue summary line:\n%s", got)
	}
	for _, other := range []string{"handshake", "doublequeue", "arbiter", "circular"} {
		if strings.Contains(got, other+":") {
			t.Errorf("-model queue output mentions %s:\n%s", other, got)
		}
	}
}

func TestExamplesFlag(t *testing.T) {
	// -examples appends the examples/ compositions after the registry
	// models; they must pass -strict (CI runs exactly this invocation).
	var out, errb bytes.Buffer
	if code := run([]string{"-strict", "-examples"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, m := range models.Examples() {
		clean := strings.Contains(out.String(), m.Name+": clean")
		summary := strings.Contains(out.String(), m.Name+": 0 errors, 0 warnings")
		if !clean && !summary {
			t.Errorf("example %s neither clean nor 0-errors in stdout:\n%s", m.Name, out.String())
		}
	}
	// Without the flag the examples are absent.
	var out2, errb2 bytes.Buffer
	if code := run(nil, &out2, &errb2); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, m := range models.Examples() {
		if strings.Contains(out2.String(), m.Name+":") {
			t.Errorf("default run mentions example %s:\n%s", m.Name, out2.String())
		}
	}
}

func TestBoundReported(t *testing.T) {
	// The semantic pass attaches a state-space bound to every registry
	// model; the human output surfaces it on the clean/summary line.
	var out, errb bytes.Buffer
	if code := run([]string{"-model", "handshake"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "handshake: clean (bound ≤ 8 states)") {
		t.Errorf("stdout missing the handshake bound:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	tests := []struct {
		name   string
		args   []string
		reason string
	}{
		{"unknown model", []string{"-model", "nonesuch"}, `unknown model "nonesuch"`},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"stray argument", []string{"extra"}, `unexpected argument "extra"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tt.args, &out, &errb); code != 2 {
				t.Fatalf("exit code = %d, want 2", code)
			}
			if !strings.Contains(errb.String(), tt.reason) {
				t.Errorf("stderr %q missing %q", errb.String(), tt.reason)
			}
		})
	}
}

func TestExitCode(t *testing.T) {
	tests := []struct {
		errors, warnings int
		strict           bool
		want             int
	}{
		{0, 0, false, 0},
		{0, 0, true, 0},
		{1, 0, false, 1},
		{1, 0, true, 1},
		{0, 1, false, 0},
		{0, 1, true, 1},
		{2, 3, true, 1},
	}
	for _, tt := range tests {
		if got := exitCode(tt.errors, tt.warnings, tt.strict); got != tt.want {
			t.Errorf("exitCode(%d, %d, %v) = %d, want %d",
				tt.errors, tt.warnings, tt.strict, got, tt.want)
		}
	}
}

// TestJSONGolden freezes the -json schema: the exact bytes are compared
// against testdata/specvet.golden (regenerate with go test -update).
func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}

	golden := filepath.Join("testdata", "specvet.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from golden file; run go test -update if intended\ngot:\n%s\nwant:\n%s",
			out.String(), want)
	}

	// Structural checks on top of the byte comparison, so a deliberate
	// -update can't silently break the contract CI's jq relies on.
	var doc output
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.Tool != "specvet" || doc.SchemaVersion != jsonSchemaVersion {
		t.Errorf("header = %s/%d, want specvet/%d", doc.Tool, doc.SchemaVersion, jsonSchemaVersion)
	}
	if len(doc.Models) != len(models.Names()) {
		t.Fatalf("got %d models, want %d", len(doc.Models), len(models.Names()))
	}
	for i, m := range doc.Models {
		if m.Model != models.Names()[i] {
			t.Errorf("models[%d] = %q, want %q (registry order)", i, m.Model, models.Names()[i])
		}
		if m.Errors != 0 {
			t.Errorf("model %s has %d errors in the golden output", m.Model, m.Errors)
		}
		if m.Diagnostics == nil {
			t.Errorf("model %s: diagnostics array absent, want []", m.Model)
		}
		if m.Bound == nil || !m.Bound.Finite || m.Bound.States == 0 {
			t.Errorf("model %s: bound missing or not finite: %+v", m.Model, m.Bound)
		}
	}
	// The array must serialize as [] (never null) for unguarded jq access.
	if strings.Contains(out.String(), `"diagnostics": null`) {
		t.Error("diagnostics serialized as null")
	}
}
