// Command specvet statically analyzes the bundled example systems for
// violations of the canonical-form side conditions of Abadi & Lamport,
// "Open Systems in TLA": a clean input/output/internal partition (§2.2),
// actions that constrain only owned variables, well-formed fairness
// conditions, and Disjoint-hypothesis coverage for interleaved
// compositions (Proposition 4, §2.3).
//
// Usage:
//
//	specvet                  vet every registered model
//	specvet -model queue     vet one model
//	specvet -examples        also vet the examples/ compositions
//	specvet -json            machine-readable output
//	specvet -strict          warnings also fail (infos never do)
//
// Version 2 of the analyzer (the semantic pass, DESIGN.md §14) also
// reports each model's state-space cardinality bound, both in the human
// output and as the "bound" field of the JSON document.
//
// Exit codes: 0 = no findings above the failure threshold, 1 = errors
// (or warnings with -strict), 2 = usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"opentla/internal/models"
	"opentla/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonSchemaVersion versions specvet's -json output, independently of the
// run-report schema of internal/obs. Version 2 added the per-model
// "bound" object (the semantic pass's state-space upper bound).
const jsonSchemaVersion = 2

// output is the -json document: one entry per vetted model, with the
// diagnostics array always present so consumers can index it unguarded.
type output struct {
	Tool          string       `json:"tool"`
	SchemaVersion int          `json:"schema_version"`
	Models        []modelEntry `json:"models"`
}

type modelEntry struct {
	Model       string              `json:"model"`
	Errors      int                 `json:"errors"`
	Warnings    int                 `json:"warnings"`
	Infos       int                 `json:"infos"`
	Diagnostics []obs.VetDiagnostic `json:"diagnostics"`
	// Bound is the analyzer's state-space upper bound, when inferred.
	Bound *obs.VetBound `json:"bound,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("specvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "", "model to vet (default: all): "+strings.Join(models.Names(), " | "))
	examples := fs.Bool("examples", false, "also vet the examples/ compositions (see internal/models.Examples)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of human output")
	strict := fs.Bool("strict", false, "treat warnings as failures (infos never fail)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "specvet: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	var targets []models.Model
	if *model == "" {
		targets = models.All()
		if *examples {
			targets = append(targets, models.Examples()...)
		}
	} else {
		m, err := models.ByName(*model)
		if err != nil {
			fmt.Fprintf(stderr, "specvet: %v\n", err)
			return 2
		}
		targets = []models.Model{m}
	}

	doc := output{Tool: "specvet", SchemaVersion: jsonSchemaVersion}
	errors, warnings := 0, 0
	for _, m := range targets {
		res := m.Vet()
		errors += res.Errors()
		warnings += res.Warnings()
		if *asJSON {
			entry := modelEntry{
				Model:       m.Name,
				Errors:      res.Errors(),
				Warnings:    res.Warnings(),
				Infos:       res.Infos(),
				Diagnostics: []obs.VetDiagnostic{},
			}
			for _, d := range res.Diagnostics {
				entry.Diagnostics = append(entry.Diagnostics, obs.VetDiagnostic{
					Code:      d.Code,
					Severity:  d.Severity.String(),
					Component: d.Component,
					Action:    d.Action,
					Message:   d.Message,
					Hint:      d.Hint,
				})
			}
			if res.Bound != nil {
				entry.Bound = &obs.VetBound{Finite: res.Bound.Finite, States: res.Bound.States}
			}
			doc.Models = append(doc.Models, entry)
			continue
		}
		bound := ""
		if res.Bound != nil {
			bound = " (bound " + res.Bound.String() + ")"
		}
		if len(res.Diagnostics) == 0 {
			fmt.Fprintf(stdout, "%s: clean%s\n", m.Name, bound)
			continue
		}
		for _, d := range res.Diagnostics {
			fmt.Fprintf(stdout, "%s: %s\n", m.Name, d)
		}
		fmt.Fprintf(stdout, "%s: %d errors, %d warnings, %d infos%s\n",
			m.Name, res.Errors(), res.Warnings(), res.Infos(), bound)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(stderr, "specvet: %v\n", err)
			return 2
		}
	}
	return exitCode(errors, warnings, *strict)
}

// exitCode maps the finding totals to the process exit code: errors always
// fail, warnings fail only under -strict, infos never fail.
func exitCode(errors, warnings int, strict bool) int {
	if errors > 0 || (strict && warnings > 0) {
		return 1
	}
	return 0
}
