package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opentla/internal/obs"
)

func TestUnknownModelListsValidModels(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-model", "nonesuch"}, &out, &errb)
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown model "nonesuch"`) {
		t.Errorf("stderr %q missing the unknown model name", msg)
	}
	for _, name := range modelNames {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr %q missing valid model %q", msg, name)
		}
	}
	if out.Len() != 0 {
		t.Errorf("stdout should be empty, got %q", out.String())
	}
}

func TestBadDimensions(t *testing.T) {
	tests := [][]string{
		{"-model", "queues", "-n", "0"},
		{"-model", "queues", "-k", "1"},
	}
	for _, args := range tests {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

func TestCircularReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-model", "circular", "-report", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.SchemaVersion != obs.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, obs.SchemaVersion)
	}
	if rep.Tool != "agcheck" || rep.Verdict != "HOLDS" || rep.Config.Model != "circular" {
		t.Errorf("report header = %s/%s/%s, want agcheck/HOLDS/circular",
			rep.Tool, rep.Verdict, rep.Config.Model)
	}
	if len(rep.Hypotheses) == 0 {
		t.Error("report has no hypotheses")
	}
	for _, h := range rep.Hypotheses {
		if !h.Holds {
			t.Errorf("hypothesis %q failed in a HOLDS report", h.Name)
		}
	}
	if rep.Span == nil || rep.Span.Name != "run" {
		t.Fatalf("report span root = %+v, want run", rep.Span)
	}
	// Exploration spans must account for every state the meter counted.
	var sum func(s *obs.Span) int
	sum = func(s *obs.Span) int {
		n := 0
		if strings.HasPrefix(s.Name, "build:") || strings.HasPrefix(s.Name, "product:") {
			n = s.Stats.States
		}
		for _, c := range s.Children {
			n += sum(c)
		}
		return n
	}
	if got := sum(rep.Span); got != rep.Stats.States || got == 0 {
		t.Errorf("exploration spans account for %d states, top-level stats say %d",
			got, rep.Stats.States)
	}
	if len(rep.Events) != 0 {
		t.Errorf("HOLDS report should not carry flight-recorder events, got %d", len(rep.Events))
	}
}

func TestBudgetExhaustedReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-model", "queues", "-n", "1", "-k", "2", "-max-states", "50", "-report", path}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Verdict != "UNKNOWN" {
		t.Errorf("verdict = %q, want UNKNOWN", rep.Verdict)
	}
	if !strings.Contains(rep.UnknownReason, "state budget 50 exceeded") {
		t.Errorf("unknown_reason = %q, want the exhausted state budget", rep.UnknownReason)
	}
	if rep.ExhaustedPhase == "" || !strings.HasPrefix(rep.ExhaustedPhase, "run/") {
		t.Errorf("exhausted_phase = %q, want a span path under run/", rep.ExhaustedPhase)
	}
	if len(rep.Events) == 0 {
		t.Error("UNKNOWN report should carry the flight-recorder tail")
	}
	var sawExhausted bool
	for _, e := range rep.Events {
		if e.Kind == "budget-exhausted" {
			sawExhausted = true
		}
	}
	if !sawExhausted {
		t.Errorf("events missing budget-exhausted entry: %+v", rep.Events)
	}
}

// TestErrorPathsStillWriteReport pins the bugfix for startup failures
// (unknown model, bad dimensions, bad flag combinations, profile setup):
// when -report is requested, these paths must still write a minimal UNKNOWN
// report naming the failure instead of silently skipping the file.
func TestErrorPathsStillWriteReport(t *testing.T) {
	tests := []struct {
		name   string
		args   []string
		reason string
	}{
		{"unknown model", []string{"-model", "nonesuch"}, `unknown model "nonesuch"`},
		{"bad n", []string{"-model", "queues", "-n", "0"}, "capacity N must be >= 1"},
		{"bad k", []string{"-model", "queues", "-k", "1"}, "value-domain size K must be >= 2"},
		{"resume without cache-dir", []string{"-model", "circular", "-resume"}, "-resume requires -cache-dir"},
		{"resume with no-cache", []string{"-model", "circular", "-cache-dir", "d", "-no-cache", "-resume"}, "-resume and -no-cache contradict each other"},
		{"negative cache bound", []string{"-model", "circular", "-cache-dir", "d", "-cache-max-bytes", "-1"}, "-cache-max-bytes must be >= 0"},
		{"cache bound without dir", []string{"-model", "circular", "-cache-max-bytes", "4096"}, "-cache-max-bytes requires -cache-dir"},
		{"profile start failure", []string{"-model", "circular", "-cpuprofile", "no/such/dir/cpu.prof"}, "cpu"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "report.json")
			var out, errb bytes.Buffer
			code := run(append(tt.args, "-report", path), &out, &errb)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no report written on the error path: %v", err)
			}
			var rep obs.Report
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatalf("report is not valid JSON: %v", err)
			}
			if rep.SchemaVersion != obs.SchemaVersion || rep.Tool != "agcheck" {
				t.Errorf("report header = %d/%s, want %d/agcheck", rep.SchemaVersion, rep.Tool, obs.SchemaVersion)
			}
			if rep.Verdict != "UNKNOWN" {
				t.Errorf("verdict = %q, want UNKNOWN", rep.Verdict)
			}
			if !strings.Contains(rep.UnknownReason, tt.reason) {
				t.Errorf("unknown_reason = %q, want substring %q", rep.UnknownReason, tt.reason)
			}
		})
	}
}

// TestWarmCacheSecondRunSkipsExploration runs the same model twice against
// one cache directory: the second run must report at least one cache hit,
// zero explored states, and the same verdict.
func TestWarmCacheSecondRunSkipsExploration(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	args := func(report string) []string {
		return []string{"-model", "queues", "-n", "1", "-k", "2", "-cache-dir", cacheDir, "-report", report}
	}
	cold := filepath.Join(dir, "cold.json")
	warm := filepath.Join(dir, "warm.json")
	var out, errb bytes.Buffer
	if code := run(args(cold), &out, &errb); code != 0 {
		t.Fatalf("cold run exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	if code := run(args(warm), &out, &errb); code != 0 {
		t.Fatalf("warm run exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	var coldRep, warmRep obs.Report
	for path, rep := range map[string]*obs.Report{cold: &coldRep, warm: &warmRep} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, rep); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	if coldRep.Cache == nil || coldRep.Cache.Misses == 0 {
		t.Errorf("cold run cache section = %+v, want misses > 0", coldRep.Cache)
	}
	if warmRep.Cache == nil || warmRep.Cache.Hits == 0 {
		t.Fatalf("warm run cache section = %+v, want hits > 0", warmRep.Cache)
	}
	if warmRep.Stats.States != 0 {
		t.Errorf("warm run explored %d states, want 0 (all graphs served from cache)", warmRep.Stats.States)
	}
	if warmRep.Verdict != coldRep.Verdict {
		t.Errorf("warm verdict %q != cold verdict %q", warmRep.Verdict, coldRep.Verdict)
	}
	if len(warmRep.Hypotheses) != len(coldRep.Hypotheses) {
		t.Errorf("warm run has %d hypotheses, cold had %d", len(warmRep.Hypotheses), len(coldRep.Hypotheses))
	}
}

func TestNoCacheForcesColdBuild(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	var out, errb bytes.Buffer
	if code := run([]string{"-model", "circular", "-cache-dir", cacheDir}, &out, &errb); code != 0 {
		t.Fatalf("priming run exit code = %d (stderr %q)", code, errb.String())
	}
	report := filepath.Join(dir, "report.json")
	if code := run([]string{"-model", "circular", "-cache-dir", cacheDir, "-no-cache", "-report", report}, &out, &errb); code != 0 {
		t.Fatalf("no-cache run exit code = %d (stderr %q)", code, errb.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cache != nil {
		t.Errorf("-no-cache run still touched the cache: %+v", rep.Cache)
	}
	if rep.Stats.States == 0 {
		t.Error("-no-cache run explored no states; the cache was not bypassed")
	}
}

func TestProgressFlagWritesToStderr(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-model", "queues", "-n", "1", "-k", "2", "-progress", "-progress-interval", "1ms"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "progress: ") {
		t.Errorf("stderr %q missing progress lines", errb.String())
	}
	if strings.Contains(out.String(), "progress: ") {
		t.Error("progress lines leaked to stdout")
	}
}

// TestProgressIntervalValidation: a non-positive -progress-interval would
// wedge (0) or spin (negative) the progress ticker, so both are usage errors
// regardless of whether -progress is on; any positive period is accepted.
func TestProgressIntervalValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"zero", []string{"-model", "circular", "-progress", "-progress-interval", "0"}, 2},
		{"negative", []string{"-model", "circular", "-progress", "-progress-interval", "-1s"}, 2},
		{"zero without -progress", []string{"-model", "circular", "-progress-interval", "0s"}, 2},
		{"positive", []string{"-model", "circular", "-progress", "-progress-interval", "50ms"}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tc.args, code, tc.want, errb.String())
			}
			if tc.want == 2 && !strings.Contains(errb.String(), "-progress-interval must be positive") {
				t.Errorf("stderr %q missing the interval rejection", errb.String())
			}
		})
	}
}

// TestTraceAndMetricsOutputs: one traced run writes both telemetry artifacts —
// a Chrome-trace JSON with per-worker thread_name rows and a Prometheus text
// exposition carrying HELP/TYPE headers for the opentla metric families.
func TestTraceAndMetricsOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	promPath := filepath.Join(dir, "metrics.prom")
	var out, errb bytes.Buffer
	code := run([]string{"-model", "queues", "-n", "1", "-k", "2", "-workers", "2",
		"-trace", tracePath, "-metrics-out", promPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("no trace written: %v", err)
	}
	var wire struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tracks := map[string]bool{}
	for _, e := range wire.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			var args struct {
				Name string `json:"name"`
			}
			json.Unmarshal(e.Args, &args)
			tracks[args.Name] = true
		}
	}
	for _, want := range []string{"worker 0", "worker 1", "barrier"} {
		if !tracks[want] {
			t.Errorf("trace missing track %q (have %v)", want, tracks)
		}
	}

	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatalf("no metrics exposition written: %v", err)
	}
	text := string(prom)
	for _, want := range []string{"# HELP ", "# TYPE ", "opentla_levels_total", "opentla_barrier_wait_nanoseconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

// TestVetStrictMutantExits2 pins the pre-check contract: planting an
// ill-formed-spec mutant and running with -vet strict must refuse the
// check (exit 2) and write an UNKNOWN report whose vet section carries
// the cross-component-write diagnostic.
func TestVetStrictMutantExits2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-model", "queues", "-n", "1", "-k", "2",
		"-mutate", "vet-unowned-write", "-vet", "strict", "-report", path}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "SV003") || !strings.Contains(errb.String(), "refusing to check") {
		t.Errorf("stderr %q missing the vet rejection", errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Verdict != "UNKNOWN" {
		t.Errorf("verdict = %q, want UNKNOWN", rep.Verdict)
	}
	if rep.Vet == nil {
		t.Fatal("report has no vet section")
	}
	if rep.Vet.Mode != "strict" || rep.Vet.Errors < 1 {
		t.Errorf("vet section = mode %q, %d errors; want strict with >= 1 error", rep.Vet.Mode, rep.Vet.Errors)
	}
	found := false
	for _, d := range rep.Vet.Diagnostics {
		if d.Code == "SV003" {
			found = true
		}
	}
	if !found {
		t.Errorf("vet diagnostics missing SV003: %+v", rep.Vet.Diagnostics)
	}
}

// TestVetWarnModeStillChecks runs a clean model in the default warn mode:
// the check proceeds, succeeds, and the report carries a warn-mode vet
// section with zero errors.
func TestVetWarnModeStillChecks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-model", "circular", "-report", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Vet == nil {
		t.Fatal("HOLDS report has no vet section (default -vet=warn should attach one)")
	}
	if rep.Vet.Mode != "warn" || rep.Vet.Errors != 0 {
		t.Errorf("vet section = mode %q, %d errors; want warn with 0 errors", rep.Vet.Mode, rep.Vet.Errors)
	}
}

// TestVetOffSkipsSection confirms -vet=off runs no analysis: the report
// has no vet section at all.
func TestVetOffSkipsSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-model", "circular", "-vet", "off", "-report", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Vet != nil {
		t.Errorf("-vet=off report still has a vet section: %+v", rep.Vet)
	}
}

func TestVetUsageErrors(t *testing.T) {
	tests := []struct {
		name   string
		args   []string
		reason string
	}{
		{"bad vet mode", []string{"-model", "circular", "-vet", "bogus"}, `invalid vet mode "bogus"`},
		{"unknown mutation", []string{"-model", "queues", "-mutate", "nonesuch"}, `unknown vet mutation "nonesuch"`},
		{"mutate on refinement", []string{"-model", "corollary", "-mutate", "vet-unowned-write"}, "-mutate applies only to theorem models"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tt.args, &out, &errb); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tt.reason) {
				t.Errorf("stderr %q missing %q", errb.String(), tt.reason)
			}
		})
	}
}

// TestWorkersAndReduceValidation: absurd -workers counts and malformed
// -reduce modes are usage errors (exit 2 with a pointed message), never
// requests to be satisfied.
func TestWorkersAndReduceValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"zero workers", []string{"-model", "circular", "-workers", "0"}, "-workers must be >= 1"},
		{"negative workers", []string{"-model", "circular", "-workers", "-1"}, "-workers must be >= 1"},
		{"very negative workers", []string{"-model", "circular", "-workers", "-100000"}, "-workers must be >= 1"},
		{"absurd workers", []string{"-model", "circular", "-workers", "1000000"}, "exceeds the maximum"},
		{"bad reduce mode", []string{"-model", "circular", "-reduce", "magic"}, `invalid -reduce mode "magic"`},
		{"reduce on corollary", []string{"-model", "corollary", "-reduce", "sym"}, "not supported for the corollary"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Errorf("run(%v) = %d, want 2 (stderr %q)", tc.args, code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errb.String(), tc.want)
			}
		})
	}
}

// TestReduceFlagStillValidates: the reduced pipeline decides the same
// verdict as the full one on a small theorem instance.
func TestReduceFlagStillValidates(t *testing.T) {
	for _, mode := range []string{"por", "sym", "por,sym"} {
		var out, errb bytes.Buffer
		args := []string{"-model", "arbiter", "-reduce", mode}
		if code := run(args, &out, &errb); code != 0 {
			t.Errorf("run(%v) = %d, want 0 (stderr %q)", args, code, errb.String())
		}
		if !strings.Contains(out.String(), "VALID") {
			t.Errorf("-reduce=%s: stdout missing VALID verdict:\n%s", mode, out.String())
		}
	}
}
