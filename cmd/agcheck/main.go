// Command agcheck runs the Composition Theorem of Abadi & Lamport, "Open
// Systems in TLA" (§5) on the built-in models and prints a per-hypothesis
// verdict.
//
// Usage:
//
//	agcheck -model circular
//	agcheck -model queues -n 1 -k 2
//	agcheck -model queues-no-g -n 1 -k 2   (expected to FAIL: §A.5 formula (3))
//	agcheck -model corollary -n 1 -k 2     (the refinement Corollary)
//	agcheck -model arbiter                 (mutual-exclusion arbiter domain)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"opentla/internal/arbiter"
	"opentla/internal/circular"
	"opentla/internal/queue"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agcheck", flag.ContinueOnError)
	model := fs.String("model", "circular", "model to check: circular | queues | queues-no-g | corollary | arbiter")
	n := fs.Int("n", 1, "queue capacity N")
	k := fs.Int("k", 2, "value-domain size K")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := queue.Config{N: *n, Vals: *k}
	start := time.Now()
	switch *model {
	case "circular":
		report, err := circular.SafetyTheorem().Check()
		if err != nil {
			return err
		}
		fmt.Print(report)
	case "queues":
		report, err := cfg.Fig9Theorem().Check()
		if err != nil {
			return err
		}
		fmt.Print(report)
	case "queues-no-g":
		th := cfg.Fig9Theorem()
		th.Name += " WITHOUT G (expected to fail, §A.5 formula (3))"
		th.Pairs = th.Pairs[1:]
		report, err := th.Check()
		if err != nil {
			return err
		}
		fmt.Print(report)
	case "corollary":
		report, err := cfg.CorollaryRefinement().Check()
		if err != nil {
			return err
		}
		fmt.Print(report)
	case "arbiter":
		report, err := arbiter.Theorem().Check()
		if err != nil {
			return err
		}
		fmt.Print(report)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
