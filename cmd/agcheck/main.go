// Command agcheck runs the Composition Theorem of Abadi & Lamport, "Open
// Systems in TLA" (§5) on the built-in models and prints a per-hypothesis
// verdict.
//
// Usage:
//
//	agcheck -model circular
//	agcheck -model queues -n 1 -k 2
//	agcheck -model queues-no-g -n 1 -k 2   (expected to FAIL: §A.5 formula (3))
//	agcheck -model corollary -n 1 -k 2     (the refinement Corollary)
//	agcheck -model arbiter                 (mutual-exclusion arbiter domain)
//
// Resource governance: -budget-ms, -max-states, and -max-transitions bound
// the check; an exhausted budget yields an UNKNOWN verdict with partial
// statistics rather than a hang.
//
// Observability: -progress prints a live status line to stderr every
// -progress-interval (default 1s), -report <file> writes a machine-readable
// JSON run report (span tree, per-phase stats, flight-recorder tail on
// UNKNOWN), -trace <file> captures a Chrome Trace Event timeline with one
// track per BFS worker (load it in Perfetto, analyze it with agprof),
// -metrics-out <file> exports the run's performance counters as Prometheus
// text exposition, and -cpuprofile/-memprofile capture pprof profiles.
//
// Caching: -cache-dir <dir> keeps a persistent content-addressed graph
// cache, so re-checking an unchanged model skips exploration entirely;
// -resume continues a budget-interrupted build from its checkpoint, and
// -no-cache forces a cold build against a populated cache.
//
// Static analysis: before any state is explored, -vet runs the specvet
// analyzer over the theorem instance. The default warn mode prints
// findings to stderr and proceeds; strict mode refuses to check an
// instance with vet errors (exit 2, UNKNOWN report with a vet section);
// off skips the pre-check. -mutate <name> plants a named ill-formed-spec
// mutation from the faultinject vet catalog first — a testing aid for the
// analyzer itself.
//
// Exit codes: 0 = all hypotheses hold, 1 = some hypothesis violated,
// 2 = undecided (budget exhausted, internal failure, vet-strict
// rejection, or usage error).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"opentla/internal/ag"
	"opentla/internal/arbiter"
	"opentla/internal/cache"
	"opentla/internal/circular"
	"opentla/internal/engine"
	"opentla/internal/faultinject"
	"opentla/internal/obs"
	"opentla/internal/queue"
	"opentla/internal/reduce"
	"opentla/internal/ts"
	"opentla/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// modelNames lists the valid -model values, in help order.
var modelNames = []string{"circular", "queues", "queues-no-g", "corollary", "arbiter"}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "circular", "model to check: circular | queues | queues-no-g | corollary | arbiter")
	var n, k int
	fs.IntVar(&n, "n", 1, "queue capacity N (>= 1)")
	fs.IntVar(&n, "N", 1, "alias for -n")
	fs.IntVar(&k, "k", 2, "value-domain size K (>= 2)")
	fs.IntVar(&k, "K", 2, "alias for -k")
	vetFlag := fs.String("vet", "warn", "static pre-check mode: strict | warn | off")
	mutate := fs.String("mutate", "", "plant a named faultinject vet mutation before checking (analyzer testing aid)")
	reduceFlag := fs.String("reduce", "off", "state-space reduction for safety-only obligations: off | por | sym | por,sym")
	bf := engine.AddBudgetFlags(fs)
	workers := engine.AddWorkersFlag(fs)
	of := obs.AddFlags(fs)
	var cf cache.Flags
	cf.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	conf := obs.Config{
		Model:          *model,
		N:              n,
		K:              k,
		Workers:        *workers,
		BudgetMS:       int64(bf.TimeoutMS),
		MaxStates:      bf.MaxStates,
		MaxTransitions: bf.MaxTransitions,
	}

	// fail reports a usage or startup error. When -report was requested the
	// run still gets a minimal UNKNOWN report, so automation reading reports
	// sees the failure reason instead of a missing file.
	fail := func(format string, fargs ...any) int {
		msg := fmt.Sprintf(format, fargs...)
		fmt.Fprintf(stderr, "agcheck: %s\n", msg)
		if of.Report != "" {
			doc := (*obs.Recorder)(nil).Finish("agcheck", conf, engine.Unknown, msg)
			if werr := obs.WriteFile(of.Report, doc); werr != nil {
				fmt.Fprintln(stderr, "agcheck:", werr)
			}
		}
		return 2
	}

	if fs.NArg() > 0 {
		return fail("unexpected positional arguments: %v", fs.Args())
	}
	if err := of.Validate(); err != nil {
		return fail("%v", err)
	}
	if n < 1 {
		return fail("queue capacity N must be >= 1, got %d", n)
	}
	if k < 2 {
		return fail("value-domain size K must be >= 2, got %d", k)
	}
	if err := engine.ValidateWorkers(*workers); err != nil {
		return fail("%v", err)
	}
	reduceOpts, err := reduce.ParseFlag(*reduceFlag)
	if err != nil {
		return fail("%v", err)
	}
	if reduceOpts.Any() {
		conf.Reduce = reduceOpts.String()
	}
	if err := cf.Validate(); err != nil {
		return fail("%v", err)
	}
	cfg := queue.Config{N: n, Vals: k}
	mode, err := vet.ParseMode(*vetFlag)
	if err != nil {
		return fail("%v", err)
	}

	// Resolve the model before spending anything on meters or profiles, so
	// a typo fails fast with the valid list. Theorem models share one
	// constructor, so the vet pre-check and the check itself analyze the
	// same instance — including any fault planted by -mutate. gc is
	// assigned after the cache opens; the closures read it at call time.
	var gc ts.GraphCache
	var makeTheorem func() (*ag.Theorem, error)
	var makeRefinement func() *ag.Refinement
	var modelSym *reduce.Symmetry
	switch *model {
	case "circular":
		makeTheorem = func() (*ag.Theorem, error) { return circular.SafetyTheorem(), nil }
		modelSym = circular.Symmetry()
	case "queues":
		makeTheorem = func() (*ag.Theorem, error) { return cfg.Fig9Theorem(), nil }
		modelSym = cfg.DoubleSymmetry()
	case "queues-no-g":
		makeTheorem = func() (*ag.Theorem, error) {
			th := cfg.Fig9Theorem()
			th.Name += " WITHOUT G (expected to fail, §A.5 formula (3))"
			th.Pairs = th.Pairs[1:]
			return th, nil
		}
		modelSym = cfg.DoubleSymmetry()
	case "corollary":
		makeRefinement = cfg.CorollaryRefinement
	case "arbiter":
		makeTheorem = func() (*ag.Theorem, error) { return arbiter.Theorem(), nil }
		modelSym = arbiter.Symmetry()
	default:
		return fail("unknown model %q; valid models: %s", *model, strings.Join(modelNames, " | "))
	}
	if reduceOpts.Any() && makeRefinement != nil {
		return fail("-reduce is not supported for the corollary refinement model (its checks are liveness-bearing end to end)")
	}

	if *mutate != "" {
		if makeTheorem == nil {
			return fail("-mutate applies only to theorem models, not %q", *model)
		}
		var mu *faultinject.VetMutation
		var known []string
		for _, cand := range faultinject.VetCatalog(cfg) {
			cand := cand
			known = append(known, cand.Name)
			if cand.Name == *mutate {
				mu = &cand
			}
		}
		if mu == nil {
			return fail("unknown vet mutation %q; valid: %s", *mutate, strings.Join(known, " | "))
		}
		base := makeTheorem
		makeTheorem = func() (*ag.Theorem, error) {
			th, err := base()
			if err != nil {
				return nil, err
			}
			if err := mu.Apply(th); err != nil {
				return nil, fmt.Errorf("mutation %s: %w", mu.Name, err)
			}
			return th, nil
		}
	}

	checkModel := func(m *engine.Meter) (*ag.Report, error) {
		if makeRefinement != nil {
			rf := makeRefinement()
			rf.Workers = *workers
			rf.Cache, rf.Resume = gc, cf.Resume
			return rf.CheckWith(m)
		}
		th, err := makeTheorem()
		if err != nil {
			return nil, err
		}
		th.Workers = *workers
		th.Cache, th.Resume = gc, cf.Resume
		th.Reduce = reduceOpts
		th.Symmetry = modelSym
		return th.CheckWith(m)
	}

	var cc *cache.Cache
	if c, err := cf.Open(); err != nil {
		return fail("opening cache: %v", err)
	} else if c != nil {
		cc = c
		gc = c
	}

	stopProfiles, err := of.Start()
	if err != nil {
		return fail("%v", err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(stderr, "agcheck:", err)
		}
	}()

	m := bf.Meter()
	var rec *obs.Recorder
	if of.Enabled() {
		rec = obs.New(m)
	}
	tracer, registry := of.Telemetry(rec)
	if cc != nil {
		// Route the cache's self-healing diagnostics (sweeps, quarantines,
		// retries, gc) into the flight recorder; events from Open flush now.
		cc.SetNotify(m.Note)
	}

	// The vet pre-check: analyze the instance before exploring any state.
	// Warn-and-above findings go to stderr in every mode; strict mode
	// refuses to check an instance with errors, since its verdict would
	// not mean what the Composition Theorem says it means.
	var vetSection *obs.VetReport
	if mode != vet.ModeOff {
		endVet := obs.SpanFromMeter(m, "vet")
		var res *vet.Result
		if makeRefinement != nil {
			res = makeRefinement().Vet()
		} else {
			th, err := makeTheorem()
			if err != nil {
				endVet()
				return fail("%v", err)
			}
			res = th.Vet()
		}
		endVet()
		overBudget := res.CheckBudget(int64(bf.MaxStates))
		vetSection = res.Section(mode)
		for _, d := range res.Filter(vet.Warn) {
			fmt.Fprintf(stderr, "agcheck: vet: %s\n", d)
		}
		if mode == vet.ModeStrict && (res.HasErrors() || overBudget) {
			msg := fmt.Sprintf("vet found %d errors in strict mode; refusing to check an ill-formed instance", res.Errors())
			if !res.HasErrors() {
				msg = fmt.Sprintf("vet: state-space bound %s exceeds -max-states %d in strict mode; refusing a run that cannot finish", res.Bound, bf.MaxStates)
			}
			fmt.Fprintf(stderr, "agcheck: %s\n", msg)
			if of.Report != "" {
				doc := rec.Finish("agcheck", conf, engine.Unknown, msg)
				doc.Vet = vetSection
				if werr := obs.WriteFile(of.Report, doc); werr != nil {
					fmt.Fprintln(stderr, "agcheck:", werr)
				}
			}
			return 2
		}
	}

	stopProgress := rec.StartProgress(stderr, of.ProgressPeriod())
	stopWatchdog := rec.StartWatchdog(of.StallTimeout)
	report, err := checkModel(m)
	stopWatchdog()
	stopProgress()

	verdict := engine.Unknown
	unknown := ""
	if report != nil {
		verdict = report.Verdict
		unknown = report.Unknown
	} else if err != nil {
		unknown = err.Error()
	}
	if of.Report != "" {
		doc := rec.Finish("agcheck", conf, verdict, unknown)
		doc.Vet = vetSection
		if report != nil {
			for _, h := range report.Hypotheses {
				doc.Hypotheses = append(doc.Hypotheses, obs.Hypothesis{Name: h.Name, Holds: h.Holds, Detail: h.Detail})
			}
		}
		if werr := obs.WriteFile(of.Report, doc); werr != nil {
			fmt.Fprintln(stderr, "agcheck:", werr)
			return 2
		}
	}
	if werr := of.WriteTelemetry(tracer, registry); werr != nil {
		fmt.Fprintln(stderr, "agcheck:", werr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "agcheck:", err)
		return 2
	}
	fmt.Fprint(stdout, report)
	fmt.Fprintf(stdout, "run stats: %s\n", report.Stats)
	return verdict.ExitCode()
}
