// Command agcheck runs the Composition Theorem of Abadi & Lamport, "Open
// Systems in TLA" (§5) on the built-in models and prints a per-hypothesis
// verdict.
//
// Usage:
//
//	agcheck -model circular
//	agcheck -model queues -n 1 -k 2
//	agcheck -model queues-no-g -n 1 -k 2   (expected to FAIL: §A.5 formula (3))
//	agcheck -model corollary -n 1 -k 2     (the refinement Corollary)
//	agcheck -model arbiter                 (mutual-exclusion arbiter domain)
//
// Resource governance: -budget-ms, -max-states, and -max-transitions bound
// the check; an exhausted budget yields an UNKNOWN verdict with partial
// statistics rather than a hang.
//
// Exit codes: 0 = all hypotheses hold, 1 = some hypothesis violated,
// 2 = undecided (budget exhausted, internal failure, or usage error).
package main

import (
	"flag"
	"fmt"
	"os"

	"opentla/internal/ag"
	"opentla/internal/arbiter"
	"opentla/internal/circular"
	"opentla/internal/engine"
	"opentla/internal/queue"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("agcheck", flag.ContinueOnError)
	model := fs.String("model", "circular", "model to check: circular | queues | queues-no-g | corollary | arbiter")
	var n, k int
	fs.IntVar(&n, "n", 1, "queue capacity N (>= 1)")
	fs.IntVar(&n, "N", 1, "alias for -n")
	fs.IntVar(&k, "k", 2, "value-domain size K (>= 2)")
	fs.IntVar(&k, "K", 2, "alias for -k")
	bf := engine.AddBudgetFlags(fs)
	workers := engine.AddWorkersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if n < 1 {
		fmt.Fprintf(os.Stderr, "agcheck: queue capacity N must be >= 1, got %d\n", n)
		return 2
	}
	if k < 2 {
		fmt.Fprintf(os.Stderr, "agcheck: value-domain size K must be >= 2, got %d\n", k)
		return 2
	}
	cfg := queue.Config{N: n, Vals: k}
	m := bf.Meter()
	var report *ag.Report
	var err error
	switch *model {
	case "circular":
		th := circular.SafetyTheorem()
		th.Workers = *workers
		report, err = th.CheckWith(m)
	case "queues":
		th := cfg.Fig9Theorem()
		th.Workers = *workers
		report, err = th.CheckWith(m)
	case "queues-no-g":
		th := cfg.Fig9Theorem()
		th.Name += " WITHOUT G (expected to fail, §A.5 formula (3))"
		th.Pairs = th.Pairs[1:]
		th.Workers = *workers
		report, err = th.CheckWith(m)
	case "corollary":
		rf := cfg.CorollaryRefinement()
		rf.Workers = *workers
		report, err = rf.CheckWith(m)
	case "arbiter":
		th := arbiter.Theorem()
		th.Workers = *workers
		report, err = th.CheckWith(m)
	default:
		fmt.Fprintf(os.Stderr, "agcheck: unknown model %q\n", *model)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "agcheck:", err)
		return 2
	}
	fmt.Print(report)
	fmt.Printf("run stats: %s\n", report.Stats)
	return report.Verdict.ExitCode()
}
