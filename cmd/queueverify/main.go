// Command queueverify mechanically replays Appendix A of Abadi & Lamport,
// "Open Systems in TLA": it builds the complete queue systems, checks the
// CDQ ⇒ CQ^dbl refinement of §A.4, and then discharges every step of the
// Figure 9 proof that two open queues compose into a larger open queue.
//
// Usage:
//
//	queueverify -n 1 -k 2 [-v]
//
// Resource governance: -budget-ms, -max-states, and -max-transitions bound
// the whole run with one cumulative budget. On exhaustion the command
// reports an UNKNOWN verdict with partial statistics and exits 2 instead
// of hanging on an oversized instance.
//
// Observability: -progress prints a live status line to stderr every
// -progress-interval (default 1s), -report <file> writes a machine-readable
// JSON run report, -trace <file> captures a Chrome Trace Event timeline
// (one track per BFS worker; load in Perfetto, analyze with agprof),
// -metrics-out <file> exports performance counters as Prometheus text
// exposition, and -cpuprofile/-memprofile capture pprof profiles.
//
// Caching: -cache-dir <dir> keeps a persistent content-addressed graph
// cache across runs, -resume continues a budget-interrupted build from its
// checkpoint, and -no-cache forces a cold build.
//
// Static analysis: before any state is explored, -vet runs the specvet
// analyzer over the Figure 9 theorem and the complete single queue. The
// default warn mode prints findings to stderr and proceeds; strict mode
// refuses to run with vet errors (exit 2, UNKNOWN report with a vet
// section); off skips the pre-check.
//
// Exit codes: 0 = everything verified, 1 = a property violated,
// 2 = undecided (budget exhausted, internal failure, or usage error).
// Flag, startup, vet-strict, and report-write failures always exit 2,
// never 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"opentla/internal/absint"
	"opentla/internal/cache"
	"opentla/internal/check"
	"opentla/internal/engine"
	"opentla/internal/obs"
	"opentla/internal/queue"
	"opentla/internal/reduce"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("queueverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var n, k int
	fs.IntVar(&n, "n", 1, "queue capacity N (>= 1)")
	fs.IntVar(&n, "N", 1, "alias for -n")
	fs.IntVar(&k, "k", 2, "value-domain size K (>= 2)")
	fs.IntVar(&k, "K", 2, "alias for -k")
	verbose := fs.Bool("v", false, "print graph sizes")
	vetFlag := fs.String("vet", "warn", "static pre-check mode: strict | warn | off")
	reduceFlag := fs.String("reduce", "off", "state-space reduction for safety-only obligations: off | por | sym | por,sym")
	bf := engine.AddBudgetFlags(fs)
	workers := engine.AddWorkersFlag(fs)
	of := obs.AddFlags(fs)
	var cf cache.Flags
	cf.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	conf := obs.Config{
		Model:          "appendix-a",
		N:              n,
		K:              k,
		Workers:        *workers,
		BudgetMS:       int64(bf.TimeoutMS),
		MaxStates:      bf.MaxStates,
		MaxTransitions: bf.MaxTransitions,
	}

	// fail mirrors agcheck: startup failures exit 2 and, when -report was
	// requested, still produce a minimal UNKNOWN report with the reason.
	fail := func(format string, fargs ...any) int {
		msg := fmt.Sprintf(format, fargs...)
		fmt.Fprintf(stderr, "queueverify: %s\n", msg)
		if of.Report != "" {
			doc := (*obs.Recorder)(nil).Finish("queueverify", conf, engine.Unknown, msg)
			if werr := obs.WriteFile(of.Report, doc); werr != nil {
				fmt.Fprintln(stderr, "queueverify:", werr)
			}
		}
		return 2
	}

	if fs.NArg() > 0 {
		return fail("unexpected positional arguments: %v", fs.Args())
	}
	if err := of.Validate(); err != nil {
		return fail("%v", err)
	}
	if n < 1 {
		return fail("queue capacity N must be >= 1, got %d", n)
	}
	if k < 2 {
		return fail("value-domain size K must be >= 2, got %d", k)
	}
	if err := engine.ValidateWorkers(*workers); err != nil {
		return fail("%v", err)
	}
	reduceOpts, err := reduce.ParseFlag(*reduceFlag)
	if err != nil {
		return fail("%v", err)
	}
	if reduceOpts.Any() {
		conf.Reduce = reduceOpts.String()
	}
	if err := cf.Validate(); err != nil {
		return fail("%v", err)
	}
	cfg := queue.Config{N: n, Vals: k}
	mode, err := vet.ParseMode(*vetFlag)
	if err != nil {
		return fail("%v", err)
	}

	var gc ts.GraphCache
	var cc *cache.Cache
	if c, err := cf.Open(); err != nil {
		return fail("opening cache: %v", err)
	} else if c != nil {
		cc = c
		gc = c
	}

	stopProfiles, err := of.Start()
	if err != nil {
		return fail("%v", err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(stderr, "queueverify:", err)
		}
	}()

	m := bf.Meter()
	var rec *obs.Recorder
	if of.Enabled() {
		rec = obs.New(m)
	}
	tracer, registry := of.Telemetry(rec)
	if cc != nil {
		// Route the cache's self-healing diagnostics (sweeps, quarantines,
		// retries, gc) into the flight recorder; events from Open flush now.
		cc.SetNotify(m.Note)
	}

	// The vet pre-check covers everything the run will explore: the open
	// Figure 9 composition (with its Disjoint hypotheses) and the complete
	// single queue CQ used by the §A.4 refinement. Building the Figure 9
	// instance materializes sequence domains up to length 2N+1, so the
	// phase is skipped on instances too large to even enumerate — the
	// budgeted build rejects those with an UNKNOWN verdict anyway.
	var vetSection *obs.VetReport
	if mode != vet.ModeOff && !vetTractable(cfg, 1<<20) {
		fmt.Fprintln(stderr, "queueverify: vet: skipped (instance domains too large to materialize; shrink -n/-k to vet)")
	} else if mode != vet.ModeOff {
		endVet := obs.SpanFromMeter(m, "vet")
		res := cfg.Fig9Theorem().Vet()
		res.Merge(vet.Composition("CQ", []*spec.Component{
			queue.QE("QE", queue.In, queue.Out, cfg.ValueDomain()),
			queue.QM("QM", cfg.N, queue.In, queue.Out, "q", cfg.ValueDomain()),
		}, nil, vet.Options{Domains: cfg.Domains()}))
		endVet()
		overBudget := res.CheckBudget(int64(bf.MaxStates))
		vetSection = res.Section(mode)
		for _, d := range res.Filter(vet.Warn) {
			fmt.Fprintf(stderr, "queueverify: vet: %s\n", d)
		}
		if mode == vet.ModeStrict && (res.HasErrors() || overBudget) {
			msg := fmt.Sprintf("vet found %d errors in strict mode; refusing to verify an ill-formed instance", res.Errors())
			if !res.HasErrors() {
				msg = fmt.Sprintf("vet: state-space bound %s exceeds -max-states %d in strict mode; refusing a run that cannot finish", res.Bound, bf.MaxStates)
			}
			fmt.Fprintf(stderr, "queueverify: %s\n", msg)
			if of.Report != "" {
				doc := rec.Finish("queueverify", conf, engine.Unknown, msg)
				doc.Vet = vetSection
				if werr := obs.WriteFile(of.Report, doc); werr != nil {
					fmt.Fprintln(stderr, "queueverify:", werr)
				}
			}
			return 2
		}
	}

	stopProgress := rec.StartProgress(stderr, of.ProgressPeriod())
	stopWatchdog := rec.StartWatchdog(of.StallTimeout)
	verdict, err := verify(stdout, cfg, m, *verbose, *workers, gc, cf.Resume, reduceOpts)
	stopWatchdog()
	stopProgress()

	unknown := ""
	code := verdict.ExitCode()
	if err != nil {
		if reason, _, ok := engine.AsUnknown(err); ok {
			fmt.Fprintf(stdout, "UNKNOWN: %s\n  partial progress: %s\n", reason, m.Stats())
			verdict, unknown = engine.Unknown, reason
			code = engine.Unknown.ExitCode()
		} else {
			fmt.Fprintln(stderr, "queueverify:", err)
			verdict, unknown = engine.Unknown, err.Error()
			code = 2
		}
	} else {
		fmt.Fprintf(stdout, "run stats: %s\n", m.Stats())
	}
	if of.Report != "" {
		doc := rec.Finish("queueverify", conf, verdict, unknown)
		doc.Vet = vetSection
		if werr := obs.WriteFile(of.Report, doc); werr != nil {
			fmt.Fprintln(stderr, "queueverify:", werr)
			return 2
		}
	}
	if werr := of.WriteTelemetry(tracer, registry); werr != nil {
		fmt.Fprintln(stderr, "queueverify:", werr)
		return 2
	}
	return code
}

// vetTractable reports whether the vet pre-check can afford to
// materialize the Figure 9 domains. The semantic analyzer
// (internal/absint) bounds the per-variable domains of the conclusion
// queue — QM of capacity 2N+1, whose contents variable carries the
// instance's largest sequence domain. That domain is deliberately
// withheld from the analysis so the analyzer infers its cardinality from
// the Len guard instead of enumerating value.Seqs: the enumeration is
// exactly the cost being gated. Tractable means every inferred
// per-variable cardinality is finite and at most limit.
func vetTractable(cfg queue.Config, limit int) bool {
	vals := cfg.ValueDomain()
	comps := []*spec.Component{
		queue.QE("QE", queue.In, queue.Out, vals),
		queue.QM("QM", 2*cfg.N+1, queue.In, queue.Out, "q", vals),
	}
	domains := queue.In.Domains(vals)
	for k, v := range queue.Out.Domains(vals) {
		domains[k] = v
	}
	b := absint.Analyze(comps, nil, absint.Options{Declared: domains}).Bound()
	if !b.Finite {
		return false
	}
	for _, vb := range b.Vars {
		if !vb.Finite || vb.Card > uint64(limit) {
			return false
		}
	}
	return true
}

// verify runs every Appendix A obligation under the shared meter and
// returns the overall verdict. Budget and engine errors propagate to the
// caller, which classifies them as UNKNOWN. A non-nil gc serves complete
// graphs from the cache and persists new ones; resume continues
// interrupted builds from their checkpoints.
//
// Reduction (rd.Any()) applies to the safety-only obligations: the CQ
// build and, through ag.Theorem, the Figure 9 hypotheses. The CDQ ⇒ CQ^dbl
// refinement keeps a full graph — its liveness half needs genuine fair
// cycles, which reduced graphs refuse to search for.
func verify(w io.Writer, cfg queue.Config, m *engine.Meter, verbose bool, workers int, gc ts.GraphCache, resume bool, rd reduce.Options) (engine.Verdict, error) {
	fmt.Fprintf(w, "== Appendix A with N=%d, K=%d: values 0..%d, double capacity %d ==\n\n",
		cfg.N, cfg.Vals, cfg.Vals-1, 2*cfg.N+1)

	// §A.2: the complete single queue CQ.
	start := time.Now()
	endCQ := obs.SpanFromMeter(m, "phase:CQ")
	singleSys := cfg.SingleSystem()
	singleSys.Workers = workers
	singleSys.Cache, singleSys.Resume = gc, resume
	if rd.Any() {
		singleSys.Reduce = &reduce.Config{Options: rd, Symmetry: cfg.SingleSymmetry()}
	}
	gq, err := singleSys.BuildWith(m)
	endCQ()
	if err != nil {
		return engine.Unknown, fmt.Errorf("building CQ: %w", err)
	}
	reduced := ""
	if gq.Reduced() {
		reduced = fmt.Sprintf(" [reduced: %s]", rd)
	}
	fmt.Fprintf(w, "CQ (Fig. 6): %d states, %d edges%s (%v)\n",
		gq.NumStates(), gq.NumEdges(), reduced, time.Since(start).Round(time.Millisecond))

	// §A.4: CDQ implements CQ^dbl.
	start = time.Now()
	endCDQ := obs.SpanFromMeter(m, "phase:CDQ=>CQdbl")
	doubleSys := cfg.DoubleSystem(true)
	doubleSys.Workers = workers
	doubleSys.Cache, doubleSys.Resume = gc, resume
	gd, err := doubleSys.BuildWith(m)
	if err != nil {
		endCDQ()
		return engine.Unknown, fmt.Errorf("building CDQ: %w", err)
	}
	if verbose {
		fmt.Fprintf(w, "CDQ (Fig. 8): %d states, %d edges\n", gd.NumStates(), gd.NumEdges())
	}
	envRes, err := check.Safety(gd, queue.QE("QEdbl", queue.In, queue.Out, cfg.ValueDomain()).SafetyFormula())
	if err != nil {
		endCDQ()
		return engine.Unknown, err
	}
	sysRes, err := check.Component(gd, cfg.DoubleQueueSpec(), queue.DoubleMapping())
	endCDQ()
	if err != nil {
		return engine.Unknown, err
	}
	if !envRes.Holds || !sysRes.Holds() {
		fmt.Fprintf(w, "CDQ => CQ^dbl (§A.4): FAILED\n%s\n%s\n", envRes, sysRes)
		return engine.Violated, nil
	}
	fmt.Fprintf(w, "CDQ => CQ^dbl (§A.4): OK  [refinement mapping q = q2 o z-in-flight o q1]  (%v)\n\n",
		time.Since(start).Round(time.Millisecond))

	// §A.5 / Fig. 9: the open-queue composition via the Composition Theorem.
	start = time.Now()
	fig9 := cfg.Fig9Theorem()
	fig9.Workers = workers
	fig9.Cache, fig9.Resume = gc, resume
	fig9.Reduce = rd
	fig9.Symmetry = cfg.DoubleSymmetry()
	report, err := fig9.CheckWith(m)
	if err != nil {
		return engine.Unknown, err
	}
	fmt.Fprint(w, report)
	fmt.Fprintf(w, "(%v)\n\n", time.Since(start).Round(time.Millisecond))
	if report.Verdict != engine.Holds {
		return report.Verdict, nil
	}

	// §A.5: without G the claim is invalid — confirm the checker agrees.
	start = time.Now()
	noG := cfg.Fig9Theorem()
	noG.Name = "formula (3): composition WITHOUT G"
	noG.Pairs = noG.Pairs[1:]
	noG.Workers = workers
	noG.Cache, noG.Resume = gc, resume
	noG.Reduce = rd
	noG.Symmetry = cfg.DoubleSymmetry()
	reportNoG, err := noG.CheckWith(m)
	if err != nil {
		return engine.Unknown, err
	}
	if reportNoG.Verdict == engine.Unknown {
		return engine.Unknown, fmt.Errorf("composition without G undecided: %s", reportNoG.Unknown)
	}
	if reportNoG.Valid {
		return engine.Violated, fmt.Errorf("composition without G unexpectedly validated")
	}
	fmt.Fprintf(w, "formula (3) without G: correctly NOT established (%v)\n",
		time.Since(start).Round(time.Millisecond))
	for _, h := range reportNoG.Hypotheses {
		if !h.Holds {
			fmt.Fprintf(w, "  first failing hypothesis: %s\n", h.Name)
			break
		}
	}
	return engine.Holds, nil
}
