// Command queueverify mechanically replays Appendix A of Abadi & Lamport,
// "Open Systems in TLA": it builds the complete queue systems, checks the
// CDQ ⇒ CQ^dbl refinement of §A.4, and then discharges every step of the
// Figure 9 proof that two open queues compose into a larger open queue.
//
// Usage:
//
//	queueverify -n 1 -k 2 [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"opentla/internal/check"
	"opentla/internal/queue"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "queueverify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("queueverify", flag.ContinueOnError)
	n := fs.Int("n", 1, "queue capacity N")
	k := fs.Int("k", 2, "value-domain size K")
	verbose := fs.Bool("v", false, "print graph sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := queue.Config{N: *n, Vals: *k}
	fmt.Printf("== Appendix A with N=%d, K=%d: values 0..%d, double capacity %d ==\n\n",
		cfg.N, cfg.Vals, cfg.Vals-1, 2*cfg.N+1)

	// §A.2: the complete single queue CQ.
	start := time.Now()
	gq, err := cfg.SingleSystem().Build()
	if err != nil {
		return fmt.Errorf("building CQ: %w", err)
	}
	fmt.Printf("CQ (Fig. 6): %d states, %d edges (%v)\n",
		gq.NumStates(), gq.NumEdges(), time.Since(start).Round(time.Millisecond))

	// §A.4: CDQ implements CQ^dbl.
	start = time.Now()
	gd, err := cfg.DoubleSystem(true).Build()
	if err != nil {
		return fmt.Errorf("building CDQ: %w", err)
	}
	if *verbose {
		fmt.Printf("CDQ (Fig. 8): %d states, %d edges\n", gd.NumStates(), gd.NumEdges())
	}
	envRes, err := check.Safety(gd, queue.QE("QEdbl", queue.In, queue.Out, cfg.ValueDomain()).SafetyFormula())
	if err != nil {
		return err
	}
	sysRes, err := check.Component(gd, cfg.DoubleQueueSpec(), queue.DoubleMapping())
	if err != nil {
		return err
	}
	if !envRes.Holds || !sysRes.Holds() {
		fmt.Printf("CDQ => CQ^dbl (§A.4): FAILED\n%s\n%s\n", envRes, sysRes)
		return fmt.Errorf("refinement failed")
	}
	fmt.Printf("CDQ => CQ^dbl (§A.4): OK  [refinement mapping q = q2 o z-in-flight o q1]  (%v)\n\n",
		time.Since(start).Round(time.Millisecond))

	// §A.5 / Fig. 9: the open-queue composition via the Composition Theorem.
	start = time.Now()
	report, err := cfg.Fig9Theorem().Check()
	if err != nil {
		return err
	}
	fmt.Print(report)
	fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
	if !report.Valid {
		return fmt.Errorf("Fig. 9 composition failed")
	}

	// §A.5: without G the claim is invalid — confirm the checker agrees.
	start = time.Now()
	noG := cfg.Fig9Theorem()
	noG.Name = "formula (3): composition WITHOUT G"
	noG.Pairs = noG.Pairs[1:]
	reportNoG, err := noG.Check()
	if err != nil {
		return err
	}
	if reportNoG.Valid {
		return fmt.Errorf("composition without G unexpectedly validated")
	}
	fmt.Printf("formula (3) without G: correctly NOT established (%v)\n",
		time.Since(start).Round(time.Millisecond))
	for _, h := range reportNoG.Hypotheses {
		if !h.Holds {
			fmt.Printf("  first failing hypothesis: %s\n", h.Name)
			break
		}
	}
	return nil
}
