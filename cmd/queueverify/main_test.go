package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opentla/internal/obs"
	"opentla/internal/queue"
)

// TestExitCodes pins the exit-code contract shared with agcheck: 0 when
// everything verifies, 2 on usage errors, startup failures, and undecided
// (budget-exhausted) runs — never 1 for anything but a genuine violation.
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name   string
		args   []string
		code   int
		stderr string // required stderr substring, "" = don't care
	}{
		{"verifies", []string{"-n", "1", "-k", "2"}, 0, ""},
		{"stall timeout armed but quiet", []string{"-n", "1", "-k", "2", "-stall-timeout", "10m"}, 0, ""},
		{"bad flag", []string{"-nonesuch"}, 2, "flag provided but not defined"},
		{"bad n", []string{"-n", "0"}, 2, "capacity N must be >= 1"},
		{"bad k", []string{"-k", "1"}, 2, "value-domain size K must be >= 2"},
		{"resume without cache-dir", []string{"-resume"}, 2, "-resume requires -cache-dir"},
		{"resume with no-cache", []string{"-cache-dir", "d", "-no-cache", "-resume"}, 2, "-resume and -no-cache contradict each other"},
		{"negative cache bound", []string{"-cache-dir", "d", "-cache-max-bytes", "-1"}, 2, "-cache-max-bytes must be >= 0"},
		{"cache bound without dir", []string{"-cache-max-bytes", "4096"}, 2, "-cache-max-bytes requires -cache-dir"},
		{"profile start failure", []string{"-cpuprofile", "no/such/dir/cpu.prof"}, 2, ""},
		{"budget exhausted", []string{"-n", "1", "-k", "2", "-max-states", "10"}, 2, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(tt.args, &out, &errb)
			if code != tt.code {
				t.Errorf("run(%v) = %d, want %d (stderr %q)", tt.args, code, tt.code, errb.String())
			}
			if tt.stderr != "" && !strings.Contains(errb.String(), tt.stderr) {
				t.Errorf("stderr %q missing %q", errb.String(), tt.stderr)
			}
		})
	}
}

// TestBudgetExhaustedWritesReport: an undecided run still writes a
// schema-valid report with the UNKNOWN verdict and partial statistics.
func TestBudgetExhaustedWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-n", "1", "-k", "2", "-max-states", "10", "-report", path}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "UNKNOWN") {
		t.Errorf("stdout %q missing the UNKNOWN verdict", out.String())
	}
	rep := readReport(t, path)
	if rep.Verdict != "UNKNOWN" {
		t.Errorf("verdict = %q, want UNKNOWN", rep.Verdict)
	}
	if !strings.Contains(rep.UnknownReason, "state budget 10 exceeded") {
		t.Errorf("unknown_reason = %q, want the exhausted state budget", rep.UnknownReason)
	}
}

// TestStartupFailureStillWritesReport pins the agcheck-parity bugfix:
// usage errors detected before verification must not skip -report.
func TestStartupFailureStillWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-n", "0", "-report", path}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	rep := readReport(t, path)
	if rep.Tool != "queueverify" || rep.Verdict != "UNKNOWN" {
		t.Errorf("report header = %s/%s, want queueverify/UNKNOWN", rep.Tool, rep.Verdict)
	}
	if !strings.Contains(rep.UnknownReason, "capacity N must be >= 1") {
		t.Errorf("unknown_reason = %q, want the dimension error", rep.UnknownReason)
	}
}

// TestReportWriteFailureExitsTwo: a run that verifies but cannot write its
// report is a tooling failure (exit 2), not a verification verdict.
func TestReportWriteFailureExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "1", "-k", "2", "-report", filepath.Join(t.TempDir(), "no", "such", "dir", "r.json")}, &out, &errb)
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "writing run report") {
		t.Errorf("stderr %q missing the report-write failure", errb.String())
	}
}

// TestWarmCacheRun: the second run against a populated cache reports hits
// and explores nothing, with the same verdict.
func TestWarmCacheRun(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	args := func(report string) []string {
		return []string{"-n", "1", "-k", "2", "-cache-dir", cacheDir, "-report", report}
	}
	cold := filepath.Join(dir, "cold.json")
	warm := filepath.Join(dir, "warm.json")
	var out, errb bytes.Buffer
	if code := run(args(cold), &out, &errb); code != 0 {
		t.Fatalf("cold run exit code = %d (stderr %q)", code, errb.String())
	}
	if code := run(args(warm), &out, &errb); code != 0 {
		t.Fatalf("warm run exit code = %d (stderr %q)", code, errb.String())
	}
	coldRep, warmRep := readReport(t, cold), readReport(t, warm)
	if warmRep.Cache == nil || warmRep.Cache.Hits == 0 {
		t.Fatalf("warm run cache section = %+v, want hits > 0", warmRep.Cache)
	}
	if warmRep.Stats.States != 0 {
		t.Errorf("warm run explored %d states, want 0", warmRep.Stats.States)
	}
	if warmRep.Verdict != coldRep.Verdict {
		t.Errorf("warm verdict %q != cold verdict %q", warmRep.Verdict, coldRep.Verdict)
	}
}

func readReport(t *testing.T, path string) *obs.Report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no report written: %v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.SchemaVersion != obs.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, obs.SchemaVersion)
	}
	return &rep
}

func TestVetModeUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-vet", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), `invalid vet mode "bogus"`) {
		t.Errorf("stderr %q missing the vet mode error", errb.String())
	}
}

// TestReportCarriesVetSection pins that a default (warn-mode) run attaches
// the vet section to the run report, with zero errors on the shipped spec.
func TestReportCarriesVetSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-n", "1", "-k", "2", "-report", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Vet == nil {
		t.Fatal("report has no vet section")
	}
	if rep.Vet.Mode != "warn" || rep.Vet.Errors != 0 {
		t.Errorf("vet section = mode %q, %d errors; want warn with 0", rep.Vet.Mode, rep.Vet.Errors)
	}
}

// TestOversizedInstanceSkipsVet pins the fast-failure property of
// oversized runs: the vet pre-check must not materialize the Figure 9
// domains for an instance the budgeted build is about to reject, so
// -N 6 -K 8 still returns UNKNOWN promptly instead of hanging.
func TestOversizedInstanceSkipsVet(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-N", "6", "-K", "8", "-budget-ms", "5000"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "vet: skipped") {
		t.Errorf("stderr %q missing the vet-skipped notice", errb.String())
	}
	if !strings.Contains(out.String(), "UNKNOWN") {
		t.Errorf("stdout %q missing the UNKNOWN verdict", out.String())
	}
}

// TestVetTractable pins the analyzer-derived tractability gate. The
// expected cardinalities are the closed form Σ_{l=0..2N+1} K^l for the
// abstract queue's contents: absint must infer exactly that count from
// the Len guard, without ever materializing the sequence domain.
func TestVetTractable(t *testing.T) {
	tests := []struct {
		n, k, limit int
		want        bool
	}{
		{1, 2, 1 << 20, true},  // 1+2+4+8 = 15 sequences
		{2, 3, 1 << 20, true},  // lengths <= 5 over 3 values: 364
		{1, 2, 15, true},       // exactly at the limit
		{1, 2, 14, false},      // one under
		{6, 8, 1 << 20, false}, // 8^13 blows any sane limit
	}
	for _, tt := range tests {
		got := vetTractable(queue.Config{N: tt.n, Vals: tt.k}, tt.limit)
		if got != tt.want {
			t.Errorf("vetTractable(N=%d,K=%d,limit=%d) = %v, want %v", tt.n, tt.k, tt.limit, got, tt.want)
		}
	}
}

// TestStrictRefusesOverBudgetBound: in strict mode, a state-space bound
// (SV140) above -max-states refuses the run up front — the budgeted build
// would only discover the same fact after burning the whole budget.
func TestStrictRefusesOverBudgetBound(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-vet", "strict", "-max-states", "10"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "SV140") {
		t.Errorf("stderr %q missing the SV140 budget warning", errb.String())
	}
	if !strings.Contains(errb.String(), "exceeds -max-states 10") {
		t.Errorf("stderr %q missing the strict refusal message", errb.String())
	}
	// Warn mode only warns: the run proceeds (and the tiny budget then
	// stops the build with the usual UNKNOWN verdict).
	var out2, errb2 bytes.Buffer
	code = run([]string{"-vet", "warn", "-max-states", "10"}, &out2, &errb2)
	if code != 2 {
		t.Fatalf("warn-mode exit code = %d, want 2 (budget exhaustion)", code)
	}
	if !strings.Contains(errb2.String(), "SV140") {
		t.Errorf("warn-mode stderr %q missing the SV140 warning", errb2.String())
	}
	if !strings.Contains(out2.String(), "UNKNOWN") {
		t.Errorf("warn-mode stdout %q missing UNKNOWN", out2.String())
	}
}

// TestWorkersAndReduceValidation: absurd -workers counts and malformed
// -reduce modes are usage errors (exit 2 with a pointed message), never
// requests to be satisfied.
func TestWorkersAndReduceValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"zero workers", []string{"-workers", "0"}, "-workers must be >= 1"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be >= 1"},
		{"very negative workers", []string{"-workers", "-100000"}, "-workers must be >= 1"},
		{"absurd workers", []string{"-workers", "1000000"}, "exceeds the maximum"},
		{"bad reduce mode", []string{"-reduce", "magic"}, `invalid -reduce mode "magic"`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Errorf("run(%v) = %d, want 2 (stderr %q)", tc.args, code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errb.String(), tc.want)
			}
		})
	}
}

// TestProgressIntervalValidation mirrors agcheck's contract: non-positive
// -progress-interval is a usage error (exit 2), positive periods work.
func TestProgressIntervalValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"zero", []string{"-n", "1", "-k", "2", "-progress", "-progress-interval", "0"}, 2},
		{"negative", []string{"-n", "1", "-k", "2", "-progress-interval", "-5ms"}, 2},
		{"positive", []string{"-n", "1", "-k", "2", "-progress", "-progress-interval", "50ms"}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tc.args, code, tc.want, errb.String())
			}
			if tc.want == 2 && !strings.Contains(errb.String(), "-progress-interval must be positive") {
				t.Errorf("stderr %q missing the interval rejection", errb.String())
			}
		})
	}
}

// TestTraceOutput: the Figure 9 driver writes a loadable Chrome trace when
// asked; the scaling recipe in EXPERIMENTS.md depends on this path.
func TestTraceOutput(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := run([]string{"-n", "1", "-k", "2", "-workers", "2", "-trace", tracePath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr %q)", code, errb.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("no trace written: %v", err)
	}
	var wire struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(wire.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}

// TestReduceFlagVerifies: the full Appendix A replay still verifies end to
// end with reduction enabled, and reports the reduced CQ build as such.
func TestReduceFlagVerifies(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-n", "1", "-k", "2", "-reduce", "por,sym"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("run(%v) = %d, want 0 (stderr %q)", args, code, errb.String())
	}
	if !strings.Contains(out.String(), "[reduced: por,sym]") {
		t.Errorf("stdout missing reduced-build marker:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "VALID") {
		t.Errorf("stdout missing VALID verdict:\n%s", out.String())
	}
}
