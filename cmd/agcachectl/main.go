// Command agcachectl administers the persistent graph cache that agcheck
// and queueverify maintain under -cache-dir.
//
// Usage:
//
//	agcachectl fsck -cache-dir <dir> [-quarantine]
//	agcachectl gc   -cache-dir <dir> [-max-bytes <n>]
//	agcachectl stat -cache-dir <dir> [-json]
//
// fsck verifies every file in the cache: live entries must carry the
// content-addressed name of their own description digest, decode under the
// full codec checks (magic, version, trailing SHA-256), and satisfy the
// structural graph invariants; temp files, quarantined entries, and foreign
// files are reported too. With -quarantine, corrupt live entries are moved
// aside to *.quarantined. Exit codes: 0 = clean, 1 = findings, 2 = error.
//
// gc removes junk (quarantined entries, orphaned temp files) and, with
// -max-bytes, evicts least-recently-used live entries until the cache fits
// the bound. Eviction order is deterministic. Exit codes: 0 = done
// (including nothing to do), 2 = error.
//
// stat prints the cache's entry counts and total size. Exit codes: 0, 2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: agcachectl <command> [flags]

commands:
  fsck -cache-dir <dir> [-quarantine]   verify every cache file; exit 1 on findings
  gc   -cache-dir <dir> [-max-bytes n]  remove junk and evict LRU entries over the bound
  stat -cache-dir <dir> [-json]         print entry counts and total size
`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "fsck":
		return runFsck(rest, stdout, stderr)
	case "gc":
		return runGC(rest, stdout, stderr)
	case "stat":
		return runStat(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "agcachectl: unknown command %q\n%s", cmd, usage)
		return 2
	}
}

// openDir parses the shared -cache-dir flag and opens the cache. The
// directory must already exist: an admin tool that silently creates an empty
// cache at a mistyped path would report a spotless fsck of nothing.
func addDirFlag(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", "", "the cache directory to administer (required)")
}
