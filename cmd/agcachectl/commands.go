package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"opentla/internal/cache"
)

// openAdmin opens the cache for administration: the directory must already
// exist (no silent creation at a mistyped path) and orphaned temp files are
// kept so fsck can report them.
func openAdmin(dir string, stderr io.Writer) (*cache.Cache, int) {
	if dir == "" {
		fmt.Fprintln(stderr, "agcachectl: -cache-dir is required")
		return nil, 2
	}
	info, err := os.Stat(dir)
	if err != nil {
		fmt.Fprintf(stderr, "agcachectl: %v\n", err)
		return nil, 2
	}
	if !info.IsDir() {
		fmt.Fprintf(stderr, "agcachectl: %s is not a directory\n", dir)
		return nil, 2
	}
	c, err := cache.OpenWith(dir, cache.Options{Retries: -1, KeepOrphans: true})
	if err != nil {
		fmt.Fprintf(stderr, "agcachectl: %v\n", err)
		return nil, 2
	}
	return c, 0
}

func runFsck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agcachectl fsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := addDirFlag(fs)
	quarantine := fs.Bool("quarantine", false, "move corrupt live entries aside to *.quarantined")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c, code := openAdmin(*dir, stderr)
	if c == nil {
		return code
	}
	res, err := c.Fsck(*quarantine)
	if err != nil {
		fmt.Fprintf(stderr, "agcachectl: %v\n", err)
		return 2
	}
	for _, f := range res.Findings {
		action := ""
		if f.Quarantined {
			action = " [quarantined]"
		}
		fmt.Fprintf(stdout, "BAD  %s: %s%s\n", f.Name, f.Problem, action)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(stdout, "fsck: %d entries scanned, %d findings\n", res.Scanned, len(res.Findings))
		return 1
	}
	fmt.Fprintf(stdout, "fsck: %d entries scanned, clean\n", res.Scanned)
	return 0
}

func runGC(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agcachectl gc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := addDirFlag(fs)
	maxBytes := fs.Int64("max-bytes", 0, "evict LRU live entries until the cache is at most this large (0 = remove junk only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *maxBytes < 0 {
		fmt.Fprintln(stderr, "agcachectl: -max-bytes must be >= 0")
		return 2
	}
	c, code := openAdmin(*dir, stderr)
	if c == nil {
		return code
	}
	res, err := c.GC(*maxBytes)
	if err != nil {
		fmt.Fprintf(stderr, "agcachectl: %v\n", err)
		return 2
	}
	for _, name := range res.Removed {
		fmt.Fprintf(stdout, "removed %s\n", name)
	}
	fmt.Fprintf(stdout, "gc: removed %d files (%d bytes), %d bytes kept\n",
		len(res.Removed), res.FreedBytes, res.KeptBytes)
	return 0
}

// statJSON is the stable machine-readable shape of `stat -json`. Field names
// are a published contract (CI and scripts parse them with jq); extend it by
// adding fields, never by renaming or removing.
type statJSON struct {
	Snapshots   int   `json:"snapshots"`
	Checkpoints int   `json:"checkpoints"`
	Quarantined int   `json:"quarantined"`
	TempFiles   int   `json:"temp_files"`
	Other       int   `json:"other_files"`
	TotalBytes  int64 `json:"total_bytes"`
}

func runStat(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agcachectl stat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := addDirFlag(fs)
	asJSON := fs.Bool("json", false, "emit the counts as a single JSON object")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c, code := openAdmin(*dir, stderr)
	if c == nil {
		return code
	}
	st, err := c.Stat()
	if err != nil {
		fmt.Fprintf(stderr, "agcachectl: %v\n", err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(statJSON{
			Snapshots:   st.Snapshots,
			Checkpoints: st.Checkpoints,
			Quarantined: st.Quarantined,
			TempFiles:   st.TempFiles,
			Other:       st.Other,
			TotalBytes:  st.TotalBytes,
		}); err != nil {
			fmt.Fprintf(stderr, "agcachectl: %v\n", err)
			return 2
		}
		return 0
	}
	fmt.Fprintf(stdout, "snapshots:   %d\n", st.Snapshots)
	fmt.Fprintf(stdout, "checkpoints: %d\n", st.Checkpoints)
	fmt.Fprintf(stdout, "quarantined: %d\n", st.Quarantined)
	fmt.Fprintf(stdout, "temp files:  %d\n", st.TempFiles)
	fmt.Fprintf(stdout, "other files: %d\n", st.Other)
	fmt.Fprintf(stdout, "total bytes: %d\n", st.TotalBytes)
	return 0
}
