package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opentla/internal/cache"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureSnapshot is a tiny deterministic snapshot: one state, one self-loop.
// Its encoding is byte-stable, so the golden outputs (which include sizes)
// never drift.
func fixtureSnapshot() *ts.Snapshot {
	return &ts.Snapshot{
		Complete: true,
		States:   []*state.State{state.FromPairs("x", value.Int(0))},
		Inits:    []int{0},
		Offsets:  []int{0, 1},
		Targets:  []int32{0},
	}
}

// fixtureDir builds the scripted cache directory every golden scenario runs
// against: two good snapshots, one checkpoint, one corrupted entry, one
// orphaned temp file, one quarantined leftover, and one foreign file, all
// with pinned mtimes so gc's LRU order is deterministic.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	c, err := cache.OpenWith(dir, cache.Options{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	snap := fixtureSnapshot()
	for _, desc := range []string{"alpha", "beta"} {
		if err := c.Store(desc, snap); err != nil {
			t.Fatal(err)
		}
	}
	ck := &ts.Snapshot{Level: 1, States: snap.States, Inits: snap.Inits, Offsets: []int{0}, Targets: nil}
	if err := c.StoreCheckpoint("gamma", ck); err != nil {
		t.Fatal(err)
	}
	// Corrupt beta in place: still the right name, no longer decodable.
	if err := os.WriteFile(c.EntryPath("beta"), []byte("GARBAGE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"snap-12345.tmp":       []byte("torn"),
		"old.snap.quarantined": []byte("old"),
		"NOTES.txt":            []byte("hello"),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Pinned mtimes: alpha oldest, then gamma, then everything else.
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, ent := range ents { // ReadDir sorts by name: stable assignment
		mt := base.Add(time.Duration(i) * time.Minute)
		if ent.Name() == filepath.Base(c.EntryPath("alpha")) {
			mt = base.Add(-time.Hour) // oldest: first LRU eviction candidate
		}
		if err := os.Chtimes(filepath.Join(dir, ent.Name()), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runGolden runs one agcachectl invocation and compares combined output
// against testdata/<name>.golden, rewriting it under -update.
func runGolden(t *testing.T, name string, args []string, wantCode int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if code != wantCode {
		t.Errorf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, wantCode, stdout.String(), stderr.String())
	}
	got := stdout.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestFsckGolden(t *testing.T) {
	dir := fixtureDir(t)
	runGolden(t, "fsck", []string{"fsck", "-cache-dir", dir}, 1)
	// A second pass sees the same findings: plain fsck never mutates.
	runGolden(t, "fsck", []string{"fsck", "-cache-dir", dir}, 1)
}

func TestFsckQuarantineGolden(t *testing.T) {
	dir := fixtureDir(t)
	runGolden(t, "fsck_quarantine", []string{"fsck", "-cache-dir", dir, "-quarantine"}, 1)
	// The corrupt entry is now out of the live set; remaining findings are
	// the junk files plus the new quarantined entry.
	runGolden(t, "fsck_after_quarantine", []string{"fsck", "-cache-dir", dir}, 1)
}

func TestGCGolden(t *testing.T) {
	dir := fixtureDir(t)
	// Junk-only pass: quarantined + tmp go, live entries stay.
	runGolden(t, "gc_junk", []string{"gc", "-cache-dir", dir}, 0)
	// Bounded pass: evict LRU live entries down to 150 bytes (the corrupt
	// beta entry is 8 bytes, the checkpoint ~60; alpha, oldest, goes first).
	runGolden(t, "gc_bounded", []string{"gc", "-cache-dir", dir, "-max-bytes", "150"}, 0)
	// Determinism: repeating the bounded pass removes nothing further.
	runGolden(t, "gc_bounded_again", []string{"gc", "-cache-dir", dir, "-max-bytes", "150"}, 0)
}

func TestStatGolden(t *testing.T) {
	runGolden(t, "stat", []string{"stat", "-cache-dir", fixtureDir(t)}, 0)
}

// TestStatJSONGolden pins the `stat -json` schema: the golden file is the
// published field contract, and the output must stay parseable JSON whose
// counts agree with the human-readable stat.
func TestStatJSONGolden(t *testing.T) {
	dir := fixtureDir(t)
	runGolden(t, "stat_json", []string{"stat", "-cache-dir", dir, "-json"}, 0)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"stat", "-cache-dir", dir, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d\n%s", code, stderr.String())
	}
	var got map[string]int64
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("stat -json output is not JSON: %v\n%s", err, stdout.String())
	}
	for _, key := range []string{"snapshots", "checkpoints", "quarantined", "temp_files", "other_files", "total_bytes"} {
		if _, ok := got[key]; !ok {
			t.Errorf("stat -json missing schema field %q: %v", key, got)
		}
	}
}

func TestFsckCleanCache(t *testing.T) {
	dir := t.TempDir()
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("only", fixtureSnapshot()); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"fsck", "-cache-dir", dir}, &stdout, &stderr); code != 0 {
		t.Errorf("clean fsck exit = %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if want := "fsck: 1 entries scanned, clean\n"; stdout.String() != want {
		t.Errorf("stdout = %q, want %q", stdout.String(), want)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown command", []string{"prune"}, 2},
		{"fsck no dir", []string{"fsck"}, 2},
		{"gc negative bound", []string{"gc", "-cache-dir", "x", "-max-bytes", "-5"}, 2},
		{"stat missing dir", []string{"stat", "-cache-dir", filepath.Join(os.TempDir(), "agcachectl-no-such-dir")}, 2},
		{"help", []string{"help"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("exit = %d, want %d\nstderr: %s", code, tc.want, stderr.String())
			}
		})
	}
}

// TestStatOnFileNotDir: pointing the tool at a file must fail cleanly.
func TestStatOnFileNotDir(t *testing.T) {
	f := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"stat", "-cache-dir", f}, &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestFsckDoesNotSweepOrphans: the admin tool must report, not repair,
// orphaned temp files (only the checkers' cache.Open sweeps them).
func TestFsckDoesNotSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "snap-1.tmp")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"fsck", "-cache-dir", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, stderr.String())
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Errorf("fsck removed the orphan it should only report: %v", err)
	}
}
