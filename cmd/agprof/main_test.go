package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/models"
	"opentla/internal/obs"
	"opentla/internal/trace"
)

// syntheticTrace is a hand-built capture with round numbers so every
// percentage in the output is exact:
//
//	worker 0: expand [0,80) with 20µs canon, wait [80,100)
//	worker 1: expand [0,100), wait [100,100)
//	barrier:  commit [100,110)
//	cache:    load [110,120)
//
// wall 120µs; succgen (80−20+100)/2 = 80, reduction 10, barrier 10+10 = 20,
// cache 10 — attribution sums to exactly 100%.
const syntheticTrace = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","pid":1,"tid":0,"ts":0,"args":{"name":"opentla"}},
{"name":"thread_name","ph":"M","pid":1,"tid":0,"ts":0,"args":{"name":"worker 0"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"worker 1"}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"ts":0,"args":{"name":"barrier"}},
{"name":"thread_name","ph":"M","pid":1,"tid":3,"ts":0,"args":{"name":"cache"}},
{"name":"expand","cat":"explore","ph":"X","pid":1,"tid":0,"ts":0,"dur":80,"args":{"level":0,"states":4,"succs":12,"canon_ns":20000}},
{"name":"barrier-wait","cat":"explore","ph":"X","pid":1,"tid":0,"ts":80,"dur":20,"args":{"level":0}},
{"name":"expand","cat":"explore","ph":"X","pid":1,"tid":1,"ts":0,"dur":100,"args":{"level":0,"states":5,"succs":15,"canon_ns":0}},
{"name":"barrier-wait","cat":"explore","ph":"X","pid":1,"tid":1,"ts":100,"dur":0,"args":{"level":0}},
{"name":"commit","cat":"explore","ph":"X","pid":1,"tid":2,"ts":100,"dur":10,"args":{"level":0}},
{"name":"load","cat":"cache","ph":"X","pid":1,"tid":3,"ts":110,"dur":10}
]}`

const syntheticReport = `{"schema_version":6,"metrics":[
{"name":"opentla_store_lock_acquisitions_total","type":"counter","value":1000},
{"name":"opentla_store_lock_contended_total","type":"counter","value":30},
{"name":"opentla_store_lock_contended_total","labels":"shard=\"3\"","type":"counter","value":20},
{"name":"opentla_store_lock_contended_total","labels":"shard=\"7\"","type":"counter","value":10},
{"name":"opentla_store_collision_probes_total","type":"counter","value":5},
{"name":"opentla_cache_hits_total","type":"counter","value":1}
]}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSyntheticAttribution(t *testing.T) {
	tracePath := writeTemp(t, "trace.json", syntheticTrace)
	reportPath := writeTemp(t, "report.json", syntheticReport)
	var out, errb bytes.Buffer
	if code := run([]string{"-trace", tracePath, "-report", reportPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	wants := []string{
		"agprof: 2 workers, 1 explorations, 1 levels, wall 0.12ms",
		"1. successor generation",
		"66.7%",
		"attributed: 100.0% of wall",
		"store locks: 1000 acquisitions, 30 contended (3.0%), 5 collision probes",
		`hot shards:  shard="3", shard="7"`,
		"graph cache: 1 hits, 0 misses",
	}
	for _, want := range wants {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The ranked list must be ordered by wall share: succgen > barrier >
	// reduction >= cache on this capture.
	rank := regexp.MustCompile(`(?m)^  \d\. (\S+)`).FindAllStringSubmatch(got, -1)
	if len(rank) != 4 || rank[0][1] != "successor" || rank[1][1] != "barrier" {
		t.Errorf("ranking wrong: %v\n%s", rank, got)
	}
}

// TestMaxCommitGate: the synthetic capture's serial seal is 10µs of a 120µs
// wall (8.3%), so a 10% gate passes and a 5% gate fails with exit 1.
func TestMaxCommitGate(t *testing.T) {
	tracePath := writeTemp(t, "trace.json", syntheticTrace)
	var out, errb bytes.Buffer
	if code := run([]string{"-trace", tracePath, "-max-commit-pct", "10"}, &out, &errb); code != 0 {
		t.Fatalf("8.3%% under a 10%% gate must pass, got exit %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-trace", tracePath, "-max-commit-pct", "5"}, &out, &errb); code != 1 {
		t.Fatalf("8.3%% over a 5%% gate must exit 1, got %d", code)
	}
	if !strings.Contains(errb.String(), "exceeds -max-commit-pct") {
		t.Errorf("gate failure not explained: %s", errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("missing -trace must exit 2, got %d", code)
	}
	if code := run([]string{"-trace", "/nonexistent/t.json"}, &out, &errb); code != 2 {
		t.Fatalf("unreadable trace must exit 2, got %d", code)
	}
	empty := writeTemp(t, "empty.json", `{"traceEvents":[]}`)
	if code := run([]string{"-trace", empty}, &out, &errb); code != 2 {
		t.Fatalf("trace without worker tracks must exit 2, got %d", code)
	}
}

// TestEndToEnd runs agprof over a real 4-worker traced build of a bundled
// model: every configured worker shows up, and the four buckets account for
// the bulk of the measured wall (the acceptance bar for the analyzer).
func TestEndToEnd(t *testing.T) {
	m := engine.NoLimit()
	rec := obs.New(m)
	tr := trace.New()
	rec.SetTracer(tr)
	reg := metrics.NewRegistry()
	rec.SetMetrics(reg)

	model, err := models.ByName("doublequeue")
	if err != nil {
		t.Fatal(err)
	}
	sys := model.System()
	sys.Workers = 4
	if _, err := sys.BuildWith(m); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	if err := tr.WriteFile(tracePath); err != nil {
		t.Fatal(err)
	}
	reportPath := filepath.Join(dir, "report.json")
	rep := rec.Finish("test", obs.Config{Workers: 4}, engine.Holds, "")
	if err := obs.WriteFile(reportPath, rep); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-trace", tracePath, "-report", reportPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "agprof: 4 workers") {
		t.Errorf("want 4 worker tracks:\n%s", got)
	}
	for _, want := range []string{"worker 0", "worker 3", "successor generation", "barrier", "attributed:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Attribution should explain most of the wall; allow slack for loop
	// overhead on a tiny model but fail on gross undercounting.
	mAttr := regexp.MustCompile(`attributed: ([0-9.]+)% of wall`).FindStringSubmatch(got)
	if mAttr == nil {
		t.Fatalf("no attribution line:\n%s", got)
	}
	share, err := strconv.ParseFloat(mAttr[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if share < 80 || share > 120 {
		t.Errorf("attributed share %.1f%% implausible:\n%s", share, got)
	}
}
