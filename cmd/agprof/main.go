// Command agprof analyzes a performance-telemetry capture: the Chrome Trace
// Event JSON written by agcheck/queueverify -trace, optionally joined with
// the run report written by -report. It prints per-worker utilization and a
// ranked bottleneck attribution of the measured wall time across four
// buckets — successor generation, barrier (wait + commit), reduction
// (canonicalization), and cache I/O — so "where did the time go?" has a
// one-command answer.
//
// Usage:
//
//	agprof -trace out.json [-report report.json] [-max-commit-pct 10]
//
// -max-commit-pct gates the single-threaded barrier-seal share of wall: CI
// uses it to assert the serial commit bucket stays an Amdahl non-issue.
//
// Exit codes: 0 = analyzed (and gate passed, if set), 1 = gate exceeded,
// 2 = usage or unreadable input.
package main

import (
	"fmt"
	"io"
	"os"

	"flag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "trace JSON written by -trace (required)")
	reportPath := fs.String("report", "", "run report written by -report (optional: adds contention and cache counters)")
	maxCommitPct := fs.Float64("max-commit-pct", 0,
		"fail (exit 1) if the single-threaded barrier-seal share of wall exceeds this percentage (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tracePath == "" || fs.NArg() > 0 {
		fmt.Fprintln(stderr, "usage: agprof -trace out.json [-report report.json] [-max-commit-pct 10]")
		return 2
	}

	prof, err := loadTrace(*tracePath)
	if err != nil {
		fmt.Fprintln(stderr, "agprof:", err)
		return 2
	}
	var rep *reportMetrics
	if *reportPath != "" {
		rep, err = loadReport(*reportPath)
		if err != nil {
			fmt.Fprintln(stderr, "agprof:", err)
			return 2
		}
	}
	printProfile(stdout, prof, rep)
	if *maxCommitPct > 0 {
		if share := 100 * prof.serialCommitShare(); share > *maxCommitPct {
			fmt.Fprintf(stderr, "agprof: serial commit share %.1f%% exceeds -max-commit-pct %.1f%%\n",
				share, *maxCommitPct)
			return 1
		}
	}
	return 0
}
