// Command agprof analyzes a performance-telemetry capture: the Chrome Trace
// Event JSON written by agcheck/queueverify -trace, optionally joined with
// the run report written by -report. It prints per-worker utilization and a
// ranked bottleneck attribution of the measured wall time across four
// buckets — successor generation, barrier (wait + commit), reduction
// (canonicalization), and cache I/O — so "where did the time go?" has a
// one-command answer.
//
// Usage:
//
//	agprof -trace out.json [-report report.json]
//
// Exit codes: 0 = analyzed, 2 = usage or unreadable input.
package main

import (
	"fmt"
	"io"
	"os"

	"flag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("agprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "trace JSON written by -trace (required)")
	reportPath := fs.String("report", "", "run report written by -report (optional: adds contention and cache counters)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tracePath == "" || fs.NArg() > 0 {
		fmt.Fprintln(stderr, "usage: agprof -trace out.json [-report report.json]")
		return 2
	}

	prof, err := loadTrace(*tracePath)
	if err != nil {
		fmt.Fprintln(stderr, "agprof:", err)
		return 2
	}
	var rep *reportMetrics
	if *reportPath != "" {
		rep, err = loadReport(*reportPath)
		if err != nil {
			fmt.Fprintln(stderr, "agprof:", err)
			return 2
		}
	}
	printProfile(stdout, prof, rep)
	return 0
}
