package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// traceEvent is the subset of the Chrome Trace Event wire format agprof
// reads. Slice args are integers; metadata args (thread names) are strings,
// so Args stays raw and is decoded per use.
type traceEvent struct {
	Name string                     `json:"name"`
	Cat  string                     `json:"cat"`
	Ph   string                     `json:"ph"`
	TID  int64                      `json:"tid"`
	TS   float64                    `json:"ts"`  // microseconds
	Dur  float64                    `json:"dur"` // microseconds
	Args map[string]json.RawMessage `json:"args"`
}

// workerProf aggregates one worker track's slices (all times microseconds).
type workerProf struct {
	name   string
	busy   float64 // Σ "expand" durations
	wait   float64 // Σ "barrier-wait" durations
	canon  float64 // Σ canon_ns args, converted to µs
	commit float64 // Σ "commit" durations (parallel barrier phases)
}

// profile is the attribution agprof derives from one trace.
//
// The model follows the explorer's critical path. Each BFS level is a
// parallel phase — participating workers run expand then barrier-wait
// slices ending together when the slowest worker finishes, then (since the
// barrier went parallel) "commit" slices for the partition-numbering and
// row-remap phases — interleaved with the single-threaded barrier seal on
// its own track. The level's wall span (earliest worker slice start to the
// latest end, grouped by the slices' run and level args — one process may
// run many explorations, each restarting at level 0) is allocated to the
// succgen/reduction/barrier buckets proportionally to the participants'
// lane time, so narrow levels that used fewer workers don't skew the
// shares. Seal and cache slices are single-lane and count directly.
// Measured wall is the sum of the explorations' spans plus cache I/O (which
// brackets them); whatever the buckets don't cover is inter-level loop
// overhead, reported as the unattributed remainder.
type profile struct {
	workers []workerProf
	runs    int     // distinct explorations seen
	levels  int     // serial seal slices seen
	wall    float64 // Σ exploration spans + cache I/O, µs

	succgen   float64 // level wall share: expansion minus canonicalization
	reduction float64 // level wall share: canonicalization
	waitAvg   float64 // level wall share: barrier wait
	commitPar float64 // level wall share: parallel commit phases
	commit    float64 // Σ barrier seal (single-threaded, counts once)
	cache     float64 // Σ cache-track slices
}

// barrier is the full barrier bucket: idle wait, the serial seal, and the
// parallel commit phases.
func (p *profile) barrier() float64 { return p.waitAvg + p.commit + p.commitPar }

// serialCommitShare is the single-threaded seal's fraction of wall — the
// Amdahl ceiling on barrier scaling, gated in CI via -max-commit-pct.
func (p *profile) serialCommitShare() float64 {
	if p.wall <= 0 {
		return 0
	}
	return p.commit / p.wall
}

// attributed is the wall share the four buckets explain.
func (p *profile) attributed() float64 {
	return p.succgen + p.reduction + p.barrier() + p.cache
}

// loadTrace parses a -trace capture and derives its profile.
func loadTrace(path string) (*profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wire struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		return nil, fmt.Errorf("%s: not a trace JSON: %w", path, err)
	}
	return analyze(wire.TraceEvents)
}

// analyze buckets a trace's slices (see profile for the attribution model).
func analyze(events []traceEvent) (*profile, error) {
	names := map[int64]string{} // tid → track name
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			var n string
			json.Unmarshal(e.Args["name"], &n)
			names[e.TID] = n
		}
	}

	p := &profile{}
	byWorker := map[int64]*workerProf{}
	type span struct{ start, end float64 }
	grow := func(spans map[[2]int64]*span, key [2]int64, e traceEvent) {
		d := spans[key]
		if d == nil {
			spans[key] = &span{start: e.TS, end: e.TS + e.Dur}
			return
		}
		if e.TS < d.start {
			d.start = e.TS
		}
		if end := e.TS + e.Dur; end > d.end {
			d.end = end
		}
	}
	intArg := func(e traceEvent, name string) int64 {
		var v int64
		json.Unmarshal(e.Args[name], &v)
		return v
	}
	drains := map[[2]int64]*span{} // {run, level} → level wall span (worker lanes)
	runs := map[[2]int64]*span{}   // {run, 0}     → whole-exploration span
	var laneBusy, laneCanon, laneWait, laneCommit float64
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		track := names[e.TID]
		isWorker := strings.HasPrefix(track, "worker ")
		switch {
		case isWorker:
			w := byWorker[e.TID]
			if w == nil {
				w = &workerProf{name: track}
				byWorker[e.TID] = w
			}
			run := intArg(e, "run")
			grow(drains, [2]int64{run, intArg(e, "level")}, e)
			grow(runs, [2]int64{run, 0}, e)
			switch e.Name {
			case "expand":
				w.busy += e.Dur
				canon := float64(intArg(e, "canon_ns")) / 1e3
				w.canon += canon
				laneBusy += e.Dur
				laneCanon += canon
			case "barrier-wait":
				w.wait += e.Dur
				laneWait += e.Dur
			case "commit":
				w.commit += e.Dur
				laneCommit += e.Dur
			}
		case track == "barrier":
			if e.Name == "commit" {
				p.commit += e.Dur
				p.levels++
				grow(drains, [2]int64{intArg(e, "run"), intArg(e, "level")}, e)
				grow(runs, [2]int64{intArg(e, "run"), 0}, e)
			}
		case track == "cache":
			p.cache += e.Dur
		}
	}
	if len(byWorker) == 0 {
		return nil, fmt.Errorf("no worker tracks in trace (was it captured with -trace?)")
	}

	var drainTotal float64
	for _, d := range drains {
		drainTotal += d.end - d.start
	}
	// The level span includes the serial seal (its slice grows the span, and
	// in a live trace the parallel commit phases bracket it anyway); take it
	// back out before lane allocation so it isn't double-counted.
	drainTotal -= p.commit
	if drainTotal < 0 {
		drainTotal = 0
	}
	if laneTotal := laneBusy + laneWait + laneCommit; laneTotal > 0 {
		p.succgen = drainTotal * (laneBusy - laneCanon) / laneTotal
		p.reduction = drainTotal * laneCanon / laneTotal
		p.waitAvg = drainTotal * laneWait / laneTotal
		p.commitPar = drainTotal * laneCommit / laneTotal
	}
	p.runs = len(runs)
	for _, r := range runs {
		p.wall += r.end - r.start
	}
	p.wall += p.cache

	for _, w := range byWorker {
		p.workers = append(p.workers, *w)
	}
	sort.Slice(p.workers, func(i, j int) bool { return p.workers[i].name < p.workers[j].name })
	return p, nil
}

// reportMetrics is the slice of a run report agprof joins in: the metrics
// section (schema_version >= 6).
type reportMetrics struct {
	acquisitions int64
	contended    int64
	probes       int64
	cacheHits    int64
	cacheMisses  int64
	hotShards    []string // shard labels of contended shards, most-contended first
}

func loadReport(path string) (*reportMetrics, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wire struct {
		SchemaVersion int `json:"schema_version"`
		Metrics       []struct {
			Name   string `json:"name"`
			Labels string `json:"labels"`
			Value  int64  `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		return nil, fmt.Errorf("%s: not a run report: %w", path, err)
	}
	rm := &reportMetrics{}
	type shardCount struct {
		label string
		n     int64
	}
	var shards []shardCount
	for _, m := range wire.Metrics {
		switch m.Name {
		case "opentla_store_lock_acquisitions_total":
			rm.acquisitions = m.Value
		case "opentla_store_lock_contended_total":
			if m.Labels == "" {
				rm.contended = m.Value
			} else {
				shards = append(shards, shardCount{label: m.Labels, n: m.Value})
			}
		case "opentla_store_collision_probes_total":
			rm.probes = m.Value
		case "opentla_cache_hits_total":
			rm.cacheHits = m.Value
		case "opentla_cache_misses_total":
			rm.cacheMisses = m.Value
		}
	}
	sort.Slice(shards, func(i, j int) bool {
		if shards[i].n != shards[j].n {
			return shards[i].n > shards[j].n
		}
		return shards[i].label < shards[j].label
	})
	for _, s := range shards {
		rm.hotShards = append(rm.hotShards, s.label)
	}
	return rm, nil
}

// ms renders a µs quantity as milliseconds.
func ms(us float64) string { return fmt.Sprintf("%.2fms", us/1e3) }

// pct renders part as a percentage of whole (0 when whole is 0).
func pct(part, whole float64) string {
	if whole <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}

// printProfile renders the analysis: per-worker utilization over the workers
// that did work (idle workers' tracks are suppressed at trace-write time and
// never reach the profile), then the four buckets ranked by wall share, then
// (with a report) contention counters.
func printProfile(w io.Writer, p *profile, rep *reportMetrics) {
	fmt.Fprintf(w, "agprof: %d workers, %d explorations, %d levels, wall %s\n\n",
		len(p.workers), p.runs, p.levels, ms(p.wall))

	var busyTotal float64
	fmt.Fprintln(w, "per-worker utilization:")
	for _, wp := range p.workers {
		line := fmt.Sprintf("  %-10s busy %-7s barrier-wait %-7s commit %s",
			wp.name, pct(wp.busy, p.wall), pct(wp.wait, p.wall), pct(wp.commit, p.wall))
		if wp.canon > 0 {
			line += fmt.Sprintf("  (canon %s)", pct(wp.canon, p.wall))
		}
		fmt.Fprintln(w, line)
		busyTotal += wp.busy + wp.commit
	}
	fmt.Fprintf(w, "  mean utilization: %s over %d active workers\n",
		pct(busyTotal, float64(len(p.workers))*p.wall), len(p.workers))

	type bucket struct {
		name   string
		us     float64
		detail string
	}
	buckets := []bucket{
		{"successor generation", p.succgen, ""},
		{"barrier", p.barrier(), fmt.Sprintf("(wait %s, serial seal %s, parallel commit %s)",
			pct(p.waitAvg, p.wall), pct(p.commit, p.wall), pct(p.commitPar, p.wall))},
		{"reduction", p.reduction, "(canonicalization)"},
		{"cache", p.cache, ""},
	}
	sort.SliceStable(buckets, func(i, j int) bool { return buckets[i].us > buckets[j].us })

	fmt.Fprintln(w, "\nbottleneck attribution (% of wall):")
	for i, b := range buckets {
		line := fmt.Sprintf("  %d. %-21s %-7s", i+1, b.name, pct(b.us, p.wall))
		if b.detail != "" {
			line += " " + b.detail
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "  attributed: %s of wall\n", pct(p.attributed(), p.wall))
	fmt.Fprintf(w, "  serial commit share: %s of wall\n", pct(p.commit, p.wall))

	if rep == nil {
		return
	}
	fmt.Fprintln(w, "\nfrom report metrics:")
	fmt.Fprintf(w, "  store locks: %d acquisitions, %d contended (%s), %d collision probes\n",
		rep.acquisitions, rep.contended, pct(float64(rep.contended), float64(rep.acquisitions)), rep.probes)
	if len(rep.hotShards) > 0 {
		n := len(rep.hotShards)
		if n > 4 {
			n = 4
		}
		fmt.Fprintf(w, "  hot shards:  %s\n", strings.Join(rep.hotShards[:n], ", "))
	}
	fmt.Fprintf(w, "  graph cache: %d hits, %d misses\n", rep.cacheHits, rep.cacheMisses)
}
