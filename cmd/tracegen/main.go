// Command tracegen reproduces Figure 2 of Abadi & Lamport, "Open Systems in
// TLA": the state table of the two-phase handshake protocol sending a
// sequence of values.
//
// Usage:
//
//	tracegen                      (the paper's 37, 4, 19)
//	tracegen -values 7,8,9 -chan c
//
// Exit codes: 0 = trace generated, 2 = invalid flags or generation failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"opentla/internal/cache"
	"opentla/internal/engine"
	"opentla/internal/handshake"
	"opentla/internal/obs"
	"opentla/internal/tracetab"
	"opentla/internal/value"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	valsFlag := fs.String("values", "37,4,19", "comma-separated values to send (at least one)")
	chanName := fs.String("chan", "c", "channel name (no dots, commas, or spaces)")
	// Accepted for CLI uniformity with agcheck and queueverify; trace
	// generation builds no state graphs, so these settings have no effect
	// here (invalid cache flag combinations still fail).
	_ = engine.AddWorkersFlag(fs)
	var cf cache.Flags
	cf.AddFlags(fs)
	pf := obs.AddProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := cf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 2
	}
	stopProfiles, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
		}
	}()
	if *chanName == "" || strings.ContainsAny(*chanName, ". ,") {
		fmt.Fprintf(os.Stderr, "tracegen: invalid channel name %q (must be non-empty, no dots, commas, or spaces)\n", *chanName)
		return 2
	}
	var vals []value.Value
	for _, part := range strings.Split(*valsFlag, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: parsing value %q: %v\n", part, err)
			return 2
		}
		vals = append(vals, value.Int(n))
	}
	if len(vals) == 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -values must list at least one value")
		return 2
	}
	c := handshake.Chan(*chanName)
	b, err := c.Trace(value.Int(0), vals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 2
	}
	fmt.Printf("Two-phase handshake on channel %s (Fig. 2):\n\n", *chanName)
	fmt.Print(tracetab.Table(b, []string{c.Ack(), c.Sig(), c.Val()}))
	fmt.Printf("\nsteps: %s  (%d states, %d sends)\n", strings.Join(tracetab.Diff(b), " ; "), len(b), len(vals))
	return 0
}
