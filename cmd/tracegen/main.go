// Command tracegen reproduces Figure 2 of Abadi & Lamport, "Open Systems in
// TLA": the state table of the two-phase handshake protocol sending a
// sequence of values.
//
// Usage:
//
//	tracegen                      (the paper's 37, 4, 19)
//	tracegen -values 7,8,9 -chan c
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"opentla/internal/handshake"
	"opentla/internal/trace"
	"opentla/internal/value"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	valsFlag := fs.String("values", "37,4,19", "comma-separated values to send")
	chanName := fs.String("chan", "c", "channel name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var vals []value.Value
	for _, part := range strings.Split(*valsFlag, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return fmt.Errorf("parsing value %q: %w", part, err)
		}
		vals = append(vals, value.Int(n))
	}
	c := handshake.Chan(*chanName)
	b, err := c.Trace(value.Int(0), vals)
	if err != nil {
		return err
	}
	fmt.Printf("Two-phase handshake on channel %s (Fig. 2):\n\n", *chanName)
	fmt.Print(trace.Table(b, []string{c.Ack(), c.Sig(), c.Val()}))
	fmt.Println("\nsteps:", strings.Join(trace.Diff(b), " ; "))
	return nil
}
