// Package value implements the value universe of the TLA fragment used in
// this repository: booleans, integers, strings, and finite tuples/sequences.
//
// Values are immutable. Tuples double as finite sequences, matching the
// paper's usage where angle brackets form sequences and Head/Tail/∘ operate
// on them (Abadi & Lamport, "Open Systems in TLA", Appendix A.1).
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// The kinds of values in the universe.
const (
	KindBool Kind = iota + 1
	KindInt
	KindString
	KindTuple
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is an immutable TLA value. The zero Value is invalid; construct
// values with Bool, Int, Str, and Tuple.
type Value struct {
	kind Kind
	b    bool
	i    int64
	s    string
	t    []Value // not aliased externally; treated as immutable
}

// Bool returns the boolean value v.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int returns the integer value v.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns the string value v.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Tuple returns the tuple (equivalently, finite sequence) of the given
// elements. The argument slice is copied; Tuple() is the empty sequence ⟨⟩.
func Tuple(elems ...Value) Value {
	t := make([]Value, len(elems))
	copy(t, elems)
	return Value{kind: KindTuple, t: t}
}

// True and False are the boolean constants.
var (
	True  = Bool(true)
	False = Bool(false)
)

// Empty is the empty sequence ⟨⟩.
var Empty = Tuple()

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v was constructed by one of the constructors
// (as opposed to being a zero Value).
func (v Value) IsValid() bool { return v.kind != 0 }

// AsBool returns the boolean payload. The second result is false if v is
// not a boolean.
func (v Value) AsBool() (bool, bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.b, true
}

// AsInt returns the integer payload. The second result is false if v is
// not an integer.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return v.i, true
}

// AsString returns the string payload. The second result is false if v is
// not a string.
func (v Value) AsString() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.s, true
}

// Len returns the length of a tuple value, or -1 if v is not a tuple.
func (v Value) Len() int {
	if v.kind != KindTuple {
		return -1
	}
	return len(v.t)
}

// At returns the i-th element (0-based) of a tuple value. The second result
// is false if v is not a tuple or i is out of range.
func (v Value) At(i int) (Value, bool) {
	if v.kind != KindTuple || i < 0 || i >= len(v.t) {
		return Value{}, false
	}
	return v.t[i], true
}

// Head returns the first element of a nonempty sequence. The second result
// is false if v is not a nonempty sequence.
func (v Value) Head() (Value, bool) {
	if v.kind != KindTuple || len(v.t) == 0 {
		return Value{}, false
	}
	return v.t[0], true
}

// Tail returns the sequence without its first element. The second result is
// false if v is not a nonempty sequence.
func (v Value) Tail() (Value, bool) {
	if v.kind != KindTuple || len(v.t) == 0 {
		return Value{}, false
	}
	rest := make([]Value, len(v.t)-1)
	copy(rest, v.t[1:])
	return Value{kind: KindTuple, t: rest}, true
}

// Concat returns the concatenation v ∘ w of two sequences. The second
// result is false unless both v and w are tuples.
func (v Value) Concat(w Value) (Value, bool) {
	if v.kind != KindTuple || w.kind != KindTuple {
		return Value{}, false
	}
	t := make([]Value, 0, len(v.t)+len(w.t))
	t = append(t, v.t...)
	t = append(t, w.t...)
	return Value{kind: KindTuple, t: t}, true
}

// Append returns the sequence v ∘ ⟨e⟩. The second result is false unless v
// is a tuple.
func (v Value) Append(e Value) (Value, bool) {
	if v.kind != KindTuple {
		return Value{}, false
	}
	t := make([]Value, 0, len(v.t)+1)
	t = append(t, v.t...)
	t = append(t, e)
	return Value{kind: KindTuple, t: t}, true
}

// Elems returns a copy of the elements of a tuple value (nil if v is not a
// tuple).
func (v Value) Elems() []Value {
	if v.kind != KindTuple {
		return nil
	}
	out := make([]Value, len(v.t))
	copy(out, v.t)
	return out
}

// Equal reports whether v and w are the same value. Values of different
// kinds are never equal.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindBool:
		return v.b == w.b
	case KindInt:
		return v.i == w.i
	case KindString:
		return v.s == w.s
	case KindTuple:
		if len(v.t) != len(w.t) {
			return false
		}
		for i := range v.t {
			if !v.t[i].Equal(w.t[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare defines a total order on values: first by kind, then by payload
// (tuples lexicographically). It returns -1, 0, or 1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindBool:
		switch {
		case v.b == w.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(v.s, w.s)
	case KindTuple:
		n := len(v.t)
		if len(w.t) < n {
			n = len(w.t)
		}
		for i := 0; i < n; i++ {
			if c := v.t[i].Compare(w.t[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.t) < len(w.t):
			return -1
		case len(v.t) > len(w.t):
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// String renders the value in TLA-like notation: booleans as TRUE/FALSE,
// sequences in angle brackets.
func (v Value) String() string {
	var sb strings.Builder
	v.write(&sb)
	return sb.String()
}

func (v Value) write(sb *strings.Builder) {
	switch v.kind {
	case KindBool:
		if v.b {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindTuple:
		sb.WriteString("<<")
		for i := range v.t {
			if i > 0 {
				sb.WriteString(", ")
			}
			v.t[i].write(sb)
		}
		sb.WriteString(">>")
	case 0:
		sb.WriteString("<invalid>")
	default:
		fmt.Fprintf(sb, "<unknown kind %d>", int(v.kind))
	}
}

// FNV-1a 64-bit constants. The hash is unrolled by hand: fingerprints are
// computed once per candidate successor state during exploration, and
// hash/fnv's allocation plus interface-dispatched writes dominated that
// path. The byte stream (and hence every fingerprint) is identical to the
// previous hash/fnv implementation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns a 64-bit hash of the value, stable across runs.
// Distinct values may collide only with FNV-64 probability; equality
// checks in hot paths should pair Fingerprint with Equal.
func (v Value) Fingerprint() uint64 {
	return v.fingerprintInto(fnvOffset64)
}

// fingerprintInto folds v's canonical byte encoding into the running
// FNV-1a hash h.
func (v Value) fingerprintInto(h uint64) uint64 {
	h = (h ^ uint64(byte(v.kind))) * fnvPrime64
	switch v.kind {
	case KindBool:
		if v.b {
			h = (h ^ 1) * fnvPrime64
		} else {
			h = h * fnvPrime64
		}
	case KindInt:
		u := uint64(v.i)
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(u>>(8*i)))) * fnvPrime64
		}
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * fnvPrime64
		}
		h = h * fnvPrime64 // the terminating 0 byte
	case KindTuple:
		n := uint32(len(v.t))
		for i := 0; i < 4; i++ {
			h = (h ^ uint64(byte(n>>(8*i)))) * fnvPrime64
		}
		for i := range v.t {
			h = v.t[i].fingerprintInto(h)
		}
	}
	return h
}

// Ints returns the domain {lo, lo+1, …, hi} as a slice of integer values.
// It returns nil if hi < lo.
func Ints(lo, hi int64) []Value {
	if hi < lo {
		return nil
	}
	out := make([]Value, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, Int(i))
	}
	return out
}

// Bools returns the two-element boolean domain {FALSE, TRUE}.
func Bools() []Value { return []Value{False, True} }

// Bits returns the domain {0, 1} as integers, the representation the paper
// uses for the handshake signal and acknowledgement wires.
func Bits() []Value { return []Value{Int(0), Int(1)} }

// Seqs returns every sequence over the element domain elems with length at
// most maxLen, ordered by length and then lexicographically. This is the
// finite domain of a bounded queue's contents.
func Seqs(elems []Value, maxLen int) []Value {
	var out []Value
	cur := []Value{Empty}
	out = append(out, Empty)
	for l := 1; l <= maxLen; l++ {
		next := make([]Value, 0, len(cur)*len(elems))
		for _, prefix := range cur {
			for _, e := range elems {
				s, _ := prefix.Append(e)
				next = append(next, s)
			}
		}
		out = append(out, next...)
		cur = next
	}
	return out
}

// SortValues sorts a slice of values in place by Compare.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
