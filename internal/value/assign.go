package value

// ForEachAssignment enumerates every assignment of the named variables to
// values from their domains, invoking f with a reused map (callers must copy
// if they retain it). Enumeration stops early if f returns false.
// ForEachAssignment reports whether enumeration ran to completion. With no
// names it calls f once with an empty map.
func ForEachAssignment(names []string, domains map[string][]Value, f func(map[string]Value) bool) bool {
	asgn := make(map[string]Value, len(names))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			return f(asgn)
		}
		dom := domains[names[i]]
		for _, v := range dom {
			asgn[names[i]] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// AssignmentCount returns the number of assignments ForEachAssignment would
// enumerate, or -1 on overflow past maxCount.
func AssignmentCount(names []string, domains map[string][]Value, maxCount int) int {
	n := 1
	for _, name := range names {
		n *= len(domains[name])
		if n > maxCount {
			return -1
		}
	}
	return n
}
