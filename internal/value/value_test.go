package value

import (
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Bool(true), KindBool},
		{Int(42), KindInt},
		{Str("x"), KindString},
		{Tuple(Int(1), Int(2)), KindTuple},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if !c.v.IsValid() {
			t.Errorf("%s: not valid", c.v)
		}
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero value should be invalid")
	}
}

func TestAccessors(t *testing.T) {
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool(TRUE) failed")
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Error("AsBool on int should fail")
	}
	if i, ok := Int(-7).AsInt(); !ok || i != -7 {
		t.Error("AsInt(-7) failed")
	}
	if s, ok := Str("hi").AsString(); !ok || s != "hi" {
		t.Error("AsString failed")
	}
	if _, ok := Str("hi").AsInt(); ok {
		t.Error("AsInt on string should fail")
	}
}

func TestSequenceOps(t *testing.T) {
	s := Tuple(Int(1), Int(2), Int(3))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	h, ok := s.Head()
	if !ok || !h.Equal(Int(1)) {
		t.Fatalf("Head = %s", h)
	}
	tl, ok := s.Tail()
	if !ok || !tl.Equal(Tuple(Int(2), Int(3))) {
		t.Fatalf("Tail = %s", tl)
	}
	if _, ok := Empty.Head(); ok {
		t.Error("Head of empty should fail")
	}
	if _, ok := Empty.Tail(); ok {
		t.Error("Tail of empty should fail")
	}
	if _, ok := Int(3).Head(); ok {
		t.Error("Head of int should fail")
	}
	cat, ok := Tuple(Int(1)).Concat(Tuple(Int(2)))
	if !ok || !cat.Equal(Tuple(Int(1), Int(2))) {
		t.Fatalf("Concat = %s", cat)
	}
	app, ok := Empty.Append(Int(9))
	if !ok || !app.Equal(Tuple(Int(9))) {
		t.Fatalf("Append = %s", app)
	}
	if v, ok := s.At(2); !ok || !v.Equal(Int(3)) {
		t.Error("At(2) failed")
	}
	if _, ok := s.At(3); ok {
		t.Error("At(3) should fail")
	}
}

func TestSequenceImmutability(t *testing.T) {
	base := Tuple(Int(1))
	a, _ := base.Append(Int(2))
	b, _ := base.Append(Int(3))
	if !a.Equal(Tuple(Int(1), Int(2))) || !b.Equal(Tuple(Int(1), Int(3))) {
		t.Fatalf("append aliasing: a=%s b=%s", a, b)
	}
	elems := base.Elems()
	elems[0] = Int(99)
	if !base.Equal(Tuple(Int(1))) {
		t.Fatal("Elems exposed internal storage")
	}
}

func TestEqualAndCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Bool(false), Bool(true), -1},
		{Str("a"), Str("b"), -1},
		{Tuple(Int(1)), Tuple(Int(1), Int(0)), -1},
		{Tuple(Int(2)), Tuple(Int(1), Int(9)), 1},
		{Bool(true), Int(0), -1}, // kind order
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.cmp {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.cmp)
		}
		if got := c.b.Compare(c.a); got != -c.cmp {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.b, c.a, got, -c.cmp)
		}
		if (c.cmp == 0) != c.a.Equal(c.b) {
			t.Errorf("Equal(%s, %s) inconsistent with Compare", c.a, c.b)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{Int(-3), "-3"},
		{Str("a"), `"a"`},
		{Tuple(), "<<>>"},
		{Tuple(Int(1), Tuple(Bool(true))), "<<1, <<TRUE>>>>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	vals := []Value{
		Bool(true), Bool(false), Int(0), Int(1), Str(""), Str("0"),
		Empty, Tuple(Int(0)), Tuple(Int(0), Int(0)), Tuple(Empty), Tuple(Tuple(Int(0))),
	}
	seen := make(map[uint64]Value)
	for _, v := range vals {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %s and %s", prev, v)
		}
		seen[fp] = v
	}
}

func TestFingerprintEqualConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Equal(vb) {
			return va.Fingerprint() == vb.Fingerprint()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCompareIsTotalOrder property-checks antisymmetry and transitivity on
// sequences of small integers.
func TestCompareIsTotalOrder(t *testing.T) {
	mk := func(xs []uint8) Value {
		elems := make([]Value, 0, len(xs)%4)
		for i := 0; i < len(xs)%4; i++ {
			elems = append(elems, Int(int64(xs[i]%3)))
		}
		return Tuple(elems...)
	}
	f := func(a, b, c []uint8) bool {
		va, vb, vc := mk(a), mk(b), mk(c)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 && va.Compare(vc) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDomains(t *testing.T) {
	if got := Ints(0, 2); len(got) != 3 || !got[2].Equal(Int(2)) {
		t.Errorf("Ints(0,2) = %v", got)
	}
	if Ints(3, 2) != nil {
		t.Error("Ints(3,2) should be nil")
	}
	if got := Bits(); len(got) != 2 || !got[0].Equal(Int(0)) {
		t.Errorf("Bits = %v", got)
	}
	if got := Bools(); len(got) != 2 {
		t.Errorf("Bools = %v", got)
	}
}

func TestSeqs(t *testing.T) {
	got := Seqs(Bits(), 2)
	// 1 empty + 2 singletons + 4 pairs.
	if len(got) != 7 {
		t.Fatalf("Seqs(bits, 2): %d sequences, want 7", len(got))
	}
	if !got[0].Equal(Empty) {
		t.Error("first sequence should be empty")
	}
	seen := make(map[string]bool)
	for _, s := range got {
		if seen[s.String()] {
			t.Errorf("duplicate %s", s)
		}
		seen[s.String()] = true
		if s.Len() > 2 {
			t.Errorf("sequence %s too long", s)
		}
	}
}

func TestForEachAssignment(t *testing.T) {
	domains := map[string][]Value{"x": Bits(), "y": Ints(0, 2)}
	var count int
	complete := ForEachAssignment([]string{"x", "y"}, domains, func(a map[string]Value) bool {
		count++
		if len(a) != 2 {
			t.Errorf("assignment has %d vars", len(a))
		}
		return true
	})
	if !complete || count != 6 {
		t.Fatalf("complete=%v count=%d, want true 6", complete, count)
	}
	// Early stop.
	count = 0
	complete = ForEachAssignment([]string{"x", "y"}, domains, func(a map[string]Value) bool {
		count++
		return count < 3
	})
	if complete || count != 3 {
		t.Fatalf("early stop: complete=%v count=%d", complete, count)
	}
	// Empty name list → one empty assignment.
	count = 0
	ForEachAssignment(nil, domains, func(a map[string]Value) bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("empty names: count=%d", count)
	}
}

func TestAssignmentCount(t *testing.T) {
	domains := map[string][]Value{"x": Bits(), "y": Ints(0, 2)}
	if got := AssignmentCount([]string{"x", "y"}, domains, 100); got != 6 {
		t.Errorf("AssignmentCount = %d", got)
	}
	if got := AssignmentCount([]string{"x", "y"}, domains, 5); got != -1 {
		t.Errorf("AssignmentCount overflow = %d, want -1", got)
	}
}
