// Package spec represents component specifications in the canonical form of
// Abadi & Lamport, "Open Systems in TLA" §2.2:
//
//	∃x : Init ∧ □[N]_⟨m,x⟩ ∧ L
//
// where m is the tuple of output variables, x the internal variables, e the
// input variables, N the next-state action (a disjunction of named actions),
// and L a conjunction of fairness conditions.
//
// Besides the declarative formula, each action may carry an executable
// successor generator used by the explicit-state model checker; package ts
// cross-checks generators against the declarative definitions.
package spec

import (
	"fmt"
	"sort"

	"opentla/internal/form"
	"opentla/internal/state"
	"opentla/internal/value"
)

// ExecFunc enumerates candidate updates for a component action in state s:
// each map assigns new values to (a subset of) the component's owned
// variables; unmentioned variables keep their values. ExecFunc must be
// complete: every step ⟨s,t⟩ satisfying the action's definition must have
// t's owned-variable values equal to some returned candidate.
type ExecFunc func(s *state.State) []map[string]value.Value

// Action is a named next-state disjunct.
type Action struct {
	Name string
	// Def is the declarative TLA definition of the action; it is the
	// ground truth against which generated successors are verified.
	Def form.Expr
	// Exec optionally generates candidate owned-variable updates. If nil,
	// the model checker derives a brute-force generator from Def over the
	// declared domains.
	Exec ExecFunc
}

// Fairness is one WF/SF conjunct of the liveness part L.
type Fairness struct {
	Kind form.FairKind
	// Action is the fair action A in WF_v(A)/SF_v(A).
	Action form.Expr
	// Sub is the subscript state function v; nil means the component's
	// ⟨outputs, internals⟩ tuple, the usual choice (§2.2).
	Sub form.Expr
}

// Component is a component specification in canonical form.
type Component struct {
	Name string
	// Inputs e, Outputs m, and Internals x partition the variables the
	// component's next-state action may constrain. Outputs and internals
	// are "owned": only this component's actions change them.
	Inputs    []string
	Outputs   []string
	Internals []string
	// Init is the initial predicate. Following the paper's convention for
	// channels (§A.2), Init may also mention variables the component does
	// not own.
	Init form.Expr
	// Actions are the disjuncts of the next-state action N.
	Actions []Action
	// Fairness is the liveness part L.
	Fairness []Fairness
}

// Owned returns the variables the component owns: outputs then internals.
func (c *Component) Owned() []string {
	out := make([]string, 0, len(c.Outputs)+len(c.Internals))
	out = append(out, c.Outputs...)
	out = append(out, c.Internals...)
	return out
}

// Vars returns all declared variables of the component: inputs, outputs,
// internals.
func (c *Component) Vars() []string {
	out := make([]string, 0, len(c.Inputs)+len(c.Outputs)+len(c.Internals))
	out = append(out, c.Inputs...)
	out = append(out, c.Outputs...)
	out = append(out, c.Internals...)
	return out
}

// SubTuple returns the canonical subscript ⟨m, x⟩ as a tuple expression.
func (c *Component) SubTuple() form.Expr { return form.VarTuple(c.Owned()...) }

// Next returns the next-state action N: the disjunction of the action
// definitions.
func (c *Component) Next() form.Expr {
	xs := make([]form.Expr, len(c.Actions))
	for i, a := range c.Actions {
		xs[i] = a.Def
	}
	return form.Or(xs...)
}

// Box returns □[N]_⟨m,x⟩ as a formula.
func (c *Component) Box() form.Formula { return form.ActBox(c.Next(), c.SubTuple()) }

// SafetyFormula returns the safety part Init ∧ □[N]_⟨m,x⟩ with internal
// variables visible. By Proposition 1 this is the closure of InnerFormula.
func (c *Component) SafetyFormula() form.Formula {
	return form.AndF(form.Pred(c.Init), c.Box())
}

// FairnessFormula returns the liveness part L (TRUE if no fairness).
func (c *Component) FairnessFormula() form.Formula {
	fs := make([]form.Formula, len(c.Fairness))
	for i, fc := range c.Fairness {
		sub := fc.Sub
		if sub == nil {
			sub = c.SubTuple()
		}
		if fc.Kind == form.Weak {
			fs[i] = form.WF(sub, fc.Action)
		} else {
			fs[i] = form.SF(sub, fc.Action)
		}
	}
	return form.AndF(fs...)
}

// InnerFormula returns Init ∧ □[N]_⟨m,x⟩ ∧ L with internals visible — the
// paper's "I" formulas (e.g. IQM in §A.3).
func (c *Component) InnerFormula() form.Formula {
	if len(c.Fairness) == 0 {
		return c.SafetyFormula()
	}
	return form.AndF(form.Pred(c.Init), c.Box(), c.FairnessFormula())
}

// Formula returns the full canonical specification ∃x : Init ∧ □[N]_v ∧ L.
func (c *Component) Formula() form.Formula {
	return form.ExistsF(c.Internals, c.InnerFormula())
}

// SafetyHidden returns ∃x : Init ∧ □[N]_v — by Propositions 1 and 2 an
// upper bound for (and in the machine-closed case equal to) the closure of
// Formula.
func (c *Component) SafetyHidden() form.Formula {
	return form.ExistsF(c.Internals, c.SafetyFormula())
}

// SquareExpr returns [N]_⟨m,x⟩ as an action expression — the per-step
// constraint of the component's safety part.
func (c *Component) SquareExpr() form.Expr {
	return form.Square(c.Next(), c.SubTuple())
}

// SafetyOnly returns a copy of the component with the fairness conditions
// removed. By Proposition 1, its InnerFormula is the closure C of the
// original's (machine-closed) InnerFormula.
func (c *Component) SafetyOnly() *Component {
	cp := *c
	cp.Fairness = nil
	return &cp
}

// DuplicateVarError reports a variable declared more than once across (or
// within) a component's Inputs, Outputs, and Internals lists — a broken
// partition that would make "owned" ambiguous (§2.2).
type DuplicateVarError struct {
	// Component is the component's name.
	Component string
	// Var is the doubly-declared variable.
	Var string
	// First and Second are the classes ("input", "output", "internal") of
	// the two declarations; they are equal when the same list repeats the
	// variable.
	First, Second string
}

func (e *DuplicateVarError) Error() string {
	if e.First == e.Second {
		return fmt.Sprintf("component %s: variable %q declared twice as %s", e.Component, e.Var, e.First)
	}
	return fmt.Sprintf("component %s: variable %q declared as both %s and %s", e.Component, e.Var, e.First, e.Second)
}

// New validates c and returns it, so construction sites can reject
// ill-formed components (duplicate declarations, undeclared action
// variables, primed Init) before any checking begins. The returned pointer
// is c itself; no copy is made.
func New(c *Component) (*Component, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks structural well-formedness: variable classes are
// disjoint, action definitions only prime declared variables, and fairness
// actions only prime owned variables. Duplicate declarations are reported
// as a *DuplicateVarError.
func (c *Component) Validate() error {
	seen := make(map[string]string)
	add := func(class string, names []string) error {
		for _, n := range names {
			if prev, dup := seen[n]; dup {
				return &DuplicateVarError{Component: c.Name, Var: n, First: prev, Second: class}
			}
			seen[n] = class
		}
		return nil
	}
	if err := add("input", c.Inputs); err != nil {
		return err
	}
	if err := add("output", c.Outputs); err != nil {
		return err
	}
	if err := add("internal", c.Internals); err != nil {
		return err
	}
	declared := make(map[string]bool, len(seen))
	for n := range seen {
		declared[n] = true
	}
	for _, a := range c.Actions {
		for _, v := range form.AllVars(a.Def) {
			if !declared[v] {
				return fmt.Errorf("component %s: action %s mentions undeclared variable %q", c.Name, a.Name, v)
			}
		}
	}
	if c.Init != nil {
		if prm := form.PrimedVars(c.Init); len(prm) > 0 {
			return fmt.Errorf("component %s: Init primes variables %v", c.Name, prm)
		}
	}
	return nil
}

// Rename returns a copy of the component with variables renamed according
// to m, implementing the paper's substitution F[z/o, q1/q] (§A.4) at the
// component level. Exec generators are wrapped to translate states both
// ways. Variables absent from m keep their names; the component is also
// given the new name.
func (c *Component) Rename(name string, m map[string]string) *Component {
	fwd := func(n string) string {
		if r, ok := m[n]; ok {
			return r
		}
		return n
	}
	renameList := func(ns []string) []string {
		out := make([]string, len(ns))
		for i, n := range ns {
			out[i] = fwd(n)
		}
		return out
	}
	inv := make(map[string]string, len(m))
	for from, to := range m {
		inv[to] = from
	}
	renameState := func(s *state.State, dir map[string]string) *state.State {
		mm := make(map[string]value.Value, s.Len())
		for n, v := range s.Map() {
			if r, ok := dir[n]; ok {
				mm[r] = v
			} else {
				mm[n] = v
			}
		}
		return state.New(mm)
	}
	actions := make([]Action, len(c.Actions))
	for i, a := range c.Actions {
		na := Action{Name: a.Name, Def: form.Rename(a.Def, m)}
		if a.Exec != nil {
			orig := a.Exec
			na.Exec = func(s *state.State) []map[string]value.Value {
				back := renameState(s, inv)
				ups := orig(back)
				out := make([]map[string]value.Value, len(ups))
				for j, up := range ups {
					ren := make(map[string]value.Value, len(up))
					for n, v := range up {
						ren[fwd(n)] = v
					}
					out[j] = ren
				}
				return out
			}
		}
		actions[i] = na
	}
	fair := make([]Fairness, len(c.Fairness))
	for i, fc := range c.Fairness {
		nf := Fairness{Kind: fc.Kind, Action: form.Rename(fc.Action, m)}
		if fc.Sub != nil {
			nf.Sub = form.Rename(fc.Sub, m)
		}
		fair[i] = nf
	}
	var init form.Expr
	if c.Init != nil {
		init = form.Rename(c.Init, m)
	}
	return &Component{
		Name:      name,
		Inputs:    renameList(c.Inputs),
		Outputs:   renameList(c.Outputs),
		Internals: renameList(c.Internals),
		Init:      init,
		Actions:   actions,
		Fairness:  fair,
	}
}

// BruteExec returns an ExecFunc for action def that enumerates every
// assignment to the component's owned variables over the given domains and
// keeps those satisfying def with all other variables left unchanged. For
// interleaving specifications (whose actions imply e′ = e) this generator
// is complete.
func BruteExec(owned []string, domains map[string][]value.Value, def form.Expr) ExecFunc {
	names := make([]string, len(owned))
	copy(names, owned)
	sort.Strings(names)
	return func(s *state.State) []map[string]value.Value {
		var out []map[string]value.Value
		value.ForEachAssignment(names, domains, func(a map[string]value.Value) bool {
			t := s.WithAll(a)
			ok, err := form.EvalBool(def, state.Step{From: s, To: t}, nil)
			if err == nil && ok {
				cp := make(map[string]value.Value, len(a))
				for k, v := range a {
					cp[k] = v
				}
				out = append(out, cp)
			}
			return true
		})
		return out
	}
}
