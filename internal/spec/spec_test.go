package spec

import (
	"errors"
	"strings"
	"testing"

	"opentla/internal/form"
	"opentla/internal/state"
	"opentla/internal/value"
)

// counter returns a simple component: output x counts 0→1→2→0 …
func counter() *Component {
	inc := form.Eq(form.PrimedVar("x"), form.Mod(form.Add(form.Var("x"), form.IntC(1)), form.IntC(3)))
	return &Component{
		Name:    "counter",
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(0)),
		Actions: []Action{{Name: "Inc", Def: inc}},
		Fairness: []Fairness{
			{Kind: form.Weak, Action: inc},
		},
	}
}

func TestOwnedAndVars(t *testing.T) {
	c := &Component{
		Name:      "c",
		Inputs:    []string{"in"},
		Outputs:   []string{"o1", "o2"},
		Internals: []string{"h"},
	}
	if got := strings.Join(c.Owned(), ","); got != "o1,o2,h" {
		t.Errorf("Owned = %s", got)
	}
	if got := strings.Join(c.Vars(), ","); got != "in,o1,o2,h" {
		t.Errorf("Vars = %s", got)
	}
}

func TestValidate(t *testing.T) {
	good := counter()
	if err := good.Validate(); err != nil {
		t.Errorf("valid component rejected: %v", err)
	}
	dup := &Component{Name: "d", Inputs: []string{"x"}, Outputs: []string{"x"}}
	err := dup.Validate()
	if err == nil {
		t.Error("duplicate variable should be rejected")
	}
	var dve *DuplicateVarError
	if !errors.As(err, &dve) {
		t.Errorf("duplicate declaration error is %T, want *DuplicateVarError", err)
	} else if dve.Var != "x" || dve.First != "input" || dve.Second != "output" {
		t.Errorf("DuplicateVarError = %+v", dve)
	}
	same := &Component{Name: "s", Outputs: []string{"y", "y"}}
	err = same.Validate()
	if !errors.As(err, &dve) {
		t.Fatalf("same-class duplicate error is %T, want *DuplicateVarError", err)
	}
	if dve.First != "output" || dve.Second != "output" {
		t.Errorf("same-class DuplicateVarError = %+v", dve)
	}
	if !strings.Contains(dve.Error(), "declared twice as output") {
		t.Errorf("same-class message = %q", dve.Error())
	}
	undeclared := &Component{
		Name:    "u",
		Outputs: []string{"x"},
		Actions: []Action{{Name: "A", Def: form.Eq(form.PrimedVar("x"), form.Var("ghost"))}},
	}
	if err := undeclared.Validate(); err == nil {
		t.Error("undeclared action variable should be rejected")
	}
	primedInit := &Component{
		Name:    "p",
		Outputs: []string{"x"},
		Init:    form.Eq(form.PrimedVar("x"), form.IntC(0)),
	}
	if err := primedInit.Validate(); err == nil {
		t.Error("primed Init should be rejected")
	}
}

func TestNewRejectsIllFormed(t *testing.T) {
	if _, err := New(counter()); err != nil {
		t.Errorf("New rejected a valid component: %v", err)
	}
	bad := &Component{Name: "b", Inputs: []string{"x"}, Internals: []string{"x"}}
	if _, err := New(bad); err == nil {
		t.Error("New accepted a duplicate declaration")
	}
}

func TestFormulas(t *testing.T) {
	c := counter()
	// SafetyFormula = Init ∧ □[N]_v.
	sf := c.SafetyFormula()
	if !strings.Contains(sf.String(), "[][") {
		t.Errorf("SafetyFormula = %s", sf)
	}
	// InnerFormula adds fairness; Formula hides internals (none here).
	inner := c.InnerFormula()
	if !strings.Contains(inner.String(), "WF") {
		t.Errorf("InnerFormula = %s", inner)
	}
	if c.Formula().String() != inner.String() {
		t.Errorf("Formula without internals should equal InnerFormula")
	}
	h := &Component{Name: "h", Outputs: []string{"x"}, Internals: []string{"q"},
		Init: form.TrueE}
	if !strings.Contains(h.Formula().String(), "\\EE q") {
		t.Errorf("Formula should hide internals: %s", h.Formula())
	}
	// SafetyOnly drops fairness.
	so := c.SafetyOnly()
	if len(so.Fairness) != 0 || len(c.Fairness) != 1 {
		t.Error("SafetyOnly should strip fairness without mutating the original")
	}
}

func TestRename(t *testing.T) {
	c := counter()
	c.Inputs = []string{"d"}
	c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
		x, _ := s.MustGet("x").AsInt()
		return []map[string]value.Value{{"x": value.Int((x + 1) % 3)}}
	}
	r := c.Rename("counter-y", map[string]string{"x": "y", "d": "e"})
	if r.Name != "counter-y" || r.Outputs[0] != "y" || r.Inputs[0] != "e" {
		t.Fatalf("rename lists: %+v", r)
	}
	// The original is untouched.
	if c.Outputs[0] != "x" {
		t.Error("rename mutated the original")
	}
	// Renamed Init mentions y.
	if !strings.Contains(r.Init.String(), "y") {
		t.Errorf("Init not renamed: %s", r.Init)
	}
	// Renamed Exec works on renamed states.
	s := state.FromPairs("y", value.Int(1), "e", value.Int(0))
	ups := r.Actions[0].Exec(s)
	if len(ups) != 1 {
		t.Fatalf("renamed exec returned %d updates", len(ups))
	}
	if !ups[0]["y"].Equal(value.Int(2)) {
		t.Errorf("renamed exec update = %v", ups[0])
	}
	// Renamed declarative definition agrees.
	to := s.WithAll(ups[0])
	ok, err := form.EvalBool(r.Actions[0].Def, state.Step{From: s, To: to}, nil)
	if err != nil || !ok {
		t.Errorf("renamed Def rejects renamed exec update: ok=%v err=%v", ok, err)
	}
}

func TestBruteExec(t *testing.T) {
	domains := map[string][]value.Value{"x": value.Ints(0, 2)}
	c := counter()
	exec := BruteExec(c.Owned(), domains, c.Actions[0].Def)
	ups := exec(state.FromPairs("x", value.Int(1)))
	if len(ups) != 1 || !ups[0]["x"].Equal(value.Int(2)) {
		t.Fatalf("BruteExec = %v", ups)
	}
	// Nondeterministic action: x' ∈ {0,1,2} with x' ≠ x.
	nd := form.Ne(form.PrimedVar("x"), form.Var("x"))
	exec = BruteExec(c.Owned(), domains, nd)
	ups = exec(state.FromPairs("x", value.Int(1)))
	if len(ups) != 2 {
		t.Fatalf("nondeterministic BruteExec: %d updates, want 2", len(ups))
	}
}

func TestSquareExpr(t *testing.T) {
	c := counter()
	sq := c.SquareExpr()
	s0 := state.FromPairs("x", value.Int(0))
	// Stutter allowed.
	ok, err := form.EvalBool(sq, state.Step{From: s0, To: s0}, nil)
	if err != nil || !ok {
		t.Errorf("stutter: ok=%v err=%v", ok, err)
	}
	// Increment allowed.
	ok, err = form.EvalBool(sq, state.Step{From: s0, To: s0.With("x", value.Int(1))}, nil)
	if err != nil || !ok {
		t.Errorf("increment: ok=%v err=%v", ok, err)
	}
	// Jump rejected.
	ok, err = form.EvalBool(sq, state.Step{From: s0, To: s0.With("x", value.Int(2))}, nil)
	if err != nil || ok {
		t.Errorf("jump: ok=%v err=%v", ok, err)
	}
}
