// Package check implements explicit-state model checking of TLA properties
// over the state graphs of package ts: safety checking by reachability,
// refinement via substitution of refinement mappings, and liveness checking
// by fair-cycle detection with WF/SF treated as Streett-style acceptance
// conditions.
//
// Together with package ag these checks discharge the hypotheses of the
// Composition Theorem of Abadi & Lamport, "Open Systems in TLA" (§5), each
// of which asserts that a complete system satisfies a property — exactly
// the kind of query an explicit-state model checker decides.
package check

import (
	"fmt"
	"strings"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/obs"
	"opentla/internal/state"
	"opentla/internal/ts"
)

// SafetyResult reports the outcome of a safety check.
type SafetyResult struct {
	Holds bool
	// Violation describes the first violation found, when Holds is false.
	Violation string
	// Trace is a finite behavior exhibiting the violation (ending at the
	// violating state or step).
	Trace state.Behavior
	// Stats snapshots the governing meter when the check completed.
	Stats engine.RunStats
}

// Verdict maps the decided result onto the three-valued scale (an
// undecided check surfaces as an error, not a result).
func (r *SafetyResult) Verdict() engine.Verdict {
	if r.Holds {
		return engine.Holds
	}
	return engine.Violated
}

// String renders the result.
func (r *SafetyResult) String() string {
	if r.Holds {
		return "safety holds"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "safety violated: %s\n", r.Violation)
	sb.WriteString(r.Trace.String())
	return sb.String()
}

// safetyObligation is a safety formula decomposed into checkable parts.
type safetyObligation struct {
	inits      []form.Expr    // must hold in every initial state
	invariants []form.Expr    // must hold in every reachable state
	boxes      []form.ActBoxF // every reachable step must satisfy [A]_sub
}

// decomposeSafety splits a safety formula into initial predicates,
// invariants, and action boxes. Supported forms: Pred(P), □P (AlwaysF of a
// predicate), □[A]_v (ActBoxF), and conjunctions thereof. Other forms
// return an error.
func decomposeSafety(f form.Formula) (*safetyObligation, error) {
	ob := &safetyObligation{}
	var walk func(g form.Formula) error
	walk = func(g form.Formula) error {
		switch n := g.(type) {
		case form.PredF:
			ob.inits = append(ob.inits, n.P)
			return nil
		case form.AlwaysF:
			p, ok := n.F.(form.PredF)
			if !ok {
				return fmt.Errorf("safety decomposition: []F supported only for state predicates, got %s", n.F)
			}
			ob.invariants = append(ob.invariants, p.P)
			return nil
		case form.ActBoxF:
			ob.boxes = append(ob.boxes, n)
			return nil
		case form.AndFm:
			for _, c := range n.Fs {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("safety decomposition: unsupported formula %s", g)
		}
	}
	if err := walk(f); err != nil {
		return nil, err
	}
	return ob, nil
}

// Safety checks that every behavior of the graph satisfies the safety
// formula f (a conjunction of initial predicates, invariants □P, and boxes
// □[A]_v). Because every graph state has a stuttering self-loop, checking
// all reachable states and edges is exact.
func Safety(g *ts.Graph, f form.Formula) (*SafetyResult, error) {
	return SafetyUnder(g, f, nil)
}

// SafetyUnder checks the safety formula f after substituting the refinement
// mapping (abstract variable → concrete state function) into it. With a nil
// mapping it checks f directly. This implements the standard TLA refinement
// step: g ⊨ F̄ where F̄ is F with mapped variables replaced (§A.4).
//
// The check is governed by the graph's resource meter: exhaustion aborts
// with an *engine.BudgetError, and panics during evaluation are contained
// as *engine.EngineError carrying the offending state and formula.
func SafetyUnder(g *ts.Graph, f form.Formula, mapping map[string]form.Expr) (result *SafetyResult, err error) {
	if mapping != nil {
		f = f.Subst(mapping)
	}
	m := g.Meter()
	defer obs.SpanFromMeter(m, "check:safety")()
	var cur *state.State
	defer engine.Capture(&err, "check.Safety", func() (string, string) {
		if cur != nil {
			return cur.Key(), f.String()
		}
		return "", f.String()
	})
	done := func(r *SafetyResult) (*SafetyResult, error) {
		r.Stats = m.Stats()
		return r, nil
	}
	ob, err := decomposeSafety(f)
	if err != nil {
		return nil, err
	}
	// Every state of one graph binds the same variable set; compiling the
	// obligation's predicates against that layout once keeps the per-state
	// and per-edge evaluation positional and allocation-free.
	var layout []string
	if len(g.States) > 0 {
		layout = g.States[0].Vars()
	}
	// Initial predicates.
	initPreds := make([]form.CompiledPred, len(ob.inits))
	for i, p := range ob.inits {
		initPreds[i] = form.CompilePred(p, layout)
	}
	for _, id := range g.Inits {
		s := g.States[id]
		cur = s
		for i, p := range initPreds {
			ok, err := p(state.Step{From: s})
			if err != nil {
				return nil, fmt.Errorf("initial predicate %s on %s: %w", ob.inits[i], s, err)
			}
			if !ok {
				return done(&SafetyResult{
					Violation: fmt.Sprintf("initial state violates %s", ob.inits[i]),
					Trace:     state.Behavior{s},
				})
			}
		}
	}
	// Invariants.
	invPreds := make([]form.CompiledPred, len(ob.invariants))
	for i, p := range ob.invariants {
		invPreds[i] = form.CompilePred(p, layout)
	}
	for id, s := range g.States {
		if err := m.Tick(); err != nil {
			return nil, err
		}
		cur = s
		for i, p := range invPreds {
			ok, err := p(state.Step{From: s})
			if err != nil {
				return nil, fmt.Errorf("invariant %s on %s: %w", ob.invariants[i], s, err)
			}
			if !ok {
				return done(&SafetyResult{
					Violation: fmt.Sprintf("reachable state violates invariant %s", ob.invariants[i]),
					Trace:     g.Behavior(g.PathTo(id)),
				})
			}
		}
	}
	// Action boxes.
	squares := make([]form.CompiledPred, len(ob.boxes))
	for i, b := range ob.boxes {
		squares[i] = form.CompilePred(form.Square(b.A, b.Sub), layout)
	}
	var res *SafetyResult
	var evalErr error
	// ForEachEdgeStep hands every edge as a GENUINE step of the system: on a
	// symmetry-reduced graph the target id is a canonical representative, but
	// real is the actual post-state of the step, so box evaluation (and any
	// violating trace) never sees a representative-to-representative
	// pseudo-step the system cannot take.
	g.ForEachEdgeStep(func(from, to int, real *state.State) bool {
		if err := m.Tick(); err != nil {
			evalErr = err
			return false
		}
		st := state.Step{From: g.States[from], To: real}
		cur = st.From
		for i, sq := range squares {
			ok, err := sq(st)
			if err != nil {
				evalErr = fmt.Errorf("box %s on step %s: %w", ob.boxes[i], st, err)
				return false
			}
			if !ok {
				path := g.PathTo(from)
				trace := append(g.Behavior(path), real)
				res = &SafetyResult{
					Violation: fmt.Sprintf("reachable step violates %s", ob.boxes[i]),
					Trace:     trace,
				}
				return false
			}
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	if res != nil {
		return done(res)
	}
	return done(&SafetyResult{Holds: true})
}

// Invariant checks □P for a single state predicate.
func Invariant(g *ts.Graph, p form.Expr) (*SafetyResult, error) {
	return Safety(g, form.AlwaysPred(p))
}
