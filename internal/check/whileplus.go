package check

import (
	"fmt"
	"strings"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/obs"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
)

// Monitor variable names used by the ⊳ and +v product constructions. They
// are chosen to be invalid TLA identifiers so they cannot collide with
// system variables.
const (
	envAliveVar = "$envAlive"
	sysAliveVar = "$sysAlive"
	plusVar     = "$plusAlive"
)

// AGResult reports a check of an assumption/guarantee property E ⊳ M over
// a graph.
type AGResult struct {
	Holds bool
	// Reason describes the violation when Holds is false.
	Reason string
	// Trace is a finite behavior witnessing a safety violation (M died no
	// later than E), if any.
	Trace state.Behavior
	// Counterexample is a fair lasso witnessing a liveness violation
	// (E held forever but M's fairness failed), if any.
	Counterexample *state.Lasso
	// Stats snapshots the governing meter when the check completed.
	Stats engine.RunStats
}

// Verdict maps the decided result onto the three-valued scale.
func (r *AGResult) Verdict() engine.Verdict {
	if r.Holds {
		return engine.Holds
	}
	return engine.Violated
}

// String renders the result.
func (r *AGResult) String() string {
	if r.Holds {
		return "E -+> M holds"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "E -+> M violated: %s\n", r.Reason)
	if r.Trace != nil {
		sb.WriteString(r.Trace.String())
	}
	if r.Counterexample != nil {
		sb.WriteString(r.Counterexample.String())
	}
	return sb.String()
}

// WhilePlus checks that every fair behavior of the graph satisfies
// E ⊳ M (§3), where env and sys are the assumption and guarantee as
// canonical components and mapping discharges sys's internal variables.
//
// The check runs two safety monitors (for C(E) and C(M̄)) in product with
// the graph and verifies:
//
//  1. Safety: no reachable product step kills M while E was still alive at
//     the step's source, and no initial state violates M's initial
//     predicate (the n = 0 case of ⊳: M must hold for the first 1 state
//     unconditionally).
//  2. Liveness: within the subgraph where E and M are still alive, every
//     fair cycle satisfies M's fairness obligations (E ⇒ M on behaviors
//     where the safety parts never die).
func WhilePlus(g *ts.Graph, env, sys *spec.Component, mapping map[string]form.Expr) (result *AGResult, err error) {
	m := g.Meter()
	defer obs.SpanFromMeter(m, "check:while-plus")()
	var cur *state.State
	defer engine.Capture(&err, "check.WhilePlus", func() (string, string) {
		fp := ""
		if cur != nil {
			fp = cur.Key()
		}
		return fp, fmt.Sprintf("%s -+> %s", env.Name, sys.Name)
	})
	done := func(r *AGResult) (*AGResult, error) {
		r.Stats = m.Stats()
		return r, nil
	}
	envInit, envSquares := safetyParts(env, nil)
	sysInit, sysSquares := safetyParts(sys, mapping)

	envMon := ts.SafetyMonitor(envAliveVar, envInit, envSquares, true)
	sysMon := ts.SafetyMonitor(sysAliveVar, sysInit, sysSquares, true)
	prod, err := ts.Product(g, []*ts.Monitor{envMon, sysMon})
	if err != nil {
		return nil, err
	}

	aliveE := func(s *state.State) bool { b, _ := s.MustGet(envAliveVar).AsBool(); return b }
	aliveM := func(s *state.State) bool { b, _ := s.MustGet(sysAliveVar).AsBool(); return b }

	// n = 0: M must hold for the first state regardless of E.
	for _, id := range prod.Inits {
		s := prod.States[id]
		cur = s
		if !aliveM(s) {
			return done(&AGResult{
				Reason: "initial state violates the guarantee's initial predicate (n = 0 case of -+>)",
				Trace:  state.Behavior{s},
			})
		}
	}

	// Safety: an edge from an (E alive, M alive) node to an M-dead node is
	// a behavior where M died at step n+1 with E alive through n.
	var vio *AGResult
	var tickErr error
	prod.ForEachEdgeStep(func(from, to int, real *state.State) bool {
		if err := m.Tick(); err != nil {
			tickErr = err
			return false
		}
		s, t := prod.States[from], real
		cur = s
		if aliveE(s) && aliveM(s) && !aliveM(t) {
			path := prod.PathTo(from)
			vio = &AGResult{
				Reason: "guarantee M violated while assumption E still held (M must outlive E by one step)",
				Trace:  append(prod.Behavior(path), t),
			}
			return false
		}
		return true
	})
	if tickErr != nil {
		return nil, tickErr
	}
	if vio != nil {
		return done(vio)
	}

	// Liveness: E ⇒ M on behaviors whose safety parts hold forever. Search
	// for a fair lasso confined to (E alive ∧ M alive) nodes violating one
	// of M's fairness obligations.
	if len(sys.Fairness) > 0 {
		bothAlive := func(id int) bool {
			s := prod.States[id]
			return aliveE(s) && aliveM(s)
		}
		fairness := sys.FairnessFormula()
		if mapping != nil {
			fairness = fairness.Subst(mapping)
		}
		live, err := livenessRestricted(prod, bothAlive, fairness)
		if err != nil {
			return nil, err
		}
		if !live.Holds {
			return done(&AGResult{
				Reason:         fmt.Sprintf("assumption held forever but guarantee liveness failed: %s", live.Violated),
				Counterexample: live.Counterexample,
			})
		}
	}
	return done(&AGResult{Holds: true})
}

// safetyParts extracts a component's initial predicate and per-step square
// actions, applying an optional refinement mapping.
func safetyParts(c *spec.Component, mapping map[string]form.Expr) (form.Expr, []form.Expr) {
	init := c.Init
	square := c.SquareExpr()
	if mapping != nil {
		if init != nil {
			init = init.Subst(mapping)
		}
		square = square.Subst(mapping)
	}
	return init, []form.Expr{square}
}

// livenessRestricted checks the liveness target within the subgraph of
// states allowed by restrict, under the system's fairness assumptions.
func livenessRestricted(g *ts.Graph, restrict StateMask, target form.Formula) (*LivenessResult, error) {
	fair, ferr := FairnessConds(g)
	for _, cj := range flattenConjuncts(target) {
		t, ok := cj.(form.FairF)
		if !ok {
			return nil, fmt.Errorf("restricted liveness: only WF/SF targets supported, got %s", cj)
		}
		res, err := checkFairTargetWithin(g, fair, t, restrict)
		if err != nil {
			return nil, err
		}
		if *ferr != nil {
			return nil, *ferr
		}
		if !res.Holds {
			return res, nil
		}
	}
	return &LivenessResult{Holds: true}, nil
}

// checkFairTargetWithin is checkFairTarget with prefix and cycle restricted
// to a state mask.
func checkFairTargetWithin(g *ts.Graph, fair []CycleCond, t form.FairF, restrict StateMask) (*LivenessResult, error) {
	angle := form.Angle(t.A, t.Sub)
	enFn, stepPred := compiledAngle(g, angle)
	enabled, enErr := memoState(g, func(id int) (bool, error) {
		return enFn(g.States[id])
	})
	var takenErr error
	notTaken := func(from, to int) bool {
		ok, err := stepPred(state.Step{From: g.States[from], To: g.States[to]})
		if err != nil && takenErr == nil {
			takenErr = err
		}
		return !ok
	}
	intersect := func(a, b StateMask) StateMask {
		switch {
		case a == nil:
			return b
		case b == nil:
			return a
		default:
			return func(id int) bool { return a(id) && b(id) }
		}
	}
	q := LassoQuery{
		StartIDs:    g.Inits,
		PrefixState: restrict,
		CycleEdge:   notTaken,
		Conds:       fair,
	}
	if t.Kind == form.Weak {
		q.CycleState = intersect(restrict, enabled)
	} else {
		q.CycleState = restrict
		q.Conds = append(append([]CycleCond(nil), fair...), CycleCond{
			Name:     "hits enabled state",
			Buchi:    true,
			HitState: enabled,
		})
	}
	w, err := FindFairLasso(g, q)
	if err != nil {
		return nil, err
	}
	if *enErr != nil {
		return nil, *enErr
	}
	if takenErr != nil {
		return nil, takenErr
	}
	return lassoResult(g, w, t.String()), nil
}
