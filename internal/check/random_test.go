package check

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// newRand seeds a deterministic generator with def, or with the
// OPENTLA_RAND_SEED environment variable when set (for exploring other seeds
// or reproducing a CI failure). The seed is logged, so any failure message
// carries what is needed to replay it.
func newRand(t *testing.T, def int64) *rand.Rand {
	t.Helper()
	seed := def
	if env := os.Getenv("OPENTLA_RAND_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("OPENTLA_RAND_SEED=%q: %v", env, err)
		}
		seed = n
	}
	t.Logf("random seed %d (override with OPENTLA_RAND_SEED)", seed)
	return rand.New(rand.NewSource(seed))
}

// Randomized cross-validation: generate small random systems and
// properties, and validate the model checker's verdicts two independent
// ways:
//
//  1. every counterexample the checker produces is re-evaluated with the
//     semantic formula evaluator — the target must be FALSE on it and
//     every fairness assumption TRUE (a spurious counterexample would be a
//     checker bug);
//  2. for safety, the checker's verdict is compared against exhaustive
//     evaluation on enumerated graph lassos (bounded, so only the
//     "checker says holds but enumeration finds violation" direction is a
//     hard failure).

// randomSystem builds a component over variables x, y ∈ 0..2 with 2–4
// random guarded assignments and optional fairness.
func randomSystem(r *rand.Rand, fair bool) *ts.System {
	dom := value.Ints(0, 2)
	vars := []string{"x", "y"}
	v := func() string { return vars[r.Intn(2)] }
	lit := func() form.Expr { return form.IntC(int64(r.Intn(3))) }

	var actions []spec.Action
	nAct := 2 + r.Intn(3)
	for i := 0; i < nAct; i++ {
		target := v()
		guard := form.Eq(form.Var(v()), lit())
		update := form.Eq(form.PrimedVar(target), lit())
		other := "x"
		if target == "x" {
			other = "y"
		}
		def := form.And(guard, update, form.Unchanged(other))
		actions = append(actions, spec.Action{Name: fmt.Sprintf("A%d", i), Def: def})
	}
	c := &spec.Component{
		Name:    "rand",
		Outputs: []string{"x", "y"},
		Init: form.And(
			form.Eq(form.Var("x"), form.IntC(0)),
			form.Eq(form.Var("y"), form.IntC(0)),
		),
		Actions: actions,
	}
	if fair && len(actions) > 0 {
		c.Fairness = []spec.Fairness{{
			Kind:   form.FairKind(1 + r.Intn(2)),
			Action: actions[r.Intn(len(actions))].Def,
		}}
	}
	return &ts.System{
		Name:       "random",
		Components: []*spec.Component{c},
		Domains:    map[string][]value.Value{"x": dom, "y": dom},
	}
}

// fairnessFormulas returns the system's fairness assumptions as formulas.
func fairnessFormulas(sys *ts.System) []form.Formula {
	var out []form.Formula
	for _, c := range sys.Components {
		f := c.FairnessFormula()
		if _, isAnd := f.(form.AndFm); isAnd || len(c.Fairness) > 0 {
			out = append(out, f)
		}
	}
	return out
}

// TestRandomSafetyAgreesWithEnumeration compares Invariant verdicts with
// exhaustive small-lasso enumeration.
func TestRandomSafetyAgreesWithEnumeration(t *testing.T) {
	r := newRand(t, 7)
	for trial := 0; trial < 60; trial++ {
		sys := randomSystem(r, false)
		g, err := sys.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inv := form.Ne(
			form.Var([]string{"x", "y"}[r.Intn(2)]),
			form.IntC(int64(r.Intn(3))),
		)
		res, err := Invariant(g, inv)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Exhaustive evaluation of □inv on bounded graph lassos.
		target := form.AlwaysPred(inv)
		enumViolated := false
		GraphLassos(g, 3, 2, func(l *state.Lasso) bool {
			ok, err := target.Eval(g.Ctx, l)
			if err != nil {
				t.Fatalf("trial %d: eval: %v", trial, err)
			}
			if !ok {
				enumViolated = true
				return false
			}
			return true
		})
		if res.Holds && enumViolated {
			t.Fatalf("trial %d: checker says invariant holds but enumeration violates it", trial)
		}
		if !res.Holds {
			// The checker's own trace must violate the invariant at its
			// final state.
			last := res.Trace[len(res.Trace)-1]
			ok, err := form.EvalStateBool(inv, last)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if ok {
				t.Fatalf("trial %d: counterexample trace does not violate the invariant", trial)
			}
		}
	}
}

// TestRandomLivenessCounterexamplesAreGenuine validates every liveness
// counterexample semantically: target false, fairness true.
func TestRandomLivenessCounterexamplesAreGenuine(t *testing.T) {
	r := newRand(t, 11)
	violatedSeen := 0
	heldSeen := 0
	for trial := 0; trial < 80; trial++ {
		sys := randomSystem(r, true)
		g, err := sys.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var target form.Formula
		p := form.Eq(form.Var([]string{"x", "y"}[r.Intn(2)]), form.IntC(int64(r.Intn(3))))
		switch r.Intn(3) {
		case 0:
			target = form.EventuallyPred(p)
		case 1:
			target = form.Always(form.EventuallyPred(p))
		default:
			target = form.Eventually(form.AlwaysPred(p))
		}
		res, err := Liveness(g, target, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Holds {
			heldSeen++
			continue
		}
		violatedSeen++
		cex := res.Counterexample
		if cex == nil {
			t.Fatalf("trial %d: violation without counterexample", trial)
		}
		ok, err := target.Eval(g.Ctx, cex)
		if err != nil {
			t.Fatalf("trial %d: eval target: %v", trial, err)
		}
		if ok {
			t.Fatalf("trial %d: spurious counterexample — target %s holds on\n%s", trial, target, cex)
		}
		for _, ff := range fairnessFormulas(sys) {
			fok, err := ff.Eval(g.Ctx, cex)
			if err != nil {
				t.Fatalf("trial %d: eval fairness: %v", trial, err)
			}
			if !fok {
				t.Fatalf("trial %d: counterexample is unfair — %s fails on\n%s", trial, ff, cex)
			}
		}
		// The lasso must be a real path of the graph.
		for i := 0; i < cex.Horizon(); i++ {
			from := g.ID(cex.At(i))
			to := g.ID(cex.At(i + 1))
			if from < 0 || to < 0 || !g.HasEdge(from, to) {
				t.Fatalf("trial %d: counterexample step %d not a graph edge", trial, i)
			}
		}
	}
	if violatedSeen == 0 || heldSeen == 0 {
		t.Fatalf("degenerate sampling: %d violations, %d holds — adjust generators",
			violatedSeen, heldSeen)
	}
}

// TestRandomLivenessHoldsMatchesEnumeration: when the checker says a
// liveness property holds under fairness, every enumerated fair lasso must
// satisfy it.
func TestRandomLivenessHoldsMatchesEnumeration(t *testing.T) {
	r := newRand(t, 13)
	for trial := 0; trial < 40; trial++ {
		sys := randomSystem(r, true)
		g, err := sys.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p := form.Eq(form.Var("x"), form.IntC(int64(r.Intn(3))))
		target := form.EventuallyPred(p)
		res, err := Liveness(g, target, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Holds {
			continue
		}
		fairFs := fairnessFormulas(sys)
		GraphLassos(g, 2, 2, func(l *state.Lasso) bool {
			for _, ff := range fairFs {
				fok, err := ff.Eval(g.Ctx, l)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !fok {
					return true // unfair behavior: exempt
				}
			}
			ok, err := target.Eval(g.Ctx, l)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !ok {
				t.Fatalf("trial %d: checker says %s holds but fair lasso violates it:\n%s",
					trial, target, l)
			}
			return true
		})
	}
}
