package check

import (
	"strings"
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// ring builds a component cycling x through 0..n−1 with optional fairness.
func ring(n int64, fair bool) *spec.Component {
	inc := form.Eq(form.PrimedVar("x"), form.Mod(form.Add(form.Var("x"), form.IntC(1)), form.IntC(n)))
	c := &spec.Component{
		Name:    "ring",
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Inc", Def: inc}},
	}
	if fair {
		c.Fairness = []spec.Fairness{{Kind: form.Weak, Action: inc}}
	}
	return c
}

func ringGraph(t *testing.T, n int64, fair bool) *ts.Graph {
	t.Helper()
	sys := &ts.System{
		Name:       "ring",
		Components: []*spec.Component{ring(n, fair)},
		Domains:    map[string][]value.Value{"x": value.Ints(0, n-1)},
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSafetyHolds(t *testing.T) {
	g := ringGraph(t, 3, false)
	res, err := Safety(g, form.AndF(
		form.Pred(form.Eq(form.Var("x"), form.IntC(0))),
		form.AlwaysPred(form.Lt(form.Var("x"), form.IntC(3))),
		form.ActBoxVars(form.Ne(form.PrimedVar("x"), form.Var("x")), "x"),
	))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("expected safety to hold:\n%s", res)
	}
}

func TestSafetyInitViolation(t *testing.T) {
	g := ringGraph(t, 3, false)
	res, err := Safety(g, form.Pred(form.Eq(form.Var("x"), form.IntC(1))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds || !strings.Contains(res.Violation, "initial") {
		t.Fatalf("expected initial violation:\n%s", res)
	}
}

func TestSafetyInvariantViolationWithTrace(t *testing.T) {
	g := ringGraph(t, 3, false)
	res, err := Invariant(g, form.Lt(form.Var("x"), form.IntC(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("x<2 should be violated at x=2")
	}
	if len(res.Trace) != 3 {
		t.Fatalf("trace should reach x=2 in 3 states, got %d:\n%s", len(res.Trace), res.Trace)
	}
}

func TestSafetyBoxViolation(t *testing.T) {
	g := ringGraph(t, 3, false)
	// Claim steps only ever increase x: the wrap 2→0 violates it.
	res, err := Safety(g, form.ActBoxVars(form.Gt(form.PrimedVar("x"), form.Var("x")), "x"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("wrap step should violate the increasing box")
	}
	last := res.Trace[len(res.Trace)-1]
	if !last.MustGet("x").Equal(value.Int(0)) {
		t.Errorf("violating step should end at x=0:\n%s", res.Trace)
	}
}

func TestSafetyUnderMapping(t *testing.T) {
	g := ringGraph(t, 3, false)
	// Abstract variable y ≜ x+10: check Init y=10 and □(y<13).
	mapping := map[string]form.Expr{"y": form.Add(form.Var("x"), form.IntC(10))}
	res, err := SafetyUnder(g, form.AndF(
		form.Pred(form.Eq(form.Var("y"), form.IntC(10))),
		form.AlwaysPred(form.Lt(form.Var("y"), form.IntC(13))),
	), mapping)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("mapped safety should hold:\n%s", res)
	}
}

func TestSafetyDecompositionRejectsLiveness(t *testing.T) {
	g := ringGraph(t, 2, false)
	_, err := Safety(g, form.EventuallyPred(form.TrueE))
	if err == nil {
		t.Fatal("liveness formula should be rejected by the safety checker")
	}
}

func TestLivenessEventuallyWithFairness(t *testing.T) {
	g := ringGraph(t, 3, true)
	res, err := Liveness(g, form.EventuallyPred(form.Eq(form.Var("x"), form.IntC(2))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("WF ring should eventually reach 2:\n%s", res)
	}
}

func TestLivenessEventuallyWithoutFairness(t *testing.T) {
	g := ringGraph(t, 3, false)
	res, err := Liveness(g, form.EventuallyPred(form.Eq(form.Var("x"), form.IntC(2))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("without fairness the ring may stutter at 0 forever")
	}
	if res.Counterexample == nil {
		t.Fatal("expected counterexample")
	}
	// The counterexample must avoid x=2 entirely.
	cex := res.Counterexample
	for i := 0; i < cex.Horizon(); i++ {
		if cex.At(i).MustGet("x").Equal(value.Int(2)) {
			t.Fatalf("counterexample visits x=2:\n%s", cex)
		}
	}
}

func TestLivenessAlwaysEventually(t *testing.T) {
	g := ringGraph(t, 3, true)
	res, err := Liveness(g, form.Always(form.EventuallyPred(form.Eq(form.Var("x"), form.IntC(0)))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("fair ring visits 0 infinitely often:\n%s", res)
	}
}

func TestLivenessEventuallyAlwaysFails(t *testing.T) {
	g := ringGraph(t, 3, true)
	// ◇□(x=0) is false: the fair ring keeps moving.
	res, err := Liveness(g, form.Eventually(form.AlwaysPred(form.Eq(form.Var("x"), form.IntC(0)))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("◇□(x=0) should fail for the fair ring")
	}
}

func TestLivenessEventuallyAlwaysHolds(t *testing.T) {
	// Counter that stops at 2 with WF: ◇□(x=2) holds.
	inc := form.And(
		form.Lt(form.Var("x"), form.IntC(2)),
		form.Eq(form.PrimedVar("x"), form.Add(form.Var("x"), form.IntC(1))),
	)
	sys := &ts.System{
		Name: "stopper",
		Components: []*spec.Component{{
			Name:     "c",
			Outputs:  []string{"x"},
			Init:     form.Eq(form.Var("x"), form.IntC(0)),
			Actions:  []spec.Action{{Name: "Inc", Def: inc}},
			Fairness: []spec.Fairness{{Kind: form.Weak, Action: inc}},
		}},
		Domains: map[string][]value.Value{"x": value.Ints(0, 2)},
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Liveness(g, form.Eventually(form.AlwaysPred(form.Eq(form.Var("x"), form.IntC(2)))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("◇□(x=2) should hold for the stopping counter:\n%s", res)
	}
}

func TestLivenessLeadsTo(t *testing.T) {
	g := ringGraph(t, 4, true)
	one := form.Eq(form.Var("x"), form.IntC(1))
	three := form.Eq(form.Var("x"), form.IntC(3))
	res, err := Liveness(g, form.LeadsTo(one, three), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("1 ↝ 3 should hold in the fair ring:\n%s", res)
	}
	// Without fairness it fails.
	g2 := ringGraph(t, 4, false)
	res, err = Liveness(g2, form.LeadsTo(one, three), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("1 ↝ 3 should fail without fairness")
	}
}

func TestLivenessFairTarget(t *testing.T) {
	// A WF ring implements the abstract fairness WF(x changes).
	g := ringGraph(t, 3, true)
	change := form.Ne(form.PrimedVar("x"), form.Var("x"))
	res, err := Liveness(g, form.WFVars(change, "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("WF(change) should hold:\n%s", res)
	}
	// Without fairness the abstract WF obligation fails.
	g2 := ringGraph(t, 3, false)
	res, err = Liveness(g2, form.WFVars(change, "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("WF(change) should fail without assumptions")
	}
}

func TestLivenessSFTarget(t *testing.T) {
	// Two-state system where action A (go to 1) is only intermittently
	// enabled: x alternates 0,1 via separate actions. Target SF(A) with A =
	// "from 0 go to 1".
	go01 := form.And(form.Eq(form.Var("x"), form.IntC(0)), form.Eq(form.PrimedVar("x"), form.IntC(1)))
	go10 := form.And(form.Eq(form.Var("x"), form.IntC(1)), form.Eq(form.PrimedVar("x"), form.IntC(0)))
	mk := func(fair []spec.Fairness) *ts.Graph {
		sys := &ts.System{
			Name: "alt",
			Components: []*spec.Component{{
				Name:    "alt",
				Outputs: []string{"x"},
				Init:    form.Eq(form.Var("x"), form.IntC(0)),
				Actions: []spec.Action{
					{Name: "Go01", Def: go01},
					{Name: "Go10", Def: go10},
				},
				Fairness: fair,
			}},
			Domains: map[string][]value.Value{"x": value.Bits()},
		}
		g, err := sys.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// With SF on both actions, SF(go01) holds as a target.
	g := mk([]spec.Fairness{
		{Kind: form.Strong, Action: go01},
		{Kind: form.Strong, Action: go10},
	})
	res, err := Liveness(g, form.SFVars(go01, "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("SF(go01) should hold under SF assumptions:\n%s", res)
	}
	// With only WF assumptions, SF(go01) fails: the run can alternate
	// between "enabled but choosing go10-stutter"… in this tiny system WF
	// on both actions actually forces alternation; use no fairness to get
	// the violation.
	g2 := mk(nil)
	res, err = Liveness(g2, form.SFVars(go01, "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("SF(go01) should fail without assumptions")
	}
}

func TestWhilePlusOnGraphHolds(t *testing.T) {
	// System: y copies x when allowed; environment assumption: x stays 0;
	// guarantee: y stays 0.
	copyAct := form.And(form.Eq(form.PrimedVar("y"), form.Var("x")), form.Unchanged("x"))
	sys := &ts.System{
		Name: "copy",
		Components: []*spec.Component{{
			Name:    "copier",
			Inputs:  []string{"x"},
			Outputs: []string{"y"},
			Init:    form.Eq(form.Var("y"), form.IntC(0)),
			Actions: []spec.Action{{Name: "Copy", Def: copyAct}},
		}},
		Domains: map[string][]value.Value{"x": value.Bits(), "y": value.Bits()},
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	env := &spec.Component{
		Name:    "E",
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(0)),
	}
	guar := &spec.Component{
		Name:    "M",
		Inputs:  []string{"x"},
		Outputs: []string{"y"},
		Init:    form.Eq(form.Var("y"), form.IntC(0)),
	}
	res, err := WhilePlus(g, env, guar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("E -+> M should hold for the copier:\n%s", res)
	}
}

func TestWhilePlusOnGraphFailsForEagerViolation(t *testing.T) {
	// A component that sets y to 1 spontaneously violates M even while E
	// holds.
	bad := form.And(form.Eq(form.PrimedVar("y"), form.IntC(1)), form.Unchanged("x"))
	sys := &ts.System{
		Name: "bad",
		Components: []*spec.Component{{
			Name:    "bad",
			Inputs:  []string{"x"},
			Outputs: []string{"y"},
			Init:    form.Eq(form.Var("y"), form.IntC(0)),
			Actions: []spec.Action{{Name: "Set1", Def: bad}},
		}},
		Domains: map[string][]value.Value{"x": value.Bits(), "y": value.Bits()},
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	env := &spec.Component{Name: "E", Outputs: []string{"x"}, Init: form.Eq(form.Var("x"), form.IntC(0))}
	guar := &spec.Component{Name: "M", Inputs: []string{"x"}, Outputs: []string{"y"}, Init: form.Eq(form.Var("y"), form.IntC(0))}
	res, err := WhilePlus(g, env, guar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("E -+> M should fail when the system violates M first")
	}
	if res.Trace == nil {
		t.Fatal("expected a violation trace")
	}
}

func TestGraphLassosEnumerates(t *testing.T) {
	g := ringGraph(t, 2, false)
	var count, fairCount int
	GraphLassos(g, 2, 2, func(l *state.Lasso) bool {
		count++
		if l.CycleLen() == 2 {
			fairCount++
		}
		return true
	})
	if count == 0 {
		t.Fatal("no lassos enumerated")
	}
	if fairCount == 0 {
		t.Fatal("expected some 2-cycles (the ring alternates)")
	}
}

func TestAllStates(t *testing.T) {
	states := AllStates([]string{"a", "b"}, map[string][]value.Value{
		"a": value.Bits(), "b": value.Bits(),
	})
	if len(states) != 4 {
		t.Fatalf("AllStates = %d, want 4", len(states))
	}
}
