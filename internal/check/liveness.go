package check

import (
	"fmt"
	"strings"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/obs"
	"opentla/internal/state"
	"opentla/internal/ts"
)

// LivenessResult reports the outcome of a liveness check.
type LivenessResult struct {
	Holds bool
	// Violated names the target conjunct that failed, when Holds is false.
	Violated string
	// Counterexample is a fair lasso violating the target.
	Counterexample *state.Lasso
	// Stats snapshots the governing meter when the check completed.
	Stats engine.RunStats
}

// Verdict maps the decided result onto the three-valued scale.
func (r *LivenessResult) Verdict() engine.Verdict {
	if r.Holds {
		return engine.Holds
	}
	return engine.Violated
}

// String renders the result.
func (r *LivenessResult) String() string {
	if r.Holds {
		return "liveness holds"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "liveness violated: %s\n", r.Violated)
	if r.Counterexample != nil {
		sb.WriteString(r.Counterexample.String())
	}
	return sb.String()
}

// memoState caches a state predicate over graph IDs.
func memoState(g *ts.Graph, f func(id int) (bool, error)) (StateMask, *error) {
	cache := make(map[int]bool, len(g.States))
	var firstErr error
	return func(id int) bool {
		if v, ok := cache[id]; ok {
			return v
		}
		v, err := f(id)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		cache[id] = v
		return v
	}, &firstErr
}

// compiledAngle compiles the enabledness query and the step predicate for
// ⟨A⟩_sub against the graph's state layout (every state of one graph binds
// the same variable set). The enabledness function reuses scratch buffers
// (see form.Ctx.EnabledFn) and so shares memoState's single-goroutine
// contract.
func compiledAngle(g *ts.Graph, angle form.Expr) (func(*state.State) (bool, error), form.CompiledPred) {
	var layout []string
	if len(g.States) > 0 {
		layout = g.States[0].Vars()
	}
	return g.Ctx.EnabledFn(angle, layout), form.CompilePred(angle, layout)
}

// FairnessConds translates the WF/SF assumptions of the graph's system
// components into cycle acceptance conditions. Enabledness is evaluated via
// the context's domains and cached per state.
func FairnessConds(g *ts.Graph) ([]CycleCond, *error) {
	var conds []CycleCond
	errs := new(error)
	for _, c := range g.Sys.Components {
		for _, fc := range c.Fairness {
			sub := fc.Sub
			if sub == nil {
				sub = c.SubTuple()
			}
			conds = append(conds, fairnessCond(g, fmt.Sprintf("%s/%s", c.Name, fc.Kind), fc.Kind, fc.Action, sub, errs))
		}
	}
	return conds, errs
}

// fairnessCond builds the cycle condition for one WF/SF assumption.
func fairnessCond(g *ts.Graph, name string, kind form.FairKind, action, sub form.Expr, errs *error) CycleCond {
	angle := form.Angle(action, sub)
	enFn, stepPred := compiledAngle(g, angle)
	enabled, enErr := memoState(g, func(id int) (bool, error) {
		return enFn(g.States[id])
	})
	taken := func(from, to int) bool {
		ok, err := stepPred(state.Step{From: g.States[from], To: g.States[to]})
		if err != nil && *errs == nil {
			*errs = err
		}
		return ok
	}
	cond := CycleCond{Name: name, HitEdge: taken}
	if kind == form.Weak {
		// Fair iff cycle has a ¬enabled state or a taken edge.
		cond.Buchi = true
		cond.HitState = func(id int) bool {
			v := enabled(id)
			if *enErr != nil && *errs == nil {
				*errs = *enErr
			}
			return !v
		}
	} else {
		// Fair iff (cycle has an enabled state ⇒ cycle has a taken edge).
		cond.TrigState = func(id int) bool {
			v := enabled(id)
			if *enErr != nil && *errs == nil {
				*errs = *enErr
			}
			return v
		}
	}
	return cond
}

// Liveness checks that every behavior of the graph satisfying the system's
// fairness assumptions satisfies the target formula. The target may be a
// conjunction of:
//
//	◇P, □◇P, ◇□P          (P a state predicate)
//	□(P ⇒ ◇Q)              (leads-to)
//	WF_v(A), SF_v(A)        (fairness obligations, e.g. of an abstract spec)
//
// An optional refinement mapping is substituted into the target first.
//
// The check is governed by the graph's resource meter: exhaustion aborts
// with an *engine.BudgetError, and panics during the fair-cycle search are
// contained as *engine.EngineError carrying the target conjunct.
func Liveness(g *ts.Graph, target form.Formula, mapping map[string]form.Expr) (result *LivenessResult, err error) {
	if mapping != nil {
		target = target.Subst(mapping)
	}
	m := g.Meter()
	defer obs.SpanFromMeter(m, "check:liveness")()
	var curTarget form.Formula
	defer engine.Capture(&err, "check.Liveness", func() (string, string) {
		if curTarget != nil {
			return "", curTarget.String()
		}
		return "", target.String()
	})
	conjuncts := flattenConjuncts(target)
	fair, ferr := FairnessConds(g)
	for _, cj := range conjuncts {
		curTarget = cj
		res, err := checkLivenessConjunct(g, fair, cj)
		if err != nil {
			return nil, err
		}
		if *ferr != nil {
			return nil, *ferr
		}
		if err := m.Err(); err != nil {
			return nil, err
		}
		if !res.Holds {
			res.Stats = m.Stats()
			return res, nil
		}
	}
	return &LivenessResult{Holds: true, Stats: m.Stats()}, nil
}

func flattenConjuncts(f form.Formula) []form.Formula {
	if and, ok := f.(form.AndFm); ok {
		var out []form.Formula
		for _, c := range and.Fs {
			out = append(out, flattenConjuncts(c)...)
		}
		return out
	}
	return []form.Formula{f}
}

// predMask builds a cached mask for a state predicate.
func predMask(g *ts.Graph, p form.Expr) (StateMask, *error) {
	return memoState(g, func(id int) (bool, error) {
		return form.EvalStateBool(p, g.States[id])
	})
}

func notMask(m StateMask) StateMask { return func(id int) bool { return !m(id) } }

func checkLivenessConjunct(g *ts.Graph, fair []CycleCond, target form.Formula) (*LivenessResult, error) {
	switch t := target.(type) {
	case form.EventuallyF:
		if p, ok := t.F.(form.PredF); ok {
			return checkEventually(g, fair, p.P, target.String())
		}
		if alw, ok := t.F.(form.AlwaysF); ok {
			if p, ok := alw.F.(form.PredF); ok {
				return checkEventuallyAlways(g, fair, p.P, target.String())
			}
		}
	case form.AlwaysF:
		// □◇P and leads-to □(P ⇒ ◇Q).
		if ev, ok := t.F.(form.EventuallyF); ok {
			if p, ok := ev.F.(form.PredF); ok {
				return checkAlwaysEventually(g, fair, p.P, target.String())
			}
		}
		if imp, ok := t.F.(form.ImpliesFmN); ok {
			p, pok := imp.A.(form.PredF)
			if pok {
				if ev, ok := imp.B.(form.EventuallyF); ok {
					if q, ok := ev.F.(form.PredF); ok {
						return checkLeadsTo(g, fair, p.P, q.P, target.String())
					}
				}
			}
		}
	case form.FairF:
		return checkFairTarget(g, fair, t)
	}
	return nil, fmt.Errorf("liveness: unsupported target conjunct %s", target)
}

// checkEventually checks ◇P: a violation is a fair lasso confined to ¬P.
func checkEventually(g *ts.Graph, fair []CycleCond, p form.Expr, name string) (*LivenessResult, error) {
	mask, merr := predMask(g, p)
	notP := notMask(mask)
	w, err := FindFairLasso(g, LassoQuery{
		StartIDs:    g.Inits,
		PrefixState: notP,
		CycleState:  notP,
		Conds:       fair,
	})
	if err != nil {
		return nil, err
	}
	if *merr != nil {
		return nil, *merr
	}
	return lassoResult(g, w, name), nil
}

// checkAlwaysEventually checks □◇P: a violation is a fair lasso whose cycle
// is confined to ¬P (the prefix is unrestricted).
func checkAlwaysEventually(g *ts.Graph, fair []CycleCond, p form.Expr, name string) (*LivenessResult, error) {
	mask, merr := predMask(g, p)
	w, err := FindFairLasso(g, LassoQuery{
		StartIDs:   g.Inits,
		CycleState: notMask(mask),
		Conds:      fair,
	})
	if err != nil {
		return nil, err
	}
	if *merr != nil {
		return nil, *merr
	}
	return lassoResult(g, w, name), nil
}

// checkEventuallyAlways checks ◇□P: a violation is a fair lasso whose cycle
// contains a ¬P state.
func checkEventuallyAlways(g *ts.Graph, fair []CycleCond, p form.Expr, name string) (*LivenessResult, error) {
	mask, merr := predMask(g, p)
	conds := append(append([]CycleCond(nil), fair...), CycleCond{
		Name:     "hits ~P",
		Buchi:    true,
		HitState: notMask(mask),
	})
	w, err := FindFairLasso(g, LassoQuery{StartIDs: g.Inits, Conds: conds})
	if err != nil {
		return nil, err
	}
	if *merr != nil {
		return nil, *merr
	}
	return lassoResult(g, w, name), nil
}

// checkLeadsTo checks □(P ⇒ ◇Q): a violation reaches a (P ∧ ¬Q) state and
// then stays in ¬Q forever along a fair lasso.
func checkLeadsTo(g *ts.Graph, fair []CycleCond, p, q form.Expr, name string) (*LivenessResult, error) {
	pMask, perr := predMask(g, p)
	qMask, qerr := predMask(g, q)
	notQ := notMask(qMask)
	reach := reachableFrom(g, g.Inits, nil, nil)
	var starts []int
	for id := range g.States {
		if reach[id] && pMask(id) && notQ(id) {
			starts = append(starts, id)
		}
	}
	if *perr != nil {
		return nil, *perr
	}
	if *qerr != nil {
		return nil, *qerr
	}
	if len(starts) == 0 {
		return &LivenessResult{Holds: true}, nil
	}
	w, err := FindFairLasso(g, LassoQuery{
		StartIDs:    starts,
		PrefixState: notQ,
		CycleState:  notQ,
		Conds:       fair,
	})
	if err != nil {
		return nil, err
	}
	if *qerr != nil {
		return nil, *qerr
	}
	if w == nil {
		return &LivenessResult{Holds: true}, nil
	}
	// Stitch the path from an initial state to the witness's start.
	head := w.CycleIDs[0]
	if len(w.PrefixIDs) > 0 {
		head = w.PrefixIDs[0]
	}
	lead := g.PathTo(head)
	prefix := append(append([]int(nil), lead[:len(lead)-1]...), w.PrefixIDs...)
	return lassoResult(g, &LassoWitness{PrefixIDs: prefix, CycleIDs: w.CycleIDs}, name), nil
}

// checkFairTarget checks a WF/SF obligation of an abstract specification:
//
//	WF_v(A) violated ⟺ fair cycle with every state enabling ⟨A⟩_v and no
//	                    ⟨A⟩_v edge;
//	SF_v(A) violated ⟺ fair cycle with some state enabling ⟨A⟩_v and no
//	                    ⟨A⟩_v edge.
func checkFairTarget(g *ts.Graph, fair []CycleCond, t form.FairF) (*LivenessResult, error) {
	angle := form.Angle(t.A, t.Sub)
	enFn, stepPred := compiledAngle(g, angle)
	enabled, enErr := memoState(g, func(id int) (bool, error) {
		return enFn(g.States[id])
	})
	var takenErr error
	notTaken := func(from, to int) bool {
		ok, err := stepPred(state.Step{From: g.States[from], To: g.States[to]})
		if err != nil && takenErr == nil {
			takenErr = err
		}
		return !ok
	}
	q := LassoQuery{StartIDs: g.Inits, CycleEdge: notTaken, Conds: fair}
	if t.Kind == form.Weak {
		q.CycleState = enabled
	} else {
		q.Conds = append(append([]CycleCond(nil), fair...), CycleCond{
			Name:     "hits enabled state",
			Buchi:    true,
			HitState: enabled,
		})
	}
	w, err := FindFairLasso(g, q)
	if err != nil {
		return nil, err
	}
	if *enErr != nil {
		return nil, *enErr
	}
	if takenErr != nil {
		return nil, takenErr
	}
	return lassoResult(g, w, t.String()), nil
}

func lassoResult(g *ts.Graph, w *LassoWitness, name string) *LivenessResult {
	if w == nil {
		return &LivenessResult{Holds: true}
	}
	return &LivenessResult{
		Holds:          false,
		Violated:       name,
		Counterexample: w.ToLasso(g),
	}
}
