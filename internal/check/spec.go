package check

import (
	"fmt"
	"strings"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/ts"
)

// SpecResult reports a full (safety + liveness) specification check.
type SpecResult struct {
	Safety   *SafetyResult
	Liveness *LivenessResult
}

// Holds reports whether both parts hold.
func (r *SpecResult) Holds() bool {
	return (r.Safety == nil || r.Safety.Holds) && (r.Liveness == nil || r.Liveness.Holds)
}

// Verdict maps the decided result onto the three-valued scale.
func (r *SpecResult) Verdict() engine.Verdict {
	if r.Holds() {
		return engine.Holds
	}
	return engine.Violated
}

// Stats returns the latest meter snapshot among the parts (the meter is
// cumulative, so the later part subsumes the earlier one).
func (r *SpecResult) Stats() engine.RunStats {
	if r.Liveness != nil {
		return r.Liveness.Stats
	}
	if r.Safety != nil {
		return r.Safety.Stats
	}
	return engine.RunStats{}
}

// String renders the result.
func (r *SpecResult) String() string {
	var sb strings.Builder
	if r.Safety != nil {
		sb.WriteString(r.Safety.String())
		sb.WriteByte('\n')
	}
	if r.Liveness != nil {
		sb.WriteString(r.Liveness.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Component checks that every fair behavior of the graph satisfies the
// target component specification. The target's internal variables are
// discharged with the refinement mapping (abstract internal variable →
// concrete state function), as in §A.4 of the paper; a nil mapping means
// the target's internals are visible concrete variables.
func Component(g *ts.Graph, target *spec.Component, mapping map[string]form.Expr) (*SpecResult, error) {
	saf, err := SafetyUnder(g, target.SafetyFormula(), mapping)
	if err != nil {
		return nil, fmt.Errorf("component %s safety: %w", target.Name, err)
	}
	res := &SpecResult{Safety: saf}
	if !saf.Holds {
		return res, nil
	}
	if len(target.Fairness) > 0 {
		live, err := Liveness(g, target.FairnessFormula(), mapping)
		if err != nil {
			return nil, fmt.Errorf("component %s liveness: %w", target.Name, err)
		}
		res.Liveness = live
	}
	return res, nil
}
