package check

import (
	"fmt"

	"opentla/internal/state"
	"opentla/internal/ts"
)

// CycleCond is an acceptance condition on the set of states and edges a
// cycle visits infinitely often.
//
// A Büchi condition requires the cycle to contain a hit (a state in
// HitState or an edge in HitEdge). A Streett condition requires a hit only
// if the cycle contains a trigger state. WF and SF translate directly:
//
//	WF_v(A) as assumption:  Büchi  — hit = ¬Enabled⟨A⟩_v states ∪ ⟨A⟩_v edges
//	SF_v(A) as assumption:  Streett — trigger = Enabled⟨A⟩_v states,
//	                                   hit = ⟨A⟩_v edges
type CycleCond struct {
	Name      string
	Buchi     bool
	TrigState func(id int) bool       // Streett trigger (nil for Büchi)
	HitState  func(id int) bool       // nil = no state hits
	HitEdge   func(from, to int) bool // nil = no edge hits
}

// StateMask filters states by ID; nil allows all.
type StateMask func(id int) bool

// EdgeMask filters edges; nil allows all.
type EdgeMask func(from, to int) bool

// LassoQuery describes a search for a reachable fair cycle.
type LassoQuery struct {
	// StartIDs are the states the prefix may start from (typically the
	// graph's initial states).
	StartIDs []int
	// PrefixState/PrefixEdge restrict the prefix path.
	PrefixState StateMask
	PrefixEdge  EdgeMask
	// CycleState/CycleEdge restrict the cycle.
	CycleState StateMask
	CycleEdge  EdgeMask
	// Conds are the acceptance conditions the cycle must satisfy (e.g. the
	// fairness assumptions of the system, plus conditions encoding the
	// violation of the target property).
	Conds []CycleCond
}

// LassoWitness is a reachable fair cycle: the behavior
// Prefix[0..] (Cycle[0..])^ω. Prefix ends just before the cycle's first
// state; it may be empty.
type LassoWitness struct {
	PrefixIDs []int
	CycleIDs  []int
}

// ToLasso converts the witness to a semantic lasso over the graph's states.
func (w *LassoWitness) ToLasso(g *ts.Graph) *state.Lasso {
	prefix := make([]*state.State, len(w.PrefixIDs))
	for i, id := range w.PrefixIDs {
		prefix[i] = g.States[id]
	}
	cycle := make([]*state.State, len(w.CycleIDs))
	for i, id := range w.CycleIDs {
		cycle[i] = g.States[id]
	}
	return &state.Lasso{Prefix: prefix, Cycle: cycle}
}

// FindFairLasso searches for a reachable cycle satisfying the query's
// acceptance conditions. It returns nil if no such lasso exists — which,
// when the conditions encode "system fairness ∧ violated target", proves
// the target property.
//
// The search is governed by the graph's resource meter: an exhausted
// budget aborts with an *engine.BudgetError instead of returning a
// spuriously empty (property-proving) answer from a truncated search.
func FindFairLasso(g *ts.Graph, q LassoQuery) (*LassoWitness, error) {
	// Reduction preserves safety (all reachable states modulo symmetry, real
	// steps on every edge) but NOT fair-cycle structure: POR may postpone
	// the very interleavings a fairness condition needs, and symmetry quotient
	// cycles need not lift to fair cycles of the full system. Refusing here
	// is what lets the rest of the pipeline thread reduction into
	// safety-only obligations without auditing every caller.
	if g.Reduced() {
		return nil, fmt.Errorf("fair-lasso search requires a full (unreduced) graph; this graph was built with -reduce")
	}
	m := g.Meter()
	if err := m.Tick(); err != nil {
		return nil, err
	}
	// Phase 1: states reachable under the prefix masks.
	reachable := reachableFrom(g, q.StartIDs, q.PrefixState, q.PrefixEdge)
	if err := m.Err(); err != nil {
		return nil, err
	}

	// Phase 2: fair-cycle search inside reachable ∩ CycleState.
	cycleAllowed := func(id int) bool {
		if !reachable[id] {
			return false
		}
		return q.CycleState == nil || q.CycleState(id)
	}
	cyc := searchFairCycle(g, cycleAllowed, q.CycleEdge, q.Conds)
	if err := m.Err(); err != nil {
		// A truncated SCC decomposition proves nothing: report exhaustion.
		return nil, err
	}
	if cyc == nil {
		return nil, nil
	}

	// Phase 3: prefix path from a start state to the cycle's first state.
	path := g.PathBetween(q.StartIDs, cyc[0], func(id int) bool {
		return q.PrefixState == nil || q.PrefixState(id)
	})
	if path == nil {
		return nil, fmt.Errorf("internal: fair cycle found but unreachable from start set")
	}
	// Drop the junction state from the prefix (it is the cycle's head).
	return &LassoWitness{PrefixIDs: path[:len(path)-1], CycleIDs: cyc}, nil
}

// reachableFrom computes the set of states reachable from starts under the
// given masks (starts failing the state mask are excluded).
func reachableFrom(g *ts.Graph, starts []int, sm StateMask, em EdgeMask) []bool {
	seen := make([]bool, len(g.States))
	var queue []int
	for _, s := range starts {
		if sm != nil && !sm(s) {
			continue
		}
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.ForEachSucc(u, func(v int) bool {
			if seen[v] {
				return true
			}
			if sm != nil && !sm(v) {
				return true
			}
			if em != nil && !em(u, v) {
				return true
			}
			seen[v] = true
			queue = append(queue, v)
			return true
		})
	}
	return seen
}

// searchFairCycle finds a cycle within the allowed subgraph satisfying all
// conditions, by recursive SCC refinement (the standard Streett emptiness
// algorithm, extended with edge hits):
//
//   - a Büchi condition with no hit in an SCC rules out the whole SCC;
//   - a Streett condition with a trigger but no hit forces removal of the
//     trigger states, and the SCC is re-decomposed.
func searchFairCycle(g *ts.Graph, sm StateMask, em EdgeMask, conds []CycleCond) []int {
	sccs := g.SCCs(toStateFilter(sm), toEdgeFilter(em))
	for _, comp := range sccs {
		if cyc := examineSCC(g, comp, sm, em, conds); cyc != nil {
			return cyc
		}
	}
	return nil
}

func toStateFilter(sm StateMask) func(int) bool {
	if sm == nil {
		return nil
	}
	return func(id int) bool { return sm(id) }
}

func toEdgeFilter(em EdgeMask) func(int, int) bool {
	if em == nil {
		return nil
	}
	return func(a, b int) bool { return em(a, b) }
}

// examineSCC decides whether the SCC contains an accepting cycle, possibly
// recursing into sub-SCCs after removing Streett trigger states.
func examineSCC(g *ts.Graph, comp []int, sm StateMask, em EdgeMask, conds []CycleCond) []int {
	inComp := make(map[int]bool, len(comp))
	for _, id := range comp {
		inComp[id] = true
	}
	// Internal edges under the masks.
	type edge struct{ from, to int }
	var edges []edge
	for _, u := range comp {
		g.ForEachSucc(u, func(v int) bool {
			if !inComp[v] {
				return true
			}
			if em != nil && !em(u, v) {
				return true
			}
			edges = append(edges, edge{u, v})
			return true
		})
	}
	if len(edges) == 0 {
		return nil // trivial SCC: no cycle at all
	}

	// Evaluate each condition over the SCC.
	var required []cycleHit
	var removeTriggers []int
	violated := false
	for ci := range conds {
		c := &conds[ci]
		found := cycleHit{stateID: -1, from: -1, to: -1}
		have := false
		if c.HitState != nil {
			for _, id := range comp {
				if c.HitState(id) {
					found = cycleHit{stateID: id, from: -1, to: -1}
					have = true
					break
				}
			}
		}
		if !have && c.HitEdge != nil {
			for _, e := range edges {
				if c.HitEdge(e.from, e.to) {
					found = cycleHit{stateID: -1, from: e.from, to: e.to}
					have = true
					break
				}
			}
		}
		if c.Buchi {
			if !have {
				return nil // no sub-cycle of this SCC can hit either
			}
			required = append(required, found)
			continue
		}
		// Streett: check trigger.
		triggered := false
		if c.TrigState != nil {
			for _, id := range comp {
				if c.TrigState(id) {
					triggered = true
					break
				}
			}
		}
		if !triggered {
			continue // condition vacuously satisfied by any cycle in SCC
		}
		if have {
			required = append(required, found)
			continue
		}
		// Triggered but unhittable: cycles through trigger states are
		// unfair; remove them and recurse.
		violated = true
		for _, id := range comp {
			if c.TrigState(id) {
				removeTriggers = append(removeTriggers, id)
			}
		}
	}
	if violated {
		removed := make(map[int]bool, len(removeTriggers))
		for _, id := range removeTriggers {
			removed[id] = true
		}
		if len(removed) == len(comp) {
			return nil
		}
		subSM := func(id int) bool {
			if !inComp[id] || removed[id] {
				return false
			}
			return sm == nil || sm(id)
		}
		return searchFairCycle(g, subSM, em, conds)
	}

	// Accepting SCC: build a closed walk visiting every required hit.
	return buildCycle(g, comp, inComp, em, required)
}

// cycleHit is a visit requirement for the witness cycle: a state (stateID ≥
// 0) or an edge (stateID < 0, from/to set).
type cycleHit struct {
	stateID  int
	from, to int
}

// buildCycle constructs a closed walk within the SCC that visits every
// required state hit and traverses every required edge hit.
func buildCycle(g *ts.Graph, comp []int, inComp map[int]bool, em EdgeMask, required []cycleHit) []int {
	allowed := func(id int) bool { return inComp[id] }
	pathIn := func(from, to int) []int {
		if from == to {
			return []int{from}
		}
		// BFS within the SCC respecting the edge mask.
		prev := make(map[int]int, len(comp))
		prev[from] = -1
		queue := []int{from}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			var found []int
			g.ForEachSucc(u, func(v int) bool {
				if !allowed(v) {
					return true
				}
				if em != nil && !em(u, v) {
					return true
				}
				if _, seen := prev[v]; seen {
					return true
				}
				prev[v] = u
				if v == to {
					var path []int
					for x := v; x != -1; x = prev[x] {
						path = append(path, x)
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					found = path
					return false
				}
				queue = append(queue, v)
				return true
			})
			if found != nil {
				return found
			}
		}
		return nil // unreachable: SCC is strongly connected under the mask
	}

	start := comp[0]
	if len(required) > 0 {
		if required[0].stateID >= 0 {
			start = required[0].stateID
		} else {
			start = required[0].from
		}
	}
	walk := []int{start}
	cur := start
	extend := func(path []int) {
		walk = append(walk, path[1:]...)
		cur = walk[len(walk)-1]
	}
	for _, r := range required {
		if r.stateID >= 0 {
			if p := pathIn(cur, r.stateID); p != nil {
				extend(p)
			}
			continue
		}
		if p := pathIn(cur, r.from); p != nil {
			extend(p)
		}
		walk = append(walk, r.to)
		cur = r.to
	}
	// Close the walk.
	if cur != start {
		if p := pathIn(cur, start); p != nil {
			extend(p)
		}
	}
	// walk starts and ends at start; drop the final repetition.
	if len(walk) > 1 && walk[len(walk)-1] == start {
		walk = walk[:len(walk)-1]
	}
	return walk
}
