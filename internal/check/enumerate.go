package check

import (
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// AllStates enumerates every state over the given variables and domains.
// It is intended for the small universes used in semantic property tests.
func AllStates(vars []string, domains map[string][]value.Value) []*state.State {
	var out []*state.State
	value.ForEachAssignment(vars, domains, func(a map[string]value.Value) bool {
		out = append(out, state.New(a))
		return true
	})
	return out
}

// ForAllLassos enumerates every lasso over the universe of states with
// prefix length ≤ maxPrefix and cycle length in [1, maxCycle], calling f
// for each; enumeration stops early if f returns false. States in a lasso
// are arbitrary (behaviors in TLA are unconstrained state sequences).
// ForAllLassos reports whether enumeration ran to completion.
//
// The number of lassos is |S|^(p+c) summed over all shapes, so keep the
// universe tiny (this is the finite-universe "validity" used by the
// semantic tests of Propositions 3 and 4 and the ⊳ equivalences).
func ForAllLassos(universe []*state.State, maxPrefix, maxCycle int, f func(*state.Lasso) bool) bool {
	seq := make([]*state.State, maxPrefix+maxCycle)
	var rec func(i, total, p int) bool
	rec = func(i, total, p int) bool {
		if i == total {
			prefix := make([]*state.State, p)
			copy(prefix, seq[:p])
			cycle := make([]*state.State, total-p)
			copy(cycle, seq[p:total])
			return f(&state.Lasso{Prefix: prefix, Cycle: cycle})
		}
		for _, s := range universe {
			seq[i] = s
			if !rec(i+1, total, p) {
				return false
			}
		}
		return true
	}
	for p := 0; p <= maxPrefix; p++ {
		for c := 1; c <= maxCycle; c++ {
			if !rec(0, p+c, p) {
				return false
			}
		}
	}
	return true
}

// GraphLassos enumerates lassos along the edges of a graph: simple paths
// from initial states (length ≤ maxPrefix) followed by cycles (length ≤
// maxCycle) along graph edges. Unlike ForAllLassos, consecutive states are
// graph successors, so each lasso is a behavior of the system. Enumeration
// stops early if f returns false; GraphLassos reports whether it ran to
// completion.
func GraphLassos(g *ts.Graph, maxPrefix, maxCycle int, f func(*state.Lasso) bool) bool {
	toStates := func(ids []int) []*state.State {
		out := make([]*state.State, len(ids))
		for i, id := range ids {
			out[i] = g.States[id]
		}
		return out
	}
	// findCycles enumerates cycles anchored at start (start, c1, …, cm) with
	// edges start→c1→…→cm→start and total length ≤ maxCycle.
	var findCycles func(start, cur int, cyc, prefix []int) bool
	findCycles = func(start, cur int, cyc, prefix []int) bool {
		return g.ForEachSucc(cur, func(nxt int) bool {
			if nxt == start {
				cycle := make([]int, 0, len(cyc)+1)
				cycle = append(cycle, start)
				cycle = append(cycle, cyc...)
				return f(&state.Lasso{Prefix: toStates(prefix), Cycle: toStates(cycle)})
			}
			if len(cyc)+2 <= maxCycle {
				return findCycles(start, nxt, append(cyc, nxt), prefix)
			}
			return true
		})
	}
	// walk extends the prefix path; the last path element is the cycle head.
	var walk func(path []int) bool
	walk = func(path []int) bool {
		head := path[len(path)-1]
		if !findCycles(head, head, nil, path[:len(path)-1]) {
			return false
		}
		if len(path)-1 < maxPrefix {
			return g.ForEachSucc(head, func(nxt int) bool {
				next := make([]int, 0, len(path)+1)
				next = append(next, path...)
				next = append(next, nxt)
				return walk(next)
			})
		}
		return true
	}
	for _, init := range g.Inits {
		if !walk([]int{init}) {
			return false
		}
	}
	return true
}
