package cache

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"opentla/internal/engine"
	"opentla/internal/iofs"
)

// The in-process chaos harness: plant a crash at every mutating filesystem
// operation of a checkpoint-then-resume workload, restart on the survivors'
// disk state, and require the recovered run to be indistinguishable from a
// run that never crashed. Snapshot encoding is deterministic, so the
// invariant is byte-level: the recovered .snap file must equal the one-shot
// reference file exactly.
//
// scripts/chaos.sh is the process-level twin of this test (real os.Exit via
// OPENTLA_CACHE_CRASH_AT); the op counter is defined identically in
// iofs.Faulty and iofs.Crash, so a crash point here names the same operation
// there.

// chaosRef is the one-shot reference every crash point is compared against.
type chaosRef struct {
	desc string
	sig  string
	raw  []byte
}

func chaosReference(t *testing.T, top int64) chaosRef {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := pairSystem(top)
	sys.Cache = c
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	desc, ok := sys.CanonicalDesc()
	if !ok {
		t.Fatal("system not describable")
	}
	raw, err := os.ReadFile(c.EntryPath(desc))
	if err != nil {
		t.Fatal(err)
	}
	return chaosRef{desc: desc, sig: signature(g), raw: raw}
}

// runCrashStages drives the two-stage workload every sweep iterates: a
// budget-interrupted build that saves a checkpoint, then a resumed build to
// completion. Cache failures are nonfatal by design, so both stages run to
// their own end even when the planted crash has frozen the filesystem; the
// crashed FS state, not the stages' return values, is what the sweep
// inspects afterwards.
func runCrashStages(t *testing.T, c *Cache, top int64, f *iofs.Faulty) {
	t.Helper()
	a := pairSystem(top)
	a.Cache = c
	_, err := a.BuildWith(engine.Budget{MaxStates: 8}.Meter())
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("stage A: want budget exhaustion, got %v", err)
	}
	if f.Crashed() {
		return // the simulated process died mid-checkpoint
	}
	b := pairSystem(top)
	b.Cache = c
	b.Resume = true
	if _, err := b.Build(); err != nil && !f.Crashed() {
		t.Fatalf("stage B: %v", err)
	}
}

// recoverAndCheck restarts on the crashed directory — a fresh cache over the
// real filesystem, exactly what a rerun with -resume does — and asserts the
// recovery invariants: the build completes, the graph matches the one-shot
// reference, the snapshot file is byte-identical, and (when wantClean) fsck
// finds nothing, i.e. the crash left no file the recovery had to repair.
func recoverAndCheck(t *testing.T, dir string, top int64, ref chaosRef, wantClean bool) {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	sys := pairSystem(top)
	sys.Cache = c
	sys.Resume = true
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("recovery build: %v", err)
	}
	if signature(g) != ref.sig {
		t.Error("recovered graph differs from the one-shot reference")
	}
	raw, err := os.ReadFile(c.EntryPath(ref.desc))
	if err != nil {
		t.Fatalf("recovered snapshot unreadable: %v", err)
	}
	if !bytes.Equal(raw, ref.raw) {
		t.Error("recovered snapshot file is not byte-identical to the one-shot file")
	}
	if wantClean {
		res, err := c.Fsck(false)
		if err != nil {
			t.Fatalf("fsck after recovery: %v", err)
		}
		for _, f := range res.Findings {
			t.Errorf("fsck after recovery: %s: %s", f.Name, f.Problem)
		}
	}
}

// TestCrashAtEveryWriteOp is the tentpole acceptance test: kill the cache at
// mutating operation 1, 2, 3, ... of the checkpoint-then-resume workload and
// require every restart to converge to the one-shot result. The sweep is
// self-sizing — it stops at the first index past the workload's last write —
// so adding write operations to the cache automatically widens it.
func TestCrashAtEveryWriteOp(t *testing.T) {
	const top = 4
	ref := chaosReference(t, top)
	for at := 1; ; at++ {
		if at > 64 {
			t.Fatal("crash sweep did not terminate: the workload never ran out of ops")
		}
		dir := t.TempDir()
		f := iofs.NewFaulty(iofs.OS{}, map[int]iofs.FaultMode{at: iofs.FaultCrash})
		c, err := OpenWith(dir, Options{FS: f, Retries: -1})
		if err != nil {
			t.Fatal(err)
		}
		runCrashStages(t, c, top, f)
		if !f.Crashed() {
			// This index is past the workload's final write: the run completed
			// untouched and doubles as the sweep's own reference check.
			recoverAndCheck(t, dir, top, ref, true)
			t.Logf("swept %d crash points (workload performs %d mutating ops)", at-1, f.Ops())
			return
		}
		recoverAndCheck(t, dir, top, ref, true)
	}
}

// TestSyncDropThenCrashTearsFinalEntry covers the one corruption atomic
// rename cannot prevent: an fsync that lies (reports success without
// durability) followed by a crash tears the entry at its final path. The
// self-healing load must quarantine the torn file and degrade to a cold
// build with the identical result.
func TestSyncDropThenCrashTearsFinalEntry(t *testing.T) {
	const top = 4
	ref := chaosReference(t, top)
	dir := t.TempDir()
	// Op 3 is the checkpoint write's Sync; op 6 (the resumed stage's first
	// mutating op) crashes after the checkpoint was renamed into place, so
	// the never-synced data is torn away from the final path.
	f := iofs.NewFaulty(iofs.OS{}, map[int]iofs.FaultMode{
		3: iofs.FaultSyncDrop,
		6: iofs.FaultCrash,
	})
	c, err := OpenWith(dir, Options{FS: f, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	runCrashStages(t, c, top, f)
	if !f.Crashed() {
		t.Fatal("planted crash never fired")
	}
	ckpt := c.CheckpointPath(ref.desc)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint should exist torn at its final path: %v", err)
	}
	if len(data) != 0 {
		t.Fatalf("checkpoint kept %d bytes across a crash whose sync was dropped", len(data))
	}
	// Quarantine (not fsck-cleanliness) is the expected healing here.
	recoverAndCheck(t, dir, top, ref, false)
	if _, err := os.Stat(ckpt + ".quarantined"); err != nil {
		t.Errorf("torn checkpoint was not quarantined: %v", err)
	}
}

// TestChaosFullSweep is the CI chaos job's long variant, gated behind
// OPENTLA_CHAOS_FULL: the crash sweep repeated under seeded background fault
// plans (transient errors, short writes, ENOSPC, dropped syncs), so every
// crash point is also exercised with the retry and degrade paths active.
// Seeds are fixed and logged so a failure reproduces exactly.
func TestChaosFullSweep(t *testing.T) {
	if os.Getenv("OPENTLA_CHAOS_FULL") == "" {
		t.Skip("set OPENTLA_CHAOS_FULL=1 to run the full seeded chaos sweep (CI chaos job)")
	}
	const top = 4
	ref := chaosReference(t, top)
	for seed := int64(1); seed <= 4; seed++ {
		base := iofs.SeededPlan(seed, 48, 0.15)
		for at := 1; ; at++ {
			if at > 128 {
				t.Fatalf("seed %d: crash sweep did not terminate", seed)
			}
			plan := make(map[int]iofs.FaultMode, len(base)+1)
			for k, v := range base {
				plan[k] = v
			}
			plan[at] = iofs.FaultCrash
			dir := t.TempDir()
			f := iofs.NewFaulty(iofs.OS{}, plan)
			c, err := OpenWith(dir, Options{FS: f, Retries: -1, Sleep: func(time.Duration) {}})
			if err != nil {
				t.Fatal(err)
			}
			runCrashStages(t, c, top, f)
			crashed := f.Crashed()
			// Background faults may legitimately tear renamed files (dropped
			// syncs) — quarantine is then correct healing, so fsck-cleanliness
			// is not an invariant here; byte-identity still is.
			recoverAndCheck(t, dir, top, ref, false)
			if !crashed {
				t.Logf("seed %d: swept %d crash points under %d planned background faults",
					seed, at-1, len(base))
				break
			}
		}
	}
}

// TestCrashOpCountMatchesFaulty pins the shared op-counting contract between
// the in-process sweep (iofs.Faulty) and the process-level one (iofs.Crash):
// the same workload must consume the same number of mutating operations
// through both, or a crash point found here would name a different operation
// in scripts/chaos.sh.
func TestCrashOpCountMatchesFaulty(t *testing.T) {
	run := func(fsys iofs.FS) int {
		c, err := OpenWith(t.TempDir(), Options{FS: fsys, Retries: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Store("contract", buildSnapshot(t)); err != nil {
			t.Fatal(err)
		}
		switch f := fsys.(type) {
		case *iofs.Faulty:
			return f.Ops()
		case *iofs.Crash:
			return f.Ops()
		}
		t.Fatal("unreachable")
		return 0
	}
	faulty := run(iofs.NewFaulty(iofs.OS{}, nil))
	crash := run(iofs.NewCrash(iofs.OS{}, 0, func(int) {})) // at=0 never fires
	if faulty != crash {
		t.Errorf("op counters disagree: Faulty counts %d, Crash counts %d", faulty, crash)
	}
	if want := 6; faulty != want {
		t.Errorf("a single store consumed %d ops, want %d (temp, write, sync, close, rename, stale-checkpoint remove)", faulty, want)
	}
}
