package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"strings"
)

// Finding is one problem Fsck found with a cache file.
type Finding struct {
	// Name is the offending filename (relative to the cache directory).
	Name string
	// Problem says what is wrong, in one sentence.
	Problem string
	// Quarantined reports whether Fsck moved the file aside.
	Quarantined bool
}

// FsckResult summarizes one integrity check of the cache directory.
type FsckResult struct {
	// Scanned counts the live entries (.snap/.ckpt) examined.
	Scanned int
	// Findings lists every problem, in directory (filename) order.
	Findings []Finding
}

// Fsck verifies every file in the cache directory: live entries must have a
// well-formed content-addressed name, decode under the full codec checks
// (magic, version, trailing checksum), embed a description digest matching
// their filename, and satisfy the structural graph invariants. Orphaned temp
// files, quarantined entries, and unrecognized files are reported as
// findings too, so a clean cache yields exactly zero findings.
//
// With quarantine set, corrupt live entries are renamed to *.quarantined on
// the way through (reported in the finding); everything else is left alone.
func (c *Cache) Fsck(quarantine bool) (FsckResult, error) {
	var res FsckResult
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return res, fmt.Errorf("cache fsck: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			res.Findings = append(res.Findings, Finding{Name: name, Problem: "unexpected directory in cache"})
			continue
		}
		switch {
		case strings.HasSuffix(name, ".snap"), strings.HasSuffix(name, ".ckpt"):
			res.Scanned++
			problem := c.checkEntry(name)
			if problem == "" {
				continue
			}
			f := Finding{Name: name, Problem: problem}
			if quarantine {
				path := filepath.Join(c.dir, name)
				if err := c.fs.Rename(path, path+".quarantined"); err == nil {
					f.Quarantined = true
					c.note("cache-quarantine", fmt.Sprintf("fsck quarantined %s: %s", name, problem))
				}
			}
			res.Findings = append(res.Findings, f)
		case strings.HasSuffix(name, ".tmp"):
			res.Findings = append(res.Findings, Finding{Name: name, Problem: "orphaned temp file (interrupted writer; swept at next Open)"})
		case strings.HasSuffix(name, ".quarantined"):
			res.Findings = append(res.Findings, Finding{Name: name, Problem: "quarantined entry awaiting manual inspection or gc"})
		default:
			res.Findings = append(res.Findings, Finding{Name: name, Problem: "unrecognized file in cache directory"})
		}
	}
	return res, nil
}

// checkEntry validates one live entry, returning "" or the problem. Unlike
// Load, fsck has no requesting system, so the description digest is taken
// from the file itself and cross-checked against the content-addressed
// filename instead of a caller-supplied digest.
func (c *Cache) checkEntry(name string) string {
	stem := strings.TrimSuffix(strings.TrimSuffix(name, ".snap"), ".ckpt")
	parts := strings.SplitN(stem, "-", 2)
	if len(parts) != 2 || len(parts[0]) != 16 || len(parts[1]) != 16 {
		return "filename is not <fnv64>-<sha8> content-addressed form"
	}
	wantSha8, err := hex.DecodeString(parts[1])
	if err != nil {
		return "filename digest is not hexadecimal"
	}
	data, err := c.fs.ReadFile(filepath.Join(c.dir, name))
	if err != nil {
		return fmt.Sprintf("unreadable: %v", err)
	}
	if len(data) < headerLen+1+checksumLen {
		return fmt.Sprintf("truncated: %d bytes, header alone needs %d", len(data), headerLen+1+checksumLen)
	}
	if string(data[:8]) != string(magic[:]) {
		return fmt.Sprintf("bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != codecVersion && v != codecVersionEdges {
		return fmt.Sprintf("codec version %d, this build reads %d and %d", v, codecVersion, codecVersionEdges)
	}
	var descSum [sha256.Size]byte
	copy(descSum[:], data[10:10+sha256.Size])
	snap, err := decodeWith(data, descSum, true)
	if err != nil {
		return err.Error()
	}
	// Only after the entry proves internally consistent is a key mismatch
	// meaningful: a corrupt file is corruption, not mis-filing.
	if !strings.EqualFold(hex.EncodeToString(descSum[:8]), hex.EncodeToString(wantSha8)) {
		return "embedded description digest does not match the filename (entry stored under the wrong key)"
	}
	if !snap.Valid(strings.HasSuffix(name, ".snap")) {
		return "decoded snapshot violates structural graph invariants"
	}
	return ""
}

// Stats describes the cache directory's current contents.
type Stats struct {
	Snapshots   int   // complete-graph entries
	Checkpoints int   // partial-exploration checkpoints
	Quarantined int   // entries moved aside as unreadable
	TempFiles   int   // orphaned temp files
	Other       int   // unrecognized files
	TotalBytes  int64 // size of everything counted above
}

// Stat tallies the cache directory without reading entry contents.
func (c *Cache) Stat() (Stats, error) {
	var st Stats
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return st, fmt.Errorf("cache stat: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".snap"):
			st.Snapshots++
		case strings.HasSuffix(name, ".ckpt"):
			st.Checkpoints++
		case strings.HasSuffix(name, ".quarantined"):
			st.Quarantined++
		case strings.HasSuffix(name, ".tmp"):
			st.TempFiles++
		default:
			st.Other++
		}
		if info, err := ent.Info(); err == nil {
			st.TotalBytes += info.Size()
		}
	}
	return st, nil
}
