package cache

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"

	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// Snapshot file layout (all integers are unsigned varints unless noted):
//
//	magic    [8]byte  "OTLASNAP"
//	version  uint16 little-endian (codecVersion)
//	descSum  [32]byte SHA-256 of the canonical system description
//	flags    byte     bit 0: complete graph (vs checkpoint)
//	level    varint   next BFS level (checkpoints)
//	nvars    varint   shared variable-name table (every state in one graph
//	                  binds the same variable set); names are len-prefixed
//	nstates  varint   per state, one value per table entry, in table order
//	ninits   varint   initial-state ids
//	nrows    varint   committed CSR row lengths, then all targets
//	edges    (version 2 only) per target, one edge-state record: a 0 byte
//	                  when the edge's real successor IS the target state, or
//	                  a 1 byte followed by the state's values in table order
//	checksum [32]byte SHA-256 of everything above
//
// Version 1 has no edge section; snapshots without edge states (the
// overwhelmingly common case — every unreduced graph) are still written as
// version 1, byte-identical to what earlier builds produced, so existing
// cache entries stay valid and the resume-determinism byte comparison is
// unaffected. Symmetry-reduced snapshots carry per-edge real successors and
// are written as version 2; the decoder accepts both.
//
// The encoding is fully deterministic: encoding the same snapshot always
// yields the same bytes, so byte-comparing two snapshot files is a valid
// graph-identity check (CI's resume-determinism job relies on this).

const (
	codecVersion      = 1
	codecVersionEdges = 2
)

var magic = [8]byte{'O', 'T', 'L', 'A', 'S', 'N', 'A', 'P'}

const (
	headerLen   = 8 + 2 + sha256.Size // magic + version + descSum
	checksumLen = sha256.Size
)

// Encode serializes a snapshot, binding it to the description digest. It
// fails if the states do not share one variable set (graphs always do; a
// caller handing anything else gets an error instead of a junk file).
// Encode feeds the content-addressed cache, so its output must be
// byte-exact across runs.
//
// aglint:deterministic
func Encode(snap *ts.Snapshot, descSum [sha256.Size]byte) ([]byte, error) {
	var buf []byte
	buf = append(buf, magic[:]...)
	version := uint16(codecVersion)
	if len(snap.EdgeStates) > 0 {
		if len(snap.EdgeStates) != len(snap.Targets) {
			return nil, fmt.Errorf("snapshot has %d edge states for %d targets", len(snap.EdgeStates), len(snap.Targets))
		}
		version = codecVersionEdges
	}
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = append(buf, descSum[:]...)
	var flags byte
	if snap.Complete {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(snap.Level))

	var vars []string
	if len(snap.States) > 0 {
		vars = snap.States[0].Vars()
	}
	buf = binary.AppendUvarint(buf, uint64(len(vars)))
	for _, v := range vars {
		buf = appendString(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(snap.States)))
	for i, s := range snap.States {
		if s.Len() != len(vars) {
			return nil, fmt.Errorf("state %d binds %d variables, table has %d", i, s.Len(), len(vars))
		}
		for _, v := range vars {
			val, ok := s.Get(v)
			if !ok {
				return nil, fmt.Errorf("state %d does not bind %q", i, v)
			}
			buf = appendValue(buf, val)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(snap.Inits)))
	for _, id := range snap.Inits {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	rows := snap.Rows()
	buf = binary.AppendUvarint(buf, uint64(rows))
	for i := 0; i < rows; i++ {
		buf = binary.AppendUvarint(buf, uint64(snap.Offsets[i+1]-snap.Offsets[i]))
	}
	for _, t := range snap.Targets {
		buf = binary.AppendUvarint(buf, uint64(t))
	}
	if version == codecVersionEdges {
		for k, es := range snap.EdgeStates {
			if es == nil {
				return nil, fmt.Errorf("edge %d has nil real-successor state", k)
			}
			// Most real successors equal their canonical target; a single
			// marker byte avoids re-encoding the state.
			if es.Equal(snap.States[snap.Targets[k]]) {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			if es.Len() != len(vars) {
				return nil, fmt.Errorf("edge state %d binds %d variables, table has %d", k, es.Len(), len(vars))
			}
			for _, v := range vars {
				val, ok := es.Get(v)
				if !ok {
					return nil, fmt.Errorf("edge state %d does not bind %q", k, v)
				}
				buf = appendValue(buf, val)
			}
		}
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...), nil
}

// Decode parses and verifies a snapshot file. Every failure mode names its
// cause: wrong magic, unsupported version, a description digest that does
// not match the requesting system, truncation, or checksum mismatch.
func Decode(data []byte, descSum [sha256.Size]byte) (*ts.Snapshot, error) {
	return decodeWith(data, descSum, true)
}

// decodeWith is Decode with the trailing-checksum verification switchable:
// verify=false exists solely for the MutDropChecksum durability mutant,
// which must demonstrably accept a corrupted file the real cache rejects.
func decodeWith(data []byte, descSum [sha256.Size]byte, verify bool) (*ts.Snapshot, error) {
	if len(data) < headerLen+1+checksumLen {
		return nil, fmt.Errorf("snapshot truncated: %d bytes", len(data))
	}
	if string(data[:8]) != string(magic[:]) {
		return nil, fmt.Errorf("bad snapshot magic %q", data[:8])
	}
	version := binary.LittleEndian.Uint16(data[8:10])
	if version != codecVersion && version != codecVersionEdges {
		return nil, fmt.Errorf("snapshot version %d, this build reads %d and %d", version, codecVersion, codecVersionEdges)
	}
	if subtle.ConstantTimeCompare(data[10:10+sha256.Size], descSum[:]) != 1 {
		return nil, fmt.Errorf("snapshot was written for a different system description")
	}
	payload := data[: len(data)-checksumLen : len(data)-checksumLen]
	if verify {
		sum := sha256.Sum256(payload)
		if subtle.ConstantTimeCompare(sum[:], data[len(data)-checksumLen:]) != 1 {
			return nil, fmt.Errorf("snapshot checksum mismatch (file corrupted)")
		}
	}

	r := &reader{buf: payload, off: headerLen}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	snap := &ts.Snapshot{Complete: flags&1 != 0}
	level, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	snap.Level = int(level)

	nvars, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	vars := make([]string, nvars)
	for i := range vars {
		if vars[i], err = r.string(); err != nil {
			return nil, err
		}
	}
	nstates, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	snap.States = make([]*state.State, nstates)
	binding := make(map[string]value.Value, len(vars))
	for i := range snap.States {
		for _, v := range vars {
			val, err := r.value(0)
			if err != nil {
				return nil, err
			}
			binding[v] = val
		}
		snap.States[i] = state.New(binding)
	}
	ninits, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	snap.Inits = make([]int, ninits)
	for i := range snap.Inits {
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		snap.Inits[i] = int(id)
	}
	nrows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	snap.Offsets = make([]int, nrows+1)
	total := 0
	for i := 0; i < int(nrows); i++ {
		snap.Offsets[i] = total
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		total += int(n)
	}
	snap.Offsets[nrows] = total
	snap.Targets = make([]int32, total)
	for i := range snap.Targets {
		t, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		snap.Targets[i] = int32(t)
	}
	if version == codecVersionEdges {
		snap.EdgeStates = make([]*state.State, total)
		for k := range snap.EdgeStates {
			marker, err := r.byte()
			if err != nil {
				return nil, err
			}
			switch marker {
			case 0:
				t := snap.Targets[k]
				if int(t) >= len(snap.States) {
					return nil, fmt.Errorf("edge %d target %d out of range", k, t)
				}
				snap.EdgeStates[k] = snap.States[t]
			case 1:
				for _, v := range vars {
					val, err := r.value(0)
					if err != nil {
						return nil, err
					}
					binding[v] = val
				}
				snap.EdgeStates[k] = state.New(binding)
			default:
				return nil, fmt.Errorf("edge %d has unknown marker %d", k, marker)
			}
		}
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("snapshot has %d trailing bytes", len(r.buf)-r.off)
	}
	return snap, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendValue encodes a value: kind byte, then the payload (bool: one byte;
// int: zigzag varint; string: length-prefixed bytes; tuple: length then
// elements).
func appendValue(buf []byte, v value.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case value.KindBool:
		b, _ := v.AsBool()
		if b {
			return append(buf, 1)
		}
		return append(buf, 0)
	case value.KindInt:
		i, _ := v.AsInt()
		return binary.AppendVarint(buf, i)
	case value.KindString:
		s, _ := v.AsString()
		return appendString(buf, s)
	default: // KindTuple; invalid kinds cannot reach a built graph
		elems := v.Elems()
		buf = binary.AppendUvarint(buf, uint64(len(elems)))
		for _, e := range elems {
			buf = appendValue(buf, e)
		}
		return buf
	}
}

// maxNesting bounds tuple recursion during decode; no graph in this
// repository nests values remotely this deep, and the bound keeps a crafted
// file from exhausting the stack.
const maxNesting = 64

// reader is a bounds-checked cursor over the verified payload.
type reader struct {
	buf []byte
	off int
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("snapshot truncated at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.buf)-r.off) < n {
		return "", fmt.Errorf("string of %d bytes overruns snapshot at offset %d", n, r.off)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) value(depth int) (value.Value, error) {
	if depth > maxNesting {
		return value.Value{}, fmt.Errorf("value nesting exceeds %d", maxNesting)
	}
	k, err := r.byte()
	if err != nil {
		return value.Value{}, err
	}
	switch value.Kind(k) {
	case value.KindBool:
		b, err := r.byte()
		if err != nil {
			return value.Value{}, err
		}
		return value.Bool(b != 0), nil
	case value.KindInt:
		i, err := r.varint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case value.KindString:
		s, err := r.string()
		if err != nil {
			return value.Value{}, err
		}
		return value.Str(s), nil
	case value.KindTuple:
		n, err := r.uvarint()
		if err != nil {
			return value.Value{}, err
		}
		if uint64(len(r.buf)-r.off) < n {
			return value.Value{}, fmt.Errorf("tuple of %d elements overruns snapshot", n)
		}
		elems := make([]value.Value, n)
		for i := range elems {
			if elems[i], err = r.value(depth + 1); err != nil {
				return value.Value{}, err
			}
		}
		return value.Tuple(elems...), nil
	default:
		return value.Value{}, fmt.Errorf("unknown value kind %d at offset %d", k, r.off-1)
	}
}
