package cache

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"opentla/internal/iofs"
)

// Flags is the standard command-line surface of the graph cache, shared by
// every CLI (agcheck, queueverify, tracegen).
type Flags struct {
	// Dir is the cache directory; empty disables caching entirely.
	Dir string
	// Resume asks interrupted builds to continue from their saved
	// checkpoint. Requires Dir.
	Resume bool
	// NoCache disables cache reads and writes even when Dir is set, for
	// forcing a cold build against a populated cache.
	NoCache bool
	// MaxBytes bounds the cache's total size; 0 means unbounded. After
	// every store the least-recently-used entries are evicted until the
	// cache fits.
	MaxBytes int64
}

// AddFlags registers the cache flags on a flag set.
func (f *Flags) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "cache-dir", "", "directory for the persistent graph cache (empty = no caching)")
	fs.BoolVar(&f.Resume, "resume", false, "resume an interrupted build from its checkpoint (requires -cache-dir)")
	fs.BoolVar(&f.NoCache, "no-cache", false, "force a cold build: ignore and do not write the cache")
	fs.Int64Var(&f.MaxBytes, "cache-max-bytes", 0, "evict least-recently-used cache entries beyond this total size (0 = unbounded)")
}

// Validate reports flag combinations that cannot mean what the user
// intended. CLIs treat a failure as a usage error (exit 2).
func (f *Flags) Validate() error {
	if f.Resume && f.NoCache {
		return fmt.Errorf("-resume and -no-cache contradict each other: resuming reads the cache that -no-cache disables")
	}
	if f.Resume && f.Dir == "" {
		return fmt.Errorf("-resume requires -cache-dir: there is no checkpoint to resume from without a cache directory")
	}
	if f.MaxBytes < 0 {
		return fmt.Errorf("-cache-max-bytes must be >= 0 (got %d)", f.MaxBytes)
	}
	if f.MaxBytes > 0 && f.Dir == "" {
		return fmt.Errorf("-cache-max-bytes requires -cache-dir: there is no cache to bound")
	}
	return nil
}

// CrashAtEnv is the environment variable scripts/chaos.sh uses to plant a
// process kill at the Nth mutating cache-filesystem operation. When set to a
// positive integer, Open wraps the production filesystem in iofs.Crash, and
// the process exits with iofs.CrashExitCode at that operation. Unset, empty,
// or zero means no crash. Chaos-harness use only.
const CrashAtEnv = "OPENTLA_CACHE_CRASH_AT"

// Open returns the configured cache, or nil when caching is disabled.
func (f *Flags) Open() (*Cache, error) {
	if f.Dir == "" || f.NoCache {
		return nil, nil
	}
	opts := Options{Retries: -1, MaxBytes: f.MaxBytes}
	if v := os.Getenv(CrashAtEnv); v != "" {
		at, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("cache: %s=%q is not an integer: %w", CrashAtEnv, v, err)
		}
		if at > 0 {
			opts.FS = iofs.NewCrash(iofs.OS{}, at, nil)
		}
	}
	return OpenWith(f.Dir, opts)
}
