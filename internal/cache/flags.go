package cache

import (
	"flag"
	"fmt"
)

// Flags is the standard command-line surface of the graph cache, shared by
// every CLI (agcheck, queueverify, tracegen).
type Flags struct {
	// Dir is the cache directory; empty disables caching entirely.
	Dir string
	// Resume asks interrupted builds to continue from their saved
	// checkpoint. Requires Dir.
	Resume bool
	// NoCache disables cache reads and writes even when Dir is set, for
	// forcing a cold build against a populated cache.
	NoCache bool
}

// AddFlags registers the cache flags on a flag set.
func (f *Flags) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "cache-dir", "", "directory for the persistent graph cache (empty = no caching)")
	fs.BoolVar(&f.Resume, "resume", false, "resume an interrupted build from its checkpoint (requires -cache-dir)")
	fs.BoolVar(&f.NoCache, "no-cache", false, "force a cold build: ignore and do not write the cache")
}

// Validate reports flag combinations that cannot mean what the user
// intended. CLIs treat a failure as a usage error (exit 2).
func (f *Flags) Validate() error {
	if f.Resume && (f.Dir == "" || f.NoCache) {
		return fmt.Errorf("-resume requires -cache-dir (and is incompatible with -no-cache)")
	}
	return nil
}

// Open returns the configured cache, or nil when caching is disabled.
func (f *Flags) Open() (*Cache, error) {
	if f.Dir == "" || f.NoCache {
		return nil, nil
	}
	return Open(f.Dir)
}
