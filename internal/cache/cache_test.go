package cache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// pairSystem mirrors the ts test fixture: two independent counters, wide
// enough for multi-state BFS levels (so checkpoints carry real structure).
func pairSystem(top int64) *ts.System {
	mk := func(name, v string) *spec.Component {
		inc := form.And(
			form.Lt(form.Var(v), form.IntC(top)),
			form.Eq(form.PrimedVar(v), form.Add(form.Var(v), form.IntC(1))),
		)
		return &spec.Component{
			Name:    name,
			Outputs: []string{v},
			Init:    form.Eq(form.Var(v), form.IntC(0)),
			Actions: []spec.Action{{Name: "Inc", Def: inc}},
		}
	}
	return &ts.System{
		Name:       "pair",
		Components: []*spec.Component{mk("cx", "x"), mk("cy", "y")},
		Domains: map[string][]value.Value{
			"x": value.Ints(0, top),
			"y": value.Ints(0, top),
		},
	}
}

// signature renders a graph's observable structure for identity checks.
func signature(g *ts.Graph) string {
	var sb strings.Builder
	for id, s := range g.States {
		fmt.Fprintf(&sb, "%d:%s\n", id, s.Key())
	}
	fmt.Fprintf(&sb, "inits:%v\n", g.Inits)
	for id := range g.States {
		fmt.Fprintf(&sb, "%d ->", id)
		g.ForEachSucc(id, func(to int) bool {
			fmt.Fprintf(&sb, " %d", to)
			return true
		})
		sb.WriteByte('\n')
	}
	return sb.String()
}

func buildSnapshot(t *testing.T) *ts.Snapshot {
	t.Helper()
	g, err := pairSystem(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	return g.Snapshot()
}

func sameSnapshot(a, b *ts.Snapshot) error {
	if a.Complete != b.Complete || a.Level != b.Level {
		return fmt.Errorf("header: (%v,%d) vs (%v,%d)", a.Complete, a.Level, b.Complete, b.Level)
	}
	if len(a.States) != len(b.States) {
		return fmt.Errorf("state count: %d vs %d", len(a.States), len(b.States))
	}
	for i := range a.States {
		if !a.States[i].Equal(b.States[i]) {
			return fmt.Errorf("state %d: %s vs %s", i, a.States[i], b.States[i])
		}
	}
	if fmt.Sprint(a.Inits) != fmt.Sprint(b.Inits) {
		return fmt.Errorf("inits: %v vs %v", a.Inits, b.Inits)
	}
	if fmt.Sprint(a.Offsets) != fmt.Sprint(b.Offsets) {
		return fmt.Errorf("offsets: %v vs %v", a.Offsets, b.Offsets)
	}
	if fmt.Sprint(a.Targets) != fmt.Sprint(b.Targets) {
		return fmt.Errorf("targets: %v vs %v", a.Targets, b.Targets)
	}
	return nil
}

func TestCodecRoundTrip(t *testing.T) {
	snap := buildSnapshot(t)
	_, sum := Digest("pair-desc")
	data, err := Encode(snap, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSnapshot(snap, got); err != nil {
		t.Error(err)
	}
	// Determinism: re-encoding yields identical bytes (the byte-comparison
	// contract of the resume-determinism CI job).
	data2, err := Encode(snap, sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encoding is not deterministic")
	}
	// Re-encoding the decoded snapshot also round-trips to the same bytes.
	data3, err := Encode(got, sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data3) {
		t.Error("decode→encode does not reproduce the original bytes")
	}
}

// TestParallelSnapshotBytesIdentical pins the strongest form of the
// worker-count determinism guarantee across the partitioned parallel
// barrier: the encoded snapshot of a parallel build is byte-for-byte the
// sequential one's, so cache entries and resume inputs never depend on the
// worker count. Run with -race and -cpu 1,4,8 (CI does).
func TestParallelSnapshotBytesIdentical(t *testing.T) {
	_, sum := Digest("pair-desc")
	encode := func(workers int) []byte {
		sys := pairSystem(4)
		sys.Workers = workers
		g, err := sys.Build()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := Encode(g.Snapshot(), sum)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return data
	}
	want := encode(1)
	for _, workers := range []int{2, 4, 8} {
		if !bytes.Equal(encode(workers), want) {
			t.Errorf("snapshot bytes at workers=%d differ from sequential", workers)
		}
	}
}

func TestCodecRoundTripValues(t *testing.T) {
	// One state exercising every value kind, including nested tuples and
	// negative integers (zigzag path).
	s := state.FromPairs(
		"b", value.False,
		"i", value.Int(-1234567),
		"s", value.Str("hello \"world\""),
		"t", value.Tuple(value.Int(1), value.Tuple(value.Str(""), value.True), value.Empty),
	)
	snap := &ts.Snapshot{
		Complete: true,
		States:   []*state.State{s},
		Inits:    []int{0},
		Offsets:  []int{0, 1},
		Targets:  []int32{0},
	}
	_, sum := Digest("values")
	data, err := Encode(snap, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSnapshot(snap, got); err != nil {
		t.Error(err)
	}
}

func TestCodecEmptyGraph(t *testing.T) {
	// A vacuous monitor product has zero states; its snapshot must survive
	// the trip.
	snap := &ts.Snapshot{Complete: true, Offsets: []int{0}}
	_, sum := Digest("empty")
	data, err := Encode(snap, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.States) != 0 || got.Rows() != 0 || len(got.Targets) != 0 {
		t.Errorf("got %d states, %d rows, %d targets", len(got.States), got.Rows(), len(got.Targets))
	}
}

func TestCodecCheckpointRoundTrip(t *testing.T) {
	full := buildSnapshot(t)
	// Fake a checkpoint: only the first two rows committed.
	ck := &ts.Snapshot{
		Complete: false,
		Level:    2,
		States:   full.States,
		Inits:    full.Inits,
		Offsets:  full.Offsets[:3],
		Targets:  full.Targets[:full.Offsets[2]],
	}
	_, sum := Digest("ck")
	data, err := Encode(ck, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSnapshot(ck, got); err != nil {
		t.Error(err)
	}
}

// TestCodecCorruptionCatalog feeds the decoder every corruption class the
// cache must survive: each must produce an error, never a panic and never a
// silently wrong snapshot.
func TestCodecCorruptionCatalog(t *testing.T) {
	snap := buildSnapshot(t)
	_, sum := Digest("catalog")
	data, err := Encode(snap, sum)
	if err != nil {
		t.Fatal(err)
	}
	_, otherSum := Digest("a different system")

	cases := map[string]struct {
		data []byte
		sum  [32]byte
		want string
	}{
		"empty":      {nil, sum, "truncated"},
		"tiny":       {data[:10], sum, "truncated"},
		"headerOnly": {data[:headerLen], sum, "truncated"},
		"truncated":  {data[:len(data)-15], sum, "checksum"},
		"badMagic": {func() []byte {
			d := append([]byte(nil), data...)
			d[0] = 'X'
			return d
		}(), sum, "magic"},
		"versionMismatch": {func() []byte {
			d := append([]byte(nil), data...)
			d[8], d[9] = 0xFF, 0xFF
			return d
		}(), sum, "version"},
		"wrongSystem": {data, otherSum, "different system"},
		"bitFlip": {func() []byte {
			d := append([]byte(nil), data...)
			d[headerLen+20] ^= 0x40 // payload byte: checksum must catch it
			return d
		}(), sum, "checksum"},
		"trailingGarbage": {append(append([]byte(nil), data...), 0xAB), sum, "checksum"},
	}
	for name, tc := range cases {
		got, err := Decode(tc.data, tc.sum)
		if err == nil {
			t.Errorf("%s: decode succeeded on corrupt input", name)
			continue
		}
		if got != nil {
			t.Errorf("%s: corrupt decode returned a snapshot", name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func TestCacheStoreLoad(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const desc = "system A"
	if snap, err := c.Load(desc); snap != nil || err != nil {
		t.Fatalf("empty cache: Load = (%v, %v), want (nil, nil)", snap, err)
	}
	snap := buildSnapshot(t)
	if err := c.Store(desc, snap); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(desc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSnapshot(snap, got); err != nil {
		t.Error(err)
	}
	// A different description is a different key.
	if snap2, err := c.Load("system B"); snap2 != nil || err != nil {
		t.Errorf("other desc: Load = (%v, %v), want (nil, nil)", snap2, err)
	}
}

func TestCacheStoreClearsCheckpoint(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const desc = "ck system"
	snap := buildSnapshot(t)
	ck := &ts.Snapshot{Level: 1, States: snap.States[:1], Inits: []int{0}, Offsets: []int{0}}
	if err := c.StoreCheckpoint(desc, ck); err != nil {
		t.Fatal(err)
	}
	if got, err := c.LoadCheckpoint(desc); err != nil || got == nil {
		t.Fatalf("LoadCheckpoint = (%v, %v)", got, err)
	}
	if err := c.Store(desc, snap); err != nil {
		t.Fatal(err)
	}
	if got, err := c.LoadCheckpoint(desc); got != nil || err != nil {
		t.Errorf("checkpoint should be cleared by Store, got (%v, %v)", got, err)
	}
}

// TestCorruptFilesFallBackToColdBuild is the end-to-end corruption test: a
// damaged cache entry must degrade to a cold build producing the identical
// graph, with the entry repaired afterwards.
func TestCorruptFilesFallBackToColdBuild(t *testing.T) {
	clean, err := pairSystem(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	want := signature(clean)

	corrupt := func(name string, mutate func(path string) error) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cold := pairSystem(3)
			cold.Cache = c
			if _, err := cold.Build(); err != nil {
				t.Fatal(err)
			}
			desc, ok := cold.CanonicalDesc()
			if !ok {
				t.Fatal("system not describable")
			}
			path := c.EntryPath(desc)
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("cold build left no cache entry: %v", err)
			}
			if err := mutate(path); err != nil {
				t.Fatal(err)
			}
			warm := pairSystem(3)
			warm.Cache = c
			g, err := warm.Build()
			if err != nil {
				t.Fatalf("corrupt cache must not fail the build: %v", err)
			}
			if signature(g) != want {
				t.Error("fallback graph differs from clean build")
			}
			// The rebuild repaired the entry.
			if snap, err := c.Load(desc); err != nil || snap == nil {
				t.Errorf("entry not repaired: (%v, %v)", snap, err)
			}
		})
	}

	corrupt("truncated", func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data[:len(data)/2], 0o644)
	})
	corrupt("bitFlipped", func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0x01
		return os.WriteFile(path, data, 0o644)
	})
	corrupt("versionMismatch", func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[8], data[9] = 0xFF, 0xFF
		return os.WriteFile(path, data, 0o644)
	})
	corrupt("garbage", func(path string) error {
		return os.WriteFile(path, []byte("not a snapshot at all"), 0o644)
	})
	corrupt("empty", func(path string) error {
		return os.WriteFile(path, nil, 0o644)
	})
}

// TestResumeProducesByteIdenticalSnapshot is the acceptance criterion of the
// checkpoint/resume tentpole at the unit level: a budget-exhausted run
// resumed to completion writes a .snap file byte-identical to the one a
// never-interrupted run writes.
func TestResumeProducesByteIdenticalSnapshot(t *testing.T) {
	// One-shot reference run.
	refDir := t.TempDir()
	refCache, err := Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	ref := pairSystem(4)
	ref.Cache = refCache
	gRef, err := ref.Build()
	if err != nil {
		t.Fatal(err)
	}
	desc, _ := ref.CanonicalDesc()
	refBytes, err := os.ReadFile(refCache.EntryPath(desc))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: exhaust the budget mid-exploration, checkpoint.
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := pairSystem(4)
	interrupted.Cache = c
	_, err = interrupted.BuildWith(engine.Budget{MaxStates: 8}.Meter())
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
	if _, err := os.Stat(c.CheckpointPath(desc)); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Resumed run completes the graph.
	resumed := pairSystem(4)
	resumed.Cache = c
	resumed.Resume = true
	gRes, err := resumed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if signature(gRes) != signature(gRef) {
		t.Error("resumed graph differs from one-shot graph")
	}
	gotBytes, err := os.ReadFile(c.EntryPath(desc))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Error("resumed snapshot file is not byte-identical to the one-shot file")
	}
	if _, err := os.Stat(c.CheckpointPath(desc)); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion: %v", err)
	}
}

func TestDigestStable(t *testing.T) {
	f1, s1 := Digest("abc")
	f2, s2 := Digest("abc")
	if f1 != f2 || s1 != s2 {
		t.Error("digest is not deterministic")
	}
	f3, s3 := Digest("abd")
	if f1 == f3 || s1 == s3 {
		t.Error("distinct descriptions should digest differently")
	}
	// Pin the FNV-1a test vector so the on-disk naming scheme cannot drift
	// silently (stale caches would look like misses).
	if f, _ := Digest(""); f != 14695981039346656037 {
		t.Errorf("FNV-1a offset basis drifted: %d", f)
	}
}

func TestFlagsValidate(t *testing.T) {
	cases := []struct {
		name  string
		flags Flags
		ok    bool
	}{
		{"disabled", Flags{}, true},
		{"dirOnly", Flags{Dir: "x"}, true},
		{"resumeWithDir", Flags{Dir: "x", Resume: true}, true},
		{"resumeNoDir", Flags{Resume: true}, false},
		{"resumeNoCache", Flags{Dir: "x", Resume: true, NoCache: true}, false},
		{"noCacheOnly", Flags{Dir: "x", NoCache: true}, true},
	}
	for _, tc := range cases {
		err := tc.flags.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Open honours NoCache and the empty dir.
	if c, err := (&Flags{}).Open(); c != nil || err != nil {
		t.Errorf("disabled Open = (%v, %v)", c, err)
	}
	if c, err := (&Flags{Dir: filepath.Join(t.TempDir(), "c"), NoCache: true}).Open(); c != nil || err != nil {
		t.Errorf("no-cache Open = (%v, %v)", c, err)
	}
	if c, err := (&Flags{Dir: filepath.Join(t.TempDir(), "c")}).Open(); c == nil || err != nil {
		t.Errorf("enabled Open = (%v, %v)", c, err)
	}
}
