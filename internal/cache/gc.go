package cache

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// GCResult summarizes one garbage-collection pass.
type GCResult struct {
	// Removed lists the deleted filenames, junk first, then evicted entries
	// oldest-first.
	Removed []string
	// FreedBytes is the total size of the removed files.
	FreedBytes int64
	// KeptBytes is the cache's size after the pass.
	KeptBytes int64
}

// gcEntry is one collectable file, ordered for deterministic eviction.
type gcEntry struct {
	name string
	info fs.FileInfo
	junk bool // quarantined or orphaned temp: always removed first
}

// GC shrinks the cache to at most maxBytes. Junk — quarantined entries and
// orphaned temp files — is always removed regardless of the bound; live
// entries (.snap/.ckpt) are then evicted least-recently-used first until the
// bound holds. Eviction order is deterministic: (mtime, name) ascending, so
// two GC passes over identical directory states remove identical files.
// maxBytes <= 0 removes junk only.
func (c *Cache) GC(maxBytes int64) (GCResult, error) {
	var res GCResult
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return res, fmt.Errorf("cache gc: %w", err)
	}
	var files []gcEntry
	var total int64
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		junk := strings.HasSuffix(name, ".quarantined") || strings.HasSuffix(name, ".tmp")
		live := strings.HasSuffix(name, ".snap") || strings.HasSuffix(name, ".ckpt")
		if !junk && !live {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, gcEntry{name: name, info: info, junk: junk})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		a, b := files[i], files[j]
		if a.junk != b.junk {
			return a.junk
		}
		if !a.info.ModTime().Equal(b.info.ModTime()) {
			return a.info.ModTime().Before(b.info.ModTime())
		}
		return a.name < b.name
	})
	for _, f := range files {
		if !f.junk && (maxBytes <= 0 || total <= maxBytes) {
			break
		}
		if err := c.fs.Remove(filepath.Join(c.dir, f.name)); err != nil {
			return res, fmt.Errorf("cache gc: %w", err)
		}
		total -= f.info.Size()
		res.Removed = append(res.Removed, f.name)
		res.FreedBytes += f.info.Size()
		why := "evicted (LRU, over size bound)"
		if f.junk {
			why = "removed junk"
		}
		c.note("cache-gc", fmt.Sprintf("%s %s (%d bytes)", why, f.name, f.info.Size()))
	}
	res.KeptBytes = total
	return res, nil
}

// autoGC runs after every store when the cache is size-bounded. Best-effort:
// a failing GC must not fail the store that triggered it — the entry is
// already durable, and the bound will be retried at the next store.
func (c *Cache) autoGC() {
	if c.maxBytes <= 0 {
		return
	}
	c.GC(c.maxBytes)
}
