package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"opentla/internal/iofs"
	"opentla/internal/ts"
)

// events is a notify sink capturing (kind, message) pairs.
type events struct {
	kinds []string
	msgs  []string
}

func (e *events) note(kind, msg string) {
	e.kinds = append(e.kinds, kind)
	e.msgs = append(e.msgs, msg)
}

func (e *events) count(kind string) int {
	n := 0
	for _, k := range e.kinds {
		if k == kind {
			n++
		}
	}
	return n
}

// openQuiet opens a cache over dir with deterministic time and no sleeping.
func openQuiet(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	if opts.Sleep == nil {
		opts.Sleep = func(time.Duration) {}
	}
	c, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	// Plant orphans an interrupted writer would leave, plus a live entry and
	// a non-temp file that must both survive.
	for _, name := range []string{"snap-123.tmp", "snap-old.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := openQuiet(t, dir, Options{})
	var ev events
	c.SetNotify(ev.note) // flushes the Open-time events

	if got := ev.count("cache-sweep"); got != 2 {
		t.Errorf("cache-sweep events = %d, want 2 (%v)", got, ev.msgs)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "keep.snap" {
		t.Errorf("after sweep dir holds %v, want only keep.snap", ents)
	}
}

func TestLoadQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c := openQuiet(t, dir, Options{})
	var ev events
	c.SetNotify(ev.note)

	const desc = "quarantine me"
	if err := c.Store(desc, buildSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	path := c.EntryPath(desc)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Load(desc)
	if snap != nil || err == nil {
		t.Fatalf("corrupt Load = (%v, %v), want (nil, error)", snap, err)
	}
	if got := ev.count("cache-quarantine"); got != 1 {
		t.Fatalf("cache-quarantine events = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still at its live path")
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Errorf("quarantined copy missing: %v", err)
	}
	// The very next load is a clean miss: the entry can never block a cold
	// build twice.
	if snap, err := c.Load(desc); snap != nil || err != nil {
		t.Errorf("post-quarantine Load = (%v, %v), want (nil, nil)", snap, err)
	}
}

func TestStoreRetriesTransientFaults(t *testing.T) {
	dir := t.TempDir()
	// Ops 1 and 2 fail transiently: attempt 1 dies at CreateTemp, attempt 2
	// dies at its CreateTemp too, attempt 3 runs clean. Default retries = 2.
	fs := iofs.NewFaulty(iofs.OS{}, map[int]iofs.FaultMode{
		1: iofs.FaultTransient,
		2: iofs.FaultTransient,
	})
	var slept []time.Duration
	c := openQuiet(t, dir, Options{
		FS:      fs,
		Retries: -1,
		Backoff: time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	var ev events
	c.SetNotify(ev.note)

	const desc = "retry me"
	if err := c.Store(desc, buildSnapshot(t)); err != nil {
		t.Fatalf("transient faults within the retry budget must succeed: %v", err)
	}
	if got := ev.count("cache-retry"); got != 2 {
		t.Errorf("cache-retry events = %d, want 2", got)
	}
	// Exponential backoff: 1ms then 2ms.
	if want := []time.Duration{time.Millisecond, 2 * time.Millisecond}; !reflect.DeepEqual(slept, want) {
		t.Errorf("backoff = %v, want %v", slept, want)
	}
	if snap, err := c.Load(desc); snap == nil || err != nil {
		t.Errorf("entry unreadable after retried store: (%v, %v)", snap, err)
	}
}

func TestStoreGivesUpOnPermanentError(t *testing.T) {
	dir := t.TempDir()
	fs := iofs.NewFaulty(iofs.OS{}, map[int]iofs.FaultMode{1: iofs.FaultNoSpace})
	c := openQuiet(t, dir, Options{FS: fs, Retries: -1})
	var ev events
	c.SetNotify(ev.note)

	err := c.Store("doomed", buildSnapshot(t))
	if err == nil {
		t.Fatal("ENOSPC store must fail")
	}
	if got := ev.count("cache-retry"); got != 0 {
		t.Errorf("permanent errors must not be retried, saw %d retries", got)
	}
	// Exactly one op consumed: no retry attempts followed the failure.
	if fs.Ops() != 1 {
		t.Errorf("ops = %d, want 1", fs.Ops())
	}
}

func TestStoreExhaustsRetryBudget(t *testing.T) {
	dir := t.TempDir()
	// Every CreateTemp fails transiently; with Retries=2 the third failure
	// is final.
	fs := iofs.NewFaulty(iofs.OS{}, map[int]iofs.FaultMode{
		1: iofs.FaultTransient, 2: iofs.FaultTransient, 3: iofs.FaultTransient,
	})
	c := openQuiet(t, dir, Options{FS: fs, Retries: -1})
	err := c.Store("doomed", buildSnapshot(t))
	if err == nil || !iofs.IsTransient(err) {
		t.Fatalf("exhausted retries must surface the transient error, got %v", err)
	}
	// The failed attempts must not leave temp litter behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Errorf("failed store left files: %v", ents)
	}
}

func TestShortWriteCleansUpAndRetries(t *testing.T) {
	dir := t.TempDir()
	// Op 2 is the first attempt's Write: half the data lands, then a
	// transient error. The retry (ops 3..7) must succeed and the torn temp
	// file must be gone.
	fs := iofs.NewFaulty(iofs.OS{}, map[int]iofs.FaultMode{2: iofs.FaultShortWrite})
	c := openQuiet(t, dir, Options{FS: fs, Retries: -1})
	const desc = "torn"
	if err := c.Store(desc, buildSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if snap, err := c.Load(desc); snap == nil || err != nil {
		t.Fatalf("Load after short-write retry = (%v, %v)", snap, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("dir holds %v, want only the final entry", ents)
	}
}

func TestGCEnforcesBoundLRU(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := openQuiet(t, dir, Options{Now: func() time.Time { return base }})

	snap := buildSnapshot(t)
	descs := []string{"sys A", "sys B", "sys C", "sys D"}
	var entrySize int64
	for i, d := range descs {
		if err := c.Store(d, snap); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes establish the LRU order A < B < C < D.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.EntryPath(d), mt, mt); err != nil {
			t.Fatal(err)
		}
		if entrySize == 0 {
			info, err := os.Stat(c.EntryPath(d))
			if err != nil {
				t.Fatal(err)
			}
			entrySize = info.Size()
		}
	}
	// Touch A by loading it; its mtime (Now = base+10min) makes it the most
	// recently used, so B is now the eviction candidate.
	c.now = func() time.Time { return base.Add(10 * time.Minute) }
	if snap, err := c.Load("sys A"); snap == nil || err != nil {
		t.Fatal(err)
	}

	var ev events
	c.SetNotify(ev.note)
	// Bound to three entries: exactly one eviction.
	res, err := c.GC(3 * entrySize)
	if err != nil {
		t.Fatal(err)
	}
	wantGone := filepath.Base(c.EntryPath("sys B"))
	if len(res.Removed) != 1 || res.Removed[0] != wantGone {
		t.Fatalf("Removed = %v, want [%s]", res.Removed, wantGone)
	}
	if res.KeptBytes != 3*entrySize || res.FreedBytes != entrySize {
		t.Errorf("Kept=%d Freed=%d, want %d and %d", res.KeptBytes, res.FreedBytes, 3*entrySize, entrySize)
	}
	if got := ev.count("cache-gc"); got != 1 {
		t.Errorf("cache-gc events = %d, want 1", got)
	}
	// The touched entry survived.
	if snap, err := c.Load("sys A"); snap == nil || err != nil {
		t.Errorf("LRU evicted the recently used entry: (%v, %v)", snap, err)
	}
	// Determinism: a second pass at the same bound removes nothing.
	res2, err := c.GC(3 * entrySize)
	if err != nil || len(res2.Removed) != 0 {
		t.Errorf("second GC = (%v, %v), want no-op", res2.Removed, err)
	}
}

func TestGCRemovesJunkRegardlessOfBound(t *testing.T) {
	dir := t.TempDir()
	c := openQuiet(t, dir, Options{})
	if err := c.Store("live", buildSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dead.snap.quarantined", "snap-99.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.GC(0) // unbounded: junk only
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 2 {
		t.Fatalf("Removed = %v, want the two junk files", res.Removed)
	}
	if snap, err := c.Load("live"); snap == nil || err != nil {
		t.Errorf("junk-only GC touched the live entry: (%v, %v)", snap, err)
	}
}

func TestAutoGCAfterStore(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tick := 0
	// MaxBytes sized below two entries: every store evicts down to one.
	snap := buildSnapshot(t)
	_, sum := Digest("probe")
	probe, err := Encode(snap, sum)
	if err != nil {
		t.Fatal(err)
	}
	c := openQuiet(t, dir, Options{
		MaxBytes: int64(len(probe)) + 1,
		Now: func() time.Time {
			tick++
			return base.Add(time.Duration(tick) * time.Second)
		},
	})
	if err := c.Store("first", snap); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("second", snap); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Load("second"); got == nil || err != nil {
		t.Errorf("newest entry evicted: (%v, %v)", got, err)
	}
	if got, _ := c.Load("first"); got != nil {
		t.Error("auto-GC kept the cache over its bound")
	}
}

func TestFsckCatalog(t *testing.T) {
	dir := t.TempDir()
	c := openQuiet(t, dir, Options{})
	if err := c.Store("good", buildSnapshot(t)); err != nil {
		t.Fatal(err)
	}

	// A clean cache has zero findings.
	res, err := c.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 1 || len(res.Findings) != 0 {
		t.Fatalf("clean fsck = %+v, want 1 scanned, 0 findings", res)
	}

	goodData, err := os.ReadFile(c.EntryPath("good"))
	if err != nil {
		t.Fatal(err)
	}
	// Plant every catalog entry. Filenames follow the content-addressed
	// shape where the check under test needs them to.
	plant := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	truncated := goodData[:len(goodData)/2]
	flipped := append([]byte(nil), goodData...)
	flipped[len(flipped)/2] ^= 0x01
	badVersion := append([]byte(nil), goodData...)
	badVersion[8], badVersion[9] = 0xFF, 0xFF

	plant("0000000000000001-0000000000000001.snap", truncated)
	plant("0000000000000002-0000000000000002.snap", flipped)
	plant("0000000000000003-0000000000000003.ckpt", badVersion)
	plant("0000000000000004-0000000000000004.snap", []byte("not a snapshot"))
	plant("badname.snap", goodData)      // malformed stem
	plant("snap-777.tmp", []byte("x"))   // orphan
	plant("old.snap.quarantined", nil)   // quarantined
	plant("README.txt", []byte("hello")) // unrecognized
	// goodData stored under the wrong key: embedded digest mismatch.
	plant("00000000000000aa-00000000000000aa.snap", goodData)

	res, err = c.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	wantProblems := map[string]string{
		"0000000000000001-0000000000000001.snap": "checksum",
		"0000000000000002-0000000000000002.snap": "checksum",
		"0000000000000003-0000000000000003.ckpt": "version",
		"0000000000000004-0000000000000004.snap": "truncated",
		"badname.snap":                           "content-addressed",
		"snap-777.tmp":                           "orphaned temp",
		"old.snap.quarantined":                   "quarantined",
		"README.txt":                             "unrecognized",
		"00000000000000aa-00000000000000aa.snap": "does not match the filename",
	}
	if len(res.Findings) != len(wantProblems) {
		t.Fatalf("findings = %d, want %d: %+v", len(res.Findings), len(wantProblems), res.Findings)
	}
	for _, f := range res.Findings {
		want, ok := wantProblems[f.Name]
		if !ok {
			t.Errorf("unexpected finding for %s: %s", f.Name, f.Problem)
			continue
		}
		if !strings.Contains(f.Problem, want) {
			t.Errorf("%s: problem %q does not mention %q", f.Name, f.Problem, want)
		}
	}

	// With quarantine, the corrupt live entries are moved aside; the good
	// entry survives and a re-run flags only the leftovers.
	if _, err := c.Fsck(true); err != nil {
		t.Fatal(err)
	}
	res, err = c.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 1 {
		t.Errorf("after quarantine, %d live entries remain, want only the good one", res.Scanned)
	}
	for _, f := range res.Findings {
		if strings.HasSuffix(f.Name, ".snap") || strings.HasSuffix(f.Name, ".ckpt") {
			t.Errorf("live finding survived quarantine: %+v", f)
		}
	}
	if snap, err := c.Load("good"); snap == nil || err != nil {
		t.Errorf("good entry damaged by fsck: (%v, %v)", snap, err)
	}
}

func TestStatCounts(t *testing.T) {
	dir := t.TempDir()
	c := openQuiet(t, dir, Options{})
	snap := buildSnapshot(t)
	if err := c.Store("a", snap); err != nil {
		t.Fatal(err)
	}
	ck := ts_checkpoint(snap)
	if err := c.StoreCheckpoint("b", ck); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"x.snap.quarantined": []byte("q"),
		"snap-1.tmp":         []byte("t"),
		"notes.txt":          []byte("n"),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{Snapshots: 1, Checkpoints: 1, Quarantined: 1, TempFiles: 1, Other: 1, TotalBytes: st.TotalBytes}
	if st != want {
		t.Errorf("Stat = %+v, want %+v", st, want)
	}
	if st.TotalBytes <= 3 {
		t.Errorf("TotalBytes = %d, too small", st.TotalBytes)
	}
}

// ts_checkpoint fakes a checkpoint from a complete snapshot.
func ts_checkpoint(snap *ts.Snapshot) *ts.Snapshot {
	return &ts.Snapshot{
		Level:   1,
		States:  snap.States,
		Inits:   snap.Inits,
		Offsets: snap.Offsets[:2],
		Targets: snap.Targets[:snap.Offsets[1]],
	}
}

// TestDirectoryCorruptionCatalog exercises directory-level damage: each case
// must degrade to a working cold build, never an error or a wrong graph.
func TestDirectoryCorruptionCatalog(t *testing.T) {
	build := func(t *testing.T, c *Cache) {
		t.Helper()
		sys := pairSystem(3)
		sys.Cache = c
		g, err := sys.Build()
		if err != nil {
			t.Fatalf("build with damaged cache dir failed: %v", err)
		}
		clean, err := pairSystem(3).Build()
		if err != nil {
			t.Fatal(err)
		}
		if signature(g) != signature(clean) {
			t.Error("damaged-cache build produced a different graph")
		}
	}

	t.Run("missingDirIsCreated", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "does", "not", "exist")
		c, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		build(t, c)
		if _, err := os.Stat(dir); err != nil {
			t.Errorf("cache dir not created: %v", err)
		}
	})

	t.Run("readOnlyDir", func(t *testing.T) {
		if os.Geteuid() == 0 {
			t.Skip("permission bits do not bind root")
		}
		dir := t.TempDir()
		c, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Chmod(dir, 0o555); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.Chmod(dir, 0o755) })
		// Stores fail (permanently — no retry storm) but the build succeeds.
		if err := c.Store("x", buildSnapshot(t)); err == nil {
			t.Error("store into a read-only dir must fail")
		}
		build(t, c)
	})

	t.Run("unreadableEntry", func(t *testing.T) {
		if os.Geteuid() == 0 {
			t.Skip("permission bits do not bind root")
		}
		dir := t.TempDir()
		c, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		sys := pairSystem(3)
		sys.Cache = c
		if _, err := sys.Build(); err != nil {
			t.Fatal(err)
		}
		desc, _ := sys.CanonicalDesc()
		if err := os.Chmod(c.EntryPath(desc), 0o000); err != nil {
			t.Fatal(err)
		}
		build(t, c) // warm run degrades to cold
	})
}

func TestFlagsMaxBytesValidate(t *testing.T) {
	cases := []struct {
		name  string
		flags Flags
		ok    bool
	}{
		{"boundedWithDir", Flags{Dir: "x", MaxBytes: 1024}, true},
		{"negativeBound", Flags{Dir: "x", MaxBytes: -1}, false},
		{"boundWithoutDir", Flags{MaxBytes: 1024}, false},
	}
	for _, tc := range cases {
		err := tc.flags.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestCrashAtEnvOpensCrashFS(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(CrashAtEnv, "not-a-number")
	if _, err := (&Flags{Dir: dir}).Open(); err == nil {
		t.Error("garbage crash-at value must be rejected")
	}
	t.Setenv(CrashAtEnv, "0")
	if c, err := (&Flags{Dir: dir}).Open(); c == nil || err != nil {
		t.Errorf("crash-at 0 must mean no crash: (%v, %v)", c, err)
	}
	// A positive value installs the crash FS; prove it by checking the store
	// path dies at op 1 — but via the error we can't observe os.Exit, so just
	// check Open succeeds and the FS is a *iofs.Crash.
	t.Setenv(CrashAtEnv, "3")
	c, err := (&Flags{Dir: dir}).Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.fs.(*iofs.Crash); !ok {
		t.Errorf("fs is %T, want *iofs.Crash", c.fs)
	}
}

func TestSeededFaultPlanNeverCorruptsVerdict(t *testing.T) {
	// Fuzz-lite: several seeded fault plans over warm and cold builds. The
	// invariant is the graph, not the cache: any injected fault may cost the
	// entry, never the build.
	clean, err := pairSystem(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	want := signature(clean)
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			fs := iofs.NewFaulty(iofs.OS{}, iofs.SeededPlan(seed, 64, 0.25))
			c := openQuiet(t, dir, Options{FS: fs, Retries: -1})
			c.SetNotify(func(string, string) {})
			for run := 0; run < 3; run++ {
				sys := pairSystem(3)
				sys.Cache = c
				g, err := sys.Build()
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if signature(g) != want {
					t.Fatalf("run %d: fault plan changed the graph", run)
				}
			}
		})
	}
}
