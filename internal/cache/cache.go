package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"opentla/internal/iofs"
	"opentla/internal/ts"
)

// Cache is a disk-backed ts.GraphCache rooted at one directory. Complete
// graphs live in <fnv64>-<sha8>.snap files, checkpoints in .ckpt files with
// the same stem; both are written through the iofs.FS seam with the full
// durability sequence (temp file, write, fsync, close, atomic rename), so a
// crashed writer leaves at worst a stale temp file, never a torn entry.
//
// The cache is self-healing:
//
//   - transient write errors are retried with bounded exponential backoff;
//   - entries that fail to decode are quarantined (renamed to
//     *.quarantined) so they never block the cold build that replaces them;
//   - orphaned temp files left by a killed process are swept on Open;
//   - an optional size bound evicts least-recently-used entries after every
//     store (see GC).
//
// Every self-healing action is reported through the notify seam (SetNotify),
// which the CLIs wire to the engine meter so the actions land in the flight
// recorder and the run report's cache section.
type Cache struct {
	dir string
	fs  iofs.FS

	maxBytes int64
	retries  int
	backoff  time.Duration
	sleep    func(time.Duration)
	now      func() time.Time

	mut Mutation

	notify  func(kind, msg string)
	pending []pendingEvent
}

type pendingEvent struct{ kind, msg string }

var _ ts.GraphCache = (*Cache)(nil)

// Options configures OpenWith. The zero value is the production setup.
type Options struct {
	// FS is the filesystem implementation (nil = iofs.OS).
	FS iofs.FS
	// MaxBytes, when positive, bounds the cache's total size: after every
	// store, least-recently-used entries are evicted until the bound holds.
	MaxBytes int64
	// Retries is the number of additional attempts after a transient write
	// failure (negative = default of 2).
	Retries int
	// Backoff is the first retry's delay, doubled per attempt (0 = 5ms).
	Backoff time.Duration
	// Sleep and Now are injectable for deterministic tests (nil = real).
	Sleep func(time.Duration)
	Now   func() time.Time
	// KeepOrphans skips the Open-time orphaned-temp-file sweep. Admin
	// tooling (agcachectl fsck) sets it to report orphans instead of
	// silently repairing them.
	KeepOrphans bool
}

// Open creates the cache directory if needed and returns a production cache
// over it, sweeping any orphaned temp files a killed process left behind.
func Open(dir string) (*Cache, error) {
	return OpenWith(dir, Options{Retries: -1})
}

// OpenWith is Open with explicit options.
func OpenWith(dir string, opts Options) (*Cache, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = iofs.OS{}
	}
	retries := opts.Retries
	if retries < 0 {
		retries = 2
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{
		dir:      dir,
		fs:       fsys,
		maxBytes: opts.MaxBytes,
		retries:  retries,
		backoff:  backoff,
		sleep:    sleep,
		now:      now,
	}
	if !opts.KeepOrphans {
		c.sweepOrphans()
	}
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// SetNotify installs the event sink receiving self-healing diagnostics
// ("cache-sweep", "cache-quarantine", "cache-retry", "cache-gc"), usually
// an engine.Meter's Note method. Events emitted before the sink existed
// (the Open-time orphan sweep) are flushed to it immediately.
func (c *Cache) SetNotify(fn func(kind, msg string)) {
	c.notify = fn
	if fn != nil {
		for _, e := range c.pending {
			fn(e.kind, e.msg)
		}
		c.pending = nil
	}
}

// note emits one self-healing event, buffering it if no sink is installed.
func (c *Cache) note(kind, msg string) {
	if c.notify != nil {
		c.notify(kind, msg)
		return
	}
	c.pending = append(c.pending, pendingEvent{kind, msg})
}

// EntryPath returns the path a complete-graph snapshot for desc occupies,
// whether or not it exists. CI uses it to byte-compare snapshot files.
func (c *Cache) EntryPath(desc string) string { return c.path(desc, ".snap") }

// CheckpointPath returns the path a checkpoint for desc occupies.
func (c *Cache) CheckpointPath(desc string) string { return c.path(desc, ".ckpt") }

func (c *Cache) path(desc, ext string) string {
	fnv, sum := Digest(desc)
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%x%s", fnv, sum[:8], ext))
}

// Load returns the cached complete graph for desc, (nil, nil) on a miss, or
// an error describing why an existing entry was unusable. An unusable entry
// is quarantined on the way out, so it cannot block the cold build that
// follows: the next run sees a clean miss.
func (c *Cache) Load(desc string) (*ts.Snapshot, error) {
	return c.load(desc, ".snap")
}

// LoadCheckpoint returns the saved checkpoint for desc, (nil, nil) if none.
// Unusable checkpoints are quarantined like entries.
func (c *Cache) LoadCheckpoint(desc string) (*ts.Snapshot, error) {
	return c.load(desc, ".ckpt")
}

func (c *Cache) load(desc, ext string) (*ts.Snapshot, error) {
	path := c.path(desc, ext)
	data, err := c.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	_, sum := Digest(desc)
	snap, err := decodeWith(data, sum, c.mut != MutDropChecksum)
	if err != nil {
		c.quarantine(path, err)
		return nil, fmt.Errorf("cache %s: %w", filepath.Base(path), err)
	}
	// Touch the entry so LRU eviction sees the hit. Best-effort: a
	// read-only cache still serves hits.
	t := c.now()
	c.fs.Chtimes(path, t, t)
	return snap, nil
}

// Store persists a complete graph for desc and removes any checkpoint left
// from an interrupted build of the same system (the snapshot supersedes it).
// When a size bound is configured, the store is followed by a GC pass.
func (c *Cache) Store(desc string, snap *ts.Snapshot) error {
	if err := c.store(desc, ".snap", snap); err != nil {
		return err
	}
	if err := c.fs.Remove(c.path(desc, ".ckpt")); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache: removing stale checkpoint: %w", err)
	}
	c.autoGC()
	return nil
}

// StoreCheckpoint persists a partial-exploration checkpoint for desc.
func (c *Cache) StoreCheckpoint(desc string, snap *ts.Snapshot) error {
	if err := c.store(desc, ".ckpt", snap); err != nil {
		return err
	}
	c.autoGC()
	return nil
}

func (c *Cache) store(desc, ext string, snap *ts.Snapshot) error {
	_, sum := Digest(desc)
	data, err := Encode(snap, sum)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if c.mut == MutTruncateCheckpoint && ext == ".ckpt" {
		data = data[:len(data)/2]
	}
	path := c.path(desc, ext)
	// Bounded retry with exponential backoff: transient failures (the
	// injected analogue of EINTR-class errors) get retries-many more
	// attempts, each from a fresh temp file; permanent failures (ENOSPC,
	// read-only filesystem) abort immediately — the caller degrades, the
	// build result is unaffected.
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		err = c.writeEntry(path, data)
		if err == nil {
			return nil
		}
		if attempt >= c.retries || !iofs.IsTransient(err) {
			return fmt.Errorf("cache: %w", err)
		}
		c.note("cache-retry", fmt.Sprintf("transient failure writing %s (attempt %d of %d), retrying in %v: %v",
			filepath.Base(path), attempt+1, c.retries+1, backoff, err))
		c.sleep(backoff)
		backoff *= 2
	}
}

// writeEntry performs one durable-write attempt: temp file, write, fsync,
// close, atomic rename. Any failure removes the temp file (best-effort).
func (c *Cache) writeEntry(path string, data []byte) error {
	f, err := c.fs.CreateTemp(c.dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if c.mut == MutSkipAtomicRename {
		// Fault-injection mutant: expose the final path before the data is
		// written, exactly what a naive non-atomic writer does. The POSIX fd
		// stays valid across the rename, so writes land at path.
		if err := c.fs.Rename(tmp, path); err != nil {
			f.Close()
			return err
		}
		tmp = path
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		c.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		c.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		c.fs.Remove(tmp)
		return err
	}
	if c.mut == MutSkipAtomicRename {
		return nil
	}
	if err := c.fs.Rename(tmp, path); err != nil {
		c.fs.Remove(tmp)
		return err
	}
	return nil
}

// quarantine moves an unreadable entry aside so it can never block a cold
// rebuild, falling back to deletion if even the rename fails. Best-effort:
// quarantine failure still leaves the caller degrading to a cold build.
func (c *Cache) quarantine(path string, cause error) {
	dest := path + ".quarantined"
	if err := c.fs.Rename(path, dest); err != nil {
		if rmErr := c.fs.Remove(path); rmErr != nil {
			c.note("cache-quarantine", fmt.Sprintf("unreadable entry %s could not be quarantined (%v) or removed (%v); manual cleanup needed: %v",
				filepath.Base(path), err, rmErr, cause))
			return
		}
		c.note("cache-quarantine", fmt.Sprintf("removed unreadable entry %s (quarantine rename failed: %v): %v",
			filepath.Base(path), err, cause))
		return
	}
	c.note("cache-quarantine", fmt.Sprintf("quarantined unreadable entry %s -> %s: %v",
		filepath.Base(path), filepath.Base(dest), cause))
}

// sweepOrphans removes temp files left in the cache directory by a killed
// process. Run at Open, before any writer can be mid-flight in this
// process. Best-effort: an unreadable directory degrades to no sweep.
func (c *Cache) sweepOrphans() {
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		if err := c.fs.Remove(filepath.Join(c.dir, name)); err != nil {
			continue
		}
		c.note("cache-sweep", fmt.Sprintf("removed orphaned temp file %s (left by an interrupted writer)", name))
	}
}

// Mutation is a deliberate durability fault planted in the cache for the
// fault-injection harness (see internal/faultinject's durability catalog).
// Production code never sets one; each mutant must be caught by the chaos
// harness's invariants — a surviving mutant is evidence of a hole in the
// harness.
type Mutation int

const (
	// MutNone is the unmutated cache.
	MutNone Mutation = iota
	// MutDropChecksum skips trailing-checksum verification on load, so a
	// torn or bit-flipped entry can decode as a wrong graph.
	MutDropChecksum
	// MutSkipAtomicRename writes entries in place instead of via temp file
	// + rename, so a crash mid-write leaves a torn entry at the final path.
	MutSkipAtomicRename
	// MutTruncateCheckpoint persists only half of every checkpoint, so a
	// reported checkpoint-save is not actually resumable.
	MutTruncateCheckpoint
)

// Mutate plants a durability fault. Fault-injection testing aid only.
func (c *Cache) Mutate(m Mutation) { c.mut = m }
