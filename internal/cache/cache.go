package cache

import (
	"fmt"
	"os"
	"path/filepath"

	"opentla/internal/ts"
)

// Cache is a disk-backed ts.GraphCache rooted at one directory. Complete
// graphs live in <fnv64>-<sha8>.snap files, checkpoints in .ckpt files with
// the same stem; both are written atomically (temp file + rename) so a
// crashed writer leaves at worst a stale temp file, never a torn entry.
type Cache struct {
	dir string
}

var _ ts.GraphCache = (*Cache)(nil)

// Open creates the cache directory if needed and returns a cache over it.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// EntryPath returns the path a complete-graph snapshot for desc occupies,
// whether or not it exists. CI uses it to byte-compare snapshot files.
func (c *Cache) EntryPath(desc string) string { return c.path(desc, ".snap") }

// CheckpointPath returns the path a checkpoint for desc occupies.
func (c *Cache) CheckpointPath(desc string) string { return c.path(desc, ".ckpt") }

func (c *Cache) path(desc, ext string) string {
	fnv, sum := Digest(desc)
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%x%s", fnv, sum[:8], ext))
}

// Load returns the cached complete graph for desc, (nil, nil) on a miss, or
// an error describing why an existing entry is unusable.
func (c *Cache) Load(desc string) (*ts.Snapshot, error) {
	return c.load(desc, ".snap")
}

// LoadCheckpoint returns the saved checkpoint for desc, (nil, nil) if none.
func (c *Cache) LoadCheckpoint(desc string) (*ts.Snapshot, error) {
	return c.load(desc, ".ckpt")
}

func (c *Cache) load(desc, ext string) (*ts.Snapshot, error) {
	data, err := os.ReadFile(c.path(desc, ext))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	_, sum := Digest(desc)
	snap, err := Decode(data, sum)
	if err != nil {
		return nil, fmt.Errorf("cache %s: %w", filepath.Base(c.path(desc, ext)), err)
	}
	return snap, nil
}

// Store persists a complete graph for desc and removes any checkpoint left
// from an interrupted build of the same system (the snapshot supersedes it).
func (c *Cache) Store(desc string, snap *ts.Snapshot) error {
	if err := c.store(desc, ".snap", snap); err != nil {
		return err
	}
	if err := os.Remove(c.path(desc, ".ckpt")); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache: removing stale checkpoint: %w", err)
	}
	return nil
}

// StoreCheckpoint persists a partial-exploration checkpoint for desc.
func (c *Cache) StoreCheckpoint(desc string, snap *ts.Snapshot) error {
	return c.store(desc, ".ckpt", snap)
}

func (c *Cache) store(desc, ext string, snap *ts.Snapshot) error {
	_, sum := Digest(desc)
	data, err := Encode(snap, sum)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	f, err := os.CreateTemp(c.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cache: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp, c.path(desc, ext)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}
