// Package cache is the content-addressed, disk-backed graph cache and
// checkpoint/resume layer of the checker. It persists the deterministic
// snapshots of package ts (interned state list + CSR adjacency) keyed by a
// cryptographic digest of the system's canonical description, so repeated
// runs over the same spec skip graph construction entirely, and
// budget-exhausted runs can continue from their last completed BFS level
// instead of restarting.
//
// The design follows the persistence practice of mature explicit-state
// checkers (TLC's fingerprint-set checkpointing): because PR 2's exploration
// is byte-identical at any worker count, a snapshot is a canonical encoding
// of the graph, and content addressing makes reuse sound — equal description
// implies equal graph. Every stored file carries a version header, the
// description digest (guarding against renamed or cross-wired files), and a
// trailing SHA-256 checksum; any mismatch degrades to a cold build, never to
// a wrong graph.
package cache

import "crypto/sha256"

// FNV-1a 64-bit constants, matching the state/value fingerprint convention.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest fingerprints a canonical system description two ways: a stable
// 64-bit FNV-1a hash (the short id used in filenames and diagnostics) and a
// SHA-256 sum (collision-resistant; embedded in every snapshot so a file
// can never be applied to the wrong system).
func Digest(desc string) (uint64, [sha256.Size]byte) {
	h := uint64(fnvOffset64)
	for i := 0; i < len(desc); i++ {
		h = (h ^ uint64(desc[i])) * fnvPrime64
	}
	return h, sha256.Sum256([]byte(desc))
}
