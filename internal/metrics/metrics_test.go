package metrics

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"

	"opentla/internal/engine"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_ns", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(10)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot must be nil")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v out=%q", err, buf.String())
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "ignored on re-register")
	if a != b {
		t.Fatalf("re-registration must return the same instrument")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Fatalf("got %d, want 3", a.Value())
	}
	l1 := r.LabeledCounter("c_total", "help", "shard", "1")
	l2 := r.LabeledCounter("c_total", "help", "shard", "2")
	if l1 == l2 || l1 == a {
		t.Fatalf("distinct label sets must be distinct instruments")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch must panic")
		}
	}()
	r.Gauge("c_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	pts := r.Snapshot()
	if len(pts) != 1 {
		t.Fatalf("want 1 point, got %d", len(pts))
	}
	p := pts[0]
	if p.Count != 5 || p.Sum != 1122 {
		t.Fatalf("count=%d sum=%d, want 5/1122", p.Count, p.Sum)
	}
	// Cumulative: <=10 holds {1,10}, <=100 adds {11,100}, +Inf adds {1000}.
	wantCum := []int64{2, 4, 5}
	if len(p.Buckets) != 3 {
		t.Fatalf("want 3 buckets, got %d", len(p.Buckets))
	}
	for i, b := range p.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d: count=%d want %d", i, b.Count, wantCum[i])
		}
	}
	if p.Buckets[2].UpperNS != nil {
		t.Fatalf("last bucket must be +Inf")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	mk := func() []Point {
		r := NewRegistry()
		r.Gauge("b_gauge", "").Set(7)
		r.Counter("a_total", "").Add(1)
		r.LabeledCounter("a_total", "", "shard", "2").Inc()
		r.LabeledCounter("a_total", "", "shard", "1").Inc()
		r.Histogram("c_ns", "", nil).Observe(500)
		return r.Snapshot()
	}
	a, b := mk(), mk()
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("want 5 points twice, got %d/%d", len(a), len(b))
	}
	order := []string{"a_total{}", `a_total{shard="1"}`, `a_total{shard="2"}`, "b_gauge{}", "c_ns{}"}
	for i := range a {
		key := a[i].Name + "{" + a[i].Labels + "}"
		if key != order[i] || b[i].Name != a[i].Name || b[i].Labels != a[i].Labels {
			t.Fatalf("order not deterministic at %d: %q vs want %q", i, key, order[i])
		}
	}
}

// promLine matches every non-comment line the exposition may contain:
// `name 123`, `name{label="v"} 123`, `name_bucket{le="+Inf"} 4`.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+$`)

func TestPrometheusExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("opentla_store_lock_acquisitions_total", "lock acquisitions").Add(10)
	r.LabeledCounter("opentla_store_lock_contended_total", "contended", "shard", "3").Add(2)
	r.Gauge("opentla_workers", "worker count").Set(4)
	r.Histogram("opentla_barrier_wait_nanoseconds", "barrier wait", []int64{1000}).Observe(1500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
	}
	for _, fam := range []string{
		"opentla_store_lock_acquisitions_total",
		"opentla_store_lock_contended_total",
		"opentla_workers",
		"opentla_barrier_wait_nanoseconds",
	} {
		if !typed[fam] {
			t.Fatalf("family %s missing TYPE line\n%s", fam, out)
		}
	}
	for _, want := range []string{
		`opentla_barrier_wait_nanoseconds_bucket{le="1000"} 0`,
		`opentla_barrier_wait_nanoseconds_bucket{le="+Inf"} 1`,
		"opentla_barrier_wait_nanoseconds_sum 1500",
		"opentla_barrier_wait_nanoseconds_count 1",
		`opentla_store_lock_contended_total{shard="3"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("d_ns", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
}

type fakeProvider struct {
	engine.Observer
	reg *Registry
}

func (p fakeProvider) Metrics() *Registry { return p.reg }

func TestFromMeter(t *testing.T) {
	if FromMeter(nil) != nil {
		t.Fatalf("nil meter must yield nil registry")
	}
	m := engine.NoLimit()
	if FromMeter(m) != nil {
		t.Fatalf("meter without observer must yield nil registry")
	}
	reg := NewRegistry()
	m.SetObserver(fakeProvider{reg: reg})
	if FromMeter(m) != reg {
		t.Fatalf("provider observer must yield its registry")
	}
}
