package metrics

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers per family, `_bucket{le=}` /
// `_sum` / `_count` series for histograms, families sorted by name. Safe on
// a nil receiver (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, p := range r.Snapshot() {
		if p.Name != lastFamily {
			if p.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", p.Name, p.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", p.Name, p.Type)
			lastFamily = p.Name
		}
		switch p.Type {
		case "histogram":
			for _, b := range p.Buckets {
				le := "+Inf"
				if b.UpperNS != nil {
					le = fmt.Sprintf("%d", *b.UpperNS)
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", p.Name, le, b.Count)
			}
			fmt.Fprintf(bw, "%s_sum %d\n", p.Name, p.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", p.Name, p.Count)
		default:
			if p.Labels != "" {
				fmt.Fprintf(bw, "%s{%s} %d\n", p.Name, p.Labels, p.Value)
			} else {
				fmt.Fprintf(bw, "%s %d\n", p.Name, p.Value)
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes the exposition to path (0644, truncating).
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
