// Package metrics is a small, dependency-free metric registry for the
// performance-telemetry layer: counters, gauges, and fixed-bound histograms
// with lock-free hot paths, exportable both as a `metrics` section in the
// run report (Snapshot) and as Prometheus text exposition (WritePrometheus).
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every instrument is nil-safe: methods on a nil
//     *Counter/*Gauge/*Histogram are no-ops, so instrumented code holds a
//     possibly-nil pointer and pays one branch when telemetry is off.
//  2. Enabled must be cheap. Observations are single atomic adds; there are
//     no maps, labels, or allocations on the observation path. The registry
//     lock is taken only at registration and export time.
//  3. Export must be deterministic. Families are emitted sorted by name (and
//     label set within a name) so report goldens and exposition diffs are
//     stable across runs.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"opentla/internal/engine"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	meta
	v atomic.Int64
}

// Inc adds 1. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the exposition to stay well-formed; this is
// not checked on the hot path). Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count, or 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	meta
	v atomic.Int64
}

// Set stores n. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n. Safe on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value, or 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DurationBounds are the default histogram bucket upper bounds for
// nanosecond-valued latency metrics: 1µs, 10µs, 100µs, 1ms, 10ms, 100ms,
// 1s, 10s (+Inf is implicit). Eight decades cover everything from a single
// store probe to a stalled cache load.
var DurationBounds = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// Histogram is a fixed-bound histogram. Buckets are cumulative only at
// export time; internally each bucket counts its own interval so Observe is
// a single atomic add.
type Histogram struct {
	meta
	bounds []int64        // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations, or 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations, or 0 on a nil receiver.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// meta is the name/help/labels triple shared by all instruments.
type meta struct {
	name   string
	help   string
	labels string // pre-rendered `k="v",...` or ""
}

// Registry holds the run's instruments. Get-or-create registration is
// idempotent by (name, labels); a name registered as one kind and requested
// as another panics — that is a programming error, not a runtime condition.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it if needed.
// Safe on a nil receiver (returns nil, and nil counters are no-ops).
func (r *Registry) Counter(name, help string) *Counter {
	return counterLabeled(r, name, help, "")
}

// LabeledCounter is Counter with a single pre-rendered label pair, e.g.
// LabeledCounter("opentla_store_lock_contended_total", "...", "shard", "3").
func (r *Registry) LabeledCounter(name, help, key, value string) *Counter {
	return counterLabeled(r, name, help, fmt.Sprintf("%s=%q", key, value))
}

func counterLabeled(r *Registry, name, help, labels string) *Counter {
	if r == nil {
		return nil
	}
	c, _ := register(r, name, labels, func() *Counter {
		return &Counter{meta: meta{name: name, help: help, labels: labels}}
	})
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Safe on a nil receiver.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g, _ := register(r, name, "", func() *Gauge {
		return &Gauge{meta: meta{name: name, help: help}}
	})
	return g
}

// Histogram returns the histogram registered under name with the given
// bucket bounds (nil means DurationBounds), creating it if needed. Safe on
// a nil receiver.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBounds
	}
	h, _ := register(r, name, "", func() *Histogram {
		return &Histogram{
			meta:   meta{name: name, help: help},
			bounds: bounds,
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	})
	return h
}

func register[T any](r *Registry, name, labels string, mk func() T) (T, bool) {
	key := name + "{" + labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byKey[key]; ok {
		t, ok := got.(T)
		if !ok {
			panic(fmt.Sprintf("metrics: %s re-registered as a different kind", name))
		}
		return t, false
	}
	t := mk()
	r.byKey[key] = t
	return t, true
}

// Bucket is one histogram bucket in a snapshot. Cumulative count of
// observations <= UpperNS; the +Inf bucket has UpperNS == nil.
type Bucket struct {
	UpperNS *int64 `json:"le_ns"` // nil means +Inf
	Count   int64  `json:"count"`
}

// Point is one exported metric sample — the JSON shape of the report's
// `metrics` section. Counters and gauges use Value; histograms use
// Count/Sum/Buckets.
type Point struct {
	Name    string   `json:"name"`
	Labels  string   `json:"labels,omitempty"`
	Type    string   `json:"type"` // "counter" | "gauge" | "histogram"
	Help    string   `json:"help,omitempty"`
	Value   int64    `json:"value,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric as a Point, sorted by
// (name, labels) for deterministic output. Safe on a nil receiver.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	instruments := make([]any, 0, len(r.byKey))
	for _, m := range r.byKey {
		instruments = append(instruments, m)
	}
	r.mu.Unlock()

	pts := make([]Point, 0, len(instruments))
	for _, m := range instruments {
		switch m := m.(type) {
		case *Counter:
			pts = append(pts, Point{Name: m.name, Labels: m.labels, Type: "counter", Help: m.help, Value: m.Value()})
		case *Gauge:
			pts = append(pts, Point{Name: m.name, Labels: m.labels, Type: "gauge", Help: m.help, Value: m.Value()})
		case *Histogram:
			p := Point{Name: m.name, Type: "histogram", Help: m.help, Count: m.Count(), Sum: m.Sum()}
			var cum int64
			for i, b := range m.bounds {
				cum += m.counts[i].Load()
				ub := b
				p.Buckets = append(p.Buckets, Bucket{UpperNS: &ub, Count: cum})
			}
			cum += m.counts[len(m.bounds)].Load()
			p.Buckets = append(p.Buckets, Bucket{UpperNS: nil, Count: cum})
			pts = append(pts, p)
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Name != pts[j].Name {
			return pts[i].Name < pts[j].Name
		}
		return pts[i].Labels < pts[j].Labels
	})
	return pts
}

// provider is the optional interface an engine.Observer implements to expose
// a metric registry. obs.Recorder implements it; the indirection keeps
// engine (and everything below obs) free of a metrics dependency.
type provider interface{ Metrics() *Registry }

// FromMeter returns the registry attached to m's observer, or nil. The nil
// path costs an interface check per exploration, not per observation.
func FromMeter(m *engine.Meter) *Registry {
	if m == nil {
		return nil
	}
	if p, ok := m.Observer().(provider); ok {
		return p.Metrics()
	}
	return nil
}
