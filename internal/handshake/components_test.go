package handshake

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// TestSenderReceiverComponents checks the canonical-form packaging of the
// protocol: validity, partition, and agreement between the executable
// generators and the declarative actions over all reachable-shape states.
func TestSenderReceiverComponents(t *testing.T) {
	c := Chan("c")
	vals := value.Ints(0, 1)
	snd := Sender("sender", c, vals)
	rcv := Receiver("receiver", c)
	for _, comp := range []*spec.Component{snd, rcv} {
		if err := comp.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", comp.Name, err)
		}
	}
	if got := len(snd.Outputs); got != 2 || snd.Inputs[0] != "c.ack" {
		t.Errorf("sender partition: in=%v out=%v", snd.Inputs, snd.Outputs)
	}

	domains := c.Domains(vals)
	names := c.Vars()
	value.ForEachAssignment(names, domains, func(a map[string]value.Value) bool {
		cp := make(map[string]value.Value, len(a))
		for k, v := range a {
			cp[k] = v
		}
		s := state.New(cp)
		for _, comp := range []*spec.Component{snd, rcv} {
			act := comp.Actions[0]
			brute := spec.BruteExec(comp.Owned(), domains, act.Def)(s)
			got := act.Exec(s)
			if len(got) != len(brute) {
				t.Fatalf("%s/%s at %v: exec %d updates, brute %d", comp.Name, act.Name, s, len(got), len(brute))
			}
			for _, up := range got {
				to := s.WithAll(up)
				ok, err := form.EvalBool(act.Def, state.Step{From: s, To: to}, nil)
				if err != nil || !ok {
					t.Fatalf("%s/%s update %v rejected by Def: ok=%v err=%v", comp.Name, act.Name, up, ok, err)
				}
			}
		}
		return true
	})
}
