// Package handshake implements the two-phase handshake protocol of §A.1 of
// Abadi & Lamport, "Open Systems in TLA": a channel c is the variable
// triple ⟨c.sig, c.ack, c.val⟩; c.snd denotes the pair ⟨c.sig, c.val⟩. The
// channel is ready to send when c.sig = c.ack; a value v is sent by setting
// c.val to v and complementing c.sig; receipt is acknowledged by
// complementing c.ack (Figure 2).
package handshake

import (
	"opentla/internal/form"
	"opentla/internal/state"
	"opentla/internal/value"
)

// Channel names the three wires of a handshake channel. The wires are the
// flexible variables "<name>.sig", "<name>.ack", and "<name>.val".
type Channel struct{ Name string }

// Chan returns the channel with the given name.
func Chan(name string) Channel { return Channel{Name: name} }

// Sig returns the signal wire's variable name.
func (c Channel) Sig() string { return c.Name + ".sig" }

// Ack returns the acknowledgement wire's variable name.
func (c Channel) Ack() string { return c.Name + ".ack" }

// Val returns the value wire's variable name.
func (c Channel) Val() string { return c.Name + ".val" }

// Vars returns all three wire names ⟨sig, ack, val⟩ — the paper's "c".
func (c Channel) Vars() []string { return []string{c.Sig(), c.Ack(), c.Val()} }

// SndVars returns the sender-owned wires ⟨sig, val⟩ — the paper's "c.snd".
func (c Channel) SndVars() []string { return []string{c.Sig(), c.Val()} }

// Tuple returns the tuple expression ⟨c.sig, c.ack, c.val⟩.
func (c Channel) Tuple() form.Expr { return form.VarTuple(c.Vars()...) }

// SndTuple returns the tuple expression for c.snd = ⟨c.sig, c.val⟩.
func (c Channel) SndTuple() form.Expr { return form.VarTuple(c.SndVars()...) }

// Init returns CInit(c) ≜ c.sig = c.ack = 0 (§A.2).
func (c Channel) Init() form.Expr {
	return form.And(
		form.Eq(form.Var(c.Sig()), form.IntC(0)),
		form.Eq(form.Var(c.Ack()), form.IntC(0)),
	)
}

// Ready returns the predicate c.sig = c.ack: the channel is ready for
// sending.
func (c Channel) Ready() form.Expr {
	return form.Eq(form.Var(c.Sig()), form.Var(c.Ack()))
}

// Pending returns the predicate c.sig ≠ c.ack: a value has been sent but
// not acknowledged.
func (c Channel) Pending() form.Expr {
	return form.Ne(form.Var(c.Sig()), form.Var(c.Ack()))
}

// flip returns the expression 1 − w for a bit wire w.
func flip(wire string) form.Expr { return form.Sub(form.IntC(1), form.Var(wire)) }

// Send returns the action Send(v, c) ≜ c.sig = c.ack ∧ c.snd' = ⟨v, 1−c.sig⟩
// (§A.2): the sender puts v on the value wire and complements the signal.
// The acknowledgement wire is not constrained (it belongs to the receiver).
func Send(v form.Expr, c Channel) form.Expr {
	return form.And(
		c.Ready(),
		form.Eq(form.PrimedVar(c.Val()), v),
		form.Eq(form.PrimedVar(c.Sig()), flip(c.Sig())),
	)
}

// SendAny returns ∃v ∈ dom : Send(v, c), the environment's arbitrary send
// (the paper's Put uses this with v ∈ ℕ; here the domain is finite).
func SendAny(c Channel, dom []value.Value) form.Expr {
	const bound = "$sendVal"
	return form.Exists(bound, dom, Send(form.Var(bound), c))
}

// AckAction returns Ack(c) ≜ c.sig ≠ c.ack ∧ c.ack' = 1−c.ack ∧
// c.snd' = c.snd (§A.2): the receiver acknowledges the pending value.
func AckAction(c Channel) form.Expr {
	return form.And(
		c.Pending(),
		form.Eq(form.PrimedVar(c.Ack()), flip(c.Ack())),
		form.Unchanged(c.SndVars()...),
	)
}

// Rename returns the variable-renaming map sending this channel's wires to
// another channel's wires, for use with spec.Component.Rename — the paper's
// substitution F[z/o] (§A.4).
func (c Channel) Rename(to Channel) map[string]string {
	return map[string]string{
		c.Sig(): to.Sig(),
		c.Ack(): to.Ack(),
		c.Val(): to.Val(),
	}
}

// Domains returns the wire domains for the channel: bits for sig/ack and
// the given value domain for val.
func (c Channel) Domains(vals []value.Value) map[string][]value.Value {
	return map[string][]value.Value{
		c.Sig(): value.Bits(),
		c.Ack(): value.Bits(),
		c.Val(): vals,
	}
}

// Trace reproduces the protocol run of Figure 2: starting from the initial
// state (sig = ack = 0, val = initVal), each value in vals is sent and then
// acknowledged. The resulting behavior's rows for ⟨ack, sig, val⟩ match the
// figure's table.
func (c Channel) Trace(initVal value.Value, vals []value.Value) (state.Behavior, error) {
	cur := state.New(map[string]value.Value{
		c.Sig(): value.Int(0),
		c.Ack(): value.Int(0),
		c.Val(): initVal,
	})
	behavior := state.Behavior{cur}
	for _, v := range vals {
		// Send: set val, complement sig.
		sig, _ := cur.MustGet(c.Sig()).AsInt()
		next := cur.WithAll(map[string]value.Value{
			c.Val(): v,
			c.Sig(): value.Int(1 - sig),
		})
		if ok, err := form.EvalBool(Send(form.Const(v), c), state.Step{From: cur, To: next}, nil); err != nil || !ok {
			return nil, traceErr("Send", cur, next, err)
		}
		behavior = append(behavior, next)
		cur = next
		// Ack: complement ack.
		ack, _ := cur.MustGet(c.Ack()).AsInt()
		next = cur.With(c.Ack(), value.Int(1-ack))
		if ok, err := form.EvalBool(AckAction(c), state.Step{From: cur, To: next}, nil); err != nil || !ok {
			return nil, traceErr("Ack", cur, next, err)
		}
		behavior = append(behavior, next)
		cur = next
	}
	return behavior, nil
}

func traceErr(op string, from, to *state.State, err error) error {
	if err != nil {
		return err
	}
	return &ProtocolError{Op: op, From: from.String(), To: to.String()}
}

// ProtocolError reports a step that violates the handshake protocol.
type ProtocolError struct {
	Op       string
	From, To string
}

func (e *ProtocolError) Error() string {
	return "handshake: " + e.Op + " violates the protocol: " + e.From + " -> " + e.To
}
