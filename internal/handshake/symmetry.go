package handshake

import (
	"opentla/internal/reduce"
	"opentla/internal/value"
)

// ValueSymmetry declares the channel's data values interchangeable: the
// protocol moves values without inspecting them (Send binds an arbitrary
// domain element, the receiver only acknowledges), so any permutation of
// vals maps behaviors to behaviors. The orbit covers c.val — the only
// variable that carries a data value; sig and ack are handshake bits.
func ValueSymmetry(c Channel, vals []value.Value) *reduce.Symmetry {
	return &reduce.Symmetry{Values: vals, Vars: []string{c.Val()}}
}
