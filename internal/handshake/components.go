package handshake

import (
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// Sender returns the sending side of the handshake as a canonical-form
// component: it owns c.snd = ⟨c.sig, c.val⟩, reads c.ack, and repeatedly
// sends values drawn from vals (the paper's Put, §A.2, over a finite
// domain). Weak fairness guarantees a ready channel is eventually used.
func Sender(name string, c Channel, vals []value.Value) *spec.Component {
	send := SendAny(c, vals)
	return &spec.Component{
		Name:    name,
		Inputs:  []string{c.Ack()},
		Outputs: c.SndVars(),
		Init:    c.Init(),
		Actions: []spec.Action{{
			Name: "Send",
			Def:  send,
			Exec: func(s *state.State) []map[string]value.Value {
				sig, _ := s.MustGet(c.Sig()).AsInt()
				ack, _ := s.MustGet(c.Ack()).AsInt()
				if sig != ack {
					return nil
				}
				out := make([]map[string]value.Value, len(vals))
				for i, v := range vals {
					out[i] = map[string]value.Value{
						c.Val(): v,
						c.Sig(): value.Int(1 - sig),
					}
				}
				return out
			},
		}},
		Fairness: []spec.Fairness{{Kind: form.Weak, Action: send}},
	}
}

// Receiver returns the acknowledging side: it owns c.ack, reads c.snd, and
// acknowledges every pending value (the paper's Get, §A.2).
func Receiver(name string, c Channel) *spec.Component {
	ack := AckAction(c)
	return &spec.Component{
		Name:    name,
		Inputs:  c.SndVars(),
		Outputs: []string{c.Ack()},
		Init:    form.Eq(form.Var(c.Ack()), form.IntC(0)),
		Actions: []spec.Action{{
			Name: "Ack",
			Def:  ack,
			Exec: func(s *state.State) []map[string]value.Value {
				sig, _ := s.MustGet(c.Sig()).AsInt()
				a, _ := s.MustGet(c.Ack()).AsInt()
				if sig == a {
					return nil
				}
				return []map[string]value.Value{{c.Ack(): value.Int(1 - a)}}
			},
		}},
		Fairness: []spec.Fairness{{Kind: form.Weak, Action: ack}},
	}
}
