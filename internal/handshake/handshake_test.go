package handshake

import (
	"strings"
	"testing"

	"opentla/internal/form"
	"opentla/internal/state"
	"opentla/internal/tracetab"
	"opentla/internal/value"
)

func TestChannelNames(t *testing.T) {
	c := Chan("i")
	if c.Sig() != "i.sig" || c.Ack() != "i.ack" || c.Val() != "i.val" {
		t.Fatalf("wire names: %v", c.Vars())
	}
	if got := strings.Join(c.SndVars(), ","); got != "i.sig,i.val" {
		t.Errorf("SndVars = %s", got)
	}
}

func TestReadyPending(t *testing.T) {
	c := Chan("c")
	ready := state.FromPairs("c.sig", value.Int(1), "c.ack", value.Int(1), "c.val", value.Int(0))
	pending := ready.With("c.ack", value.Int(0))
	if ok, _ := form.EvalStateBool(c.Ready(), ready); !ok {
		t.Error("Ready should hold when sig=ack")
	}
	if ok, _ := form.EvalStateBool(c.Pending(), pending); !ok {
		t.Error("Pending should hold when sig≠ack")
	}
}

func TestSendAckActions(t *testing.T) {
	c := Chan("c")
	s0 := state.FromPairs("c.sig", value.Int(0), "c.ack", value.Int(0), "c.val", value.Int(0))
	sent := s0.WithAll(map[string]value.Value{"c.sig": value.Int(1), "c.val": value.Int(7)})
	// Send 7.
	ok, err := form.EvalBool(Send(form.IntC(7), c), state.Step{From: s0, To: sent}, nil)
	if err != nil || !ok {
		t.Fatalf("Send: ok=%v err=%v", ok, err)
	}
	// Cannot send while pending.
	resend := sent.With("c.val", value.Int(3))
	ok, _ = form.EvalBool(Send(form.IntC(3), c), state.Step{From: sent, To: resend}, nil)
	if ok {
		t.Error("Send while pending should be disallowed")
	}
	// Ack.
	acked := sent.With("c.ack", value.Int(1))
	ok, err = form.EvalBool(AckAction(c), state.Step{From: sent, To: acked}, nil)
	if err != nil || !ok {
		t.Fatalf("Ack: ok=%v err=%v", ok, err)
	}
	// Cannot ack when ready.
	ok, _ = form.EvalBool(AckAction(c), state.Step{From: acked, To: acked.With("c.ack", value.Int(0))}, nil)
	if ok {
		t.Error("Ack while ready should be disallowed")
	}
	// Ack must not change c.snd.
	bad := sent.WithAll(map[string]value.Value{"c.ack": value.Int(1), "c.val": value.Int(9)})
	ok, _ = form.EvalBool(AckAction(c), state.Step{From: sent, To: bad}, nil)
	if ok {
		t.Error("Ack changing c.snd should be disallowed")
	}
}

func TestSendAny(t *testing.T) {
	c := Chan("c")
	dom := value.Ints(0, 2)
	s0 := state.FromPairs("c.sig", value.Int(0), "c.ack", value.Int(0), "c.val", value.Int(0))
	for v := int64(0); v <= 2; v++ {
		to := s0.WithAll(map[string]value.Value{"c.sig": value.Int(1), "c.val": value.Int(v)})
		ok, err := form.EvalBool(SendAny(c, dom), state.Step{From: s0, To: to}, nil)
		if err != nil || !ok {
			t.Errorf("SendAny should allow sending %d", v)
		}
	}
	// A value outside the domain is not allowed.
	to := s0.WithAll(map[string]value.Value{"c.sig": value.Int(1), "c.val": value.Int(9)})
	ok, _ := form.EvalBool(SendAny(c, dom), state.Step{From: s0, To: to}, nil)
	if ok {
		t.Error("SendAny should restrict to the domain")
	}
}

// TestHandshakeTraceFig2 is experiment E3: reproduce the protocol table of
// Figure 2 (sending 37, 4, 19 with send/ack alternation).
func TestHandshakeTraceFig2(t *testing.T) {
	c := Chan("c")
	vals := []value.Value{value.Int(37), value.Int(4), value.Int(19)}
	b, err := c.Trace(value.Int(0), vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 7 {
		t.Fatalf("trace length = %d, want 7 (init + 3×(send, ack))", len(b))
	}
	// Figure 2's rows (first six columns; the figure's last shown column is
	// the send of 19).
	wantAck := []int64{0, 0, 1, 1, 0, 0, 1}
	wantSig := []int64{0, 1, 1, 0, 0, 1, 1}
	wantVal := []int64{0, 37, 37, 4, 4, 19, 19}
	for i, s := range b {
		ack, _ := s.MustGet("c.ack").AsInt()
		sig, _ := s.MustGet("c.sig").AsInt()
		val, _ := s.MustGet("c.val").AsInt()
		if ack != wantAck[i] || sig != wantSig[i] || val != wantVal[i] {
			t.Errorf("column %d: ack/sig/val = %d/%d/%d, want %d/%d/%d",
				i, ack, sig, val, wantAck[i], wantSig[i], wantVal[i])
		}
	}
	// The rendered table lists one row per wire.
	table := tracetab.Table(b, []string{"c.ack", "c.sig", "c.val"})
	for _, row := range []string{"c.ack:", "c.sig:", "c.val:", "37", "19"} {
		if !strings.Contains(table, row) {
			t.Errorf("table missing %q:\n%s", row, table)
		}
	}
}

func TestRenameMap(t *testing.T) {
	m := Chan("o").Rename(Chan("z"))
	if m["o.sig"] != "z.sig" || m["o.ack"] != "z.ack" || m["o.val"] != "z.val" {
		t.Errorf("rename map = %v", m)
	}
}

func TestDomains(t *testing.T) {
	d := Chan("c").Domains(value.Ints(0, 4))
	if len(d["c.sig"]) != 2 || len(d["c.val"]) != 5 {
		t.Errorf("domains = %v", d)
	}
}
