package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"opentla/internal/engine"
)

// decoded mirrors the wire shape loosely for assertions.
type decoded struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		PID  int             `json:"pid"`
		TID  int64           `json:"tid"`
		TS   float64         `json:"ts"`
		Dur  *float64        `json:"dur"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func render(t *testing.T, tr *Tracer) decoded {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var d decoded
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	return d
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("worker 0")
	if tk != nil {
		t.Fatalf("nil tracer must hand out nil tracks")
	}
	tk.Slice("expand", "op", time.Now(), time.Now(), KV{"level", 1})
	tr.Phase("build", time.Now(), time.Now())
	d := render(t, tr)
	if len(d.TraceEvents) != 0 {
		t.Fatalf("nil tracer must render an empty trace, got %d events", len(d.TraceEvents))
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := New()
	base := tr.start
	w0 := tr.Track("worker 0")
	w1 := tr.Track("worker 1")
	if tr.Track("worker 0") != w0 {
		t.Fatalf("Track must be get-or-create by name")
	}
	w0.Slice("expand", "build:fig9", base.Add(10*time.Microsecond), base.Add(30*time.Microsecond),
		KV{"level", 2}, KV{"states", 17})
	w1.Slice("barrier", "barrier-wait", base.Add(30*time.Microsecond), base.Add(35*time.Microsecond))
	tr.Phase("build", base, base.Add(40*time.Microsecond))

	d := render(t, tr)
	var meta, slices int
	names := map[int64]string{}
	for _, e := range d.TraceEvents {
		if e.PID != 1 {
			t.Fatalf("all events must share pid 1, got %d", e.PID)
		}
		switch e.Ph {
		case "M":
			meta++
			if e.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				if err := json.Unmarshal(e.Args, &args); err != nil {
					t.Fatal(err)
				}
				names[e.TID] = args.Name
			}
		case "X":
			slices++
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("complete event %q must carry non-negative dur", e.Name)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	// process_name + three thread_names (worker 0, worker 1, phases).
	if meta != 4 || slices != 3 {
		t.Fatalf("got %d metadata / %d slice events, want 4/3", meta, slices)
	}
	if names[0] != "worker 0" || names[1] != "worker 1" || names[2] != "phases" {
		t.Fatalf("track naming/tid order wrong: %v", names)
	}
	for _, e := range d.TraceEvents {
		if e.Ph == "X" && e.Name == "build:fig9" {
			if e.TID != 0 || e.TS != 10 || *e.Dur != 20 || e.Cat != "expand" {
				t.Fatalf("slice fields wrong: tid=%d ts=%v dur=%v cat=%q", e.TID, e.TS, *e.Dur, e.Cat)
			}
			var args map[string]int64
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatal(err)
			}
			if args["level"] != 2 || args["states"] != 17 {
				t.Fatalf("slice args wrong: %v", args)
			}
		}
	}
}

// TestEmptyTracksSuppressed: a track that never recorded a slice must not
// reach the export — no empty Perfetto rows, no phantom workers in agprof's
// utilization denominator.
func TestEmptyTracksSuppressed(t *testing.T) {
	tr := New()
	w0 := tr.Track("worker 0")
	tr.Track("worker 1") // created but never written: an idle pool worker
	base := tr.start
	w0.Slice("explore", "expand", base, base.Add(5*time.Microsecond))

	d := render(t, tr)
	for _, e := range d.TraceEvents {
		if e.Ph != "M" || e.Name != "thread_name" {
			continue
		}
		var args struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(e.Args, &args); err != nil {
			t.Fatal(err)
		}
		if args.Name == "worker 1" {
			t.Fatalf("empty track %q must be suppressed from the export", args.Name)
		}
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := New()
	tk := tr.Track("w")
	now := time.Now()
	tk.Slice("c", "backwards", now, now.Add(-time.Second))
	d := render(t, tr)
	for _, e := range d.TraceEvents {
		if e.Ph == "X" && *e.Dur != 0 {
			t.Fatalf("negative duration must clamp to 0, got %v", *e.Dur)
		}
	}
}

func TestConcurrentDistinctTracks(t *testing.T) {
	tr := New()
	const workers = 8
	tracks := make([]*Track, workers)
	for i := range tracks {
		tracks[i] = tr.Track("worker " + string(rune('0'+i)))
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			now := time.Now()
			for j := 0; j < 200; j++ {
				tracks[i].Slice("expand", "op", now, now.Add(time.Microsecond), KV{"j", int64(j)})
			}
		}(i)
	}
	wg.Wait()
	d := render(t, tr)
	perTID := map[int64]int{}
	for _, e := range d.TraceEvents {
		if e.Ph == "X" {
			perTID[e.TID]++
		}
	}
	if len(perTID) != workers {
		t.Fatalf("want %d busy tracks, got %d", workers, len(perTID))
	}
	for tid, n := range perTID {
		if n != 200 {
			t.Fatalf("track %d lost events: %d/200", tid, n)
		}
	}
}

func TestWriteFile(t *testing.T) {
	tr := New()
	tr.Track("worker 0").Slice("expand", "op", tr.start, tr.start.Add(time.Millisecond))
	path := t.TempDir() + "/out.trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d decoded
	if err := json.Unmarshal(blob, &d); err != nil {
		t.Fatalf("file is not valid trace JSON: %v", err)
	}
	if d.DisplayTimeUnit != "ms" || len(d.TraceEvents) == 0 {
		t.Fatalf("unexpected trace file contents: %+v", d)
	}
}

type fakeProvider struct {
	engine.Observer
	tr *Tracer
}

func (p fakeProvider) Tracer() *Tracer { return p.tr }

func TestFromMeter(t *testing.T) {
	if FromMeter(nil) != nil {
		t.Fatalf("nil meter must yield nil tracer")
	}
	m := engine.NoLimit()
	if FromMeter(m) != nil {
		t.Fatalf("meter without observer must yield nil tracer")
	}
	tr := New()
	m.SetObserver(fakeProvider{tr: tr})
	if FromMeter(m) != tr {
		t.Fatalf("provider observer must yield its tracer")
	}
}
