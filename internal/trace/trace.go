// Package trace is the perf-tracing half of the telemetry layer: per-worker
// event buffers emitting Chrome Trace Event Format JSON, loadable in
// Perfetto or chrome://tracing. (Behavior/counterexample tables live in
// internal/tracetab.)
//
// The hot-path contract mirrors internal/metrics:
//
//   - Disabled is free. A nil *Tracer hands out nil *Tracks, and every
//     Track method is a nil-safe no-op, so instrumented code pays one
//     pointer check when tracing is off.
//   - Enabled is cheap and concurrency-safe by construction, not by
//     locking. Each Track is a single-writer event buffer: exactly one
//     goroutine appends to it at a time. The frontier explorer gives each
//     BFS worker its own track; reuse across sequential explorations is
//     safe because the coordinator's barrier (WaitGroup + channel close)
//     orders one level's writes before the next level's. The Tracer's lock
//     guards only track creation and export.
//   - Args are flat int64 key/values (KV), so recording a slice never
//     allocates a map and never formats a string.
//
// Timestamps are nanoseconds since the Tracer was created, exported as
// fractional microseconds (the unit Chrome's trace format specifies).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"opentla/internal/engine"
)

// KV is one integer-valued slice argument, e.g. {"level", 12}.
type KV struct {
	K string
	V int64
}

type event struct {
	name  string
	cat   string
	start int64 // ns since tracer start
	dur   int64 // ns
	args  []KV
}

// Track is a single-writer timeline: one Perfetto row. Obtain tracks from
// Tracer.Track; at most one goroutine may append to a given track at a time
// (appends in different episodes must be ordered by happens-before, which
// the frontier barrier provides).
type Track struct {
	tracer *Tracer
	tid    int64
	name   string
	events []event
}

// Slice records a complete event [start, end) with category cat. Safe on a
// nil receiver. args are copied by the variadic call itself; no further
// allocation happens per slice beyond the buffer append.
func (tk *Track) Slice(cat, name string, start, end time.Time, args ...KV) {
	if tk == nil {
		return
	}
	s := start.Sub(tk.tracer.start).Nanoseconds()
	d := end.Sub(start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	tk.events = append(tk.events, event{name: name, cat: cat, start: s, dur: d, args: args})
}

// Tracer owns the run's tracks and the export path.
type Tracer struct {
	start  time.Time
	mu     sync.Mutex
	tracks []*Track
	byName map[string]*Track
}

// New returns a tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now(), byName: make(map[string]*Track)}
}

// Track returns the track with the given display name, creating it on first
// use. Tids are assigned in creation order, so creating worker tracks first
// keeps them at the top of the Perfetto timeline. Safe on a nil receiver
// (returns nil).
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tk, ok := t.byName[name]; ok {
		return tk
	}
	tk := &Track{tracer: t, tid: int64(len(t.tracks)), name: name}
	t.tracks = append(t.tracks, tk)
	t.byName[name] = tk
	return tk
}

// Phase records a coarse phase span (build, safety, liveness, ...) on the
// shared "phases" track. Unlike Track.Slice it takes the tracer lock — phase
// boundaries are rare and driver-side, so contention is irrelevant. Safe on
// a nil receiver.
func (t *Tracer) Phase(name string, start, end time.Time) {
	if t == nil {
		return
	}
	tk := t.Track("phases")
	t.mu.Lock()
	defer t.mu.Unlock()
	s := start.Sub(t.start).Nanoseconds()
	d := end.Sub(start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	tk.events = append(tk.events, event{name: name, cat: "phase", start: s, dur: d})
}

// jsonEvent is the Chrome Trace Event wire shape. ph "M" events carry
// metadata (process/thread names); ph "X" events are complete slices with
// ts/dur in microseconds.
type jsonEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Args map[string]int64  `json:"args,omitempty"`
	Meta map[string]string `json:"-"`
}

// MarshalJSON emits metadata args as strings and slice args as integers.
func (e jsonEvent) MarshalJSON() ([]byte, error) {
	type alias jsonEvent // break recursion
	if e.Meta == nil {
		return json.Marshal(alias(e))
	}
	return json.Marshal(struct {
		alias
		Args map[string]string `json:"args"`
	}{alias: alias(e), Args: e.Meta})
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// Write renders the trace as a Chrome Trace Event JSON object
// ({"traceEvents": [...]}): one thread_name metadata event per track, then
// every slice sorted by (tid, start) for deterministic output. Tracks that
// recorded no events are suppressed entirely — a worker track exists as soon
// as the pool is sized, but a worker that never ran (every level narrower
// than the pool) would otherwise render as an empty Perfetto row and inflate
// per-worker utilization denominators downstream (agprof). Safe on a nil
// receiver (writes an empty trace). Call only after all writers have
// finished.
func (t *Tracer) Write(w io.Writer) error {
	var events []jsonEvent
	if t != nil {
		t.mu.Lock()
		tracks := make([]*Track, 0, len(t.tracks))
		for _, tk := range t.tracks {
			if len(tk.events) > 0 {
				tracks = append(tracks, tk)
			}
		}
		t.mu.Unlock()
		sort.Slice(tracks, func(i, j int) bool { return tracks[i].tid < tracks[j].tid })
		events = append(events, jsonEvent{
			Name: "process_name", Ph: "M", PID: 1,
			Meta: map[string]string{"name": "opentla"},
		})
		for _, tk := range tracks {
			events = append(events, jsonEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tk.tid,
				Meta: map[string]string{"name": tk.name},
			})
		}
		for _, tk := range tracks {
			for _, e := range tk.events {
				je := jsonEvent{
					Name: e.name, Cat: e.cat, Ph: "X", PID: 1, TID: tk.tid,
					TS: usec(e.start),
				}
				d := usec(e.dur)
				je.Dur = &d
				if len(e.args) > 0 {
					je.Args = make(map[string]int64, len(e.args))
					for _, kv := range e.args {
						je.Args[kv.K] = kv.V
					}
				}
				events = append(events, je)
			}
		}
	}
	out := struct {
		DisplayTimeUnit string      `json:"displayTimeUnit"`
		TraceEvents     []jsonEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace JSON to path (0644, truncating).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return f.Close()
}

// provider is the optional interface an engine.Observer implements to expose
// a tracer; obs.Recorder implements it. The indirection keeps engine free of
// a trace dependency.
type provider interface{ Tracer() *Tracer }

// FromMeter returns the tracer attached to m's observer, or nil. The nil
// path costs one interface check per exploration, not per slice.
func FromMeter(m *engine.Meter) *Tracer {
	if m == nil {
		return nil
	}
	if p, ok := m.Observer().(provider); ok {
		return p.Tracer()
	}
	return nil
}
