package circular

import (
	"testing"

	"opentla/internal/ag"
	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/ts"
)

// TestCircularSafetyComposition is experiment E1/E9: the Composition
// Theorem validates the circular composition of the two safety
// specifications (§1 example 1, §5 "trivial" example).
func TestCircularSafetyComposition(t *testing.T) {
	th := SafetyTheorem()
	report, err := th.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !report.Valid {
		t.Fatalf("composition theorem should validate the safety example:\n%s", report)
	}
}

// TestCircularSafetySemantics cross-checks the theorem's conclusion by
// brute-force evaluation of the full formula on every small lasso of the
// c,d universe.
func TestCircularSafetySemantics(t *testing.T) {
	th := SafetyTheorem()
	violation, err := ag.ValidOnUniverse(th.Formula(), []string{"c", "d"}, Domains(), 2, 2)
	if err != nil {
		t.Fatalf("ValidOnUniverse: %v", err)
	}
	if violation != nil {
		t.Fatalf("conclusion formula violated on:\n%s", violation)
	}
}

// TestCircularLivenessFails is experiment E2: the liveness analogue of the
// composition is invalid, witnessed by the all-stuttering behavior of
// Πc ‖ Πd (§1 example 2).
func TestCircularLivenessFails(t *testing.T) {
	ctx := form.NewCtx(Domains())
	f := LivenessCompositionFormula()
	cex := StutterCounterexample()
	ok, err := f.Eval(ctx, cex)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if ok {
		t.Fatalf("liveness composition formula unexpectedly holds on the stuttering behavior")
	}
}

// TestStutterBehaviorIsFair confirms the counterexample is a genuine fair
// behavior of the parallel composition of the two copy processes: the model
// checker must agree that ◇(c=1) fails for Πc ‖ Πd.
func TestStutterBehaviorIsFair(t *testing.T) {
	sys := &ts.System{
		Name:       "copy-processes",
		Components: []*spec.Component{CopyProcess("Pc", "c", "d"), CopyProcess("Pd", "d", "c")},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := check.Liveness(g, EventuallyOne("c"), nil)
	if err != nil {
		t.Fatalf("Liveness: %v", err)
	}
	if res.Holds {
		t.Fatalf("◇(c=1) should fail for the copy processes (they can stutter forever)")
	}
	if res.Counterexample == nil {
		t.Fatalf("expected a counterexample lasso")
	}
}

// TestCopyProcessesImplementSafety verifies the §1 argument that the
// processes themselves implement the safety guarantees: Πc ‖ Πd keeps
// c = d = 0.
func TestCopyProcessesImplementSafety(t *testing.T) {
	sys := &ts.System{
		Name:       "copy-processes",
		Components: []*spec.Component{CopyProcess("Pc", "c", "d"), CopyProcess("Pd", "d", "c")},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumStates() != 1 {
		t.Fatalf("expected exactly one reachable state (c=0, d=0), got %d", g.NumStates())
	}
	res, err := check.Component(g, BothZero(), nil)
	if err != nil {
		t.Fatalf("Component: %v", err)
	}
	if !res.Holds() {
		t.Fatalf("Πc ‖ Πd should implement M⁰c ∧ M⁰d:\n%s", res)
	}
}

// TestCopyProcessGuaranteesAG verifies that the process Πc satisfies its
// assumption/guarantee specification M⁰d ⊳ M⁰c, checked over the most
// general environment (d changes freely).
func TestCopyProcessGuaranteesAG(t *testing.T) {
	sys := &ts.System{
		Name:       "Pc-alone",
		Components: []*spec.Component{CopyProcess("Pc", "c", "d")},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := check.WhilePlus(g,
		AlwaysZero("M0d-assumption", "d", "c"),
		AlwaysZero("M0c", "c", "d"),
		nil)
	if err != nil {
		t.Fatalf("WhilePlus: %v", err)
	}
	if !res.Holds {
		t.Fatalf("Πc should satisfy M⁰d -+> M⁰c:\n%s", res)
	}
}

// TestCopyProcessViolatesUnconditional shows the guarantee alone (without
// the assumption) is NOT satisfied by Πc in a hostile environment: if d is
// free to become 1, Πc copies it and violates M⁰c. This confirms the need
// for assumption/guarantee specifications.
func TestCopyProcessViolatesUnconditional(t *testing.T) {
	sys := &ts.System{
		Name:       "Pc-alone",
		Components: []*spec.Component{CopyProcess("Pc", "c", "d")},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := check.Safety(g, AlwaysZero("M0c", "c", "d").SafetyFormula())
	if err != nil {
		t.Fatalf("Safety: %v", err)
	}
	if res.Holds {
		t.Fatalf("M⁰c should fail for Πc under a free environment")
	}
}

// TestMachineClosureOfCopyProcess checks Proposition 1's hypothesis for the
// copy process: its fairness is machine closed.
func TestMachineClosureOfCopyProcess(t *testing.T) {
	res, err := ag.MachineClosure(CopyProcess("Pc", "c", "d"), Domains(), 0)
	if err != nil {
		t.Fatalf("MachineClosure: %v", err)
	}
	if !res.Closed {
		t.Fatalf("copy process should be machine closed; stuck at %s", res.StuckState)
	}
}
