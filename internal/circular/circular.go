// Package circular implements the two introductory examples of §1 of
// Abadi & Lamport, "Open Systems in TLA" (Figure 1): two processes Πc and
// Πd connected in a circle, where Πc owns variable c and reads d, and Πd
// owns d and reads c.
//
// In the first example the specifications are the safety properties
// M⁰c ("c always equals 0") and M⁰d ("d always equals 0"); the circular
// assumption/guarantee composition (M⁰d ⊳ M⁰c) ∧ (M⁰c ⊳ M⁰d) implies
// M⁰c ∧ M⁰d. In the second, the liveness analogues M¹c ("c eventually
// equals 1") and M¹d fail to compose: the processes may stutter forever.
package circular

import (
	"opentla/internal/ag"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// Domains returns the variable domains for the example: c, d ∈ {0, 1}.
func Domains() map[string][]value.Value {
	return map[string][]value.Value{
		"c": value.Bits(),
		"d": value.Bits(),
	}
}

// AlwaysZero returns the component specification asserting that the output
// variable out starts at 0 and never changes — the specification M⁰ of §1
// (e.g. M⁰c for out = "c"). Its next-state action is FALSE, so
// □[FALSE]_out forbids any change of out.
func AlwaysZero(name, out string, inputs ...string) *spec.Component {
	return &spec.Component{
		Name:    name,
		Inputs:  inputs,
		Outputs: []string{out},
		Init:    form.Eq(form.Var(out), form.IntC(0)),
		// No actions: N = FALSE, so the box only permits stuttering on out.
	}
}

// CopyProcess returns the process Π of §1 as a component: it starts with
// out = 0 and repeatedly sets out to the current value of in. The copy
// action is weakly fair, so the process keeps running.
func CopyProcess(name, out, in string) *spec.Component {
	copyAct := form.And(
		form.Eq(form.PrimedVar(out), form.Var(in)),
		form.Unchanged(in),
	)
	exec := func(s *state.State) []map[string]value.Value {
		return []map[string]value.Value{{out: s.MustGet(in)}}
	}
	return &spec.Component{
		Name:    name,
		Inputs:  []string{in},
		Outputs: []string{out},
		Init:    form.Eq(form.Var(out), form.IntC(0)),
		Actions: []spec.Action{{Name: "Copy", Def: copyAct, Exec: exec}},
		Fairness: []spec.Fairness{
			{Kind: form.Weak, Action: copyAct},
		},
	}
}

// BothZero returns the conclusion guarantee M⁰c ∧ M⁰d as a single
// component owning both variables.
func BothZero() *spec.Component {
	return &spec.Component{
		Name:    "BothZero",
		Outputs: []string{"c", "d"},
		Init: form.And(
			form.Eq(form.Var("c"), form.IntC(0)),
			form.Eq(form.Var("d"), form.IntC(0)),
		),
	}
}

// SafetyTheorem returns the Composition Theorem instance for the first
// example (§1 and §5): (M⁰d ⊳ M⁰c) ∧ (M⁰c ⊳ M⁰d) ⇒ M⁰c ∧ M⁰d, with a TRUE
// conclusion environment.
func SafetyTheorem() *ag.Theorem {
	return &ag.Theorem{
		Name: "circular-safety (§1 example 1)",
		Pairs: []ag.Pair{
			{
				Name: "c-device",
				Env:  AlwaysZero("M0d-assumption", "d", "c"),
				Sys:  AlwaysZero("M0c", "c", "d"),
			},
			{
				Name: "d-device",
				Env:  AlwaysZero("M0c-assumption", "c", "d"),
				Sys:  AlwaysZero("M0d", "d", "c"),
			},
		},
		Concl: ag.Conclusion{
			Env: nil, // unconditional
			Sys: BothZero(),
		},
		Domains: Domains(),
	}
}

// EventuallyOne returns the liveness property M¹ of the second example:
// ◇(v = 1).
func EventuallyOne(v string) form.Formula {
	return form.EventuallyPred(form.Eq(form.Var(v), form.IntC(1)))
}

// LivenessCompositionFormula returns the invalid composition claim of the
// second example:
//
//	(M¹d ⊳ M¹c) ∧ (M¹c ⊳ M¹d) ⇒ M¹c ∧ M¹d.
func LivenessCompositionFormula() form.Formula {
	m1c := EventuallyOne("c")
	m1d := EventuallyOne("d")
	return form.ImpliesFm(
		form.AndF(form.WhilePlus(m1d, m1c), form.WhilePlus(m1c, m1d)),
		form.AndF(m1c, m1d),
	)
}

// StutterCounterexample returns the behavior that refutes the liveness
// composition: both processes forever stutter with c = d = 0 — a fair
// behavior of Πc ‖ Πd (the copy actions never change anything, so weak
// fairness is vacuous).
func StutterCounterexample() *state.Lasso {
	s := state.FromPairs("c", value.Int(0), "d", value.Int(0))
	return state.StutterLasso(nil, s)
}
