package circular

import "opentla/internal/reduce"

// Symmetry declares the two wires of the circular composition
// interchangeable: CopyProcess("Pc", "c", "d") and CopyProcess("Pd", "d",
// "c") are the same component with c and d swapped, so the transposition
// c ↔ d is an automorphism of the composed system.
func Symmetry() *reduce.Symmetry {
	return &reduce.Symmetry{Blocks: [][]string{{"c"}, {"d"}}}
}
