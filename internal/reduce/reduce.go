// Package reduce implements sound state-space reduction for the
// explicit-state exploration of package ts: ample-set partial-order
// reduction (POR) with independence derived from Disjoint variable
// ownership, and symmetry reduction under data-value and component-block
// permutations.
//
// Both reductions are validated before use, never assumed:
//
//   - Symmetry declarations are checked structurally against the system
//     (domain closure, literal/shape scan of every formula the group must
//     leave invariant, block-rename invariance of the component multiset).
//     An invalid declaration is an error at the ts.System level and a
//     graceful disable (with a flight-recorder note) at the ag.Theorem
//     level.
//   - POR eligibility is computed statically from the same Disjoint
//     analysis the vet pre-check uses (ParseDisjoint); a system whose step
//     constraints are not all Disjoint-shaped gets no POR, only a note.
//
// Reduced graphs store, for every edge, the real successor state alongside
// the canonical target id (see ts.Graph.ForEachSuccStep), so safety checks
// always evaluate genuine steps of the system — the reduction can hide
// behaviors only if the validated group/independence assumptions are
// violated, never manufacture spurious ones.
package reduce

import (
	"fmt"
	"sort"
	"strings"
)

// Options selects which reductions to apply.
type Options struct {
	// POR enables ample-set partial-order reduction.
	POR bool
	// Sym enables symmetry canonicalization.
	Sym bool
}

// Any reports whether at least one reduction is enabled.
func (o Options) Any() bool { return o.POR || o.Sym }

// String renders the options in the -reduce flag syntax.
func (o Options) String() string {
	switch {
	case o.POR && o.Sym:
		return "por,sym"
	case o.POR:
		return "por"
	case o.Sym:
		return "sym"
	default:
		return "off"
	}
}

// ParseFlag parses a -reduce flag value: "off", or a comma-separated subset
// of {"por", "sym"}.
func ParseFlag(s string) (Options, error) {
	var o Options
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return o, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "por":
			o.POR = true
		case "sym":
			o.Sym = true
		default:
			return Options{}, fmt.Errorf("invalid -reduce mode %q: want off, por, sym, or por,sym", part)
		}
	}
	return o, nil
}

// Config carries everything a reduced exploration needs. A nil *Config (or
// one with no enabled Options) means full, unreduced exploration.
type Config struct {
	Options
	// Symmetry declares the permutation group for Options.Sym. Sym with a
	// nil Symmetry is inert.
	Symmetry *Symmetry
	// Visible lists the variables observed by the properties that will be
	// checked on the graph. POR never picks an ample component that writes
	// a visible variable (condition C2), so stutter-equivalence is with
	// respect to exactly these variables.
	Visible []string
	// Sabotage, when non-nil, deliberately breaks the reduction machinery.
	// It exists solely as a fault-injection seam for the mutation tests of
	// internal/faultinject; production paths never set it.
	Sabotage *Sabotage
}

// Active reports whether the config requests any reduction work.
func (c *Config) Active() bool {
	if c == nil {
		return false
	}
	if c.Sym && c.Symmetry != nil && c.Symmetry.nontrivial() {
		return true
	}
	return c.POR
}

// SymActive reports whether symmetry canonicalization is requested and the
// declared group is nontrivial.
func (c *Config) SymActive() bool {
	return c != nil && c.Sym && c.Symmetry != nil && c.Symmetry.nontrivial()
}

// Desc renders the canonical content-addressing description of the
// reduction configuration, for inclusion in graph-cache keys: a reduced
// graph must never collide with the full graph of the same system, nor
// with a graph reduced under a different group or visible set. Inactive
// configs yield "" (no desc section, byte-identical keys to pre-reduction
// builds).
func (c *Config) Desc() string {
	if !c.Active() {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("reduce:\n")
	sb.WriteString("  modes=")
	sb.WriteString(c.Options.String())
	sb.WriteByte('\n')
	if c.POR {
		vis := append([]string(nil), c.Visible...)
		sort.Strings(vis)
		sb.WriteString("  visible=[")
		sb.WriteString(strings.Join(vis, ","))
		sb.WriteString("]\n")
	}
	if c.SymActive() {
		sb.WriteString(c.Symmetry.desc())
	}
	if c.Sabotage != nil && c.Sabotage.any() {
		// Sabotaged builds must not poison (or be served from) sound cache
		// entries.
		sb.WriteString("  sabotage=")
		sb.WriteString(c.Sabotage.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Sabotage deliberately breaks reduction soundness, one seam per known
// failure mode. The faultinject mutation catalog flips these one at a time
// and asserts that the reduced-vs-full cross-check detects every one; a
// surviving mutant means the test harness could miss a real bug of the
// same shape.
type Sabotage struct {
	// CollapseValues maps every data value of the symmetry orbit to the
	// first one, merging states that are NOT equivalent (an over-eager
	// canonicalizer losing reachable states).
	CollapseValues bool
	// SkipTupleValues skips relabeling inside tuple values, producing
	// "canonical" states outside the orbit of the input (an inconsistent
	// canonicalizer manufacturing unreachable states).
	SkipTupleValues bool
	// SkipC3 ignores the ample-set cycle proviso (C3): an ample successor
	// already committed in a previous level no longer forces full
	// expansion, so a cycle of ample steps can postpone other components
	// forever.
	SkipC3 bool
	// IgnoreVisibility drops the C2 check: components writing visible
	// variables become ample-eligible, losing interleavings the checked
	// property can distinguish.
	IgnoreVisibility bool
	// IgnoreDependence drops the static independence check: components
	// whose variables overlap other components' become ample-eligible, so
	// an ample step can disable (or race) a dependent action.
	IgnoreDependence bool
}

func (s *Sabotage) any() bool {
	return s != nil && (s.CollapseValues || s.SkipTupleValues || s.SkipC3 || s.IgnoreVisibility || s.IgnoreDependence)
}

// String names the active seams, comma-separated.
func (s *Sabotage) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.CollapseValues {
		parts = append(parts, "collapse-values")
	}
	if s.SkipTupleValues {
		parts = append(parts, "skip-tuple-values")
	}
	if s.SkipC3 {
		parts = append(parts, "skip-c3")
	}
	if s.IgnoreVisibility {
		parts = append(parts, "ignore-visibility")
	}
	if s.IgnoreDependence {
		parts = append(parts, "ignore-dependence")
	}
	return strings.Join(parts, ",")
}
