package reduce

import (
	"sort"
	"strings"

	"opentla/internal/form"
)

// ParseDisjoint decomposes a step constraint into disjuncts that each
// freeze a set of variables, returning the frozen set per disjunct. It
// recognizes exactly the shapes form.DisjointSteps emits — disjunctions of
// UNCHANGED conjunctions and tuple-stutter equalities — and fails on
// anything else.
//
// This is the single shared reading of the paper's Disjoint hypothesis
// (§2.3): the vet pre-check uses it to audit interleaving coverage
// (SV020/SV021), the POR planner uses it to prove that any joint step
// factors through a pure single-component step without violating the
// constraint, and the block-symmetry validator uses it to compare
// constraints up to the argument reordering a block rename induces.
func ParseDisjoint(e form.Expr) ([]map[string]bool, bool) {
	var sets []map[string]bool
	for _, leaf := range OrLeaves(e) {
		s, ok := UnchangedSet(leaf)
		if !ok {
			return nil, false
		}
		sets = append(sets, s)
	}
	return sets, len(sets) > 0
}

// OrLeaves flattens nested disjunctions into their leaves.
func OrLeaves(e form.Expr) []form.Expr {
	if o, ok := e.(form.OrE); ok {
		var out []form.Expr
		for _, c := range o.Xs {
			out = append(out, OrLeaves(c)...)
		}
		return out
	}
	return []form.Expr{e}
}

// UnchangedSet parses an expression asserting that a set of variables is
// unchanged — v' = v, ⟨v1,…,vn⟩' = ⟨v1,…,vn⟩, or a conjunction of such —
// and returns that set.
func UnchangedSet(e form.Expr) (map[string]bool, bool) {
	switch x := e.(type) {
	case form.AndE:
		out := make(map[string]bool)
		for _, c := range x.Xs {
			s, ok := UnchangedSet(c)
			if !ok {
				return nil, false
			}
			for v := range s {
				out[v] = true
			}
		}
		return out, true
	case form.CmpE:
		if x.Op != form.OpEq || !stutterEq(x) {
			return nil, false
		}
		f := x.A
		if p, ok := x.A.(form.PrimeE); ok {
			f = p.X
		} else if p, ok := x.B.(form.PrimeE); ok {
			f = p.X
		}
		switch sub := f.(type) {
		case form.VarE:
			return map[string]bool{sub.Name: true}, true
		case form.TupleE:
			out := make(map[string]bool, len(sub.Xs))
			for _, c := range sub.Xs {
				v, ok := c.(form.VarE)
				if !ok {
					return nil, false
				}
				out[v.Name] = true
			}
			return out, true
		}
		return nil, false
	}
	return nil, false
}

// stutterEq reports whether the equality has the shape f' = f (either
// operand order) for some state function f.
func stutterEq(x form.CmpE) bool {
	if p, ok := x.A.(form.PrimeE); ok && p.X.String() == x.B.String() {
		return true
	}
	if p, ok := x.B.(form.PrimeE); ok && p.X.String() == x.A.String() {
		return true
	}
	return false
}

// disjointNormal renders a Disjoint-shaped constraint in rename-invariant
// normal form: the sorted list of its sorted frozen-variable sets. Two
// constraints that freeze the same variable sets normalize identically even
// when a block rename reordered the DisjointSteps arguments (UNCHANGED
// ⟨g1,g2⟩ vs UNCHANGED ⟨g2,g1⟩).
func disjointNormal(sets []map[string]bool) string {
	lines := make([]string, len(sets))
	for i, s := range sets {
		names := make([]string, 0, len(s))
		for n := range s {
			names = append(names, n)
		}
		sort.Strings(names)
		lines[i] = strings.Join(names, ",")
	}
	sort.Strings(lines)
	return "disjoint{" + strings.Join(lines, "|") + "}"
}

// constraintNormal is the normal form used when comparing a constraint
// under block renames: Disjoint shapes normalize structurally, anything
// else falls back to the commutativity-normalized rendering.
func constraintNormal(e form.Expr) string {
	if sets, ok := ParseDisjoint(e); ok {
		return disjointNormal(sets)
	}
	return exprNormal(e)
}
