package reduce

import (
	"testing"

	"opentla/internal/form"
)

// TestParseDisjointRecognizedShapes pins the grammar ParseDisjoint
// accepts: exactly the disjunctions of UNCHANGED conjunctions and
// tuple-stutter equalities that form.DisjointSteps emits.
func TestParseDisjointRecognizedShapes(t *testing.T) {
	square := form.DisjointSteps([]string{"a", "b"}, []string{"c"})[0]
	sets, ok := ParseDisjoint(square)
	if !ok {
		t.Fatalf("DisjointSteps output not recognized: %v", square)
	}
	// [Unchanged(a,b) ∨ Unchanged(c)]_⟨a,b,c⟩ desugars to three disjuncts:
	// the square's stutter leaf freezes the full tuple.
	if len(sets) != 3 {
		t.Fatalf("got %d frozen sets, want 3: %v", len(sets), sets)
	}
	wantSets := []map[string]bool{
		{"a": true, "b": true},
		{"c": true},
		{"a": true, "b": true, "c": true},
	}
	for i, want := range wantSets {
		if len(sets[i]) != len(want) {
			t.Errorf("set %d = %v, want %v", i, sets[i], want)
		}
		for v := range want {
			if !sets[i][v] {
				t.Errorf("set %d = %v, missing %q", i, sets[i], v)
			}
		}
	}
}

// TestParseDisjointSingleComponent: a partition with one block is a plain
// UNCHANGED conjunction — no disjunction at all — and still parses as one
// frozen set.
func TestParseDisjointSingleComponent(t *testing.T) {
	sets, ok := ParseDisjoint(form.Unchanged("x", "y"))
	if !ok || len(sets) != 1 {
		t.Fatalf("single-block partition: ok=%v sets=%v, want one set", ok, sets)
	}
	if !sets[0]["x"] || !sets[0]["y"] || len(sets[0]) != 2 {
		t.Errorf("frozen set = %v, want {x y}", sets[0])
	}
	// The mirrored orientation v = v' must parse identically.
	mirrored := form.Eq(form.Var("x"), form.PrimedVar("x"))
	sets, ok = ParseDisjoint(mirrored)
	if !ok || len(sets) != 1 || !sets[0]["x"] {
		t.Errorf("mirrored stutter: ok=%v sets=%v, want [{x}]", ok, sets)
	}
}

// TestParseDisjointEmptyPartition: an empty disjunction has no disjunct
// that freezes anything, so it must be rejected rather than read as a
// vacuous (always-false) constraint covering nothing.
func TestParseDisjointEmptyPartition(t *testing.T) {
	if sets, ok := ParseDisjoint(form.OrE{}); ok {
		t.Errorf("empty disjunction parsed as %v, want rejection", sets)
	}
	if sets, ok := ParseDisjoint(nil); ok {
		t.Errorf("nil constraint parsed as %v, want rejection", sets)
	}
}

// TestParseDisjointOverlappingDeclarations: blocks that share a variable
// are not ParseDisjoint's concern — it reports the frozen sets verbatim,
// overlap included, and the coverage checks downstream reason about them.
func TestParseDisjointOverlappingDeclarations(t *testing.T) {
	e := form.Or(form.Unchanged("x", "shared"), form.Unchanged("y", "shared"))
	sets, ok := ParseDisjoint(e)
	if !ok || len(sets) != 2 {
		t.Fatalf("overlapping blocks: ok=%v sets=%v, want two sets", ok, sets)
	}
	if !sets[0]["shared"] || !sets[1]["shared"] {
		t.Errorf("shared variable lost: %v", sets)
	}
}

// TestParseDisjointRejectsForeignShapes: anything that is not a stutter
// equality must fail the parse — treating x' = x+1 as "freezes x" would
// make the POR planner unsound.
func TestParseDisjointRejectsForeignShapes(t *testing.T) {
	reject := []form.Expr{
		form.Eq(form.PrimedVar("x"), form.Add(form.Var("x"), form.IntC(1))),
		form.Ne(form.PrimedVar("x"), form.Var("x")),
		form.Not(form.Unchanged("x")),
		form.Or(form.Unchanged("x"), form.TrueE),
		form.Eq(form.Prime(form.TupleOf(form.Var("a"), form.IntC(0))),
			form.TupleOf(form.Var("a"), form.IntC(0))),
		form.And(form.Unchanged("x"), form.Gt(form.Var("x"), form.IntC(0))),
	}
	for _, e := range reject {
		if sets, ok := ParseDisjoint(e); ok {
			t.Errorf("foreign shape %v parsed as %v, want rejection", e, sets)
		}
	}
}
