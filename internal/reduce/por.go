package reduce

import (
	"fmt"
	"sort"
	"strings"

	"opentla/internal/form"
	"opentla/internal/spec"
)

// PORPlan is the static side of ample-set partial-order reduction: which
// components are safe candidates for single-component (ample) expansion.
// The dynamic side — nonemptiness (C0) and the cycle proviso (C3) — is
// checked per state by the exploration in ts.
//
// A component j is ample-eligible when its steps are provably independent
// of, and invisible to, everything else:
//
//   - writes(j), the union of primed variables over j's action definitions,
//     is nonempty and contained in j's owned (output + internal) variables;
//   - no other component reads or writes any variable j writes, and j reads
//     no variable any other component writes (C1: independence — a pure-j
//     step commutes with every step of every other component);
//   - j touches no free environment variable (the environment may read or
//     write anything, so free-variable contact breaks independence);
//   - j writes no visible variable (C2: ample steps are stutter steps with
//     respect to the checked properties);
//   - every Disjoint-shaped step constraint has at most one minimal frozen
//     set intersecting writes(j), so a pure-j step can always satisfy the
//     constraint by leaving the other sets frozen.
//
// Eligibility is per-component, not per-state: the conditions above are all
// static. In return the ample set at a state is simply the pure-j successor
// set of the first eligible component that has one, which keeps the
// per-state overhead near zero.
type PORPlan struct {
	eligible []bool
	names    []string
}

// Eligible reports whether component j may serve as an ample candidate.
func (p *PORPlan) Eligible(j int) bool {
	return p != nil && j < len(p.eligible) && p.eligible[j]
}

// EligibleNames lists the eligible components, for diagnostics.
func (p *PORPlan) EligibleNames() []string {
	if p == nil {
		return nil
	}
	return append([]string(nil), p.names...)
}

// NewPORPlan analyzes the system statically and returns the plan, or nil
// with a human-readable reason when POR cannot apply (non-Disjoint
// constraints, or no component qualifies). The sabotage seams weaken
// individual conditions for fault-injection tests.
func NewPORPlan(comps []*spec.Component, constraints []NamedExpr, free, visible []string, sab *Sabotage) (*PORPlan, string) {
	if len(comps) < 2 {
		return nil, "fewer than two components; interleaving reduction is vacuous"
	}
	// Every step constraint must be understood: an opaque constraint could
	// forbid exactly the pure-component steps the ample set consists of
	// while permitting joint steps, which the reduction would then lose.
	// (Pure-j candidates are additionally validated dynamically against all
	// constraints, so this gate is about completeness, not soundness — but
	// a constraint we cannot read also defeats the minimal-set analysis
	// below, so POR is disabled outright.)
	var minimalSets [][]map[string]bool
	for _, c := range constraints {
		if c.E == nil {
			continue
		}
		sets, ok := ParseDisjoint(c.E)
		if !ok {
			return nil, fmt.Sprintf("step constraint %s is not Disjoint-shaped; cannot derive independence", c.Name)
		}
		minimalSets = append(minimalSets, pruneSupersets(sets))
	}

	freeSet := toSet(free)
	visSet := toSet(visible)
	// Free variables change arbitrarily on every step — an implicit
	// environment component that ample expansion postpones (pure-component
	// steps freeze the free variables). Postponing is only sound for
	// invisible changes, so a visible free variable rules out POR entirely.
	if sab == nil || !sab.IgnoreVisibility {
		if intersects(freeSet, visSet) {
			return nil, "a free environment variable is visible to the checked properties"
		}
	}
	writes := make([]map[string]bool, len(comps))
	vars := make([]map[string]bool, len(comps))
	analyzable := make([]bool, len(comps))
	for j, c := range comps {
		w := make(map[string]bool)
		v := toSet(c.Vars())
		ok := true
		for _, a := range c.Actions {
			if a.Def == nil {
				// Exec-only action: its write set is unknown statically.
				ok = false
				break
			}
			for _, n := range form.PrimedVars(a.Def) {
				w[n] = true
			}
			for _, n := range form.AllVars(a.Def) {
				v[n] = true
			}
		}
		if c.Init != nil {
			for _, n := range form.AllVars(c.Init) {
				v[n] = true
			}
		}
		for _, f := range c.Fairness {
			if f.Action != nil {
				for _, n := range form.AllVars(f.Action) {
					v[n] = true
				}
			}
			if f.Sub != nil {
				for _, n := range form.AllVars(f.Sub) {
					v[n] = true
				}
			}
		}
		writes[j], vars[j], analyzable[j] = w, v, ok
	}

	plan := &PORPlan{eligible: make([]bool, len(comps))}
	for j, c := range comps {
		if !analyzable[j] || len(writes[j]) == 0 {
			continue
		}
		if !subsetOf(writes[j], toSet(c.Owned())) {
			continue
		}
		if intersects(vars[j], freeSet) {
			continue
		}
		if sab == nil || !sab.IgnoreVisibility {
			if intersects(writes[j], visSet) {
				continue
			}
		}
		if sab == nil || !sab.IgnoreDependence {
			dependent := false
			for k := range comps {
				if k == j {
					continue
				}
				if intersects(writes[j], vars[k]) || intersects(vars[j], writes[k]) {
					dependent = true
					break
				}
			}
			if dependent {
				continue
			}
		}
		if !constraintsAllowPure(writes[j], minimalSets) {
			continue
		}
		plan.eligible[j] = true
		plan.names = append(plan.names, c.Name)
	}
	if len(plan.names) == 0 {
		return nil, "no component satisfies the ample-eligibility conditions"
	}
	sort.Strings(plan.names)
	return plan, ""
}

// constraintsAllowPure checks that for every constraint, at most one of its
// minimal frozen sets intersects w: a pure step writing only w can then
// satisfy the constraint via a disjunct freezing the untouched sets.
func constraintsAllowPure(w map[string]bool, minimalSets [][]map[string]bool) bool {
	for _, sets := range minimalSets {
		hit := 0
		for _, s := range sets {
			if intersects(w, s) {
				hit++
			}
		}
		if hit > 1 {
			return false
		}
	}
	return true
}

// pruneSupersets drops frozen sets that strictly contain another set:
// DisjointSteps emits, per pair, the two single-owner sets plus their union
// (the both-stutter disjunct); only the minimal sets matter for the
// intersection count.
func pruneSupersets(sets []map[string]bool) []map[string]bool {
	var out []map[string]bool
	for i, s := range sets {
		minimal := true
		for k, t := range sets {
			if k == i || len(t) >= len(s) {
				continue
			}
			if subsetOf(t, s) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

func toSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func subsetOf(a, b map[string]bool) bool {
	for n := range a {
		if !b[n] {
			return false
		}
	}
	return true
}

func intersects(a, b map[string]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for n := range a {
		if b[n] {
			return true
		}
	}
	return false
}

// DescribePlan renders a one-line summary for flight-recorder notes.
func DescribePlan(p *PORPlan) string {
	if p == nil {
		return "por: inactive"
	}
	return "por: ample-eligible components [" + strings.Join(p.names, ",") + "]"
}
