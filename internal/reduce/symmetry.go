package reduce

import (
	"fmt"
	"sort"
	"strings"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// Symmetry declares a permutation group under which a system's behavior set
// is invariant, in two orthogonal parts:
//
//   - Data-value symmetry: every permutation of Values, applied pointwise
//     to the values of the scoped variables Vars (recursively inside
//     tuples/sequences). This is the classic scalarset symmetry: in the
//     queue specs the transmitted data values are interchangeable because
//     no formula compares them against literals or orders them.
//   - Component-block symmetry: the variable tuples in Blocks are
//     interchangeable as wholes (block i's k-th variable swaps roles with
//     block j's k-th variable), the index symmetry of replicated
//     components such as the arbiter's two clients.
//
// Declarations are claims, not facts: Validate checks them against the
// system before any reduced exploration, and CheckValueInvariant /
// CheckBlockInvariant check individual property formulas. The
// canonicalizer then maps each state to a canonical representative of its
// group orbit.
type Symmetry struct {
	// Values is the interchangeable data-value orbit (at least 2 values
	// for the value part to be nontrivial).
	Values []value.Value
	// Vars lists the variables whose values range over Values (directly or
	// inside tuple values).
	Vars []string
	// Blocks lists same-length variable tuples that are interchangeable
	// (at least 2 blocks for the block part to be nontrivial).
	Blocks [][]string
}

func (sym *Symmetry) valueActive() bool {
	return sym != nil && len(sym.Values) >= 2 && len(sym.Vars) >= 1
}

func (sym *Symmetry) blockActive() bool {
	return sym != nil && len(sym.Blocks) >= 2
}

func (sym *Symmetry) nontrivial() bool {
	return sym.valueActive() || sym.blockActive()
}

// desc renders the declaration canonically for cache keys.
func (sym *Symmetry) desc() string {
	var sb strings.Builder
	if sym.valueActive() {
		sb.WriteString("  sym-values=[")
		for i, v := range sym.Values {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
		sb.WriteString("] vars=[")
		sb.WriteString(strings.Join(sym.sortedVars(), ","))
		sb.WriteString("]\n")
	}
	if sym.blockActive() {
		sb.WriteString("  sym-blocks=[")
		for i, b := range sym.Blocks {
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(strings.Join(b, ","))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

func (sym *Symmetry) sortedVars() []string {
	out := append([]string(nil), sym.Vars...)
	sort.Strings(out)
	return out
}

func (sym *Symmetry) scope() map[string]bool {
	m := make(map[string]bool, len(sym.Vars))
	for _, v := range sym.Vars {
		m[v] = true
	}
	return m
}

// inValues reports whether v equals a member of the declared orbit.
func (sym *Symmetry) inValues(v value.Value) bool {
	for _, w := range sym.Values {
		if w.Equal(v) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Canonicalization

// Canonicalizer maps states to canonical representatives of their group
// orbits. Build one with Config.Canonicalizer; it is immutable and safe for
// concurrent use from exploration workers.
type Canonicalizer struct {
	sym        *Symmetry
	vars       []string // sorted scoped vars, the deterministic scan order
	blockPerms [][]int  // all permutations of block indices, identity first
	sab        *Sabotage
}

// Canonicalizer compiles the config's symmetry declaration into a reusable
// canonicalizer, or nil when symmetry reduction is inactive.
func (c *Config) Canonicalizer() *Canonicalizer {
	if !c.SymActive() {
		return nil
	}
	cz := &Canonicalizer{sym: c.Symmetry, vars: c.Symmetry.sortedVars(), sab: c.Sabotage}
	if c.Symmetry.blockActive() {
		cz.blockPerms = permutations(len(c.Symmetry.Blocks))
	}
	return cz
}

// Canon returns the canonical representative of s's orbit.
//
// For the value part, first-occurrence relabeling is already canonical:
// scanning the scoped variables in sorted order (recursing left-to-right
// through tuples), the j-th distinct orbit value encountered is renamed to
// Values[j]. Any two states in the same value orbit produce the same
// relabeled state, and relabeling is idempotent. For the block part the
// orbit is small (|Blocks|! candidates), so the canonical representative is
// the minimum, by state key, of the relabeled block renames.
func (cz *Canonicalizer) Canon(s *state.State) *state.State {
	if cz == nil {
		return s
	}
	best := cz.relabel(cz.rename(s, 0))
	if len(cz.blockPerms) > 1 {
		bestKey := best.Key()
		for pi := 1; pi < len(cz.blockPerms); pi++ {
			cand := cz.relabel(cz.rename(s, pi))
			if k := cand.Key(); k < bestKey {
				best, bestKey = cand, k
			}
		}
	}
	return best
}

// rename applies the pi-th block permutation to s's variable names (the
// identity for pi == 0 or when block symmetry is inactive). If any block
// variable is unbound in s the rename is skipped — the state is outside the
// block group's domain, so only the value part applies.
func (cz *Canonicalizer) rename(s *state.State, pi int) *state.State {
	if pi == 0 || len(cz.blockPerms) == 0 {
		return s
	}
	perm := cz.blockPerms[pi]
	updates := make(map[string]value.Value)
	for i, blk := range cz.sym.Blocks {
		for k, name := range blk {
			v, ok := s.Get(name)
			if !ok {
				return s
			}
			updates[cz.sym.Blocks[perm[i]][k]] = v
		}
	}
	return s.WithAll(updates)
}

// relabel applies the first-occurrence value relabeling to s.
func (cz *Canonicalizer) relabel(s *state.State) *state.State {
	if !cz.sym.valueActive() {
		return s
	}
	// src/dst record the relabeling discovered so far; orbit sizes are tiny
	// (a handful of data values), so linear scans beat any map.
	var src, dst []value.Value
	collapse := cz.sab != nil && cz.sab.CollapseValues
	skipTuples := cz.sab != nil && cz.sab.SkipTupleValues
	var mapVal func(v value.Value) value.Value
	mapVal = func(v value.Value) value.Value {
		if v.Kind() == value.KindTuple {
			if skipTuples {
				return v
			}
			elems := v.Elems()
			changed := false
			for i := range elems {
				nv := mapVal(elems[i])
				if !nv.Equal(elems[i]) {
					changed = true
				}
				elems[i] = nv
			}
			if !changed {
				return v
			}
			return value.Tuple(elems...)
		}
		for i := range src {
			if src[i].Equal(v) {
				return dst[i]
			}
		}
		if cz.sym.inValues(v) {
			target := cz.sym.Values[len(src)]
			if collapse {
				target = cz.sym.Values[0]
			}
			src = append(src, v)
			dst = append(dst, target)
			return target
		}
		return v
	}
	var updates map[string]value.Value
	for _, name := range cz.vars {
		v, ok := s.Get(name)
		if !ok {
			continue
		}
		nv := mapVal(v)
		if !nv.Equal(v) {
			if updates == nil {
				updates = make(map[string]value.Value, len(cz.vars))
			}
			updates[name] = nv
		}
	}
	if updates == nil {
		return s
	}
	return s.WithAll(updates)
}

// permutations returns all permutations of 0..n-1 in lexicographic order
// (identity first).
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(prefix []int, rest []int)
	rec = func(prefix []int, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(append(prefix, rest[i]), next)
		}
	}
	rec(nil, base)
	return out
}

// ---------------------------------------------------------------------------
// Validation

// Validate checks the declaration against a system: components, step and
// initial constraints (as named expressions), and variable domains. An
// error means the group is not provably a symmetry of the system and
// reduction under it would be unsound.
func (sym *Symmetry) Validate(comps []*spec.Component, steps, inits []NamedExpr, domains map[string][]value.Value) error {
	if sym == nil || !sym.nontrivial() {
		return nil
	}
	if err := sym.validateShape(); err != nil {
		return err
	}
	if sym.valueActive() {
		if err := sym.validateValueDomains(domains); err != nil {
			return err
		}
		check := func(ctx string, e form.Expr) error {
			if e == nil {
				return nil
			}
			if err := sym.CheckValueInvariant(e); err != nil {
				return fmt.Errorf("%s: %w", ctx, err)
			}
			return nil
		}
		for _, c := range comps {
			if err := check(fmt.Sprintf("component %s Init", c.Name), c.Init); err != nil {
				return err
			}
			for _, a := range c.Actions {
				if a.Def == nil {
					return fmt.Errorf("component %s action %s: no declarative definition; value symmetry cannot be validated", c.Name, a.Name)
				}
				if err := check(fmt.Sprintf("component %s action %s", c.Name, a.Name), a.Def); err != nil {
					return err
				}
			}
			for _, f := range c.Fairness {
				if err := check(fmt.Sprintf("component %s fairness action", c.Name), f.Action); err != nil {
					return err
				}
				if f.Sub != nil {
					if err := check(fmt.Sprintf("component %s fairness subscript", c.Name), f.Sub); err != nil {
						return err
					}
				}
			}
		}
		for _, sc := range steps {
			if err := check("step constraint "+sc.Name, sc.E); err != nil {
				return err
			}
		}
		for _, ic := range inits {
			if err := check("init constraint "+ic.Name, ic.E); err != nil {
				return err
			}
		}
	}
	if sym.blockActive() {
		if err := sym.validateBlocks(comps, steps, inits, domains); err != nil {
			return err
		}
	}
	return nil
}

// NamedExpr pairs an expression with a diagnostic name; ts converts its
// step constraints into this form so reduce need not depend on ts.
type NamedExpr struct {
	Name string
	E    form.Expr
}

func (sym *Symmetry) validateShape() error {
	if sym.valueActive() {
		seen := make(map[string]bool)
		for i, v := range sym.Values {
			for _, w := range sym.Values[i+1:] {
				if v.Equal(w) {
					return fmt.Errorf("symmetry: duplicate value %s in Values", v)
				}
			}
			if v.Kind() == value.KindTuple {
				return fmt.Errorf("symmetry: Values must be atoms, got tuple %s", v)
			}
			_ = seen
		}
		for i, v := range sym.Vars {
			for _, w := range sym.Vars[i+1:] {
				if v == w {
					return fmt.Errorf("symmetry: duplicate variable %q in Vars", v)
				}
			}
		}
	}
	if len(sym.Blocks) == 1 {
		return fmt.Errorf("symmetry: a single block declares no symmetry; want >= 2 blocks")
	}
	if sym.blockActive() {
		n := len(sym.Blocks[0])
		if n == 0 {
			return fmt.Errorf("symmetry: empty block")
		}
		seen := make(map[string]bool)
		for _, b := range sym.Blocks {
			if len(b) != n {
				return fmt.Errorf("symmetry: blocks have unequal lengths %d and %d", n, len(b))
			}
			for _, v := range b {
				if seen[v] {
					return fmt.Errorf("symmetry: variable %q appears in more than one block position", v)
				}
				seen[v] = true
			}
		}
		if len(sym.Blocks) > 6 {
			return fmt.Errorf("symmetry: %d blocks (max 6; canonicalization enumerates |Blocks|! renames)", len(sym.Blocks))
		}
	}
	return nil
}

// validateValueDomains checks that every scoped variable has a declared
// domain closed under permutations of Values: applying any transposition of
// two orbit values to a domain element (recursively inside tuples) yields
// another domain element. Closure under adjacent transpositions generates
// closure under the full symmetric group.
func (sym *Symmetry) validateValueDomains(domains map[string][]value.Value) error {
	for _, name := range sym.sortedVars() {
		dom := domains[name]
		if len(dom) == 0 {
			return fmt.Errorf("symmetry: scoped variable %q has no declared domain", name)
		}
		for i := 0; i+1 < len(sym.Values); i++ {
			a, b := sym.Values[i], sym.Values[i+1]
			for _, v := range dom {
				sw := swapAtoms(v, a, b)
				if !containsValue(dom, sw) {
					return fmt.Errorf("symmetry: domain of %q is not closed under value permutations: %s maps to %s, which is outside the domain", name, v, sw)
				}
			}
		}
	}
	return nil
}

// swapAtoms applies the transposition a <-> b to v, recursing into tuples.
func swapAtoms(v, a, b value.Value) value.Value {
	if v.Kind() == value.KindTuple {
		elems := v.Elems()
		for i := range elems {
			elems[i] = swapAtoms(elems[i], a, b)
		}
		return value.Tuple(elems...)
	}
	if v.Equal(a) {
		return b
	}
	if v.Equal(b) {
		return a
	}
	return v
}

func containsValue(dom []value.Value, v value.Value) bool {
	for _, w := range dom {
		if w.Equal(v) {
			return true
		}
	}
	return false
}

// CheckValueInvariant checks structurally that e's truth value is invariant
// under permutations of Values applied to the scoped variables. The rules
// are conservative (they may reject an invariant formula, never accept a
// non-invariant one):
//
//   - Ordering comparisons (<, <=, >, >=) must not touch scoped values:
//     permutations do not preserve order. Len(seq) of a scoped sequence is
//     permutation-invariant and therefore does NOT count as touching.
//   - Arithmetic must not touch scoped values (1 - x is not invariant).
//   - Equality/inequality may relate two scope-touching sides (π applies to
//     both), but not a scope-touching side with a literal from Values or
//     with a non-scoped variable: val' = 1 and val' = sig pin orbit values.
//   - A quantifier whose domain overlaps Values must range over a
//     permutation-closed domain, and its bound variable becomes scoped in
//     the body (∃ v ∈ Values: val' = v is invariant; ∃ v ∈ {0}: val' = v
//     is not).
//
// All formulas of the queue/handshake specs pass these rules; formulas that
// pin, order, or do arithmetic on data values are rejected.
func (sym *Symmetry) CheckValueInvariant(e form.Expr) error {
	if !sym.valueActive() {
		return nil
	}
	return sym.checkValue(e, sym.scope())
}

func (sym *Symmetry) checkValue(e form.Expr, scope map[string]bool) error {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case form.VarE, form.ConstE:
		return nil
	case form.PrimeE:
		return sym.checkValue(x.X, scope)
	case form.AndE:
		for _, c := range x.Xs {
			if err := sym.checkValue(c, scope); err != nil {
				return err
			}
		}
		return nil
	case form.OrE:
		for _, c := range x.Xs {
			if err := sym.checkValue(c, scope); err != nil {
				return err
			}
		}
		return nil
	case form.NotE:
		return sym.checkValue(x.X, scope)
	case form.ImpliesE:
		if err := sym.checkValue(x.A, scope); err != nil {
			return err
		}
		return sym.checkValue(x.B, scope)
	case form.EquivE:
		if err := sym.checkValue(x.A, scope); err != nil {
			return err
		}
		return sym.checkValue(x.B, scope)
	case form.CmpE:
		ta := sym.touches(x.A, scope)
		tb := sym.touches(x.B, scope)
		switch x.Op {
		case form.OpLt, form.OpLe, form.OpGt, form.OpGe:
			if ta || tb {
				return fmt.Errorf("ordering comparison %s touches symmetric values; permutations do not preserve order", e)
			}
		case form.OpEq, form.OpNe:
			if ta || tb {
				if sym.constMentionsValues(x.A) || sym.constMentionsValues(x.B) {
					return fmt.Errorf("comparison %s pins a symmetric value against a literal", e)
				}
				if ta != tb {
					// One side is in the orbit's scope, the other is not: the
					// unscoped side must be constant under the permutation,
					// i.e. mention no variables outside Len(·) subtrees.
					other := x.B
					if tb {
						other = x.A
					}
					if mentionsBareVar(other) {
						return fmt.Errorf("comparison %s relates a symmetric value to an unscoped variable", e)
					}
				}
			}
		}
		if err := sym.checkValue(x.A, scope); err != nil {
			return err
		}
		return sym.checkValue(x.B, scope)
	case form.ArithE:
		if sym.touches(x.A, scope) || sym.touches(x.B, scope) {
			return fmt.Errorf("arithmetic %s touches symmetric values; permutations do not commute with arithmetic", e)
		}
		if err := sym.checkValue(x.A, scope); err != nil {
			return err
		}
		return sym.checkValue(x.B, scope)
	case form.IfE:
		if err := sym.checkValue(x.C, scope); err != nil {
			return err
		}
		if err := sym.checkValue(x.T, scope); err != nil {
			return err
		}
		return sym.checkValue(x.E, scope)
	case form.TupleE:
		for _, c := range x.Xs {
			if err := sym.checkValue(c, scope); err != nil {
				return err
			}
		}
		return nil
	case form.SeqUnE:
		return sym.checkValue(x.X, scope)
	case form.ConcatE:
		if err := sym.checkValue(x.A, scope); err != nil {
			return err
		}
		return sym.checkValue(x.B, scope)
	case form.QuantE:
		inner := scope
		if domainOverlaps(x.Domain, sym.Values) {
			if !sym.domainClosed(x.Domain) {
				return fmt.Errorf("quantifier over %q ranges over a domain not closed under value permutations", x.Name)
			}
			inner = make(map[string]bool, len(scope)+1)
			for k := range scope {
				inner[k] = true
			}
			inner[x.Name] = true
		}
		return sym.checkValue(x.Body, inner)
	default:
		return fmt.Errorf("unsupported expression %T in value-symmetry check", e)
	}
}

// touches reports whether e's value can depend on a permutation of the
// scoped variables' data values. Len(·) is permutation-invariant, so a
// Len subtree never touches regardless of its contents.
func (sym *Symmetry) touches(e form.Expr, scope map[string]bool) bool {
	switch x := e.(type) {
	case form.VarE:
		return scope[x.Name]
	case form.ConstE:
		return false
	case form.PrimeE:
		return sym.touches(x.X, scope)
	case form.SeqUnE:
		if x.Op == form.OpLen {
			return false
		}
		return sym.touches(x.X, scope)
	case form.AndE:
		for _, c := range x.Xs {
			if sym.touches(c, scope) {
				return true
			}
		}
		return false
	case form.OrE:
		for _, c := range x.Xs {
			if sym.touches(c, scope) {
				return true
			}
		}
		return false
	case form.NotE:
		return sym.touches(x.X, scope)
	case form.ImpliesE:
		return sym.touches(x.A, scope) || sym.touches(x.B, scope)
	case form.EquivE:
		return sym.touches(x.A, scope) || sym.touches(x.B, scope)
	case form.CmpE:
		return sym.touches(x.A, scope) || sym.touches(x.B, scope)
	case form.ArithE:
		return sym.touches(x.A, scope) || sym.touches(x.B, scope)
	case form.IfE:
		return sym.touches(x.C, scope) || sym.touches(x.T, scope) || sym.touches(x.E, scope)
	case form.TupleE:
		for _, c := range x.Xs {
			if sym.touches(c, scope) {
				return true
			}
		}
		return false
	case form.ConcatE:
		return sym.touches(x.A, scope) || sym.touches(x.B, scope)
	case form.QuantE:
		inner := scope
		if domainOverlaps(x.Domain, sym.Values) {
			inner = make(map[string]bool, len(scope)+1)
			for k := range scope {
				inner[k] = true
			}
			inner[x.Name] = true
		}
		return sym.touches(x.Body, inner)
	default:
		return true // unknown node: assume dependence (conservative)
	}
}

// constMentionsValues reports whether e contains a constant whose value
// (recursively) includes an atom from the orbit.
func (sym *Symmetry) constMentionsValues(e form.Expr) bool {
	found := false
	form.Walk(e, func(n form.Expr) bool {
		if found {
			return false
		}
		if c, ok := n.(form.ConstE); ok && sym.valueHasOrbitAtom(c.V) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (sym *Symmetry) valueHasOrbitAtom(v value.Value) bool {
	if v.Kind() == value.KindTuple {
		for i := 0; i < v.Len(); i++ {
			el, _ := v.At(i)
			if sym.valueHasOrbitAtom(el) {
				return true
			}
		}
		return false
	}
	return sym.inValues(v)
}

// mentionsBareVar reports whether e contains a variable occurrence outside
// Len(·) subtrees (whose value could pin a permuted data value).
func mentionsBareVar(e form.Expr) bool {
	switch x := e.(type) {
	case form.VarE:
		return true
	case form.ConstE:
		return false
	case form.PrimeE:
		return mentionsBareVar(x.X)
	case form.SeqUnE:
		if x.Op == form.OpLen {
			return false
		}
		return mentionsBareVar(x.X)
	case form.AndE:
		for _, c := range x.Xs {
			if mentionsBareVar(c) {
				return true
			}
		}
		return false
	case form.OrE:
		for _, c := range x.Xs {
			if mentionsBareVar(c) {
				return true
			}
		}
		return false
	case form.NotE:
		return mentionsBareVar(x.X)
	case form.ImpliesE:
		return mentionsBareVar(x.A) || mentionsBareVar(x.B)
	case form.EquivE:
		return mentionsBareVar(x.A) || mentionsBareVar(x.B)
	case form.CmpE:
		return mentionsBareVar(x.A) || mentionsBareVar(x.B)
	case form.ArithE:
		return mentionsBareVar(x.A) || mentionsBareVar(x.B)
	case form.IfE:
		return mentionsBareVar(x.C) || mentionsBareVar(x.T) || mentionsBareVar(x.E)
	case form.TupleE:
		for _, c := range x.Xs {
			if mentionsBareVar(c) {
				return true
			}
		}
		return false
	case form.ConcatE:
		return mentionsBareVar(x.A) || mentionsBareVar(x.B)
	case form.QuantE:
		return mentionsBareVar(x.Body)
	default:
		return true
	}
}

func domainOverlaps(dom, values []value.Value) bool {
	for _, d := range dom {
		for _, v := range values {
			if d.Equal(v) {
				return true
			}
		}
	}
	return false
}

// domainClosed reports whether dom is closed under permutations of Values.
func (sym *Symmetry) domainClosed(dom []value.Value) bool {
	for i := 0; i+1 < len(sym.Values); i++ {
		a, b := sym.Values[i], sym.Values[i+1]
		for _, v := range dom {
			if !containsValue(dom, swapAtoms(v, a, b)) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Block validation

// blockRenames returns the variable rename map of each adjacent block
// transposition (i <-> i+1). Invariance under the adjacent transpositions
// generates invariance under all block permutations.
func (sym *Symmetry) blockRenames() []map[string]string {
	var out []map[string]string
	for i := 0; i+1 < len(sym.Blocks); i++ {
		m := make(map[string]string, 2*len(sym.Blocks[i]))
		for k := range sym.Blocks[i] {
			m[sym.Blocks[i][k]] = sym.Blocks[i+1][k]
			m[sym.Blocks[i+1][k]] = sym.Blocks[i][k]
		}
		out = append(out, m)
	}
	return out
}

// validateBlocks checks that each adjacent block transposition maps the
// system to itself: the renamed component multiset equals the original
// (comparing order-insensitive component descriptions), constraints match
// up to Disjoint normalization, init constraints match as a multiset, and
// the paired domains are equal.
func (sym *Symmetry) validateBlocks(comps []*spec.Component, steps, inits []NamedExpr, domains map[string][]value.Value) error {
	// Paired domains must agree position-wise.
	for k := range sym.Blocks[0] {
		ref := domains[sym.Blocks[0][k]]
		if len(ref) == 0 {
			return fmt.Errorf("symmetry: block variable %q has no declared domain", sym.Blocks[0][k])
		}
		for _, b := range sym.Blocks[1:] {
			dom := domains[b[k]]
			if !sameDomain(ref, dom) {
				return fmt.Errorf("symmetry: block variables %q and %q have different domains", sym.Blocks[0][k], b[k])
			}
		}
	}
	for _, ren := range sym.blockRenames() {
		if err := checkRenameInvariance(comps, steps, inits, ren); err != nil {
			return err
		}
	}
	return nil
}

func sameDomain(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]value.Value(nil), a...)
	bs := append([]value.Value(nil), b...)
	value.SortValues(as)
	value.SortValues(bs)
	for i := range as {
		if !as[i].Equal(bs[i]) {
			return false
		}
	}
	return true
}

func checkRenameInvariance(comps []*spec.Component, steps, inits []NamedExpr, ren map[string]string) error {
	orig := make([]string, 0, len(comps))
	renamed := make([]string, 0, len(comps))
	for _, c := range comps {
		orig = append(orig, componentDesc(c, nil))
		renamed = append(renamed, componentDesc(c, ren))
	}
	sort.Strings(orig)
	sort.Strings(renamed)
	for i := range orig {
		if orig[i] != renamed[i] {
			return fmt.Errorf("symmetry: block rename does not map the component set to itself (components are not replicas under %v)", ren)
		}
	}
	if err := checkExprMultiset("step constraints", steps, ren, constraintNormal); err != nil {
		return err
	}
	if err := checkExprMultiset("init constraints", inits, ren, exprNormal); err != nil {
		return err
	}
	return nil
}

func checkExprMultiset(what string, exprs []NamedExpr, ren map[string]string, normal func(form.Expr) string) error {
	orig := make([]string, 0, len(exprs))
	renamed := make([]string, 0, len(exprs))
	for _, ne := range exprs {
		if ne.E == nil {
			continue
		}
		orig = append(orig, normal(ne.E))
		renamed = append(renamed, normal(form.Rename(ne.E, ren)))
	}
	sort.Strings(orig)
	sort.Strings(renamed)
	for i := range orig {
		if orig[i] != renamed[i] {
			return fmt.Errorf("symmetry: block rename does not preserve the %s", what)
		}
	}
	return nil
}

// componentDesc renders a component for rename-invariance comparison:
// interface lists sorted, action and fairness multisets sorted (action
// ORDER affects successor enumeration order but not the step relation, and
// symmetry only needs the step relation preserved). Component names are
// excluded — replicas differ by name.
func componentDesc(c *spec.Component, ren map[string]string) string {
	rn := func(n string) string {
		if ren == nil {
			return n
		}
		if r, ok := ren[n]; ok {
			return r
		}
		return n
	}
	rnList := func(ns []string) []string {
		out := make([]string, len(ns))
		for i, n := range ns {
			out[i] = rn(n)
		}
		sort.Strings(out)
		return out
	}
	rnExpr := func(e form.Expr) string {
		if e == nil || ren == nil {
			return exprNormal(e)
		}
		return exprNormal(form.Rename(e, ren))
	}
	var sb strings.Builder
	sb.WriteString("in=" + strings.Join(rnList(c.Inputs), ",") + ";")
	sb.WriteString("out=" + strings.Join(rnList(c.Outputs), ",") + ";")
	sb.WriteString("int=" + strings.Join(rnList(c.Internals), ",") + ";")
	sb.WriteString("init=" + rnExpr(c.Init) + ";")
	acts := make([]string, 0, len(c.Actions))
	for _, a := range c.Actions {
		acts = append(acts, rnExpr(a.Def))
	}
	sort.Strings(acts)
	sb.WriteString("actions=" + strings.Join(acts, "|") + ";")
	fairs := make([]string, 0, len(c.Fairness))
	for _, f := range c.Fairness {
		fairs = append(fairs, f.Kind.String()+":"+rnExpr(f.Action)+"_"+rnExpr(f.Sub))
	}
	sort.Strings(fairs)
	sb.WriteString("fair=" + strings.Join(fairs, "|"))
	return sb.String()
}

// CheckBlockInvariant checks that a property formula is syntactically
// invariant under every adjacent block transposition, modulo commutativity
// of ∧, ∨, = and ≠ (a rename turns g1∧g2 into g2∧g1; same formula).
// Properties that distinguish replicas are rejected; checking them on a
// block-reduced graph could miss violations.
func (sym *Symmetry) CheckBlockInvariant(e form.Expr) error {
	if !sym.blockActive() || e == nil {
		return nil
	}
	for _, ren := range sym.blockRenames() {
		if exprNormal(form.Rename(e, ren)) != exprNormal(e) {
			return fmt.Errorf("formula %s is not invariant under block rename %v", e, ren)
		}
	}
	return nil
}

// exprNormal renders e with the operand lists of commutative operators
// (∧, ∨, =, ≠) sorted, so renamings that merely reorder operands compare
// equal. Unknown node kinds fall back to the plain rendering.
func exprNormal(e form.Expr) string {
	if e == nil {
		return "-"
	}
	switch x := e.(type) {
	case form.AndE:
		return "and(" + strings.Join(sortedNormals(x.Xs), ",") + ")"
	case form.OrE:
		return "or(" + strings.Join(sortedNormals(x.Xs), ",") + ")"
	case form.NotE:
		return "not(" + exprNormal(x.X) + ")"
	case form.ImpliesE:
		return "implies(" + exprNormal(x.A) + "," + exprNormal(x.B) + ")"
	case form.EquivE:
		return "equiv(" + strings.Join(sortedNormals([]form.Expr{x.A, x.B}), ",") + ")"
	case form.CmpE:
		if x.Op == form.OpEq || x.Op == form.OpNe {
			return fmt.Sprintf("cmp%d(%s)", x.Op,
				strings.Join(sortedNormals([]form.Expr{x.A, x.B}), ","))
		}
		return fmt.Sprintf("cmp%d(%s,%s)", x.Op, exprNormal(x.A), exprNormal(x.B))
	case form.PrimeE:
		return "prime(" + exprNormal(x.X) + ")"
	case form.IfE:
		return "if(" + exprNormal(x.C) + "," + exprNormal(x.T) + "," + exprNormal(x.E) + ")"
	case form.QuantE:
		return fmt.Sprintf("quant(%v,%s,%v,%s)", x.Exists, x.Name, x.Domain, exprNormal(x.Body))
	default:
		return e.String()
	}
}

func sortedNormals(xs []form.Expr) []string {
	out := make([]string, len(xs))
	for i, c := range xs {
		out[i] = exprNormal(c)
	}
	sort.Strings(out)
	return out
}
