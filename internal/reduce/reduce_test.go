package reduce

import (
	"strings"
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

func TestParseFlag(t *testing.T) {
	cases := []struct {
		in      string
		want    Options
		wantErr bool
	}{
		{"", Options{}, false},
		{"off", Options{}, false},
		{"por", Options{POR: true}, false},
		{"sym", Options{Sym: true}, false},
		{"por,sym", Options{POR: true, Sym: true}, false},
		{"sym,por", Options{POR: true, Sym: true}, false},
		{" sym , por ", Options{POR: true, Sym: true}, false},
		{"bogus", Options{}, true},
		{"por,off", Options{}, true},
	}
	for _, c := range cases {
		got, err := ParseFlag(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseFlag(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseFlag(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestOptionsString(t *testing.T) {
	for _, s := range []string{"off", "por", "sym", "por,sym"} {
		o, err := ParseFlag(s)
		if err != nil {
			t.Fatalf("ParseFlag(%q): %v", s, err)
		}
		if o.String() != s {
			t.Errorf("ParseFlag(%q).String() = %q", s, o.String())
		}
	}
}

func TestParseDisjointOnDisjointSteps(t *testing.T) {
	exprs := form.DisjointSteps([]string{"a1", "a2"}, []string{"b"})
	if len(exprs) != 1 {
		t.Fatalf("DisjointSteps emitted %d exprs, want 1", len(exprs))
	}
	sets, ok := ParseDisjoint(exprs[0])
	if !ok {
		t.Fatalf("ParseDisjoint failed on DisjointSteps output %s", exprs[0])
	}
	if got := disjointNormal(sets); got != "disjoint{a1,a2|a1,a2,b|b}" {
		t.Errorf("disjointNormal = %q", got)
	}
}

func TestParseDisjointRejectsOpaque(t *testing.T) {
	if _, ok := ParseDisjoint(form.Lt(form.Var("a"), form.IntC(5))); ok {
		t.Error("ParseDisjoint accepted a non-Disjoint constraint")
	}
}

func TestConstraintNormalRenameInvariant(t *testing.T) {
	// UNCHANGED⟨g1,g2⟩ vs UNCHANGED⟨g2,g1⟩ must normalize identically:
	// a block rename reorders DisjointSteps arguments.
	a := form.DisjointSteps([]string{"r1", "g1"}, []string{"r2", "g2"})[0]
	b := form.DisjointSteps([]string{"r2", "g2"}, []string{"r1", "g1"})[0]
	if constraintNormal(a) != constraintNormal(b) {
		t.Errorf("constraintNormal differs:\n%s\n%s", constraintNormal(a), constraintNormal(b))
	}
}

func valSym() *Symmetry {
	return &Symmetry{
		Values: value.Ints(0, 2),
		Vars:   []string{"i.val", "o.val", "q"},
	}
}

func TestCheckValueInvariantAccepts(t *testing.T) {
	sym := valSym()
	accept := []form.Expr{
		// Len launders symmetric content: queue-capacity guards are fine.
		form.Lt(form.Len(form.Var("q")), form.IntC(1)),
		// Scoped-to-scoped equality: π applies to both sides.
		form.Eq(form.Prime(form.Var("o.val")), form.Var("i.val")),
		// Scoped against a constant outside the orbit.
		form.Eq(form.Var("q"), form.Const(value.Empty)),
		// Arithmetic on unscoped variables only.
		form.Eq(form.Prime(form.Var("sig")), form.Sub(form.IntC(1), form.Var("sig"))),
		// Quantifier over the (closed) orbit; bound var becomes scoped.
		form.Exists("$v", value.Ints(0, 2),
			form.Eq(form.Prime(form.Var("i.val")), form.Var("$v"))),
		// Append of a scoped value onto a scoped sequence.
		form.Eq(form.Prime(form.Var("q")), form.AppendTo(form.Var("q"), form.Var("i.val"))),
	}
	for _, e := range accept {
		if err := sym.CheckValueInvariant(e); err != nil {
			t.Errorf("rejected invariant formula %s: %v", e, err)
		}
	}
}

func TestCheckValueInvariantRejects(t *testing.T) {
	sym := valSym()
	reject := []struct {
		name string
		e    form.Expr
	}{
		{"orders scoped value", form.Lt(form.Var("i.val"), form.IntC(1))},
		{"pins orbit literal", form.Eq(form.Prime(form.Var("o.val")), form.IntC(0))},
		{"orbit literal inside tuple const",
			form.Eq(form.Var("q"), form.Const(value.Tuple(value.Int(0))))},
		{"relates scoped to unscoped variable",
			form.Eq(form.Prime(form.Var("o.val")), form.Var("sig"))},
		{"arithmetic on scoped value",
			form.Eq(form.Prime(form.Var("o.val")), form.Add(form.Var("i.val"), form.IntC(1)))},
		{"quantifier over non-closed overlap",
			form.Exists("$v", []value.Value{value.Int(0)},
				form.Eq(form.Prime(form.Var("i.val")), form.Var("$v")))},
		{"quantifier body orders bound value",
			form.Exists("$v", value.Ints(0, 2),
				form.And(form.Eq(form.Prime(form.Var("i.val")), form.Var("$v")),
					form.Lt(form.Var("$v"), form.IntC(1))))},
	}
	for _, c := range reject {
		if err := sym.CheckValueInvariant(c.e); err == nil {
			t.Errorf("%s: accepted non-invariant formula %s", c.name, c.e)
		}
	}
}

func TestValidateValueDomains(t *testing.T) {
	sym := &Symmetry{Values: value.Ints(0, 1), Vars: []string{"x"}}
	if err := sym.validateValueDomains(map[string][]value.Value{"x": value.Ints(0, 2)}); err != nil {
		t.Errorf("closed domain rejected: %v", err)
	}
	if err := sym.validateValueDomains(map[string][]value.Value{"x": {value.Int(0)}}); err == nil {
		t.Error("non-closed domain {0} accepted under Values {0,1}")
	}
	// Tuple domains must be closed element-wise.
	seqs := value.Seqs(value.Ints(0, 1), 1)
	if err := sym.validateValueDomains(map[string][]value.Value{"x": seqs}); err != nil {
		t.Errorf("closed sequence domain rejected: %v", err)
	}
	open := []value.Value{value.Empty, value.Tuple(value.Int(0))}
	if err := sym.validateValueDomains(map[string][]value.Value{"x": open}); err == nil {
		t.Error("sequence domain missing ⟨1⟩ accepted under Values {0,1}")
	}
}

func canonFor(sym *Symmetry, sab *Sabotage) *Canonicalizer {
	cfg := &Config{Options: Options{Sym: true}, Symmetry: sym, Sabotage: sab}
	cz := cfg.Canonicalizer()
	if cz == nil {
		panic("nil canonicalizer for nontrivial symmetry")
	}
	return cz
}

func TestCanonValueOrbit(t *testing.T) {
	sym := valSym()
	cz := canonFor(sym, nil)
	// Two states in the same orbit: 0↔2 swap, inside a tuple and at an atom.
	s1 := state.New(map[string]value.Value{
		"i.val": value.Int(0),
		"o.val": value.Int(2),
		"q":     value.Tuple(value.Int(2), value.Int(0)),
		"sig":   value.Int(1),
	})
	s2 := state.New(map[string]value.Value{
		"i.val": value.Int(2),
		"o.val": value.Int(0),
		"q":     value.Tuple(value.Int(0), value.Int(2)),
		"sig":   value.Int(1),
	})
	c1, c2 := cz.Canon(s1), cz.Canon(s2)
	if !c1.Equal(c2) {
		t.Errorf("orbit mates canonicalize differently:\n%s\n%s", c1, c2)
	}
	if !cz.Canon(c1).Equal(c1) {
		t.Error("canon is not idempotent")
	}
	// Unscoped variables are untouched.
	if v, _ := c1.Get("sig"); !v.Equal(value.Int(1)) {
		t.Errorf("canon rewrote unscoped variable sig to %s", v)
	}
	// First-occurrence relabeling: scan order is sorted vars, so i.val
	// (first distinct value) becomes Values[0].
	if v, _ := c1.Get("i.val"); !v.Equal(value.Int(0)) {
		t.Errorf("canon i.val = %s, want 0", v)
	}
}

func TestCanonValueOrbitExhaustive(t *testing.T) {
	// Every permutation of {0,1,2} applied to a fixed state must reach the
	// same canonical representative.
	sym := valSym()
	cz := canonFor(sym, nil)
	var want *state.State
	for _, p := range permutations(3) {
		perm := func(v value.Value) value.Value {
			i, _ := v.AsInt()
			return value.Int(int64(p[i]))
		}
		s := state.New(map[string]value.Value{
			"i.val": perm(value.Int(1)),
			"o.val": perm(value.Int(1)),
			"q": value.Tuple(perm(value.Int(2)), perm(value.Int(0)),
				perm(value.Int(1))),
		})
		c := cz.Canon(s)
		if want == nil {
			want = c
		} else if !c.Equal(want) {
			t.Fatalf("permutation %v canonicalizes to %s, want %s", p, c, want)
		}
	}
}

func TestCanonBlocks(t *testing.T) {
	sym := &Symmetry{Blocks: [][]string{{"r1", "g1"}, {"r2", "g2"}}}
	cz := canonFor(sym, nil)
	s1 := state.New(map[string]value.Value{
		"r1": value.True, "g1": value.False,
		"r2": value.False, "g2": value.True,
	})
	s2 := state.New(map[string]value.Value{
		"r1": value.False, "g1": value.True,
		"r2": value.True, "g2": value.False,
	})
	c1, c2 := cz.Canon(s1), cz.Canon(s2)
	if !c1.Equal(c2) {
		t.Errorf("block-swapped states canonicalize differently:\n%s\n%s", c1, c2)
	}
	if !cz.Canon(c1).Equal(c1) {
		t.Error("block canon is not idempotent")
	}
	// A block-symmetric state is its own representative.
	sEq := state.New(map[string]value.Value{
		"r1": value.True, "g1": value.False,
		"r2": value.True, "g2": value.False,
	})
	if !cz.Canon(sEq).Equal(sEq) {
		t.Error("symmetric state not fixed by canon")
	}
}

func TestCanonSabotageSeams(t *testing.T) {
	sym := valSym()
	sound := canonFor(sym, nil)
	s1 := state.New(map[string]value.Value{
		"i.val": value.Int(0), "o.val": value.Int(1), "q": value.Empty,
	})
	s2 := state.New(map[string]value.Value{
		"i.val": value.Int(0), "o.val": value.Int(0), "q": value.Empty,
	})
	// Sound canon keeps distinct orbits distinct…
	if sound.Canon(s1).Equal(sound.Canon(s2)) {
		t.Fatal("sound canon merged states from different orbits")
	}
	// …collapse-values merges them (the unsoundness the mutant test needs).
	collapsed := canonFor(sym, &Sabotage{CollapseValues: true})
	if !collapsed.Canon(s1).Equal(collapsed.Canon(s2)) {
		t.Error("collapse-values sabotage failed to merge distinct orbits")
	}
	// skip-tuple-values leaves tuple contents unrelabeled, splitting an
	// orbit the sound canon merges.
	t1 := state.New(map[string]value.Value{
		"i.val": value.Int(1), "o.val": value.Int(1), "q": value.Tuple(value.Int(1)),
	})
	t2 := state.New(map[string]value.Value{
		"i.val": value.Int(2), "o.val": value.Int(2), "q": value.Tuple(value.Int(2)),
	})
	if !sound.Canon(t1).Equal(sound.Canon(t2)) {
		t.Fatal("sound canon failed to merge orbit mates")
	}
	skewed := canonFor(sym, &Sabotage{SkipTupleValues: true})
	if skewed.Canon(t1).Equal(skewed.Canon(t2)) {
		t.Error("skip-tuple-values sabotage failed to split the orbit")
	}
}

func replicaComponent(name, out string) *spec.Component {
	return &spec.Component{
		Name:    name,
		Outputs: []string{out},
		Init:    form.Eq(form.Var(out), form.IntC(0)),
		Actions: []spec.Action{{
			Name: "step",
			Def:  form.Eq(form.Prime(form.Var(out)), form.IntC(1)),
		}},
	}
}

func TestValidateBlocksReplicas(t *testing.T) {
	sym := &Symmetry{Blocks: [][]string{{"a"}, {"b"}}}
	comps := []*spec.Component{replicaComponent("A", "a"), replicaComponent("B", "b")}
	domains := map[string][]value.Value{"a": value.Ints(0, 1), "b": value.Ints(0, 1)}
	steps := []NamedExpr{{Name: "disj", E: form.DisjointSteps([]string{"a"}, []string{"b"})[0]}}
	if err := sym.Validate(comps, steps, nil, domains); err != nil {
		t.Errorf("replica components rejected: %v", err)
	}

	// Break the replication: B writes 2 where A writes 1.
	broken := []*spec.Component{replicaComponent("A", "a"), {
		Name:    "B",
		Outputs: []string{"b"},
		Init:    form.Eq(form.Var("b"), form.IntC(0)),
		Actions: []spec.Action{{
			Name: "step",
			Def:  form.Eq(form.Prime(form.Var("b")), form.IntC(2)),
		}},
	}}
	if err := sym.Validate(broken, steps, nil, domains); err == nil {
		t.Error("non-replica components accepted for block symmetry")
	}

	// Unequal domains.
	badDoms := map[string][]value.Value{"a": value.Ints(0, 1), "b": value.Ints(0, 2)}
	if err := sym.Validate(comps, steps, nil, badDoms); err == nil {
		t.Error("unequal block domains accepted")
	}
}

func TestValidateShapeErrors(t *testing.T) {
	bad := []*Symmetry{
		{Values: []value.Value{value.Int(0), value.Int(0)}, Vars: []string{"x"}},
		{Values: value.Ints(0, 1), Vars: []string{"x", "x"}},
		{Blocks: [][]string{{"a"}, {"b", "c"}}},
		{Blocks: [][]string{{"a"}, {"a"}}},
	}
	doms := map[string][]value.Value{
		"x": value.Ints(0, 1), "a": value.Ints(0, 1),
		"b": value.Ints(0, 1), "c": value.Ints(0, 1),
	}
	for i, sym := range bad {
		if err := sym.Validate(nil, nil, nil, doms); err == nil {
			t.Errorf("case %d: malformed declaration accepted", i)
		}
	}
}

func TestCheckBlockInvariant(t *testing.T) {
	sym := &Symmetry{Blocks: [][]string{{"g1"}, {"g2"}}}
	symmetric := form.Not(form.And(form.Var("g1"), form.Var("g2")))
	if err := sym.CheckBlockInvariant(symmetric); err != nil {
		t.Errorf("symmetric mutex formula rejected: %v", err)
	}
	asymmetric := form.Var("g1")
	if err := sym.CheckBlockInvariant(asymmetric); err == nil {
		t.Error("replica-distinguishing formula accepted")
	}
}

func independentComps() []*spec.Component {
	return []*spec.Component{
		{
			Name:    "A",
			Outputs: []string{"a"},
			Init:    form.Eq(form.Var("a"), form.IntC(0)),
			Actions: []spec.Action{{
				Name: "inc",
				Def:  form.Eq(form.Prime(form.Var("a")), form.IntC(1)),
			}},
		},
		{
			Name:    "B",
			Outputs: []string{"b"},
			Init:    form.Eq(form.Var("b"), form.IntC(0)),
			Actions: []spec.Action{{
				Name: "inc",
				Def:  form.Eq(form.Prime(form.Var("b")), form.IntC(1)),
			}},
		},
	}
}

func TestNewPORPlanIndependent(t *testing.T) {
	comps := independentComps()
	steps := []NamedExpr{{Name: "disj", E: form.DisjointSteps([]string{"a"}, []string{"b"})[0]}}
	plan, reason := NewPORPlan(comps, steps, nil, []string{"c"}, nil)
	if plan == nil {
		t.Fatalf("plan disabled: %s", reason)
	}
	if !plan.Eligible(0) || !plan.Eligible(1) {
		t.Errorf("want both components eligible, got %v", plan.EligibleNames())
	}
}

func TestNewPORPlanVisibility(t *testing.T) {
	comps := independentComps()
	steps := []NamedExpr{{Name: "disj", E: form.DisjointSteps([]string{"a"}, []string{"b"})[0]}}
	plan, reason := NewPORPlan(comps, steps, nil, []string{"a"}, nil)
	if plan == nil {
		t.Fatalf("plan disabled: %s", reason)
	}
	if plan.Eligible(0) {
		t.Error("component writing visible variable is eligible")
	}
	if !plan.Eligible(1) {
		t.Error("invisible independent component not eligible")
	}
	// The sabotage seam restores eligibility.
	plan, _ = NewPORPlan(comps, steps, nil, []string{"a"}, &Sabotage{IgnoreVisibility: true})
	if plan == nil || !plan.Eligible(0) {
		t.Error("ignore-visibility sabotage did not restore eligibility")
	}
}

func TestNewPORPlanDependence(t *testing.T) {
	comps := independentComps()
	// B now reads a: A's writes intersect B's vars, so neither side of the
	// A/B pair is independent — A ineligible; B writes only b but reads a,
	// and a is written by A, so B ineligible too.
	comps[1].Inputs = []string{"a"}
	comps[1].Actions[0].Def = form.And(
		form.Eq(form.Var("a"), form.IntC(1)),
		form.Eq(form.Prime(form.Var("b")), form.IntC(1)))
	steps := []NamedExpr{{Name: "disj", E: form.DisjointSteps([]string{"a"}, []string{"b"})[0]}}
	plan, reason := NewPORPlan(comps, steps, nil, nil, nil)
	if plan != nil {
		t.Fatalf("dependent components produced plan %v", plan.EligibleNames())
	}
	if !strings.Contains(reason, "no component") {
		t.Errorf("unexpected disable reason %q", reason)
	}
	// ignore-dependence sabotage accepts them.
	plan, _ = NewPORPlan(comps, steps, nil, nil, &Sabotage{IgnoreDependence: true})
	if plan == nil || !plan.Eligible(0) {
		t.Error("ignore-dependence sabotage did not restore eligibility")
	}
}

func TestNewPORPlanFreeVars(t *testing.T) {
	comps := independentComps()
	steps := []NamedExpr{{Name: "disj", E: form.DisjointSteps([]string{"a"}, []string{"b"})[0]}}
	// a free environment variable read by A disqualifies A only.
	comps[0].Inputs = []string{"env"}
	plan, reason := NewPORPlan(comps, steps, []string{"env"}, nil, nil)
	if plan == nil {
		t.Fatalf("plan disabled: %s", reason)
	}
	if plan.Eligible(0) {
		t.Error("component touching a free variable is eligible")
	}
	if !plan.Eligible(1) {
		t.Error("independent component not eligible")
	}
}

func TestNewPORPlanOpaqueConstraint(t *testing.T) {
	comps := independentComps()
	steps := []NamedExpr{{Name: "odd", E: form.Lt(form.Var("a"), form.IntC(5))}}
	plan, reason := NewPORPlan(comps, steps, nil, nil, nil)
	if plan != nil {
		t.Fatal("plan produced despite opaque constraint")
	}
	if !strings.Contains(reason, "Disjoint") {
		t.Errorf("unexpected disable reason %q", reason)
	}
}

func TestConfigDesc(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Desc() != "" {
		t.Error("nil config desc nonempty")
	}
	if (&Config{}).Desc() != "" {
		t.Error("inactive config desc nonempty")
	}
	full := &Config{
		Options:  Options{POR: true, Sym: true},
		Symmetry: valSym(),
		Visible:  []string{"z", "a"},
	}
	d := full.Desc()
	for _, want := range []string{"modes=por,sym", "visible=[a,z]", "sym-values=[0,1,2]"} {
		if !strings.Contains(d, want) {
			t.Errorf("desc missing %q:\n%s", want, d)
		}
	}
	sab := &Config{Options: Options{Sym: true}, Symmetry: valSym(),
		Sabotage: &Sabotage{SkipC3: true, CollapseValues: true}}
	if !strings.Contains(sab.Desc(), "sabotage=collapse-values,skip-c3") {
		t.Errorf("sabotage marker missing from desc:\n%s", sab.Desc())
	}
	// Sabotaged and sound configs must never share a cache key.
	soundCfg := &Config{Options: Options{Sym: true}, Symmetry: valSym()}
	if sab.Desc() == soundCfg.Desc() {
		t.Error("sabotaged desc equals sound desc")
	}
}
