// Package arbiter applies the paper's assumption/guarantee method to a
// second domain: a mutual-exclusion arbiter granting a shared resource to
// two clients over a request/grant wire pair per client.
//
// The arbiter owns the grant wires g1, g2 and guarantees mutual exclusion
// and eventual service — assuming each client follows the protocol (raise
// r_i only while ungranted, lower r_i only while granted, eventually
// release). Each client owns its request wire r_i and guarantees the
// protocol — assuming the arbiter grants only requested clients and never
// revokes early. The Composition Theorem of Abadi & Lamport, "Open Systems
// in TLA" (§5) assembles these circular specifications into an
// unconditional complete-system result, exactly as it assembles the two
// queues of Appendix A.
package arbiter

import (
	"fmt"

	"opentla/internal/ag"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// Wire names: r1, r2 are client requests; g1, g2 are arbiter grants.
func rvar(i int) string { return fmt.Sprintf("r%d", i) }
func gvar(i int) string { return fmt.Sprintf("g%d", i) }

// Domains returns the variable domains: all four wires are bits.
func Domains() map[string][]value.Value {
	return map[string][]value.Value{
		"r1": value.Bits(), "r2": value.Bits(),
		"g1": value.Bits(), "g2": value.Bits(),
	}
}

func is(v string, b int64) form.Expr  { return form.Eq(form.Var(v), form.IntC(b)) }
func set(v string, b int64) form.Expr { return form.Eq(form.PrimedVar(v), form.IntC(b)) }

// grantAction returns Grant_i: grant a requesting, ungranted client while
// the other client is not granted. The request wires are inputs and stay
// unchanged (interleaving).
func grantAction(i, j int) form.Expr {
	return form.And(
		is(rvar(i), 1), is(gvar(i), 0), is(gvar(j), 0),
		set(gvar(i), 1),
		form.Unchanged(gvar(j), rvar(i), rvar(j)),
	)
}

// revokeAction returns Revoke_i: withdraw the grant after the client has
// dropped its request.
func revokeAction(i, j int) form.Expr {
	return form.And(
		is(rvar(i), 0), is(gvar(i), 1),
		set(gvar(i), 0),
		form.Unchanged(gvar(j), rvar(i), rvar(j)),
	)
}

// Arbiter returns the arbiter's guarantee: a canonical component owning
// g1, g2 with strongly fair grants (strong fairness is needed: with two
// contending clients, a grant action is only intermittently enabled, so
// weak fairness would allow starvation).
func Arbiter() *spec.Component {
	g1 := grantAction(1, 2)
	g2 := grantAction(2, 1)
	r1 := revokeAction(1, 2)
	r2 := revokeAction(2, 1)
	execFor := func(ri, gi, gj string, grant bool) spec.ExecFunc {
		return func(s *state.State) []map[string]value.Value {
			rv, _ := s.MustGet(ri).AsInt()
			gv, _ := s.MustGet(gi).AsInt()
			ov, _ := s.MustGet(gj).AsInt()
			if grant {
				if rv == 1 && gv == 0 && ov == 0 {
					return []map[string]value.Value{{gi: value.Int(1)}}
				}
				return nil
			}
			if rv == 0 && gv == 1 {
				return []map[string]value.Value{{gi: value.Int(0)}}
			}
			return nil
		}
	}
	return &spec.Component{
		Name:    "arbiter",
		Inputs:  []string{"r1", "r2"},
		Outputs: []string{"g1", "g2"},
		Init:    form.And(is("g1", 0), is("g2", 0)),
		Actions: []spec.Action{
			{Name: "Grant1", Def: g1, Exec: execFor("r1", "g1", "g2", true)},
			{Name: "Grant2", Def: g2, Exec: execFor("r2", "g2", "g1", true)},
			{Name: "Revoke1", Def: r1, Exec: execFor("r1", "g1", "g2", false)},
			{Name: "Revoke2", Def: r2, Exec: execFor("r2", "g2", "g1", false)},
		},
		Fairness: []spec.Fairness{
			{Kind: form.Strong, Action: g1},
			{Kind: form.Strong, Action: g2},
			{Kind: form.Weak, Action: form.Or(r1, r2)},
		},
	}
}

// Client returns client i's guarantee: it owns r_i, raises a request only
// while ungranted, lowers it only while granted, and is weakly fair about
// releasing the resource (it does not hold it forever). Raising is not
// fair: a client is free never to request.
//
// The specification mentions only the client's own interface ⟨r_i, g_i⟩ —
// like the component queues of §A.5, it says nothing about the other
// client's wires, so the *conjunction* of the two clients' specifications
// admits simultaneous changes of r1 and r2. The interleaving assumption G
// is what rules those out (see Theorem), exactly as for the queues.
func Client(i int) *spec.Component {
	raise := form.And(
		is(rvar(i), 0), is(gvar(i), 0),
		set(rvar(i), 1),
		form.Unchanged(gvar(i)),
	)
	release := form.And(
		is(rvar(i), 1), is(gvar(i), 1),
		set(rvar(i), 0),
		form.Unchanged(gvar(i)),
	)
	ri := rvar(i)
	gi := gvar(i)
	return &spec.Component{
		Name:    fmt.Sprintf("client%d", i),
		Inputs:  []string{gvar(i)},
		Outputs: []string{rvar(i)},
		Init:    is(rvar(i), 0),
		Actions: []spec.Action{
			{Name: "Raise", Def: raise, Exec: func(s *state.State) []map[string]value.Value {
				rv, _ := s.MustGet(ri).AsInt()
				gv, _ := s.MustGet(gi).AsInt()
				if rv == 0 && gv == 0 {
					return []map[string]value.Value{{ri: value.Int(1)}}
				}
				return nil
			}},
			{Name: "Release", Def: release, Exec: func(s *state.State) []map[string]value.Value {
				rv, _ := s.MustGet(ri).AsInt()
				gv, _ := s.MustGet(gi).AsInt()
				if rv == 1 && gv == 1 {
					return []map[string]value.Value{{ri: value.Int(0)}}
				}
				return nil
			}},
		},
		Fairness: []spec.Fairness{
			{Kind: form.Weak, Action: release},
		},
	}
}

// ClientsEnv returns the arbiter's environment assumption: both clients'
// protocol obligations as a single safety component owning r1, r2 (no
// fairness — assumptions are safety properties, §3). As one component its
// next-state relation is interleaved: each action freezes the other
// client's request wire, so the assumption forbids simultaneous raises —
// which is why deriving it from the two separate client guarantees
// requires G (hypothesis 1 of the theorem).
func ClientsEnv() *spec.Component {
	interleave := func(i int, a spec.Action) spec.Action {
		return spec.Action{
			Name: fmt.Sprintf("%s%d", a.Name, i),
			Def:  form.And(a.Def, form.Unchanged(rvar(3-i))),
			Exec: a.Exec,
		}
	}
	c1 := Client(1)
	c2 := Client(2)
	var actions []spec.Action
	for _, a := range c1.Actions {
		actions = append(actions, interleave(1, a))
	}
	for _, a := range c2.Actions {
		actions = append(actions, interleave(2, a))
	}
	return &spec.Component{
		Name:    "clients-assumption",
		Inputs:  []string{"g1", "g2"},
		Outputs: []string{"r1", "r2"},
		Init:    form.And(is("r1", 0), is("r2", 0)),
		Actions: actions,
	}
}

// ArbiterEnv returns a client's environment assumption: the arbiter's
// safety behavior (grants only requested clients, revokes only dropped
// ones, one at a time), owning g1, g2.
func ArbiterEnv() *spec.Component {
	a := Arbiter()
	return a.SafetyOnly()
}

// Mutex is the mutual-exclusion predicate ¬(g1 = 1 ∧ g2 = 1).
func Mutex() form.Expr {
	return form.Not(form.And(is("g1", 1), is("g2", 1)))
}

// CompleteConclusion returns the conclusion guarantee M: the whole
// protocol as one interleaved component owning all four wires, with the
// service fairness conditions. Each action freezes every wire it does not
// set (the analogue of QM^dbl's interleaved representation), so a step
// changing two components' outputs at once violates M — without G the
// composition cannot establish it (see TestCompositionWithoutGFails).
func CompleteConclusion() *spec.Component {
	all := []string{"r1", "r2", "g1", "g2"}
	frozenExcept := func(sets ...string) form.Expr {
		skip := make(map[string]bool, len(sets))
		for _, s := range sets {
			skip[s] = true
		}
		var keep []string
		for _, v := range all {
			if !skip[v] {
				keep = append(keep, v)
			}
		}
		return form.Unchanged(keep...)
	}
	interleaved := func(a spec.Action, writes string) spec.Action {
		return spec.Action{
			Name: a.Name,
			Def:  form.And(a.Def, frozenExcept(writes)),
			Exec: a.Exec,
		}
	}
	arb := Arbiter()
	c1 := Client(1)
	c2 := Client(2)
	actions := []spec.Action{
		interleaved(arb.Actions[0], "g1"), // Grant1
		interleaved(arb.Actions[1], "g2"), // Grant2
		interleaved(arb.Actions[2], "g1"), // Revoke1
		interleaved(arb.Actions[3], "g2"), // Revoke2
		interleaved(c1.Actions[0], "r1"),  // Raise (client 1)
		interleaved(c1.Actions[1], "r1"),  // Release (client 1)
		interleaved(c2.Actions[0], "r2"),  // Raise (client 2)
		interleaved(c2.Actions[1], "r2"),  // Release (client 2)
	}
	var fairness []spec.Fairness
	for _, src := range []*spec.Component{arb, c1, c2} {
		for _, fc := range src.Fairness {
			fairness = append(fairness, spec.Fairness{
				Kind:   fc.Kind,
				Action: fc.Action,
				Sub:    form.VarTuple(all...),
			})
		}
	}
	return &spec.Component{
		Name:     "mutex-system",
		Outputs:  all,
		Init:     form.And(is("r1", 0), is("r2", 0), is("g1", 0), is("g2", 0)),
		Actions:  actions,
		Fairness: fairness,
	}
}

// OutputTuples returns the per-component output tuples for the
// interleaving assumption G.
func OutputTuples() [][]string {
	return [][]string{{"g1", "g2"}, {"r1"}, {"r2"}}
}

// GConstraints returns G as step constraints.
func GConstraints() []ts.StepConstraint {
	var out []ts.StepConstraint
	for i, sq := range form.DisjointSteps(OutputTuples()...) {
		out = append(out, ts.StepConstraint{Name: fmt.Sprintf("G%d", i), Action: sq})
	}
	return out
}

// Theorem returns the Composition Theorem instance: the arbiter (assuming
// the clients) and the two clients (assuming the arbiter) compose into the
// unconditional complete mutual-exclusion system:
//
//	G ∧ (Clients ⊳ Arbiter) ∧ (ArbiterSafety ⊳ Client1) ∧ (ArbiterSafety ⊳ Client2)
//	  ⇒ (TRUE ⊳ MutexSystem).
func Theorem() *ag.Theorem {
	return &ag.Theorem{
		Name: "arbiter: circular A/G composition of arbiter and clients",
		Pairs: []ag.Pair{
			{Name: "G", Constraints: GConstraints()},
			{Name: "arbiter", Env: ClientsEnv(), Sys: Arbiter()},
			{Name: "client1", Env: ArbiterEnv(), Sys: Client(1)},
			{Name: "client2", Env: ArbiterEnv(), Sys: Client(2)},
		},
		Concl: ag.Conclusion{
			Sys: CompleteConclusion(),
		},
		Domains: Domains(),
	}
}

// System returns the closed system (arbiter + both clients, interleaved)
// for direct model checking.
func System() *ts.System {
	return &ts.System{
		Name:        "arbiter-closed",
		Components:  []*spec.Component{Arbiter(), Client(1), Client(2)},
		Constraints: GConstraints(),
		Domains:     Domains(),
	}
}
