package arbiter

import (
	"testing"

	"opentla/internal/ag"
	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/ts"
)

// TestMutexInvariant: the closed system never grants both clients.
func TestMutexInvariant(t *testing.T) {
	g, err := System().Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.Invariant(g, Mutex())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("mutual exclusion violated:\n%s", res)
	}
}

// TestEventualService: under the arbiter's strong fairness and the
// clients' release fairness, every request is eventually granted.
func TestEventualService(t *testing.T) {
	g, err := System().Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		req := form.Eq(form.Var(rvar(i)), form.IntC(1))
		granted := form.Eq(form.Var(gvar(i)), form.IntC(1))
		res, err := check.Liveness(g, form.LeadsTo(req, granted), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Holds {
			t.Fatalf("r%d ↝ g%d should hold:\n%s", i, i, res)
		}
	}
}

// TestWeakFairnessStarves: replacing the arbiter's strong fairness on
// grants with weak fairness permits starvation — the grant action is only
// intermittently enabled under contention, so WF is satisfied by a run
// that never serves client 1. This is the textbook WF/SF separation, and
// exactly why the spec uses SF.
func TestWeakFairnessStarves(t *testing.T) {
	weak := Arbiter()
	for i := range weak.Fairness {
		weak.Fairness[i].Kind = form.Weak
	}
	sys := System()
	sys.Components[0] = weak
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	req := form.Eq(form.Var("r1"), form.IntC(1))
	granted := form.Eq(form.Var("g1"), form.IntC(1))
	res, err := check.Liveness(g, form.LeadsTo(req, granted), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("weak fairness should allow starvation of client 1")
	}
	if res.Counterexample == nil {
		t.Fatal("expected a starvation counterexample")
	}
}

// TestCompositionTheorem: the circular assumption/guarantee specifications
// of the arbiter and the two clients compose into the unconditional
// complete-system specification.
func TestCompositionTheorem(t *testing.T) {
	report, err := Theorem().Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Valid {
		t.Fatalf("arbiter composition should validate:\n%s", report)
	}
	t.Logf("\n%s", report)
}

// TestCompositionWithoutGFails: as with the queues (§A.5), dropping the
// interleaving assumption breaks the composition — the conjunction admits
// simultaneous raises of r1 and r2, which the interleaved conclusion
// forbids.
func TestCompositionWithoutGFails(t *testing.T) {
	th := Theorem()
	th.Pairs = th.Pairs[1:]
	report, err := th.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report.Valid {
		t.Fatalf("composition without G should fail:\n%s", report)
	}
}

// TestArbiterSatisfiesAGSpec: the arbiter alone, in the most general
// environment, satisfies Clients ⊳ ArbiterSafety.
func TestArbiterSatisfiesAGSpec(t *testing.T) {
	sys := &ts.System{
		Name:       "arbiter-alone",
		Components: []*spec.Component{Arbiter()},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.WhilePlus(g, ClientsEnv(), Arbiter().SafetyOnly(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("Clients -+> Arbiter should hold:\n%s", res)
	}
}

// TestGreedyArbiterViolatesAGSpec: an arbiter that grants without a
// request breaks its guarantee while the environment is still conforming.
func TestGreedyArbiterViolatesAGSpec(t *testing.T) {
	greedy := Arbiter()
	// Grant1 without requiring r1 = 1.
	greedy.Actions[0].Def = form.And(
		is("g1", 0), is("g2", 0),
		set("g1", 1),
		form.Unchanged("g2", "r1", "r2"),
	)
	greedy.Actions[0].Exec = nil
	sys := &ts.System{
		Name:       "greedy-arbiter",
		Components: []*spec.Component{greedy},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.WhilePlus(g, ClientsEnv(), Arbiter().SafetyOnly(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("a greedy arbiter must violate its A/G specification")
	}
}

// TestMachineClosure: the arbiter's SF+WF fairness is machine closed
// (Proposition 1 applies).
func TestMachineClosure(t *testing.T) {
	res, err := ag.MachineClosure(Arbiter(), Domains(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed {
		t.Fatalf("arbiter should be machine closed; stuck at %s", res.StuckState)
	}
}
