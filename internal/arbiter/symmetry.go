package arbiter

import "opentla/internal/reduce"

// Symmetry declares the two client interfaces interchangeable: the
// arbiter's grant/revoke actions and the clients are identical up to
// swapping (r1, g1) with (r2, g2), so exchanging the two request/grant
// wire pairs is an automorphism of the composed system.
func Symmetry() *reduce.Symmetry {
	return &reduce.Symmetry{Blocks: [][]string{
		{rvar(1), gvar(1)},
		{rvar(2), gvar(2)},
	}}
}
