package ag

import (
	"opentla/internal/form"
)

// Formula builds the theorem instance as a single TLA formula,
//
//	⋀_j (E_j ⊳ M_j) ⇒ (E ⊳ M),
//
// with each component's internal variables hidden by ∃. It is used by the
// semantic validation tests, which evaluate it directly on enumerated
// lassos of small universes — an independent cross-check of the
// model-checking driver.
func (th *Theorem) Formula() form.Formula {
	var lhs []form.Formula
	for _, p := range th.Pairs {
		lhs = append(lhs, p.Formula())
	}
	return form.ImpliesFm(form.AndF(lhs...), th.Concl.Formula())
}

// Formula returns the pair's assumption/guarantee specification E_j ⊳ M_j
// (just the guarantee when the assumption is TRUE, since TRUE ⊳ G = G).
func (p *Pair) Formula() form.Formula {
	g := p.guaranteeFormula()
	if p.Env == nil {
		return g
	}
	return form.WhilePlus(p.Env.Formula(), g)
}

func (p *Pair) guaranteeFormula() form.Formula {
	var fs []form.Formula
	if p.Sys != nil {
		fs = append(fs, p.Sys.Formula())
	}
	for _, sc := range p.Constraints {
		// A step constraint is the safety formula □[A]_⟨vars(A)⟩ where A
		// already permits its stuttering; subscripting by all its
		// variables makes the box equivalent to □(A holds on every step
		// that changes them).
		fs = append(fs, form.ActBoxVars(sc.Action, form.AllVars(sc.Action)...))
	}
	return form.AndF(fs...)
}

// Formula returns the conclusion's specification E ⊳ M.
func (c *Conclusion) Formula() form.Formula {
	m := c.Sys.Formula()
	if c.Env == nil {
		return m
	}
	return form.WhilePlus(c.Env.Formula(), m)
}
