package ag

import (
	"strings"
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
)

// countComp is a minimal canonical component: out counts modulo 2.
func countComp(name, out string) *spec.Component {
	inc := form.Eq(form.PrimedVar(out), form.Mod(form.Add(form.Var(out), form.IntC(1)), form.IntC(2)))
	return &spec.Component{
		Name:    name,
		Outputs: []string{out},
		Init:    form.Eq(form.Var(out), form.IntC(0)),
		Actions: []spec.Action{{Name: "Inc", Def: inc}},
	}
}

func vetTheorem() *Theorem {
	return &Theorem{
		Name:  "vet-demo",
		Pairs: []Pair{{Name: "P", Sys: countComp("low", "x")}},
		Concl: Conclusion{Sys: countComp("high", "x")},
	}
}

func TestTheoremVet(t *testing.T) {
	th := vetTheorem()
	if res := th.Vet(); res.HasErrors() {
		t.Errorf("clean theorem has vet errors:\n%s", res)
	}
	if err := th.validate(); err != nil {
		t.Errorf("clean theorem rejected: %v", err)
	}

	// A guarantee writing its own input is not in canonical form: the
	// analyzer reports SV002 and validate refuses the instance.
	bad := vetTheorem()
	bad.Pairs[0].Sys.Inputs = []string{"d"}
	bad.Pairs[0].Sys.Actions = append(bad.Pairs[0].Sys.Actions, spec.Action{
		Name: "Rogue", Def: form.Eq(form.PrimedVar("d"), form.IntC(1)),
	})
	res := bad.Vet()
	if !res.HasErrors() {
		t.Fatalf("input-writing theorem has no vet errors:\n%s", res)
	}
	err := bad.validate()
	if err == nil {
		t.Fatal("validate accepted an input-writing guarantee")
	}
	if !strings.Contains(err.Error(), "canonical form") || !strings.Contains(err.Error(), "SV002") {
		t.Errorf("validate error = %v", err)
	}
}

func TestTheoremVetDedupesByName(t *testing.T) {
	// The same component used as a pair's Env and the conclusion's Env is
	// analyzed once: its diagnostics appear once, not twice.
	env := stays0("env", "e")
	env.Inputs = []string{"spare"} // never referenced → one SV060
	th := &Theorem{
		Name:  "dedup",
		Pairs: []Pair{{Name: "P", Env: env, Sys: countComp("low", "x")}},
		Concl: Conclusion{Env: env, Sys: countComp("high", "x")},
	}
	n := 0
	for _, d := range th.Vet().Diagnostics {
		if d.Code == "SV060" && d.Component == "env" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("shared env analyzed %d times, want 1", n)
	}
}

func TestRefinementVet(t *testing.T) {
	rf := &Refinement{
		Name: "ref-demo",
		Low:  countComp("low", "x"),
		High: countComp("high", "x"),
	}
	if res := rf.Vet(); res.HasErrors() {
		t.Errorf("clean refinement has vet errors:\n%s", res)
	}
	rf.Low.Actions[0].Def = form.Eq(form.PrimedVar("ghost"), form.IntC(1))
	res := rf.Vet()
	found := false
	for _, d := range res.Diagnostics {
		if d.Code == "SV001" && d.Component == "low" {
			found = true
		}
	}
	if !found {
		t.Errorf("undeclared write not reported:\n%s", res)
	}
}
