package ag

import (
	"fmt"

	"opentla/internal/check"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// MachineClosureResult reports a machine-closure check (Proposition 1).
type MachineClosureResult struct {
	Closed bool
	// StuckState describes a reachable state with no fair continuation
	// when Closed is false.
	StuckState string
	States     int
}

// MachineClosure verifies the hypothesis under which Proposition 1 equates
// C(Init ∧ □[N]_v ∧ L) with Init ∧ □[N]_v: every finite behavior of the
// safety part must extend to a behavior satisfying the fairness part. On a
// finite graph this holds iff every reachable state of the safety part has
// a continuation into a cycle satisfying every WF/SF condition.
//
// The component's input variables are left unconstrained (free), so the
// check quantifies over all environments, as the proposition requires.
func MachineClosure(c *spec.Component, domains map[string][]value.Value, maxStates int) (*MachineClosureResult, error) {
	sys := &ts.System{
		Name:       c.Name + "/machine-closure",
		Components: []*spec.Component{c},
		Domains:    domains,
		MaxStates:  maxStates,
	}
	g, err := sys.Build()
	if err != nil {
		return nil, fmt.Errorf("machine closure of %s: %w", c.Name, err)
	}
	conds, condErr := check.FairnessConds(g)
	for id := range g.States {
		w, err := check.FindFairLasso(g, check.LassoQuery{StartIDs: []int{id}, Conds: conds})
		if err != nil {
			return nil, err
		}
		if *condErr != nil {
			return nil, *condErr
		}
		if w == nil {
			return &MachineClosureResult{
				Closed:     false,
				StuckState: g.States[id].String(),
				States:     g.NumStates(),
			}, nil
		}
	}
	return &MachineClosureResult{Closed: true, States: g.NumStates()}, nil
}

// FairnessSubactionOK checks the syntactic hypothesis of Proposition 1:
// each fairness condition's action must imply the next-state action N
// (every ⟨A⟩ step is an N step). It verifies A ⇒ N semantically over all
// assignments of the component's variables drawn from the domains.
func FairnessSubactionOK(c *spec.Component, domains map[string][]value.Value) (bool, error) {
	next := c.Next()
	vars := c.Vars()
	primed := make([]string, 0, len(vars))
	for _, v := range vars {
		primed = append(primed, v)
	}
	for _, fc := range c.Fairness {
		holds, err := actionImplies(fc.Action, next, vars, primed, domains)
		if err != nil {
			return false, err
		}
		if !holds {
			return false, nil
		}
	}
	return true, nil
}
