package ag

import (
	"opentla/internal/spec"
	"opentla/internal/vet"
)

// Vet statically analyzes the theorem instance before any state
// exploration: the composed guarantees (the pairs' Sys components plus
// their step constraints) are checked as one composition — including the
// Disjoint-hypothesis coverage Proposition 4 relies on — and the
// environment assumptions and the conclusion guarantee are checked
// individually. Components appearing in several roles (e.g. the arbiter as
// both a pair's Sys and a client's Env) are analyzed once, by name.
func (th *Theorem) Vet() *vet.Result {
	opt := vet.Options{Domains: th.Domains, RequireDisjoint: true}

	var comps []*spec.Component
	if th.Concl.Env != nil {
		comps = append(comps, th.Concl.Env)
	}
	sysComps, cons := th.guaranteeComponents(false)
	comps = append(comps, sysComps...)
	res := vet.Composition(th.Name, comps, cons, opt)

	vetted := make(map[string]bool, len(comps))
	for _, c := range comps {
		vetted[c.Name] = true
	}
	single := func(c *spec.Component) {
		if c == nil || vetted[c.Name] {
			return
		}
		vetted[c.Name] = true
		res.Merge(vet.Component(c, opt))
	}
	for _, p := range th.Pairs {
		single(p.Env)
	}
	single(th.Concl.Sys)

	// Interface consistency of each assumption/guarantee pair, and of the
	// conclusion: every wire a guarantee reads must be driven by its
	// assumption (SV121).
	for _, p := range th.Pairs {
		res.Merge(vet.Pair(p.Name, p.Env, p.Sys, opt))
	}
	res.Merge(vet.Pair("conclusion", th.Concl.Env, th.Concl.Sys, opt))
	return res
}

// Vet statically analyzes the corollary instance: environment and
// low-level guarantee as a composition (no Disjoint requirement — the
// corollary makes no interleaving hypothesis), plus the high-level
// guarantee individually.
func (rf *Refinement) Vet() *vet.Result {
	opt := vet.Options{Domains: rf.Domains}
	var comps []*spec.Component
	if rf.Env != nil {
		comps = append(comps, rf.Env)
	}
	if rf.Low != nil {
		comps = append(comps, rf.Low)
	}
	res := vet.Composition(rf.Name, comps, nil, opt)
	if rf.High != nil {
		dup := false
		for _, c := range comps {
			if c.Name == rf.High.Name {
				dup = true
			}
		}
		if !dup {
			res.Merge(vet.Component(rf.High, opt))
		}
	}
	return res
}
