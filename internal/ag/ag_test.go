package ag

import (
	"fmt"
	"testing"

	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

func emDomains() map[string][]value.Value {
	return map[string][]value.Value{"e": value.Bits(), "m": value.Bits()}
}

// stays0 is the component "out starts 0 and never changes".
func stays0(name, out string, inputs ...string) *spec.Component {
	return &spec.Component{
		Name:    name,
		Inputs:  inputs,
		Outputs: []string{out},
		Init:    form.Eq(form.Var(out), form.IntC(0)),
	}
}

// TestConditionalImplementation is experiment E13: TRUE ⊳ G equals G — a
// pair with a TRUE assumption contributes its guarantee unconditionally
// (§5's device for conditional implementation).
func TestConditionalImplementation(t *testing.T) {
	ctx := form.NewCtx(emDomains())
	g := form.Disjoint([]string{"e"}, []string{"m"})
	p := Pair{Name: "G"}
	for i, sq := range form.DisjointSteps([]string{"e"}, []string{"m"}) {
		p.Constraints = append(p.Constraints, ts.StepConstraint{
			Name:   fmt.Sprintf("G%d", i),
			Action: sq,
		})
	}
	universe := check.AllStates([]string{"e", "m"}, emDomains())
	check.ForAllLassos(universe, 2, 2, func(l *state.Lasso) bool {
		want, err := g.Eval(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Formula().Eval(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("TRUE ⊳ G (%v) ≠ G (%v) on\n%s", got, want, l)
		}
		return true
	})
}

// TestProposition3Semantics is experiment E6: on the finite (e, m) universe,
// verify the premises of Proposition 3 for a concrete instance and confirm
// its conclusion; then break a premise and watch the conclusion fail.
//
// Instance: E ≜ e=0 ∧ □[FALSE]_e, M ≜ m=0 ∧ □[FALSE]_m, and
// R ≜ (m=0) ∧ □[e=1]_m ("m changes only after e has gone bad").
func TestProposition3Semantics(t *testing.T) {
	ctx := form.NewCtx(emDomains())
	e := form.AndF(form.Pred(form.Eq(form.Var("e"), form.IntC(0))), form.ActBoxVars(form.FalseE, "e"))
	m := form.AndF(form.Pred(form.Eq(form.Var("m"), form.IntC(0))), form.ActBoxVars(form.FalseE, "m"))
	r := form.AndF(
		form.Pred(form.Eq(form.Var("m"), form.IntC(0))),
		form.ActBoxVars(form.Eq(form.Var("e"), form.IntC(1)), "m"),
	)
	universe := check.AllStates([]string{"e", "m"}, emDomains())

	evalOn := func(f form.Formula, l *state.Lasso) bool {
		ok, err := f.Eval(ctx, l)
		if err != nil {
			t.Fatalf("eval %s: %v", f, err)
		}
		return ok
	}
	// Premise 1: ⊨ E ∧ R ⇒ M. Premise 2: ⊨ R ⇒ E ⊥ M.
	// Conclusion: ⊨ E+v ∧ R ⇒ M with v = ⟨e, m⟩ ⊇ vars(M).
	plus := form.PlusVars(e, "e", "m")
	check.ForAllLassos(universe, 2, 2, func(l *state.Lasso) bool {
		if evalOn(e, l) && evalOn(r, l) && !evalOn(m, l) {
			t.Fatalf("premise 1 fails on\n%s", l)
		}
		if evalOn(r, l) && !evalOn(form.Orth(e, m), l) {
			t.Fatalf("premise 2 fails on\n%s", l)
		}
		if evalOn(plus, l) && evalOn(r, l) && !evalOn(m, l) {
			t.Fatalf("Proposition 3 conclusion fails on\n%s", l)
		}
		return true
	})

	// Side-condition necessity: with v = ⟨e⟩ (not containing m), the
	// conclusion must fail on some behavior: e goes bad and freezes, then
	// m moves.
	plusE := form.PlusVars(e, "e")
	violated := false
	check.ForAllLassos(universe, 2, 2, func(l *state.Lasso) bool {
		if evalOn(plusE, l) && evalOn(r, l) && !evalOn(m, l) {
			violated = true
			return false
		}
		return true
	})
	if !violated {
		t.Fatal("dropping m from v should break the conclusion (Prop 3's side condition)")
	}
}

// TestProposition4Semantics is experiment E7: for interleaving component
// specifications, (Init_E ∨ Init_M) ∧ Disjoint(e, m) implies
// C(E) ⊥ C(M), verified over the finite universe.
func TestProposition4Semantics(t *testing.T) {
	ctx := form.NewCtx(emDomains())
	envC := stays0("E", "e", "m")
	sysC := stays0("M", "m", "e")
	e := envC.SafetyFormula()
	m := sysC.SafetyFormula()
	hyp := form.AndF(
		form.OrF(form.Pred(envC.Init), form.Pred(sysC.Init)),
		form.Disjoint([]string{"e"}, []string{"m"}),
	)
	orth := form.Orth(form.Closure(e), form.Closure(m))
	universe := check.AllStates([]string{"e", "m"}, emDomains())
	hypSeen := false
	check.ForAllLassos(universe, 2, 2, func(l *state.Lasso) bool {
		okHyp, err := hyp.Eval(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if !okHyp {
			return true
		}
		hypSeen = true
		okOrth, err := orth.Eval(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if !okOrth {
			t.Fatalf("Proposition 4 fails on\n%s", l)
		}
		return true
	})
	if !hypSeen {
		t.Fatal("hypothesis never satisfied — vacuous test")
	}
	// Non-vacuity of Disjoint: without it, orthogonality fails somewhere.
	violated := false
	check.ForAllLassos(universe, 2, 2, func(l *state.Lasso) bool {
		okInit, err := form.OrF(form.Pred(envC.Init), form.Pred(sysC.Init)).Eval(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if !okInit {
			return true
		}
		okOrth, err := orth.Eval(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if !okOrth {
			violated = true
			return false
		}
		return true
	})
	if !violated {
		t.Fatal("without Disjoint, some behavior should violate orthogonality")
	}
}

// TestMachineClosureDetectsUnclosedSpec: a component whose fairness demands
// an impossible action from a reachable state is not machine closed —
// MachineClosure must detect it (the hypothesis of Proposition 1 fails).
func TestMachineClosureDetectsUnclosedSpec(t *testing.T) {
	// x may step 0→1 (a dead end); fairness demands the 0→2 action, whose
	// ⟨A⟩ is disabled at 1 — wait, WF is satisfiable when disabled. Use SF
	// with an action enabled at 0 only reachable... Simplest unclosed spec:
	// fairness on action A = (x=0 ∧ x'=1), but another action lets x reach
	// 2 where nothing is enabled — machine closure still holds (WF vacuous
	// at 2). Instead demand SF of A while a sink at x=1 keeps A enabled
	// forever but untakeable: impossible — if enabled it is takeable.
	//
	// A genuinely unclosed spec needs fairness of an action outside the
	// next-state relation: WF(x'=x+1) with N = FALSE (x can never change).
	// From any state, no fair lasso exists: the action stays enabled but
	// can never be taken.
	c := &spec.Component{
		Name:    "unclosed",
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(0)),
		// No actions: N = FALSE.
		Fairness: []spec.Fairness{{
			Kind:   form.Weak,
			Action: form.Eq(form.PrimedVar("x"), form.Add(form.Var("x"), form.IntC(1))),
		}},
	}
	res, err := MachineClosure(c, map[string][]value.Value{"x": value.Ints(0, 2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Closed {
		t.Fatal("WF of an impossible action should not be machine closed")
	}
	// The subaction check of Proposition 1 flags it too.
	ok, err := FairnessSubactionOK(c, map[string][]value.Value{"x": value.Ints(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fairness action does not imply N = FALSE; the check should fail")
	}
}

// TestFairnessSubactionOKPositive: the hypothesis of Proposition 1 holds
// for a well-formed spec.
func TestFairnessSubactionOKPositive(t *testing.T) {
	inc := form.Eq(form.PrimedVar("x"), form.Add(form.Var("x"), form.IntC(1)))
	c := &spec.Component{
		Name:     "counter",
		Outputs:  []string{"x"},
		Init:     form.Eq(form.Var("x"), form.IntC(0)),
		Actions:  []spec.Action{{Name: "Inc", Def: inc}},
		Fairness: []spec.Fairness{{Kind: form.Weak, Action: inc}},
	}
	ok, err := FairnessSubactionOK(c, map[string][]value.Value{"x": value.Ints(0, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("A = N should satisfy the subaction hypothesis")
	}
}

// TestTheoremValidation exercises the structural validation of Theorem.
func TestTheoremValidation(t *testing.T) {
	envWithFairness := stays0("E", "e", "m")
	envWithFairness.Fairness = []spec.Fairness{{Kind: form.Weak, Action: form.FalseE}}
	badEnv := &Theorem{
		Name:    "bad-env",
		Pairs:   []Pair{{Name: "p", Env: envWithFairness, Sys: stays0("M", "m", "e")}},
		Concl:   Conclusion{Sys: stays0("C", "m", "e")},
		Domains: emDomains(),
	}
	if _, err := badEnv.Check(); err == nil {
		t.Error("fairness in an assumption should be rejected")
	}
	noGuarantee := &Theorem{
		Name:    "no-guarantee",
		Pairs:   []Pair{{Name: "p"}},
		Concl:   Conclusion{Sys: stays0("C", "m", "e")},
		Domains: emDomains(),
	}
	if _, err := noGuarantee.Check(); err == nil {
		t.Error("a pair without a guarantee should be rejected")
	}
	needsMapping := &Theorem{
		Name:  "needs-mapping",
		Pairs: []Pair{{Name: "p", Sys: stays0("M", "m", "e")}},
		Concl: Conclusion{Sys: &spec.Component{
			Name: "C", Outputs: []string{"m"}, Internals: []string{"h"},
			Init: form.TrueE,
		}},
		Domains: emDomains(),
	}
	if _, err := needsMapping.Check(); err == nil {
		t.Error("internals without a mapping should be rejected")
	}
}

// TestTheoremDetectsBrokenGuarantee: if one device's guarantee does not
// support the conclusion, some hypothesis fails and the report is invalid.
func TestTheoremDetectsBrokenGuarantee(t *testing.T) {
	// Device guarantees m=0 assuming e=0, but the conclusion demands both
	// always 0 with no environment assumption AND nothing constrains e —
	// hypothesis 1 (deriving the device's assumption) must fail.
	th := &Theorem{
		Name:  "broken",
		Pairs: []Pair{{Name: "only", Env: stays0("E", "e", "m"), Sys: stays0("M", "m", "e")}},
		Concl: Conclusion{Sys: &spec.Component{
			Name:    "Both",
			Outputs: []string{"m", "e"},
			Init: form.And(
				form.Eq(form.Var("m"), form.IntC(0)),
				form.Eq(form.Var("e"), form.IntC(0)),
			),
		}},
		Domains: emDomains(),
	}
	report, err := th.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report.Valid {
		t.Fatalf("nothing guarantees e=0; the theorem must not validate:\n%s", report)
	}
}
