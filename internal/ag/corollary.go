package ag

import (
	"fmt"
	"sort"

	"opentla/internal/check"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/obs"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// Refinement is an instance of the Corollary of the Composition Theorem
// (§5): for a safety environment assumption E,
//
//	(a) ⊨ E+v ∧ C(M') ⇒ C(M)
//	(b) ⊨ E ∧ M' ⇒ M
//
// imply ⊨ (E ⊳ M') ⇒ (E ⊳ M) — the correctness of refining a system with a
// fixed environment assumption.
type Refinement struct {
	Name string
	// Env is the fixed environment assumption E (safety, no internals).
	Env *spec.Component
	// Low is the lower-level guarantee M'.
	Low *spec.Component
	// High is the higher-level guarantee M.
	High *spec.Component
	// Mapping discharges High's internal variables in terms of the
	// low-level variables.
	Mapping map[string]form.Expr
	// PlusSub overrides the v of hypothesis (a); the default is the tuple
	// of all non-internal variables.
	PlusSub form.Expr
	Domains map[string][]value.Value
	// MaxStates bounds graph construction.
	MaxStates int
	// Workers is the goroutine count used to explore each state graph
	// (0 = GOMAXPROCS); results are identical at any setting.
	Workers int
	// Cache, when non-nil, is consulted before each graph construction and
	// persisted after (see ts.GraphCache).
	Cache ts.GraphCache
	// Resume, when true (with Cache set), continues interrupted graph
	// builds from their saved checkpoints.
	Resume bool
}

func (rf *Refinement) plusSub() form.Expr {
	if rf.PlusSub != nil {
		return rf.PlusSub
	}
	set := make(map[string]bool)
	add := func(c *spec.Component) {
		if c == nil {
			return
		}
		for _, v := range c.Inputs {
			set[v] = true
		}
		for _, v := range c.Outputs {
			set[v] = true
		}
	}
	add(rf.Env)
	add(rf.Low)
	add(rf.High)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return form.VarTuple(vars...)
}

// Check discharges both hypotheses of the Corollary, without resource
// limits. Use CheckWith to govern the check with a budget or cancellation.
func (rf *Refinement) Check() (*Report, error) {
	return rf.CheckWith(engine.NoLimit())
}

// CheckWith discharges both hypotheses under the given resource meter.
// Exhaustion, cancellation, and contained internal failures yield a Report
// with an Unknown verdict and partial statistics instead of an error.
func (rf *Refinement) CheckWith(m *engine.Meter) (*Report, error) {
	if rf.Env != nil && len(rf.Env.Fairness) > 0 {
		return nil, fmt.Errorf("refinement %s: E must be a safety property", rf.Name)
	}
	if len(rf.High.Internals) > 0 && rf.Mapping == nil {
		return nil, fmt.Errorf("refinement %s: High has internals %v: refinement mapping required",
			rf.Name, rf.High.Internals)
	}
	r := &Report{
		TheoremName: rf.Name + " (Corollary)",
		Valid:       true,
		Conclusion:  "(E -+> M') => (E -+> M)",
	}
	end := obs.SpanFromMeter(m, "corollary:"+rf.Name)
	err := rf.checkBoth(r, m)
	end()
	return finishReport(r, m, err)
}

// checkBoth runs hypotheses (a) and (b), accumulating results into r.
func (rf *Refinement) checkBoth(r *Report, m *engine.Meter) error {
	if err := rf.checkHypA(r, m); err != nil {
		return err
	}
	return rf.checkHypB(r, m)
}

// checkHypA discharges (a) E+v ∧ C(M') ⇒ C(M), via the +v monitor product
// over the graph of C(M') with environment variables unconstrained.
func (rf *Refinement) checkHypA(r *Report, m *engine.Meter) error {
	defer obs.SpanFromMeter(m, "hyp-a")()
	baseSys := &ts.System{
		Name:       rf.Name + "/low-closure",
		Components: []*spec.Component{rf.Low.SafetyOnly()},
		Domains:    rf.Domains,
		MaxStates:  rf.MaxStates,
		Workers:    rf.Workers,
		Cache:      rf.Cache,
		Resume:     rf.Resume,
	}
	baseG, err := baseSys.BuildWith(m)
	if err != nil {
		return fmt.Errorf("refinement %s: building C(M') graph: %w", rf.Name, err)
	}
	r.noteStates(baseG.NumStates())
	var envInit form.Expr
	var envSquares []form.Expr
	if rf.Env != nil {
		envInit = rf.Env.Init
		envSquares = []form.Expr{rf.Env.SquareExpr()}
	}
	prod, err := ts.Product(baseG, []*ts.Monitor{ts.PlusMonitor(plusVar, envInit, envSquares, rf.plusSub())})
	if err != nil {
		return fmt.Errorf("refinement %s: +v product: %w", rf.Name, err)
	}
	r.noteStates(prod.NumStates())
	resA, err := check.SafetyUnder(prod, rf.High.SafetyOnly().SafetyFormula(), rf.Mapping)
	if err != nil {
		return fmt.Errorf("refinement %s hypothesis (a): %w", rf.Name, err)
	}
	r.add("(a): E+v /\\ C(M') => C(M)", resA.Holds, resA.String())
	return nil
}

// checkHypB discharges (b) E ∧ M' ⇒ M with fairness.
func (rf *Refinement) checkHypB(r *Report, m *engine.Meter) error {
	defer obs.SpanFromMeter(m, "hyp-b")()
	fullSys := &ts.System{
		Name:       rf.Name + "/full",
		Components: []*spec.Component{rf.Low},
		Domains:    rf.Domains,
		MaxStates:  rf.MaxStates,
		Workers:    rf.Workers,
		Cache:      rf.Cache,
		Resume:     rf.Resume,
	}
	if rf.Env != nil {
		fullSys.Components = append([]*spec.Component{rf.Env}, fullSys.Components...)
	}
	fullG, err := fullSys.BuildWith(m)
	if err != nil {
		return fmt.Errorf("refinement %s: building full graph: %w", rf.Name, err)
	}
	r.noteStates(fullG.NumStates())
	resB, err := check.Component(fullG, rf.High, rf.Mapping)
	if err != nil {
		return fmt.Errorf("refinement %s hypothesis (b): %w", rf.Name, err)
	}
	r.add("(b): E /\\ M' => M (safety)", resB.Safety == nil || resB.Safety.Holds, safeString(resB.Safety))
	if resB.Liveness != nil {
		r.add("(b): E /\\ M' => M (liveness)", resB.Liveness.Holds, resB.Liveness.String())
	}
	return nil
}
