package ag

import (
	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/state"
	"opentla/internal/value"
)

// actionImplies checks ⊨ A ⇒ B for two actions over all pairs of states
// whose unprimed variables are vars and whose primed variables are primed,
// with values drawn from the domains. It is exact for finite domains.
func actionImplies(a, b form.Expr, vars, primed []string, domains map[string][]value.Value) (bool, error) {
	holds := true
	var evalErr error
	value.ForEachAssignment(vars, domains, func(fromA map[string]value.Value) bool {
		from := state.New(fromA)
		value.ForEachAssignment(primed, domains, func(toA map[string]value.Value) bool {
			to := from.WithAll(toA)
			st := state.Step{From: from, To: to}
			av, err := form.EvalBool(a, st, nil)
			if err != nil {
				evalErr = err
				return false
			}
			if !av {
				return true
			}
			bv, err := form.EvalBool(b, st, nil)
			if err != nil {
				evalErr = err
				return false
			}
			if !bv {
				holds = false
				return false
			}
			return true
		})
		return holds && evalErr == nil
	})
	if evalErr != nil {
		return false, evalErr
	}
	return holds, nil
}

// ValidOnUniverse checks ⊨ f restricted to the finite universe of lassos
// over the given variables and domains with the given shape bounds. It
// returns a violating lasso (nil if none). This is the semantic "validity"
// used to cross-check the Composition Theorem and Propositions 3 and 4 on
// small instances.
func ValidOnUniverse(f form.Formula, vars []string, domains map[string][]value.Value,
	maxPrefix, maxCycle int) (*state.Lasso, error) {
	ctx := form.NewCtx(domains)
	universe := check.AllStates(vars, domains)
	var violation *state.Lasso
	var evalErr error
	check.ForAllLassos(universe, maxPrefix, maxCycle, func(l *state.Lasso) bool {
		ok, err := f.Eval(ctx, l)
		if err != nil {
			evalErr = err
			return false
		}
		if !ok {
			violation = l
			return false
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return violation, nil
}
