// Package ag implements the assumption/guarantee reasoning of Abadi &
// Lamport, "Open Systems in TLA" (1994): the Composition Theorem (§5), its
// refinement Corollary, and checkable forms of Propositions 1–4.
//
// Each hypothesis of the theorem asserts that a complete system satisfies a
// property (§5), so the driver discharges hypotheses by explicit-state model
// checking over the conjunction of the components' specifications, exactly
// as the paper's proof sketch (Fig. 9) does by hand: Propositions 1 and 2
// remove closures and quantifiers (we check with internal variables visible
// and discharge the conclusion's internals with a refinement mapping), and
// the +v hypothesis is checked both directly (with a +v monitor product)
// and via the paper's route through Propositions 3 and 4.
package ag

import (
	"fmt"
	"sort"
	"strings"

	"opentla/internal/check"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/obs"
	"opentla/internal/reduce"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
	"opentla/internal/vet"
)

// plusVar is the monitor variable recording whether the conclusion's
// environment assumption is still alive in the +v product (invalid as a TLA
// identifier, so it cannot collide with system variables).
const plusVar = "$plusAlive"

// Pair is one device's assumption/guarantee specification E_j ⊳ M_j.
// Exactly one of Sys or Constraints should describe the guarantee:
//
//   - Sys is a canonical component specification;
//   - Constraints is a raw safety guarantee such as the interleaving
//     assumption G = Disjoint(...) — the paper's conditional-implementation
//     device "let M_1 = G and E_1 = true, since true ⊳ G equals G" (§5).
type Pair struct {
	Name string
	// Env is the assumption E_j; nil means TRUE. It must be a safety
	// property (no fairness) with no internal variables, the form the
	// paper prescribes for environment assumptions (§3).
	Env *spec.Component
	// Sys is the guarantee M_j as a canonical component.
	Sys *spec.Component
	// Constraints is a guarantee given as per-step constraints (each must
	// already allow its intended stuttering, e.g. via form.Square).
	Constraints []ts.StepConstraint
}

// Conclusion is the specification E ⊳ M the composition should implement.
type Conclusion struct {
	// Env is the conclusion's environment assumption E (safety, no
	// internals); nil means TRUE.
	Env *spec.Component
	// Sys is the conclusion's guarantee M.
	Sys *spec.Component
	// Mapping is a refinement mapping discharging Sys's internal
	// variables: abstract internal variable → state function over the
	// composition's variables (§A.4). Required if Sys has internals.
	Mapping map[string]form.Expr
	// PlusSub overrides the state function v of the hypothesis C(E)+v.
	// The default is the tuple of all non-internal variables of the
	// composition (e.g. ⟨i, o, z⟩ in Fig. 9).
	PlusSub form.Expr
}

// Theorem is an instance of the Composition Theorem:
// ⋀_j (E_j ⊳ M_j) ⇒ (E ⊳ M).
type Theorem struct {
	Name    string
	Pairs   []Pair
	Concl   Conclusion
	Domains map[string][]value.Value
	// MaxStates bounds each constructed state graph.
	MaxStates int
	// Workers is the goroutine count used to explore each state graph
	// (0 = GOMAXPROCS). The verdict and every counterexample are identical
	// at any setting.
	Workers int
	// Cache, when non-nil, is consulted before each graph construction and
	// persisted after (see ts.GraphCache).
	Cache ts.GraphCache
	// Resume, when true (with Cache set), continues interrupted graph
	// builds from their saved checkpoints.
	Resume bool
	// Reduce selects state-space reductions (POR and/or symmetry) for the
	// safety-only graphs of the check — the closure LHS, the guarantees-only
	// graph, and the +v monitor base. Hypothesis 2b needs fairness, so its
	// full graph is never reduced. Requested modes that fail validation
	// (a symmetry group the system or properties do not respect, step
	// constraints the POR analysis cannot read) are disabled with a
	// flight-recorder note rather than erroring: reduction is an
	// optimization, and the verdict is identical either way.
	Reduce reduce.Options
	// Symmetry declares the permutation group for Reduce.Sym.
	Symmetry *reduce.Symmetry

	// rd is the validated reduction configuration for this check run,
	// resolved once by buildReduce before any graph is built.
	rd *reduce.Config
}

// HypothesisResult reports one discharged (or failed) proof obligation.
type HypothesisResult struct {
	Name   string
	Holds  bool
	Detail string
}

// Report collects the outcome of checking all hypotheses.
type Report struct {
	TheoremName string
	Hypotheses  []HypothesisResult
	// Valid is true iff every hypothesis holds, in which case the
	// Composition Theorem yields the Conclusion formula.
	Valid bool
	// Verdict is the three-valued outcome: Holds (all hypotheses
	// discharged), Violated (some hypothesis failed with a counterexample),
	// or Unknown (the check was aborted before deciding).
	Verdict engine.Verdict
	// Unknown gives the reason when Verdict is engine.Unknown (budget
	// exhaustion, cancellation, or a contained internal failure).
	Unknown string
	// Stats snapshots the governing meter when the check finished, partial
	// results included.
	Stats engine.RunStats
	// Conclusion is the established formula, rendered for the report
	// footer (defaults to the Composition Theorem's conclusion).
	Conclusion string
	// States records the size of the largest graph explored.
	States int
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Composition Theorem check: %s\n", r.TheoremName)
	for _, h := range r.Hypotheses {
		status := "OK  "
		if !h.Holds {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "  [%s] %s", status, h.Name)
		if h.Detail != "" && !h.Holds {
			fmt.Fprintf(&sb, "\n        %s", strings.ReplaceAll(h.Detail, "\n", "\n        "))
		}
		sb.WriteByte('\n')
	}
	switch {
	case r.Verdict == engine.Unknown:
		fmt.Fprintf(&sb, "UNKNOWN: %s\n  partial progress: %s\n", r.Unknown, r.Stats)
	case r.Valid:
		concl := r.Conclusion
		if concl == "" {
			concl = "/\\_j (Ej -+> Mj) => (E -+> M)"
		}
		fmt.Fprintf(&sb, "VALID: %s  (%d states max)\n", concl, r.States)
	default:
		sb.WriteString("NOT ESTABLISHED\n")
	}
	return sb.String()
}

// finishReport settles the report's verdict from the meter and the error,
// if any, of the check body. Budget exhaustion, cancellation, and contained
// engine failures become an Unknown verdict carrying partial statistics;
// any other error is genuine and propagated.
func finishReport(r *Report, m *engine.Meter, err error) (*Report, error) {
	r.Stats = m.Stats()
	if err != nil {
		if reason, _, ok := engine.AsUnknown(err); ok {
			r.Valid = false
			r.Verdict = engine.Unknown
			r.Unknown = reason
			// Terminal flight-recorder entry: contained engine failures
			// never pass through Meter.fail, so note the reason here.
			m.Note("unknown-verdict", reason)
			return r, nil
		}
		return nil, err
	}
	if r.Valid {
		r.Verdict = engine.Holds
	} else {
		r.Verdict = engine.Violated
	}
	return r, nil
}

func (r *Report) add(name string, holds bool, detail string) {
	r.Hypotheses = append(r.Hypotheses, HypothesisResult{Name: name, Holds: holds, Detail: detail})
	if !holds {
		r.Valid = false
	}
}

// visibleVars returns the non-internal variables of the whole composition,
// the default subscript of the C(E)+v hypothesis.
func (th *Theorem) visibleVars() []string {
	set := make(map[string]bool)
	addComp := func(c *spec.Component) {
		if c == nil {
			return
		}
		for _, v := range c.Inputs {
			set[v] = true
		}
		for _, v := range c.Outputs {
			set[v] = true
		}
	}
	for _, p := range th.Pairs {
		addComp(p.Env)
		addComp(p.Sys)
		for _, sc := range p.Constraints {
			for _, v := range form.AllVars(sc.Action) {
				set[v] = true
			}
		}
	}
	addComp(th.Concl.Env)
	addComp(th.Concl.Sys)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (th *Theorem) plusSub() form.Expr {
	if th.Concl.PlusSub != nil {
		return th.Concl.PlusSub
	}
	return form.VarTuple(th.visibleVars()...)
}

// guaranteeComponents returns the Sys components of all pairs, optionally
// stripped of fairness, and the union of all pairs' step constraints.
func (th *Theorem) guaranteeComponents(safetyOnly bool) ([]*spec.Component, []ts.StepConstraint) {
	var comps []*spec.Component
	var cons []ts.StepConstraint
	for _, p := range th.Pairs {
		if p.Sys != nil {
			if safetyOnly {
				comps = append(comps, p.Sys.SafetyOnly())
			} else {
				comps = append(comps, p.Sys)
			}
		}
		cons = append(cons, p.Constraints...)
	}
	return comps, cons
}

// lhsSystem builds the complete system for a hypothesis's left-hand side.
// withEnv includes the conclusion's environment assumption as a component;
// safetyOnly strips fairness (for hypotheses about closures).
func (th *Theorem) lhsSystem(name string, withEnv, safetyOnly bool) *ts.System {
	comps, cons := th.guaranteeComponents(safetyOnly)
	if withEnv && th.Concl.Env != nil {
		env := th.Concl.Env
		if safetyOnly {
			env = env.SafetyOnly()
		}
		comps = append([]*spec.Component{env}, comps...)
	}
	sys := &ts.System{
		Name:        name,
		Components:  comps,
		Constraints: cons,
		Domains:     th.Domains,
		MaxStates:   th.MaxStates,
		Workers:     th.Workers,
		Cache:       th.Cache,
		Resume:      th.Resume,
	}
	// Reduction only for safety graphs: reduced graphs refuse fair-lasso
	// search (see check.FindFairLasso), and H2b's full LHS needs it.
	if safetyOnly {
		sys.Reduce = th.rd
	}
	return sys
}

// propertyExprs collects every expression that will be evaluated as (part
// of) a property on a reduced graph: the pairs' assumptions, the
// conclusion's assumption and (mapping-substituted) guarantee, the mapping
// state functions themselves, the +v subscript, and Proposition 4's
// Disjoint(e, m). A declared symmetry must leave all of them invariant for
// canonicalization to preserve verdicts, and their variables are exactly
// what POR must keep visible.
func (th *Theorem) propertyExprs() []form.Expr {
	var out []form.Expr
	addComp := func(c *spec.Component, mapping map[string]form.Expr) {
		if c == nil {
			return
		}
		add := func(e form.Expr) {
			if e == nil {
				return
			}
			if mapping != nil {
				e = e.Subst(mapping)
			}
			out = append(out, e)
		}
		add(c.Init)
		for _, a := range c.Actions {
			add(a.Def)
		}
	}
	for _, p := range th.Pairs {
		addComp(p.Env, nil)
	}
	addComp(th.Concl.Env, nil)
	addComp(th.Concl.Sys, th.Concl.Mapping)
	for _, e := range th.Concl.Mapping {
		out = append(out, e)
	}
	out = append(out, th.plusSub())
	if eVars, mVars := th.conclusionInterface(); len(eVars) > 0 && len(mVars) > 0 {
		out = append(out, form.DisjointSteps(eVars, mVars)...)
	}
	return out
}

// buildReduce resolves the requested reductions into a validated config, or
// nil when nothing (usable) was requested. Unlike ts.System — where an
// invalid symmetry declaration is a hard error — a theorem check silently
// drops modes that fail validation, noting why: the reduced and full checks
// decide the same question.
func (th *Theorem) buildReduce(m *engine.Meter) *reduce.Config {
	if !th.Reduce.Any() {
		return nil
	}
	opts := th.Reduce
	props := th.propertyExprs()
	if opts.Sym {
		sym := th.Symmetry
		disable := func(why string) {
			m.Note("reduce", fmt.Sprintf("%s: symmetry disabled: %s", th.Name, why))
			opts.Sym = false
		}
		if sym == nil {
			disable("no symmetry group declared")
		} else {
			for _, e := range props {
				if err := sym.CheckValueInvariant(e); err != nil {
					disable(fmt.Sprintf("property %s: %v", e, err))
					break
				}
				if err := sym.CheckBlockInvariant(e); err != nil {
					disable(fmt.Sprintf("property %s: %v", e, err))
					break
				}
			}
		}
		// Dry-run the system-level validation on both reduced LHS shapes
		// (with and without the conclusion's environment): BuildWith errors
		// on an invalid declaration, and a graceful disable must happen here.
		for _, withEnv := range []bool{true, false} {
			if !opts.Sym {
				break
			}
			sys := th.lhsSystem(th.Name+"/reduce-dryrun", withEnv, true)
			steps := make([]reduce.NamedExpr, 0, len(sys.Constraints))
			for _, sc := range sys.Constraints {
				steps = append(steps, reduce.NamedExpr{Name: sc.Name, E: sc.Action})
			}
			inits := make([]reduce.NamedExpr, 0, len(sys.InitConstraints))
			for i, ic := range sys.InitConstraints {
				inits = append(inits, reduce.NamedExpr{Name: fmt.Sprintf("init-%d", i), E: ic})
			}
			if err := sym.Validate(sys.Components, steps, inits, sys.Domains); err != nil {
				disable(err.Error())
			}
		}
	}
	if !opts.Any() {
		return nil
	}
	visible := make(map[string]bool)
	for _, e := range props {
		for _, v := range form.AllVars(e) {
			visible[v] = true
		}
	}
	vis := make([]string, 0, len(visible))
	for v := range visible {
		vis = append(vis, v)
	}
	sort.Strings(vis)
	return &reduce.Config{Options: opts, Symmetry: th.Symmetry, Visible: vis}
}

// validate checks the structural requirements of the theorem instance.
func (th *Theorem) validate() error {
	for _, p := range th.Pairs {
		if p.Env != nil {
			if len(p.Env.Fairness) > 0 {
				return fmt.Errorf("pair %s: environment assumptions must be safety properties (§3)", p.Name)
			}
			if len(p.Env.Internals) > 0 {
				return fmt.Errorf("pair %s: environment assumptions must not have internal variables", p.Name)
			}
		}
		if p.Sys == nil && len(p.Constraints) == 0 {
			return fmt.Errorf("pair %s: no guarantee (need Sys or Constraints)", p.Name)
		}
	}
	if th.Concl.Sys == nil {
		return fmt.Errorf("conclusion has no guarantee M")
	}
	if th.Concl.Env != nil {
		if len(th.Concl.Env.Fairness) > 0 {
			return fmt.Errorf("conclusion: environment assumption must be a safety property (§3)")
		}
		if len(th.Concl.Env.Internals) > 0 {
			return fmt.Errorf("conclusion: environment assumption must not have internal variables")
		}
	}
	if len(th.Concl.Sys.Internals) > 0 && th.Concl.Mapping == nil {
		return fmt.Errorf("conclusion guarantee %s has internal variables %v: a refinement mapping is required",
			th.Concl.Sys.Name, th.Concl.Sys.Internals)
	}
	// Canonical-form gate: a component that writes unowned variables or
	// breaks its partition would still model-check — to a meaningless
	// verdict — so error-severity analyzer findings refuse the check.
	if res := th.Vet(); res.HasErrors() {
		return fmt.Errorf("theorem is not in canonical form (%d vet errors; run specvet for the full list): %s",
			res.Errors(), res.Filter(vet.Error)[0])
	}
	return nil
}

// Check discharges the hypotheses of the Composition Theorem:
//
//	(1)  ⊨ C(E) ∧ ⋀_j C(M_j) ⇒ E_i            for each pair i
//	(2a) ⊨ C(E)+v ∧ ⋀_j C(M_j) ⇒ C(M)
//	(2b) ⊨ E ∧ ⋀_j M_j ⇒ M
//
// Hypothesis 2a is checked twice: directly, by running a +v monitor in
// product with the graph of ⋀ C(M_j) (environment variables unconstrained),
// and via the paper's own route — Proposition 3 reduces it to the plain
// implication C(E) ∧ ⋀C(M_j) ⇒ C(M) plus the orthogonality side conditions
// of Proposition 4. Both must agree for the report to be Valid.
//
// Check runs without resource limits; use CheckWith to govern the check
// with a budget or cancellation.
func (th *Theorem) Check() (*Report, error) {
	return th.CheckWith(engine.NoLimit())
}

// CheckWith discharges the hypotheses under the given resource meter. All
// graph construction and checking draws from the shared meter; exhaustion,
// cancellation, and contained internal failures yield a Report with an
// Unknown verdict and partial statistics instead of an error.
func (th *Theorem) CheckWith(m *engine.Meter) (*Report, error) {
	if err := th.validate(); err != nil {
		return nil, err
	}
	end := obs.SpanFromMeter(m, "theorem:"+th.Name)
	th.rd = th.buildReduce(m)
	r := &Report{TheoremName: th.Name, Valid: true}
	err := th.checkAll(r, m)
	end()
	return finishReport(r, m, err)
}

// checkAll runs every hypothesis check, accumulating results into r.
func (th *Theorem) checkAll(r *Report, m *engine.Meter) error {
	// --- Graph of C(E) ∧ ⋀ C(M_j): used by hypotheses (1) and 2a-route-A.
	closedSys := th.lhsSystem(th.Name+"/closure-lhs", true, true)
	closedG, err := closedSys.BuildWith(m)
	if err != nil {
		return fmt.Errorf("building closure LHS graph: %w", err)
	}
	r.noteStates(closedG.NumStates())

	// Hypothesis (1): each assumption is implied.
	if err := th.checkHyp1(r, m, closedG); err != nil {
		return err
	}

	// Hypothesis (2a), route A (Propositions 3 + 4).
	if err := th.checkHyp2aViaPropositions(r, closedG); err != nil {
		return err
	}

	// Hypothesis (2a), route B (direct +v monitor product).
	if err := th.checkHyp2aDirect(r, m); err != nil {
		return err
	}

	// Hypothesis (2b): full implication with fairness.
	return th.checkHyp2b(r, m)
}

func (r *Report) noteStates(n int) {
	if n > r.States {
		r.States = n
	}
}

// checkHyp1 discharges hypothesis (1) for every pair: each assumption is
// implied by the closure of the environment-constrained composition.
func (th *Theorem) checkHyp1(r *Report, m *engine.Meter, closedG *ts.Graph) error {
	defer obs.SpanFromMeter(m, "H1")()
	for _, p := range th.Pairs {
		if p.Env == nil {
			r.add(fmt.Sprintf("H1[%s]: C(E) /\\ conj C(Mj) => TRUE", p.Name), true, "trivial (E_i = TRUE)")
			continue
		}
		res, err := check.Safety(closedG, p.Env.SafetyFormula())
		if err != nil {
			return fmt.Errorf("hypothesis 1 for %s: %w", p.Name, err)
		}
		r.add(fmt.Sprintf("H1[%s]: C(E) /\\ conj C(Mj) => E_%s", p.Name, p.Name), res.Holds, res.String())
	}
	return nil
}

// CheckHyp2aPropositionsOnly discharges only hypothesis 2a, along the
// paper's Proposition 3+4 route. Exposed for the ablation benchmark
// comparing the two 2a routes.
func (th *Theorem) CheckHyp2aPropositionsOnly() (*Report, error) {
	if err := th.validate(); err != nil {
		return nil, err
	}
	m := engine.NoLimit()
	th.rd = th.buildReduce(m)
	r := &Report{TheoremName: th.Name + " (2a via Props 3+4)", Valid: true}
	return finishReport(r, m, func() error {
		closedSys := th.lhsSystem(th.Name+"/closure-lhs", true, true)
		closedG, err := closedSys.BuildWith(m)
		if err != nil {
			return err
		}
		r.noteStates(closedG.NumStates())
		return th.checkHyp2aViaPropositions(r, closedG)
	}())
}

// CheckHyp2aDirectOnly discharges only hypothesis 2a, with the direct +v
// monitor product. Exposed for the ablation benchmark.
func (th *Theorem) CheckHyp2aDirectOnly() (*Report, error) {
	if err := th.validate(); err != nil {
		return nil, err
	}
	m := engine.NoLimit()
	th.rd = th.buildReduce(m)
	r := &Report{TheoremName: th.Name + " (2a direct)", Valid: true}
	return finishReport(r, m, th.checkHyp2aDirect(r, m))
}

// checkHyp2aViaPropositions discharges 2a along the paper's route:
//
//	(i)  ⊨ C(E) ∧ ⋀C(M_j) ⇒ C(M)                       (Fig. 9, step 2.2)
//	(ii) ⋀C(M_j) ⇒ Disjoint(e, m) and the initial-state disjunction of
//	     Proposition 4, giving ⋀C(M_j) ⇒ C(E) ⊥ C(M)   (Fig. 9, step 2.1)
//	(iii) v contains every free variable of C(M)        (Prop. 3 side cond.)
//
// Proposition 3 then yields ⊨ C(E)+v ∧ ⋀C(M_j) ⇒ C(M).
func (th *Theorem) checkHyp2aViaPropositions(r *Report, closedG *ts.Graph) error {
	defer obs.SpanFromMeter(closedG.Meter(), "H2a-A")()
	m := th.Concl.Sys
	// (i) plain closure implication on the env-constrained graph.
	res, err := check.SafetyUnder(closedG, m.SafetyOnly().SafetyFormula(), th.Concl.Mapping)
	if err != nil {
		return fmt.Errorf("hypothesis 2a(i): %w", err)
	}
	r.add("H2a-A(i): C(E) /\\ conj C(Mj) => C(M)", res.Holds, res.String())

	// Graph of ⋀C(M_j) alone (environment unconstrained) for the side
	// conditions, which must hold without assuming E. Shares the closure
	// graph's meter so the whole check draws from one budget.
	rSys := th.lhsSystem(th.Name+"/guarantees-only", false, true)
	rG, err := rSys.BuildWith(closedG.Meter())
	if err != nil {
		return fmt.Errorf("building guarantees-only graph: %w", err)
	}
	r.noteStates(rG.NumStates())

	// (ii-a) Disjoint(e, m) where e/m are the conclusion's input/output
	// tuples (Proposition 4's interleaving requirement).
	eVars, mVars := th.conclusionInterface()
	if len(eVars) > 0 && len(mVars) > 0 {
		disj := form.Disjoint(eVars, mVars)
		dres, err := check.Safety(rG, disj)
		if err != nil {
			return fmt.Errorf("hypothesis 2a(ii) Disjoint: %w", err)
		}
		r.add("H2a-A(ii): conj C(Mj) => Disjoint(e, m)  [Prop 4]", dres.Holds, dres.String())
	} else {
		r.add("H2a-A(ii): Disjoint(e, m)  [Prop 4]", true, "trivial (empty interface)")
	}

	// (ii-b) Initial-state disjunction of Proposition 4.
	initOK := true
	initDetail := ""
	var initPreds []form.Expr
	if th.Concl.Env != nil && th.Concl.Env.Init != nil {
		initPreds = append(initPreds, th.Concl.Env.Init)
	}
	if m.Init != nil {
		mi := m.Init
		if th.Concl.Mapping != nil {
			mi = mi.Subst(th.Concl.Mapping)
		}
		initPreds = append(initPreds, mi)
	}
	if len(initPreds) > 0 {
		disjInit := form.Or(initPreds...)
		for _, id := range rG.Inits {
			ok, err := form.EvalStateBool(disjInit, rG.States[id])
			if err != nil {
				return fmt.Errorf("hypothesis 2a(ii) init disjunction: %w", err)
			}
			if !ok {
				initOK = false
				initDetail = fmt.Sprintf("initial state %s satisfies neither Init_E nor Init_M", rG.States[id])
				break
			}
		}
	}
	r.add("H2a-A(ii): Init_E \\/ Init_M at start  [Prop 4]", initOK, initDetail)

	// (iii) Prop 3 side condition: v ⊇ free variables of M's closure.
	vVars := form.AllVars(th.plusSub())
	vSet := make(map[string]bool, len(vVars))
	for _, v := range vVars {
		vSet[v] = true
	}
	var missing []string
	for _, v := range th.conclusionGuaranteeFreeVars() {
		if !vSet[v] {
			missing = append(missing, v)
		}
	}
	r.add("H2a-A(iii): v contains the free variables of C(M)  [Prop 3]",
		len(missing) == 0, fmt.Sprintf("missing from v: %v", missing))
	return nil
}

// conclusionInterface returns the conclusion's environment-output tuple e
// and guarantee-output tuple m.
func (th *Theorem) conclusionInterface() (eVars, mVars []string) {
	if th.Concl.Env != nil {
		eVars = th.Concl.Env.Outputs
	}
	mVars = th.Concl.Sys.Outputs
	return eVars, mVars
}

// conclusionGuaranteeFreeVars returns the free (visible) variables of the
// conclusion guarantee's closure ∃y : C(M) — its inputs and outputs.
func (th *Theorem) conclusionGuaranteeFreeVars() []string {
	m := th.Concl.Sys
	out := make([]string, 0, len(m.Inputs)+len(m.Outputs))
	out = append(out, m.Inputs...)
	out = append(out, m.Outputs...)
	return out
}

// checkHyp2aDirect discharges 2a with a +v monitor: the base graph is
// ⋀C(M_j) with environment variables unconstrained; the monitor enforces
// "C(E) held for a prefix, after which v froze"; C(M) is then checked on
// the product.
func (th *Theorem) checkHyp2aDirect(r *Report, m *engine.Meter) error {
	defer obs.SpanFromMeter(m, "H2a-B")()
	baseSys := th.lhsSystem(th.Name+"/plus-base", false, true)
	baseG, err := baseSys.BuildWith(m)
	if err != nil {
		return fmt.Errorf("building +v base graph: %w", err)
	}
	r.noteStates(baseG.NumStates())

	var envInit form.Expr
	var envSquares []form.Expr
	if th.Concl.Env != nil {
		envInit = th.Concl.Env.Init
		envSquares = []form.Expr{th.Concl.Env.SquareExpr()}
	}
	mon := ts.PlusMonitor(plusVar, envInit, envSquares, th.plusSub())
	prod, err := ts.Product(baseG, []*ts.Monitor{mon})
	if err != nil {
		return fmt.Errorf("+v monitor product: %w", err)
	}
	r.noteStates(prod.NumStates())

	res, err := check.SafetyUnder(prod, th.Concl.Sys.SafetyOnly().SafetyFormula(), th.Concl.Mapping)
	if err != nil {
		return fmt.Errorf("hypothesis 2a (direct): %w", err)
	}
	r.add("H2a-B: C(E)+v /\\ conj C(Mj) => C(M)  [direct monitor]", res.Holds, res.String())
	return nil
}

// checkHyp2b discharges ⊨ E ∧ ⋀M_j ⇒ M with fairness on both sides.
func (th *Theorem) checkHyp2b(r *Report, m *engine.Meter) error {
	defer obs.SpanFromMeter(m, "H2b")()
	fullSys := th.lhsSystem(th.Name+"/full-lhs", true, false)
	fullG, err := fullSys.BuildWith(m)
	if err != nil {
		return fmt.Errorf("building full LHS graph: %w", err)
	}
	r.noteStates(fullG.NumStates())

	res, err := check.Component(fullG, th.Concl.Sys, th.Concl.Mapping)
	if err != nil {
		return fmt.Errorf("hypothesis 2b: %w", err)
	}
	r.add("H2b: E /\\ conj Mj => M  (safety)", res.Safety == nil || res.Safety.Holds, safeString(res.Safety))
	if res.Liveness != nil {
		r.add("H2b: E /\\ conj Mj => M  (liveness)", res.Liveness.Holds, res.Liveness.String())
	} else if len(th.Concl.Sys.Fairness) > 0 && res.Safety != nil && !res.Safety.Holds {
		r.add("H2b: E /\\ conj Mj => M  (liveness)", false, "skipped: safety part failed")
	}
	return nil
}

func safeString(s *check.SafetyResult) string {
	if s == nil {
		return ""
	}
	return s.String()
}
