// Package serial implements an interface refinement in the sense of §2.3
// of Abadi & Lamport, "Open Systems in TLA": a wide handshake channel w
// (carrying values 0..3) implemented by a serial bit channel l that
// transmits each value as two bits (high bit first), with a sender,
// a receiver/assembler, and a consumer.
//
// The low-level complete system implements the high-level specification
// "w behaves like a handshake channel carrying 0..3" — the relation
// between the low-level tuple (l, internal buffers) and the high-level
// interface w is exactly the conditional-implementation formula G of
// §2.3's second bullet, realised here as a refinement claim checked by the
// model checker. The receiver also satisfies the assumption/guarantee
// specification "serial discipline ⊳ wide discipline".
package serial

import (
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// L is the serial bit channel; W is the wide output channel.
var (
	L = handshake.Chan("l")
	W = handshake.Chan("w")
)

// WideVals returns the wide value domain 0..3.
func WideVals() []value.Value { return value.Ints(0, 3) }

// Domains returns the variable domains of the serial system.
func Domains() map[string][]value.Value {
	d := L.Domains(value.Bits())
	for k, v := range W.Domains(WideVals()) {
		d[k] = v
	}
	d["sbuf"] = value.Seqs(value.Bits(), 2) // sender's unsent bits
	d["racc"] = value.Seqs(value.Bits(), 1) // receiver's assembled bits
	return d
}

// bitsOf decomposes v ∈ 0..3 into ⟨hi, lo⟩.
func bitsOf(v int64) value.Value {
	return value.Tuple(value.Int(v/2), value.Int(v%2))
}

// Sender returns the serial sender: it owns l.snd and an internal bit
// buffer sbuf. When idle it may choose any value, loading its two bits;
// it then transmits them in order over l. Transmission is weakly fair;
// choosing is not (the sender may stay idle).
func Sender() *spec.Component {
	sbuf := form.Var("sbuf")
	idle := form.Eq(form.Len(sbuf), form.IntC(0))

	var chooseDisjuncts []form.Expr
	for v := int64(0); v <= 3; v++ {
		chooseDisjuncts = append(chooseDisjuncts, form.And(
			idle,
			form.Eq(form.PrimedVar("sbuf"), form.Const(bitsOf(v))),
			form.Unchanged(L.SndVars()...),
		))
	}
	choose := form.Or(chooseDisjuncts...)

	sendBit := form.And(
		form.Gt(form.Len(sbuf), form.IntC(0)),
		handshake.Send(form.Head(sbuf), L),
		form.Eq(form.PrimedVar("sbuf"), form.Tail(sbuf)),
	)

	chooseExec := func(s *state.State) []map[string]value.Value {
		if s.MustGet("sbuf").Len() != 0 {
			return nil
		}
		out := make([]map[string]value.Value, 0, 4)
		for v := int64(0); v <= 3; v++ {
			out = append(out, map[string]value.Value{"sbuf": bitsOf(v)})
		}
		return out
	}
	sendExec := func(s *state.State) []map[string]value.Value {
		buf := s.MustGet("sbuf")
		if buf.Len() == 0 {
			return nil
		}
		sig, _ := s.MustGet(L.Sig()).AsInt()
		ack, _ := s.MustGet(L.Ack()).AsInt()
		if sig != ack {
			return nil
		}
		head, _ := buf.Head()
		tail, _ := buf.Tail()
		return []map[string]value.Value{{
			L.Val(): head, L.Sig(): value.Int(1 - sig), "sbuf": tail,
		}}
	}
	return &spec.Component{
		Name:      "serial-sender",
		Inputs:    []string{L.Ack()},
		Outputs:   []string{L.Sig(), L.Val()},
		Internals: []string{"sbuf"},
		Init:      form.And(L.Init(), form.Eq(sbuf, form.Const(value.Empty))),
		Actions: []spec.Action{
			{Name: "Choose", Def: choose, Exec: chooseExec},
			{Name: "SendBit", Def: sendBit, Exec: sendExec},
		},
		Fairness: []spec.Fairness{
			{Kind: form.Weak, Action: sendBit},
		},
	}
}

// Receiver returns the assembler: it acknowledges bits on l, buffers the
// high bit in racc, and on receiving the low bit delivers the assembled
// value on the wide channel w (acknowledging l and sending on w in one
// step — both wires are its outputs).
func Receiver() *spec.Component {
	racc := form.Var("racc")
	empty := form.Eq(form.Len(racc), form.IntC(0))

	recvHi := form.And(
		empty,
		handshake.AckAction(L),
		form.Eq(form.PrimedVar("racc"), form.TupleOf(form.Var(L.Val()))),
		form.Unchanged(W.Vars()...),
	)
	assembled := form.Add(
		form.Mul(form.Head(racc), form.IntC(2)),
		form.Var(L.Val()),
	)
	deliver := form.And(
		form.Gt(form.Len(racc), form.IntC(0)),
		handshake.AckAction(L),
		handshake.Send(assembled, W),
		form.Eq(form.PrimedVar("racc"), form.Const(value.Empty)),
	)

	hiExec := func(s *state.State) []map[string]value.Value {
		if s.MustGet("racc").Len() != 0 {
			return nil
		}
		sig, _ := s.MustGet(L.Sig()).AsInt()
		ack, _ := s.MustGet(L.Ack()).AsInt()
		if sig == ack {
			return nil
		}
		return []map[string]value.Value{{
			L.Ack(): value.Int(1 - ack),
			"racc":  value.Tuple(s.MustGet(L.Val())),
		}}
	}
	deliverExec := func(s *state.State) []map[string]value.Value {
		buf := s.MustGet("racc")
		if buf.Len() == 0 {
			return nil
		}
		lsig, _ := s.MustGet(L.Sig()).AsInt()
		lack, _ := s.MustGet(L.Ack()).AsInt()
		wsig, _ := s.MustGet(W.Sig()).AsInt()
		wack, _ := s.MustGet(W.Ack()).AsInt()
		if lsig == lack || wsig != wack {
			return nil
		}
		hi, _ := buf.Head()
		hiInt, _ := hi.AsInt()
		lo, _ := s.MustGet(L.Val()).AsInt()
		return []map[string]value.Value{{
			L.Ack(): value.Int(1 - lack),
			W.Val(): value.Int(2*hiInt + lo),
			W.Sig(): value.Int(1 - wsig),
			"racc":  value.Empty,
		}}
	}
	return &spec.Component{
		Name:      "serial-receiver",
		Inputs:    []string{L.Sig(), L.Val(), W.Ack()},
		Outputs:   []string{L.Ack(), W.Sig(), W.Val()},
		Internals: []string{"racc"},
		Init:      form.And(W.Init(), form.Eq(racc, form.Const(value.Empty))),
		Actions: []spec.Action{
			{Name: "RecvHi", Def: recvHi, Exec: hiExec},
			{Name: "Deliver", Def: deliver, Exec: deliverExec},
		},
		Fairness: []spec.Fairness{
			{Kind: form.Weak, Action: form.Or(recvHi, deliver)},
		},
	}
}

// Consumer returns the wide channel's consumer, acknowledging deliveries.
// fair adds weak fairness (needed for end-to-end liveness claims).
func Consumer(fair bool) *spec.Component {
	get := form.And(handshake.AckAction(W), form.Unchanged(L.Vars()...))
	c := &spec.Component{
		Name:    "consumer",
		Inputs:  []string{W.Sig(), W.Val(), L.Sig(), L.Ack(), L.Val()},
		Outputs: []string{W.Ack()},
		Actions: []spec.Action{{
			Name: "Get",
			Def:  get,
			Exec: func(s *state.State) []map[string]value.Value {
				sig, _ := s.MustGet(W.Sig()).AsInt()
				ack, _ := s.MustGet(W.Ack()).AsInt()
				if sig == ack {
					return nil
				}
				return []map[string]value.Value{{W.Ack(): value.Int(1 - ack)}}
			},
		}},
	}
	if fair {
		c.Fairness = []spec.Fairness{{Kind: form.Weak, Action: get}}
	}
	return c
}

// WideSpec returns the high-level specification of the interface: w
// behaves as a handshake channel carrying values 0..3 (safety only — the
// sender is free to stay idle). Its box is subscripted by w.snd, so it
// constrains only the wide interface.
func WideSpec() *spec.Component {
	return &spec.Component{
		Name:    "wide-channel-spec",
		Inputs:  []string{W.Ack()},
		Outputs: []string{W.Sig(), W.Val()},
		Init:    W.Init(),
		Actions: []spec.Action{{
			Name: "WSend",
			Def:  handshake.SendAny(W, WideVals()),
		}},
	}
}

// SerialEnv returns the receiver's environment assumption: bits arrive on
// l by the handshake discipline and deliveries on w are acknowledged.
func SerialEnv() *spec.Component {
	put := form.And(handshake.SendAny(L, value.Bits()), form.Unchanged(W.Vars()...))
	get := form.And(handshake.AckAction(W), form.Unchanged(L.Vars()...))
	return &spec.Component{
		Name:    "serial-env",
		Inputs:  []string{L.Ack(), W.Sig(), W.Val()},
		Outputs: []string{L.Sig(), L.Val(), W.Ack()},
		Init:    L.Init(),
		Actions: []spec.Action{
			{Name: "PutBit", Def: put},
			{Name: "Get", Def: get},
		},
	}
}

// System returns the closed serial system: sender, receiver, consumer.
func System(fairConsumer bool) *ts.System {
	return &ts.System{
		Name: "serial-closed",
		Components: []*spec.Component{
			Sender(), Receiver(), Consumer(fairConsumer),
		},
		Domains: Domains(),
	}
}

// InTransit returns the state function reconstructing the sequence of
// values currently inside the serial layer (oldest first), from the
// sender's unsent bits sbuf, the bit on the wire (when l is pending), and
// the receiver's buffered high bit racc. It is the refinement relation
// between the low-level tuple and the high-level pipeline — §2.3's
// interface-refinement G.
//
// Writing (s, w, r) for the bit counts in sbuf / on the wire / in racc,
// the reachable patterns and their decodings are:
//
//	(0,0,0) → ⟨⟩
//	(2,0,0) → ⟨sbuf⟩                     value loaded, nothing sent
//	(1,1,0) → ⟨2·l.val + sbuf₀⟩          hi on the wire, lo unsent
//	(0,1,1) → ⟨2·racc₀ + l.val⟩          hi received, lo on the wire
//	(1,0,1) → ⟨2·racc₀ + sbuf₀⟩          hi received, lo unsent
//	(2,1,1) → ⟨2·racc₀ + l.val⟩ ∘ ⟨sbuf⟩  two values in flight
func InTransit() form.Expr {
	sbuf := form.Var("sbuf")
	racc := form.Var("racc")
	haveR := form.Gt(form.Len(racc), form.IntC(0))

	// The half-assembled value at the receiver side, if any: its low bit
	// is on the wire when l is pending, otherwise still first in sbuf.
	loBit := form.If(L.Pending(), form.Var(L.Val()), form.Head(sbuf))
	receiverSeq := form.If(haveR,
		form.TupleOf(form.Add(form.Mul(form.Head(racc), form.IntC(2)), loBit)),
		form.EmptySeq)

	// The value still on the sender side, if any.
	pairVal := form.TupleOf(form.Add(
		form.Mul(form.Head(sbuf), form.IntC(2)),
		form.Head(form.Tail(sbuf)),
	))
	hiOnWire := form.TupleOf(form.Add(
		form.Mul(form.Var(L.Val()), form.IntC(2)),
		form.Head(sbuf),
	))
	senderSeq := form.If(form.Eq(form.Len(sbuf), form.IntC(2)),
		pairVal,
		form.If(form.And(form.Eq(form.Len(sbuf), form.IntC(1)), form.Not(haveR), L.Pending()),
			hiOnWire,
			form.EmptySeq))

	return form.Concat(receiverSeq, senderSeq)
}
