package serial

import (
	"testing"

	"opentla/internal/ag"
	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// TestSerialImplementsWideChannel: the closed serial system implements the
// high-level wide-channel specification on interface w (the §2.3 interface
// refinement, checked as a complete-system refinement).
func TestSerialImplementsWideChannel(t *testing.T) {
	g, err := System(false).Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial system: %d states, %d edges", g.NumStates(), g.NumEdges())
	res, err := check.Safety(g, WideSpec().SafetyFormula())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("serial system should implement the wide-channel spec:\n%s", res)
	}
}

// TestSerialValueCorrectness: the history of values chosen by the sender
// always equals the delivered history, the value in flight on w, and the
// value in transit through the serial layer:
//
//	chosen = delivered ∘ w-in-flight ∘ InTransit.
func TestSerialValueCorrectness(t *testing.T) {
	g, err := System(false).Build()
	if err != nil {
		t.Fatal(err)
	}
	wide := WideVals()
	histDom := value.Seqs(wide, 3)
	chosen := &ts.Monitor{
		Var:    "$chosen",
		Domain: histDom,
		Init: func(s *state.State) ([]value.Value, error) {
			return []value.Value{value.Empty}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			before := st.From.MustGet("sbuf")
			after := st.To.MustGet("sbuf")
			if before.Len() != 0 || after.Len() != 2 {
				return []value.Value{cur}, nil
			}
			if cur.Len() >= 3 {
				return nil, nil // truncate exploration
			}
			hi, _ := after.At(0)
			lo, _ := after.At(1)
			hiI, _ := hi.AsInt()
			loI, _ := lo.AsInt()
			nxt, _ := cur.Append(value.Int(2*hiI + loI))
			return []value.Value{nxt}, nil
		},
	}
	delivered := &ts.Monitor{
		Var:    "$delivered",
		Domain: histDom,
		Init: func(s *state.State) ([]value.Value, error) {
			return []value.Value{value.Empty}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			if st.From.MustGet(W.Ack()).Equal(st.To.MustGet(W.Ack())) {
				return []value.Value{cur}, nil
			}
			if cur.Len() >= 3 {
				return nil, nil
			}
			nxt, _ := cur.Append(st.From.MustGet(W.Val()))
			return []value.Value{nxt}, nil
		},
	}
	prod, err := ts.Product(g, []*ts.Monitor{chosen, delivered})
	if err != nil {
		t.Fatal(err)
	}
	wFlight := form.If(W.Pending(), form.TupleOf(form.Var(W.Val())), form.EmptySeq)
	inv := form.Eq(
		form.Var("$chosen"),
		form.Concat(form.Concat(form.Var("$delivered"), wFlight), InTransit()),
	)
	res, err := check.Invariant(prod, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("serial value-correctness invariant violated:\n%s", res)
	}
}

// TestSerialLiveness: with a fair consumer, a value in transit is
// eventually delivered (w.sig flips), and bits on l are eventually
// acknowledged.
func TestSerialLiveness(t *testing.T) {
	g, err := System(true).Build()
	if err != nil {
		t.Fatal(err)
	}
	inTransit := form.Gt(form.Len(InTransit()), form.IntC(0))
	res, err := check.Liveness(g, form.LeadsTo(inTransit, W.Pending()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("in-transit value should eventually be delivered:\n%s", res)
	}
	res, err = check.Liveness(g, form.LeadsTo(L.Pending(), L.Ready()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("serial bits should eventually be acknowledged:\n%s", res)
	}
}

// TestReceiverAGSpec: the receiver alone satisfies "serial discipline ⊳
// wide discipline" against the most general environment.
func TestReceiverAGSpec(t *testing.T) {
	sys := &ts.System{
		Name:       "receiver-alone",
		Components: []*spec.Component{Receiver()},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.WhilePlus(g, SerialEnv(), WideSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("SerialEnv -+> WideSpec should hold for the receiver:\n%s", res)
	}
}

// TestReceiverWireSafetyIsUnconditional documents a modeling observation
// the paper makes in §A.1: the *reason* a real queue (or here, a real
// assembler) needs its environment assumption is metastability — inputs
// changing at the wrong instant. In the interleaved formal model a step
// that reads and writes is atomic, so the receiver's *wire-level* safety
// holds even against a hostile environment; what the assumption buys at
// this level of abstraction is the value-correctness and liveness of the
// protocol, not wire safety. We assert the unconditional wire safety so a
// regression that weakens the receiver's guards is caught.
func TestReceiverWireSafetyIsUnconditional(t *testing.T) {
	sys := &ts.System{
		Name:       "receiver-alone",
		Components: []*spec.Component{Receiver()},
		Domains:    Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.Safety(g, WideSpec().SafetyFormula())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("receiver wire safety should hold even under a free environment:\n%s", res)
	}
}

// TestSerialMachineClosure: sender and receiver fairness are machine
// closed.
func TestSerialMachineClosure(t *testing.T) {
	for _, c := range []*spec.Component{Sender(), Receiver()} {
		res, err := ag.MachineClosure(c, Domains(), 0)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !res.Closed {
			t.Fatalf("%s should be machine closed; stuck at %s", c.Name, res.StuckState)
		}
	}
}
