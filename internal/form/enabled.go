package form

import (
	"fmt"
	"sort"

	"opentla/internal/state"
	"opentla/internal/value"
)

// maxEnabledBranches caps the up-front disjunction expansion of EnabledFn.
// Beyond it the action is pathological for static expansion and the
// per-call analysis of Enabled is the better trade.
const maxEnabledBranches = 256

// EnabledFn compiles Enabled(a, ·) for states binding exactly the variables
// of layout: the syntactic analysis Enabled repeats on every call —
// conjunct flattening, disjunction distribution, guard/assignment
// classification, primed-variable collection — runs once here, and the
// guard, assignment, and residual-conjunct evaluations run as compiled
// positional closures (see CompilePred). The returned function is
// semantically identical to Enabled: same verdicts, same error messages
// (failures re-derive through the interpreter), with states that do not
// match the layout delegated to Enabled itself.
//
// The returned function reuses internal scratch buffers and is NOT safe for
// concurrent use; compile one per goroutine. Domains are snapshotted at
// compile time, matching the usual construct-once use of Ctx.
func (c *Ctx) EnabledFn(a Expr, layout []string) func(s *state.State) (bool, error) {
	interp := func(s *state.State) (bool, error) { return c.Enabled(a, s) }
	budget := maxEnabledBranches
	flat, ok := expandEnabledBranches(flattenAnd(a, nil), nil, &budget)
	if !ok {
		return interp
	}
	comp := &compiler{pos: make(map[string]int, len(layout))}
	for i, v := range layout {
		comp.pos[v] = i
	}
	branches := make([]*enBranch, len(flat))
	for i, conjs := range flat {
		branches[i] = c.compileBranch(conjs, comp)
	}
	n := len(layout)
	scr := &enScratch{state: state.New(nil)}
	return func(s *state.State) (bool, error) {
		if s == nil || s.Len() != n {
			return interp(s)
		}
		for _, b := range branches {
			enabled, err := b.eval(c, s, scr)
			if err != nil {
				return false, err
			}
			if enabled {
				return true, nil
			}
		}
		return false, nil
	}
}

// expandEnabledBranches statically distributes the disjunctions of a
// conjunct list into pure-conjunction branches, in exactly the depth-first
// order enabledConj explores them at runtime (so verdicts and first-error
// behavior are preserved). It fails if the expansion exceeds the budget.
func expandEnabledBranches(conjs []Expr, out [][]Expr, budget *int) ([][]Expr, bool) {
	for i, cj := range conjs {
		or, ok := cj.(OrE)
		if !ok {
			continue
		}
		for _, branch := range or.Xs {
			sub := make([]Expr, 0, len(conjs)+1)
			sub = append(sub, conjs[:i]...)
			sub = flattenAnd(branch, sub)
			sub = append(sub, conjs[i+1:]...)
			var ok2 bool
			out, ok2 = expandEnabledBranches(sub, out, budget)
			if !ok2 {
				return nil, false
			}
		}
		return out, true
	}
	*budget--
	if *budget < 0 {
		return nil, false
	}
	return append(out, append([]Expr(nil), conjs...)), true
}

// enItem is one conjunct of a pure-conjunction branch, pre-classified. The
// items preserve the original conjunct order so guard failures, assignment
// conflicts, and evaluation errors surface exactly where the interpreted
// path would surface them.
type enItem struct {
	// Guard (primeless conjunct): evaluated on ⟨s, —⟩.
	guard boolFn
	gexpr Expr

	// Determined assignment x' = e: rhs evaluated on ⟨s, —⟩.
	det     bool
	rhs     valFn
	rhsExpr Expr
	slot    int           // distinct-variable slot this determination fills
	dup     bool          // a repeat determination: must agree with the slot
	domain  []value.Value // declared domain of x, nil if none
}

// enBranch is one compiled pure-conjunction branch of an Enabled query.
type enBranch struct {
	conjs    []Expr // original conjuncts, for the interpreted fallback
	fallback bool   // a variable is outside the layout: interpret

	items     []enItem
	domainErr error // free variable with no declared domain

	slotPos  []int           // layout position per determined slot
	rest     []enItem        // residual conjuncts (guard/gexpr fields), on ⟨s, cand⟩
	freePos  []int           // layout positions of the enumerated variables
	freeDoms [][]value.Value // their domains, aligned with freePos
}

// enScratch holds the per-call buffers an EnabledFn reuses across branches
// and calls (hence the no-concurrency contract).
type enScratch struct {
	vals    []value.Value
	detUps  []state.PosUpdate
	freeUps []state.PosUpdate
	freeIdx []int
	state   *state.State
}

// compileBranch classifies and compiles one pure-conjunction branch,
// mirroring enabledConj's pure-conjunction path.
func (c *Ctx) compileBranch(conjs []Expr, comp *compiler) *enBranch {
	b := &enBranch{conjs: conjs}
	slots := make(map[string]int)
	for _, cj := range conjs {
		if !HasPrimes(cj) {
			b.items = append(b.items, enItem{guard: comp.pred(cj, false), gexpr: cj})
			continue
		}
		if name, rhs, ok := determinedAssignment(cj); ok {
			pos, inLayout := comp.pos[name]
			if !inLayout {
				b.fallback = true
				return b
			}
			it := enItem{det: true, rhs: comp.val(rhs, false), rhsExpr: rhs, domain: c.Domains[name]}
			if slot, dup := slots[name]; dup {
				it.slot, it.dup = slot, true
			} else {
				it.slot = len(b.slotPos)
				slots[name] = it.slot
				b.slotPos = append(b.slotPos, pos)
			}
			b.items = append(b.items, it)
			continue
		}
		b.rest = append(b.rest, enItem{guard: comp.pred(cj, false), gexpr: cj})
	}
	primedSet := make(map[string]bool)
	for _, cj := range conjs {
		for _, v := range PrimedVars(cj) {
			primedSet[v] = true
		}
	}
	var free []string
	for v := range primedSet {
		if _, det := slots[v]; !det {
			free = append(free, v)
		}
	}
	sort.Strings(free)
	for _, v := range free {
		dom, err := c.Domain(v)
		if err != nil {
			if b.domainErr == nil {
				b.domainErr = fmt.Errorf("Enabled: %w", err)
			}
			continue
		}
		pos, inLayout := comp.pos[v]
		if !inLayout {
			b.fallback = true
			return b
		}
		b.freePos = append(b.freePos, pos)
		b.freeDoms = append(b.freeDoms, dom)
	}
	return b
}

// eval runs one compiled branch against s. Every step — guards, determined
// assignments, domain checks, candidate enumeration — happens in the same
// order as enabledConj, with compiled closures doing the evaluation and the
// interpreter re-deriving any compiled failure for its canonical error.
func (b *enBranch) eval(c *Ctx, s *state.State, scr *enScratch) (bool, error) {
	if b.fallback {
		return c.enabledConj(b.conjs, s)
	}
	st0 := state.Step{From: s}
	if cap(scr.vals) < len(b.slotPos) {
		scr.vals = make([]value.Value, len(b.slotPos))
	}
	vals := scr.vals[:len(b.slotPos)]
	for _, it := range b.items {
		if !it.det {
			ok, err := it.guard(st0)
			if err != nil {
				ok, err = EvalStateBool(it.gexpr, s)
				if err != nil {
					return false, err
				}
			}
			if !ok {
				return false, nil
			}
			continue
		}
		v, err := it.rhs(st0)
		if err != nil {
			v, err = it.rhsExpr.Eval(st0, nil)
			if err != nil {
				return false, err
			}
		}
		if it.dup {
			if !vals[it.slot].Equal(v) {
				return false, nil // conflicting determinations
			}
			continue
		}
		if it.domain != nil {
			inDomain := false
			for _, dv := range it.domain {
				if dv.Equal(v) {
					inDomain = true
					break
				}
			}
			if !inDomain {
				return false, nil
			}
		}
		vals[it.slot] = v
	}
	if b.domainErr != nil {
		return false, b.domainErr
	}
	// Candidate enumeration: mixed-radix over the free variables, last
	// variable fastest, over a single scratch state — the compiled twin of
	// enabledConj's positional loop.
	if cap(scr.detUps) < len(b.slotPos) {
		scr.detUps = make([]state.PosUpdate, len(b.slotPos))
	}
	detUps := scr.detUps[:len(b.slotPos)]
	for i, pos := range b.slotPos {
		detUps[i] = state.PosUpdate{Pos: pos, Val: vals[i]}
	}
	if cap(scr.freeUps) < len(b.freePos) {
		scr.freeUps = make([]state.PosUpdate, len(b.freePos))
		scr.freeIdx = make([]int, len(b.freePos))
	}
	freeUps := scr.freeUps[:len(b.freePos)]
	freeIdx := scr.freeIdx[:len(b.freePos)]
	for i, pos := range b.freePos {
		freeUps[i] = state.PosUpdate{Pos: pos}
		freeIdx[i] = 0
	}
	for {
		for i := range freeUps {
			freeUps[i].Val = b.freeDoms[i][freeIdx[i]]
		}
		s.OverwriteInto(scr.state, detUps, freeUps)
		st := state.Step{From: s, To: scr.state}
		sat := true
		for _, r := range b.rest {
			ok, err := r.guard(st)
			if err != nil {
				ok, err = EvalBool(r.gexpr, st, nil)
				if err != nil {
					return false, err
				}
			}
			if !ok {
				sat = false
				break
			}
		}
		if sat {
			return true, nil
		}
		fi := len(freeIdx) - 1
		for fi >= 0 {
			freeIdx[fi]++
			if freeIdx[fi] < len(b.freeDoms[fi]) {
				break
			}
			freeIdx[fi] = 0
			fi--
		}
		if fi < 0 {
			return false, nil
		}
	}
}
