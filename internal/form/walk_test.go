package form

import (
	"testing"

	"opentla/internal/value"
)

// TestWalkVisitsEveryNodeKind builds one expression containing every Expr
// implementation and checks Walk reaches each of them.
func TestWalkVisitsEveryNodeKind(t *testing.T) {
	e := And(
		Or(Not(Implies(Var("a"), Equiv(Var("b"), TrueE))), FalseE),
		Eq(Prime(Var("x")), Add(Var("x"), IntC(1))),
		If(Gt(Len(Var("q")), IntC(0)), Head(Var("q")), Concat(Var("q"), TupleOf(Var("y")))),
		Exists("v", value.Ints(0, 1), Eq(Var("v"), Var("z"))),
	)
	seen := map[string]bool{}
	Walk(e, func(n Expr) bool {
		switch n.(type) {
		case VarE:
			seen["var"] = true
		case PrimeE:
			seen["prime"] = true
		case ConstE:
			seen["const"] = true
		case AndE:
			seen["and"] = true
		case OrE:
			seen["or"] = true
		case NotE:
			seen["not"] = true
		case ImpliesE:
			seen["implies"] = true
		case EquivE:
			seen["equiv"] = true
		case CmpE:
			seen["cmp"] = true
		case ArithE:
			seen["arith"] = true
		case IfE:
			seen["if"] = true
		case TupleE:
			seen["tuple"] = true
		case SeqUnE:
			seen["sequn"] = true
		case ConcatE:
			seen["concat"] = true
		case QuantE:
			seen["quant"] = true
		}
		return true
	})
	for _, kind := range []string{"var", "prime", "const", "and", "or", "not", "implies",
		"equiv", "cmp", "arith", "if", "tuple", "sequn", "concat", "quant"} {
		if !seen[kind] {
			t.Errorf("Walk never visited a %s node", kind)
		}
	}
}

// TestWalkPrune checks that returning false stops descent into a subtree.
func TestWalkPrune(t *testing.T) {
	e := And(Not(Var("hidden")), Var("visible"))
	var names []string
	Walk(e, func(n Expr) bool {
		if _, ok := n.(NotE); ok {
			return false
		}
		if v, ok := n.(VarE); ok {
			names = append(names, v.Name)
		}
		return true
	})
	if len(names) != 1 || names[0] != "visible" {
		t.Errorf("pruned walk saw %v, want [visible]", names)
	}
	Walk(nil, func(Expr) bool { t.Error("visited nil"); return true })
}

// TestWalkDeeplyNested guards against stack pathologies on degenerate
// inputs: a 50000-deep Not chain and an equally deep Prime chain must
// both complete and visit every node exactly once.
func TestWalkDeeplyNested(t *testing.T) {
	const depth = 50000
	var e Expr = Var("x")
	for i := 0; i < depth; i++ {
		e = Not(e)
	}
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	if n != depth+1 {
		t.Errorf("deep Not chain: visited %d nodes, want %d", n, depth+1)
	}
	e = Var("x")
	for i := 0; i < depth; i++ {
		e = PrimeE{X: e}
	}
	n = 0
	Walk(e, func(Expr) bool { n++; return true })
	if n != depth+1 {
		t.Errorf("deep Prime chain: visited %d nodes, want %d", n, depth+1)
	}
}

// TestWalkWideFanout: a single conjunction with many children is visited
// breadth-complete, in declaration order.
func TestWalkWideFanout(t *testing.T) {
	const width = 10000
	xs := make([]Expr, width)
	for i := range xs {
		xs[i] = Var("v")
	}
	e := AndE{Xs: xs}
	n := 0
	last := -1
	Walk(e, func(node Expr) bool {
		if _, ok := node.(VarE); ok {
			n++
			last = n
		}
		return true
	})
	if n != width || last != width {
		t.Errorf("wide fanout: visited %d leaves, want %d", n, width)
	}
}

// TestWalkDegenerateNodes: empty composites and nil children must neither
// panic nor be double-counted.
func TestWalkDegenerateNodes(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		want int // total nodes visited
	}{
		{"empty and", AndE{}, 1},
		{"empty or", OrE{}, 1},
		{"empty tuple", TupleE{}, 1},
		{"and with nil child", AndE{Xs: []Expr{nil, Var("x"), nil}}, 2},
		{"quant with nil body", QuantE{Exists: true, Name: "v"}, 1},
		{"if with nil else", IfE{C: TrueE, T: Var("x")}, 3},
	}
	for _, tt := range cases {
		n := 0
		Walk(tt.e, func(Expr) bool { n++; return true })
		if n != tt.want {
			t.Errorf("%s: visited %d nodes, want %d", tt.name, n, tt.want)
		}
	}
}
