package form

import (
	"testing"

	"opentla/internal/value"
)

// TestWalkVisitsEveryNodeKind builds one expression containing every Expr
// implementation and checks Walk reaches each of them.
func TestWalkVisitsEveryNodeKind(t *testing.T) {
	e := And(
		Or(Not(Implies(Var("a"), Equiv(Var("b"), TrueE))), FalseE),
		Eq(Prime(Var("x")), Add(Var("x"), IntC(1))),
		If(Gt(Len(Var("q")), IntC(0)), Head(Var("q")), Concat(Var("q"), TupleOf(Var("y")))),
		Exists("v", value.Ints(0, 1), Eq(Var("v"), Var("z"))),
	)
	seen := map[string]bool{}
	Walk(e, func(n Expr) bool {
		switch n.(type) {
		case VarE:
			seen["var"] = true
		case PrimeE:
			seen["prime"] = true
		case ConstE:
			seen["const"] = true
		case AndE:
			seen["and"] = true
		case OrE:
			seen["or"] = true
		case NotE:
			seen["not"] = true
		case ImpliesE:
			seen["implies"] = true
		case EquivE:
			seen["equiv"] = true
		case CmpE:
			seen["cmp"] = true
		case ArithE:
			seen["arith"] = true
		case IfE:
			seen["if"] = true
		case TupleE:
			seen["tuple"] = true
		case SeqUnE:
			seen["sequn"] = true
		case ConcatE:
			seen["concat"] = true
		case QuantE:
			seen["quant"] = true
		}
		return true
	})
	for _, kind := range []string{"var", "prime", "const", "and", "or", "not", "implies",
		"equiv", "cmp", "arith", "if", "tuple", "sequn", "concat", "quant"} {
		if !seen[kind] {
			t.Errorf("Walk never visited a %s node", kind)
		}
	}
}

// TestWalkPrune checks that returning false stops descent into a subtree.
func TestWalkPrune(t *testing.T) {
	e := And(Not(Var("hidden")), Var("visible"))
	var names []string
	Walk(e, func(n Expr) bool {
		if _, ok := n.(NotE); ok {
			return false
		}
		if v, ok := n.(VarE); ok {
			names = append(names, v.Name)
		}
		return true
	})
	if len(names) != 1 || names[0] != "visible" {
		t.Errorf("pruned walk saw %v, want [visible]", names)
	}
	Walk(nil, func(Expr) bool { t.Error("visited nil"); return true })
}
