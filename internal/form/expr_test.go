package form

import (
	"strings"
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

func st(pairs ...any) *state.State { return state.FromPairs(pairs...) }

func evalV(t *testing.T, e Expr, step state.Step) value.Value {
	t.Helper()
	v, err := e.Eval(step, nil)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func evalB(t *testing.T, e Expr, step state.Step) bool {
	t.Helper()
	b, err := EvalBool(e, step, nil)
	if err != nil {
		t.Fatalf("EvalBool(%s): %v", e, err)
	}
	return b
}

func TestVarAndPrime(t *testing.T) {
	from := st("x", value.Int(1))
	to := st("x", value.Int(2))
	step := state.Step{From: from, To: to}
	if !evalV(t, Var("x"), step).Equal(value.Int(1)) {
		t.Error("unprimed var should read From")
	}
	if !evalV(t, PrimedVar("x"), step).Equal(value.Int(2)) {
		t.Error("primed var should read To")
	}
	// Priming a compound expression primes all its variables.
	if !evalV(t, Prime(Add(Var("x"), IntC(10))), step).Equal(value.Int(12)) {
		t.Error("Prime should distribute")
	}
	// Primed evaluation without a successor state errors.
	if _, err := PrimedVar("x").Eval(state.Step{From: from}, nil); err == nil {
		t.Error("primed eval without To should error")
	}
	// Unbound variable errors.
	if _, err := Var("zz").Eval(step, nil); err == nil {
		t.Error("unbound var should error")
	}
}

func TestBooleanOps(t *testing.T) {
	step := state.Step{From: st("p", value.Bool(true), "q", value.Bool(false))}
	p, q := Var("p"), Var("q")
	cases := []struct {
		e    Expr
		want bool
	}{
		{And(), true},
		{And(p, q), false},
		{And(p, p), true},
		{Or(), false},
		{Or(q, p), true},
		{Or(q, q), false},
		{Not(q), true},
		{Implies(q, q), true},
		{Implies(p, q), false},
		{Equiv(p, p), true},
		{Equiv(p, q), false},
	}
	for _, c := range cases {
		if got := evalB(t, c.e, step); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	// Type error surfaces.
	if _, err := EvalBool(And(IntC(3)), step, nil); err == nil {
		t.Error("And over int should error")
	}
}

func TestComparisons(t *testing.T) {
	step := state.Step{From: st("x", value.Int(2), "y", value.Int(5))}
	x, y := Var("x"), Var("y")
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(x, IntC(2)), true},
		{Ne(x, y), true},
		{Lt(x, y), true},
		{Le(x, IntC(2)), true},
		{Gt(y, x), true},
		{Ge(x, y), false},
	}
	for _, c := range cases {
		if got := evalB(t, c.e, step); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	// Eq works across kinds (false), order comparisons error.
	if evalB(t, Eq(x, Const(value.Str("2"))), step) {
		t.Error("int ≠ string")
	}
	if _, err := EvalBool(Lt(x, Const(value.Str("a"))), step, nil); err == nil {
		t.Error("mixed-kind < should error")
	}
}

func TestArithmetic(t *testing.T) {
	step := state.Step{From: st("x", value.Int(7))}
	x := Var("x")
	cases := []struct {
		e    Expr
		want int64
	}{
		{Add(x, IntC(3)), 10},
		{Sub(IntC(1), x), -6},
		{Mul(x, IntC(2)), 14},
		{Mod(x, IntC(3)), 1},
		{Mod(Sub(IntC(0), x), IntC(3)), 2}, // euclidean mod
	}
	for _, c := range cases {
		if got := evalV(t, c.e, step); !got.Equal(value.Int(c.want)) {
			t.Errorf("%s = %s, want %d", c.e, got, c.want)
		}
	}
	if _, err := Mod(x, IntC(0)).Eval(step, nil); err == nil {
		t.Error("mod 0 should error")
	}
	if _, err := Add(x, Const(value.True)).Eval(step, nil); err == nil {
		t.Error("int + bool should error")
	}
}

func TestIf(t *testing.T) {
	step := state.Step{From: st("c", value.Bool(true))}
	e := If(Var("c"), IntC(1), IntC(2))
	if !evalV(t, e, step).Equal(value.Int(1)) {
		t.Error("IF true")
	}
	step2 := state.Step{From: st("c", value.Bool(false))}
	if !evalV(t, e, step2).Equal(value.Int(2)) {
		t.Error("IF false")
	}
}

func TestSequenceExprs(t *testing.T) {
	q := value.Tuple(value.Int(4), value.Int(5))
	step := state.Step{From: st("q", q, "v", value.Int(9))}
	if !evalV(t, Head(Var("q")), step).Equal(value.Int(4)) {
		t.Error("Head")
	}
	if !evalV(t, Tail(Var("q")), step).Equal(value.Tuple(value.Int(5))) {
		t.Error("Tail")
	}
	if !evalV(t, Len(Var("q")), step).Equal(value.Int(2)) {
		t.Error("Len")
	}
	app := evalV(t, AppendTo(Var("q"), Var("v")), step)
	if !app.Equal(value.Tuple(value.Int(4), value.Int(5), value.Int(9))) {
		t.Errorf("AppendTo = %s", app)
	}
	cat := evalV(t, Concat(Var("q"), Var("q")), step)
	if cat.Len() != 4 {
		t.Errorf("Concat = %s", cat)
	}
	tup := evalV(t, TupleOf(Var("v"), IntC(0)), step)
	if !tup.Equal(value.Tuple(value.Int(9), value.Int(0))) {
		t.Errorf("TupleOf = %s", tup)
	}
	if _, err := Head(EmptySeq).Eval(step, nil); err == nil {
		t.Error("Head(<<>>) should error")
	}
	if _, err := Head(Var("v")).Eval(step, nil); err == nil {
		t.Error("Head(int) should error")
	}
}

func TestQuantifiers(t *testing.T) {
	dom := value.Ints(0, 3)
	step := state.Step{From: st("x", value.Int(2))}
	ex := Exists("v", dom, Eq(Var("v"), Var("x")))
	if !evalB(t, ex, step) {
		t.Error("∃v: v=x should hold")
	}
	ex2 := Exists("v", dom, Eq(Var("v"), IntC(9)))
	if evalB(t, ex2, step) {
		t.Error("∃v: v=9 should fail")
	}
	all := Forall("v", dom, Ge(Var("v"), IntC(0)))
	if !evalB(t, all, step) {
		t.Error("∀v: v≥0 should hold")
	}
	all2 := Forall("v", dom, Lt(Var("v"), IntC(3)))
	if evalB(t, all2, step) {
		t.Error("∀v: v<3 should fail")
	}
	// Bound variable shadows a state variable of the same name.
	shadow := Exists("x", dom, Eq(Var("x"), IntC(0)))
	if !evalB(t, shadow, step) {
		t.Error("bound x should shadow state x")
	}
	// Bound variable is rigid: same value under prime.
	to := st("x", value.Int(3))
	rigid := Exists("v", dom, And(Eq(Var("v"), Var("x")), Eq(Var("v"), Prime(Var("x")))))
	if evalB(t, rigid, state.Step{From: step.From, To: to}) {
		t.Error("rigid v cannot equal both 2 and 3")
	}
}

func TestFreeVarsAndPrimedVars(t *testing.T) {
	e := And(
		Eq(PrimedVar("a"), Var("b")),
		Exists("c", value.Bits(), Eq(Var("c"), Var("d"))),
	)
	up, pr := FreeVars(e)
	if strings.Join(up, ",") != "b,d" {
		t.Errorf("unprimed = %v", up)
	}
	if strings.Join(pr, ",") != "a" {
		t.Errorf("primed = %v", pr)
	}
	if strings.Join(AllVars(e), ",") != "a,b,d" {
		t.Errorf("AllVars = %v", AllVars(e))
	}
	if !HasPrimes(e) || HasPrimes(Var("x")) {
		t.Error("HasPrimes misbehaves")
	}
	// Prime of a compound: all vars primed.
	_, pr2 := FreeVars(Prime(Add(Var("x"), Var("y"))))
	if strings.Join(pr2, ",") != "x,y" {
		t.Errorf("primed of compound = %v", pr2)
	}
}

func TestSubstAndRename(t *testing.T) {
	e := And(Eq(PrimedVar("o"), Var("o")), Gt(Var("q"), IntC(0)))
	r := Rename(e, map[string]string{"o": "z"})
	up, pr := FreeVars(r)
	if strings.Join(up, ",") != "q,z" || strings.Join(pr, ",") != "z" {
		t.Errorf("rename: up=%v pr=%v", up, pr)
	}
	// Substitution under prime: x' becomes (e)'.
	sub := Var("x").Subst(map[string]Expr{"x": Add(Var("y"), IntC(1))})
	step := state.Step{
		From: st("y", value.Int(1)),
		To:   st("y", value.Int(5)),
	}
	if !evalV(t, Prime(sub), step).Equal(value.Int(6)) {
		t.Error("substitution should commute with priming")
	}
	// Quantifier shadows substitution of its bound name.
	q := Exists("v", value.Bits(), Eq(Var("v"), Var("w")))
	qs := q.Subst(map[string]Expr{"v": IntC(9), "w": IntC(1)})
	if !evalB(t, qs, state.Step{From: st()}) {
		t.Errorf("after subst: %s should hold (∃v: v=1)", qs)
	}
}

func TestUnchangedAndSquareAngle(t *testing.T) {
	a := st("x", value.Int(1), "y", value.Int(2))
	same := state.Step{From: a, To: a}
	moved := state.Step{From: a, To: a.With("x", value.Int(9))}
	if !evalB(t, Unchanged("x", "y"), same) || evalB(t, Unchanged("x", "y"), moved) {
		t.Error("Unchanged misbehaves")
	}
	act := Eq(PrimedVar("x"), IntC(9))
	sq := Square(act, VarTuple("x"))
	if !evalB(t, sq, moved) || !evalB(t, sq, same) {
		t.Error("[A]_x should allow the A step and the stutter")
	}
	bad := state.Step{From: a, To: a.With("x", value.Int(5))}
	if evalB(t, sq, bad) {
		t.Error("[A]_x should reject a non-A change")
	}
	ang := Angle(act, VarTuple("x"))
	if !evalB(t, ang, moved) || evalB(t, ang, same) {
		t.Error("⟨A⟩_x requires a change")
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Var("x"), "x"},
		{PrimedVar("x"), "x'"},
		{IntC(3), "3"},
		{Eq(Var("x"), IntC(1)), "(x = 1)"},
		{And(), "TRUE"},
		{Or(), "FALSE"},
		{Head(Var("q")), "Head(q)"},
		{VarTuple("a", "b"), "<<a, b>>"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
