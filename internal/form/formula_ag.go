package form

import (
	"fmt"

	"opentla/internal/state"
)

// This file implements the assumption/guarantee operators of the paper:
// E ⊳ M (§3, written WhilePlus here), E → M (§3, written Arrow), E +v
// (§4.1, written Plus), and E ⊥ M (§4.2, written Orth).
//
// All four are defined in terms of satisfaction of finite prefixes; their
// lasso evaluation reduces to comparing "death indices" — the first prefix
// length at which a formula stops being satisfied (see DeathIndex).

// WhilePlusFm is E ⊳ M: (E ⇒ M) holds, and for every n ≥ 0, if E holds for
// the first n states then M holds for the first n+1 states. It is the form
// of assumption/guarantee specification adopted by the paper (§3).
type WhilePlusFm struct{ E, M Formula }

// WhilePlus returns the assumption/guarantee specification E ⊳ M.
func WhilePlus(e, m Formula) Formula { return WhilePlusFm{E: e, M: m} }

// Eval implements Formula. Writing dE, dM for the death indices of E and M
// on the behavior, the prefix condition of ⊳ is equivalent to
//
//	(dE = ∞ ∧ dM = ∞) ∨ dM > dE,
//
// i.e. M must remain (prefix-)satisfied strictly longer than E. The full
// operator additionally requires E ⇒ M on the infinite behavior.
func (f WhilePlusFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	dE, err := DeathIndex(ctx, f.E, l)
	if err != nil {
		return false, err
	}
	dM, err := DeathIndex(ctx, f.M, l)
	if err != nil {
		return false, err
	}
	switch {
	case !dies(dE) && dies(dM):
		return false, nil
	case dies(dE) && dies(dM) && dM <= dE:
		return false, nil
	}
	return implicationHolds(ctx, f.E, f.M, l)
}

// Subst implements Formula.
func (f WhilePlusFm) Subst(sub map[string]Expr) Formula {
	return WhilePlusFm{E: f.E.Subst(sub), M: f.M.Subst(sub)}
}

func (f WhilePlusFm) String() string { return "(" + f.E.String() + " -+> " + f.M.String() + ")" }

// ArrowFm is E → M: M holds at least as long as E does (§3). Unlike ⊳ it
// permits M to be violated at the same instant as E.
type ArrowFm struct{ E, M Formula }

// Arrow returns E → M.
func Arrow(e, m Formula) Formula { return ArrowFm{E: e, M: m} }

// Eval implements Formula: the prefix condition is dM ≥ dE, plus E ⇒ M on
// the infinite behavior.
func (f ArrowFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	dE, err := DeathIndex(ctx, f.E, l)
	if err != nil {
		return false, err
	}
	dM, err := DeathIndex(ctx, f.M, l)
	if err != nil {
		return false, err
	}
	switch {
	case !dies(dE) && dies(dM):
		return false, nil
	case dies(dE) && dies(dM) && dM < dE:
		return false, nil
	}
	return implicationHolds(ctx, f.E, f.M, l)
}

// Subst implements Formula.
func (f ArrowFm) Subst(sub map[string]Expr) Formula {
	return ArrowFm{E: f.E.Subst(sub), M: f.M.Subst(sub)}
}

func (f ArrowFm) String() string { return "(" + f.E.String() + " --> " + f.M.String() + ")" }

// PlusFm is E +v: if E ever becomes false, the state function v stops
// changing (§4.1). Precisely: σ satisfies E +v iff σ satisfies E, or there
// is an n such that E holds for the first n states and v never changes from
// the (n+1)-st state on.
type PlusFm struct {
	E   Formula
	Sub Expr
}

// Plus returns E +sub.
func Plus(e Formula, sub Expr) Formula { return PlusFm{E: e, Sub: sub} }

// PlusVars returns E +⟨names…⟩.
func PlusVars(e Formula, names ...string) Formula { return PlusFm{E: e, Sub: VarTuple(names...)} }

// Eval implements Formula. Let n0 be the least index from which v never
// changes (Infinite if v changes in the cycle), and dE the death index of
// E. Then E +v holds iff σ ⊨ E, or n0 is finite and n0 < dE (choose n = n0:
// E holds for the first n0 states and v is frozen from state n0 on).
func (f PlusFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	ok, err := f.E.Eval(ctx, l)
	if err != nil {
		return false, err
	}
	if ok {
		return true, nil
	}
	n0, err := freezeIndex(f.Sub, l)
	if err != nil {
		return false, err
	}
	if !dies(n0) {
		return false, nil // v changes forever; E must have held
	}
	dE, err := DeathIndex(ctx, f.E, l)
	if err != nil {
		return false, err
	}
	return !dies(dE) || n0 < dE, nil
}

// Subst implements Formula.
func (f PlusFm) Subst(sub map[string]Expr) Formula {
	return PlusFm{E: f.E.Subst(sub), Sub: f.Sub.Subst(sub)}
}

func (f PlusFm) String() string { return "(" + f.E.String() + ")+_" + f.Sub.String() }

// freezeIndex returns the least index n such that the state function sub
// never changes from state n on, or Infinite if sub changes within the
// cycle (hence changes infinitely often).
func freezeIndex(sub Expr, l *state.Lasso) (int, error) {
	unchanged := UnchangedExpr(sub)
	// sub must be constant across every cycle step (including wrap-around).
	for _, st := range l.CycleSteps() {
		ok, err := EvalBool(unchanged, st, nil)
		if err != nil {
			return 0, err
		}
		if !ok {
			return Infinite, nil
		}
	}
	// Walk backward from the cycle entry through the prefix while sub keeps
	// the cycle's value.
	n := l.PrefixLen()
	for i := l.PrefixLen() - 1; i >= 0; i-- {
		ok, err := EvalBool(unchanged, l.StepAt(i), nil)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		n = i
	}
	return n, nil
}

// OrthFm is E ⊥ M — orthogonality (§4.2): no single step makes both E and M
// false. Precisely: there is no n ≥ 0 such that E and M are both satisfied
// by the first n states and both unsatisfied by the first n+1 states.
type OrthFm struct{ E, M Formula }

// Orth returns E ⊥ M.
func Orth(e, m Formula) Formula { return OrthFm{E: e, M: m} }

// Eval implements Formula: with monotone prefix satisfaction the condition
// "both die at the same finite index" is dE = dM ≠ ∞; orthogonality is its
// negation.
func (f OrthFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	dE, err := DeathIndex(ctx, f.E, l)
	if err != nil {
		return false, err
	}
	dM, err := DeathIndex(ctx, f.M, l)
	if err != nil {
		return false, err
	}
	if dies(dE) && dies(dM) && dE == dM {
		return false, nil
	}
	return true, nil
}

// Subst implements Formula.
func (f OrthFm) Subst(sub map[string]Expr) Formula {
	return OrthFm{E: f.E.Subst(sub), M: f.M.Subst(sub)}
}

func (f OrthFm) String() string { return "(" + f.E.String() + " _|_ " + f.M.String() + ")" }

// implicationHolds evaluates E ⇒ M on the lasso.
func implicationHolds(ctx *Ctx, e, m Formula, l *state.Lasso) (bool, error) {
	okE, err := e.Eval(ctx, l)
	if err != nil {
		return false, err
	}
	if !okE {
		return true, nil
	}
	okM, err := m.Eval(ctx, l)
	if err != nil {
		return false, fmt.Errorf("evaluating guarantee %s: %w", m, err)
	}
	return okM, nil
}
