package form

import (
	"fmt"
	"strings"

	"opentla/internal/state"
	"opentla/internal/value"
)

// TupleE builds a tuple/sequence from element expressions: ⟨e1, …, en⟩.
type TupleE struct{ Xs []Expr }

// TupleOf returns the tuple expression ⟨xs…⟩.
func TupleOf(xs ...Expr) Expr { return TupleE{Xs: xs} }

// VarTuple returns the tuple of the named variables ⟨v1, …, vn⟩, the usual
// form of the subscript in □[N]_v.
func VarTuple(names ...string) Expr {
	xs := make([]Expr, len(names))
	for i, n := range names {
		xs[i] = Var(n)
	}
	return TupleE{Xs: xs}
}

// EmptySeq is the empty-sequence literal ⟨⟩.
var EmptySeq = Const(value.Empty)

// Eval implements Expr.
func (e TupleE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	elems := make([]value.Value, len(e.Xs))
	for i, x := range e.Xs {
		v, err := x.Eval(st, bound)
		if err != nil {
			return value.Value{}, err
		}
		elems[i] = v
	}
	return value.Tuple(elems...), nil
}

func (e TupleE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	for _, x := range e.Xs {
		x.collect(up, pr, rigid, primed)
	}
}

// Subst implements Expr.
func (e TupleE) Subst(sub map[string]Expr) Expr { return TupleE{Xs: substAll(e.Xs, sub)} }

func (e TupleE) String() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = x.String()
	}
	return "<<" + strings.Join(parts, ", ") + ">>"
}

// SeqOp identifies a sequence operator.
type SeqOp int

// Sequence operators.
const (
	OpHead SeqOp = iota + 1
	OpTail
	OpLen
)

// SeqUnE applies a unary sequence operator.
type SeqUnE struct {
	Op SeqOp
	X  Expr
}

// Head returns Head(x), the first element of a nonempty sequence.
func Head(x Expr) Expr { return SeqUnE{Op: OpHead, X: x} }

// Tail returns Tail(x), the sequence without its first element.
func Tail(x Expr) Expr { return SeqUnE{Op: OpTail, X: x} }

// Len returns |x|, the length of a sequence.
func Len(x Expr) Expr { return SeqUnE{Op: OpLen, X: x} }

// Eval implements Expr.
func (e SeqUnE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	v, err := e.X.Eval(st, bound)
	if err != nil {
		return value.Value{}, err
	}
	switch e.Op {
	case OpHead:
		h, ok := v.Head()
		if !ok {
			return value.Value{}, fmt.Errorf("Head(%s): not a nonempty sequence: %s", e.X, v)
		}
		return h, nil
	case OpTail:
		t, ok := v.Tail()
		if !ok {
			return value.Value{}, fmt.Errorf("Tail(%s): not a nonempty sequence: %s", e.X, v)
		}
		return t, nil
	case OpLen:
		n := v.Len()
		if n < 0 {
			return value.Value{}, fmt.Errorf("Len(%s): not a sequence: %s", e.X, v)
		}
		return value.Int(int64(n)), nil
	default:
		return value.Value{}, fmt.Errorf("sequence op %d: unknown", int(e.Op))
	}
}

func (e SeqUnE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.X.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e SeqUnE) Subst(sub map[string]Expr) Expr { return SeqUnE{Op: e.Op, X: e.X.Subst(sub)} }

func (e SeqUnE) String() string {
	switch e.Op {
	case OpHead:
		return "Head(" + e.X.String() + ")"
	case OpTail:
		return "Tail(" + e.X.String() + ")"
	case OpLen:
		return "Len(" + e.X.String() + ")"
	default:
		return "?seq?(" + e.X.String() + ")"
	}
}

// ConcatE is sequence concatenation a ∘ b.
type ConcatE struct{ A, B Expr }

// Concat returns the concatenation a ∘ b.
func Concat(a, b Expr) Expr { return ConcatE{A: a, B: b} }

// AppendTo returns seq ∘ ⟨elem⟩, appending one element.
func AppendTo(seq, elem Expr) Expr { return ConcatE{A: seq, B: TupleOf(elem)} }

// Eval implements Expr.
func (e ConcatE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	a, err := e.A.Eval(st, bound)
	if err != nil {
		return value.Value{}, err
	}
	b, err := e.B.Eval(st, bound)
	if err != nil {
		return value.Value{}, err
	}
	c, ok := a.Concat(b)
	if !ok {
		return value.Value{}, fmt.Errorf("concat %s: operands %s, %s are not sequences", e, a, b)
	}
	return c, nil
}

func (e ConcatE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.A.collect(up, pr, rigid, primed)
	e.B.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e ConcatE) Subst(sub map[string]Expr) Expr {
	return ConcatE{A: e.A.Subst(sub), B: e.B.Subst(sub)}
}

func (e ConcatE) String() string { return "(" + e.A.String() + " \\o " + e.B.String() + ")" }

// ---------------------------------------------------------------------------
// Bounded rigid quantifiers

// QuantE is a bounded quantifier over a finite constant domain, e.g.
// ∃v ∈ 0..K−1 : Send(v, i). The bound variable is rigid: it denotes the
// same value in the unprimed and primed state.
type QuantE struct {
	Exists bool
	Name   string
	Domain []value.Value
	Body   Expr
}

// Exists returns the bounded existential ∃name ∈ domain : body.
func Exists(name string, domain []value.Value, body Expr) Expr {
	return QuantE{Exists: true, Name: name, Domain: domain, Body: body}
}

// Forall returns the bounded universal ∀name ∈ domain : body.
func Forall(name string, domain []value.Value, body Expr) Expr {
	return QuantE{Exists: false, Name: name, Domain: domain, Body: body}
}

// Eval implements Expr.
func (e QuantE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	for _, v := range e.Domain {
		b, err := EvalBool(e.Body, st, bound.Bind(e.Name, v))
		if err != nil {
			return value.Value{}, err
		}
		if b == e.Exists {
			return value.Bool(e.Exists), nil
		}
	}
	return value.Bool(!e.Exists), nil
}

func (e QuantE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	inner := make(map[string]bool, len(rigid)+1)
	for k := range rigid {
		inner[k] = true
	}
	inner[e.Name] = true
	e.Body.collect(up, pr, inner, primed)
}

// Subst implements Expr. The bound variable shadows any substitution for
// the same name.
func (e QuantE) Subst(sub map[string]Expr) Expr {
	if _, clash := sub[e.Name]; clash {
		inner := make(map[string]Expr, len(sub))
		for k, v := range sub {
			if k != e.Name {
				inner[k] = v
			}
		}
		sub = inner
	}
	return QuantE{Exists: e.Exists, Name: e.Name, Domain: e.Domain, Body: e.Body.Subst(sub)}
}

func (e QuantE) String() string {
	q := "\\A"
	if e.Exists {
		q = "\\E"
	}
	return fmt.Sprintf("(%s %s \\in {..%d}: %s)", q, e.Name, len(e.Domain), e.Body)
}
