package form

import (
	"fmt"
	"strings"

	"opentla/internal/state"
	"opentla/internal/value"
)

// Formula is a TLA temporal formula. Semantically a formula is true or
// false of an infinite behavior (§2.1); here infinite behaviors are
// represented as lassos, which is exact for finite-state model checking.
type Formula interface {
	// Eval decides the formula on the infinite behavior denoted by l.
	Eval(ctx *Ctx, l *state.Lasso) (bool, error)

	// Subst applies a substitution of expressions for flexible variables
	// (used for renaming and refinement mappings).
	Subst(sub map[string]Expr) Formula

	// String renders the formula.
	String() string
}

// RenameFormula renames flexible variables throughout a formula.
func RenameFormula(f Formula, m map[string]string) Formula {
	sub := make(map[string]Expr, len(m))
	for from, to := range m {
		sub[from] = Var(to)
	}
	return f.Subst(sub)
}

// suffix returns the lasso denoting the i-th suffix of l's behavior.
func suffix(l *state.Lasso, i int) *state.Lasso {
	p := len(l.Prefix)
	if i <= 0 {
		return l
	}
	if i < p {
		return &state.Lasso{Prefix: l.Prefix[i:], Cycle: l.Cycle}
	}
	// Rotate the cycle.
	j := (i - p) % len(l.Cycle)
	if j == 0 {
		return &state.Lasso{Cycle: l.Cycle}
	}
	rot := make([]*state.State, 0, len(l.Cycle))
	rot = append(rot, l.Cycle[j:]...)
	rot = append(rot, l.Cycle[:j]...)
	return &state.Lasso{Cycle: rot}
}

// ---------------------------------------------------------------------------
// State predicates as formulas

// PredF asserts a state predicate of the first state of the behavior.
type PredF struct{ P Expr }

// Pred lifts a state predicate to a temporal formula (true of σ iff P holds
// in σ's first state).
func Pred(p Expr) Formula { return PredF{P: p} }

// Eval implements Formula.
func (f PredF) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	return EvalStateBool(f.P, l.At(0))
}

// Subst implements Formula.
func (f PredF) Subst(sub map[string]Expr) Formula { return PredF{P: f.P.Subst(sub)} }

func (f PredF) String() string { return f.P.String() }

// ---------------------------------------------------------------------------
// □[A]_v

// ActBoxF is □[A]_v: every step of the behavior is an A step or leaves the
// state function v unchanged (§2.1).
type ActBoxF struct {
	A   Expr
	Sub Expr
}

// ActBox returns □[a]_sub.
func ActBox(a Expr, sub Expr) Formula { return ActBoxF{A: a, Sub: sub} }

// ActBoxVars returns □[a]_⟨names…⟩.
func ActBoxVars(a Expr, names ...string) Formula { return ActBoxF{A: a, Sub: VarTuple(names...)} }

// Eval implements Formula. All distinct steps of a lasso occur among the
// first PrefixLen+CycleLen step indices.
func (f ActBoxF) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	sq := Square(f.A, f.Sub)
	for i := 0; i < l.Horizon(); i++ {
		ok, err := EvalBool(sq, l.StepAt(i), nil)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Subst implements Formula.
func (f ActBoxF) Subst(sub map[string]Expr) Formula {
	return ActBoxF{A: f.A.Subst(sub), Sub: f.Sub.Subst(sub)}
}

func (f ActBoxF) String() string { return "[][" + f.A.String() + "]_" + f.Sub.String() }

// ---------------------------------------------------------------------------
// □ and ◇ on formulas

// AlwaysF is □F.
type AlwaysF struct{ F Formula }

// Always returns □f.
func Always(f Formula) Formula { return AlwaysF{F: f} }

// AlwaysPred returns □P for a state predicate P — an invariant.
func AlwaysPred(p Expr) Formula { return AlwaysF{F: PredF{P: p}} }

// Eval implements Formula. The suffixes of a lasso repeat after
// PrefixLen+CycleLen shifts.
func (f AlwaysF) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	for i := 0; i < l.Horizon(); i++ {
		ok, err := f.F.Eval(ctx, suffix(l, i))
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Subst implements Formula.
func (f AlwaysF) Subst(sub map[string]Expr) Formula { return AlwaysF{F: f.F.Subst(sub)} }

func (f AlwaysF) String() string { return "[](" + f.F.String() + ")" }

// EventuallyF is ◇F.
type EventuallyF struct{ F Formula }

// Eventually returns ◇f.
func Eventually(f Formula) Formula { return EventuallyF{F: f} }

// EventuallyPred returns ◇P for a state predicate P.
func EventuallyPred(p Expr) Formula { return EventuallyF{F: PredF{P: p}} }

// Eval implements Formula.
func (f EventuallyF) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	for i := 0; i < l.Horizon(); i++ {
		ok, err := f.F.Eval(ctx, suffix(l, i))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Subst implements Formula.
func (f EventuallyF) Subst(sub map[string]Expr) Formula { return EventuallyF{F: f.F.Subst(sub)} }

func (f EventuallyF) String() string { return "<>(" + f.F.String() + ")" }

// LeadsTo returns P ↝ Q ≜ □(P ⇒ ◇Q) for state predicates.
func LeadsTo(p, q Expr) Formula { return Always(ImpliesFm(Pred(p), EventuallyPred(q))) }

// ---------------------------------------------------------------------------
// Boolean connectives on formulas

// AndFm is conjunction of formulas.
type AndFm struct{ Fs []Formula }

// AndF returns the conjunction of the operand formulas.
func AndF(fs ...Formula) Formula {
	if len(fs) == 1 {
		return fs[0]
	}
	return AndFm{Fs: fs}
}

// Eval implements Formula.
func (f AndFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	for _, g := range f.Fs {
		ok, err := g.Eval(ctx, l)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Subst implements Formula.
func (f AndFm) Subst(sub map[string]Expr) Formula { return AndFm{Fs: substAllF(f.Fs, sub)} }

func (f AndFm) String() string { return joinFormulas(f.Fs, " /\\ ", "TRUE") }

// OrFm is disjunction of formulas.
type OrFm struct{ Fs []Formula }

// OrF returns the disjunction of the operand formulas.
func OrF(fs ...Formula) Formula {
	if len(fs) == 1 {
		return fs[0]
	}
	return OrFm{Fs: fs}
}

// Eval implements Formula.
func (f OrFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	for _, g := range f.Fs {
		ok, err := g.Eval(ctx, l)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Subst implements Formula.
func (f OrFm) Subst(sub map[string]Expr) Formula { return OrFm{Fs: substAllF(f.Fs, sub)} }

func (f OrFm) String() string { return joinFormulas(f.Fs, " \\/ ", "FALSE") }

// NotFm is negation of a formula.
type NotFm struct{ F Formula }

// NotF returns ¬f.
func NotF(f Formula) Formula { return NotFm{F: f} }

// Eval implements Formula.
func (f NotFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	ok, err := f.F.Eval(ctx, l)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

// Subst implements Formula.
func (f NotFm) Subst(sub map[string]Expr) Formula { return NotFm{F: f.F.Subst(sub)} }

func (f NotFm) String() string { return "~(" + f.F.String() + ")" }

// ImpliesFmN is implication of formulas.
type ImpliesFmN struct{ A, B Formula }

// ImpliesFm returns a ⇒ b on formulas.
func ImpliesFm(a, b Formula) Formula { return ImpliesFmN{A: a, B: b} }

// Eval implements Formula.
func (f ImpliesFmN) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	a, err := f.A.Eval(ctx, l)
	if err != nil {
		return false, err
	}
	if !a {
		return true, nil
	}
	return f.B.Eval(ctx, l)
}

// Subst implements Formula.
func (f ImpliesFmN) Subst(sub map[string]Expr) Formula {
	return ImpliesFmN{A: f.A.Subst(sub), B: f.B.Subst(sub)}
}

func (f ImpliesFmN) String() string { return "(" + f.A.String() + " => " + f.B.String() + ")" }

// ---------------------------------------------------------------------------
// Fairness

// FairKind distinguishes weak and strong fairness.
type FairKind int

// The two fairness kinds.
const (
	Weak FairKind = iota + 1
	Strong
)

func (k FairKind) String() string {
	if k == Weak {
		return "WF"
	}
	return "SF"
}

// FairF is WF_sub(A) or SF_sub(A) (§2.1):
//
//	WF_v(A): infinitely many ⟨A⟩_v steps, or infinitely many states where
//	         ⟨A⟩_v is not enabled.
//	SF_v(A): infinitely many ⟨A⟩_v steps, or only finitely many states
//	         where ⟨A⟩_v is enabled.
type FairF struct {
	Kind FairKind
	A    Expr
	Sub  Expr
}

// WF returns the weak-fairness formula WF_sub(a).
func WF(sub Expr, a Expr) Formula { return FairF{Kind: Weak, A: a, Sub: sub} }

// SF returns the strong-fairness formula SF_sub(a).
func SF(sub Expr, a Expr) Formula { return FairF{Kind: Strong, A: a, Sub: sub} }

// WFVars returns WF_⟨names…⟩(a).
func WFVars(a Expr, names ...string) Formula { return WF(VarTuple(names...), a) }

// SFVars returns SF_⟨names…⟩(a).
func SFVars(a Expr, names ...string) Formula { return SF(VarTuple(names...), a) }

// Eval implements Formula. On a lasso, "infinitely often" means "somewhere
// in the cycle".
func (f FairF) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	angle := Angle(f.A, f.Sub)
	// Infinitely many ⟨A⟩_sub steps?
	for _, st := range l.CycleSteps() {
		ok, err := EvalBool(angle, st, nil)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	// Count cycle states where ⟨A⟩_sub is enabled.
	anyEnabled := false
	allEnabled := true
	for _, s := range l.CycleStates() {
		en, err := ctx.Enabled(angle, s)
		if err != nil {
			return false, err
		}
		if en {
			anyEnabled = true
		} else {
			allEnabled = false
		}
	}
	if f.Kind == Weak {
		// Satisfied iff some cycle state is not enabled.
		return !allEnabled, nil
	}
	// Strong: satisfied iff no cycle state is enabled.
	return !anyEnabled, nil
}

// Subst implements Formula.
func (f FairF) Subst(sub map[string]Expr) Formula {
	return FairF{Kind: f.Kind, A: f.A.Subst(sub), Sub: f.Sub.Subst(sub)}
}

func (f FairF) String() string {
	return fmt.Sprintf("%s_%s(%s)", f.Kind, f.Sub, f.A)
}

// ---------------------------------------------------------------------------
// ∃ hiding

// ExistsFm is ∃x1,…,xk : F — temporal existential quantification over
// flexible variables ("F with x hidden", §2.1).
type ExistsFm struct {
	Vars []string
	F    Formula
}

// ExistsF returns ∃vars : f.
func ExistsF(vars []string, f Formula) Formula {
	if len(vars) == 0 {
		return f
	}
	return ExistsFm{Vars: vars, F: f}
}

// Eval implements Formula by brute-force witness search: it tries every
// assignment of hidden-variable value sequences compatible with the lasso
// shape, unrolling the cycle up to ctx.Unroll times. This is sound and, for
// the systems in this repository, complete in practice; the primary
// mechanism for discharging ∃ in proofs is a refinement mapping (as in the
// paper, Appendix A.4), not this search. Eval returns an error if the
// search space exceeds ctx.MaxWitness.
func (f ExistsFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	for _, v := range f.Vars {
		if _, err := ctx.Domain(v); err != nil {
			return false, fmt.Errorf("hiding %v: %w", f.Vars, err)
		}
	}
	budget := ctx.maxWitness()
	for m := 1; m <= ctx.unroll(); m++ {
		found, err := f.searchUnrolled(ctx, l, m, &budget)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// searchUnrolled looks for a witness whose hidden values are periodic with
// period m·CycleLen.
func (f ExistsFm) searchUnrolled(ctx *Ctx, l *state.Lasso, m int, budget *int) (bool, error) {
	p := l.PrefixLen()
	c := l.CycleLen() * m
	n := p + c
	// Build the visible skeleton of the unrolled lasso.
	skel := make([]*state.State, n)
	for i := 0; i < n; i++ {
		skel[i] = l.At(i)
	}

	// DFS over positions; each position assigns all hidden variables.
	assignment := make([]map[string]value.Value, n)
	var dfs func(i int) (bool, error)
	dfs = func(i int) (bool, error) {
		if i == n {
			aug := make([]*state.State, n)
			for j := 0; j < n; j++ {
				aug[j] = skel[j].WithAll(assignment[j])
			}
			wl := &state.Lasso{Prefix: aug[:p], Cycle: aug[p:]}
			return f.F.Eval(ctx, wl)
		}
		found := false
		var evalErr error
		complete := value.ForEachAssignment(f.Vars, ctx.Domains, func(a map[string]value.Value) bool {
			*budget--
			if *budget < 0 {
				evalErr = fmt.Errorf("hiding %v: witness search exceeded budget; supply a refinement mapping", f.Vars)
				return false
			}
			cp := make(map[string]value.Value, len(a))
			for k, v := range a {
				cp[k] = v
			}
			assignment[i] = cp
			ok, err := dfs(i + 1)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				found = true
				return false
			}
			return true
		})
		_ = complete
		if evalErr != nil {
			return false, evalErr
		}
		return found, nil
	}
	return dfs(0)
}

// Subst implements Formula. Substituting for a hidden variable is not
// meaningful; substitutions for hidden names are dropped (they are bound).
func (f ExistsFm) Subst(sub map[string]Expr) Formula {
	inner := make(map[string]Expr, len(sub))
	for k, v := range sub {
		bound := false
		for _, h := range f.Vars {
			if h == k {
				bound = true
				break
			}
		}
		if !bound {
			inner[k] = v
		}
	}
	return ExistsFm{Vars: f.Vars, F: f.F.Subst(inner)}
}

func (f ExistsFm) String() string {
	return "(\\EE " + strings.Join(f.Vars, ", ") + ": " + f.F.String() + ")"
}

// ---------------------------------------------------------------------------
// helpers

func substAllF(fs []Formula, sub map[string]Expr) []Formula {
	out := make([]Formula, len(fs))
	for i, g := range fs {
		out[i] = g.Subst(sub)
	}
	return out
}

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, g := range fs {
		parts[i] = g.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
