package form

import (
	"math/rand"
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

// bruteEnabled is the reference implementation: enumerate all assignments
// to the primed variables of a and test the action.
func bruteEnabled(c *Ctx, a Expr, s *state.State) (bool, error) {
	primed := PrimedVars(a)
	enabled := false
	var evalErr error
	value.ForEachAssignment(primed, c.Domains, func(asgn map[string]value.Value) bool {
		cp := make(map[string]value.Value, len(asgn))
		for k, v := range asgn {
			cp[k] = v
		}
		t := s.WithAll(cp)
		ok, err := EvalBool(a, state.Step{From: s, To: t}, nil)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			enabled = true
			return false
		}
		return true
	})
	return enabled, evalErr
}

// randomAction generates a small random action over x, y, z.
func randomAction(r *rand.Rand, depth int) Expr {
	vars := []string{"x", "y", "z"}
	v := func() Expr { return Var(vars[r.Intn(len(vars))]) }
	pv := func() Expr { return PrimedVar(vars[r.Intn(len(vars))]) }
	lit := func() Expr { return IntC(int64(r.Intn(3))) }
	atom := func() Expr {
		switch r.Intn(6) {
		case 0:
			return Eq(pv(), v())
		case 1:
			return Eq(pv(), lit())
		case 2:
			return Eq(pv(), Add(v(), IntC(1)))
		case 3:
			return Lt(v(), lit())
		case 4:
			return Ne(pv(), pv())
		default:
			return Eq(v(), lit())
		}
	}
	if depth == 0 {
		return atom()
	}
	switch r.Intn(4) {
	case 0:
		return And(randomAction(r, depth-1), randomAction(r, depth-1))
	case 1:
		return Or(randomAction(r, depth-1), randomAction(r, depth-1))
	case 2:
		return Not(randomAction(r, depth-1))
	default:
		return atom()
	}
}

// TestEnabledMatchesBruteForce cross-validates the structure-aware Enabled
// (guard short-circuiting, determined assignments, Or-distribution) against
// plain enumeration, on randomly generated actions and states.
func TestEnabledMatchesBruteForce(t *testing.T) {
	dom := value.Ints(0, 2)
	ctx := NewCtx(map[string][]value.Value{"x": dom, "y": dom, "z": dom})
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a := randomAction(r, 2)
		s := st(
			"x", value.Int(int64(r.Intn(3))),
			"y", value.Int(int64(r.Intn(3))),
			"z", value.Int(int64(r.Intn(3))),
		)
		fast, err1 := ctx.Enabled(a, s)
		slow, err2 := bruteEnabled(ctx, a, s)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iteration %d: error mismatch: fast=%v slow=%v for %s on %s", i, err1, err2, a, s)
		}
		if err1 != nil {
			continue
		}
		if fast != slow {
			t.Fatalf("iteration %d: Enabled=%v brute=%v for %s on %s", i, fast, slow, a, s)
		}
	}
}

// TestEnabledDeterminedOutOfDomain checks that a determined successor value
// outside the variable's domain disables the action (the successor must lie
// in the universe).
func TestEnabledDeterminedOutOfDomain(t *testing.T) {
	ctx := NewCtx(map[string][]value.Value{"x": value.Ints(0, 2)})
	s := st("x", value.Int(2))
	a := Eq(PrimedVar("x"), Add(Var("x"), IntC(1))) // x' = 3 ∉ domain
	en, err := ctx.Enabled(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if en {
		t.Error("x'=x+1 at x=2 should be disabled for domain 0..2")
	}
}

// TestEnabledConflictingDeterminations checks that contradictory x' = e
// conjuncts disable the action.
func TestEnabledConflictingDeterminations(t *testing.T) {
	ctx := NewCtx(map[string][]value.Value{"x": value.Ints(0, 2)})
	s := st("x", value.Int(0))
	a := And(Eq(PrimedVar("x"), IntC(1)), Eq(PrimedVar("x"), IntC(2)))
	en, err := ctx.Enabled(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if en {
		t.Error("x'=1 ∧ x'=2 should be disabled")
	}
	b := And(Eq(PrimedVar("x"), IntC(1)), Eq(IntC(1), PrimedVar("x")))
	en, err = ctx.Enabled(b, s)
	if err != nil {
		t.Fatal(err)
	}
	if !en {
		t.Error("x'=1 ∧ 1=x' should be enabled")
	}
}

// TestEnabledAngle checks EnabledAngle: an action may be enabled while
// ⟨A⟩_v (requiring a change of v) is not.
func TestEnabledAngle(t *testing.T) {
	ctx := NewCtx(map[string][]value.Value{
		"x": value.Ints(0, 1), "y": value.Ints(0, 1),
	})
	// A: x' = y (copy). At x=0, y=0 the copy is enabled but cannot change x.
	a := Eq(PrimedVar("x"), Var("y"))
	s := st("x", value.Int(0), "y", value.Int(0))
	en, err := ctx.Enabled(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if !en {
		t.Error("copy should be enabled")
	}
	enAngle, err := ctx.EnabledAngle(a, VarTuple("x"), s)
	if err != nil {
		t.Fatal(err)
	}
	if enAngle {
		t.Error("⟨copy⟩_x should be disabled when x already equals y")
	}
	s2 := st("x", value.Int(0), "y", value.Int(1))
	enAngle, err = ctx.EnabledAngle(a, VarTuple("x"), s2)
	if err != nil {
		t.Fatal(err)
	}
	if !enAngle {
		t.Error("⟨copy⟩_x should be enabled when x ≠ y")
	}
}

// TestEnabledQuantifiedAction checks Enabled through a bounded existential
// (the environment's Put action shape).
func TestEnabledQuantifiedAction(t *testing.T) {
	dom := value.Ints(0, 2)
	ctx := NewCtx(map[string][]value.Value{"x": dom})
	a := Exists("v", dom, Eq(PrimedVar("x"), Var("v")))
	en, err := ctx.Enabled(a, st("x", value.Int(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !en {
		t.Error("∃v: x'=v should be enabled")
	}
}
