package form

import (
	"opentla/internal/state"
)

// ClosureFm is C(F), the closure of F (§2.4): the strongest safety property
// implied by F. A behavior satisfies C(F) iff every finite prefix of it
// satisfies F (is extendable to a behavior satisfying F).
type ClosureFm struct{ F Formula }

// Closure returns C(f).
func Closure(f Formula) Formula { return ClosureFm{F: f} }

// Eval implements Formula: σ ⊨ C(F) iff F's death index on σ is infinite.
func (f ClosureFm) Eval(ctx *Ctx, l *state.Lasso) (bool, error) {
	d, err := DeathIndex(ctx, f.F, l)
	if err != nil {
		return false, err
	}
	return !dies(d), nil
}

// EvalPrefix implements PrefixFormula: a finite behavior satisfies C(F) iff
// it satisfies F — the stuttering extension that witnesses ρ ⊨ F also has
// every prefix satisfying F within the machine-closed fragment.
func (f ClosureFm) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) {
	return EvalOnPrefix(ctx, f.F, b)
}

// Subst implements Formula.
func (f ClosureFm) Subst(sub map[string]Expr) Formula { return ClosureFm{F: f.F.Subst(sub)} }

func (f ClosureFm) String() string { return "C(" + f.F.String() + ")" }
