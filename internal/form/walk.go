package form

// Walk traverses the expression tree rooted at e in pre-order, calling
// visit on every node. If visit returns false the node's sub-expressions
// are skipped. Walk covers every Expr implementation in this package;
// static analyses (package vet) rely on that completeness.
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case VarE, ConstE:
		// leaves
	case PrimeE:
		Walk(x.X, visit)
	case AndE:
		for _, c := range x.Xs {
			Walk(c, visit)
		}
	case OrE:
		for _, c := range x.Xs {
			Walk(c, visit)
		}
	case NotE:
		Walk(x.X, visit)
	case ImpliesE:
		Walk(x.A, visit)
		Walk(x.B, visit)
	case EquivE:
		Walk(x.A, visit)
		Walk(x.B, visit)
	case CmpE:
		Walk(x.A, visit)
		Walk(x.B, visit)
	case ArithE:
		Walk(x.A, visit)
		Walk(x.B, visit)
	case IfE:
		Walk(x.C, visit)
		Walk(x.T, visit)
		Walk(x.E, visit)
	case TupleE:
		for _, c := range x.Xs {
			Walk(c, visit)
		}
	case SeqUnE:
		Walk(x.X, visit)
	case ConcatE:
		Walk(x.A, visit)
		Walk(x.B, visit)
	case QuantE:
		// The domain is a constant value list, not an expression tree.
		Walk(x.Body, visit)
	}
}
