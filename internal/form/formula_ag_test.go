package form

import (
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

// Two safety specs over variables e (environment's) and m (system's):
//
//	E ≜ (e = 0) ∧ □[FALSE]_e   — e stays 0
//	M ≜ (m = 0) ∧ □[FALSE]_m   — m stays 0
func agE() Formula { return AndF(Pred(Eq(Var("e"), IntC(0))), ActBoxVars(FalseE, "e")) }
func agM() Formula { return AndF(Pred(Eq(Var("m"), IntC(0))), ActBoxVars(FalseE, "m")) }

func agCtx() *Ctx {
	return NewCtx(map[string][]value.Value{"e": value.Bits(), "m": value.Bits()})
}

// emLasso builds a lasso over (e, m) pairs.
func emLasso(prefix [][2]int64, cycle [][2]int64) *state.Lasso {
	mk := func(vs [][2]int64) []*state.State {
		out := make([]*state.State, len(vs))
		for i, v := range vs {
			out[i] = st("e", value.Int(v[0]), "m", value.Int(v[1]))
		}
		return out
	}
	return &state.Lasso{Prefix: mk(prefix), Cycle: mk(cycle)}
}

func evalAG(t *testing.T, f Formula, l *state.Lasso) bool {
	t.Helper()
	ok, err := f.Eval(agCtx(), l)
	if err != nil {
		t.Fatalf("Eval(%s): %v", f, err)
	}
	return ok
}

func TestDeathIndex(t *testing.T) {
	ctx := agCtx()
	cases := []struct {
		name string
		l    *state.Lasso
		f    Formula
		want int
	}{
		{"alive forever", emLasso(nil, [][2]int64{{0, 0}}), agE(), Infinite},
		{"init violation", emLasso(nil, [][2]int64{{1, 0}}), agE(), 1},
		{"step violation at 1", emLasso([][2]int64{{0, 0}, {1, 0}}, [][2]int64{{1, 0}}), agE(), 2},
		{"violation in cycle", emLasso(nil, [][2]int64{{0, 0}, {1, 0}}), agE(), 2},
	}
	for _, c := range cases {
		got, err := DeathIndex(ctx, c.f, c.l)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: death index = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWhilePlusSemantics(t *testing.T) {
	wp := WhilePlus(agE(), agM())
	cases := []struct {
		name string
		l    *state.Lasso
		want bool
	}{
		// Both hold forever.
		{"both alive", emLasso(nil, [][2]int64{{0, 0}}), true},
		// E dies first (step 0→1 on e), M keeps holding: OK.
		{"E dies, M outlives", emLasso([][2]int64{{0, 0}}, [][2]int64{{1, 0}}), true},
		// E dies, M dies strictly later: OK.
		{"M dies later", emLasso([][2]int64{{0, 0}, {1, 0}}, [][2]int64{{1, 1}}), true},
		// Both die on the same step: ⊳ violated (M must outlive E by one).
		{"simultaneous death", emLasso([][2]int64{{0, 0}}, [][2]int64{{1, 1}}), false},
		// M dies first: violated.
		{"M dies first", emLasso([][2]int64{{0, 0}}, [][2]int64{{0, 1}}), false},
		// M violated at time 0 (n = 0 case): violated even though E also
		// fails initially.
		{"M bad at start", emLasso(nil, [][2]int64{{1, 1}}), false},
		// E bad at start but M fine: OK (assumption broken first).
		{"E bad at start", emLasso(nil, [][2]int64{{1, 0}}), true},
	}
	for _, c := range cases {
		if got := evalAG(t, wp, c.l); got != c.want {
			t.Errorf("%s: E -+> M = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestArrowSemantics(t *testing.T) {
	ar := Arrow(agE(), agM())
	// Simultaneous death is allowed by →.
	if !evalAG(t, ar, emLasso([][2]int64{{0, 0}}, [][2]int64{{1, 1}})) {
		t.Error("E → M should allow simultaneous violation")
	}
	// M dying first is not.
	if evalAG(t, ar, emLasso([][2]int64{{0, 0}}, [][2]int64{{0, 1}})) {
		t.Error("E → M should reject M dying first")
	}
}

func TestOrthSemantics(t *testing.T) {
	orth := Orth(agE(), agM())
	// Different steps violate E and M: orthogonal.
	if !evalAG(t, orth, emLasso([][2]int64{{0, 0}, {1, 0}}, [][2]int64{{1, 1}})) {
		t.Error("separate violations should be orthogonal")
	}
	// One step violates both: not orthogonal.
	if evalAG(t, orth, emLasso([][2]int64{{0, 0}}, [][2]int64{{1, 1}})) {
		t.Error("simultaneous violation should not be orthogonal")
	}
	// Nothing dies: orthogonal.
	if !evalAG(t, orth, emLasso(nil, [][2]int64{{0, 0}})) {
		t.Error("no violations should be orthogonal")
	}
}

func TestPlusSemantics(t *testing.T) {
	// (E)+⟨m⟩: if E dies, m must freeze (from the state after the dying
	// step).
	pl := PlusVars(agE(), "m")
	cases := []struct {
		name string
		l    *state.Lasso
		want bool
	}{
		{"E alive", emLasso(nil, [][2]int64{{0, 0}}), true},
		// E dies at step 0→1; afterwards m frozen at 0: OK.
		{"frozen after death", emLasso([][2]int64{{0, 0}}, [][2]int64{{1, 0}}), true},
		// E dies; the dying step itself changes m — allowed (freeze starts
		// at the next state).
		{"dying step changes m", emLasso([][2]int64{{0, 0}}, [][2]int64{{1, 1}}), true},
		// E dies and m changes strictly later: violated.
		{"m changes after death", emLasso([][2]int64{{0, 0}, {1, 0}, {1, 0}}, [][2]int64{{1, 1}}), false},
		// E dead from the start (e=1): m may never change (it starts 0 and
		// stays 0 here): OK.
		{"dead from start frozen", emLasso(nil, [][2]int64{{1, 0}}), true},
		// E dead from start: the n=0 freeze begins at state 0, but the
		// FIRST step changes m: the only valid n is 0 (E never holds for
		// n ≥ 1), so this violates +.
		{"dead from start, m moves", emLasso([][2]int64{{1, 0}}, [][2]int64{{1, 1}}), false},
	}
	for _, c := range cases {
		if got := evalAG(t, pl, c.l); got != c.want {
			t.Errorf("%s: E+m = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestWhilePlusEquivalences is experiment E8: the algebraic relationships
// of §3 and §4.2, checked by enumerating every small lasso of the
// two-variable universe:
//
//	(E ⊳ M) ≡ (E → M) ∧ (E ⊥ M)            (§4.2)
//	(E ⊳ M) ⇒ (E → M) ⇒ (E ⇒ M)            (§3: each form weaker)
//	(E ⊳ M) ≡ C(E) ⊳ (C(M) ∧ (E ⇒ M))      (§3, safety-assumption form)
func TestWhilePlusEquivalences(t *testing.T) {
	ctx := agCtx()
	universe := allEMStates()
	e, m := agE(), agM()
	wp := WhilePlus(e, m)
	ar := Arrow(e, m)
	orth := Orth(e, m)
	imp := ImpliesFm(e, m)

	// The safety-assumption form C(E) ⊳ (C(M) ∧ (E ⇒ M)) is evaluated by
	// hand: because this E is "escapable" (any finite behavior extends to
	// one violating E's box, so E ⇒ M is satisfiable from every prefix),
	// the guarantee's death index equals C(M)'s.
	convHolds := func(l *state.Lasso) bool {
		dE, err := DeathIndex(ctx, Closure(e), l)
		if err != nil {
			t.Fatalf("DeathIndex C(E): %v", err)
		}
		dM, err := DeathIndex(ctx, Closure(m), l)
		if err != nil {
			t.Fatalf("DeathIndex C(M): %v", err)
		}
		switch {
		case dE == Infinite && dM != Infinite:
			return false
		case dE != Infinite && dM != Infinite && dM <= dE:
			return false
		}
		// Liveness part: C(E) ⇒ C(M) ∧ (E ⇒ M).
		okE := evalAG(t, Closure(e), l)
		if !okE {
			return true
		}
		return evalAG(t, Closure(m), l) && evalAG(t, imp, l)
	}

	count := 0
	forAllLassosLocal(universe, 2, 2, func(l *state.Lasso) bool {
		count++
		vWp := evalAG(t, wp, l)
		vAr := evalAG(t, ar, l)
		vOr := evalAG(t, orth, l)
		vImp := evalAG(t, imp, l)
		if vWp != (vAr && vOr) {
			t.Fatalf("(E⊳M) ≠ (E→M)∧(E⊥M) on\n%s", l)
		}
		if vWp && !vAr {
			t.Fatalf("E⊳M should imply E→M on\n%s", l)
		}
		if vAr && !vImp {
			t.Fatalf("E→M should imply E⇒M on\n%s", l)
		}
		if vWp != convHolds(l) {
			t.Fatalf("E⊳M ≠ C(E)⊳(C(M)∧(E⇒M)) on\n%s", l)
		}
		return true
	})
	if count == 0 {
		t.Fatal("no lassos enumerated")
	}
}

func allEMStates() []*state.State {
	var out []*state.State
	for _, e := range []int64{0, 1} {
		for _, m := range []int64{0, 1} {
			out = append(out, st("e", value.Int(e), "m", value.Int(m)))
		}
	}
	return out
}

// forAllLassosLocal mirrors check.ForAllLassos (not imported to keep the
// form package's tests self-contained).
func forAllLassosLocal(universe []*state.State, maxPrefix, maxCycle int, f func(*state.Lasso) bool) {
	seq := make([]*state.State, maxPrefix+maxCycle)
	var rec func(i, total, p int) bool
	rec = func(i, total, p int) bool {
		if i == total {
			prefix := make([]*state.State, p)
			copy(prefix, seq[:p])
			cycle := make([]*state.State, total-p)
			copy(cycle, seq[p:total])
			return f(&state.Lasso{Prefix: prefix, Cycle: cycle})
		}
		for _, s := range universe {
			seq[i] = s
			if !rec(i+1, total, p) {
				return false
			}
		}
		return true
	}
	for p := 0; p <= maxPrefix; p++ {
		for c := 1; c <= maxCycle; c++ {
			if !rec(0, p+c, p) {
				return
			}
		}
	}
}
