package form

import (
	"strings"
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

// allNodeExprs returns one expression of every node type, each mentioning
// variable "x" (so substitution must reach inside).
func allNodeExprs() []Expr {
	x := Var("x")
	return []Expr{
		x,
		Prime(x),
		Const(value.Int(3)),
		And(x, TrueE),
		Or(x, FalseE),
		Not(x),
		Implies(x, x),
		Equiv(x, x),
		Eq(x, IntC(1)),
		Lt(x, IntC(1)),
		Add(x, IntC(1)),
		If(Eq(x, IntC(0)), x, IntC(2)),
		TupleOf(x, IntC(1)),
		Head(TupleOf(x)),
		Tail(TupleOf(x)),
		Len(TupleOf(x)),
		Concat(TupleOf(x), TupleOf(x)),
		Exists("b", value.Bits(), Eq(Var("b"), x)),
		Forall("b", value.Bits(), Ne(Var("b"), x)),
		Unchanged("x"),
		Square(Eq(Prime(x), x), TupleOf(x)),
		Angle(Eq(Prime(x), x), TupleOf(x)),
	}
}

// allNodeFormulas returns one formula of every node type mentioning "x".
func allNodeFormulas() []Formula {
	x := Var("x")
	p := Pred(Eq(x, IntC(0)))
	return []Formula{
		p,
		ActBoxVars(Eq(Prime(x), x), "x"),
		Always(p),
		Eventually(p),
		AndF(p, p),
		OrF(p, p),
		NotF(p),
		ImpliesFm(p, p),
		WFVars(Eq(Prime(x), IntC(1)), "x"),
		SFVars(Eq(Prime(x), IntC(1)), "x"),
		ExistsF([]string{"h"}, Pred(Eq(Var("h"), x))),
		WhilePlus(p, p),
		Arrow(p, p),
		PlusVars(p, "x"),
		Orth(p, p),
		Closure(p),
		LeadsTo(Eq(x, IntC(0)), Eq(x, IntC(1))),
		Disjoint([]string{"x"}, []string{"y"}),
	}
}

// TestSubstRenamesEveryExprNode: after renaming x→z, no node's rendering
// mentions x as a variable (the bound variable b and literals remain).
func TestSubstRenamesEveryExprNode(t *testing.T) {
	for _, e := range allNodeExprs() {
		r := Rename(e, map[string]string{"x": "z"})
		up, pr := FreeVars(r)
		for _, v := range append(up, pr...) {
			if v == "x" {
				t.Errorf("node %T: x survives renaming: %s", e, r)
			}
		}
		// Rendering must be non-empty and parseable as a sanity signal.
		if r.String() == "" {
			t.Errorf("node %T: empty rendering", e)
		}
	}
}

// TestSubstRenamesEveryFormulaNode does the same at the formula level, and
// checks that the renamed formula evaluates over the renamed universe.
func TestSubstRenamesEveryFormulaNode(t *testing.T) {
	ctx := NewCtx(map[string][]value.Value{
		"z": value.Bits(), "y": value.Bits(), "h": value.Bits(),
	})
	l := &state.Lasso{Cycle: []*state.State{
		state.FromPairs("z", value.Int(0), "y", value.Int(0), "h", value.Int(0)),
	}}
	for _, f := range allNodeFormulas() {
		r := RenameFormula(f, map[string]string{"x": "z"})
		if strings.Contains(r.String(), "x") && !strings.Contains(f.String(), "Tail") {
			// A variable literally named x must be gone; operator glyphs
			// containing 'x' don't occur in our printers.
			t.Errorf("node %T: x survives renaming: %s", f, r)
		}
		if _, err := r.Eval(ctx, l); err != nil {
			t.Errorf("node %T: renamed formula fails to evaluate: %v", f, err)
		}
	}
}

// TestEvalStateHelpers covers the state-level evaluation helpers.
func TestEvalStateHelpers(t *testing.T) {
	s := state.FromPairs("x", value.Int(4))
	v, err := EvalState(Add(Var("x"), IntC(1)), s)
	if err != nil || !v.Equal(value.Int(5)) {
		t.Fatalf("EvalState = %s, err %v", v, err)
	}
	b, err := EvalStateBool(Gt(Var("x"), IntC(0)), s)
	if err != nil || !b {
		t.Fatalf("EvalStateBool = %v, err %v", b, err)
	}
}

// TestFormulaStrings pins the concrete syntax of the assumption/guarantee
// operators (the strings appear in reports, so they are API).
func TestFormulaStrings(t *testing.T) {
	p := Pred(Eq(Var("x"), IntC(0)))
	cases := []struct {
		f    Formula
		want string
	}{
		{WhilePlus(p, p), "((x = 0) -+> (x = 0))"},
		{Arrow(p, p), "((x = 0) --> (x = 0))"},
		{Orth(p, p), "((x = 0) _|_ (x = 0))"},
		{Closure(p), "C((x = 0))"},
		{PlusVars(p, "x"), "((x = 0))+_<<x>>"},
		{WFVars(TrueE, "x"), "WF_<<x>>(TRUE)"},
		{SFVars(TrueE, "x"), "SF_<<x>>(TRUE)"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
