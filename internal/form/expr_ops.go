package form

import "sort"

// FreeVars returns the free flexible variables of an expression, separated
// into those with unprimed and primed occurrences (a variable may appear in
// both). Results are sorted.
func FreeVars(e Expr) (unprimed, primed []string) {
	up := make(map[string]bool)
	pr := make(map[string]bool)
	e.collect(up, pr, nil, false)
	return sortedKeys(up), sortedKeys(pr)
}

// AllVars returns every free flexible variable of e, primed or not, sorted.
func AllVars(e Expr) []string {
	up := make(map[string]bool)
	pr := make(map[string]bool)
	e.collect(up, pr, nil, false)
	for k := range pr {
		up[k] = true
	}
	return sortedKeys(up)
}

// PrimedVars returns the variables with primed occurrences in e, sorted.
// These are the variables whose next-state values the action constrains.
func PrimedVars(e Expr) []string {
	up := make(map[string]bool)
	pr := make(map[string]bool)
	e.collect(up, pr, nil, false)
	return sortedKeys(pr)
}

// HasPrimes reports whether e contains any primed variable occurrence —
// i.e. whether e is an action rather than a state function.
func HasPrimes(e Expr) bool {
	up := make(map[string]bool)
	pr := make(map[string]bool)
	e.collect(up, pr, nil, false)
	return len(pr) > 0
}

// Rename returns e with variables renamed according to m. It implements the
// paper's substitution notation F[z/o] for variable-for-variable renaming
// (Appendix A.4); both primed and unprimed occurrences are renamed.
func Rename(e Expr, m map[string]string) Expr {
	sub := make(map[string]Expr, len(m))
	for from, to := range m {
		sub[from] = Var(to)
	}
	return e.Subst(sub)
}

// Unchanged returns the action asserting that none of the named variables
// changes: v1' = v1 ∧ … ∧ vn' = vn. This is the paper's v' = v for a tuple
// of variables.
func Unchanged(names ...string) Expr {
	xs := make([]Expr, len(names))
	for i, n := range names {
		xs[i] = Eq(PrimedVar(n), Var(n))
	}
	return And(xs...)
}

// UnchangedExpr returns the action f' = f for a state function f.
func UnchangedExpr(f Expr) Expr { return Eq(Prime(f), f) }

// Square returns [A]_f ≜ A ∨ (f' = f), the action allowing stuttering on f
// (§2.1).
func Square(action Expr, sub Expr) Expr { return Or(action, UnchangedExpr(sub)) }

// Angle returns ⟨A⟩_f ≜ A ∧ (f' ≠ f), an A step that changes f.
func Angle(action Expr, sub Expr) Expr { return And(action, Ne(Prime(sub), sub)) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
