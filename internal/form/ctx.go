package form

import (
	"fmt"
	"sort"

	"opentla/internal/state"
	"opentla/internal/value"
)

// Ctx carries the semantic context needed to evaluate temporal formulas:
// the finite domains of the flexible variables (used by Enabled and by
// witness search for ∃ hiding) and resource bounds.
type Ctx struct {
	// Domains maps each flexible variable to its finite domain.
	Domains map[string][]value.Value

	// Unroll is the maximum cycle-unrolling factor used when searching for
	// hidden-variable witnesses on lassos (default 2 if zero).
	Unroll int

	// MaxWitness caps the number of hidden-variable assignments tried per
	// ∃ evaluation (default 200000 if zero).
	MaxWitness int
}

// NewCtx returns a context with the given variable domains and default
// bounds.
func NewCtx(domains map[string][]value.Value) *Ctx {
	return &Ctx{Domains: domains}
}

func (c *Ctx) unroll() int {
	if c.Unroll <= 0 {
		return 2
	}
	return c.Unroll
}

func (c *Ctx) maxWitness() int {
	if c.MaxWitness <= 0 {
		return 200000
	}
	return c.MaxWitness
}

// Domain returns the domain of a variable, or an error if none is declared.
func (c *Ctx) Domain(name string) ([]value.Value, error) {
	d, ok := c.Domains[name]
	if !ok || len(d) == 0 {
		return nil, fmt.Errorf("no domain declared for variable %q", name)
	}
	return d, nil
}

// Enabled reports whether the action A is enabled in state s: whether some
// successor state t (over the declared domains) makes A true of ⟨s, t⟩
// (§2.1). Only variables with primed occurrences in A are varied; all other
// variables keep their values in s, which is sound because A's truth cannot
// depend on them.
//
// Enabled analyses the action's structure before enumerating, in the style
// of TLC's action evaluation: top-level disjunctions are split, primeless
// conjuncts are evaluated as guards, and conjuncts of the form x' = e with
// e primeless determine x's next value directly. Only the remaining primed
// variables are enumerated over their domains.
func (c *Ctx) Enabled(a Expr, s *state.State) (bool, error) {
	return c.enabledConj(flattenAnd(a, nil), s)
}

// flattenAnd appends the conjuncts of a (flattening nested AndE) to out.
func flattenAnd(a Expr, out []Expr) []Expr {
	if and, ok := a.(AndE); ok {
		for _, x := range and.Xs {
			out = flattenAnd(x, out)
		}
		return out
	}
	return append(out, a)
}

func (c *Ctx) enabledConj(conjs []Expr, s *state.State) (bool, error) {
	// Distribute over the first top-level disjunction.
	for i, cj := range conjs {
		or, ok := cj.(OrE)
		if !ok {
			continue
		}
		for _, branch := range or.Xs {
			sub := make([]Expr, 0, len(conjs)+1)
			sub = append(sub, conjs[:i]...)
			sub = flattenAnd(branch, sub)
			sub = append(sub, conjs[i+1:]...)
			enabled, err := c.enabledConj(sub, s)
			if err != nil {
				return false, err
			}
			if enabled {
				return true, nil
			}
		}
		return false, nil
	}

	// Pure conjunction: guards, determined assignments, and the rest.
	determined := make(map[string]value.Value)
	var rest []Expr
	for _, cj := range conjs {
		if !HasPrimes(cj) {
			ok, err := EvalStateBool(cj, s)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
			continue
		}
		if name, rhs, ok := determinedAssignment(cj); ok {
			v, err := rhs.Eval(state.Step{From: s}, nil)
			if err != nil {
				return false, err
			}
			if prev, dup := determined[name]; dup {
				if !prev.Equal(v) {
					return false, nil // conflicting determinations
				}
				continue
			}
			// The successor must stay inside the universe: a determined
			// value outside the variable's domain disables the action.
			if dom, ok := c.Domains[name]; ok {
				inDomain := false
				for _, dv := range dom {
					if dv.Equal(v) {
						inDomain = true
						break
					}
				}
				if !inDomain {
					return false, nil
				}
			}
			determined[name] = v
			continue
		}
		rest = append(rest, cj)
	}

	// Enumerate the primed variables not yet determined.
	primedSet := make(map[string]bool)
	for _, cj := range conjs {
		for _, v := range PrimedVars(cj) {
			primedSet[v] = true
		}
	}
	var free []string
	for v := range primedSet {
		if _, done := determined[v]; !done {
			free = append(free, v)
		}
	}
	sort.Strings(free)
	for _, v := range free {
		if _, err := c.Domain(v); err != nil {
			return false, fmt.Errorf("Enabled: %w", err)
		}
	}
	// Conjuncts still needing verification on each candidate: the rest,
	// plus determined conjuncts only if their variables interact (already
	// satisfied by construction otherwise).
	//
	// When every varied variable is already bound in s (the normal case:
	// system states bind the full variable set), candidates are built with
	// one positional slice copy each; otherwise fall back to map merging.
	detUps := make([]state.PosUpdate, 0, len(determined))
	positional := true
	for k, v := range determined {
		p, ok := s.PosOf(k)
		if !ok {
			positional = false
			break
		}
		detUps = append(detUps, state.PosUpdate{Pos: p, Val: v})
	}
	freeUps := make([]state.PosUpdate, len(free))
	freeDoms := make([][]value.Value, len(free))
	if positional {
		for i, v := range free {
			p, ok := s.PosOf(v)
			if !ok {
				positional = false
				break
			}
			freeUps[i] = state.PosUpdate{Pos: p}
			freeDoms[i] = c.Domains[v]
		}
	}
	if positional {
		// Mixed-radix enumeration with the LAST variable varying fastest,
		// matching value.ForEachAssignment's order. Candidates only need to
		// live for one evaluation, so they share one scratch state.
		freeIdx := make([]int, len(free))
		scratch := state.New(nil)
		for {
			for i := range free {
				freeUps[i].Val = freeDoms[i][freeIdx[i]]
			}
			s.OverwriteInto(scratch, detUps, freeUps)
			st := state.Step{From: s, To: scratch}
			sat := true
			for _, cj := range rest {
				ok, err := EvalBool(cj, st, nil)
				if err != nil {
					return false, err
				}
				if !ok {
					sat = false
					break
				}
			}
			if sat {
				return true, nil
			}
			fi := len(free) - 1
			for fi >= 0 {
				freeIdx[fi]++
				if freeIdx[fi] < len(freeDoms[fi]) {
					break
				}
				freeIdx[fi] = 0
				fi--
			}
			if fi < 0 {
				return false, nil
			}
		}
	}
	enabled := false
	var evalErr error
	value.ForEachAssignment(free, c.Domains, func(asgn map[string]value.Value) bool {
		full := make(map[string]value.Value, len(asgn)+len(determined))
		for k, v := range determined {
			full[k] = v
		}
		for k, v := range asgn {
			full[k] = v
		}
		t := s.WithAll(full)
		st := state.Step{From: s, To: t}
		for _, cj := range rest {
			ok, err := EvalBool(cj, st, nil)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true // try next assignment
			}
		}
		enabled = true
		return false
	})
	if evalErr != nil {
		return false, evalErr
	}
	return enabled, nil
}

// determinedAssignment recognises conjuncts of the form x' = e or e = x'
// with e primeless, which pin the next value of x.
func determinedAssignment(cj Expr) (string, Expr, bool) {
	eq, ok := cj.(CmpE)
	if !ok || eq.Op != OpEq {
		return "", nil, false
	}
	if name, ok := primedVarName(eq.A); ok && !HasPrimes(eq.B) {
		return name, eq.B, true
	}
	if name, ok := primedVarName(eq.B); ok && !HasPrimes(eq.A) {
		return name, eq.A, true
	}
	return "", nil, false
}

func primedVarName(e Expr) (string, bool) {
	p, ok := e.(PrimeE)
	if !ok {
		return "", false
	}
	v, ok := p.X.(VarE)
	if !ok {
		return "", false
	}
	return v.Name, true
}

// EnabledAngle reports whether ⟨A⟩_sub is enabled in s: some successor
// makes A true and changes the state function sub.
func (c *Ctx) EnabledAngle(a Expr, sub Expr, s *state.State) (bool, error) {
	return c.Enabled(Angle(a, sub), s)
}
