package form

// Disjoint returns the interleaving assumption Disjoint(v1, …, vn) of §2.3:
// no two of the variable tuples change simultaneously,
//
//	Disjoint(v1,…,vn) ≜ ⋀_{i≠j} □[(vi' = vi) ∨ (vj' = vj)]_⟨vi,vj⟩.
//
// It is used as the conditional-implementation formula G when composing
// interleaving specifications (§5, §A.5).
func Disjoint(tuples ...[]string) Formula {
	var fs []Formula
	for i := range tuples {
		for j := i + 1; j < len(tuples); j++ {
			fs = append(fs, disjointPair(tuples[i], tuples[j]))
		}
	}
	return AndF(fs...)
}

func disjointPair(vi, vj []string) Formula {
	action := Or(Unchanged(vi...), Unchanged(vj...))
	both := make([]string, 0, len(vi)+len(vj))
	both = append(both, vi...)
	both = append(both, vj...)
	return ActBox(action, VarTuple(both...))
}

// DisjointSteps returns the per-step square actions of Disjoint — one
// [(vi'=vi) ∨ (vj'=vj)]_⟨vi,vj⟩ action per pair — for use as transition
// constraints when building a transition system.
func DisjointSteps(tuples ...[]string) []Expr {
	var out []Expr
	for i := range tuples {
		for j := i + 1; j < len(tuples); j++ {
			action := Or(Unchanged(tuples[i]...), Unchanged(tuples[j]...))
			both := make([]string, 0, len(tuples[i])+len(tuples[j]))
			both = append(both, tuples[i]...)
			both = append(both, tuples[j]...)
			out = append(out, Square(action, VarTuple(both...)))
		}
	}
	return out
}
