package form

import (
	"fmt"

	"opentla/internal/state"
	"opentla/internal/value"
)

// PrefixFormula is implemented by formulas that can decide satisfaction by
// a finite behavior. Per §2.4, a finite behavior ρ satisfies F iff ρ can be
// extended to an infinite behavior satisfying F.
//
// The implementations cover the machine-closed fragment used throughout the
// paper: state predicates, □[N]_v, invariants □P, fairness conjuncts (any
// finite behavior satisfying the safety part of a canonical spec is
// extendable to satisfy its fairness — Proposition 1), ◇/liveness formulas
// (extendable by any prefix since behaviors are unconstrained sequences),
// conjunction, disjunction, and ∃ hiding (by witness search).
type PrefixFormula interface {
	Formula
	// EvalPrefix decides whether the finite behavior b satisfies the
	// formula (is extendable to an infinite behavior satisfying it).
	EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error)
}

// EvalOnPrefix decides whether the finite behavior b satisfies f, returning
// an error for formulas outside the prefix-decidable fragment.
func EvalOnPrefix(ctx *Ctx, f Formula, b state.Behavior) (bool, error) {
	pf, ok := f.(PrefixFormula)
	if !ok {
		return false, fmt.Errorf("formula %s: finite-behavior satisfaction not decidable for this form", f)
	}
	return pf.EvalPrefix(ctx, b)
}

// EvalPrefix implements PrefixFormula. The empty behavior satisfies every
// satisfiable formula; we treat it as satisfying all formulas of the
// fragment (all of which are satisfiable).
func (f PredF) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) {
	if len(b) == 0 {
		return true, nil
	}
	return EvalStateBool(f.P, b[0])
}

// EvalPrefix implements PrefixFormula: every step of the prefix must be an
// [A]_sub step. Extension by stuttering then satisfies □[A]_sub, so the
// check is exact.
func (f ActBoxF) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) {
	sq := Square(f.A, f.Sub)
	for i := 0; i+1 < len(b); i++ {
		ok, err := EvalBool(sq, state.Step{From: b[i], To: b[i+1]}, nil)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// EvalPrefix implements PrefixFormula for the invariant case □P with P a
// state predicate (or any prefix-decidable F such that F-satisfaction of
// all suffixes extends by stuttering). Only □ of a state predicate is
// supported exactly; other bodies return an error.
func (f AlwaysF) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) {
	p, ok := f.F.(PredF)
	if !ok {
		return false, fmt.Errorf("formula %s: finite-behavior satisfaction supported only for []P with P a state predicate", f)
	}
	for _, s := range b {
		ok, err := EvalStateBool(p.P, s)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// EvalPrefix implements PrefixFormula. A conjunction of canonical-form
// safety parts is prefix-satisfied iff each conjunct is: the stuttering
// extension witnesses all conjuncts simultaneously. With machine-closed
// fairness conjuncts the equality still holds (Proposition 1 and §5: the
// conjunction of component specifications is equivalent to a canonical
// complete-system specification).
func (f AndFm) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) {
	for _, g := range f.Fs {
		ok, err := EvalOnPrefix(ctx, g, b)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// EvalPrefix implements PrefixFormula. ρ satisfies F ∨ G iff it satisfies
// F or satisfies G (an extension satisfying the disjunction satisfies a
// disjunct); this case is exact for arbitrary disjuncts.
func (f OrFm) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) {
	for _, g := range f.Fs {
		ok, err := EvalOnPrefix(ctx, g, b)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// EvalPrefix implements PrefixFormula: any finite behavior extends to one
// satisfying ◇F, provided F is satisfiable from an arbitrary state — true
// for the liveness formulas used here (behaviors are unconstrained state
// sequences, so the extension may move to any state).
func (f EventuallyF) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) { return true, nil }

// EvalPrefix implements PrefixFormula: fairness formulas constrain only the
// infinite part of a behavior; every finite behavior can be extended to
// satisfy WF/SF (e.g. by stuttering if the action is never enabled, or by
// taking the action whenever enabled). This is the machine-closure property
// that Proposition 1 depends on.
func (f FairF) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) { return true, nil }

// EvalPrefix implements PrefixFormula by searching for hidden-variable
// witnesses over the positions of the prefix.
func (f ExistsFm) EvalPrefix(ctx *Ctx, b state.Behavior) (bool, error) {
	for _, v := range f.Vars {
		if _, err := ctx.Domain(v); err != nil {
			return false, fmt.Errorf("hiding %v: %w", f.Vars, err)
		}
	}
	n := len(b)
	if n == 0 {
		return true, nil
	}
	budget := ctx.maxWitness()
	assignment := make([]map[string]value.Value, n)
	var dfs func(i int) (bool, error)
	dfs = func(i int) (bool, error) {
		if i == n {
			aug := make(state.Behavior, n)
			for j := 0; j < n; j++ {
				aug[j] = b[j].WithAll(assignment[j])
			}
			return EvalOnPrefix(ctx, f.F, aug)
		}
		found := false
		var evalErr error
		value.ForEachAssignment(f.Vars, ctx.Domains, func(a map[string]value.Value) bool {
			budget--
			if budget < 0 {
				evalErr = fmt.Errorf("hiding %v: prefix witness search exceeded budget", f.Vars)
				return false
			}
			cp := make(map[string]value.Value, len(a))
			for k, v := range a {
				cp[k] = v
			}
			assignment[i] = cp
			ok, err := dfs(i + 1)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				found = true
				return false
			}
			return true
		})
		if evalErr != nil {
			return false, evalErr
		}
		return found, nil
	}
	return dfs(0)
}

// Infinite is the death index of a behavior that never violates a formula.
const Infinite = -1

// DeathIndex returns the least prefix length n at which the lasso's behavior
// stops satisfying f (so prefixes of length < n satisfy f and those of
// length ≥ n do not), or Infinite if every finite prefix satisfies f.
//
// For the prefix-decidable fragment, prefix satisfaction is monotone
// (downward closed), and any violation of a safety formula manifests within
// PrefixLen+CycleLen+2 states of a lasso, so the scan below is exact.
func DeathIndex(ctx *Ctx, f Formula, l *state.Lasso) (int, error) {
	limit := l.Horizon() + 2
	for n := 0; n <= limit; n++ {
		ok, err := EvalOnPrefix(ctx, f, l.FinitePrefix(n))
		if err != nil {
			return 0, err
		}
		if !ok {
			return n, nil
		}
	}
	return Infinite, nil
}

// dies reports whether a death index is finite.
func dies(d int) bool { return d != Infinite }
