package form

import (
	"errors"
	"sync"

	"opentla/internal/state"
	"opentla/internal/value"
)

// CompiledPred is a compiled boolean step predicate: the closure-tree form of an
// Expr, specialized to states that bind exactly one fixed variable layout.
// Variable occurrences are resolved to binding positions at compile time, so
// evaluation reads states positionally (state.At) instead of binary-searching
// names, and the stutter-equality shapes that dominate checking — v' = v and
// ⟨v1,…,vn⟩' = ⟨v1,…,vn⟩ from form.Square/Unchanged — run without allocating
// the tuples the interpreter would build.
//
// A CompiledPred is safe for concurrent use: the closure tree is immutable and reads
// only the step it is given.
type CompiledPred func(st state.Step) (bool, error)

// errCompiled is the internal sentinel raised by compiled fast paths when
// evaluation cannot complete (kind mismatch, missing successor state, …).
// CompilePred's wrapper converts any compiled-path error into a full
// interpreter evaluation, so callers always observe the interpreter's
// canonical error messages — compiled closures never invent their own.
var errCompiled = errors.New("form: compiled evaluation fell back to the interpreter")

// CompilePred compiles e into a CompiledPred for steps over states binding exactly
// the variables of layout (sorted, as produced by ts.System.Vars or
// state.Vars). The compiled predicate is semantically identical to
// EvalBool(e, st, nil): same verdicts, and on failure the same error
// messages (errors re-derive through the interpreter). Steps whose states do
// not match the layout's variable count are evaluated by the interpreter, so
// a mismatched caller degrades to slow-but-correct.
func CompilePred(e Expr, layout []string) CompiledPred {
	c := &compiler{pos: make(map[string]int, len(layout))}
	for i, v := range layout {
		c.pos[v] = i
	}
	n := len(layout)
	f := c.pred(e, false)
	return func(st state.Step) (bool, error) {
		if st.From == nil || st.From.Len() != n || (st.To != nil && st.To.Len() != n) {
			return EvalBool(e, st, nil)
		}
		b, err := f(st)
		if err != nil {
			return EvalBool(e, st, nil)
		}
		return b, nil
	}
}

// LazyPred returns a CompiledPred that compiles e on first evaluation, deriving the
// layout from the first step's From state. It exists for evaluators (monitor
// callbacks) constructed before any state exists; the one-time compilation
// is synchronized, so the result is safe for concurrent workers.
func LazyPred(e Expr) CompiledPred {
	var once sync.Once
	var fn CompiledPred
	return func(st state.Step) (bool, error) {
		once.Do(func() {
			if st.From != nil {
				fn = CompilePred(e, st.From.Vars())
			} else {
				fn = func(st state.Step) (bool, error) { return EvalBool(e, st, nil) }
			}
		})
		return fn(st)
	}
}

// boolFn and valFn are the compiled closure forms of predicates and value
// expressions. primed contexts (inside x') read st.To where unprimed read
// st.From, mirroring PrimeE.Eval's state shift without re-wrapping steps.
type (
	boolFn func(st state.Step) (bool, error)
	valFn  func(st state.Step) (value.Value, error)
)

type compiler struct {
	pos map[string]int
}

// interpVal is the universal fallback: interpret the subtree. In a primed
// context the step is shifted exactly as PrimeE.Eval does, so nested primes
// and quantifiers behave identically to the interpreter.
func interpVal(e Expr, primed bool) valFn {
	if primed {
		return func(st state.Step) (value.Value, error) {
			return e.Eval(state.Step{From: st.To}, nil)
		}
	}
	return func(st state.Step) (value.Value, error) {
		return e.Eval(st, nil)
	}
}

// pred compiles e as a boolean.
func (c *compiler) pred(e Expr, primed bool) boolFn {
	switch n := e.(type) {
	case ConstE:
		if b, ok := n.V.AsBool(); ok {
			return func(state.Step) (bool, error) { return b, nil }
		}
	case AndE:
		fs := make([]boolFn, len(n.Xs))
		for i, x := range n.Xs {
			fs[i] = c.pred(x, primed)
		}
		return func(st state.Step) (bool, error) {
			for _, f := range fs {
				b, err := f(st)
				if err != nil || !b {
					return false, err
				}
			}
			return true, nil
		}
	case OrE:
		fs := make([]boolFn, len(n.Xs))
		for i, x := range n.Xs {
			fs[i] = c.pred(x, primed)
		}
		return func(st state.Step) (bool, error) {
			for _, f := range fs {
				b, err := f(st)
				if err != nil || b {
					return b, err
				}
			}
			return false, nil
		}
	case NotE:
		f := c.pred(n.X, primed)
		return func(st state.Step) (bool, error) {
			b, err := f(st)
			return !b && err == nil, err
		}
	case ImpliesE:
		fa := c.pred(n.A, primed)
		fb := c.pred(n.B, primed)
		return func(st state.Step) (bool, error) {
			a, err := fa(st)
			if err != nil {
				return false, err
			}
			if !a {
				return true, nil
			}
			return fb(st)
		}
	case EquivE:
		fa := c.pred(n.A, primed)
		fb := c.pred(n.B, primed)
		return func(st state.Step) (bool, error) {
			a, err := fa(st)
			if err != nil {
				return false, err
			}
			b, err := fb(st)
			if err != nil {
				return false, err
			}
			return a == b, nil
		}
	case CmpE:
		return c.cmp(n, primed)
	}
	f := c.val(e, primed)
	return func(st state.Step) (bool, error) {
		v, err := f(st)
		if err != nil {
			return false, err
		}
		b, ok := v.AsBool()
		if !ok {
			return false, errCompiled
		}
		return b, nil
	}
}

// varNames recognizes the subscript shapes of Square/Unchanged: a single
// variable or a tuple of variables.
func varNames(e Expr) ([]string, bool) {
	switch n := e.(type) {
	case VarE:
		return []string{n.Name}, true
	case TupleE:
		out := make([]string, len(n.Xs))
		for i, x := range n.Xs {
			v, ok := x.(VarE)
			if !ok {
				return nil, false
			}
			out[i] = v.Name
		}
		return out, true
	}
	return nil, false
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stutterPositions detects f' = f for f a variable or variable tuple and
// resolves the positions, the zero-allocation fast path for the unchanged
// checks at the heart of [A]_v evaluation.
func (c *compiler) stutterPositions(a, b Expr) ([]int, bool) {
	// Accept f' = f with the prime on either side.
	var prime PrimeE
	var other Expr
	if p, ok := a.(PrimeE); ok {
		prime, other = p, b
	} else if p, ok := b.(PrimeE); ok {
		prime, other = p, a
	} else {
		return nil, false
	}
	pn, ok := varNames(prime.X)
	if !ok {
		return nil, false
	}
	on, ok := varNames(other)
	if !ok || !equalNames(pn, on) {
		return nil, false
	}
	ps := make([]int, len(pn))
	for i, name := range pn {
		p, ok := c.pos[name]
		if !ok {
			return nil, false
		}
		ps[i] = p
	}
	return ps, true
}

// cmp compiles a comparison. Equality gets two fast paths: the stutter shape
// f' = f over variable layouts, and elementwise tuple comparison (both sides
// syntactic tuples of equal length), neither of which allocates.
func (c *compiler) cmp(n CmpE, primed bool) boolFn {
	if (n.Op == OpEq || n.Op == OpNe) && !primed {
		if ps, ok := c.stutterPositions(n.A, n.B); ok {
			neq := n.Op == OpNe
			return func(st state.Step) (bool, error) {
				if st.To == nil {
					return false, errCompiled
				}
				for _, p := range ps {
					if !st.From.At(p).Equal(st.To.At(p)) {
						return neq, nil
					}
				}
				return !neq, nil
			}
		}
	}
	if n.Op == OpEq || n.Op == OpNe {
		ta, aOK := n.A.(TupleE)
		tb, bOK := n.B.(TupleE)
		if aOK && bOK && len(ta.Xs) == len(tb.Xs) {
			fas := make([]valFn, len(ta.Xs))
			fbs := make([]valFn, len(tb.Xs))
			for i := range ta.Xs {
				fas[i] = c.val(ta.Xs[i], primed)
				fbs[i] = c.val(tb.Xs[i], primed)
			}
			neq := n.Op == OpNe
			return func(st state.Step) (bool, error) {
				// No short-circuit on inequality: the interpreter evaluates
				// every element before comparing, so an element whose
				// evaluation fails must fail here too.
				eq := true
				for i := range fas {
					a, err := fas[i](st)
					if err != nil {
						return false, err
					}
					b, err := fbs[i](st)
					if err != nil {
						return false, err
					}
					if eq && !a.Equal(b) {
						eq = false
					}
				}
				return eq != neq, nil
			}
		}
	}
	fa := c.val(n.A, primed)
	fb := c.val(n.B, primed)
	op := n.Op
	return func(st state.Step) (bool, error) {
		a, err := fa(st)
		if err != nil {
			return false, err
		}
		b, err := fb(st)
		if err != nil {
			return false, err
		}
		switch op {
		case OpEq:
			return a.Equal(b), nil
		case OpNe:
			return !a.Equal(b), nil
		}
		if a.Kind() != b.Kind() {
			return false, errCompiled
		}
		cv := a.Compare(b)
		switch op {
		case OpLt:
			return cv < 0, nil
		case OpLe:
			return cv <= 0, nil
		case OpGt:
			return cv > 0, nil
		case OpGe:
			return cv >= 0, nil
		}
		return false, errCompiled
	}
}

// val compiles e as a value.
func (c *compiler) val(e Expr, primed bool) valFn {
	switch n := e.(type) {
	case ConstE:
		v := n.V
		return func(state.Step) (value.Value, error) { return v, nil }
	case VarE:
		p, ok := c.pos[n.Name]
		if !ok {
			// Unknown in the layout: unbound at runtime (or rigid, which only
			// occurs under quantifiers the compiler does not descend into).
			return interpVal(e, primed)
		}
		if primed {
			return func(st state.Step) (value.Value, error) {
				return st.To.At(p), nil
			}
		}
		return func(st state.Step) (value.Value, error) {
			return st.From.At(p), nil
		}
	case PrimeE:
		if primed {
			// x'' — the interpreter evaluates the inner prime against a step
			// with no successor state, which always errors.
			return func(state.Step) (value.Value, error) { return value.Value{}, errCompiled }
		}
		f := c.val(n.X, true)
		return func(st state.Step) (value.Value, error) {
			if st.To == nil {
				return value.Value{}, errCompiled
			}
			return f(st)
		}
	case AndE, OrE, NotE, ImpliesE, EquivE, CmpE:
		f := c.pred(e, primed)
		return func(st state.Step) (value.Value, error) {
			b, err := f(st)
			if err != nil {
				return value.Value{}, err
			}
			return value.Bool(b), nil
		}
	case ArithE:
		fa := c.val(n.A, primed)
		fb := c.val(n.B, primed)
		op := n.Op
		return func(st state.Step) (value.Value, error) {
			av, err := fa(st)
			if err != nil {
				return value.Value{}, err
			}
			bv, err := fb(st)
			if err != nil {
				return value.Value{}, err
			}
			a, ok := av.AsInt()
			if !ok {
				return value.Value{}, errCompiled
			}
			b, ok := bv.AsInt()
			if !ok {
				return value.Value{}, errCompiled
			}
			switch op {
			case OpAdd:
				return value.Int(a + b), nil
			case OpSub:
				return value.Int(a - b), nil
			case OpMul:
				return value.Int(a * b), nil
			case OpMod:
				if b <= 0 {
					return value.Value{}, errCompiled
				}
				return value.Int(((a % b) + b) % b), nil
			}
			return value.Value{}, errCompiled
		}
	case IfE:
		fc := c.pred(n.C, primed)
		ft := c.val(n.T, primed)
		fe := c.val(n.E, primed)
		return func(st state.Step) (value.Value, error) {
			cond, err := fc(st)
			if err != nil {
				return value.Value{}, err
			}
			if cond {
				return ft(st)
			}
			return fe(st)
		}
	case TupleE:
		fs := make([]valFn, len(n.Xs))
		for i, x := range n.Xs {
			fs[i] = c.val(x, primed)
		}
		return func(st state.Step) (value.Value, error) {
			elems := make([]value.Value, len(fs))
			for i, f := range fs {
				v, err := f(st)
				if err != nil {
					return value.Value{}, err
				}
				elems[i] = v
			}
			return value.Tuple(elems...), nil
		}
	case SeqUnE:
		f := c.val(n.X, primed)
		op := n.Op
		return func(st state.Step) (value.Value, error) {
			v, err := f(st)
			if err != nil {
				return value.Value{}, err
			}
			switch op {
			case OpHead:
				h, ok := v.Head()
				if !ok {
					return value.Value{}, errCompiled
				}
				return h, nil
			case OpTail:
				t, ok := v.Tail()
				if !ok {
					return value.Value{}, errCompiled
				}
				return t, nil
			case OpLen:
				l := v.Len()
				if l < 0 {
					return value.Value{}, errCompiled
				}
				return value.Int(int64(l)), nil
			}
			return value.Value{}, errCompiled
		}
	case ConcatE:
		fa := c.val(n.A, primed)
		fb := c.val(n.B, primed)
		return func(st state.Step) (value.Value, error) {
			a, err := fa(st)
			if err != nil {
				return value.Value{}, err
			}
			b, err := fb(st)
			if err != nil {
				return value.Value{}, err
			}
			cv, ok := a.Concat(b)
			if !ok {
				return value.Value{}, errCompiled
			}
			return cv, nil
		}
	}
	// QuantE and any future node kinds interpret, preserving rigid-variable
	// binding semantics exactly.
	return interpVal(e, primed)
}
