package form

import (
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

// Micro-benchmarks for the evaluation kernel: these dominate the model
// checker's inner loops.

func benchStep() state.Step {
	from := state.FromPairs(
		"x", value.Int(1), "y", value.Int(2),
		"q", value.Tuple(value.Int(0), value.Int(1)),
	)
	to := from.WithAll(map[string]value.Value{
		"x": value.Int(2),
		"q": value.Tuple(value.Int(1)),
	})
	return state.Step{From: from, To: to}
}

func BenchmarkEvalComparison(b *testing.B) {
	e := And(Lt(Var("x"), Var("y")), Eq(PrimedVar("x"), Var("y")))
	st := benchStep()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBool(e, st, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalSequenceAction(b *testing.B) {
	e := And(
		Gt(Len(Var("q")), IntC(0)),
		Eq(PrimedVar("q"), Tail(Var("q"))),
		Eq(PrimedVar("x"), Head(Var("q"))),
	)
	st := benchStep()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBool(e, st, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnabledStructured(b *testing.B) {
	// The optimized Enabled path: guards + determined assignments.
	dom := value.Ints(0, 2)
	ctx := NewCtx(map[string][]value.Value{"x": dom, "y": dom})
	a := Or(
		And(Lt(Var("x"), IntC(2)), Eq(PrimedVar("x"), Add(Var("x"), IntC(1))), Unchanged("y")),
		And(Gt(Var("y"), IntC(0)), Eq(PrimedVar("y"), Sub(Var("y"), IntC(1))), Unchanged("x")),
	)
	s := state.FromPairs("x", value.Int(0), "y", value.Int(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Enabled(a, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnabledEnumerative(b *testing.B) {
	// A shape the analyzer cannot decompose: forces domain enumeration.
	dom := value.Ints(0, 2)
	ctx := NewCtx(map[string][]value.Value{"x": dom, "y": dom})
	a := Ne(Add(PrimedVar("x"), PrimedVar("y")), Add(Var("x"), Var("y")))
	s := state.FromPairs("x", value.Int(0), "y", value.Int(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Enabled(a, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeathIndex(b *testing.B) {
	ctx := NewCtx(map[string][]value.Value{"x": value.Ints(0, 3)})
	f := AndF(
		Pred(Eq(Var("x"), IntC(0))),
		ActBoxVars(Eq(PrimedVar("x"), Add(Var("x"), IntC(1))), "x"),
	)
	l := intLasso([]int64{0, 1, 2}, []int64{3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DeathIndex(ctx, f, l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhilePlusEval(b *testing.B) {
	ctx := agCtx()
	wp := WhilePlus(agE(), agM())
	l := emLasso([][2]int64{{0, 0}, {0, 0}}, [][2]int64{{1, 0}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := wp.Eval(ctx, l)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}
