package form

import (
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

// intLasso builds a lasso over variable x from prefix and cycle values.
func intLasso(prefix []int64, cycle []int64) *state.Lasso {
	mk := func(vs []int64) []*state.State {
		out := make([]*state.State, len(vs))
		for i, v := range vs {
			out[i] = st("x", value.Int(v))
		}
		return out
	}
	return &state.Lasso{Prefix: mk(prefix), Cycle: mk(cycle)}
}

func xCtx() *Ctx {
	return NewCtx(map[string][]value.Value{"x": value.Ints(0, 3)})
}

func evalF(t *testing.T, f Formula, l *state.Lasso) bool {
	t.Helper()
	ok, err := f.Eval(xCtx(), l)
	if err != nil {
		t.Fatalf("Eval(%s): %v", f, err)
	}
	return ok
}

func xEq(v int64) Expr { return Eq(Var("x"), IntC(v)) }

func TestPredFormula(t *testing.T) {
	l := intLasso([]int64{1}, []int64{2})
	if !evalF(t, Pred(xEq(1)), l) {
		t.Error("Pred reads the first state")
	}
	if evalF(t, Pred(xEq(2)), l) {
		t.Error("Pred should not read later states")
	}
}

func TestAlwaysEventually(t *testing.T) {
	l := intLasso([]int64{0, 1}, []int64{2, 3})
	cases := []struct {
		f    Formula
		want bool
	}{
		{AlwaysPred(Ge(Var("x"), IntC(0))), true},
		{AlwaysPred(Ge(Var("x"), IntC(1))), false}, // x=0 at start
		{EventuallyPred(xEq(3)), true},
		{EventuallyPred(xEq(9)), false},
		{Always(EventuallyPred(xEq(2))), true},  // 2 recurs in the cycle
		{Always(EventuallyPred(xEq(1))), false}, // 1 only in the prefix
		{Eventually(AlwaysPred(Ge(Var("x"), IntC(2)))), true},
		{Eventually(AlwaysPred(xEq(2))), false},
		{LeadsTo(xEq(0), xEq(3)), true},
		{LeadsTo(xEq(2), xEq(1)), false},
	}
	for _, c := range cases {
		if got := evalF(t, c.f, l); got != c.want {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestActBox(t *testing.T) {
	// Behavior 0 1 2 (2 2 ...): increments then stutters.
	l := intLasso([]int64{0, 1}, []int64{2})
	inc := Eq(PrimedVar("x"), Add(Var("x"), IntC(1)))
	if !evalF(t, ActBoxVars(inc, "x"), l) {
		t.Error("□[x'=x+1]_x should hold (stuttering allowed)")
	}
	dec := Eq(PrimedVar("x"), Sub(Var("x"), IntC(1)))
	if evalF(t, ActBoxVars(dec, "x"), l) {
		t.Error("□[x'=x−1]_x should fail")
	}
	// A cycle with a real change must satisfy the action on the wrap step.
	l2 := intLasso(nil, []int64{0, 1})
	if evalF(t, ActBoxVars(inc, "x"), l2) {
		t.Error("wrap-around step 1→0 is not an increment")
	}
	flip := Or(inc, Eq(PrimedVar("x"), Sub(Var("x"), IntC(1))))
	if !evalF(t, ActBoxVars(flip, "x"), l2) {
		t.Error("0↔1 should satisfy the flip action")
	}
}

func TestBooleanFormulaOps(t *testing.T) {
	l := intLasso(nil, []int64{1})
	tru := Pred(xEq(1))
	fls := Pred(xEq(0))
	if !evalF(t, AndF(tru, tru), l) || evalF(t, AndF(tru, fls), l) {
		t.Error("AndF")
	}
	if !evalF(t, OrF(fls, tru), l) || evalF(t, OrF(fls, fls), l) {
		t.Error("OrF")
	}
	if !evalF(t, NotF(fls), l) || evalF(t, NotF(tru), l) {
		t.Error("NotF")
	}
	if !evalF(t, ImpliesFm(fls, fls), l) || evalF(t, ImpliesFm(tru, fls), l) {
		t.Error("ImpliesFm")
	}
}

func TestWeakFairness(t *testing.T) {
	inc := And(Lt(Var("x"), IntC(3)), Eq(PrimedVar("x"), Add(Var("x"), IntC(1))))
	wf := WFVars(inc, "x")

	// Stuck at 0 forever with the increment enabled: WF violated.
	if evalF(t, wf, intLasso(nil, []int64{0})) {
		t.Error("WF should fail when enabled but never taken")
	}
	// Stuck at 3: increment disabled (guard), WF vacuous.
	if !evalF(t, wf, intLasso([]int64{0, 1, 2}, []int64{3})) {
		t.Error("WF should hold when the action is disabled in the cycle")
	}
	// Taking the action infinitely often: need a cycle with increments.
	// 0 1 2 3 back to 0 is not an increment on the wrap; but WF only needs
	// infinitely many ⟨inc⟩ steps, which the cycle 0..3 has.
	if !evalF(t, wf, intLasso(nil, []int64{0, 1, 2, 3})) {
		t.Error("WF should hold when the action recurs")
	}
}

func TestStrongFairness(t *testing.T) {
	inc := And(Lt(Var("x"), IntC(3)), Eq(PrimedVar("x"), Add(Var("x"), IntC(1))))
	sf := SFVars(inc, "x")
	// Cycle 0 (enabled, never taken): SF fails.
	if evalF(t, sf, intLasso(nil, []int64{0})) {
		t.Error("SF should fail: enabled infinitely often, never taken")
	}
	// Cycle alternates 3 (disabled) and 0 (enabled) without taking inc:
	// enabled infinitely often → SF fails, but WF holds (disabled i.o.).
	l := intLasso(nil, []int64{3, 0})
	// The step 3→0 and 0→3 are not increments.
	if evalF(t, sf, l) {
		t.Error("SF should fail on intermittently enabled, never taken")
	}
	if !evalF(t, WFVars(inc, "x"), l) {
		t.Error("WF should hold (disabled infinitely often)")
	}
	// Disabled forever: SF vacuous.
	if !evalF(t, sf, intLasso(nil, []int64{3})) {
		t.Error("SF should hold when never enabled in the cycle")
	}
}

func TestExistsHidingEval(t *testing.T) {
	// ∃h : □(h = x): trivially witnessable.
	ctx := NewCtx(map[string][]value.Value{
		"x": value.Ints(0, 1),
		"h": value.Ints(0, 1),
	})
	l := intLasso(nil, []int64{0, 1})
	f := ExistsF([]string{"h"}, AlwaysPred(Eq(Var("h"), Var("x"))))
	ok, err := f.Eval(ctx, l)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !ok {
		t.Error("∃h: □(h=x) should hold")
	}
	// ∃h : □(h = 0 ∧ h = x) fails when x becomes 1.
	f2 := ExistsF([]string{"h"}, AlwaysPred(And(Eq(Var("h"), IntC(0)), Eq(Var("h"), Var("x")))))
	ok, err = f2.Eval(ctx, l)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if ok {
		t.Error("∃h: □(h=0 ∧ h=x) should fail")
	}
	// Hidden counter: ∃h: h starts 0 and □[h'=1−h]_h with h≠x impossible
	// when x covers both values... simpler: hiding with an undeclared
	// domain errors.
	f3 := ExistsF([]string{"nodomain"}, AlwaysPred(TrueE))
	if _, err := f3.Eval(ctx, l); err == nil {
		t.Error("hiding without a domain should error")
	}
}

func TestExistsHidingNeedsUnrolling(t *testing.T) {
	// The visible cycle has period 1 (x constant 0) but the witness must
	// alternate h: ∃h: □[h' = 1−h]_h ∧ □◇(h=1) ∧ □◇(h=0)… simplest:
	// ∃h: □⟨h changes⟩ — need period-2 hidden values on a period-1 visible
	// cycle, found only with unrolling ≥ 2.
	ctx := NewCtx(map[string][]value.Value{
		"x": value.Ints(0, 1),
		"h": value.Ints(0, 1),
	})
	l := intLasso(nil, []int64{0})
	f := ExistsF([]string{"h"}, AndF(
		ActBoxVars(Eq(PrimedVar("h"), Sub(IntC(1), Var("h"))), "h"),
		Always(EventuallyPred(Eq(Var("h"), IntC(1)))),
		Always(EventuallyPred(Eq(Var("h"), IntC(0)))),
	))
	ok, err := f.Eval(ctx, l)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !ok {
		t.Error("witness requires unrolling the cycle; default Unroll=2 should find it")
	}
	// With Unroll=1 it must fail (h would have to be constant).
	ctx.Unroll = 1
	ok, err = f.Eval(ctx, l)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if ok {
		t.Error("period-1 witness cannot alternate")
	}
}

func TestRenameFormula(t *testing.T) {
	f := AndF(Pred(xEq(0)), ActBoxVars(Eq(PrimedVar("x"), IntC(1)), "x"))
	g := RenameFormula(f, map[string]string{"x": "y"})
	l := &state.Lasso{Cycle: []*state.State{st("y", value.Int(0))}}
	ctx := NewCtx(map[string][]value.Value{"y": value.Ints(0, 1)})
	ok, err := g.Eval(ctx, l)
	if err != nil {
		t.Fatalf("Eval renamed: %v", err)
	}
	if !ok {
		t.Error("renamed formula should hold on the y-behavior")
	}
}

func TestDisjointFormula(t *testing.T) {
	ctx := NewCtx(map[string][]value.Value{
		"a": value.Bits(), "b": value.Bits(),
	})
	d := Disjoint([]string{"a"}, []string{"b"})
	// a and b change on different steps: fine.
	good := &state.Lasso{Prefix: []*state.State{
		st("a", value.Int(0), "b", value.Int(0)),
		st("a", value.Int(1), "b", value.Int(0)),
	}, Cycle: []*state.State{st("a", value.Int(1), "b", value.Int(1))}}
	ok, err := d.Eval(ctx, good)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("sequential changes should satisfy Disjoint")
	}
	// Simultaneous change violates it.
	bad := &state.Lasso{Prefix: []*state.State{
		st("a", value.Int(0), "b", value.Int(0)),
	}, Cycle: []*state.State{st("a", value.Int(1), "b", value.Int(1))}}
	ok, err = d.Eval(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("simultaneous change should violate Disjoint")
	}
}

func TestClosureFormula(t *testing.T) {
	ctx := xCtx()
	// F = x=0 ∧ □[x'=x+1]_x ∧ WF: closure drops the WF.
	inc := And(Lt(Var("x"), IntC(3)), Eq(PrimedVar("x"), Add(Var("x"), IntC(1))))
	f := AndF(Pred(xEq(0)), ActBoxVars(inc, "x"), WFVars(inc, "x"))
	c := Closure(f)
	// Stuck at 0: violates WF but satisfies the closure.
	stuck := intLasso(nil, []int64{0})
	okF, err := f.Eval(ctx, stuck)
	if err != nil {
		t.Fatal(err)
	}
	okC, err := c.Eval(ctx, stuck)
	if err != nil {
		t.Fatal(err)
	}
	if okF || !okC {
		t.Errorf("stuck: F=%v (want false), C(F)=%v (want true)", okF, okC)
	}
	// A safety violation falsifies the closure too.
	bad := intLasso([]int64{0, 2}, []int64{2})
	okC, err = c.Eval(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if okC {
		t.Error("closure should reject a safety violation")
	}
}
