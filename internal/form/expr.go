// Package form implements the syntax and semantics of the TLA fragment used
// by this repository: state functions, predicates, actions (expressions with
// primed variables), and temporal formulas built with □, WF, SF, ∃ (hiding),
// and the assumption/guarantee operators ⊳ ("while-plus"), +v, and ⊥ of
// Abadi & Lamport, "Open Systems in TLA" (1994).
//
// Expressions and formulas are immutable ASTs. Expressions evaluate against
// a step (pair of states); temporal formulas evaluate against lasso
// (eventually-periodic) behaviors, which suffice for finite-state model
// checking.
package form

import (
	"fmt"
	"strings"

	"opentla/internal/state"
	"opentla/internal/value"
)

// Bindings is an immutable stack of rigid-variable bindings introduced by
// bounded quantifiers. A nil *Bindings is the empty environment.
type Bindings struct {
	name string
	val  value.Value
	next *Bindings
}

// Bind pushes a binding, returning the extended environment.
func (b *Bindings) Bind(name string, v value.Value) *Bindings {
	return &Bindings{name: name, val: v, next: b}
}

// Lookup finds the innermost binding of name.
func (b *Bindings) Lookup(name string) (value.Value, bool) {
	for e := b; e != nil; e = e.next {
		if e.name == name {
			return e.val, true
		}
	}
	return value.Value{}, false
}

// Expr is a TLA expression: a state function, state predicate, or action.
// Expressions containing primed variables are actions and must be evaluated
// against a step whose To state is non-nil.
type Expr interface {
	// Eval evaluates the expression on a step. Unprimed variables read
	// st.From; primed variables read st.To. bound holds rigid variables
	// introduced by enclosing quantifiers (may be nil).
	Eval(st state.Step, bound *Bindings) (value.Value, error)

	// collect adds the free flexible variables of the expression to the
	// sets: unprimed occurrences to up, primed occurrences to pr. rigid
	// tracks bound rigid variables in scope.
	collect(up, pr map[string]bool, rigid map[string]bool, primed bool)

	// Subst returns the expression with each free flexible variable v
	// replaced by sub[v] (where present). Primed occurrences become the
	// primed substitute, as required for refinement mappings.
	Subst(sub map[string]Expr) Expr

	// String renders the expression in TLA-like concrete syntax.
	String() string
}

// EvalBool evaluates e and coerces the result to a boolean.
func EvalBool(e Expr, st state.Step, bound *Bindings) (bool, error) {
	v, err := e.Eval(st, bound)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("expression %s: expected boolean, got %s", e, v)
	}
	return b, nil
}

// EvalState evaluates a state-level expression (no primes) on a single state.
func EvalState(e Expr, s *state.State) (value.Value, error) {
	return e.Eval(state.Step{From: s}, nil)
}

// EvalStateBool evaluates a state predicate on a single state.
func EvalStateBool(e Expr, s *state.State) (bool, error) {
	return EvalBool(e, state.Step{From: s}, nil)
}

// ---------------------------------------------------------------------------
// Variables and constants

// VarE is a flexible-variable occurrence. If the name is bound by an
// enclosing quantifier it denotes that rigid variable instead.
type VarE struct{ Name string }

// Var returns a reference to the flexible variable name.
func Var(name string) Expr { return VarE{Name: name} }

// Eval implements Expr.
func (e VarE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	if v, ok := bound.Lookup(e.Name); ok {
		return v, nil
	}
	if st.From == nil {
		return value.Value{}, fmt.Errorf("variable %s: no state", e.Name)
	}
	v, ok := st.From.Get(e.Name)
	if !ok {
		return value.Value{}, fmt.Errorf("variable %s: unbound in state %s", e.Name, st.From)
	}
	return v, nil
}

func (e VarE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	if rigid[e.Name] {
		return
	}
	if primed {
		pr[e.Name] = true
	} else {
		up[e.Name] = true
	}
}

// Subst implements Expr.
func (e VarE) Subst(sub map[string]Expr) Expr {
	if r, ok := sub[e.Name]; ok {
		return r
	}
	return e
}

func (e VarE) String() string { return e.Name }

// PrimeE evaluates its operand against the second state of a step: x' in
// the paper's notation. Priming a compound expression primes all its
// flexible variables (§2.1).
type PrimeE struct{ X Expr }

// Prime returns the primed expression x'.
func Prime(x Expr) Expr { return PrimeE{X: x} }

// PrimedVar returns name', the primed flexible variable.
func PrimedVar(name string) Expr { return Prime(Var(name)) }

// Eval implements Expr.
func (e PrimeE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	if st.To == nil {
		return value.Value{}, fmt.Errorf("primed expression %s evaluated without a successor state", e)
	}
	return e.X.Eval(state.Step{From: st.To}, bound)
}

func (e PrimeE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.X.collect(up, pr, rigid, true)
}

// Subst implements Expr.
func (e PrimeE) Subst(sub map[string]Expr) Expr { return PrimeE{X: e.X.Subst(sub)} }

func (e PrimeE) String() string {
	if v, ok := e.X.(VarE); ok {
		return v.Name + "'"
	}
	return "(" + e.X.String() + ")'"
}

// ConstE is a literal value.
type ConstE struct{ V value.Value }

// Const returns the literal expression for v.
func Const(v value.Value) Expr { return ConstE{V: v} }

// IntC returns the integer literal i.
func IntC(i int64) Expr { return ConstE{V: value.Int(i)} }

// BoolC returns the boolean literal b.
func BoolC(b bool) Expr { return ConstE{V: value.Bool(b)} }

// TrueE and FalseE are the boolean literal expressions.
var (
	TrueE  = BoolC(true)
	FalseE = BoolC(false)
)

// Eval implements Expr.
func (e ConstE) Eval(state.Step, *Bindings) (value.Value, error) { return e.V, nil }

func (e ConstE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {}

// Subst implements Expr.
func (e ConstE) Subst(map[string]Expr) Expr { return e }

func (e ConstE) String() string { return e.V.String() }

// ---------------------------------------------------------------------------
// Boolean connectives

// AndE is conjunction over zero or more operands (empty = TRUE).
type AndE struct{ Xs []Expr }

// And returns the conjunction of the operands.
func And(xs ...Expr) Expr {
	if len(xs) == 1 {
		return xs[0]
	}
	return AndE{Xs: xs}
}

// Eval implements Expr; evaluation short-circuits.
func (e AndE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	for _, x := range e.Xs {
		b, err := EvalBool(x, st, bound)
		if err != nil {
			return value.Value{}, err
		}
		if !b {
			return value.False, nil
		}
	}
	return value.True, nil
}

func (e AndE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	for _, x := range e.Xs {
		x.collect(up, pr, rigid, primed)
	}
}

// Subst implements Expr.
func (e AndE) Subst(sub map[string]Expr) Expr { return AndE{Xs: substAll(e.Xs, sub)} }

func (e AndE) String() string { return joinExprs(e.Xs, " /\\ ", "TRUE") }

// OrE is disjunction over zero or more operands (empty = FALSE).
type OrE struct{ Xs []Expr }

// Or returns the disjunction of the operands.
func Or(xs ...Expr) Expr {
	if len(xs) == 1 {
		return xs[0]
	}
	return OrE{Xs: xs}
}

// Eval implements Expr; evaluation short-circuits.
func (e OrE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	for _, x := range e.Xs {
		b, err := EvalBool(x, st, bound)
		if err != nil {
			return value.Value{}, err
		}
		if b {
			return value.True, nil
		}
	}
	return value.False, nil
}

func (e OrE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	for _, x := range e.Xs {
		x.collect(up, pr, rigid, primed)
	}
}

// Subst implements Expr.
func (e OrE) Subst(sub map[string]Expr) Expr { return OrE{Xs: substAll(e.Xs, sub)} }

func (e OrE) String() string { return joinExprs(e.Xs, " \\/ ", "FALSE") }

// NotE is negation.
type NotE struct{ X Expr }

// Not returns the negation of x.
func Not(x Expr) Expr { return NotE{X: x} }

// Eval implements Expr.
func (e NotE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	b, err := EvalBool(e.X, st, bound)
	if err != nil {
		return value.Value{}, err
	}
	return value.Bool(!b), nil
}

func (e NotE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.X.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e NotE) Subst(sub map[string]Expr) Expr { return NotE{X: e.X.Subst(sub)} }

func (e NotE) String() string { return "~(" + e.X.String() + ")" }

// ImpliesE is implication A ⇒ B.
type ImpliesE struct{ A, B Expr }

// Implies returns the implication a ⇒ b.
func Implies(a, b Expr) Expr { return ImpliesE{A: a, B: b} }

// Eval implements Expr.
func (e ImpliesE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	a, err := EvalBool(e.A, st, bound)
	if err != nil {
		return value.Value{}, err
	}
	if !a {
		return value.True, nil
	}
	b, err := EvalBool(e.B, st, bound)
	if err != nil {
		return value.Value{}, err
	}
	return value.Bool(b), nil
}

func (e ImpliesE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.A.collect(up, pr, rigid, primed)
	e.B.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e ImpliesE) Subst(sub map[string]Expr) Expr {
	return ImpliesE{A: e.A.Subst(sub), B: e.B.Subst(sub)}
}

func (e ImpliesE) String() string { return "(" + e.A.String() + " => " + e.B.String() + ")" }

// EquivE is equivalence A ≡ B.
type EquivE struct{ A, B Expr }

// Equiv returns the equivalence a ≡ b.
func Equiv(a, b Expr) Expr { return EquivE{A: a, B: b} }

// Eval implements Expr.
func (e EquivE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	a, err := EvalBool(e.A, st, bound)
	if err != nil {
		return value.Value{}, err
	}
	b, err := EvalBool(e.B, st, bound)
	if err != nil {
		return value.Value{}, err
	}
	return value.Bool(a == b), nil
}

func (e EquivE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.A.collect(up, pr, rigid, primed)
	e.B.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e EquivE) Subst(sub map[string]Expr) Expr {
	return EquivE{A: e.A.Subst(sub), B: e.B.Subst(sub)}
}

func (e EquivE) String() string { return "(" + e.A.String() + " <=> " + e.B.String() + ")" }

// ---------------------------------------------------------------------------
// Comparison and arithmetic

// CmpOp identifies a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "#"
	case OpLt:
		return "<"
	case OpLe:
		return "=<"
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?cmp?"
	}
}

// CmpE compares two expressions. Eq/Ne apply to any values; the order
// comparisons use the total order on values (int order on integers).
type CmpE struct {
	Op   CmpOp
	A, B Expr
}

// Eq returns the equality a = b.
func Eq(a, b Expr) Expr { return CmpE{Op: OpEq, A: a, B: b} }

// Ne returns the disequality a ≠ b.
func Ne(a, b Expr) Expr { return CmpE{Op: OpNe, A: a, B: b} }

// Lt returns a < b.
func Lt(a, b Expr) Expr { return CmpE{Op: OpLt, A: a, B: b} }

// Le returns a ≤ b.
func Le(a, b Expr) Expr { return CmpE{Op: OpLe, A: a, B: b} }

// Gt returns a > b.
func Gt(a, b Expr) Expr { return CmpE{Op: OpGt, A: a, B: b} }

// Ge returns a ≥ b.
func Ge(a, b Expr) Expr { return CmpE{Op: OpGe, A: a, B: b} }

// Eval implements Expr.
func (e CmpE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	a, err := e.A.Eval(st, bound)
	if err != nil {
		return value.Value{}, err
	}
	b, err := e.B.Eval(st, bound)
	if err != nil {
		return value.Value{}, err
	}
	switch e.Op {
	case OpEq:
		return value.Bool(a.Equal(b)), nil
	case OpNe:
		return value.Bool(!a.Equal(b)), nil
	}
	if a.Kind() != b.Kind() {
		return value.Value{}, fmt.Errorf("comparison %s: mixed kinds %s and %s", e, a.Kind(), b.Kind())
	}
	c := a.Compare(b)
	switch e.Op {
	case OpLt:
		return value.Bool(c < 0), nil
	case OpLe:
		return value.Bool(c <= 0), nil
	case OpGt:
		return value.Bool(c > 0), nil
	case OpGe:
		return value.Bool(c >= 0), nil
	default:
		return value.Value{}, fmt.Errorf("comparison %s: unknown operator", e)
	}
}

func (e CmpE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.A.collect(up, pr, rigid, primed)
	e.B.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e CmpE) Subst(sub map[string]Expr) Expr {
	return CmpE{Op: e.Op, A: e.A.Subst(sub), B: e.B.Subst(sub)}
}

func (e CmpE) String() string {
	return "(" + e.A.String() + " " + e.Op.String() + " " + e.B.String() + ")"
}

// ArithOp identifies an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota + 1
	OpSub
	OpMul
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpMod:
		return "%"
	default:
		return "?arith?"
	}
}

// ArithE is integer arithmetic on two operands.
type ArithE struct {
	Op   ArithOp
	A, B Expr
}

// Add returns a + b.
func Add(a, b Expr) Expr { return ArithE{Op: OpAdd, A: a, B: b} }

// Sub returns a − b.
func Sub(a, b Expr) Expr { return ArithE{Op: OpSub, A: a, B: b} }

// Mul returns a × b.
func Mul(a, b Expr) Expr { return ArithE{Op: OpMul, A: a, B: b} }

// Mod returns a mod b (b must be positive).
func Mod(a, b Expr) Expr { return ArithE{Op: OpMod, A: a, B: b} }

// Eval implements Expr.
func (e ArithE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	av, err := e.A.Eval(st, bound)
	if err != nil {
		return value.Value{}, err
	}
	bv, err := e.B.Eval(st, bound)
	if err != nil {
		return value.Value{}, err
	}
	a, ok := av.AsInt()
	if !ok {
		return value.Value{}, fmt.Errorf("arithmetic %s: left operand %s is not an integer", e, av)
	}
	b, ok := bv.AsInt()
	if !ok {
		return value.Value{}, fmt.Errorf("arithmetic %s: right operand %s is not an integer", e, bv)
	}
	switch e.Op {
	case OpAdd:
		return value.Int(a + b), nil
	case OpSub:
		return value.Int(a - b), nil
	case OpMul:
		return value.Int(a * b), nil
	case OpMod:
		if b <= 0 {
			return value.Value{}, fmt.Errorf("arithmetic %s: modulus %d not positive", e, b)
		}
		return value.Int(((a % b) + b) % b), nil
	default:
		return value.Value{}, fmt.Errorf("arithmetic %s: unknown operator", e)
	}
}

func (e ArithE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.A.collect(up, pr, rigid, primed)
	e.B.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e ArithE) Subst(sub map[string]Expr) Expr {
	return ArithE{Op: e.Op, A: e.A.Subst(sub), B: e.B.Subst(sub)}
}

func (e ArithE) String() string {
	return "(" + e.A.String() + " " + e.Op.String() + " " + e.B.String() + ")"
}

// IfE is a conditional expression IF C THEN T ELSE E.
type IfE struct{ C, T, E Expr }

// If returns the conditional expression IF c THEN t ELSE e.
func If(c, t, e Expr) Expr { return IfE{C: c, T: t, E: e} }

// Eval implements Expr.
func (e IfE) Eval(st state.Step, bound *Bindings) (value.Value, error) {
	c, err := EvalBool(e.C, st, bound)
	if err != nil {
		return value.Value{}, err
	}
	if c {
		return e.T.Eval(st, bound)
	}
	return e.E.Eval(st, bound)
}

func (e IfE) collect(up, pr map[string]bool, rigid map[string]bool, primed bool) {
	e.C.collect(up, pr, rigid, primed)
	e.T.collect(up, pr, rigid, primed)
	e.E.collect(up, pr, rigid, primed)
}

// Subst implements Expr.
func (e IfE) Subst(sub map[string]Expr) Expr {
	return IfE{C: e.C.Subst(sub), T: e.T.Subst(sub), E: e.E.Subst(sub)}
}

func (e IfE) String() string {
	return "(IF " + e.C.String() + " THEN " + e.T.String() + " ELSE " + e.E.String() + ")"
}

// ---------------------------------------------------------------------------
// helpers

func substAll(xs []Expr, sub map[string]Expr) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = x.Subst(sub)
	}
	return out
}

func joinExprs(xs []Expr, sep, empty string) string {
	if len(xs) == 0 {
		return empty
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
