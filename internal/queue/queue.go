// Package queue implements the N-element queue example of Appendix A of
// Abadi & Lamport, "Open Systems in TLA": the queue guarantee QM and
// environment assumption QE over two-phase handshake channels, the complete
// systems CQ (queue + environment) and CDQ (two queues in series), the
// refinement CDQ ⇒ CQ^dbl via the standard refinement mapping, and the
// Composition Theorem instance of Figure 9 showing that two open queues
// compose into a larger open queue.
package queue

import (
	"fmt"

	"opentla/internal/ag"
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// Config parameterises a queue instance.
type Config struct {
	// N is the queue capacity (the paper's N).
	N int
	// Vals is the size K of the value domain {0, …, K−1} standing in for
	// the paper's ℕ (a finite-domain substitution; see DESIGN.md).
	Vals int
}

// ValueDomain returns the value domain {0, …, Vals−1}.
func (c Config) ValueDomain() []value.Value { return value.Ints(0, int64(c.Vals-1)) }

// In and Out are the standard channel names of Figure 3; Mid is the
// internal channel z of Figure 7.
var (
	In  = handshake.Chan("i")
	Out = handshake.Chan("o")
	Mid = handshake.Chan("z")
)

// QM returns the queue guarantee (§A.3): a canonical component with output
// variables ⟨in.ack, out.snd⟩, input variables ⟨in.snd, out.ack⟩, internal
// variable qVar, initial predicate CInit(out) ∧ q = ⟨⟩, actions Enq and
// Deq, and the weak-fairness condition ICL = WF(Enq ∨ Deq).
func QM(name string, n int, in, out handshake.Channel, qVar string, vals []value.Value) *spec.Component {
	q := form.Var(qVar)
	enq := form.And(
		form.Lt(form.Len(q), form.IntC(int64(n))),
		handshake.AckAction(in),
		form.Eq(form.PrimedVar(qVar), form.AppendTo(q, form.Var(in.Val()))),
		form.Unchanged(out.Vars()...),
	)
	deq := form.And(
		form.Gt(form.Len(q), form.IntC(0)),
		handshake.Send(form.Head(q), out),
		form.Eq(form.PrimedVar(qVar), form.Tail(q)),
		form.Unchanged(in.Vars()...),
	)
	nCap := int64(n)
	enqExec := func(s *state.State) []map[string]value.Value {
		qv := s.MustGet(qVar)
		sig, _ := s.MustGet(in.Sig()).AsInt()
		ack, _ := s.MustGet(in.Ack()).AsInt()
		if sig == ack || int64(qv.Len()) >= nCap {
			return nil
		}
		nq, _ := qv.Append(s.MustGet(in.Val()))
		return []map[string]value.Value{{
			in.Ack(): value.Int(1 - ack),
			qVar:     nq,
		}}
	}
	deqExec := func(s *state.State) []map[string]value.Value {
		qv := s.MustGet(qVar)
		sig, _ := s.MustGet(out.Sig()).AsInt()
		ack, _ := s.MustGet(out.Ack()).AsInt()
		if sig != ack || qv.Len() == 0 {
			return nil
		}
		head, _ := qv.Head()
		tail, _ := qv.Tail()
		return []map[string]value.Value{{
			out.Val(): head,
			out.Sig(): value.Int(1 - sig),
			qVar:      tail,
		}}
	}
	// ICL's subscript is the tuple ⟨in, out, q⟩ of all relevant variables
	// (Fig. 6).
	allVars := append(append([]string{}, in.Vars()...), out.Vars()...)
	allVars = append(allVars, qVar)
	return &spec.Component{
		Name:      name,
		Inputs:    []string{in.Sig(), in.Val(), out.Ack()},
		Outputs:   []string{in.Ack(), out.Sig(), out.Val()},
		Internals: []string{qVar},
		Init:      form.And(out.Init(), form.Eq(q, form.Const(value.Empty))),
		Actions: []spec.Action{
			{Name: "Enq", Def: enq, Exec: enqExec},
			{Name: "Deq", Def: deq, Exec: deqExec},
		},
		Fairness: []spec.Fairness{{
			Kind:   form.Weak,
			Action: form.Or(enq, deq),
			Sub:    form.VarTuple(allVars...),
		}},
	}
}

// QE returns the environment assumption (§A.3): output variables
// ⟨in.snd, out.ack⟩, input variables ⟨in.ack, out.snd⟩, initial predicate
// CInit(in), and actions Put (send an arbitrary value on in) and Get
// (acknowledge on out). It is a safety property: no fairness.
func QE(name string, in, out handshake.Channel, vals []value.Value) *spec.Component {
	put := form.And(handshake.SendAny(in, vals), form.Unchanged(out.Vars()...))
	get := form.And(handshake.AckAction(out), form.Unchanged(in.Vars()...))
	valDom := make([]value.Value, len(vals))
	copy(valDom, vals)
	putExec := func(s *state.State) []map[string]value.Value {
		sig, _ := s.MustGet(in.Sig()).AsInt()
		ack, _ := s.MustGet(in.Ack()).AsInt()
		if sig != ack {
			return nil
		}
		out := make([]map[string]value.Value, 0, len(valDom))
		for _, v := range valDom {
			out = append(out, map[string]value.Value{
				in.Val(): v,
				in.Sig(): value.Int(1 - sig),
			})
		}
		return out
	}
	getExec := func(s *state.State) []map[string]value.Value {
		sig, _ := s.MustGet(out.Sig()).AsInt()
		ack, _ := s.MustGet(out.Ack()).AsInt()
		if sig == ack {
			return nil
		}
		return []map[string]value.Value{{out.Ack(): value.Int(1 - ack)}}
	}
	return &spec.Component{
		Name:    name,
		Inputs:  []string{in.Ack(), out.Sig(), out.Val()},
		Outputs: []string{in.Sig(), in.Val(), out.Ack()},
		Init:    in.Init(),
		Actions: []spec.Action{
			{Name: "Put", Def: put, Exec: putExec},
			{Name: "Get", Def: get, Exec: getExec},
		},
	}
}

// Domains returns the variable domains of the single-queue system CQ.
func (c Config) Domains() map[string][]value.Value {
	vals := c.ValueDomain()
	d := In.Domains(vals)
	for k, v := range Out.Domains(vals) {
		d[k] = v
	}
	d["q"] = value.Seqs(vals, c.N)
	return d
}

// DoubleDomains returns the variable domains of the double-queue system
// CDQ, including the abstract queue variable "q" of capacity 2N+1 used by
// the refinement mapping checks.
func (c Config) DoubleDomains() map[string][]value.Value {
	vals := c.ValueDomain()
	d := In.Domains(vals)
	for k, v := range Out.Domains(vals) {
		d[k] = v
	}
	for k, v := range Mid.Domains(vals) {
		d[k] = v
	}
	d["q1"] = value.Seqs(vals, c.N)
	d["q2"] = value.Seqs(vals, c.N)
	d["q"] = value.Seqs(vals, 2*c.N+1)
	return d
}

// SingleSystem returns the complete system CQ of Figure 6: the queue QM
// composed with its environment QE.
func (c Config) SingleSystem() *ts.System {
	vals := c.ValueDomain()
	return &ts.System{
		Name: fmt.Sprintf("CQ[N=%d,K=%d]", c.N, c.Vals),
		Components: []*spec.Component{
			QE("QE", In, Out, vals),
			QM("QM", c.N, In, Out, "q", vals),
		},
		Domains: c.Domains(),
	}
}

// FirstQueue returns QM¹ = QM[z/o, q1/q]: the first queue of Figure 7,
// reading from i and writing to z.
func (c Config) FirstQueue() *spec.Component {
	return QM("QM1", c.N, In, Mid, "q1", c.ValueDomain())
}

// SecondQueue returns QM² = QM[z/i, q2/q]: the second queue of Figure 7,
// reading from z and writing to o.
func (c Config) SecondQueue() *spec.Component {
	return QM("QM2", c.N, Mid, Out, "q2", c.ValueDomain())
}

// FirstEnv returns QE¹ = QE[z/o]: the first queue's environment assumption
// (values arrive on i, acknowledgements on z).
func (c Config) FirstEnv() *spec.Component {
	return QE("QE1", In, Mid, c.ValueDomain())
}

// SecondEnv returns QE² = QE[z/i]: the second queue's environment
// assumption.
func (c Config) SecondEnv() *spec.Component {
	return QE("QE2", Mid, Out, c.ValueDomain())
}

// OutputTuples returns the output-variable tuples of the double queue's
// three components — the arguments of the interleaving assumption G (§A.5):
//
//	G ≜ Disjoint(⟨i.snd, o.ack⟩, ⟨z.snd, i.ack⟩, ⟨o.snd, z.ack⟩).
func OutputTuples() [][]string {
	return [][]string{
		{In.Sig(), In.Val(), Out.Ack()},
		{Mid.Sig(), Mid.Val(), In.Ack()},
		{Out.Sig(), Out.Val(), Mid.Ack()},
	}
}

// GConstraints returns G as per-step constraints for system building.
func GConstraints() []ts.StepConstraint {
	var out []ts.StepConstraint
	for i, sq := range form.DisjointSteps(OutputTuples()...) {
		out = append(out, ts.StepConstraint{Name: fmt.Sprintf("G%d", i), Action: sq})
	}
	return out
}

// GFormula returns G as a temporal formula.
func GFormula() form.Formula { return form.Disjoint(OutputTuples()...) }

// DoubleSystem returns the complete double-queue system of Figures 7 and 8:
// environment + two queues in series. withG adds the interleaving
// constraints of G; Figure 8's CDQ is the interleaved system, i.e.
// withG = true.
func (c Config) DoubleSystem(withG bool) *ts.System {
	vals := c.ValueDomain()
	sys := &ts.System{
		Name: fmt.Sprintf("CDQ[N=%d,K=%d,G=%v]", c.N, c.Vals, withG),
		Components: []*spec.Component{
			QE("QE", In, Out, vals),
			c.FirstQueue(),
			c.SecondQueue(),
		},
		Domains: c.DoubleDomains(),
	}
	if withG {
		sys.Constraints = GConstraints()
	}
	return sys
}

// DoubleMapping returns the refinement mapping for the abstract queue
// variable q of the (2N+1)-element queue (§A.4): the abstract contents are
// the second queue's, then the value in flight on z (if any), then the
// first queue's:
//
//	q̄ ≜ q2 ∘ (IF z.sig ≠ z.ack THEN ⟨z.val⟩ ELSE ⟨⟩) ∘ q1.
func DoubleMapping() map[string]form.Expr {
	inFlight := form.If(Mid.Pending(), form.TupleOf(form.Var(Mid.Val())), form.EmptySeq)
	return map[string]form.Expr{
		"q": form.Concat(form.Concat(form.Var("q2"), inFlight), form.Var("q1")),
	}
}

// DoubleQueueSpec returns the abstract (2N+1)-element queue guarantee
// QM^dbl = QM[(2N+1)/N].
func (c Config) DoubleQueueSpec() *spec.Component {
	return QM("QMdbl", 2*c.N+1, In, Out, "q", c.ValueDomain())
}

// Fig9Theorem returns the Composition Theorem instance proved in Figure 9:
//
//	G ∧ (QE¹ ⊳ QM¹) ∧ (QE² ⊳ QM²) ⇒ (QE^dbl ⊳ QM^dbl)
//
// with G supplied as the pair (TRUE ⊳ G), per §5's conditional-
// implementation device.
func (c Config) Fig9Theorem() *ag.Theorem {
	vals := c.ValueDomain()
	return &ag.Theorem{
		Name: fmt.Sprintf("Fig9[N=%d,K=%d]: two open queues implement a %d-queue", c.N, c.Vals, 2*c.N+1),
		Pairs: []ag.Pair{
			{Name: "G", Constraints: GConstraints()},
			{Name: "Q1", Env: c.FirstEnv(), Sys: c.FirstQueue()},
			{Name: "Q2", Env: c.SecondEnv(), Sys: c.SecondQueue()},
		},
		Concl: ag.Conclusion{
			Env:     QE("QEdbl", In, Out, vals),
			Sys:     c.DoubleQueueSpec(),
			Mapping: DoubleMapping(),
			// v = ⟨i, o, z⟩ as in Fig. 9, step 2.
			PlusSub: form.VarTuple(append(append(append([]string{},
				In.Vars()...), Out.Vars()...), Mid.Vars()...)...),
		},
		Domains: c.DoubleDomains(),
	}
}
