package queue

import (
	"testing"

	"opentla/internal/ag"
	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
)

// TestCorollaryRefinement is experiment E14: the Corollary of §5 validates
// the refinement (QE^dbl ⊳ DQ) ⇒ (QE^dbl ⊳ QM^dbl), where DQ is the fused
// double queue with the middle channel hidden.
func TestCorollaryRefinement(t *testing.T) {
	rf := cfg1().CorollaryRefinement()
	report, err := rf.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !report.Valid {
		t.Fatalf("Corollary refinement should validate:\n%s", report)
	}
	t.Logf("\n%s", report)
}

// TestCorollaryRejectsOverclaim: the fused double queue does NOT refine a
// (2N+2)-element queue spec's *initial enqueue capacity*… it does refine
// any larger capacity on safety (a smaller queue's steps are a bigger
// queue's steps), so to get a genuine failure we check refinement of a
// SMALLER queue: capacity 2N, which the in-flight value on z overflows.
func TestCorollaryRejectsOverclaim(t *testing.T) {
	c := cfg1()
	rf := c.CorollaryRefinement()
	rf.High = QM("QM2N", 2*c.N, In, Out, "q", c.ValueDomain())
	report, err := rf.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if report.Valid {
		t.Fatalf("capacity-2N refinement should fail:\n%s", report)
	}
}

// TestFusedDoubleMachineClosure: the fused implementation's fairness is
// machine closed (Proposition 1 applies to it).
func TestFusedDoubleMachineClosure(t *testing.T) {
	c := cfg1()
	res, err := ag.MachineClosure(c.FusedDouble(), c.DoubleDomains(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed {
		t.Fatalf("fused double queue should be machine closed; stuck at %s", res.StuckState)
	}
}

// TestProposition2OnQueue is experiment E5: Proposition 2 lifts closure
// implications through hiding. Premise (checked with internals visible):
// C(IDQ) ⇒ C(IQM^dbl) under the refinement mapping. Conclusion (checked by
// direct witness search on behaviors of E ∧ DQ): every behavior satisfies
// ∃q : C(IQM^dbl).
func TestProposition2OnQueue(t *testing.T) {
	c := cfg1()
	dq := c.FusedDouble()
	sys := &ts.System{
		Name:       "E-and-DQ",
		Components: []*spec.Component{QE("QEdbl", In, Out, c.ValueDomain()), dq},
		Domains:    c.DoubleDomains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	high := c.DoubleQueueSpec()

	// Premise: closure implication with the mapping (internals visible).
	res, err := check.SafetyUnder(g, high.SafetyOnly().SafetyFormula(), DoubleMapping())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("premise of Proposition 2 fails:\n%s", res)
	}

	// Conclusion: ∃q : C(IQM^dbl) holds on sampled behaviors of the graph,
	// discharged by brute-force witness search (no mapping supplied).
	hidden := form.ExistsF([]string{"q"}, form.Closure(high.SafetyOnly().InnerFormula()))
	ctx := g.Ctx
	ctx.Unroll = 1
	count := 0
	ok := check.GraphLassos(g, 2, 2, func(l *state.Lasso) bool {
		count++
		if count > 40 {
			return false
		}
		holds, err := hidden.Eval(ctx, l)
		if err != nil {
			t.Fatalf("witness search: %v", err)
		}
		if !holds {
			t.Fatalf("Proposition 2 conclusion fails on\n%s", l)
		}
		return true
	})
	_ = ok
	if count == 0 {
		t.Fatal("no behaviors sampled")
	}
}
