package queue

import "opentla/internal/reduce"

// SingleSymmetry declares the single queue's data values interchangeable:
// QE produces arbitrary domain values and QM moves them through q without
// inspecting them, so any permutation of the value domain is an
// automorphism. The orbit covers the value wires and the queue contents
// (a sequence over the domain, permuted elementwise).
func (c Config) SingleSymmetry() *reduce.Symmetry {
	return &reduce.Symmetry{
		Values: c.ValueDomain(),
		Vars:   []string{In.Val(), Out.Val(), "q"},
	}
}

// DoubleSymmetry is SingleSymmetry for the two-queue composition of
// Figure 7: the orbit additionally covers the internal channel's value
// wire and both queues' contents.
func (c Config) DoubleSymmetry() *reduce.Symmetry {
	return &reduce.Symmetry{
		Values: c.ValueDomain(),
		Vars:   []string{In.Val(), Out.Val(), Mid.Val(), "q1", "q2"},
	}
}
