package queue

import (
	"strings"
	"testing"

	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// Failure-injection suite: each broken queue implementation below deviates
// from the paper's queue in one way; the model checker must reject it
// against the QM specification (with the hostile deviation caught in a
// counterexample trace). These tests pin down that the checker has real
// discriminating power — a checker that accepts everything would pass all
// the positive tests too.

// buildWithQM builds the complete system QE ∧ broken and checks it against
// the real queue guarantee QM.
func checkAgainstQM(t *testing.T, c Config, broken *spec.Component, domains map[string][]value.Value) *check.SpecResult {
	t.Helper()
	if domains == nil {
		domains = c.Domains()
	}
	sys := &ts.System{
		Name:       "QE-and-" + broken.Name,
		Components: []*spec.Component{QE("QE", In, Out, c.ValueDomain()), broken},
		Domains:    domains,
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	spec := QM("QM", c.N, In, Out, "q", c.ValueDomain())
	res, err := check.Component(g, spec, nil)
	if err != nil {
		t.Fatalf("Component: %v", err)
	}
	return res
}

// droppingQueue acknowledges input values without storing them.
func droppingQueue(c Config) *spec.Component {
	qm := QM("dropper", c.N, In, Out, "q", c.ValueDomain())
	drop := form.And(
		handshake.AckAction(In),
		form.Unchanged("q"),
		form.Unchanged(Out.Vars()...),
	)
	qm.Actions[0] = spec.Action{
		Name: "DropEnq",
		Def:  drop,
		Exec: func(s *state.State) []map[string]value.Value {
			sig, _ := s.MustGet(In.Sig()).AsInt()
			ack, _ := s.MustGet(In.Ack()).AsInt()
			if sig == ack {
				return nil
			}
			return []map[string]value.Value{{In.Ack(): value.Int(1 - ack)}}
		},
	}
	return qm
}

func TestCheckerCatchesDroppedValues(t *testing.T) {
	c := cfg1()
	res := checkAgainstQM(t, c, droppingQueue(c), nil)
	if res.Holds() {
		t.Fatal("a queue that drops values must not satisfy QM")
	}
	if res.Safety == nil || res.Safety.Holds {
		t.Fatal("expected a safety violation")
	}
	if len(res.Safety.Trace) == 0 {
		t.Fatal("expected a counterexample trace")
	}
}

// reorderingQueue prepends instead of appending: LIFO, not FIFO.
func reorderingQueue(c Config) *spec.Component {
	qm := QM("reorderer", c.N, In, Out, "q", c.ValueDomain())
	q := form.Var("q")
	lifo := form.And(
		form.Lt(form.Len(q), form.IntC(int64(c.N))),
		handshake.AckAction(In),
		form.Eq(form.PrimedVar("q"), form.Concat(form.TupleOf(form.Var(In.Val())), q)),
		form.Unchanged(Out.Vars()...),
	)
	qm.Actions[0] = spec.Action{
		Name: "PushFront",
		Def:  lifo,
		Exec: func(s *state.State) []map[string]value.Value {
			qv := s.MustGet("q")
			sig, _ := s.MustGet(In.Sig()).AsInt()
			ack, _ := s.MustGet(In.Ack()).AsInt()
			if sig == ack || int64(qv.Len()) >= int64(c.N) {
				return nil
			}
			front := value.Tuple(s.MustGet(In.Val()))
			nq, _ := front.Concat(qv)
			return []map[string]value.Value{{In.Ack(): value.Int(1 - ack), "q": nq}}
		},
	}
	return qm
}

func TestCheckerCatchesReordering(t *testing.T) {
	// N=1 cannot reorder; use N=2 so LIFO differs from FIFO.
	c := Config{N: 2, Vals: 2}
	res := checkAgainstQM(t, c, reorderingQueue(c), nil)
	if res.Holds() {
		t.Fatal("a LIFO buffer must not satisfy the FIFO queue spec")
	}
}

// overflowQueue admits N+1 elements (off-by-one capacity check).
func overflowQueue(c Config) *spec.Component {
	qm := QM("overflower", c.N, In, Out, "q", c.ValueDomain())
	q := form.Var("q")
	over := form.And(
		form.Le(form.Len(q), form.IntC(int64(c.N))), // ≤ instead of <
		handshake.AckAction(In),
		form.Eq(form.PrimedVar("q"), form.AppendTo(q, form.Var(In.Val()))),
		form.Unchanged(Out.Vars()...),
	)
	qm.Actions[0] = spec.Action{
		Name: "OverEnq",
		Def:  over,
		Exec: func(s *state.State) []map[string]value.Value {
			qv := s.MustGet("q")
			sig, _ := s.MustGet(In.Sig()).AsInt()
			ack, _ := s.MustGet(In.Ack()).AsInt()
			if sig == ack || int64(qv.Len()) > int64(c.N) {
				return nil
			}
			nq, _ := qv.Append(s.MustGet(In.Val()))
			return []map[string]value.Value{{In.Ack(): value.Int(1 - ack), "q": nq}}
		},
	}
	return qm
}

func TestCheckerCatchesOverflow(t *testing.T) {
	c := cfg1()
	// Give q room for the overflow so the deviation is expressible.
	domains := c.Domains()
	domains["q"] = value.Seqs(c.ValueDomain(), c.N+1)
	res := checkAgainstQM(t, c, overflowQueue(c), domains)
	if res.Holds() {
		t.Fatal("an over-capacity queue must not satisfy QM")
	}
}

// corruptingQueue sends Head(q) but with the value replaced by 0 when it
// should be 1 (a data corruption on dequeue).
func corruptingQueue(c Config) *spec.Component {
	qm := QM("corruptor", c.N, In, Out, "q", c.ValueDomain())
	q := form.Var("q")
	corrupt := form.And(
		form.Gt(form.Len(q), form.IntC(0)),
		handshake.Send(form.IntC(0), Out), // always sends 0
		form.Eq(form.PrimedVar("q"), form.Tail(q)),
		form.Unchanged(In.Vars()...),
	)
	qm.Actions[1] = spec.Action{
		Name: "CorruptDeq",
		Def:  corrupt,
		Exec: func(s *state.State) []map[string]value.Value {
			qv := s.MustGet("q")
			sig, _ := s.MustGet(Out.Sig()).AsInt()
			ack, _ := s.MustGet(Out.Ack()).AsInt()
			if sig != ack || qv.Len() == 0 {
				return nil
			}
			tail, _ := qv.Tail()
			return []map[string]value.Value{{
				Out.Val(): value.Int(0), Out.Sig(): value.Int(1 - sig), "q": tail,
			}}
		},
	}
	return qm
}

func TestCheckerCatchesCorruption(t *testing.T) {
	c := cfg1()
	res := checkAgainstQM(t, c, corruptingQueue(c), nil)
	if res.Holds() {
		t.Fatal("a corrupting queue must not satisfy QM")
	}
	// The violation should mention the queue's box.
	if res.Safety != nil && !res.Safety.Holds &&
		!strings.Contains(res.Safety.Violation, "violates") {
		t.Errorf("unexpected violation text: %s", res.Safety.Violation)
	}
}

// protocolViolatingQueue acknowledges the input even when no value is
// pending (sig = ack) — a handshake protocol violation.
func protocolViolatingQueue(c Config) *spec.Component {
	qm := QM("eager-acker", c.N, In, Out, "q", c.ValueDomain())
	eager := form.And(
		form.Eq(form.PrimedVar(In.Ack()), form.Sub(form.IntC(1), form.Var(In.Ack()))),
		form.Unchanged(In.Sig(), In.Val()),
		form.Unchanged("q"),
		form.Unchanged(Out.Vars()...),
	)
	qm.Actions = append(qm.Actions, spec.Action{
		Name: "EagerAck",
		Def:  eager,
		Exec: func(s *state.State) []map[string]value.Value {
			ack, _ := s.MustGet(In.Ack()).AsInt()
			return []map[string]value.Value{{In.Ack(): value.Int(1 - ack)}}
		},
	})
	return qm
}

func TestCheckerCatchesProtocolViolation(t *testing.T) {
	c := cfg1()
	res := checkAgainstQM(t, c, protocolViolatingQueue(c), nil)
	if res.Holds() {
		t.Fatal("an eager acker must not satisfy QM")
	}
}

// TestCheckerCatchesMissingFairness: removing the queue's WF lets it stall;
// the liveness part of the QM check must fail while safety still holds.
func TestCheckerCatchesMissingFairness(t *testing.T) {
	c := cfg1()
	lazy := QM("lazy", c.N, In, Out, "q", c.ValueDomain())
	lazy.Fairness = nil
	res := checkAgainstQM(t, c, lazy, nil)
	if res.Safety == nil || !res.Safety.Holds {
		t.Fatal("the lazy queue's safety should be fine")
	}
	if res.Liveness == nil || res.Liveness.Holds {
		t.Fatal("the lazy queue must fail QM's fairness")
	}
	if res.Liveness.Counterexample == nil {
		t.Fatal("expected a fair-lasso counterexample")
	}
}

// TestWhilePlusCatchesEagerViolation: the eager acker also fails its
// assumption/guarantee spec QE ⊳ QM — it violates the guarantee while the
// environment is still behaving.
func TestWhilePlusCatchesEagerViolation(t *testing.T) {
	c := cfg1()
	broken := protocolViolatingQueue(c)
	sys := &ts.System{
		Name:       "broken-open",
		Components: []*spec.Component{broken},
		Domains:    c.Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.WhilePlus(g,
		QE("QE", In, Out, c.ValueDomain()),
		QM("QM", c.N, In, Out, "q", c.ValueDomain()),
		map[string]form.Expr{"q": form.Var("q")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("QE -+> QM must fail for the eager acker")
	}
}

// TestWhilePlusHoldsForRealQueue: the genuine queue satisfies its A/G spec
// against the most general environment.
func TestWhilePlusHoldsForRealQueue(t *testing.T) {
	c := cfg1()
	qm := QM("QM", c.N, In, Out, "q", c.ValueDomain())
	sys := &ts.System{
		Name:       "queue-open",
		Components: []*spec.Component{qm},
		Domains:    c.Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.WhilePlus(g,
		QE("QE", In, Out, c.ValueDomain()),
		QM("QMspec", c.N, In, Out, "q", c.ValueDomain()),
		map[string]form.Expr{"q": form.Var("q")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("QE -+> QM should hold for the real queue:\n%s", res)
	}
}
