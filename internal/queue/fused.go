package queue

import (
	"fmt"

	"opentla/internal/ag"
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// FusedDouble returns the two queues in series of Figure 7 packaged as a
// single component with the middle channel z and both buffers internal — a
// lower-level *implementation* M′ of the (2N+1)-element queue, used to
// exercise the Corollary of §5: (E ⊳ M′) ⇒ (E ⊳ M).
//
// Each action freezes the rest of the component's state, so the fused
// component is internally interleaved (as the complete system CDQ of
// Figure 8 is).
func (c Config) FusedDouble() *spec.Component {
	n := int64(c.N)
	q1, q2 := form.Var("q1"), form.Var("q2")

	frozen := func(except ...string) form.Expr {
		all := []string{
			In.Sig(), In.Val(), Out.Ack(), // inputs (interleaving: e' = e)
			In.Ack(), Out.Sig(), Out.Val(),
			Mid.Sig(), Mid.Ack(), Mid.Val(),
			"q1", "q2",
		}
		skip := make(map[string]bool, len(except))
		for _, e := range except {
			skip[e] = true
		}
		var keep []string
		for _, v := range all {
			if !skip[v] {
				keep = append(keep, v)
			}
		}
		return form.Unchanged(keep...)
	}

	enq1 := form.And(
		form.Lt(form.Len(q1), form.IntC(n)),
		handshake.AckAction(In),
		form.Eq(form.PrimedVar("q1"), form.AppendTo(q1, form.Var(In.Val()))),
		frozen(In.Ack(), "q1"),
	)
	move1 := form.And(
		form.Gt(form.Len(q1), form.IntC(0)),
		handshake.Send(form.Head(q1), Mid),
		form.Eq(form.PrimedVar("q1"), form.Tail(q1)),
		frozen(Mid.Sig(), Mid.Val(), "q1"),
	)
	move2 := form.And(
		form.Lt(form.Len(q2), form.IntC(n)),
		handshake.AckAction(Mid),
		form.Eq(form.PrimedVar("q2"), form.AppendTo(q2, form.Var(Mid.Val()))),
		frozen(Mid.Ack(), "q2"),
	)
	deq2 := form.And(
		form.Gt(form.Len(q2), form.IntC(0)),
		handshake.Send(form.Head(q2), Out),
		form.Eq(form.PrimedVar("q2"), form.Tail(q2)),
		frozen(Out.Sig(), Out.Val(), "q2"),
	)

	enq1Exec := func(s *state.State) []map[string]value.Value {
		qv := s.MustGet("q1")
		sig, _ := s.MustGet(In.Sig()).AsInt()
		ack, _ := s.MustGet(In.Ack()).AsInt()
		if sig == ack || int64(qv.Len()) >= n {
			return nil
		}
		nq, _ := qv.Append(s.MustGet(In.Val()))
		return []map[string]value.Value{{In.Ack(): value.Int(1 - ack), "q1": nq}}
	}
	move1Exec := func(s *state.State) []map[string]value.Value {
		qv := s.MustGet("q1")
		sig, _ := s.MustGet(Mid.Sig()).AsInt()
		ack, _ := s.MustGet(Mid.Ack()).AsInt()
		if sig != ack || qv.Len() == 0 {
			return nil
		}
		head, _ := qv.Head()
		tail, _ := qv.Tail()
		return []map[string]value.Value{{
			Mid.Val(): head, Mid.Sig(): value.Int(1 - sig), "q1": tail,
		}}
	}
	move2Exec := func(s *state.State) []map[string]value.Value {
		qv := s.MustGet("q2")
		sig, _ := s.MustGet(Mid.Sig()).AsInt()
		ack, _ := s.MustGet(Mid.Ack()).AsInt()
		if sig == ack || int64(qv.Len()) >= n {
			return nil
		}
		nq, _ := qv.Append(s.MustGet(Mid.Val()))
		return []map[string]value.Value{{Mid.Ack(): value.Int(1 - ack), "q2": nq}}
	}
	deq2Exec := func(s *state.State) []map[string]value.Value {
		qv := s.MustGet("q2")
		sig, _ := s.MustGet(Out.Sig()).AsInt()
		ack, _ := s.MustGet(Out.Ack()).AsInt()
		if sig != ack || qv.Len() == 0 {
			return nil
		}
		head, _ := qv.Head()
		tail, _ := qv.Tail()
		return []map[string]value.Value{{
			Out.Val(): head, Out.Sig(): value.Int(1 - sig), "q2": tail,
		}}
	}

	allVars := []string{
		In.Sig(), In.Ack(), In.Val(),
		Out.Sig(), Out.Ack(), Out.Val(),
		Mid.Sig(), Mid.Ack(), Mid.Val(),
		"q1", "q2",
	}
	return &spec.Component{
		Name:      fmt.Sprintf("DQ[N=%d]", c.N),
		Inputs:    []string{In.Sig(), In.Val(), Out.Ack()},
		Outputs:   []string{In.Ack(), Out.Sig(), Out.Val()},
		Internals: []string{Mid.Sig(), Mid.Ack(), Mid.Val(), "q1", "q2"},
		Init: form.And(
			Out.Init(), Mid.Init(),
			form.Eq(q1, form.Const(value.Empty)),
			form.Eq(q2, form.Const(value.Empty)),
		),
		Actions: []spec.Action{
			{Name: "Enq1", Def: enq1, Exec: enq1Exec},
			{Name: "Move1", Def: move1, Exec: move1Exec},
			{Name: "Move2", Def: move2, Exec: move2Exec},
			{Name: "Deq2", Def: deq2, Exec: deq2Exec},
		},
		Fairness: []spec.Fairness{
			{Kind: form.Weak, Action: form.Or(enq1, move1), Sub: form.VarTuple(allVars...)},
			{Kind: form.Weak, Action: form.Or(move2, deq2), Sub: form.VarTuple(allVars...)},
		},
	}
}

// CorollaryRefinement returns the Corollary instance (experiment E14):
// with the fixed environment assumption E = QE^dbl, the fused double queue
// refines the (2N+1)-element queue: (E ⊳ DQ) ⇒ (E ⊳ QM^dbl).
func (c Config) CorollaryRefinement() *ag.Refinement {
	return &ag.Refinement{
		Name:    fmt.Sprintf("fused-double-queue[N=%d,K=%d] refines %d-queue", c.N, c.Vals, 2*c.N+1),
		Env:     QE("QEdbl", In, Out, c.ValueDomain()),
		Low:     c.FusedDouble(),
		High:    c.DoubleQueueSpec(),
		Mapping: DoubleMapping(),
		Domains: c.DoubleDomains(),
	}
}
