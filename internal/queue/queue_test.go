package queue

import (
	"testing"

	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/ts"
)

func cfg1() Config { return Config{N: 1, Vals: 2} }

// TestSingleQueueInvariants checks basic sanity of the complete system CQ
// (Fig. 6): the internal queue never exceeds its capacity and the output
// channel only carries values from the domain.
func TestSingleQueueInvariants(t *testing.T) {
	for _, c := range []Config{{N: 1, Vals: 2}, {N: 2, Vals: 2}, {N: 1, Vals: 3}} {
		g, err := c.SingleSystem().Build()
		if err != nil {
			t.Fatalf("N=%d K=%d: Build: %v", c.N, c.Vals, err)
		}
		inv := form.Le(form.Len(form.Var("q")), form.IntC(int64(c.N)))
		res, err := check.Invariant(g, inv)
		if err != nil {
			t.Fatalf("N=%d K=%d: Invariant: %v", c.N, c.Vals, err)
		}
		if !res.Holds {
			t.Fatalf("N=%d K=%d: |q| <= N violated:\n%s", c.N, c.Vals, res)
		}
	}
}

// TestSingleQueueLiveness checks that CQ keeps making progress: whenever a
// value is pending on the input channel and the queue has room, it is
// eventually acknowledged (the queue's WF at work).
func TestSingleQueueLiveness(t *testing.T) {
	c := cfg1()
	g, err := c.SingleSystem().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pendingRoom := form.And(In.Pending(), form.Lt(form.Len(form.Var("q")), form.IntC(int64(c.N))))
	acked := In.Ready()
	res, err := check.Liveness(g, form.LeadsTo(pendingRoom, acked), nil)
	if err != nil {
		t.Fatalf("Liveness: %v", err)
	}
	if !res.Holds {
		t.Fatalf("pending input with room should lead to acknowledgement:\n%s", res)
	}
}

// TestDoubleQueueRefinement is experiment E10 (§A.4): the interleaved
// double-queue system CDQ implements the (2N+1)-element queue CQ^dbl — both
// its environment part and, via the refinement mapping, its queue part with
// safety and fairness.
func TestDoubleQueueRefinement(t *testing.T) {
	c := cfg1()
	g, err := c.DoubleSystem(true).Build()
	if err != nil {
		t.Fatalf("Build CDQ: %v", err)
	}
	t.Logf("CDQ graph: %d states, %d edges", g.NumStates(), g.NumEdges())

	// Environment part of CQ^dbl.
	envRes, err := check.Safety(g, QE("QEdbl", In, Out, c.ValueDomain()).SafetyFormula())
	if err != nil {
		t.Fatalf("Safety(QEdbl): %v", err)
	}
	if !envRes.Holds {
		t.Fatalf("CDQ should implement QE^dbl:\n%s", envRes)
	}

	// Queue part with the refinement mapping.
	res, err := check.Component(g, c.DoubleQueueSpec(), DoubleMapping())
	if err != nil {
		t.Fatalf("Component(QMdbl): %v", err)
	}
	if !res.Holds() {
		t.Fatalf("CDQ should implement QM^dbl under the refinement mapping:\n%s", res)
	}
}

// TestDoubleQueueRefinementNeedsCapacity21 confirms the capacity argument
// behind 2N+1: the composition does NOT implement a queue of capacity 2N
// (the in-flight value on z makes the true capacity 2N+1).
func TestDoubleQueueRefinementNeedsCapacity21(t *testing.T) {
	c := cfg1()
	sys := c.DoubleSystem(true)
	// Give the abstract q the larger domain so the mapping stays in range;
	// the capacity-2N spec must then reject some behavior.
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("Build CDQ: %v", err)
	}
	small := QM("QM2N", 2*c.N, In, Out, "q", c.ValueDomain())
	res, err := check.SafetyUnder(g, small.SafetyOnly().SafetyFormula(), DoubleMapping())
	if err != nil {
		t.Fatalf("SafetyUnder: %v", err)
	}
	if res.Holds {
		t.Fatalf("a 2N-queue spec should NOT be implemented by the composition (capacity is 2N+1)")
	}
}

// TestOpenQueueComposition is experiment E11: the full mechanical check of
// formula (4) of §A.5 via the Composition Theorem, as outlined in Fig. 9.
func TestOpenQueueComposition(t *testing.T) {
	th := cfg1().Fig9Theorem()
	report, err := th.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !report.Valid {
		t.Fatalf("Fig. 9 composition should validate:\n%s", report)
	}
	t.Logf("\n%s", report)
}

// TestOpenQueueCompositionWithoutGFails is experiment E12: dropping the
// interleaving assumption G makes the composition claim (3) invalid — the
// conjunction of the two queues allows simultaneous changes of i.ack and
// o.snd, which the larger queue's guarantee forbids (§A.5).
func TestOpenQueueCompositionWithoutGFails(t *testing.T) {
	th := cfg1().Fig9Theorem()
	// Remove the G pair.
	th.Pairs = th.Pairs[1:]
	report, err := th.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if report.Valid {
		t.Fatalf("composition without G should NOT validate (formula (3) of §A.5 is invalid):\n%s", report)
	}
}

// TestDoubleSystemWithoutGAllowsSimultaneity pinpoints the §A.5 failure:
// without G, the conjunction of the component specifications admits a step
// changing i.ack and o.snd simultaneously, violating the interleaved
// (2N+1)-queue guarantee.
func TestDoubleSystemWithoutGAllowsSimultaneity(t *testing.T) {
	c := cfg1()
	g, err := c.DoubleSystem(false).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := check.SafetyUnder(g, c.DoubleQueueSpec().SafetyOnly().SafetyFormula(), DoubleMapping())
	if err != nil {
		t.Fatalf("SafetyUnder: %v", err)
	}
	if res.Holds {
		t.Fatalf("without G the double system should violate QM^dbl's interleaving guarantee")
	}
}

// TestBruteExecMatchesHandwrittenExec cross-validates the hand-written Exec
// generators of QM and QE against brute-force enumeration from the
// declarative action definitions, on every reachable state of CQ.
func TestBruteExecMatchesHandwrittenExec(t *testing.T) {
	c := cfg1()
	sys := c.SingleSystem()
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Rebuild the same system with Execs stripped (forcing brute force).
	stripped := &ts.System{
		Name:    sys.Name + "/brute",
		Domains: sys.Domains,
	}
	for _, comp := range sys.Components {
		cp := *comp
		cp.Actions = make([]spec.Action, len(comp.Actions))
		for i, a := range comp.Actions {
			cp.Actions[i] = spec.Action{Name: a.Name, Def: a.Def}
		}
		stripped.Components = append(stripped.Components, &cp)
	}
	g2, err := stripped.Build()
	if err != nil {
		t.Fatalf("Build (brute): %v", err)
	}
	if g.NumStates() != g2.NumStates() || g.NumEdges() != g2.NumEdges() {
		t.Fatalf("hand-written Exec graph (%d states, %d edges) differs from brute-force graph (%d states, %d edges)",
			g.NumStates(), g.NumEdges(), g2.NumStates(), g2.NumEdges())
	}
}
