package queue

import (
	"testing"

	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// historyMonitors returns two monitors recording the sequence of values
// sent on the input channel and received (acknowledged) on the output
// channel, each bounded to maxLen entries (edges beyond the bound are
// pruned, truncating the explored behaviors — sound for invariant checks on
// the truncated graph).
func historyMonitors(maxLen int, vals []value.Value) (*ts.Monitor, *ts.Monitor) {
	dom := value.Seqs(vals, maxLen)
	sent := &ts.Monitor{
		Var:    "$sent",
		Domain: dom,
		Init: func(s *state.State) ([]value.Value, error) {
			return []value.Value{value.Empty}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			// A send is a flip of i.sig.
			if st.From.MustGet(In.Sig()).Equal(st.To.MustGet(In.Sig())) {
				return []value.Value{cur}, nil
			}
			if cur.Len() >= maxLen {
				return nil, nil // truncate exploration
			}
			nxt, _ := cur.Append(st.To.MustGet(In.Val()))
			return []value.Value{nxt}, nil
		},
	}
	rcvd := &ts.Monitor{
		Var:    "$rcvd",
		Domain: dom,
		Init: func(s *state.State) ([]value.Value, error) {
			return []value.Value{value.Empty}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			// A receipt is a flip of o.ack; the value is o.val (stable
			// while pending).
			if st.From.MustGet(Out.Ack()).Equal(st.To.MustGet(Out.Ack())) {
				return []value.Value{cur}, nil
			}
			if cur.Len() >= maxLen {
				return nil, nil
			}
			nxt, _ := cur.Append(st.From.MustGet(Out.Val()))
			return []value.Value{nxt}, nil
		},
	}
	return sent, rcvd
}

// chanFlight returns the in-flight segment of a channel: ⟨val⟩ while a send
// is pending, ⟨⟩ otherwise.
func chanFlight(c interface {
	Pending() form.Expr
	Val() string
}) form.Expr {
	return form.If(c.Pending(), form.TupleOf(form.Var(c.Val())), form.EmptySeq)
}

// TestSingleQueueFIFO verifies the end-to-end functional correctness of the
// queue: along every behavior of CQ, the sent history always equals the
// received history, then the value pending on o, then the queue contents,
// then the value pending on i (newest):
//
//	$sent = $rcvd ∘ o-flight ∘ q ∘ i-flight.
func TestSingleQueueFIFO(t *testing.T) {
	c := cfg1()
	g, err := c.SingleSystem().Build()
	if err != nil {
		t.Fatal(err)
	}
	sent, rcvd := historyMonitors(3, c.ValueDomain())
	prod, err := ts.Product(g, []*ts.Monitor{sent, rcvd})
	if err != nil {
		t.Fatal(err)
	}
	pipeline := form.Concat(form.Concat(chanFlight(Out), form.Var("q")), chanFlight(In))
	inv := form.Eq(
		form.Var("$sent"),
		form.Concat(form.Var("$rcvd"), pipeline),
	)
	res, err := check.Invariant(prod, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("FIFO history invariant violated:\n%s", res)
	}
}

// TestDoubleQueueFIFO verifies the same end-to-end invariant for the double
// queue, with the pipeline contents q2 ∘ z-in-flight ∘ q1 in place of q.
func TestDoubleQueueFIFO(t *testing.T) {
	c := cfg1()
	g, err := c.DoubleSystem(true).Build()
	if err != nil {
		t.Fatal(err)
	}
	sent, rcvd := historyMonitors(4, c.ValueDomain())
	prod, err := ts.Product(g, []*ts.Monitor{sent, rcvd})
	if err != nil {
		t.Fatal(err)
	}
	pipeline := form.Concat(
		form.Concat(chanFlight(Out), DoubleMapping()["q"]),
		chanFlight(In),
	)
	inv := form.Eq(
		form.Var("$sent"),
		form.Concat(form.Var("$rcvd"), pipeline),
	)
	res, err := check.Invariant(prod, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("double-queue FIFO history invariant violated:\n%s", res)
	}
}

// TestBrokenQueuesFailFIFO: the failure-injected queues violate the history
// invariant too, pinning the invariant's discriminating power.
func TestBrokenQueuesFailFIFO(t *testing.T) {
	c := cfg1()
	for _, broken := range []*spec.Component{
		droppingQueue(c),
		corruptingQueue(c),
	} {
		sys := &ts.System{
			Name:       "QE-and-" + broken.Name,
			Components: []*spec.Component{QE("QE", In, Out, c.ValueDomain()), broken},
			Domains:    c.Domains(),
		}
		g, err := sys.Build()
		if err != nil {
			t.Fatalf("%s: %v", broken.Name, err)
		}
		sent, rcvd := historyMonitors(3, c.ValueDomain())
		prod, err := ts.Product(g, []*ts.Monitor{sent, rcvd})
		if err != nil {
			t.Fatalf("%s: %v", broken.Name, err)
		}
		pipeline := form.Concat(form.Concat(chanFlight(Out), form.Var("q")), chanFlight(In))
		inv := form.Eq(
			form.Var("$sent"),
			form.Concat(form.Var("$rcvd"), pipeline),
		)
		res, err := check.Invariant(prod, inv)
		if err != nil {
			t.Fatalf("%s: %v", broken.Name, err)
		}
		if res.Holds {
			t.Errorf("%s: FIFO invariant unexpectedly holds", broken.Name)
		}
	}
}
