// Package engine provides resource governance for the explicit-state
// checking core: wall-clock, state-count, and transition-count budgets with
// cooperative cancellation, run statistics, three-valued verdicts, and panic
// containment.
//
// The paper's whole value proposition is *decidable* discharge of the
// Composition Theorem's hypotheses on finite instances (§5). Decidable does
// not mean feasible: one oversized parameter makes the state graph
// astronomically large, and an engine that silently hangs or exhausts memory
// gives no verdict at all. Following the practice of mature explicit-state
// checkers such as TLC, every entry point of this engine is bounded,
// resumable in principle, and diagnosable: a check either Holds, is
// Violated with a counterexample, or is Unknown with the reason and the
// partial statistics of the aborted exploration.
package engine

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Verdict is the three-valued outcome of a resource-governed check.
type Verdict int

const (
	// Holds: the property was verified on the full instance.
	Holds Verdict = iota
	// Violated: a counterexample was found.
	Violated
	// Unknown: the engine could not decide — budget exhausted, cancelled,
	// or an internal error was contained.
	Unknown
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Holds:
		return "HOLDS"
	case Violated:
		return "VIOLATED"
	default:
		return "UNKNOWN"
	}
}

// ExitCode returns the process exit code contract of the CLIs:
// 0 holds, 1 violated, 2 unknown-or-error.
func (v Verdict) ExitCode() int {
	switch v {
	case Holds:
		return 0
	case Violated:
		return 1
	default:
		return 2
	}
}

// RunStats records what an exploration actually did — the observability
// counterpart of the budget. All counters are cumulative over the meter's
// lifetime, which may span several graph constructions and checks.
type RunStats struct {
	// States is the number of distinct states added to graphs.
	States int
	// Transitions is the number of graph edges explored.
	Transitions int
	// SCCs is the number of strongly connected components examined by
	// fair-cycle search.
	SCCs int
	// PeakFrontier is the largest BFS frontier observed.
	PeakFrontier int
	// Elapsed is the wall-clock time since the meter started.
	Elapsed time.Duration
}

// String renders the statistics on one line.
func (s RunStats) String() string {
	return fmt.Sprintf("%d states, %d transitions, %d SCCs, peak frontier %d, elapsed %v",
		s.States, s.Transitions, s.SCCs, s.PeakFrontier, s.Elapsed.Round(time.Millisecond))
}

// Observer receives engine-level observability callbacks: flight-recorder
// events (budget warnings, exhaustion, SCC milestones) and frontier level
// barriers. The obs package provides the standard implementation; a nil
// observer costs one pointer load and branch per callback site.
//
// Concurrency contract: an Observer must be installed with SetObserver
// before the exploration it observes starts and must itself be safe for
// concurrent use — callbacks arrive from worker goroutines.
type Observer interface {
	// ObserveEvent records one flight-recorder event. kind is a short stable
	// tag ("budget", "budget-exhausted", "scc", "level", "unknown-verdict",
	// "reduce", and the graph-cache outcomes "cache-hit", "cache-miss",
	// "cache-corrupt", "checkpoint-saved", "resume"); msg is human-readable.
	ObserveEvent(kind, msg string)
	// ObserveLevel records a frontier level barrier of exploration op:
	// the level index (BFS depth), the level's width in states, the worker
	// goroutines that drained it, and the total states explored so far.
	ObserveLevel(op string, level, width, workers, totalStates int)
	// ObserveReduction records the reduction statistics of a finished
	// exploration op (a graph build or a monitor product). Called at most
	// once per exploration, only when a reduction was active.
	ObserveReduction(op string, s ReductionStats)
}

// ReductionStats counts the work a reduced exploration did and avoided:
// partial-order ample expansions vs full expansions, their successor counts,
// and the successor slots symmetry canonicalization redirected to an orbit
// representative. The exploration layer reports them through
// Meter.NoteReduction once per build.
type ReductionStats struct {
	// AmpleStates/FullStates partition the expanded states by whether the
	// ample set was used or expansion fell back to the full successor set.
	AmpleStates int64
	FullStates  int64
	// AmpleSuccs/FullSuccs count the successors produced by each kind of
	// expansion; comparing their per-state averages shows the branching
	// reduction POR achieved.
	AmpleSuccs int64
	FullSuccs  int64
	// SymCollapsed counts successor slots whose state was replaced by a
	// different canonical representative — each is a potential duplicate
	// orbit state the graph did not have to explore.
	SymCollapsed int64
}

// Any reports whether the stats record any reduction activity.
func (s ReductionStats) Any() bool {
	return s.AmpleStates != 0 || s.FullStates != 0 || s.SymCollapsed != 0
}

// AmpleHitRate returns the fraction of expanded states served by an ample
// set, in [0,1] (0 when nothing was expanded).
func (s ReductionStats) AmpleHitRate() float64 {
	total := s.AmpleStates + s.FullStates
	if total == 0 {
		return 0
	}
	return float64(s.AmpleStates) / float64(total)
}

// Budget bounds an exploration. The zero value is unlimited.
type Budget struct {
	// Timeout is the wall-clock budget (0 = unlimited).
	Timeout time.Duration
	// MaxStates bounds the cumulative number of states added to graphs
	// (0 = unlimited).
	MaxStates int
	// MaxTransitions bounds the cumulative number of explored transitions
	// (0 = unlimited).
	MaxTransitions int
	// Ctx, if non-nil, cancels the exploration when done.
	Ctx context.Context
}

// Meter returns a fresh meter enforcing the budget, with the wall clock
// started now.
func (b Budget) Meter() *Meter {
	m := &Meter{budget: b, start: time.Now()}
	if b.Timeout > 0 {
		m.deadline = m.start.Add(b.Timeout)
		m.warnTime80 = m.start.Add(b.Timeout * 8 / 10)
		m.warnTime95 = m.start.Add(b.Timeout * 19 / 20)
	}
	if b.MaxStates > 0 {
		m.warn80s = int64(b.MaxStates) * 8 / 10
		m.warn95s = int64(b.MaxStates) * 19 / 20
	}
	if b.MaxTransitions > 0 {
		m.warn80t = int64(b.MaxTransitions) * 8 / 10
		m.warn95t = int64(b.MaxTransitions) * 19 / 20
	}
	return m
}

// NoLimit returns a meter that only counts, never aborts.
func NoLimit() *Meter { return Budget{}.Meter() }

// timeCheckMask amortises wall-clock and cancellation polls: they run every
// timeCheckMask+1 ticks. Exploration loops tick at least once per state, so
// deadline overruns are detected promptly relative to exploration speed.
const timeCheckMask = 63

// Meter enforces a Budget and accumulates RunStats. It is used
// cooperatively: exploration loops call Tick/AddState/AddTransitions and
// abort when one returns an error. Once exhausted, the error latches —
// every subsequent call fails fast, so deeply nested searches unwind
// promptly without extra plumbing.
//
// Concurrency contract: a Meter is safe for concurrent use. The parallel
// frontier exploration of package ts shares one meter across its whole
// worker pool, so all counters are atomic and the latched error is guarded;
// budget overruns detected by racing workers latch exactly one error.
type Meter struct {
	budget   Budget
	start    time.Time
	deadline time.Time

	states       atomic.Int64
	transitions  atomic.Int64
	sccs         atomic.Int64
	peakFrontier atomic.Int64
	ticks        atomic.Int64

	failed atomic.Bool // fast path: true once err is latched
	mu     sync.Mutex
	err    error

	// obs, when non-nil, receives flight-recorder events. It must be set
	// with SetObserver before the metered exploration starts (the field is
	// read without synchronization on hot paths).
	obs Observer
	// warn80/warn95 are precomputed budget-warning thresholds (0 = none):
	// [0]/[1] states, [2]/[3] transitions at 80%/95%. Time warnings use
	// warnTime80/95. Each fires at most once, latched in warned.
	warn80s, warn95s int64
	warn80t, warn95t int64
	warnTime80       time.Time
	warnTime95       time.Time
	warned           [6]atomic.Bool
}

// Indexes into Meter.warned.
const (
	warnIdxStates80 = iota
	warnIdxStates95
	warnIdxTrans80
	warnIdxTrans95
	warnIdxTime80
	warnIdxTime95
)

// SetObserver installs the observer receiving this meter's events. It must
// be called before the metered exploration starts; the observer itself must
// be safe for concurrent use.
func (m *Meter) SetObserver(o Observer) { m.obs = o }

// Observer returns the installed observer, or nil.
func (m *Meter) Observer() Observer { return m.obs }

// Budget returns the budget this meter enforces.
func (m *Meter) Budget() Budget { return m.budget }

// Note forwards one flight-recorder event to the observer, if any. Layers
// above the engine use it to drop diagnostics into the flight recorder
// without depending on the obs package.
func (m *Meter) Note(kind, msg string) {
	if m.obs != nil {
		m.obs.ObserveEvent(kind, msg)
	}
}

// NoteReduction forwards an exploration's reduction statistics to the
// observer, if any. Like Note, it lets the exploration layer feed the
// flight recorder without depending on the obs package.
func (m *Meter) NoteReduction(op string, s ReductionStats) {
	if m.obs != nil {
		m.obs.ObserveReduction(op, s)
	}
}

// warnOnce fires the i-th budget warning exactly once.
func (m *Meter) warnOnce(i int, msg string) {
	if !m.warned[i].Swap(true) {
		m.obs.ObserveEvent("budget", msg)
	}
}

// Heartbeat returns a monotone counter that advances with every unit of
// cooperative work: ticks, states, transitions, and SCCs. The stall
// watchdog (obs.StartWatchdog) samples it; a heartbeat that stops moving
// means the exploration is wedged, not merely slow.
func (m *Meter) Heartbeat() int64 {
	return m.ticks.Load() + m.states.Load() + m.transitions.Load() + m.sccs.Load()
}

// Abort latches a budget-style failure from outside the exploration loops —
// the stall watchdog, a signal handler. The exploration unwinds at its next
// cooperative call (Tick/AddState/AddTransitions) and the run degrades to an
// UNKNOWN verdict carrying reason, exactly like an exhausted budget.
func (m *Meter) Abort(reason string) error { return m.fail(reason) }

// Err returns the latched exhaustion error, or nil.
func (m *Meter) Err() error {
	if !m.failed.Load() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Exhausted reports whether the budget has been exhausted.
func (m *Meter) Exhausted() bool { return m.failed.Load() }

// Stats returns a snapshot of the statistics with Elapsed filled in.
func (m *Meter) Stats() RunStats {
	return RunStats{
		States:       int(m.states.Load()),
		Transitions:  int(m.transitions.Load()),
		SCCs:         int(m.sccs.Load()),
		PeakFrontier: int(m.peakFrontier.Load()),
		Elapsed:      time.Since(m.start),
	}
}

func (m *Meter) fail(reason string) error {
	m.mu.Lock()
	first := false
	if m.err == nil {
		m.err = &BudgetError{Reason: reason, Stats: m.Stats()}
		m.failed.Store(true)
		first = true
	}
	err := m.err
	m.mu.Unlock()
	// Emit outside the lock: the observer may read meter state.
	if first && m.obs != nil {
		m.obs.ObserveEvent("budget-exhausted", reason)
	}
	return err
}

// Tick is the cooperative cancellation point: call it once per unit of work
// (state popped, assignment enumerated, SCC root visited). It polls the
// wall clock and the context on an amortised schedule.
func (m *Meter) Tick() error {
	if m.failed.Load() {
		return m.Err()
	}
	if m.ticks.Add(1)&timeCheckMask != 0 {
		return nil
	}
	if !m.deadline.IsZero() {
		now := time.Now()
		if now.After(m.deadline) {
			return m.fail(fmt.Sprintf("wall-clock budget %v exceeded", m.budget.Timeout))
		}
		if m.obs != nil {
			if now.After(m.warnTime95) {
				m.warnOnce(warnIdxTime95, fmt.Sprintf("95%% of wall-clock budget %v used", m.budget.Timeout))
			} else if now.After(m.warnTime80) {
				m.warnOnce(warnIdxTime80, fmt.Sprintf("80%% of wall-clock budget %v used", m.budget.Timeout))
			}
		}
	}
	if m.budget.Ctx != nil {
		select {
		case <-m.budget.Ctx.Done():
			return m.fail(fmt.Sprintf("cancelled: %v", m.budget.Ctx.Err()))
		default:
		}
	}
	return nil
}

// AddState records one state added to a graph and checks the state budget.
func (m *Meter) AddState() error {
	if m.failed.Load() {
		return m.Err()
	}
	n := m.states.Add(1)
	if m.budget.MaxStates > 0 && n > int64(m.budget.MaxStates) {
		return m.fail(fmt.Sprintf("state budget %d exceeded", m.budget.MaxStates))
	}
	if m.obs != nil && m.warn80s > 0 {
		if n >= m.warn95s {
			m.warnOnce(warnIdxStates95, fmt.Sprintf("95%% of state budget used (%d of %d)", n, m.budget.MaxStates))
		} else if n >= m.warn80s {
			m.warnOnce(warnIdxStates80, fmt.Sprintf("80%% of state budget used (%d of %d)", n, m.budget.MaxStates))
		}
	}
	return m.Tick()
}

// AddTransitions records n explored transitions and checks the transition
// budget.
func (m *Meter) AddTransitions(n int) error {
	if m.failed.Load() {
		return m.Err()
	}
	total := m.transitions.Add(int64(n))
	if m.budget.MaxTransitions > 0 && total > int64(m.budget.MaxTransitions) {
		return m.fail(fmt.Sprintf("transition budget %d exceeded", m.budget.MaxTransitions))
	}
	if m.obs != nil && m.warn80t > 0 {
		if total >= m.warn95t {
			m.warnOnce(warnIdxTrans95, fmt.Sprintf("95%% of transition budget used (%d of %d)", total, m.budget.MaxTransitions))
		} else if total >= m.warn80t {
			m.warnOnce(warnIdxTrans80, fmt.Sprintf("80%% of transition budget used (%d of %d)", total, m.budget.MaxTransitions))
		}
	}
	return nil
}

// sccMilestoneMask amortises SCC milestone events: one fires every
// sccMilestoneMask+1 components examined.
const sccMilestoneMask = 8191

// NoteSCC records one strongly connected component examined.
func (m *Meter) NoteSCC() {
	n := m.sccs.Add(1)
	if m.obs != nil && n&sccMilestoneMask == 0 {
		m.obs.ObserveEvent("scc", fmt.Sprintf("%d SCCs examined", n))
	}
}

// NoteFrontier records the current BFS frontier size (for the level-
// synchronous exploration, the width of a level).
func (m *Meter) NoteFrontier(n int) {
	v := int64(n)
	for {
		cur := m.peakFrontier.Load()
		if v <= cur || m.peakFrontier.CompareAndSwap(cur, v) {
			return
		}
	}
}

// BudgetError reports that an exploration was aborted because its budget
// was exhausted (or the instance was statically recognised as out of
// reach). It carries the partial statistics so the aborted run is still
// diagnosable.
type BudgetError struct {
	Reason string
	Stats  RunStats
}

// Error renders the exhaustion reason.
func (e *BudgetError) Error() string { return "budget exhausted: " + e.Reason }

// EngineError is a contained internal failure: a panic recovered inside the
// exploration core, converted into a diagnosable error carrying the
// offending state fingerprint and formula instead of crashing the process.
type EngineError struct {
	// Op names the engine entry point that failed.
	Op string
	// Fingerprint is the key of the state being processed, if known.
	Fingerprint string
	// Formula renders the property being evaluated, if known.
	Formula string
	// PanicVal is the recovered panic value.
	PanicVal string
	// Stack is the goroutine stack at the point of the panic.
	Stack string
}

// Error renders the failure without the stack (use Stack for post-mortems).
func (e *EngineError) Error() string {
	msg := fmt.Sprintf("internal engine error in %s: %s", e.Op, e.PanicVal)
	if e.Fingerprint != "" {
		msg += fmt.Sprintf(" (state %s)", e.Fingerprint)
	}
	if e.Formula != "" {
		msg += fmt.Sprintf(" (formula %s)", e.Formula)
	}
	return msg
}

// Capture converts a panic in the enclosing function into an *EngineError
// assigned to *err. Use as
//
//	defer engine.Capture(&err, "ts.Build", func() (string, string) { return cur.Key(), "" })
//
// where the diag callback reports the state fingerprint and formula under
// examination when the panic fired (either may be empty; diag may be nil).
func Capture(err *error, op string, diag func() (fingerprint, formula string)) {
	r := recover()
	if r == nil {
		return
	}
	fp, f := "", ""
	if diag != nil {
		fp, f = diag()
	}
	*err = &EngineError{
		Op:          op,
		Fingerprint: fp,
		Formula:     f,
		PanicVal:    fmt.Sprint(r),
		Stack:       string(debug.Stack()),
	}
}

// AsUnknown classifies an error: budget exhaustion and contained engine
// panics yield an Unknown verdict (with the reason and any partial
// statistics); other errors are the caller's problem.
func AsUnknown(err error) (reason string, stats RunStats, ok bool) {
	var be *BudgetError
	if errors.As(err, &be) {
		return be.Reason, be.Stats, true
	}
	var ee *EngineError
	if errors.As(err, &ee) {
		return ee.Error(), RunStats{}, true
	}
	return "", RunStats{}, false
}

// BudgetFlags registers the standard budget flags on a FlagSet and returns
// the bound values; call Meter after parsing.
type BudgetFlags struct {
	TimeoutMS      int
	MaxStates      int
	MaxTransitions int
}

// AddBudgetFlags registers -budget-ms, -max-states, and -max-transitions.
func AddBudgetFlags(fs *flag.FlagSet) *BudgetFlags {
	b := &BudgetFlags{}
	fs.IntVar(&b.TimeoutMS, "budget-ms", 0, "wall-clock budget in milliseconds (0 = unlimited)")
	fs.IntVar(&b.MaxStates, "max-states", 0, "maximum states to explore across all graphs (0 = unlimited)")
	fs.IntVar(&b.MaxTransitions, "max-transitions", 0, "maximum transitions to explore (0 = unlimited)")
	return b
}

// Budget converts the parsed flags into a Budget.
func (b *BudgetFlags) Budget() Budget {
	return Budget{
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
		MaxStates:      b.MaxStates,
		MaxTransitions: b.MaxTransitions,
	}
}

// Meter converts the parsed flags into a running meter.
func (b *BudgetFlags) Meter() *Meter { return b.Budget().Meter() }

// DefaultWorkers is the CLI -workers default: every CPU the runtime will
// schedule on, capped so container-reported core counts in the hundreds
// don't allocate hundreds of worker arenas for explorations that rarely
// benefit past a few dozen workers.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

// AddWorkersFlag registers the -workers flag shared by the CLIs: the number
// of goroutines used by parallel frontier exploration. The default is
// DefaultWorkers (all CPUs, capped); -workers 1 is the sequential path.
// Exploration results are deterministic regardless of the worker count.
func AddWorkersFlag(fs *flag.FlagSet) *int {
	w := fs.Int("workers", DefaultWorkers(), fmt.Sprintf(
		"worker goroutines for state-graph exploration (default: all CPUs capped at 16, currently %d); results are identical at any setting",
		DefaultWorkers()))
	return w
}

// MaxWorkers bounds -workers to a sane multiple of any plausible machine:
// each worker owns persistent scratch arenas, so an absurd count would
// allocate gigabytes before exploring a single state.
const MaxWorkers = 4096

// ValidateWorkers vets a -workers flag value: zero and negative counts and
// counts beyond MaxWorkers are user errors (exit 2 in the CLIs), not
// requests to be satisfied. The flag default already resolves the machine's
// CPU count, so there is no "pick for me" sentinel left to spell.
func ValidateWorkers(w int) error {
	if w < 1 {
		return fmt.Errorf("-workers must be >= 1 (default: all CPUs capped at 16), got %d", w)
	}
	if w > MaxWorkers {
		return fmt.Errorf("-workers %d exceeds the maximum %d", w, MaxWorkers)
	}
	return nil
}
