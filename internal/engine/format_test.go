package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunStatsString(t *testing.T) {
	tests := []struct {
		name  string
		stats RunStats
		want  string
	}{
		{
			name:  "zero",
			stats: RunStats{},
			want:  "0 states, 0 transitions, 0 SCCs, peak frontier 0, elapsed 0s",
		},
		{
			name: "partial",
			stats: RunStats{
				States:       51,
				Transitions:  88,
				PeakFrontier: 20,
				Elapsed:      17 * time.Millisecond,
			},
			want: "51 states, 88 transitions, 0 SCCs, peak frontier 20, elapsed 17ms",
		},
		{
			name: "full run with rounding",
			stats: RunStats{
				States:       34092,
				Transitions:  328662,
				SCCs:         2286,
				PeakFrontier: 1908,
				Elapsed:      4523391967 * time.Nanosecond,
			},
			want: "34092 states, 328662 transitions, 2286 SCCs, peak frontier 1908, elapsed 4.523s",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.stats.String(); got != tt.want {
				t.Errorf("RunStats.String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestBudgetErrorFormat(t *testing.T) {
	tests := []struct {
		name string
		err  *BudgetError
		want string
	}{
		{
			name: "zero progress",
			err:  &BudgetError{Reason: "state budget 0 exceeded"},
			want: "budget exhausted: state budget 0 exceeded",
		},
		{
			name: "partial progress",
			err: &BudgetError{
				Reason: "state budget 50 exceeded",
				Stats:  RunStats{States: 51, Transitions: 88},
			},
			want: "budget exhausted: state budget 50 exceeded",
		},
		{
			name: "wall clock",
			err: &BudgetError{
				Reason: "wall-clock budget 5ms exceeded",
				Stats:  RunStats{States: 10000, Elapsed: 6 * time.Millisecond},
			},
			want: "budget exhausted: wall-clock budget 5ms exceeded",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.err.Error(); got != tt.want {
				t.Errorf("BudgetError.Error() = %q, want %q", got, tt.want)
			}
			reason, stats, ok := AsUnknown(tt.err)
			if !ok {
				t.Fatalf("AsUnknown(%v) = false, want true", tt.err)
			}
			if reason != tt.err.Reason {
				t.Errorf("AsUnknown reason = %q, want %q", reason, tt.err.Reason)
			}
			if stats != tt.err.Stats {
				t.Errorf("AsUnknown stats = %+v, want %+v", stats, tt.err.Stats)
			}
		})
	}
}

// eventLog is a concurrency-safe Observer for tests.
type eventLog struct {
	mu     sync.Mutex
	events []string
	levels []string
}

func (l *eventLog) ObserveEvent(kind, msg string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, kind+": "+msg)
}

func (l *eventLog) ObserveLevel(op string, level, width, workers, totalStates int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.levels = append(l.levels, fmt.Sprintf("%s L%d w%d", op, level, width))
}

func (l *eventLog) ObserveReduction(op string, s ReductionStats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, fmt.Sprintf("reduce: %s ample=%d full=%d sym=%d",
		op, s.AmpleStates, s.FullStates, s.SymCollapsed))
}

func (l *eventLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

func TestMeterBudgetWarningsFireOnce(t *testing.T) {
	log := &eventLog{}
	m := Budget{MaxStates: 100}.Meter()
	m.SetObserver(log)

	// Cross 80% and 95% repeatedly; each warning must fire exactly once.
	for i := 0; i < 96; i++ {
		if err := m.AddState(); err != nil {
			t.Fatalf("AddState within budget: %v", err)
		}
	}
	events := log.snapshot()
	var n80, n95 int
	for _, e := range events {
		if strings.Contains(e, "80% of state budget used") {
			n80++
		}
		if strings.Contains(e, "95% of state budget used") {
			n95++
		}
	}
	if n80 != 1 || n95 != 1 {
		t.Errorf("warning counts: 80%%=%d, 95%%=%d, want 1 each (events %v)", n80, n95, events)
	}

	// Exhaustion latches and emits budget-exhausted exactly once.
	for i := 0; i < 10; i++ {
		if err := m.AddState(); err == nil && i > 4 {
			t.Fatalf("AddState beyond budget should fail")
		}
	}
	var nEx int
	for _, e := range log.snapshot() {
		if strings.HasPrefix(e, "budget-exhausted:") {
			nEx++
		}
	}
	if nEx != 1 {
		t.Errorf("budget-exhausted events = %d, want 1", nEx)
	}
}

func TestMeterTransitionWarnings(t *testing.T) {
	log := &eventLog{}
	m := Budget{MaxTransitions: 1000}.Meter()
	m.SetObserver(log)
	for i := 0; i < 10; i++ {
		if err := m.AddTransitions(96); err != nil {
			t.Fatalf("AddTransitions within budget: %v", err)
		}
	}
	var n80, n95 int
	for _, e := range log.snapshot() {
		if strings.Contains(e, "80% of transition budget used") {
			n80++
		}
		if strings.Contains(e, "95% of transition budget used") {
			n95++
		}
	}
	if n80 != 1 || n95 != 1 {
		t.Errorf("warning counts: 80%%=%d, 95%%=%d, want 1 each", n80, n95)
	}
}

func TestMeterNoObserverNoWarnings(t *testing.T) {
	// A meter without an observer must cross thresholds silently and still
	// enforce the budget.
	m := Budget{MaxStates: 10}.Meter()
	for i := 0; i < 10; i++ {
		if err := m.AddState(); err != nil {
			t.Fatalf("AddState within budget: %v", err)
		}
	}
	if err := m.AddState(); err == nil {
		t.Fatal("AddState beyond budget should fail")
	}
}

func TestMeterNoteForwardsEvents(t *testing.T) {
	log := &eventLog{}
	m := NoLimit()
	m.Note("ignored", "observer not attached yet") // must not panic
	m.SetObserver(log)
	m.Note("custom", "hello")
	events := log.snapshot()
	if len(events) != 1 || events[0] != "custom: hello" {
		t.Errorf("events = %v, want [custom: hello]", events)
	}
}

func TestMeterWarningsConcurrent(t *testing.T) {
	// Hammer the warning thresholds from many goroutines; -race must stay
	// quiet and each warning still fires exactly once.
	log := &eventLog{}
	m := Budget{MaxStates: 10000, MaxTransitions: 10000}.Meter()
	m.SetObserver(log)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				if m.AddState() != nil {
					return
				}
				if m.AddTransitions(1) != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	counts := map[string]int{}
	for _, e := range log.snapshot() {
		for _, key := range []string{
			"80% of state budget", "95% of state budget",
			"80% of transition budget", "95% of transition budget",
			"budget-exhausted:",
		} {
			if strings.Contains(e, key) {
				counts[key]++
			}
		}
	}
	for key, n := range counts {
		if n > 1 {
			t.Errorf("%q fired %d times, want at most once", key, n)
		}
	}
	if counts["budget-exhausted:"] != 1 {
		t.Errorf("budget-exhausted fired %d times, want exactly once", counts["budget-exhausted:"])
	}
}
