package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestVerdictExitCodes(t *testing.T) {
	cases := []struct {
		v    Verdict
		code int
		str  string
	}{
		{Holds, 0, "HOLDS"},
		{Violated, 1, "VIOLATED"},
		{Unknown, 2, "UNKNOWN"},
	}
	for _, c := range cases {
		if got := c.v.ExitCode(); got != c.code {
			t.Errorf("%s.ExitCode() = %d, want %d", c.v, got, c.code)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestMeterStateBudget(t *testing.T) {
	m := Budget{MaxStates: 3}.Meter()
	for i := 0; i < 3; i++ {
		if err := m.AddState(); err != nil {
			t.Fatalf("AddState %d: %v", i, err)
		}
	}
	err := m.AddState()
	if err == nil {
		t.Fatal("expected state budget exhaustion")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *BudgetError, got %T", err)
	}
	if !strings.Contains(be.Reason, "state budget 3") {
		t.Errorf("reason = %q", be.Reason)
	}
	if be.Stats.States != 4 {
		t.Errorf("partial stats states = %d, want 4", be.Stats.States)
	}
	// Latched: everything fails fast now.
	if err := m.Tick(); err == nil {
		t.Error("Tick after exhaustion should fail")
	}
	if !m.Exhausted() {
		t.Error("Exhausted() should be true")
	}
}

func TestMeterTransitionBudget(t *testing.T) {
	m := Budget{MaxTransitions: 10}.Meter()
	if err := m.AddTransitions(10); err != nil {
		t.Fatalf("AddTransitions: %v", err)
	}
	if err := m.AddTransitions(1); err == nil {
		t.Fatal("expected transition budget exhaustion")
	}
}

func TestMeterDeadline(t *testing.T) {
	m := Budget{Timeout: time.Nanosecond}.Meter()
	time.Sleep(time.Millisecond)
	var err error
	for i := 0; i <= timeCheckMask+1 && err == nil; i++ {
		err = m.Tick()
	}
	if err == nil {
		t.Fatal("expected deadline exhaustion")
	}
	if !strings.Contains(err.Error(), "wall-clock") {
		t.Errorf("error = %v", err)
	}
}

func TestMeterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := Budget{Ctx: ctx}.Meter()
	var err error
	for i := 0; i <= timeCheckMask+1 && err == nil; i++ {
		err = m.Tick()
	}
	if err == nil {
		t.Fatal("expected cancellation")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error = %v", err)
	}
}

func TestNoLimitNeverAborts(t *testing.T) {
	m := NoLimit()
	for i := 0; i < 1000; i++ {
		if err := m.AddState(); err != nil {
			t.Fatalf("AddState: %v", err)
		}
		if err := m.AddTransitions(5); err != nil {
			t.Fatalf("AddTransitions: %v", err)
		}
	}
	m.NoteSCC()
	m.NoteFrontier(7)
	m.NoteFrontier(3)
	s := m.Stats()
	if s.States != 1000 || s.Transitions != 5000 || s.SCCs != 1 || s.PeakFrontier != 7 {
		t.Errorf("stats = %+v", s)
	}
	if s.Elapsed <= 0 {
		t.Error("elapsed should be positive")
	}
}

func TestCaptureConvertsPanic(t *testing.T) {
	boom := func() (err error) {
		defer Capture(&err, "test.Op", func() (string, string) { return "x=1", "[]P" })
		panic("invariant broken")
	}
	err := boom()
	if err == nil {
		t.Fatal("expected contained panic")
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("expected *EngineError, got %T: %v", err, err)
	}
	if ee.Op != "test.Op" || ee.Fingerprint != "x=1" || ee.Formula != "[]P" {
		t.Errorf("diag fields = %+v", ee)
	}
	if !strings.Contains(ee.Error(), "invariant broken") {
		t.Errorf("error = %v", ee)
	}
	if ee.Stack == "" {
		t.Error("stack should be captured")
	}
}

func TestCaptureNoPanicLeavesErrAlone(t *testing.T) {
	fine := func() (err error) {
		defer Capture(&err, "test.Op", nil)
		return nil
	}
	if err := fine(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAsUnknown(t *testing.T) {
	if r, st, ok := AsUnknown(&BudgetError{Reason: "out of gas", Stats: RunStats{States: 7}}); !ok || r != "out of gas" || st.States != 7 {
		t.Errorf("budget: %v %v %v", r, st, ok)
	}
	if r, _, ok := AsUnknown(&EngineError{Op: "x", PanicVal: "boom"}); !ok || !strings.Contains(r, "boom") {
		t.Errorf("engine: %v %v", r, ok)
	}
	if _, _, ok := AsUnknown(errors.New("plain")); ok {
		t.Error("plain error should not classify as Unknown")
	}
	if _, _, ok := AsUnknown(nil); ok {
		t.Error("nil should not classify as Unknown")
	}
}

func TestRunStatsString(t *testing.T) {
	s := RunStats{States: 1, Transitions: 2, SCCs: 3, PeakFrontier: 4, Elapsed: 5 * time.Millisecond}
	str := s.String()
	for _, want := range []string{"1 states", "2 transitions", "3 SCCs", "peak frontier 4", "5ms"} {
		if !strings.Contains(str, want) {
			t.Errorf("stats string %q missing %q", str, want)
		}
	}
}
