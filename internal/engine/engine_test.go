package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestVerdictExitCodes(t *testing.T) {
	cases := []struct {
		v    Verdict
		code int
		str  string
	}{
		{Holds, 0, "HOLDS"},
		{Violated, 1, "VIOLATED"},
		{Unknown, 2, "UNKNOWN"},
	}
	for _, c := range cases {
		if got := c.v.ExitCode(); got != c.code {
			t.Errorf("%s.ExitCode() = %d, want %d", c.v, got, c.code)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestMeterStateBudget(t *testing.T) {
	m := Budget{MaxStates: 3}.Meter()
	for i := 0; i < 3; i++ {
		if err := m.AddState(); err != nil {
			t.Fatalf("AddState %d: %v", i, err)
		}
	}
	err := m.AddState()
	if err == nil {
		t.Fatal("expected state budget exhaustion")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *BudgetError, got %T", err)
	}
	if !strings.Contains(be.Reason, "state budget 3") {
		t.Errorf("reason = %q", be.Reason)
	}
	if be.Stats.States != 4 {
		t.Errorf("partial stats states = %d, want 4", be.Stats.States)
	}
	// Latched: everything fails fast now.
	if err := m.Tick(); err == nil {
		t.Error("Tick after exhaustion should fail")
	}
	if !m.Exhausted() {
		t.Error("Exhausted() should be true")
	}
}

func TestMeterTransitionBudget(t *testing.T) {
	m := Budget{MaxTransitions: 10}.Meter()
	if err := m.AddTransitions(10); err != nil {
		t.Fatalf("AddTransitions: %v", err)
	}
	if err := m.AddTransitions(1); err == nil {
		t.Fatal("expected transition budget exhaustion")
	}
}

func TestMeterDeadline(t *testing.T) {
	m := Budget{Timeout: time.Nanosecond}.Meter()
	time.Sleep(time.Millisecond)
	var err error
	for i := 0; i <= timeCheckMask+1 && err == nil; i++ {
		err = m.Tick()
	}
	if err == nil {
		t.Fatal("expected deadline exhaustion")
	}
	if !strings.Contains(err.Error(), "wall-clock") {
		t.Errorf("error = %v", err)
	}
}

func TestMeterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := Budget{Ctx: ctx}.Meter()
	var err error
	for i := 0; i <= timeCheckMask+1 && err == nil; i++ {
		err = m.Tick()
	}
	if err == nil {
		t.Fatal("expected cancellation")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error = %v", err)
	}
}

func TestNoLimitNeverAborts(t *testing.T) {
	m := NoLimit()
	for i := 0; i < 1000; i++ {
		if err := m.AddState(); err != nil {
			t.Fatalf("AddState: %v", err)
		}
		if err := m.AddTransitions(5); err != nil {
			t.Fatalf("AddTransitions: %v", err)
		}
	}
	m.NoteSCC()
	m.NoteFrontier(7)
	m.NoteFrontier(3)
	s := m.Stats()
	if s.States != 1000 || s.Transitions != 5000 || s.SCCs != 1 || s.PeakFrontier != 7 {
		t.Errorf("stats = %+v", s)
	}
	if s.Elapsed <= 0 {
		t.Error("elapsed should be positive")
	}
}

func TestCaptureConvertsPanic(t *testing.T) {
	boom := func() (err error) {
		defer Capture(&err, "test.Op", func() (string, string) { return "x=1", "[]P" })
		panic("invariant broken")
	}
	err := boom()
	if err == nil {
		t.Fatal("expected contained panic")
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("expected *EngineError, got %T: %v", err, err)
	}
	if ee.Op != "test.Op" || ee.Fingerprint != "x=1" || ee.Formula != "[]P" {
		t.Errorf("diag fields = %+v", ee)
	}
	if !strings.Contains(ee.Error(), "invariant broken") {
		t.Errorf("error = %v", ee)
	}
	if ee.Stack == "" {
		t.Error("stack should be captured")
	}
}

func TestCaptureNoPanicLeavesErrAlone(t *testing.T) {
	fine := func() (err error) {
		defer Capture(&err, "test.Op", nil)
		return nil
	}
	if err := fine(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAsUnknown(t *testing.T) {
	if r, st, ok := AsUnknown(&BudgetError{Reason: "out of gas", Stats: RunStats{States: 7}}); !ok || r != "out of gas" || st.States != 7 {
		t.Errorf("budget: %v %v %v", r, st, ok)
	}
	if r, _, ok := AsUnknown(&EngineError{Op: "x", PanicVal: "boom"}); !ok || !strings.Contains(r, "boom") {
		t.Errorf("engine: %v %v", r, ok)
	}
	if _, _, ok := AsUnknown(errors.New("plain")); ok {
		t.Error("plain error should not classify as Unknown")
	}
	if _, _, ok := AsUnknown(nil); ok {
		t.Error("nil should not classify as Unknown")
	}
}

// TestMeterConcurrent hammers one meter from several goroutines, checking
// that counters stay exact and that a budget overrun latches exactly one
// error visible to every goroutine. Run with -race.
func TestMeterConcurrent(t *testing.T) {
	m := NoLimit()
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := m.AddState(); err != nil {
					t.Error(err)
					return
				}
				if err := m.AddTransitions(2); err != nil {
					t.Error(err)
					return
				}
				m.NoteFrontier(i)
				m.NoteSCC()
			}
		}()
	}
	wg.Wait()
	st := m.Stats()
	if st.States != goroutines*perG {
		t.Errorf("states = %d, want %d", st.States, goroutines*perG)
	}
	if st.Transitions != 2*goroutines*perG {
		t.Errorf("transitions = %d, want %d", st.Transitions, 2*goroutines*perG)
	}
	if st.SCCs != goroutines*perG {
		t.Errorf("sccs = %d, want %d", st.SCCs, goroutines*perG)
	}
	if st.PeakFrontier != perG-1 {
		t.Errorf("peak frontier = %d, want %d", st.PeakFrontier, perG-1)
	}
}

// TestMeterConcurrentBudgetLatch checks that racing workers overrunning the
// state budget all converge on the same latched error.
func TestMeterConcurrentBudgetLatch(t *testing.T) {
	m := Budget{MaxStates: 50}.Meter()
	const goroutines = 8
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := m.AddState(); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var latched error
	for g := 0; g < goroutines; g++ {
		if errs[g] == nil {
			continue
		}
		if latched == nil {
			latched = errs[g]
		}
		var be *BudgetError
		if !errors.As(errs[g], &be) {
			t.Fatalf("goroutine %d: got %v, want *BudgetError", g, errs[g])
		}
		if !strings.Contains(be.Reason, "state budget 50 exceeded") {
			t.Errorf("goroutine %d: reason %q", g, be.Reason)
		}
	}
	if latched == nil {
		t.Fatal("no goroutine observed the budget error")
	}
	if m.Err() != latched {
		t.Error("Err() should return the single latched error")
	}
	if !m.Exhausted() {
		t.Error("meter should report exhausted")
	}
}
