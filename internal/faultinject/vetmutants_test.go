package faultinject

import (
	"strings"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/queue"
)

// TestVetCatalogNoSurvivors asserts the static analyzer kills every
// ill-formed-spec mutant with the expected diagnostic codes.
func TestVetCatalogNoSurvivors(t *testing.T) {
	cfg := queue.Config{N: 1, Vals: 2}
	muts := VetCatalog(cfg)
	if len(muts) < 6 {
		t.Fatalf("vet catalog has %d mutants, want >= 6", len(muts))
	}
	results, err := RunVet(cfg, muts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(muts) {
		t.Fatalf("got %d results for %d mutants", len(results), len(muts))
	}
	for i, r := range results {
		if !r.Detected {
			t.Errorf("SURVIVOR %s (want codes %v, missing %v; found %v)",
				r.Mutation, muts[i].WantCodes, r.Missing, r.Found)
		}
	}
}

// TestVetCatalogKindsCovered pins that the catalog spans the analysis
// families, so a regression in any one family loses a mutant kill.
func TestVetCatalogKindsCovered(t *testing.T) {
	kinds := map[Kind]bool{}
	for _, mu := range VetCatalog(queue.Config{N: 1, Vals: 2}) {
		kinds[mu.Kind] = true
	}
	for _, want := range []Kind{KindAction, KindPartition, KindFairness, KindInterleaving, KindExec, KindSemantic} {
		if !kinds[want] {
			t.Errorf("no vet mutant of kind %q", want)
		}
	}
}

// TestSemanticMutantsPresent pins the semantic-pass mutant floor: the
// catalog must keep at least four SV1xx-targeted mutants, each killed by a
// distinct diagnostic family of the abstract interpreter.
func TestSemanticMutantsPresent(t *testing.T) {
	var sem []VetMutation
	families := map[string]bool{}
	for _, mu := range VetCatalog(queue.Config{N: 1, Vals: 2}) {
		if mu.Kind != KindSemantic {
			continue
		}
		sem = append(sem, mu)
		for _, c := range mu.WantCodes {
			if strings.HasPrefix(c, "SV1") {
				families[c] = true
			}
		}
	}
	if len(sem) < 4 {
		t.Errorf("catalog has %d semantic mutants, want >= 4", len(sem))
	}
	if len(families) < 4 {
		t.Errorf("semantic mutants cover %d SV1xx codes (%v), want >= 4", len(families), families)
	}
}

// TestBoundCatalogNoSurvivors asserts the bound-vs-explored cross-check
// kills every bound-soundness mutant: a sabotaged cardinality product must
// drop below the explored state count of the probe model.
func TestBoundCatalogNoSurvivors(t *testing.T) {
	muts := BoundCatalog()
	if len(muts) < 2 {
		t.Fatalf("bound catalog has %d mutants, want >= 2", len(muts))
	}
	results, err := RunBound(muts, engine.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("SURVIVOR %s", r.Mutation)
		} else {
			t.Logf("%s: %s", r.Mutation, r.Detail)
		}
	}
}

// TestRunVetRejectsBrokenBaseline guards the harness itself: RunVet must
// refuse to measure mutants against a baseline that already has errors.
func TestRunVetRejectsBrokenBaseline(t *testing.T) {
	// A zero-capacity queue still vets cleanly, so simulate a broken
	// baseline by mutating before RunVet — via a catalog whose Apply is
	// never reached because the baseline (unmutated) check runs first.
	// The real guard is exercised by construction: passing a config is
	// all RunVet accepts, so this test pins that the shipped config is a
	// valid baseline.
	if _, err := RunVet(queue.Config{N: 1, Vals: 2}, nil); err != nil {
		t.Errorf("clean baseline rejected: %v", err)
	}
}
