package faultinject

import "testing"

// TestDurabilityMutantsZeroSurvivors is the acceptance criterion of the
// durability catalog: every planted persistence bug must be rejected by at
// least one chaos-harness invariant. A survivor means the harness has a
// blind spot exactly where the bug sits.
func TestDurabilityMutantsZeroSurvivors(t *testing.T) {
	muts := DurabilityCatalog()
	if len(muts) < 3 {
		t.Fatalf("durability catalog has %d mutants, want >= 3", len(muts))
	}
	results, err := RunDurability(muts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("SURVIVOR: mutant %s evaded every detector", r.Mutation)
			continue
		}
		t.Logf("%s caught by %s: %s", r.Mutation, r.Detector, r.Detail)
	}
}

// TestDurabilityCatalogWellFormed: names unique, descriptions present, and
// no mutant is accidentally the identity mutation.
func TestDurabilityCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, mu := range DurabilityCatalog() {
		if mu.Name == "" || mu.Description == "" {
			t.Errorf("mutant %+v missing name or description", mu)
		}
		if seen[mu.Name] {
			t.Errorf("duplicate mutant name %q", mu.Name)
		}
		seen[mu.Name] = true
		if mu.Mut == 0 {
			t.Errorf("mutant %s plants no mutation", mu.Name)
		}
	}
}
