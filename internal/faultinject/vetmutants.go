package faultinject

import (
	"fmt"

	"opentla/internal/ag"
	"opentla/internal/form"
	"opentla/internal/queue"
	"opentla/internal/state"
	"opentla/internal/value"
	"opentla/internal/vet"
)

// KindPartition marks mutations that corrupt a component's variable
// partition (duplicate or clashing declarations).
const KindPartition Kind = "partition"

// VetMutation is one injected well-formedness fault, aimed at the static
// analyzer rather than the model checker: each mutant breaks a canonical-
// form side condition in a way that leaves the spec mechanically checkable
// (the graphs still build) but makes the resulting verdict meaningless.
// The analyzer must reject every one — a surviving mutant is a hole in the
// analyzer exactly as a Catalog survivor is a hole in the checker.
type VetMutation struct {
	Name        string
	Kind        Kind
	Description string
	// WantCodes are the diagnostic codes the analyzer must report.
	WantCodes []string
	// Apply plants the fault in a freshly built Figure 9 theorem.
	Apply func(th *ag.Theorem) error
}

// VetResult records how the analyzer handled one ill-formed mutant.
type VetResult struct {
	Mutation string
	// Detected is true when every expected code was reported and at least
	// one finding was warn-severity or above.
	Detected bool
	// Found are the diagnostic codes the analyzer reported, in order.
	Found []string
	// Missing are expected codes the analyzer failed to report.
	Missing []string
}

// VetCatalog returns the ill-formed-spec mutant set over the Figure 9
// theorem: one mutant per static-analysis family. See the package test,
// which asserts the analyzer kills all of them.
func VetCatalog(cfg queue.Config) []VetMutation {
	q1Pair := func(th *ag.Theorem) (*ag.Pair, error) { return pairByName(th, "Q1") }
	muts := []VetMutation{
		{
			Name: "vet-unowned-write",
			Kind: KindAction,
			Description: "QM1's Enq also empties q2, the second queue's internal " +
				"variable: a write into another component's owned set",
			WantCodes: []string{"SV001", "SV003"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Actions[0].Def = form.And(p.Sys.Actions[0].Def,
					form.Eq(form.PrimedVar("q2"), form.EmptySeq))
				return nil
			},
		},
		{
			Name: "vet-primed-input",
			Kind: KindAction,
			Description: "QM1's Enq constrains i.val', the value wire it only " +
				"reads: a component writing its own input",
			WantCodes: []string{"SV002"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Actions[0].Def = form.And(p.Sys.Actions[0].Def,
					form.Eq(form.PrimedVar(queue.In.Val()), form.IntC(0)))
				return nil
			},
		},
		{
			Name: "vet-overlapping-outputs",
			Kind: KindPartition,
			Description: "QM1 also declares o.sig as an output, clashing with " +
				"QM2's ownership of the o channel's send wires",
			WantCodes: []string{"SV011"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Outputs = append(p.Sys.Outputs, queue.Out.Sig())
				return nil
			},
		},
		{
			Name: "vet-duplicate-decl",
			Kind: KindPartition,
			Description: "QM1 declares z.sig as an input while already owning it " +
				"as an output: a broken variable partition",
			WantCodes: []string{"SV010"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Inputs = append(p.Sys.Inputs, queue.Mid.Sig())
				return nil
			},
		},
		{
			Name: "vet-bad-fairness-sub",
			Kind: KindFairness,
			Description: "QM1's fairness subscript becomes q1', a primed " +
				"expression — not a state function",
			WantCodes: []string{"SV030"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				if len(p.Sys.Fairness) == 0 {
					return fmt.Errorf("pair Q1 has no fairness to corrupt")
				}
				p.Sys.Fairness[0].Sub = form.PrimedVar("q1")
				return nil
			},
		},
		{
			Name: "vet-missing-disjoint",
			Kind: KindInterleaving,
			Description: "delete the interleaving pair G entirely: no Disjoint " +
				"hypothesis separates the queues' outputs",
			WantCodes: []string{"SV020"},
			Apply: func(th *ag.Theorem) error {
				if _, err := pairByName(th, "G"); err != nil {
					return err
				}
				var kept []ag.Pair
				for _, p := range th.Pairs {
					if p.Name != "G" {
						kept = append(kept, p)
					}
				}
				th.Pairs = kept
				return nil
			},
		},
		{
			Name: "vet-dead-action",
			Kind: KindAction,
			Description: "QM1's Deq guard becomes len(q1) > 0 /\\ ~(len(q1) > 0): " +
				"a syntactically unsatisfiable action",
			WantCodes: []string{"SV050"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				guard := form.Gt(form.Len(form.Var("q1")), form.IntC(0))
				p.Sys.Actions[1].Def = form.And(guard, form.Not(guard))
				p.Sys.Actions[1].Exec = nil
				return nil
			},
		},
		{
			Name: "vet-exec-rogue-write",
			Kind: KindExec,
			Description: "QM1's Enq generator updates q2, a variable the " +
				"component does not own",
			WantCodes: []string{"SV040"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
					return []map[string]value.Value{{"q2": value.Empty}}
				}
				return nil
			},
		},
	}
	return append(muts, semVetMutations(cfg)...)
}

// RunVet applies each ill-formed mutant to its own copy of the Figure 9
// theorem and runs the static analyzer over it. The unmutated theorem must
// analyze with zero errors first — killing mutants with an analyzer that
// rejects the baseline proves nothing.
func RunVet(cfg queue.Config, muts []VetMutation) ([]VetResult, error) {
	if base := cfg.Fig9Theorem().Vet(); base.HasErrors() {
		return nil, fmt.Errorf("faultinject baseline has vet errors; mutation results would be meaningless:\n%s", base)
	}
	results := make([]VetResult, 0, len(muts))
	for _, mu := range muts {
		th := cfg.Fig9Theorem()
		if err := mu.Apply(th); err != nil {
			return nil, fmt.Errorf("vet mutant %s: apply: %w", mu.Name, err)
		}
		res := th.Vet()
		vr := VetResult{Mutation: mu.Name}
		found := make(map[string]bool)
		for _, d := range res.Diagnostics {
			vr.Found = append(vr.Found, d.Code)
			found[d.Code] = true
		}
		for _, want := range mu.WantCodes {
			if !found[want] {
				vr.Missing = append(vr.Missing, want)
			}
		}
		vr.Detected = len(vr.Missing) == 0 && len(res.Filter(vet.Warn)) > 0
		results = append(results, vr)
	}
	return results, nil
}
