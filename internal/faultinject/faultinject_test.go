package faultinject

import (
	"strings"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/queue"
)

// TestAllMutantsDetected is the harness's acceptance criterion: every
// injected specification fault must be rejected by some proof obligation
// (or the Exec audit), with a non-empty counterexample, and by the
// obligation the catalog predicts. Zero survivors.
func TestAllMutantsDetected(t *testing.T) {
	cfg := queue.Config{N: 1, Vals: 2}
	muts := Catalog(cfg)
	if len(muts) < 8 {
		t.Fatalf("catalog has %d mutants, want >= 8", len(muts))
	}
	results, err := Run(cfg, muts, engine.Budget{MaxStates: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(muts) {
		t.Fatalf("got %d results for %d mutants", len(results), len(muts))
	}
	for i, r := range results {
		mu := muts[i]
		if !r.Detected {
			t.Errorf("mutant %s SURVIVED (%s)", r.Mutation, mu.Description)
			continue
		}
		if mu.WantFail != "" && !strings.Contains(r.FailedHypothesis, mu.WantFail) {
			t.Errorf("mutant %s detected by %q, want an obligation containing %q",
				r.Mutation, r.FailedHypothesis, mu.WantFail)
		}
		if r.Detail == "" {
			t.Errorf("mutant %s detected without a counterexample", r.Mutation)
		}
		t.Logf("mutant %-24s killed by %s", r.Mutation, r.FailedHypothesis)
	}
}

// TestMutantsAreIsolated checks that Run mutates fresh theorem copies: the
// shared configuration must still produce a valid baseline afterwards.
func TestMutantsAreIsolated(t *testing.T) {
	cfg := queue.Config{N: 1, Vals: 2}
	th := cfg.Fig9Theorem()
	muts := Catalog(cfg)
	for _, mu := range muts {
		fresh := cfg.Fig9Theorem()
		if err := mu.Apply(fresh); err != nil {
			t.Fatalf("apply %s: %v", mu.Name, err)
		}
	}
	rep, err := th.CheckWith(engine.Budget{MaxStates: 5_000_000}.Meter())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != engine.Holds {
		t.Fatalf("baseline theorem no longer valid after applying mutations to copies:\n%s", rep)
	}
}
