// Package faultinject is a spec mutation-testing harness for the checking
// engine. Each Mutation plants a single, deliberate fault in the Figure 9
// Composition Theorem instance (drop an initial-state conjunct, corrupt an
// action, delete a fairness condition, weaken the interleaving assumption,
// truncate the refinement mapping, or truncate an executable successor
// generator) and records which proof obligation catches it. A mutant that
// no hypothesis rejects — a survivor — is evidence of a hole in the
// checker, exactly as a surviving mutant in mutation testing is evidence of
// a hole in a test suite.
package faultinject

import (
	"errors"
	"fmt"

	"opentla/internal/ag"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/queue"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// Kind classifies what part of the specification a mutation corrupts.
type Kind string

// The mutation kinds of the catalog.
const (
	KindInit         Kind = "init"         // weaken an initial predicate
	KindAction       Kind = "action"       // corrupt an action definition
	KindFairness     Kind = "fairness"     // delete a WF/SF condition
	KindInterleaving Kind = "interleaving" // weaken the Disjoint assumption G
	KindMapping      Kind = "mapping"      // truncate the refinement mapping
	KindEnv          Kind = "env"          // restrict a pair's assumption
	KindExec         Kind = "exec"         // truncate a successor generator
)

// Mutation is one injected specification fault.
type Mutation struct {
	Name        string
	Kind        Kind
	Description string
	// WantFail is a substring the detecting obligation's name must contain
	// (e.g. "H2a", "H1[", "AuditExecs"); empty accepts any detector.
	WantFail string
	// Apply plants the fault in a freshly built theorem instance.
	Apply func(th *ag.Theorem) error
	// Detect overrides the default detection (a full theorem check). Used
	// for generator faults, which are invisible to the theorem checker —
	// they truncate the graphs it explores — and are caught by the
	// Exec-completeness audit instead.
	Detect func(th *ag.Theorem, b engine.Budget) (*Result, error)
}

// Result records whether and how one mutant was rejected.
type Result struct {
	Mutation string
	Detected bool
	// FailedHypothesis names the obligation that rejected the mutant.
	FailedHypothesis string
	// Detail carries the rejecting counterexample or divergence report.
	Detail string
}

// Run applies each mutation to its own copy of the Figure 9 theorem at the
// given configuration and reports detection results in catalog order. It
// first verifies that the unmutated theorem is valid — detection of faults
// is meaningless against a baseline that already fails. Each mutant check
// draws a fresh meter from the budget.
func Run(cfg queue.Config, muts []Mutation, b engine.Budget) ([]Result, error) {
	base, err := cfg.Fig9Theorem().CheckWith(b.Meter())
	if err != nil {
		return nil, fmt.Errorf("faultinject baseline: %w", err)
	}
	if base.Verdict != engine.Holds {
		return nil, fmt.Errorf("faultinject baseline is not valid (verdict %s); mutation results would be meaningless:\n%s",
			base.Verdict, base)
	}
	results := make([]Result, 0, len(muts))
	for _, mu := range muts {
		th := cfg.Fig9Theorem()
		if err := mu.Apply(th); err != nil {
			return nil, fmt.Errorf("mutant %s: apply: %w", mu.Name, err)
		}
		var res *Result
		if mu.Detect != nil {
			res, err = mu.Detect(th, b)
			if err != nil {
				return nil, fmt.Errorf("mutant %s: detect: %w", mu.Name, err)
			}
		} else {
			rep, err := th.CheckWith(b.Meter())
			if err != nil {
				return nil, fmt.Errorf("mutant %s: check: %w", mu.Name, err)
			}
			res = &Result{Detected: rep.Verdict == engine.Violated}
			for _, h := range rep.Hypotheses {
				if !h.Holds {
					res.FailedHypothesis = h.Name
					res.Detail = h.Detail
					break
				}
			}
			if rep.Verdict == engine.Unknown {
				res.Detail = "check aborted: " + rep.Unknown
			}
		}
		res.Mutation = mu.Name
		results = append(results, *res)
	}
	return results, nil
}

// pairByName finds a theorem pair, or errors.
func pairByName(th *ag.Theorem, name string) (*ag.Pair, error) {
	for i := range th.Pairs {
		if th.Pairs[i].Name == name {
			return &th.Pairs[i], nil
		}
	}
	return nil, fmt.Errorf("theorem %s has no pair %q", th.Name, name)
}

// dropLastConjunct removes the last conjunct of a conjunction, weakening
// the predicate; a non-conjunction is returned unchanged.
func dropLastConjunct(e form.Expr) (form.Expr, error) {
	and, ok := e.(form.AndE)
	if !ok || len(and.Xs) < 2 {
		return nil, fmt.Errorf("expected a conjunction with >= 2 conjuncts, got %s", e)
	}
	return form.And(and.Xs[:len(and.Xs)-1]...), nil
}

// Catalog returns the standard mutant set over the Figure 9 theorem at the
// given configuration. Every mutant must be detected — see the package
// test, which asserts zero survivors.
func Catalog(cfg queue.Config) []Mutation {
	n := int64(cfg.N)
	return []Mutation{
		{
			Name: "init-drop-q1-empty",
			Kind: KindInit,
			Description: "drop the q1 = << >> conjunct of QM1's initial predicate: " +
				"the first queue may start non-empty, so the abstract queue starts non-empty",
			WantFail: "H2a",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "Q1")
				if err != nil {
					return err
				}
				p.Sys.Init, err = dropLastConjunct(p.Sys.Init)
				return err
			},
		},
		{
			Name: "init-drop-concl-env",
			Kind: KindInit,
			Description: "delete the conclusion environment's initial predicate CInit(i): " +
				"the composed system may start mid-handshake, violating each pair's assumption",
			WantFail: "H1[",
			Apply: func(th *ag.Theorem) error {
				th.Concl.Env.Init = nil
				return nil
			},
		},
		{
			Name: "enq-wrong-value",
			Kind: KindAction,
			Description: "QM1's Enq appends the constant 0 instead of the value on i: " +
				"the abstract queue's Enq step no longer matches",
			WantFail: "H2a",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "Q1")
				if err != nil {
					return err
				}
				q := form.Var("q1")
				def := form.And(
					form.Lt(form.Len(q), form.IntC(n)),
					handshake.AckAction(queue.In),
					form.Eq(form.PrimedVar("q1"), form.AppendTo(q, form.IntC(0))),
					form.Unchanged(queue.Mid.Vars()...),
				)
				exec := func(s *state.State) []map[string]value.Value {
					qv := s.MustGet("q1")
					sig, _ := s.MustGet(queue.In.Sig()).AsInt()
					ack, _ := s.MustGet(queue.In.Ack()).AsInt()
					if sig == ack || int64(qv.Len()) >= n {
						return nil
					}
					nq, _ := qv.Append(value.Int(0))
					return []map[string]value.Value{{
						queue.In.Ack(): value.Int(1 - ack),
						"q1":           nq,
					}}
				}
				p.Sys.Actions[0] = spec.Action{Name: "Enq", Def: def, Exec: exec}
				return nil
			},
		},
		{
			Name: "deq-forgets-pop",
			Kind: KindAction,
			Description: "QM2's Deq sends the head of q2 but leaves q2 unchanged: " +
				"the abstract queue's contents stop tracking the output",
			WantFail: "H2a",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "Q2")
				if err != nil {
					return err
				}
				q := form.Var("q2")
				def := form.And(
					form.Gt(form.Len(q), form.IntC(0)),
					handshake.Send(form.Head(q), queue.Out),
					form.Eq(form.PrimedVar("q2"), q),
					form.Unchanged(queue.Mid.Vars()...),
				)
				exec := func(s *state.State) []map[string]value.Value {
					qv := s.MustGet("q2")
					sig, _ := s.MustGet(queue.Out.Sig()).AsInt()
					ack, _ := s.MustGet(queue.Out.Ack()).AsInt()
					if sig != ack || qv.Len() == 0 {
						return nil
					}
					head, _ := qv.Head()
					return []map[string]value.Value{{
						queue.Out.Val(): head,
						queue.Out.Sig(): value.Int(1 - sig),
					}}
				}
				p.Sys.Actions[1] = spec.Action{Name: "Deq", Def: def, Exec: exec}
				return nil
			},
		},
		{
			Name: "fairness-drop-qm1",
			Kind: KindFairness,
			Description: "delete QM1's WF(Enq \\/ Deq): a value may sit in the first " +
				"queue forever, starving the abstract queue's own fairness",
			WantFail: "H2b",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "Q1")
				if err != nil {
					return err
				}
				p.Sys.Fairness = nil
				return nil
			},
		},
		{
			Name: "fairness-drop-qm2",
			Kind: KindFairness,
			Description: "delete QM2's WF(Enq \\/ Deq): a value may sit in the second " +
				"queue forever",
			WantFail: "H2b",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "Q2")
				if err != nil {
					return err
				}
				p.Sys.Fairness = nil
				return nil
			},
		},
		{
			Name: "disjoint-drop-first-pair",
			Kind: KindInterleaving,
			Description: "drop the first pairwise constraint of the interleaving " +
				"assumption G: the environment and the first queue may step " +
				"simultaneously, which the second queue's assumption (a pure " +
				"interleaving spec) already rejects",
			WantFail: "H1[Q2]",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "G")
				if err != nil {
					return err
				}
				if len(p.Constraints) < 2 {
					return fmt.Errorf("pair G has %d constraints, expected >= 2", len(p.Constraints))
				}
				p.Constraints = p.Constraints[1:]
				return nil
			},
		},
		{
			Name: "mapping-truncate",
			Kind: KindMapping,
			Description: "truncate the refinement mapping to q-bar = q1, forgetting " +
				"the second queue and the value in flight on z",
			WantFail: "H2a",
			Apply: func(th *ag.Theorem) error {
				th.Concl.Mapping = map[string]form.Expr{"q": form.Var("q1")}
				return nil
			},
		},
		{
			Name: "env-restrict-q1-put",
			Kind: KindEnv,
			Description: "restrict pair Q1's assumption so its Put only ever sends 0: " +
				"the composed environment's arbitrary sends are no longer covered",
			WantFail: "H1[",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "Q1")
				if err != nil {
					return err
				}
				put := form.And(
					handshake.Send(form.IntC(0), queue.In),
					form.Unchanged(queue.Mid.Vars()...),
				)
				p.Env.Actions[0] = spec.Action{Name: "Put", Def: put}
				return nil
			},
		},
		{
			Name: "exec-incomplete-deq",
			Kind: KindExec,
			Description: "QM1's Deq generator returns no successors while its definition " +
				"still permits them: the state graph is silently truncated and every " +
				"theorem check over it passes vacuously — only the Exec audit catches this",
			WantFail: "AuditExecs",
			Apply: func(th *ag.Theorem) error {
				p, err := pairByName(th, "Q1")
				if err != nil {
					return err
				}
				p.Sys.Actions[1].Exec = func(s *state.State) []map[string]value.Value {
					return nil
				}
				return nil
			},
			Detect: auditDetect,
		},
	}
}

// auditDetect builds the theorem's full left-hand-side system and runs the
// Exec-completeness audit over its graph. This is the detector for
// generator faults: they shrink the graphs the theorem checker explores,
// so every hypothesis holds vacuously and only a cross-check of Exec
// against Def exposes the hole.
func auditDetect(th *ag.Theorem, b engine.Budget) (*Result, error) {
	m := b.Meter()
	var comps []*spec.Component
	if th.Concl.Env != nil {
		comps = append(comps, th.Concl.Env)
	}
	var cons []ts.StepConstraint
	for _, p := range th.Pairs {
		if p.Sys != nil {
			comps = append(comps, p.Sys)
		}
		cons = append(cons, p.Constraints...)
	}
	sys := &ts.System{
		Name:        th.Name + "/audit",
		Components:  comps,
		Constraints: cons,
		Domains:     th.Domains,
		MaxStates:   th.MaxStates,
	}
	g, err := sys.BuildWith(m)
	if err != nil {
		return nil, err
	}
	if err := g.AuditExecs(); err != nil {
		var div *ts.ExecDivergence
		if errors.As(err, &div) {
			return &Result{
				Detected:         true,
				FailedHypothesis: "AuditExecs",
				Detail:           div.Error(),
			}, nil
		}
		return nil, err
	}
	return &Result{Detected: false}, nil
}
