package faultinject

import (
	"fmt"

	"opentla/internal/check"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/reduce"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// ReduceMutation is one injected reduction-soundness fault. Unlike the spec
// mutations of Catalog, which corrupt the Figure 9 theorem instance, a
// reduction mutant flips exactly one sabotage seam of internal/reduce
// (see reduce.Sabotage) and pairs it with a miniature system whose safety
// verdict that seam demonstrably flips: the probe formula decides
// differently on the sabotaged reduced graph than on the full graph. The
// reduced-vs-full cross-check is the detector; a surviving mutant means
// that cross-check could miss a reduction bug of the same shape.
type ReduceMutation struct {
	Name        string
	Description string
	// Sabotage is the single seam this mutant flips.
	Sabotage reduce.Sabotage
	// System builds a fresh instance of the miniature system tailored to
	// expose the seam.
	System func() *ts.System
	// Probe is the safety property whose verdict the sabotage flips. It is
	// invariant under Symmetry (when set), so full, soundly-reduced, and
	// sabotaged graphs are all legitimately comparable on it.
	Probe form.Formula
	// Options, Symmetry, and Visible configure the (sound) reduction the
	// seam corrupts.
	Options  reduce.Options
	Symmetry *reduce.Symmetry
	Visible  []string
}

func (mu *ReduceMutation) config(sab *reduce.Sabotage) *reduce.Config {
	return &reduce.Config{
		Options:  mu.Options,
		Symmetry: mu.Symmetry,
		Visible:  mu.Visible,
		Sabotage: sab,
	}
}

// RunReduce checks every reduction mutant: first that the soundly reduced
// graph agrees with the full graph on the probe (the baseline, without
// which detection would be meaningless), then that the sabotaged reduced
// graph disagrees. Detected means the cross-check caught the seam.
func RunReduce(muts []ReduceMutation, b engine.Budget) ([]Result, error) {
	results := make([]Result, 0, len(muts))
	for _, mu := range muts {
		verdict := func(rd *reduce.Config) (*check.SafetyResult, int, error) {
			sys := mu.System()
			sys.Reduce = rd
			g, err := sys.BuildWith(b.Meter())
			if err != nil {
				return nil, 0, fmt.Errorf("build (reduce=%v): %w", rd, err)
			}
			r, err := check.Safety(g, mu.Probe)
			if err != nil {
				return nil, 0, fmt.Errorf("check (reduce=%v): %w", rd, err)
			}
			return r, g.NumStates(), nil
		}
		full, nFull, err := verdict(nil)
		if err != nil {
			return nil, fmt.Errorf("mutant %s: full: %w", mu.Name, err)
		}
		sound, nSound, err := verdict(mu.config(nil))
		if err != nil {
			return nil, fmt.Errorf("mutant %s: sound: %w", mu.Name, err)
		}
		if sound.Holds != full.Holds {
			return nil, fmt.Errorf("mutant %s: baseline is broken: sound reduction holds=%v, full holds=%v; mutation results would be meaningless",
				mu.Name, sound.Holds, full.Holds)
		}
		sab := mu.Sabotage
		mutated, nMut, err := verdict(mu.config(&sab))
		if err != nil {
			return nil, fmt.Errorf("mutant %s: sabotaged: %w", mu.Name, err)
		}
		res := Result{
			Mutation: mu.Name,
			Detected: mutated.Holds != full.Holds,
		}
		if res.Detected {
			res.FailedHypothesis = "ReducedVsFull"
			res.Detail = fmt.Sprintf("full holds=%v (%d states), sound holds=%v (%d states), sabotaged [%s] holds=%v (%d states)",
				full.Holds, nFull, sound.Holds, nSound, sab.String(), mutated.Holds, nMut)
		}
		results = append(results, res)
	}
	return results, nil
}

// vals01 is the two-element data orbit the symmetry mutants permute.
func vals01() []value.Value { return value.Ints(0, 1) }

// tuplesUpTo enumerates all tuples over vals of length at most 2, the
// domain of the sequence variables in the symmetry mutants.
func tuplesUpTo2(vals []value.Value) []value.Value {
	dom := []value.Value{value.Tuple()}
	for _, a := range vals {
		dom = append(dom, value.Tuple(a))
	}
	for _, a := range vals {
		for _, b := range vals {
			dom = append(dom, value.Tuple(a, b))
		}
	}
	return dom
}

// oneShot is a component owning a single 0/1 variable with one action that
// moves it from 0 to 1, the minimal unit of the POR mutants.
func oneShot(name, v string) *spec.Component {
	return &spec.Component{
		Name:    name,
		Outputs: []string{v},
		Init:    form.Eq(form.Var(v), form.IntC(0)),
		Actions: []spec.Action{{
			Name: "Fire",
			Def: form.And(
				form.Eq(form.Var(v), form.IntC(0)),
				form.Eq(form.PrimedVar(v), form.IntC(1)),
			),
		}},
	}
}

func bit01() []value.Value { return value.Ints(0, 1) }

// disjointXY imposes interleaving on the two named single-variable owners,
// the Disjoint shape the POR planner derives independence from.
func disjointXY(x, y string) []ts.StepConstraint {
	var out []ts.StepConstraint
	for i, sq := range form.DisjointSteps([]string{x}, []string{y}) {
		out = append(out, ts.StepConstraint{Name: fmt.Sprintf("disjoint-%d", i), Action: sq})
	}
	return out
}

// ReduceCatalog returns one mutant per sabotage seam of reduce.Sabotage.
// Every mutant must be detected — see the package test, which asserts zero
// survivors.
func ReduceCatalog() []ReduceMutation {
	tupleC := func(xs ...int64) form.Expr {
		vs := make([]value.Value, len(xs))
		for i, x := range xs {
			vs[i] = value.Int(x)
		}
		return form.Const(value.Tuple(vs...))
	}
	return []ReduceMutation{
		{
			Name: "sym-collapse-values",
			Description: "canonicalization maps every orbit value to the first one, merging " +
				"inequivalent states: the appender's two-element sequences all collapse to " +
				"<<0,0>>, so a probe forbidding the mixed sequences holds on the sabotaged " +
				"graph while the full graph reaches <<0,1>>",
			Sabotage: reduce.Sabotage{CollapseValues: true},
			System: func() *ts.System {
				appender := &spec.Component{
					Name:    "appender",
					Outputs: []string{"t"},
					Init:    form.Eq(form.Var("t"), form.Const(value.Tuple())),
					Actions: []spec.Action{{
						Name: "Append",
						Def: form.And(
							form.Lt(form.Len(form.Var("t")), form.IntC(2)),
							form.Exists("$v", vals01(),
								form.Eq(form.PrimedVar("t"), form.AppendTo(form.Var("t"), form.Var("$v")))),
						),
					}},
				}
				return &ts.System{
					Name:       "reduce-mutant/sym-collapse",
					Components: []*spec.Component{appender},
					Domains:    map[string][]value.Value{"t": tuplesUpTo2(vals01())},
				}
			},
			Probe: form.AlwaysPred(form.And(
				form.Not(form.Eq(form.Var("t"), tupleC(0, 1))),
				form.Not(form.Eq(form.Var("t"), tupleC(1, 0))),
			)),
			Options:  reduce.Options{Sym: true},
			Symmetry: &reduce.Symmetry{Values: vals01(), Vars: []string{"t"}},
		},
		{
			Name: "sym-skip-tuple-values",
			Description: "canonicalization relabels scalar variables but skips values inside " +
				"tuples, manufacturing states outside the input's orbit: the setter keeps " +
				"t = <<x>> in every real state, but the sabotaged canonical form of " +
				"(x=1, t=<<1>>) is the unreachable (x=0, t=<<1>>)",
			Sabotage: reduce.Sabotage{SkipTupleValues: true},
			System: func() *ts.System {
				setter := &spec.Component{
					Name:    "setter",
					Outputs: []string{"x", "t"},
					Init:    form.Eq(form.Var("t"), form.TupleOf(form.Var("x"))),
					Actions: []spec.Action{{
						Name: "Set",
						Def: form.Exists("$v", vals01(), form.And(
							form.Eq(form.PrimedVar("x"), form.Var("$v")),
							form.Eq(form.PrimedVar("t"), form.TupleOf(form.Var("$v"))),
						)),
					}},
				}
				return &ts.System{
					Name:       "reduce-mutant/sym-skip-tuple",
					Components: []*spec.Component{setter},
					Domains: map[string][]value.Value{
						"x": vals01(),
						"t": {value.Tuple(value.Int(0)), value.Tuple(value.Int(1))},
					},
				}
			},
			Probe:    form.AlwaysPred(form.Eq(form.Var("t"), form.TupleOf(form.Var("x")))),
			Options:  reduce.Options{Sym: true},
			Symmetry: &reduce.Symmetry{Values: vals01(), Vars: []string{"t", "x"}},
		},
		{
			Name: "por-skip-c3",
			Description: "ample expansion ignores the cycle proviso (C3): the toggler's " +
				"x 0<->1 cycle is explored as a closed pair of ample steps that postpones " +
				"the one-shot component forever, so y = 1 is never reached on the " +
				"sabotaged graph while the full graph reaches it",
			Sabotage: reduce.Sabotage{SkipC3: true},
			System: func() *ts.System {
				toggler := &spec.Component{
					Name:    "toggler",
					Outputs: []string{"x"},
					Init:    form.Eq(form.Var("x"), form.IntC(0)),
					Actions: []spec.Action{{
						Name: "Toggle",
						Def:  form.Eq(form.PrimedVar("x"), form.Sub(form.IntC(1), form.Var("x"))),
					}},
				}
				return &ts.System{
					Name:        "reduce-mutant/por-skip-c3",
					Components:  []*spec.Component{toggler, oneShot("shot", "y")},
					Constraints: disjointXY("x", "y"),
					Domains:     map[string][]value.Value{"x": bit01(), "y": bit01()},
				}
			},
			Probe:   form.AlwaysPred(form.Eq(form.Var("y"), form.IntC(0))),
			Options: reduce.Options{POR: true},
			Visible: []string{"y"},
		},
		{
			Name: "por-ignore-visibility",
			Description: "ample eligibility drops the C2 visibility check: both one-shot " +
				"components write probed variables, so sound POR disables itself and " +
				"explores all four interleavings, but the sabotaged build commits to one " +
				"order and never generates the state (x=0, y=1) the probe forbids",
			Sabotage: reduce.Sabotage{IgnoreVisibility: true},
			System: func() *ts.System {
				return &ts.System{
					Name:        "reduce-mutant/por-ignore-visibility",
					Components:  []*spec.Component{oneShot("left", "x"), oneShot("right", "y")},
					Constraints: disjointXY("x", "y"),
					Domains:     map[string][]value.Value{"x": bit01(), "y": bit01()},
				}
			},
			Probe: form.AlwaysPred(form.Not(form.And(
				form.Eq(form.Var("x"), form.IntC(0)),
				form.Eq(form.Var("y"), form.IntC(1)),
			))),
			Options: reduce.Options{POR: true},
			Visible: []string{"x", "y"},
		},
		{
			Name: "por-ignore-dependence",
			Description: "ample eligibility drops the static independence check (C1): the " +
				"writer's x 0->1 step disables the reader's guard x = 0, so the sabotaged " +
				"ample step at the initial state makes y = 1 unreachable while the full " +
				"graph reaches it by firing the reader first",
			Sabotage: reduce.Sabotage{IgnoreDependence: true},
			System: func() *ts.System {
				reader := &spec.Component{
					Name:    "reader",
					Inputs:  []string{"x"},
					Outputs: []string{"y"},
					Init:    form.Eq(form.Var("y"), form.IntC(0)),
					Actions: []spec.Action{{
						Name: "Probe",
						Def: form.And(
							form.Eq(form.Var("x"), form.IntC(0)),
							form.Eq(form.Var("y"), form.IntC(0)),
							form.Eq(form.PrimedVar("y"), form.IntC(1)),
						),
					}},
				}
				return &ts.System{
					Name:        "reduce-mutant/por-ignore-dependence",
					Components:  []*spec.Component{oneShot("writer", "x"), reader},
					Constraints: disjointXY("x", "y"),
					Domains:     map[string][]value.Value{"x": bit01(), "y": bit01()},
				}
			},
			Probe:   form.AlwaysPred(form.Eq(form.Var("y"), form.IntC(0))),
			Options: reduce.Options{POR: true},
			Visible: []string{"y"},
		},
	}
}
