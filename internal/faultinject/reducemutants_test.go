package faultinject

import (
	"testing"

	"opentla/internal/engine"
	"opentla/internal/reduce"
)

// TestAllReduceMutantsDetected is the reduction harness's acceptance
// criterion: every sabotage seam of reduce.Sabotage, flipped alone, must
// change a safety verdict between the full and the sabotaged reduced graph
// of its miniature system. Zero survivors — a surviving seam would mean the
// reduced-vs-full cross-check cannot see that class of reduction bug.
func TestAllReduceMutantsDetected(t *testing.T) {
	muts := ReduceCatalog()
	if len(muts) != 5 {
		t.Fatalf("catalog has %d mutants, want 5 (one per sabotage seam)", len(muts))
	}
	results, err := RunReduce(muts, engine.Budget{MaxStates: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(muts) {
		t.Fatalf("got %d results for %d mutants", len(results), len(muts))
	}
	for i, r := range results {
		if !r.Detected {
			t.Errorf("reduction mutant %s SURVIVED (%s)", r.Mutation, muts[i].Description)
			continue
		}
		if r.Detail == "" {
			t.Errorf("reduction mutant %s detected without detail", r.Mutation)
		}
		t.Logf("mutant %-24s %s", r.Mutation, r.Detail)
	}
}

// TestReduceCatalogCoversEverySeam pins the catalog to the Sabotage struct:
// each seam is flipped by exactly one mutant, alone.
func TestReduceCatalogCoversEverySeam(t *testing.T) {
	want := map[string]bool{
		"collapse-values":   false,
		"skip-tuple-values": false,
		"skip-c3":           false,
		"ignore-visibility": false,
		"ignore-dependence": false,
	}
	for _, mu := range ReduceCatalog() {
		s := mu.Sabotage.String()
		seen, ok := want[s]
		if !ok {
			t.Errorf("mutant %s flips %q, which is not a single known seam", mu.Name, s)
			continue
		}
		if seen {
			t.Errorf("seam %q flipped by more than one mutant", s)
		}
		want[s] = true
	}
	for seam, seen := range want {
		if !seen {
			t.Errorf("no mutant flips seam %q", seam)
		}
	}
}

// TestReduceMutantBaselines re-checks harness validity in isolation: for
// every mutant the UNsabotaged reduction must agree with the full build
// (RunReduce also enforces this, but a broken baseline should read as a
// baseline failure, not a survivor).
func TestReduceMutantBaselines(t *testing.T) {
	for _, mu := range ReduceCatalog() {
		mu := mu
		t.Run(mu.Name, func(t *testing.T) {
			sys := mu.System()
			sys.Reduce = &reduce.Config{Options: mu.Options, Symmetry: mu.Symmetry, Visible: mu.Visible}
			if _, err := sys.Build(); err != nil {
				t.Fatalf("sound reduced build: %v", err)
			}
		})
	}
}
