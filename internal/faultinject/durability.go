package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"opentla/internal/cache"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/iofs"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// KindDurability marks mutations of the cache's durability machinery rather
// than of a specification: the mutant is a bug in how graphs are persisted,
// and the detector is the chaos harness instead of a proof obligation.
const KindDurability Kind = "durability"

// DurabilityMutation plants one deliberate hole in the graph cache's
// durability machinery (see cache.Mutation). Like the spec mutants, each
// must be rejected — here by the chaos harness's recovery invariants — and a
// survivor is evidence of a hole in the harness, not a tolerable weakness.
type DurabilityMutation struct {
	Name        string
	Description string
	Mut         cache.Mutation
}

// DurabilityResult records whether and how one durability mutant was caught.
type DurabilityResult struct {
	Mutation string
	Detected bool
	// Detector names the invariant that rejected the mutant.
	Detector string
	// Detail describes the observed corruption.
	Detail string
}

// DurabilityCatalog returns the standard durability mutant set. Every
// mutant must be detected — see the package test, which asserts zero
// survivors.
func DurabilityCatalog() []DurabilityMutation {
	return []DurabilityMutation{
		{
			Name: "drop-checksum-verification",
			Description: "loads skip the trailing SHA-256 check: a torn or " +
				"bit-flipped entry decodes as a silently wrong graph",
			Mut: cache.MutDropChecksum,
		},
		{
			Name: "skip-atomic-rename",
			Description: "entries are written at their final path instead of " +
				"via temp file + rename: a crash mid-write publishes a torn entry",
			Mut: cache.MutSkipAtomicRename,
		},
		{
			Name: "truncate-checkpoint",
			Description: "only half of every checkpoint reaches disk: the " +
				"checkpoint-saved notice promises a resume that cannot happen",
			Mut: cache.MutTruncateCheckpoint,
		},
	}
}

// durabilityDetector is one invariant of the chaos harness. It runs a
// workload against a cache carrying the mutation and returns a non-empty
// violation description if the invariant broke (the mutant is detected), or
// "" if the mutated cache behaved indistinguishably from a correct one.
type durabilityDetector struct {
	name string
	fn   func(mut cache.Mutation) (string, error)
}

func durabilityDetectors() []durabilityDetector {
	return []durabilityDetector{
		{"crash-sweep", detectCrashSweep},
		{"checkpoint-loadable", detectCheckpointLoadable},
		{"corrupt-entry-rejected", detectCorruptEntryRejected},
	}
}

// RunDurability runs every mutation through the chaos harness's detectors in
// catalog order. It first verifies that the unmutated cache satisfies every
// invariant — detection of faults is meaningless against a baseline that
// already fails.
func RunDurability(muts []DurabilityMutation) ([]DurabilityResult, error) {
	dets := durabilityDetectors()
	for _, d := range dets {
		v, err := d.fn(cache.MutNone)
		if err != nil {
			return nil, fmt.Errorf("durability baseline %s: %w", d.name, err)
		}
		if v != "" {
			return nil, fmt.Errorf("durability baseline violates %s; mutation results would be meaningless: %s", d.name, v)
		}
	}
	results := make([]DurabilityResult, 0, len(muts))
	for _, mu := range muts {
		res := DurabilityResult{Mutation: mu.Name}
		for _, d := range dets {
			v, err := d.fn(mu.Mut)
			if err != nil {
				return nil, fmt.Errorf("mutant %s: detector %s: %w", mu.Name, d.name, err)
			}
			if v != "" {
				res.Detected, res.Detector, res.Detail = true, d.name, v
				break
			}
		}
		results = append(results, res)
	}
	return results, nil
}

func isBudgetError(err error) bool {
	var be *engine.BudgetError
	return errors.As(err, &be)
}

// durabilityWorkload is the system the detectors build: a pair of bounded
// counters, small enough to sweep in milliseconds, wide enough that a
// budget-interrupted build leaves a checkpoint with real structure.
func durabilityWorkload() *ts.System {
	const top = 4
	mk := func(name, v string) *spec.Component {
		inc := form.And(
			form.Lt(form.Var(v), form.IntC(top)),
			form.Eq(form.PrimedVar(v), form.Add(form.Var(v), form.IntC(1))),
		)
		return &spec.Component{
			Name:    name,
			Outputs: []string{v},
			Init:    form.Eq(form.Var(v), form.IntC(0)),
			Actions: []spec.Action{{Name: "Inc", Def: inc}},
		}
	}
	return &ts.System{
		Name:       "durability",
		Components: []*spec.Component{mk("ca", "a"), mk("cb", "b")},
		Domains: map[string][]value.Value{
			"a": value.Ints(0, top),
			"b": value.Ints(0, top),
		},
	}
}

// durabilityReference builds the one-shot reference: the canonical snapshot
// bytes a correct cache must converge to from any crash point.
func durabilityReference() (desc string, raw []byte, err error) {
	dir, err := os.MkdirTemp("", "durability-ref-*")
	if err != nil {
		return "", nil, err
	}
	defer os.RemoveAll(dir)
	c, err := cache.Open(dir)
	if err != nil {
		return "", nil, err
	}
	sys := durabilityWorkload()
	sys.Cache = c
	if _, err := sys.Build(); err != nil {
		return "", nil, err
	}
	desc, ok := sys.CanonicalDesc()
	if !ok {
		return "", nil, errors.New("durability workload not describable")
	}
	raw, err = os.ReadFile(c.EntryPath(desc))
	return desc, raw, err
}

// detectCrashSweep is the harness's main invariant: crash the mutated cache
// at every mutating filesystem operation of a checkpoint-then-resume
// workload, restart (still mutated — the bug ships with the software), and
// require the recovery to reproduce the one-shot snapshot bytes with a clean
// fsck. Fsck always verifies checksums regardless of the mutation, so it is
// the independent auditor here.
func detectCrashSweep(mut cache.Mutation) (string, error) {
	desc, ref, err := durabilityReference()
	if err != nil {
		return "", err
	}
	for at := 1; at <= 64; at++ {
		dir, err := os.MkdirTemp("", "durability-crash-*")
		if err != nil {
			return "", err
		}
		v, crashed, err := crashPoint(dir, mut, at, desc, ref)
		os.RemoveAll(dir)
		if err != nil || v != "" {
			return v, err
		}
		if !crashed {
			return "", nil // past the workload's last write: sweep complete
		}
	}
	return "", errors.New("crash sweep did not terminate")
}

// crashPoint runs one crash-at-op-at iteration: the two-stage workload on a
// Faulty FS, then recovery on the real one. It returns the first violated
// invariant, or "" and whether the planted crash fired.
func crashPoint(dir string, mut cache.Mutation, at int, desc string, ref []byte) (string, bool, error) {
	f := iofs.NewFaulty(iofs.OS{}, map[int]iofs.FaultMode{at: iofs.FaultCrash})
	c, err := cache.OpenWith(dir, cache.Options{FS: f, Retries: -1})
	if err != nil {
		return "", false, err
	}
	c.Mutate(mut)
	a := durabilityWorkload()
	a.Cache = c
	if _, err := a.BuildWith(engine.Budget{MaxStates: 8}.Meter()); !isBudgetError(err) {
		return "", false, fmt.Errorf("stage A: want budget exhaustion, got %v", err)
	}
	if !f.Crashed() {
		b := durabilityWorkload()
		b.Cache = c
		b.Resume = true
		if _, err := b.Build(); err != nil && !f.Crashed() {
			return "", false, fmt.Errorf("stage B: %v", err)
		}
	}
	crashed := f.Crashed()

	// Restart: the same (mutated) cache implementation over the real disk.
	rc, err := cache.OpenWith(dir, cache.Options{Retries: -1})
	if err != nil {
		return "", crashed, err
	}
	rc.Mutate(mut)
	r := durabilityWorkload()
	r.Cache = rc
	r.Resume = true
	if _, err := r.Build(); err != nil {
		return fmt.Sprintf("crash at op %d: recovery build failed: %v", at, err), crashed, nil
	}
	raw, err := os.ReadFile(rc.EntryPath(desc))
	if err != nil {
		return fmt.Sprintf("crash at op %d: recovered snapshot unreadable: %v", at, err), crashed, nil
	}
	if !bytes.Equal(raw, ref) {
		return fmt.Sprintf("crash at op %d: recovered snapshot differs from the one-shot reference", at), crashed, nil
	}
	res, err := rc.Fsck(false)
	if err != nil {
		return "", crashed, err
	}
	if len(res.Findings) > 0 {
		f0 := res.Findings[0]
		return fmt.Sprintf("crash at op %d: fsck after recovery: %s: %s", at, f0.Name, f0.Problem), crashed, nil
	}
	return "", crashed, nil
}

// detectCheckpointLoadable pins the promise the checkpoint-saved notice
// makes: a checkpoint the cache reports saved must be loadable and valid
// when audited by an unmutated reader — otherwise -resume silently degrades
// to the cold build the user interrupted a run to avoid.
func detectCheckpointLoadable(mut cache.Mutation) (string, error) {
	dir, err := os.MkdirTemp("", "durability-ckpt-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	c, err := cache.OpenWith(dir, cache.Options{Retries: -1})
	if err != nil {
		return "", err
	}
	c.Mutate(mut)
	sys := durabilityWorkload()
	sys.Cache = c
	if _, err := sys.BuildWith(engine.Budget{MaxStates: 8}.Meter()); !isBudgetError(err) {
		return "", fmt.Errorf("want budget exhaustion, got %v", err)
	}
	desc, _ := sys.CanonicalDesc()
	if _, err := os.Stat(c.CheckpointPath(desc)); err != nil {
		return "", fmt.Errorf("no checkpoint written: %w", err)
	}
	auditor, err := cache.OpenWith(dir, cache.Options{Retries: -1, KeepOrphans: true})
	if err != nil {
		return "", err
	}
	snap, err := auditor.LoadCheckpoint(desc)
	if err != nil {
		return fmt.Sprintf("saved checkpoint is unreadable: %v", err), nil
	}
	if snap == nil {
		return "saved checkpoint loads as a miss", nil
	}
	if !snap.Valid(false) {
		return "saved checkpoint fails structural validation", nil
	}
	return "", nil
}

// detectCorruptEntryRejected flips one bit of a stored entry's trailing
// checksum and requires the (mutated) cache to reject the entry on load: a
// single flipped bit anywhere in the file must never be served as a graph.
func detectCorruptEntryRejected(mut cache.Mutation) (string, error) {
	dir, err := os.MkdirTemp("", "durability-flip-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	c, err := cache.OpenWith(dir, cache.Options{Retries: -1})
	if err != nil {
		return "", err
	}
	c.Mutate(mut)
	sys := durabilityWorkload()
	sys.Cache = c
	if _, err := sys.Build(); err != nil {
		return "", err
	}
	desc, _ := sys.CanonicalDesc()
	path := c.EntryPath(desc)
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	snap, err := c.Load(desc)
	if snap != nil && err == nil {
		return "cache served an entry whose trailing checksum does not match its contents", nil
	}
	return "", nil
}
