package faultinject

import (
	"fmt"

	"opentla/internal/absint"
	"opentla/internal/ag"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/models"
	"opentla/internal/queue"
)

// KindSemantic marks mutations aimed at the abstract-interpretation pass
// (specvet v2, SV1xx): the fault is invisible to the declaration-driven
// checks and only the inferred facts — domains, write-sets, guard
// satisfiability — can catch it.
const KindSemantic Kind = "semantic"

// semVetMutations returns the semantic-pass mutant set, appended to
// VetCatalog. Each one keeps the declarations perfectly well-formed; what
// it breaks is the relationship between the declarations and what the
// actions actually do.
func semVetMutations(cfg queue.Config) []VetMutation {
	q1Pair := func(th *ag.Theorem) (*ag.Pair, error) { return pairByName(th, "Q1") }
	q2Pair := func(th *ag.Theorem) (*ag.Pair, error) { return pairByName(th, "Q2") }
	return []VetMutation{
		{
			Name: "sem-wrong-ownership",
			Kind: KindSemantic,
			Description: "QM1's Deq also acknowledges on z — a write into QM2's " +
				"output z.ack that refutes the declared Disjoint coverage of G",
			WantCodes: []string{"SV002", "SV111"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Actions[1].Def = form.And(p.Sys.Actions[1].Def,
					form.Eq(form.PrimedVar(queue.Mid.Ack()), form.IntC(0)))
				return nil
			},
		},
		{
			Name: "sem-infinite-domain",
			Kind: KindSemantic,
			Description: "QM1 gains an unguarded Leak action incrementing i.ack " +
				"while the declared i.ack domain is dropped: the reachable value " +
				"set is no longer provably finite and no state-space bound exists",
			WantCodes: []string{"SV100"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				ack := queue.In.Ack()
				p.Sys.Actions = append(p.Sys.Actions, p.Sys.Actions[0])
				leak := &p.Sys.Actions[len(p.Sys.Actions)-1]
				leak.Name = "Leak"
				leak.Def = form.Eq(form.PrimedVar(ack), form.Add(form.Var(ack), form.IntC(1)))
				leak.Exec = nil
				delete(th.Domains, ack)
				return nil
			},
		},
		{
			Name: "sem-hidden-interface",
			Kind: KindSemantic,
			Description: "QM2 declares QM1's internal queue variable q1 as an " +
				"input: a composition coupling through a variable the canonical " +
				"form hides under ∃x",
			WantCodes: []string{"SV120"},
			Apply: func(th *ag.Theorem) error {
				p, err := q2Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Inputs = append(p.Sys.Inputs, "q1")
				return nil
			},
		},
		{
			Name: "sem-dangling-input",
			Kind: KindSemantic,
			Description: "QE1 hides its z.ack output as an internal variable: " +
				"QM1 still reads the wire, but its assumption no longer drives it",
			WantCodes: []string{"SV121"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				ack := queue.Mid.Ack()
				var kept []string
				for _, v := range p.Env.Outputs {
					if v != ack {
						kept = append(kept, v)
					}
				}
				if len(kept) == len(p.Env.Outputs) {
					return fmt.Errorf("QE1 does not output %s", ack)
				}
				p.Env.Outputs = kept
				p.Env.Internals = append(p.Env.Internals, ack)
				return nil
			},
		},
		{
			Name: "sem-never-enabled",
			Kind: KindSemantic,
			Description: "QM1's Deq additionally requires len(q1) > 5, satisfiable " +
				"in isolation but impossible under the capacity-N domain: the " +
				"action is semantically dead",
			WantCodes: []string{"SV130"},
			Apply: func(th *ag.Theorem) error {
				p, err := q1Pair(th)
				if err != nil {
					return err
				}
				p.Sys.Actions[1].Def = form.And(p.Sys.Actions[1].Def,
					form.Gt(form.Len(form.Var("q1")), form.IntC(5)))
				p.Sys.Actions[1].Exec = nil
				return nil
			},
		},
	}
}

// BoundMutation is one injected bound-soundness fault: it flips one
// absint.Sabotage seam so the analyzer's state-space bound under-counts.
// The detector is the registry cross-check — the bound must dominate the
// number of states exploration actually finds.
type BoundMutation struct {
	Name        string
	Description string
	Sabotage    absint.Sabotage
}

// BoundCatalog returns the bound-soundness mutants, exercised against the
// handshake model (small enough to explore exhaustively, and its sound
// bound of 8 is exact, so any under-count is visible).
func BoundCatalog() []BoundMutation {
	return []BoundMutation{
		{
			Name: "sem-bound-drop-var",
			Description: "the cardinality product silently skips the c.sig wire, " +
				"as if the variable had been forgotten by the analysis universe",
			Sabotage: absint.Sabotage{DropVar: "c.sig"},
		},
		{
			Name: "sem-bound-halve",
			Description: "every per-variable cardinality is halved before the " +
				"product, an off-by-rounding under-approximation",
			Sabotage: absint.Sabotage{HalveCards: true},
		},
	}
}

// RunBound checks every bound mutant: the sound bound must dominate the
// explored state count of the probe model (the baseline), and the
// sabotaged bound must drop below it (the detection). A surviving mutant
// means the bound-vs-explored cross-check could miss an unsound bound of
// the same shape.
func RunBound(muts []BoundMutation, b engine.Budget) ([]Result, error) {
	m, err := models.ByName("handshake")
	if err != nil {
		return nil, err
	}
	var cons []form.Expr
	for _, c := range m.Constraints {
		cons = append(cons, c.Action)
	}
	a := absint.Analyze(m.Components, cons, absint.Options{Declared: m.Domains})
	g, err := m.System().BuildWith(b.Meter())
	if err != nil {
		return nil, fmt.Errorf("building %s: %w", m.Name, err)
	}
	explored := uint64(g.NumStates())
	sound := a.Bound()
	if !sound.Finite || sound.States < explored {
		return nil, fmt.Errorf("baseline is broken: sound bound %s does not dominate %d explored states; mutation results would be meaningless",
			sound, explored)
	}
	results := make([]Result, 0, len(muts))
	for _, mu := range muts {
		sab := a.BoundWith(mu.Sabotage)
		res := Result{
			Mutation: mu.Name,
			Detected: sab.Finite && sab.States < explored,
		}
		if res.Detected {
			res.FailedHypothesis = "BoundVsExplored"
			res.Detail = fmt.Sprintf("sound bound %s, sabotaged bound %s, explored %d states",
				sound, sab, explored)
		}
		results = append(results, res)
	}
	return results, nil
}
