package vet

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
)

func TestFairnessDiagnostics(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(c *spec.Component)
		want   string
		sev    Severity
	}{
		{"canonical-nil-sub", func(c *spec.Component) {}, "", 0},
		{"explicit-owned-sub", func(c *spec.Component) {
			c.Fairness[0].Sub = form.VarTuple("x", "h")
		}, "", 0},
		{"primed-sub", func(c *spec.Component) {
			c.Fairness[0].Sub = form.PrimedVar("x")
		}, "SV030", Error},
		{"undeclared-sub-var", func(c *spec.Component) {
			c.Fairness[0].Sub = form.VarTuple("x", "ghost")
		}, "SV031", Error},
		{"undeclared-action-var", func(c *spec.Component) {
			c.Fairness[0].Action = form.Eq(form.PrimedVar("x"), form.Var("ghost"))
		}, "SV001", Error},
		{"fair-action-writes-input", func(c *spec.Component) {
			c.Fairness[0].Action = form.Eq(form.PrimedVar("d"), form.IntC(1))
		}, "SV032", Error},
		{"no-owned-var-in-sub", func(c *spec.Component) {
			c.Fairness[0].Sub = form.Var("d")
		}, "SV033", Warn},
		{"input-mixed-into-sub", func(c *spec.Component) {
			c.Fairness[0].Sub = form.VarTuple("d", "x", "h")
		}, "SV034", Info},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := clean()
			tc.mutate(c)
			res := Component(c, Options{})
			if tc.want == "" {
				if len(res.Diagnostics) != 0 {
					t.Errorf("unexpected diagnostics:\n%s", res)
				}
				return
			}
			d := diag(t, res, tc.want)
			if d.Severity != tc.sev {
				t.Errorf("%s severity = %v, want %v", tc.want, d.Severity, tc.sev)
			}
			if d.Action != "WF[0]" {
				t.Errorf("%s location = %q, want WF[0]", tc.want, d.Action)
			}
		})
	}
}

func TestStrongFairnessLocation(t *testing.T) {
	c := clean()
	c.Fairness[0].Kind = form.Strong
	c.Fairness[0].Sub = form.PrimedVar("x")
	res := Component(c, Options{})
	if d := diag(t, res, "SV030"); d.Action != "SF[0]" {
		t.Errorf("location = %q, want SF[0]", d.Action)
	}
}
