package vet

import "fmt"

// Mode selects how a checker CLI reacts to analyzer findings.
type Mode string

// The three vet modes of the -vet flag.
const (
	// ModeStrict fails the run (exit 2, UNKNOWN report) on any
	// error-severity diagnostic.
	ModeStrict Mode = "strict"
	// ModeWarn prints warn-and-above diagnostics but never fails the run.
	ModeWarn Mode = "warn"
	// ModeOff skips the analysis entirely.
	ModeOff Mode = "off"
)

// ParseMode parses a -vet flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeStrict, ModeWarn, ModeOff:
		return Mode(s), nil
	}
	return "", fmt.Errorf("invalid vet mode %q (want strict, warn, or off)", s)
}
