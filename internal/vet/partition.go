package vet

import (
	"fmt"

	"opentla/internal/spec"
)

// checkPartition implements SV010: the Inputs/Outputs/Internals lists must
// partition the component's variables (§2.2). A doubly-declared variable
// makes "owned" ambiguous, so everything downstream — interleaving,
// hiding, the Composition Theorem hypotheses — is ill-defined.
// spec.Validate rejects the same defect at construction time with a
// *spec.DuplicateVarError; the diagnostic here reports it through the
// analyzer for components built without going through spec.New.
func checkPartition(res *Result, c *spec.Component) {
	seen := make(map[string]string)
	scan := func(class string, names []string) {
		for _, n := range names {
			if prev, dup := seen[n]; dup {
				msg := fmt.Sprintf("variable %q declared as both %s and %s", n, prev, class)
				if prev == class {
					msg = fmt.Sprintf("variable %q declared twice as %s", n, class)
				}
				res.add(Diagnostic{
					Code: "SV010", Severity: Error, Component: c.Name,
					Message: msg,
					Hint:    fmt.Sprintf("keep exactly one declaration of %q", n),
				})
				continue
			}
			seen[n] = class
		}
	}
	scan("input", c.Inputs)
	scan("output", c.Outputs)
	scan("internal", c.Internals)
}

// checkOwnership implements the composition-level partition checks:
//
//	SV011 — two components both own (output or internal) the same
//	        variable. The paper's composition E₁ ∧ E₂ only makes sense
//	        when the owned sets are pairwise disjoint: otherwise "only the
//	        owner changes it" names two owners.
//	SV003 — a component's action constrains the next-state value of a
//	        variable owned by a different component. Writes to the
//	        component's own inputs are reported as SV002 by the
//	        per-component pass and are not repeated here.
func checkOwnership(res *Result, comps []*spec.Component) {
	owner := make(map[string]string)
	for _, c := range comps {
		for _, v := range c.Owned() {
			if prev, taken := owner[v]; taken {
				res.add(Diagnostic{
					Code: "SV011", Severity: Error, Component: c.Name,
					Message: fmt.Sprintf("variable %q is already owned by component %s", v, prev),
					Hint:    fmt.Sprintf("make %q an input of one of the two components", v),
				})
				continue
			}
			owner[v] = c.Name
		}
	}
	for _, c := range comps {
		inputs := stringSet(c.Inputs)
		owned := stringSet(c.Owned())
		for _, a := range c.Actions {
			for _, v := range sortedKeys(writes(a.Def)) {
				if owned[v] || inputs[v] {
					continue
				}
				if by, ok := owner[v]; ok && by != c.Name {
					res.add(Diagnostic{
						Code: "SV003", Severity: Error, Component: c.Name, Action: a.Name,
						Message: fmt.Sprintf("action constrains %q, which is owned by component %s", v, by),
						Hint:    fmt.Sprintf("declare %q as an input of %s or route the write through %s", v, c.Name, by),
					})
				}
			}
		}
	}
}
