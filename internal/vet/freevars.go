package vet

import (
	"fmt"
	"strings"

	"opentla/internal/absint"
	"opentla/internal/form"
	"opentla/internal/spec"
)

// checkFreeVars implements the free-variable analyses:
//
//	SV001 — Init, an action, or a fairness condition mentions a variable
//	        the component never declared.
//	SV002 — an action constrains the next-state value of an input. Inputs
//	        belong to the environment (§2.2); a component that writes its
//	        own inputs is not in canonical form and the Composition
//	        Theorem's hypotheses cannot be discharged for it.
//	SV004 — Init contains primed variables (it must be a state predicate).
func checkFreeVars(res *Result, c *spec.Component) {
	declared := stringSet(c.Vars())
	inputs := stringSet(c.Inputs)

	if c.Init != nil {
		for _, v := range form.AllVars(c.Init) {
			if !declared[v] {
				res.add(Diagnostic{
					Code: "SV001", Severity: Error, Component: c.Name,
					Message: fmt.Sprintf("Init mentions undeclared variable %q", v),
					Hint:    fmt.Sprintf("declare %q as an input, output, or internal", v),
				})
			}
		}
		if prm := form.PrimedVars(c.Init); len(prm) > 0 {
			res.add(Diagnostic{
				Code: "SV004", Severity: Error, Component: c.Name,
				Message: fmt.Sprintf("Init primes variables %s; an initial predicate must be a state function", strings.Join(prm, ", ")),
				Hint:    "move next-state constraints into an action",
			})
		}
	}

	for _, a := range c.Actions {
		for _, v := range form.AllVars(a.Def) {
			if !declared[v] {
				res.add(Diagnostic{
					Code: "SV001", Severity: Error, Component: c.Name, Action: a.Name,
					Message: fmt.Sprintf("action mentions undeclared variable %q", v),
					Hint:    fmt.Sprintf("declare %q as an input, output, or internal", v),
				})
			}
		}
		for _, v := range sortedKeys(writes(a.Def)) {
			if inputs[v] {
				res.add(Diagnostic{
					Code: "SV002", Severity: Error, Component: c.Name, Action: a.Name,
					Message: fmt.Sprintf("action constrains the next-state value of input %q", v),
					Hint:    fmt.Sprintf("only the environment may change %q; make it an output or drop the constraint", v),
				})
			}
		}
	}
}

// writes returns the variables whose next-state values e genuinely
// constrains, excluding benign stutter conjuncts (f' = f). The analysis is
// shared with the semantic pass: both layers must agree on what counts as
// a write, so vet delegates to absint.Writes.
func writes(e form.Expr) map[string]bool {
	return absint.Writes(e)
}
