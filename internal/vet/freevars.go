package vet

import (
	"fmt"
	"strings"

	"opentla/internal/form"
	"opentla/internal/spec"
)

// checkFreeVars implements the free-variable analyses:
//
//	SV001 — Init, an action, or a fairness condition mentions a variable
//	        the component never declared.
//	SV002 — an action constrains the next-state value of an input. Inputs
//	        belong to the environment (§2.2); a component that writes its
//	        own inputs is not in canonical form and the Composition
//	        Theorem's hypotheses cannot be discharged for it.
//	SV004 — Init contains primed variables (it must be a state predicate).
func checkFreeVars(res *Result, c *spec.Component) {
	declared := stringSet(c.Vars())
	inputs := stringSet(c.Inputs)

	if c.Init != nil {
		for _, v := range form.AllVars(c.Init) {
			if !declared[v] {
				res.add(Diagnostic{
					Code: "SV001", Severity: Error, Component: c.Name,
					Message: fmt.Sprintf("Init mentions undeclared variable %q", v),
					Hint:    fmt.Sprintf("declare %q as an input, output, or internal", v),
				})
			}
		}
		if prm := form.PrimedVars(c.Init); len(prm) > 0 {
			res.add(Diagnostic{
				Code: "SV004", Severity: Error, Component: c.Name,
				Message: fmt.Sprintf("Init primes variables %s; an initial predicate must be a state function", strings.Join(prm, ", ")),
				Hint:    "move next-state constraints into an action",
			})
		}
	}

	for _, a := range c.Actions {
		for _, v := range form.AllVars(a.Def) {
			if !declared[v] {
				res.add(Diagnostic{
					Code: "SV001", Severity: Error, Component: c.Name, Action: a.Name,
					Message: fmt.Sprintf("action mentions undeclared variable %q", v),
					Hint:    fmt.Sprintf("declare %q as an input, output, or internal", v),
				})
			}
		}
		for _, v := range sortedKeys(writes(a.Def)) {
			if inputs[v] {
				res.add(Diagnostic{
					Code: "SV002", Severity: Error, Component: c.Name, Action: a.Name,
					Message: fmt.Sprintf("action constrains the next-state value of input %q", v),
					Hint:    fmt.Sprintf("only the environment may change %q; make it an output or drop the constraint", v),
				})
			}
		}
	}
}

// writes returns the variables whose next-state values e genuinely
// constrains. Benign stuttering conjuncts of the form f' = f — the
// UNCHANGED idiom every interleaving action uses for the variables it
// leaves alone — are not writes: [A]_v would otherwise make every action
// "write" every subscript variable. The analysis descends through the
// boolean structure so that stutter equations are recognized wherever the
// action places them; any other construct mentioning a primed variable
// (inequalities, arithmetic, negations) counts as a write.
func writes(e form.Expr) map[string]bool {
	out := make(map[string]bool)
	collectWrites(e, out)
	return out
}

func collectWrites(e form.Expr, out map[string]bool) {
	switch x := e.(type) {
	case form.AndE:
		for _, c := range x.Xs {
			collectWrites(c, out)
		}
	case form.OrE:
		for _, c := range x.Xs {
			collectWrites(c, out)
		}
	case form.QuantE:
		sub := make(map[string]bool)
		collectWrites(x.Body, sub)
		// The bound name is rigid within the body, not a state variable.
		delete(sub, x.Name)
		for v := range sub {
			out[v] = true
		}
	case form.CmpE:
		if x.Op == form.OpEq && isStutterEq(x) {
			return
		}
		for _, v := range form.PrimedVars(x) {
			out[v] = true
		}
	default:
		if e == nil {
			return
		}
		for _, v := range form.PrimedVars(e) {
			out[v] = true
		}
	}
}

// isStutterEq reports whether the equality has the shape f' = f (either
// operand order) for some state function f — i.e. it keeps f unchanged
// rather than writing it.
func isStutterEq(x form.CmpE) bool {
	if p, ok := x.A.(form.PrimeE); ok && p.X.String() == x.B.String() {
		return true
	}
	if p, ok := x.B.(form.PrimeE); ok && p.X.String() == x.A.String() {
		return true
	}
	return false
}
