package vet

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/value"
)

func TestVarUsageDiagnostics(t *testing.T) {
	t.Run("all-referenced", func(t *testing.T) {
		res := Component(clean(), Options{})
		if hasCode(res, "SV060") {
			t.Errorf("fully-referenced component flagged:\n%s", res)
		}
	})
	t.Run("unreferenced-input", func(t *testing.T) {
		c := clean()
		c.Inputs = append(c.Inputs, "spare")
		res := Component(c, Options{})
		d := diag(t, res, "SV060")
		if d.Severity != Info || d.Component != "clean" {
			t.Errorf("SV060 = %+v", d)
		}
	})
	t.Run("sub-reference-counts", func(t *testing.T) {
		// A variable referenced only by a fairness subscript is referenced.
		c := clean()
		c.Inputs = append(c.Inputs, "spare")
		c.Fairness[0].Sub = form.VarTuple("x", "h", "spare")
		res := Component(c, Options{})
		if hasCode(res, "SV060") {
			t.Errorf("subscript reference not counted:\n%s", res)
		}
	})
	t.Run("shadowing-quantifier", func(t *testing.T) {
		c := clean()
		c.Actions[0].Def = form.Exists("d", value.Ints(0, 1),
			form.Eq(form.PrimedVar("x"), form.Var("d")))
		res := Component(c, Options{})
		d := diag(t, res, "SV061")
		if d.Severity != Warn || d.Action != "Inc" {
			t.Errorf("SV061 = %+v", d)
		}
	})
	t.Run("fresh-binder-is-fine", func(t *testing.T) {
		c := clean()
		c.Actions[0].Def = form.Exists("$v", value.Ints(0, 1),
			form.Eq(form.PrimedVar("x"), form.Var("$v")))
		res := Component(c, Options{})
		if hasCode(res, "SV061") {
			t.Errorf("fresh binder flagged:\n%s", res)
		}
	})
}
