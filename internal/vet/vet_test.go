package vet

import (
	"encoding/json"
	"strings"
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
)

// codesOf returns the diagnostic codes of a result, in order.
func codesOf(r *Result) []string {
	out := make([]string, len(r.Diagnostics))
	for i, d := range r.Diagnostics {
		out[i] = d.Code
	}
	return out
}

// hasCode reports whether the result contains a diagnostic with the code.
func hasCode(r *Result, code string) bool {
	for _, d := range r.Diagnostics {
		if d.Code == code {
			return true
		}
	}
	return false
}

// diag returns the first diagnostic with the code, failing the test if absent.
func diag(t *testing.T, r *Result, code string) Diagnostic {
	t.Helper()
	for _, d := range r.Diagnostics {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic; got %v\n%s", code, codesOf(r), r)
	return Diagnostic{}
}

// clean is a well-formed two-variable component used as the negative case
// throughout: output x counts modulo 3, input d is read but never written.
func clean() *spec.Component {
	inc := form.And(
		form.Eq(form.PrimedVar("x"), form.Mod(form.Add(form.Var("x"), form.Var("d")), form.IntC(3))),
		form.Unchanged("h"),
	)
	return &spec.Component{
		Name:      "clean",
		Inputs:    []string{"d"},
		Outputs:   []string{"x"},
		Internals: []string{"h"},
		Init:      form.And(form.Eq(form.Var("x"), form.IntC(0)), form.Eq(form.Var("h"), form.IntC(0))),
		Actions:   []spec.Action{{Name: "Inc", Def: inc}},
		Fairness:  []spec.Fairness{{Kind: form.Weak, Action: inc}},
	}
}

func TestCleanComponentHasNoFindings(t *testing.T) {
	res := Component(clean(), Options{})
	if len(res.Diagnostics) != 0 {
		t.Errorf("clean component produced diagnostics:\n%s", res)
	}
}

func TestSeverityJSON(t *testing.T) {
	for _, s := range []Severity{Info, Warn, Error} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil || back != s {
			t.Errorf("severity %v round-trips to %v (err %v)", s, back, err)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "SV002", Severity: Error, Component: "QM", Action: "Enq",
		Message: "bad", Hint: "fix it"}
	s := d.String()
	for _, want := range []string{"SV002", "error", "QM/Enq", "bad", "fix: fix it"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestResultCountsAndFilter(t *testing.T) {
	r := &Result{}
	r.add(Diagnostic{Code: "A", Severity: Info})
	r.add(Diagnostic{Code: "B", Severity: Warn})
	r.add(Diagnostic{Code: "C", Severity: Error})
	if r.Errors() != 1 || r.Warnings() != 1 || r.Infos() != 1 || !r.HasErrors() {
		t.Errorf("counts: e=%d w=%d i=%d", r.Errors(), r.Warnings(), r.Infos())
	}
	if got := r.Filter(Warn); len(got) != 2 || got[0].Code != "B" || got[1].Code != "C" {
		t.Errorf("Filter(Warn) = %v", got)
	}
	o := &Result{}
	o.Merge(r)
	if len(o.Diagnostics) != 3 {
		t.Errorf("Merge copied %d diagnostics", len(o.Diagnostics))
	}
}

func TestParseMode(t *testing.T) {
	for _, s := range []string{"strict", "warn", "off"} {
		m, err := ParseMode(s)
		if err != nil || string(m) != s {
			t.Errorf("ParseMode(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseMode("loose"); err == nil {
		t.Error("ParseMode accepted an invalid mode")
	}
}

func TestSection(t *testing.T) {
	r := &Result{}
	r.add(Diagnostic{Code: "SV002", Severity: Error, Component: "c", Action: "A",
		Message: "m", Hint: "h"})
	r.add(Diagnostic{Code: "SV034", Severity: Info, Component: "c", Message: "n"})
	sec := r.Section(ModeStrict)
	if sec.Mode != "strict" || sec.Errors != 1 || sec.Infos != 1 || sec.Warnings != 0 {
		t.Errorf("section header: %+v", sec)
	}
	if len(sec.Diagnostics) != 2 || sec.Diagnostics[0].Code != "SV002" ||
		sec.Diagnostics[0].Severity != "error" || sec.Diagnostics[0].Hint != "h" {
		t.Errorf("section diagnostics: %+v", sec.Diagnostics)
	}
}
