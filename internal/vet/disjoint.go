package vet

import (
	"fmt"
	"strings"

	"opentla/internal/form"
	"opentla/internal/reduce"
	"opentla/internal/spec"
	"opentla/internal/ts"
)

// checkDisjointCoverage implements the Disjoint-hypothesis analyses:
//
//	SV020 — no step constraint forces the outputs of two components to
//	        change in separate steps. Proposition 4 reduces the
//	        conditional implementation E ∧ Disjoint(v1,…,vn) ⊆ M to an
//	        unconditional one only when the Disjoint hypothesis actually
//	        covers every pair; a missing pair silently weakens the
//	        theorem being checked. Severity is Warn when the caller
//	        requires interleaving (Options.RequireDisjoint), Info
//	        otherwise.
//	SV021 — a step constraint is not recognized as a Disjoint shape, so
//	        the coverage analysis cannot credit it.
//
// A constraint counts toward pair (A, B) when every one of its disjuncts
// freezes all of A's outputs or all of B's outputs — exactly the shape
// produced by form.DisjointSteps: [(vi'=vi) ∨ (vj'=vj)]_⟨vi,vj⟩, whose
// three disjuncts freeze vi, vj, and ⟨vi,vj⟩ respectively. Components with
// no actions or no outputs need no interleaving and are skipped.
func checkDisjointCoverage(res *Result, name string, comps []*spec.Component, cons []ts.StepConstraint, opt Options) {
	var recognized [][]map[string]bool
	for _, con := range cons {
		sets, ok := parseDisjoint(con.Action)
		if !ok {
			res.add(Diagnostic{
				Code: "SV021", Severity: Info, Component: name, Action: con.Name,
				Message: "step constraint is not a recognized Disjoint shape; it is ignored by the coverage analysis",
				Hint:    "build interleaving constraints with form.DisjointSteps",
			})
			continue
		}
		recognized = append(recognized, sets)
	}

	sev := Info
	if opt.RequireDisjoint {
		sev = Warn
	}
	for i, a := range comps {
		if len(a.Actions) == 0 || len(a.Outputs) == 0 {
			continue
		}
		for _, b := range comps[i+1:] {
			if len(b.Actions) == 0 || len(b.Outputs) == 0 {
				continue
			}
			if coveredBy(recognized, a.Outputs, b.Outputs) {
				continue
			}
			res.add(Diagnostic{
				Code: "SV020", Severity: sev, Component: name,
				Message: fmt.Sprintf("no Disjoint constraint separates the outputs of %s (%s) and %s (%s)",
					a.Name, strings.Join(a.Outputs, ","), b.Name, strings.Join(b.Outputs, ",")),
				Hint: fmt.Sprintf("add form.DisjointSteps for the pair (%s, %s) or accept simultaneous steps", a.Name, b.Name),
			})
		}
	}
}

// coveredBy reports whether some recognized constraint interleaves the
// two output sets: every one of its disjuncts freezes all of outA or all
// of outB.
func coveredBy(recognized [][]map[string]bool, outA, outB []string) bool {
	for _, sets := range recognized {
		all := len(sets) > 0
		for _, s := range sets {
			if !subset(outA, s) && !subset(outB, s) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func subset(names []string, set map[string]bool) bool {
	for _, n := range names {
		if !set[n] {
			return false
		}
	}
	return true
}

// parseDisjoint decomposes a step constraint into disjuncts that each
// freeze a set of variables, returning the frozen set per disjunct. The
// analysis is shared with the POR planner — vet and reduce must agree on
// what counts as a Disjoint shape, so both delegate to reduce.ParseDisjoint.
func parseDisjoint(e form.Expr) ([]map[string]bool, bool) {
	return reduce.ParseDisjoint(e)
}
