package vet

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
)

func TestDeadActionDiagnostics(t *testing.T) {
	p := form.Gt(form.Var("x"), form.IntC(0))
	assign := form.Eq(form.PrimedVar("x"), form.IntC(1))
	cases := []struct {
		name string
		def  form.Expr
		dead bool
	}{
		{"live-assignment", assign, false},
		{"false-constant", form.FalseE, true},
		{"not-true", form.Not(form.TrueE), true},
		{"guard-and-negation", form.And(p, form.Not(p), assign), true},
		{"nested-contradiction", form.And(form.And(p, assign), form.Not(p)), true},
		{"or-of-dead-branches", form.Or(form.FalseE, form.And(p, form.Not(p))), true},
		{"or-with-live-branch", form.Or(form.FalseE, assign), false},
		{"and-with-false-conjunct", form.And(assign, form.FalseE), true},
		{"distinct-guards-live", form.And(p, form.Not(form.Gt(form.Var("x"), form.IntC(1))), assign), false},
		{"negation-pair-in-or-is-live", form.Or(p, form.Not(p)), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := clean()
			c.Actions = []spec.Action{{Name: "A", Def: tc.def}}
			c.Fairness = nil
			res := Component(c, Options{})
			if got := hasCode(res, "SV050"); got != tc.dead {
				t.Errorf("SV050 = %v, want %v\n%s", got, tc.dead, res)
			}
		})
	}
}
