package vet

import (
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

func execDomains() map[string][]value.Value {
	return map[string][]value.Value{
		"d": value.Ints(0, 1),
		"x": value.Ints(0, 2),
		"h": value.Ints(0, 2),
	}
}

func TestExecDiagnostics(t *testing.T) {
	t.Run("clean-exec", func(t *testing.T) {
		c := clean()
		c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
			x, _ := s.MustGet("x").AsInt()
			d, _ := s.MustGet("d").AsInt()
			return []map[string]value.Value{{"x": value.Int((x + d) % 3)}}
		}
		res := Component(c, Options{Domains: execDomains()})
		if len(res.Diagnostics) != 0 {
			t.Errorf("clean exec flagged:\n%s", res)
		}
	})
	t.Run("rogue-write", func(t *testing.T) {
		c := clean()
		c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
			return []map[string]value.Value{{"x": value.Int(0), "d": value.Int(1)}}
		}
		res := Component(c, Options{Domains: execDomains()})
		d := diag(t, res, "SV040")
		if d.Action != "Inc" || d.Severity != Error {
			t.Errorf("SV040 = %+v", d)
		}
	})
	t.Run("rogue-write-deduplicated", func(t *testing.T) {
		c := clean()
		c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
			return []map[string]value.Value{{"ghost": value.Int(1)}}
		}
		res := Component(c, Options{Domains: execDomains()})
		n := 0
		for _, d := range res.Diagnostics {
			if d.Code == "SV040" {
				n++
			}
		}
		if n != 1 {
			t.Errorf("SV040 reported %d times, want once per action+variable", n)
		}
	})
	t.Run("panicking-exec", func(t *testing.T) {
		c := clean()
		c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
			panic("boom")
		}
		res := Component(c, Options{Domains: execDomains()})
		if d := diag(t, res, "SV041"); d.Action != "Inc" {
			t.Errorf("SV041 = %+v", d)
		}
	})
	t.Run("skipped-without-domains", func(t *testing.T) {
		c := clean()
		c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
			panic("boom")
		}
		res := Component(c, Options{})
		if hasCode(res, "SV040") || hasCode(res, "SV041") {
			t.Errorf("audit ran without domains:\n%s", res)
		}
	})
	t.Run("skipped-with-partial-domains", func(t *testing.T) {
		c := clean()
		c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
			panic("boom")
		}
		dom := execDomains()
		delete(dom, "h")
		res := Component(c, Options{Domains: dom})
		if hasCode(res, "SV041") {
			t.Errorf("audit ran with a partial domain map:\n%s", res)
		}
	})
	t.Run("sample-limit", func(t *testing.T) {
		c := clean()
		calls := 0
		c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
			calls++
			return nil
		}
		Component(c, Options{Domains: execDomains(), ExecSamples: 3})
		if calls != 3 {
			t.Errorf("sampled %d states, want 3", calls)
		}
	})
	t.Run("nil-exec-uses-declarative-def-only", func(t *testing.T) {
		res := Component(clean(), Options{Domains: execDomains()})
		if len(res.Diagnostics) != 0 {
			t.Errorf("nil exec flagged:\n%s", res)
		}
	})
}
