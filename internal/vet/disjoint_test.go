package vet

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/ts"
)

// pairSystem returns two single-output writer components.
func pairSystem() []*spec.Component {
	a := writer("a", []string{"x"}, nil, "x")
	b := writer("b", []string{"y"}, nil, "y")
	return []*spec.Component{a, b}
}

func disjointCons(tuples ...[]string) []ts.StepConstraint {
	var out []ts.StepConstraint
	for i, e := range form.DisjointSteps(tuples...) {
		out = append(out, ts.StepConstraint{Name: "disjoint", Action: e})
		_ = i
	}
	return out
}

func TestDisjointCoverage(t *testing.T) {
	t.Run("covered", func(t *testing.T) {
		res := Composition("sys", pairSystem(), disjointCons([]string{"x"}, []string{"y"}),
			Options{RequireDisjoint: true})
		if hasCode(res, "SV020") || hasCode(res, "SV021") {
			t.Errorf("covered pair flagged:\n%s", res)
		}
	})
	t.Run("missing-warn", func(t *testing.T) {
		res := Composition("sys", pairSystem(), nil, Options{RequireDisjoint: true})
		d := diag(t, res, "SV020")
		if d.Severity != Warn || d.Component != "sys" {
			t.Errorf("SV020 = %+v", d)
		}
	})
	t.Run("missing-info-when-not-required", func(t *testing.T) {
		res := Composition("sys", pairSystem(), nil, Options{})
		if d := diag(t, res, "SV020"); d.Severity != Info {
			t.Errorf("SV020 severity = %v, want info", d.Severity)
		}
	})
	t.Run("multi-var-tuples", func(t *testing.T) {
		a := writer("a", []string{"x1", "x2"}, nil, "x1", "x2")
		b := writer("b", []string{"y"}, nil, "y")
		cons := disjointCons([]string{"x1", "x2"}, []string{"y"})
		res := Composition("sys", []*spec.Component{a, b}, cons, Options{RequireDisjoint: true})
		if hasCode(res, "SV020") {
			t.Errorf("multi-var coverage missed:\n%s", res)
		}
	})
	t.Run("wrong-pair-not-credited", func(t *testing.T) {
		// A constraint interleaving x with z says nothing about (x, y).
		cons := disjointCons([]string{"x"}, []string{"z"})
		res := Composition("sys", pairSystem(), cons, Options{RequireDisjoint: true})
		diag(t, res, "SV020")
	})
	t.Run("unrecognized-constraint", func(t *testing.T) {
		cons := []ts.StepConstraint{{Name: "odd",
			Action: form.Gt(form.PrimedVar("x"), form.Var("x"))}}
		res := Composition("sys", pairSystem(), cons, Options{RequireDisjoint: true})
		if d := diag(t, res, "SV021"); d.Action != "odd" || d.Severity != Info {
			t.Errorf("SV021 = %+v", d)
		}
		// The unrecognized constraint earns no coverage credit.
		diag(t, res, "SV020")
	})
	t.Run("actionless-component-needs-no-coverage", func(t *testing.T) {
		comps := []*spec.Component{
			{Name: "obs", Outputs: []string{"z"}},
			writer("b", []string{"y"}, nil, "y"),
		}
		res := Composition("sys", comps, nil, Options{RequireDisjoint: true})
		if hasCode(res, "SV020") {
			t.Errorf("actionless pair flagged:\n%s", res)
		}
	})
}

func TestParseDisjoint(t *testing.T) {
	steps := form.DisjointSteps([]string{"x1", "x2"}, []string{"y"})
	if len(steps) != 1 {
		t.Fatalf("DisjointSteps produced %d constraints", len(steps))
	}
	sets, ok := parseDisjoint(steps[0])
	if !ok || len(sets) != 3 {
		t.Fatalf("parseDisjoint: ok=%v sets=%v", ok, sets)
	}
	// The three disjuncts freeze x, y, and the combined tuple.
	if !subset([]string{"x1", "x2"}, sets[0]) || !subset([]string{"y"}, sets[1]) ||
		!subset([]string{"x1", "x2", "y"}, sets[2]) {
		t.Errorf("frozen sets = %v", sets)
	}
	if _, ok := parseDisjoint(form.Eq(form.PrimedVar("x"), form.IntC(0))); ok {
		t.Error("assignment parsed as a Disjoint shape")
	}
}
