package vet

import (
	"fmt"

	"opentla/internal/form"
	"opentla/internal/spec"
)

// checkVarUsage implements the variable-hygiene analyses:
//
//	SV060 — a declared variable is never referenced by Init, any action,
//	        or any fairness condition. Harmless, but it inflates the state
//	        space (every declared variable is enumerated over its domain)
//	        and usually signals a stale declaration.
//	SV061 — a quantifier binds a name that shadows a declared variable;
//	        inside the body the bound (rigid) name wins, which is almost
//	        never what the author meant.
func checkVarUsage(res *Result, c *spec.Component) {
	exprs := componentExprs(c)

	referenced := make(map[string]bool)
	for _, e := range exprs {
		for _, v := range form.AllVars(e.expr) {
			referenced[v] = true
		}
	}
	for _, v := range c.Vars() {
		if !referenced[v] {
			res.add(Diagnostic{
				Code: "SV060", Severity: Info, Component: c.Name,
				Message: fmt.Sprintf("declared variable %q is never referenced", v),
				Hint:    fmt.Sprintf("drop the declaration of %q or wire it into the specification", v),
			})
		}
	}

	declared := stringSet(c.Vars())
	for _, e := range exprs {
		seen := make(map[string]bool)
		form.Walk(e.expr, func(n form.Expr) bool {
			if q, ok := n.(form.QuantE); ok && declared[q.Name] && !seen[q.Name] {
				seen[q.Name] = true
				res.add(Diagnostic{
					Code: "SV061", Severity: Warn, Component: c.Name, Action: e.loc,
					Message: fmt.Sprintf("quantifier binds %q, shadowing the declared variable of the same name", q.Name),
					Hint:    fmt.Sprintf("rename the bound variable so references to %q stay unambiguous", q.Name),
				})
			}
			return true
		})
	}
}

type locatedExpr struct {
	loc  string
	expr form.Expr
}

// componentExprs lists every expression of the component with a location
// label, in declaration order.
func componentExprs(c *spec.Component) []locatedExpr {
	var out []locatedExpr
	if c.Init != nil {
		out = append(out, locatedExpr{loc: "", expr: c.Init})
	}
	for _, a := range c.Actions {
		out = append(out, locatedExpr{loc: a.Name, expr: a.Def})
	}
	for i, f := range c.Fairness {
		loc := fairLoc(f.Kind, i)
		out = append(out, locatedExpr{loc: loc, expr: f.Action})
		if f.Sub != nil {
			out = append(out, locatedExpr{loc: loc, expr: f.Sub})
		}
	}
	return out
}
