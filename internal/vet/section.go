package vet

import "opentla/internal/obs"

// Section renders the result as the run report's vet section. mode records
// the -vet mode that produced it ("strict" or "warn").
func (r *Result) Section(mode Mode) *obs.VetReport {
	out := &obs.VetReport{
		Mode:     string(mode),
		Errors:   r.Errors(),
		Warnings: r.Warnings(),
		Infos:    r.Infos(),
	}
	if r.Bound != nil {
		out.Bound = &obs.VetBound{Finite: r.Bound.Finite, States: r.Bound.States}
	}
	for _, d := range r.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, obs.VetDiagnostic{
			Code:      d.Code,
			Severity:  d.Severity.String(),
			Component: d.Component,
			Action:    d.Action,
			Message:   d.Message,
			Hint:      d.Hint,
		})
	}
	return out
}
