package vet

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/value"
)

func TestFreeVarDiagnostics(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(c *spec.Component)
		want   string // code expected; "" means no finding
	}{
		{"clean", func(c *spec.Component) {}, ""},
		{"undeclared-in-action", func(c *spec.Component) {
			c.Actions[0].Def = form.Eq(form.PrimedVar("x"), form.Var("ghost"))
		}, "SV001"},
		{"undeclared-in-init", func(c *spec.Component) {
			c.Init = form.Eq(form.Var("ghost"), form.IntC(0))
		}, "SV001"},
		{"primed-input", func(c *spec.Component) {
			c.Actions[0].Def = form.Eq(form.PrimedVar("d"), form.IntC(1))
		}, "SV002"},
		{"primed-input-in-arith", func(c *spec.Component) {
			c.Actions[0].Def = form.Gt(form.Add(form.PrimedVar("d"), form.IntC(1)), form.IntC(0))
		}, "SV002"},
		{"unchanged-input-is-benign", func(c *spec.Component) {
			c.Actions[0].Def = form.And(c.Actions[0].Def, form.Unchanged("d"))
		}, ""},
		{"unchanged-tuple-is-benign", func(c *spec.Component) {
			c.Actions[0].Def = form.Or(c.Actions[0].Def,
				form.UnchangedExpr(form.VarTuple("d", "x", "h")))
		}, ""},
		{"primed-init", func(c *spec.Component) {
			c.Init = form.Eq(form.PrimedVar("x"), form.IntC(0))
		}, "SV004"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := clean()
			tc.mutate(c)
			res := Component(c, Options{})
			if tc.want == "" {
				if len(res.Diagnostics) != 0 {
					t.Errorf("unexpected diagnostics:\n%s", res)
				}
				return
			}
			diag(t, res, tc.want)
		})
	}
}

func TestWrites(t *testing.T) {
	cases := []struct {
		name string
		e    form.Expr
		want []string
	}{
		{"plain-assign", form.Eq(form.PrimedVar("x"), form.IntC(1)), []string{"x"}},
		{"reversed-assign", form.Eq(form.IntC(1), form.PrimedVar("x")), []string{"x"}},
		{"stutter", form.Unchanged("x"), nil},
		{"tuple-stutter", form.UnchangedExpr(form.VarTuple("x", "y")), nil},
		{"mixed-and", form.And(form.Eq(form.PrimedVar("x"), form.IntC(1)), form.Unchanged("y")), []string{"x"}},
		{"or-branches", form.Or(form.Eq(form.PrimedVar("x"), form.IntC(1)), form.Eq(form.PrimedVar("y"), form.IntC(2))), []string{"x", "y"}},
		{"inequality-writes", form.Ne(form.PrimedVar("x"), form.Var("x")), []string{"x"}},
		{"quantifier-strips-binder", form.Exists("v", value.Ints(0, 1),
			form.Eq(form.PrimedVar("x"), form.Var("v"))), []string{"x"}},
		{"read-only", form.Gt(form.Var("x"), form.IntC(0)), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := sortedKeys(writes(tc.e))
			if len(got) != len(tc.want) {
				t.Fatalf("writes = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("writes = %v, want %v", got, tc.want)
				}
			}
		})
	}
}
