package vet

import (
	"fmt"
	"sort"

	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// checkExecs audits the executable successor generators:
//
//	SV040 — an Exec returned an update assigning a variable outside the
//	        component's owned set. The ExecFunc contract (package spec)
//	        allows only owned-variable updates; a rogue key either writes
//	        another component's variable or invents one, and the engine's
//	        declarative cross-check (ts.AuditExecs) would only catch it
//	        during a full run.
//	SV041 — an Exec panicked while sampling.
//
// The audit samples at most Options.ExecSamples states drawn from
// Options.Domains; it is skipped when Domains is nil or does not cover
// every declared variable of the component. Sampling is deterministic:
// assignments are enumerated in sorted-variable order.
func checkExecs(res *Result, c *spec.Component, opt Options) {
	if opt.Domains == nil {
		return
	}
	names := c.Vars()
	sort.Strings(names)
	for _, n := range names {
		if len(opt.Domains[n]) == 0 {
			return
		}
	}
	owned := stringSet(c.Owned())
	limit := opt.execSamples()

	type finding struct {
		rogue    map[string]bool
		panicked bool
	}
	findings := make([]finding, len(c.Actions))
	for i := range findings {
		findings[i].rogue = make(map[string]bool)
	}

	sampled := 0
	value.ForEachAssignment(names, opt.Domains, func(a map[string]value.Value) bool {
		// ForEachAssignment reuses the map; copy before building a state.
		cp := make(map[string]value.Value, len(a))
		for k, v := range a {
			cp[k] = v
		}
		s := state.New(cp)
		for i, act := range c.Actions {
			if act.Exec == nil || findings[i].panicked {
				continue
			}
			ups, panicked := callExec(act.Exec, s)
			if panicked {
				findings[i].panicked = true
				continue
			}
			for _, up := range ups {
				for k := range up {
					if !owned[k] {
						findings[i].rogue[k] = true
					}
				}
			}
		}
		sampled++
		return sampled < limit
	})

	for i, act := range c.Actions {
		if findings[i].panicked {
			res.add(Diagnostic{
				Code: "SV041", Severity: Error, Component: c.Name, Action: act.Name,
				Message: "Exec generator panicked while sampling states over the declared domains",
				Hint:    "guard the generator against states outside its expected reachable set",
			})
		}
		for _, v := range sortedKeys(findings[i].rogue) {
			res.add(Diagnostic{
				Code: "SV040", Severity: Error, Component: c.Name, Action: act.Name,
				Message: fmt.Sprintf("Exec generator writes %q, which is outside the component's owned set", v),
				Hint:    fmt.Sprintf("Exec updates may only assign outputs and internals; drop %q from the update map", v),
			})
		}
	}
}

func callExec(fn spec.ExecFunc, s *state.State) (ups []map[string]value.Value, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return fn(s), false
}
