package vet

import (
	"fmt"
	"sort"
	"strings"

	"opentla/internal/absint"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/ts"
)

// checkSemantic runs the abstract-interpretation pass (SV100–SV1xx) over a
// composition. Unlike the syntactic checks, which trust the declared
// partition and domains, this pass derives its facts from the action
// definitions themselves: per-variable reachable-domain
// over-approximations, per-action write sets, guard satisfiability, and a
// state-space cardinality upper bound (attached to the Result as Bound).
//
// The pass activates when the caller declares variable domains — the same
// signal that enables the Exec audit — so minimal unit-test compositions
// without domains are not flooded with finiteness findings.
func checkSemantic(res *Result, name string, comps []*spec.Component, cons []ts.StepConstraint, opt Options) {
	if len(opt.Domains) == 0 {
		return
	}
	consExprs := make([]form.Expr, len(cons))
	for i, c := range cons {
		consExprs[i] = c.Action
	}
	a := absint.Analyze(comps, consExprs, absint.Options{Declared: opt.Domains})
	checkFinite(res, name, comps, a)
	checkDomainEscape(res, a)
	checkHiddenInterface(res, comps)
	checkDisjointRefuted(res, name, comps, cons, a)
	checkNeverEnabled(res, a)
	res.Bound = a.Bound()
}

// checkFinite implements SV100: a variable whose reachable value set
// cannot be proven finite. The explicit-state checker cannot terminate on
// such a system, and no state-space bound exists; either a declared domain
// or a bounding guard is missing.
func checkFinite(res *Result, name string, comps []*spec.Component, a *absint.Analysis) {
	owner := map[string]string{}
	for _, c := range comps {
		for _, v := range c.Owned() {
			owner[v] = c.Name
		}
	}
	for _, v := range a.Names {
		if _, fin := a.VarDom(v).Card(); fin {
			continue
		}
		comp := owner[v]
		if comp == "" {
			comp = name
		}
		res.add(Diagnostic{
			Code: "SV100", Severity: Error, Component: comp,
			Message: fmt.Sprintf("variable %q is not provably finite: inferred domain %s", v, a.VarDom(v)),
			Hint:    fmt.Sprintf("declare a finite domain for %q or guard the actions that grow it", v),
		})
	}
}

// checkDomainEscape implements SV101: an action's inferred write for a
// variable is entirely disjoint from the variable's declared domain, so
// every step of the action leaves the domain the rest of the toolchain
// assumes. (A partial overlap is not flagged — the abstraction
// over-approximates, so only full disjointness is a proof.)
func checkDomainEscape(res *Result, a *absint.Analysis) {
	for _, f := range a.Actions {
		if f.Enabled == absint.False {
			continue // never steps, nothing escapes
		}
		for _, v := range absint.SortedVars(f.Writes) {
			post, ok := f.Post[v]
			if !ok || post.IsBot() {
				continue
			}
			decl := a.DeclaredDom[v]
			if decl == nil || decl.IsTop() {
				continue
			}
			if absint.Meet(post, decl).IsBot() {
				res.add(Diagnostic{
					Code: "SV101", Severity: Warn, Component: f.Component, Action: f.Action,
					Message: fmt.Sprintf("inferred write %s to %q is disjoint from its declared domain", post, v),
					Hint:    fmt.Sprintf("widen the declared domain of %q or fix the assignment", v),
				})
			}
		}
	}
}

// checkHiddenInterface implements SV120: a component declares as input a
// variable that is internal to another component. Internal variables are
// hidden by the existential quantifier of the canonical form (§2.2), so
// they cannot cross a composition interface; a name collision here means
// the composition silently couples two components through a variable the
// paper's theorems treat as private.
func checkHiddenInterface(res *Result, comps []*spec.Component) {
	for _, b := range comps {
		if len(b.Internals) == 0 {
			continue
		}
		internals := stringSet(b.Internals)
		for _, c := range comps {
			if c.Name == b.Name {
				continue
			}
			for _, v := range c.Inputs {
				if internals[v] {
					res.add(Diagnostic{
						Code: "SV120", Severity: Error, Component: c.Name,
						Message: fmt.Sprintf("input %q is an internal variable of component %s; internals are hidden by ∃x and cannot cross the interface", v, b.Name),
						Hint:    fmt.Sprintf("expose %q as an output of %s or drop the input declaration", v, b.Name),
					})
				}
			}
		}
	}
}

// checkDisjointRefuted implements SV111: the declared Disjoint coverage of
// a component pair is refuted by the inferred write sets. SV020 proves
// coverage from the declared outputs; this check re-proves it from what
// the actions actually write. A pair whose declared coverage holds but
// whose inferred coverage fails has declared-but-wrong ownership — exactly
// the situation in which Proposition 4 would be applied unsoundly.
func checkDisjointRefuted(res *Result, name string, comps []*spec.Component, cons []ts.StepConstraint, a *absint.Analysis) {
	var recognized [][]map[string]bool
	for _, con := range cons {
		if sets, ok := parseDisjoint(con.Action); ok {
			recognized = append(recognized, sets)
		}
	}
	if len(recognized) == 0 {
		return
	}
	// External inferred writes: what the component's actions change,
	// minus its internals (Disjoint speaks about visible variables).
	ext := func(c *spec.Component) []string {
		internals := stringSet(c.Internals)
		var out []string
		for v := range a.ComponentWrites(c.Name) {
			if !internals[v] {
				out = append(out, v)
			}
		}
		sort.Strings(out)
		return out
	}
	for i, ca := range comps {
		if len(ca.Actions) == 0 || len(ca.Outputs) == 0 {
			continue
		}
		for _, cb := range comps[i+1:] {
			if len(cb.Actions) == 0 || len(cb.Outputs) == 0 {
				continue
			}
			if !coveredBy(recognized, ca.Outputs, cb.Outputs) {
				continue // no declared coverage to refute; SV020 reports it
			}
			extA, extB := ext(ca), ext(cb)
			if coveredBy(recognized, extA, extB) {
				continue
			}
			res.add(Diagnostic{
				Code: "SV111", Severity: Error, Component: name,
				Message: fmt.Sprintf("Disjoint coverage of (%s, %s) is refuted: declared outputs are interleaved, but the inferred write-sets (%s | %s) are not frozen by any covering constraint",
					ca.Name, cb.Name, strings.Join(extA, ","), strings.Join(extB, ",")),
				Hint: "make the components write only their declared outputs, or extend the Disjoint tuples to the variables actually written",
			})
		}
	}
}

// checkNeverEnabled implements SV130: an action whose guard is provably
// unsatisfiable under the inferred reachable domains. This subsumes the
// syntactic SV050 with domain reasoning: the guard may be perfectly
// satisfiable in isolation and still unreachable in every run.
func checkNeverEnabled(res *Result, a *absint.Analysis) {
	for _, f := range a.Actions {
		if f.Enabled != absint.False {
			continue
		}
		res.add(Diagnostic{
			Code: "SV130", Severity: Warn, Component: f.Component, Action: f.Action,
			Message: "action is provably never enabled under the inferred reachable domains",
			Hint:    "remove the action or fix the guard; the next-state relation silently loses this disjunct",
		})
	}
}

// Pair checks one assumption/guarantee pair's interface (Composition
// Theorem compatibility, §5): every input the guarantee component Sys
// reads must be driven by an output of its assumption Env, or the
// assumption says nothing about a wire the guarantee depends on (SV121).
// Like the rest of the semantic pass it activates only when domains are
// declared. Nil env or sys (TRUE assumptions, constraint-only guarantees)
// check nothing.
func Pair(name string, env, sys *spec.Component, opt Options) *Result {
	res := &Result{}
	if env == nil || sys == nil || len(opt.Domains) == 0 {
		return res
	}
	outputs := stringSet(env.Outputs)
	for _, v := range sys.Inputs {
		if outputs[v] {
			continue
		}
		res.add(Diagnostic{
			Code: "SV121", Severity: Warn, Component: sys.Name, Action: "",
			Message: fmt.Sprintf("pair %s: input %q of guarantee %s is not an output of its assumption %s", name, v, sys.Name, env.Name),
			Hint:    fmt.Sprintf("add %q to %s's outputs or drop the dangling input", v, env.Name),
		})
	}
	return res
}
