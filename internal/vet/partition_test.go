package vet

import (
	"strings"
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
)

func TestPartitionDiagnostics(t *testing.T) {
	cases := []struct {
		name  string
		comp  *spec.Component
		want  string
		inMsg string
	}{
		{"clean", clean(), "", ""},
		{"cross-class-dup", &spec.Component{Name: "d",
			Inputs: []string{"x"}, Outputs: []string{"x"}},
			"SV010", `declared as both input and output`},
		{"same-class-dup", &spec.Component{Name: "d",
			Outputs: []string{"y", "y"}},
			"SV010", `declared twice as output`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Component(tc.comp, Options{})
			if tc.want == "" {
				if hasCode(res, "SV010") {
					t.Errorf("unexpected SV010:\n%s", res)
				}
				return
			}
			d := diag(t, res, tc.want)
			if !strings.Contains(d.Message, tc.inMsg) {
				t.Errorf("message %q missing %q", d.Message, tc.inMsg)
			}
		})
	}
}

// writer returns a component whose action assigns each named variable.
func writer(name string, outputs, inputs []string, writes ...string) *spec.Component {
	var conj []form.Expr
	for _, v := range writes {
		conj = append(conj, form.Eq(form.PrimedVar(v), form.IntC(1)))
	}
	declared := map[string]bool{}
	for _, v := range outputs {
		declared[v] = true
	}
	for _, v := range inputs {
		declared[v] = true
	}
	return &spec.Component{
		Name:    name,
		Inputs:  inputs,
		Outputs: outputs,
		Actions: []spec.Action{{Name: "Go", Def: form.And(conj...)}},
	}
}

func TestOwnershipDiagnostics(t *testing.T) {
	t.Run("clean-pair", func(t *testing.T) {
		a := writer("a", []string{"x"}, []string{"y"}, "x")
		b := writer("b", []string{"y"}, []string{"x"}, "y")
		res := Composition("sys", []*spec.Component{a, b}, nil, Options{})
		if hasCode(res, "SV011") || hasCode(res, "SV003") {
			t.Errorf("clean pair flagged:\n%s", res)
		}
	})
	t.Run("double-ownership", func(t *testing.T) {
		a := writer("a", []string{"x"}, nil, "x")
		b := writer("b", []string{"x"}, nil, "x")
		res := Composition("sys", []*spec.Component{a, b}, nil, Options{})
		d := diag(t, res, "SV011")
		if d.Component != "b" || !strings.Contains(d.Message, `owned by component a`) {
			t.Errorf("SV011 = %+v", d)
		}
	})
	t.Run("cross-write", func(t *testing.T) {
		// a writes y without declaring it; b owns y. The per-component pass
		// reports the undeclared mention (SV001) and the composition pass
		// the ownership violation (SV003).
		a := writer("a", []string{"x"}, nil, "x", "y")
		b := writer("b", []string{"y"}, nil, "y")
		res := Composition("sys", []*spec.Component{a, b}, nil, Options{})
		if !hasCode(res, "SV001") {
			t.Errorf("missing SV001:\n%s", res)
		}
		d := diag(t, res, "SV003")
		if d.Component != "a" || d.Action != "Go" || !strings.Contains(d.Message, `owned by component b`) {
			t.Errorf("SV003 = %+v", d)
		}
	})
	t.Run("input-write-is-sv002-not-sv003", func(t *testing.T) {
		// a declares y as an input and writes it: that is the component-level
		// SV002, not repeated as SV003.
		a := writer("a", []string{"x"}, []string{"y"}, "x", "y")
		b := writer("b", []string{"y"}, nil, "y")
		res := Composition("sys", []*spec.Component{a, b}, nil, Options{})
		if !hasCode(res, "SV002") {
			t.Errorf("missing SV002:\n%s", res)
		}
		if hasCode(res, "SV003") {
			t.Errorf("SV003 double-reports an input write:\n%s", res)
		}
	})
}
