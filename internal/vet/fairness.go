package vet

import (
	"fmt"
	"strings"

	"opentla/internal/form"
	"opentla/internal/spec"
)

// checkFairness validates the liveness part L — the WF_v(A)/SF_v(A)
// conjuncts of the canonical form (§2.2):
//
//	SV001 — the fair action mentions an undeclared variable.
//	SV030 — the subscript v contains primed variables; a subscript must be
//	        a state function, otherwise ⟨A⟩_v is not an action.
//	SV031 — the subscript mentions undeclared variables.
//	SV032 — the fair action constrains a non-owned variable. Fairness may
//	        only be asserted about steps the component itself takes; a
//	        fair action writing inputs smuggles an environment assumption
//	        into L and breaks the E ⊳ M decomposition.
//	SV033 — the subscript contains no owned variable, so ⟨A⟩_v can never
//	        distinguish the component's steps from the environment's.
//	SV034 — the subscript mixes inputs with owned variables. This is
//	        legal (the paper's queue QM subscripts ⟨i,o,q⟩, Fig. 6) but
//	        worth surfacing: an input change alone can satisfy ⟨A⟩_v.
func checkFairness(res *Result, c *spec.Component) {
	declared := stringSet(c.Vars())
	owned := stringSet(c.Owned())
	inputs := stringSet(c.Inputs)

	for i, f := range c.Fairness {
		loc := fairLoc(f.Kind, i)
		for _, v := range form.AllVars(f.Action) {
			if !declared[v] {
				res.add(Diagnostic{
					Code: "SV001", Severity: Error, Component: c.Name, Action: loc,
					Message: fmt.Sprintf("fairness action mentions undeclared variable %q", v),
					Hint:    fmt.Sprintf("declare %q as an input, output, or internal", v),
				})
			}
		}
		for _, v := range sortedKeys(writes(f.Action)) {
			if !owned[v] {
				res.add(Diagnostic{
					Code: "SV032", Severity: Error, Component: c.Name, Action: loc,
					Message: fmt.Sprintf("fairness action constrains non-owned variable %q", v),
					Hint:    "assert fairness only for actions over the component's own outputs and internals",
				})
			}
		}
		if f.Sub == nil {
			// The canonical ⟨outputs, internals⟩ subscript is always valid.
			continue
		}
		if prm := form.PrimedVars(f.Sub); len(prm) > 0 {
			res.add(Diagnostic{
				Code: "SV030", Severity: Error, Component: c.Name, Action: loc,
				Message: fmt.Sprintf("fairness subscript primes variables %s; a subscript must be a state function", strings.Join(prm, ", ")),
				Hint:    "remove the primes from the subscript",
			})
		}
		subVars := form.AllVars(f.Sub)
		hasOwned, hasInput := false, false
		for _, v := range subVars {
			if !declared[v] {
				res.add(Diagnostic{
					Code: "SV031", Severity: Error, Component: c.Name, Action: loc,
					Message: fmt.Sprintf("fairness subscript mentions undeclared variable %q", v),
					Hint:    fmt.Sprintf("declare %q or drop it from the subscript", v),
				})
			}
			if owned[v] {
				hasOwned = true
			}
			if inputs[v] {
				hasInput = true
			}
		}
		if !hasOwned {
			res.add(Diagnostic{
				Code: "SV033", Severity: Warn, Component: c.Name, Action: loc,
				Message: "fairness subscript contains no owned variable, so it cannot witness the component's own steps",
				Hint:    "subscript the fairness condition with the component's outputs or internals",
			})
		} else if hasInput {
			res.add(Diagnostic{
				Code: "SV034", Severity: Info, Component: c.Name, Action: loc,
				Message: "fairness subscript mixes inputs with owned variables; an input change alone satisfies the angle-action",
				Hint:    "this matches the paper's queue specification (Fig. 6) but restricts L less than the canonical subscript",
			})
		}
	}
}

// fairLoc labels the i-th fairness conjunct for diagnostics, e.g. "WF[0]".
func fairLoc(k form.FairKind, i int) string {
	kind := "WF"
	if k == form.Strong {
		kind = "SF"
	}
	return fmt.Sprintf("%s[%d]", kind, i)
}
