package vet

import (
	"opentla/internal/form"
	"opentla/internal/spec"
)

// checkDeadActions implements SV050: an action whose definition is
// syntactically unsatisfiable can never contribute a step, so the
// next-state disjunction quietly loses a disjunct — usually the residue of
// an edit that inverted a guard. The check is purely syntactic (FALSE
// constants, empty disjunctions, contradictory conjuncts p ∧ ¬p) and
// therefore sound: everything it flags really is dead, though plenty of
// semantically dead actions pass it.
func checkDeadActions(res *Result, c *spec.Component) {
	for _, a := range c.Actions {
		if deadExpr(a.Def) {
			res.add(Diagnostic{
				Code: "SV050", Severity: Warn, Component: c.Name, Action: a.Name,
				Message: "action definition is syntactically unsatisfiable; the action can never take a step",
				Hint:    "remove the action or fix its guard",
			})
		}
	}
}

var (
	trueStr  = form.TrueE.String()
	falseStr = form.FalseE.String()
)

func deadExpr(e form.Expr) bool {
	switch x := e.(type) {
	case form.ConstE:
		return x.String() == falseStr
	case form.NotE:
		return x.X.String() == trueStr
	case form.OrE:
		for _, c := range x.Xs {
			if !deadExpr(c) {
				return false
			}
		}
		return true
	case form.AndE:
		pos := make(map[string]bool)
		neg := make(map[string]bool)
		dead := false
		var flatten func(xs []form.Expr)
		flatten = func(xs []form.Expr) {
			for _, c := range xs {
				if deadExpr(c) {
					dead = true
					return
				}
				switch y := c.(type) {
				case form.AndE:
					flatten(y.Xs)
				case form.NotE:
					neg[y.X.String()] = true
				default:
					pos[c.String()] = true
				}
			}
		}
		flatten(x.Xs)
		if dead {
			return true
		}
		for s := range pos {
			if neg[s] {
				return true
			}
		}
		return false
	}
	return false
}
