// Package vet statically analyzes canonical-form component specifications
// (spec.Component) and their compositions before any state is explored.
//
// The theorems of Abadi & Lamport, "Open Systems in TLA" only apply to
// specifications in canonical form ∃x : Init ∧ □[N]_v ∧ L with a clean
// input/output/internal partition (§2.2) and, for compositions, the
// interleaving Disjoint hypothesis of Proposition 4 (§2.3). A component
// that violates those side conditions still model-checks — to a verdict
// that means nothing. Package vet is the fast, deterministic lint pass
// that catches such specs first.
//
// Each finding is a Diagnostic with a stable code (SV0xx), a severity
// (error, warn, info), a component/action location, and a fix hint. The
// analyzer is surfaced three ways: the specvet CLI (over the bundled model
// registry), the -vet pre-check phase of agcheck and queueverify, and the
// library entry points Component and Composition used by ag.Theorem.
//
// Diagnostic code catalog (see DESIGN.md §10 for the paper mapping):
//
//	SV001 error  undeclared variable mentioned by Init/action/fairness
//	SV002 error  action constrains the next-state value of an input
//	SV003 error  action constrains a variable owned by another component
//	SV004 error  Init contains primed variables
//	SV010 error  variable declared more than once (broken partition)
//	SV011 error  two components own the same variable
//	SV020 warn*  no Disjoint constraint separates two components' outputs
//	             (*info when the composition does not require interleaving)
//	SV021 info   step constraint not recognized as a Disjoint shape
//	SV030 error  fairness subscript contains primed variables
//	SV031 error  fairness subscript mentions undeclared variables
//	SV032 error  fairness action constrains a non-owned variable
//	SV033 warn   fairness subscript contains no owned variable
//	SV034 info   fairness subscript mixes inputs with owned variables
//	SV040 error  Exec generator writes a variable outside the owned set
//	SV041 error  Exec generator panicked during sampling
//	SV050 warn   action definition is syntactically unsatisfiable (dead)
//	SV060 info   declared variable never referenced
//	SV061 warn   quantifier binds a name shadowing a declared variable
//
// The SV1xx range is the semantic pass (specvet v2): facts established by
// the abstract interpreter of package absint rather than read off the
// declarations. It runs for compositions with declared domains and also
// attaches the state-space cardinality bound to the Result (see
// DESIGN.md §14):
//
//	SV100 error  variable's reachable value set not provably finite
//	SV101 warn   inferred write disjoint from the declared domain
//	SV111 error  declared Disjoint coverage refuted by inferred write-sets
//	SV120 error  input declared over another component's internal variable
//	SV121 warn   pair: guarantee input not driven by its assumption's outputs
//	SV130 warn   action provably never enabled under inferred domains
//	SV140 warn   state-space bound exceeds the configured budget
package vet

import (
	"fmt"
	"sort"
	"strings"

	"opentla/internal/absint"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// Severity ranks a diagnostic: Info < Warn < Error.
type Severity int

// The three severities.
const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"info"`:
		*s = Info
	case `"warn"`:
		*s = Warn
	case `"error"`:
		*s = Error
	default:
		return fmt.Errorf("unknown severity %s", data)
	}
	return nil
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Code is the stable SV0xx identifier of the check.
	Code string `json:"code"`
	// Severity is the finding's rank; only Error fails strict mode.
	Severity Severity `json:"severity"`
	// Component locates the finding; for composition-level findings it is
	// the composition's name.
	Component string `json:"component,omitempty"`
	// Action names the offending action or fairness condition, if any.
	Action  string `json:"action,omitempty"`
	Message string `json:"message"`
	// Hint suggests a fix.
	Hint string `json:"hint,omitempty"`
}

// String renders the diagnostic on one line:
//
//	SV002 error  QM1/Enq: action constrains input ... (fix: ...)
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %-5s ", d.Code, d.Severity)
	if d.Component != "" {
		sb.WriteString(d.Component)
		if d.Action != "" {
			sb.WriteString("/" + d.Action)
		}
		sb.WriteString(": ")
	}
	sb.WriteString(d.Message)
	if d.Hint != "" {
		sb.WriteString(" (fix: " + d.Hint + ")")
	}
	return sb.String()
}

// Result collects the diagnostics of one analysis run.
type Result struct {
	Diagnostics []Diagnostic
	// Bound is the semantic pass's state-space cardinality upper bound;
	// nil when the pass did not run (no declared domains, or a
	// component-only analysis).
	Bound *absint.Bound
}

func (r *Result) add(d Diagnostic) { r.Diagnostics = append(r.Diagnostics, d) }

// Merge appends the other result's diagnostics. The receiver's bound wins
// when both results carry one (the composition-level analysis is merged
// first and covers the whole system).
func (r *Result) Merge(o *Result) {
	if o != nil {
		r.Diagnostics = append(r.Diagnostics, o.Diagnostics...)
		if r.Bound == nil {
			r.Bound = o.Bound
		}
	}
}

// CheckBudget implements SV140: when the analysis produced a bound and it
// exceeds the given state budget, a warning is appended and reported true.
// Strict callers refuse to run such instances; others proceed with the
// budget's usual truncation semantics. A budget ≤ 0 checks nothing.
func (r *Result) CheckBudget(budget int64) bool {
	if r.Bound == nil || !r.Bound.Exceeds(budget) {
		return false
	}
	r.add(Diagnostic{
		Code: "SV140", Severity: Warn,
		Message: fmt.Sprintf("state-space bound %s exceeds the configured budget of %d states", r.Bound, budget),
		Hint:    "shrink the instance (domains, queue capacity) or raise -max-states",
	})
	return true
}

// Count returns the number of diagnostics with exactly the given severity.
func (r *Result) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Errors returns the number of error-severity diagnostics.
func (r *Result) Errors() int { return r.Count(Error) }

// Warnings returns the number of warn-severity diagnostics.
func (r *Result) Warnings() int { return r.Count(Warn) }

// Infos returns the number of info-severity diagnostics.
func (r *Result) Infos() int { return r.Count(Info) }

// HasErrors reports whether any diagnostic has error severity.
func (r *Result) HasErrors() bool { return r.Errors() > 0 }

// Filter returns the diagnostics at or above the given severity, in
// reporting order.
func (r *Result) Filter(min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// String renders every diagnostic, one per line.
func (r *Result) String() string {
	var sb strings.Builder
	for _, d := range r.Diagnostics {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Options tunes an analysis run.
type Options struct {
	// Domains enables Exec-generator sampling (SV040/SV041) when it covers
	// every variable of the component under analysis; nil disables it.
	Domains map[string][]value.Value
	// ExecSamples bounds the states sampled per component by the Exec
	// audit; 0 means the default of 64.
	ExecSamples int
	// RequireDisjoint raises missing-Disjoint-coverage (SV020) from info
	// to warn. Set it when the composition's correctness argument relies
	// on the interleaving hypothesis of Proposition 4 (as every
	// Composition Theorem instance does).
	RequireDisjoint bool
}

func (opt Options) execSamples() int {
	if opt.ExecSamples > 0 {
		return opt.ExecSamples
	}
	return 64
}

// Component runs every per-component analysis on c.
func Component(c *spec.Component, opt Options) *Result {
	res := &Result{}
	checkPartition(res, c)
	checkFreeVars(res, c)
	checkFairness(res, c)
	checkDeadActions(res, c)
	checkVarUsage(res, c)
	checkExecs(res, c, opt)
	return res
}

// Composition analyzes a complete system: every component individually,
// plus the cross-component checks — ownership clashes (SV011), writes into
// another component's variables (SV003), and Disjoint-hypothesis coverage
// (SV020/SV021). name labels composition-level diagnostics; cons are the
// composition's step constraints (the candidate Disjoint conjuncts).
func Composition(name string, comps []*spec.Component, cons []ts.StepConstraint, opt Options) *Result {
	res := &Result{}
	for _, c := range comps {
		res.Merge(Component(c, opt))
	}
	checkOwnership(res, comps)
	checkDisjointCoverage(res, name, comps, cons, opt)
	checkSemantic(res, name, comps, cons, opt)
	return res
}

// stringSet builds a membership set from a name list.
func stringSet(names []string) map[string]bool {
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
