package iofs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeThrough performs the cache's canonical durable-write sequence through
// fs: temp create, write, sync, close, rename into place. It returns the
// first error.
func writeThrough(fsys FS, dir, name string, data []byte) error {
	f, err := fsys.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(f.Name(), filepath.Join(dir, name))
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	if err := writeThrough(fsys, dir, "entry.snap", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(filepath.Join(dir, "entry.snap"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = (%q, %v)", got, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "entry.snap" {
		t.Fatalf("ReadDir = (%v, %v)", ents, err)
	}
	if _, err := fsys.Stat(filepath.Join(dir, "entry.snap")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(filepath.Join(dir, "entry.snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(filepath.Join(dir, "entry.snap")); !os.IsNotExist(err) {
		t.Fatalf("Stat after Remove: %v", err)
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(ErrTransient) {
		t.Error("ErrTransient must be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", ErrTransient)) {
		t.Error("wrapping must preserve transience")
	}
	if IsTransient(errNoSpace) || IsTransient(errors.New("plain")) || IsTransient(nil) {
		t.Error("permanent and nil errors must not be transient")
	}
}

// TestFaultyModes drives each planned fault through the canonical write
// sequence and checks the observable outcome.
func TestFaultyModes(t *testing.T) {
	t.Run("transientCreate", func(t *testing.T) {
		dir := t.TempDir()
		f := NewFaulty(OS{}, map[int]FaultMode{1: FaultTransient})
		err := writeThrough(f, dir, "e.snap", []byte("abc"))
		if !IsTransient(err) {
			t.Fatalf("want transient error, got %v", err)
		}
		// Second attempt (ops 2..6) is clean.
		if err := writeThrough(f, dir, "e.snap", []byte("abc")); err != nil {
			t.Fatalf("retry failed: %v", err)
		}
	})
	t.Run("noSpaceIsPermanent", func(t *testing.T) {
		dir := t.TempDir()
		f := NewFaulty(OS{}, map[int]FaultMode{2: FaultNoSpace})
		err := writeThrough(f, dir, "e.snap", []byte("abc"))
		if err == nil || IsTransient(err) {
			t.Fatalf("want permanent error, got %v", err)
		}
	})
	t.Run("shortWriteLeavesPrefix", func(t *testing.T) {
		dir := t.TempDir()
		f := NewFaulty(OS{}, map[int]FaultMode{2: FaultShortWrite})
		err := writeThrough(f, dir, "e.snap", []byte("abcdefgh"))
		if !IsTransient(err) {
			t.Fatalf("want transient short-write error, got %v", err)
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 1 {
			t.Fatalf("want exactly the torn temp file, got %v", ents)
		}
		data, _ := os.ReadFile(filepath.Join(dir, ents[0].Name()))
		if string(data) != "abcd" {
			t.Errorf("torn temp holds %q, want half the buffer", data)
		}
	})
	t.Run("syncDropLosesDataAtCrash", func(t *testing.T) {
		dir := t.TempDir()
		// Op 3 is the sync (create=1, write=2): dropped. Op 7 (the second
		// file's write) crashes. The first file was renamed into place with
		// no effective sync, so the crash tears it to zero bytes.
		f := NewFaulty(OS{}, map[int]FaultMode{3: FaultSyncDrop, 7: FaultCrash})
		if err := writeThrough(f, dir, "e.snap", []byte("abcdefgh")); err != nil {
			t.Fatalf("dropped sync must look like success: %v", err)
		}
		err := writeThrough(f, dir, "f.snap", []byte("xyz"))
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("want crash, got %v", err)
		}
		if !f.Crashed() {
			t.Fatal("Crashed() = false after crash")
		}
		data, err := os.ReadFile(filepath.Join(dir, "e.snap"))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 0 {
			t.Errorf("unsynced data survived the crash: %q", data)
		}
		// The filesystem is frozen now.
		if _, err := f.ReadFile(filepath.Join(dir, "e.snap")); !errors.Is(err, ErrCrashed) {
			t.Errorf("post-crash read = %v, want ErrCrashed", err)
		}
	})
	t.Run("syncedDataSurvivesCrash", func(t *testing.T) {
		dir := t.TempDir()
		// Clean first write (ops 1-5), crash at the second file's sync (op 8).
		f := NewFaulty(OS{}, map[int]FaultMode{8: FaultCrash})
		if err := writeThrough(f, dir, "e.snap", []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
		err := writeThrough(f, dir, "f.snap", []byte("xyz"))
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("want crash, got %v", err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "e.snap"))
		if err != nil || string(data) != "abcdefgh" {
			t.Errorf("synced entry must survive: (%q, %v)", data, err)
		}
	})
	t.Run("crashBeforeRename", func(t *testing.T) {
		dir := t.TempDir()
		f := NewFaulty(OS{}, map[int]FaultMode{5: FaultCrash})
		err := writeThrough(f, dir, "e.snap", []byte("abc"))
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("want crash, got %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, "e.snap")); !os.IsNotExist(err) {
			t.Error("entry appeared despite crashing before the rename")
		}
	})
}

func TestFaultyOpCount(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, nil)
	if err := writeThrough(f, dir, "e.snap", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	// create + write + sync + close + rename = 5 mutating ops; reads none.
	if _, err := f.ReadFile(filepath.Join(dir, "e.snap")); err != nil {
		t.Fatal(err)
	}
	if got := f.Ops(); got != 5 {
		t.Errorf("Ops() = %d, want 5", got)
	}
}

func TestSeededPlanDeterministic(t *testing.T) {
	a := SeededPlan(42, 100, 0.3)
	b := SeededPlan(42, 100, 0.3)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must yield the same plan")
	}
	if len(a) == 0 {
		t.Error("p=0.3 over 100 ops should inject something")
	}
	c := SeededPlan(43, 100, 0.3)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should yield different plans")
	}
	for op, mode := range a {
		if mode == FaultCrash {
			t.Errorf("seeded plans must not place crashes (op %d)", op)
		}
	}
}

// TestCrashFS checks the process-level crash wrapper using an injected exit
// func (panic instead of os.Exit).
func TestCrashFS(t *testing.T) {
	runToCrash := func(at int, dir string) (code int, crashed bool) {
		exit := func(c int) { code = c; panic("exit") }
		c := NewCrash(OS{}, at, exit)
		defer func() {
			if r := recover(); r != nil {
				crashed = true
			}
		}()
		if err := writeThrough(c, dir, "e.snap", []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
		return code, false
	}

	// The write sequence has 5 mutating ops; crash at each in turn.
	for at := 1; at <= 5; at++ {
		dir := t.TempDir()
		code, crashed := runToCrash(at, dir)
		if !crashed {
			t.Fatalf("at=%d: no crash", at)
		}
		if code != CrashExitCode {
			t.Fatalf("at=%d: exit code %d, want %d", at, code, CrashExitCode)
		}
		if _, err := os.Stat(filepath.Join(dir, "e.snap")); !os.IsNotExist(err) {
			t.Errorf("at=%d: entry appeared despite dying before the rename", at)
		}
		if at == 2 {
			// The crashing write leaves a torn prefix in the temp file.
			ents, _ := os.ReadDir(dir)
			if len(ents) != 1 {
				t.Fatalf("at=2: want one torn temp file, got %v", ents)
			}
			data, _ := os.ReadFile(filepath.Join(dir, ents[0].Name()))
			if string(data) != "abcd" {
				t.Errorf("at=2: torn temp holds %q", data)
			}
		}
	}

	// Beyond the op count: no crash, file lands.
	dir := t.TempDir()
	if code, crashed := runToCrash(99, dir); crashed || code != 0 {
		t.Fatalf("at=99: crashed=%v code=%d", crashed, code)
	}
	if data, err := os.ReadFile(filepath.Join(dir, "e.snap")); err != nil || string(data) != "abcdefgh" {
		t.Errorf("entry = (%q, %v)", data, err)
	}
}
