package iofs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"time"
)

// FaultMode selects what goes wrong at one planned operation index.
type FaultMode int

const (
	// FaultNone leaves the operation alone.
	FaultNone FaultMode = iota
	// FaultTransient fails the operation with a transient error (the
	// retryable class: the cache's bounded retry should absorb it).
	FaultTransient
	// FaultNoSpace fails the operation with a permanent ENOSPC-style error.
	FaultNoSpace
	// FaultShortWrite persists only a prefix of a Write's data, then fails
	// with a transient error (a torn write the retry path must clean up).
	// On non-write operations it behaves like FaultTransient.
	FaultShortWrite
	// FaultSyncDrop makes a Sync report success without making the data
	// durable: a later crash loses everything written since the previous
	// effective sync.
	FaultSyncDrop
	// FaultCrash kills the simulated process at this operation: the
	// operation's durable effect is suppressed (writes keep at most a torn,
	// unsynced prefix; renames and removes do not happen), all data written
	// but never effectively synced is torn away, and every subsequent
	// operation fails with ErrCrashed.
	FaultCrash
)

// String renders the mode.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultNoSpace:
		return "nospace"
	case FaultShortWrite:
		return "short-write"
	case FaultSyncDrop:
		return "sync-drop"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// ErrCrashed is returned by every operation after a planned FaultCrash
// fired: the simulated process is dead and can touch nothing.
var ErrCrashed = errors.New("iofs: simulated crash: filesystem frozen")

// errNoSpace is the permanent-failure class.
var errNoSpace = errors.New("injected fault: no space left on device")

// Faulty is a deterministic fault-injecting FS. It forwards to an inner FS
// (in practice OS over a test directory) and consults a plan keyed by the
// 1-based index of each mutating operation — CreateTemp, Write, Sync,
// Close, Rename, Remove, Chtimes. Read-side operations never consume an
// index: they cannot change the disk, so they are not crash points.
//
// Durability model: data written to a temp file becomes durable only at an
// effective (non-dropped) Sync. A FaultCrash truncates every tracked file
// back to its last durable length — adversarially assuming the kernel never
// flushed anything on its own — so tests exercise the worst permitted
// outcome of a real crash, torn files included.
//
// Faulty reaches around the FS interface with os.Truncate to tear files at
// crash time, so the inner FS must be rooted on a real directory.
type Faulty struct {
	inner FS
	plan  map[int]FaultMode

	mu      sync.Mutex
	ops     int
	crashed bool
	// files maps current path -> durable (synced) length for files written
	// through this FS; entries follow renames.
	files map[string]int64
}

var _ FS = (*Faulty)(nil)

// NewFaulty wraps inner with the given fault plan (1-based mutating-op
// index -> mode). A nil plan injects nothing and only counts operations.
func NewFaulty(inner FS, plan map[int]FaultMode) *Faulty {
	return &Faulty{inner: inner, plan: plan, files: make(map[string]int64)}
}

// SeededPlan derives a deterministic random plan from a seed: each of the
// first nOps mutating operations independently draws a fault with
// probability pFault, uniformly among the non-crash modes. Crashes are
// placed explicitly by the chaos sweep, not sampled, so a seeded plan
// exercises the retry/degrade paths without ending the run.
func SeededPlan(seed int64, nOps int, pFault float64) map[int]FaultMode {
	rng := rand.New(rand.NewSource(seed))
	modes := []FaultMode{FaultTransient, FaultNoSpace, FaultShortWrite, FaultSyncDrop}
	plan := make(map[int]FaultMode)
	for i := 1; i <= nOps; i++ {
		if rng.Float64() < pFault {
			plan[i] = modes[rng.Intn(len(modes))]
		}
	}
	return plan
}

// Ops returns the number of mutating operations attempted so far.
func (f *Faulty) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether a planned crash has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// next advances the mutating-op counter and returns the planned fault for
// this operation. Caller holds f.mu.
func (f *Faulty) next() FaultMode {
	f.ops++
	return f.plan[f.ops]
}

// crash tears every tracked file down to its durable length and freezes the
// filesystem. Caller holds f.mu.
func (f *Faulty) crash() {
	f.crashed = true
	for path, synced := range f.files {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		os.Truncate(path, synced)
	}
}

// MkdirAll implements FS. Directory creation happens once at Open, before
// any interesting write sequence; it is not a planned crash point.
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadFile implements FS.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(path)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(path string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(path)
}

// Stat implements FS.
func (f *Faulty) Stat(path string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.inner.Stat(path)
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch f.next() {
	case FaultCrash:
		f.crash()
		return nil, ErrCrashed
	case FaultTransient, FaultShortWrite:
		return nil, fmt.Errorf("creating temp file: %w", ErrTransient)
	case FaultNoSpace:
		return nil, errNoSpace
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	f.files[inner.Name()] = 0
	return &faultyFile{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	switch f.next() {
	case FaultCrash:
		f.crash()
		return ErrCrashed
	case FaultTransient, FaultShortWrite:
		return fmt.Errorf("rename %s: %w", oldpath, ErrTransient)
	case FaultNoSpace:
		return errNoSpace
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	if synced, ok := f.files[oldpath]; ok {
		delete(f.files, oldpath)
		f.files[newpath] = synced
	}
	return nil
}

// Remove implements FS.
func (f *Faulty) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	switch f.next() {
	case FaultCrash:
		f.crash()
		return ErrCrashed
	case FaultTransient, FaultShortWrite:
		return fmt.Errorf("remove %s: %w", path, ErrTransient)
	case FaultNoSpace:
		return errNoSpace
	}
	if err := f.inner.Remove(path); err != nil {
		return err
	}
	delete(f.files, path)
	return nil
}

// Chtimes implements FS.
func (f *Faulty) Chtimes(path string, atime, mtime time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	switch f.next() {
	case FaultCrash:
		f.crash()
		return ErrCrashed
	case FaultTransient, FaultShortWrite:
		return fmt.Errorf("chtimes %s: %w", path, ErrTransient)
	case FaultNoSpace:
		return errNoSpace
	}
	return f.inner.Chtimes(path, atime, mtime)
}

// faultyFile tracks written-vs-durable lengths for the crash model.
type faultyFile struct {
	fs      *Faulty
	inner   File
	written int64
}

// Write implements File.
func (w *faultyFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.crashed {
		return 0, ErrCrashed
	}
	switch w.fs.next() {
	case FaultCrash:
		// Torn write: a prefix reaches the file, then the process dies. The
		// crash model tears it back to the durable length anyway, but the
		// intermediate state exercises the truncation path.
		if n := len(p) / 2; n > 0 {
			w.inner.Write(p[:n])
			w.written += int64(n)
		}
		w.fs.crash()
		return 0, ErrCrashed
	case FaultShortWrite:
		n := len(p) / 2
		if n > 0 {
			w.inner.Write(p[:n])
			w.written += int64(n)
		}
		return n, fmt.Errorf("short write (%d of %d bytes): %w", n, len(p), ErrTransient)
	case FaultTransient:
		return 0, fmt.Errorf("write %s: %w", w.inner.Name(), ErrTransient)
	case FaultNoSpace:
		return 0, errNoSpace
	}
	n, err := w.inner.Write(p)
	w.written += int64(n)
	return n, err
}

// Sync implements File.
func (w *faultyFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.crashed {
		return ErrCrashed
	}
	switch w.fs.next() {
	case FaultCrash:
		w.fs.crash()
		return ErrCrashed
	case FaultSyncDrop:
		// Lie: report success without durability.
		return nil
	case FaultTransient, FaultShortWrite:
		return fmt.Errorf("sync %s: %w", w.inner.Name(), ErrTransient)
	case FaultNoSpace:
		return errNoSpace
	}
	if err := w.inner.Sync(); err != nil {
		return err
	}
	if _, ok := w.fs.files[w.inner.Name()]; ok {
		w.fs.files[w.inner.Name()] = w.written
	}
	return nil
}

// Close implements File. Close alone does not make data durable: only an
// effective Sync advances the durable length.
func (w *faultyFile) Close() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.crashed {
		return ErrCrashed
	}
	switch w.fs.next() {
	case FaultCrash:
		w.fs.crash()
		return ErrCrashed
	case FaultTransient, FaultShortWrite:
		return fmt.Errorf("close %s: %w", w.inner.Name(), ErrTransient)
	case FaultNoSpace:
		return errNoSpace
	}
	return w.inner.Close()
}

// Name implements File.
func (w *faultyFile) Name() string { return w.inner.Name() }
