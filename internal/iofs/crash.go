package iofs

import (
	"io/fs"
	"os"
	"time"
)

// CrashExitCode is the process exit code of a planted crash, distinct from
// the verdict codes (0/1/2) so scripts/chaos.sh can tell "killed at the
// planned write" from every other outcome.
const CrashExitCode = 7

// Crash wraps an FS and hard-kills the process at the Nth mutating
// operation, emulating a power loss or SIGKILL in the middle of cache
// persistence. A Write scheduled to crash first persists a torn prefix of
// its data — adversarially, half the buffer — so the restart faces the
// ugliest file a real kill can leave; every other crashing operation dies
// before taking effect. scripts/chaos.sh drives it through the
// OPENTLA_CACHE_CRASH_AT environment variable (see cache.Flags).
//
// The op counter is intentionally identical to Faulty's: CreateTemp, Write,
// Sync, Close, Rename, Remove, Chtimes each consume one index, reads none,
// so a crash point found by the in-process sweep names the same operation
// in a process-level run.
type Crash struct {
	inner FS
	at    int
	exit  func(int)
	ops   int
}

var _ FS = (*Crash)(nil)

// NewCrash wraps inner to die at mutating operation at (1-based). exit is
// called to terminate (nil = os.Exit with CrashExitCode); tests inject a
// panic instead.
func NewCrash(inner FS, at int, exit func(int)) *Crash {
	if exit == nil {
		exit = os.Exit
	}
	return &Crash{inner: inner, at: at, exit: exit}
}

// Ops returns the number of mutating operations performed so far.
func (c *Crash) Ops() int { return c.ops }

// tick advances the op counter and reports whether this op is the crash
// point. The caller performs any torn-write effect before calling c.exit.
func (c *Crash) tick() bool {
	c.ops++
	return c.ops == c.at
}

func (c *Crash) die() {
	c.exit(CrashExitCode)
	// Injected exit funcs (tests) panic instead of returning; an exit func
	// that returns anyway would let the run continue past its own death.
	panic("iofs: crash exit func returned")
}

// MkdirAll implements FS (not a counted crash point; see Faulty.MkdirAll).
func (c *Crash) MkdirAll(path string, perm fs.FileMode) error {
	return c.inner.MkdirAll(path, perm)
}

// ReadFile implements FS.
func (c *Crash) ReadFile(path string) ([]byte, error) { return c.inner.ReadFile(path) }

// ReadDir implements FS.
func (c *Crash) ReadDir(path string) ([]fs.DirEntry, error) { return c.inner.ReadDir(path) }

// Stat implements FS.
func (c *Crash) Stat(path string) (fs.FileInfo, error) { return c.inner.Stat(path) }

// CreateTemp implements FS.
func (c *Crash) CreateTemp(dir, pattern string) (File, error) {
	if c.tick() {
		c.die()
	}
	f, err := c.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, inner: f}, nil
}

// Rename implements FS.
func (c *Crash) Rename(oldpath, newpath string) error {
	if c.tick() {
		c.die()
	}
	return c.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (c *Crash) Remove(path string) error {
	if c.tick() {
		c.die()
	}
	return c.inner.Remove(path)
}

// Chtimes implements FS.
func (c *Crash) Chtimes(path string, atime, mtime time.Time) error {
	if c.tick() {
		c.die()
	}
	return c.inner.Chtimes(path, atime, mtime)
}

type crashFile struct {
	fs    *Crash
	inner File
}

// Write implements File, leaving a torn prefix when it is the crash point.
func (w *crashFile) Write(p []byte) (int, error) {
	if w.fs.tick() {
		if n := len(p) / 2; n > 0 {
			w.inner.Write(p[:n])
		}
		w.fs.die()
	}
	return w.inner.Write(p)
}

// Sync implements File.
func (w *crashFile) Sync() error {
	if w.fs.tick() {
		w.fs.die()
	}
	return w.inner.Sync()
}

// Close implements File.
func (w *crashFile) Close() error {
	if w.fs.tick() {
		w.fs.die()
	}
	return w.inner.Close()
}

// Name implements File.
func (w *crashFile) Name() string { return w.inner.Name() }
