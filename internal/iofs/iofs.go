// Package iofs is the filesystem seam of the persistence layer. The graph
// cache performs every disk operation through the FS interface, so the same
// code path serves three implementations:
//
//   - OS, the production implementation backed by package os;
//   - Faulty, a deterministic fault injector driven by a seeded plan (write
//     errors, short writes, dropped fsyncs, ENOSPC, rename failures, and
//     crash-after-Nth-op), used by the chaos tests to prove that no I/O
//     failure can corrupt a verdict or permanently wedge the cache;
//   - Crash, which hard-exits the process at a chosen mutating operation,
//     used by scripts/chaos.sh to sweep real process kills over every write
//     of a checkpointed run.
//
// The interface is deliberately minimal: exactly the operations the cache
// needs, nothing speculative. Mutating operations (Create, Write, Sync,
// Close, Rename, Remove) are the crash points of the durability story;
// read-side operations (ReadFile, ReadDir, Stat) can fail but never leave
// the disk in a new state.
package iofs

import (
	"errors"
	"io/fs"
	"os"
	"time"
)

// File is the write handle returned by Create: sequential writes, an
// explicit durability barrier (Sync), and Close. Name reports the path the
// file was created at.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes the file's written data to stable storage. The cache
	// calls it before renaming a temp file into place, so a crash after the
	// rename can never expose an empty or partial entry.
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface of the persistence layer.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadFile returns the full contents of a file.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat describes a file.
	Stat(path string) (fs.FileInfo, error)
	// CreateTemp creates a new unique file in dir (pattern as in
	// os.CreateTemp) open for writing.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// Chtimes sets a file's access and modification times (the cache's LRU
	// recency signal).
	Chtimes(path string, atime, mtime time.Time) error
}

// OS is the production FS, a thin veneer over package os.
type OS struct{}

var _ FS = OS{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// Stat implements FS.
func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Chtimes implements FS.
func (OS) Chtimes(path string, atime, mtime time.Time) error {
	return os.Chtimes(path, atime, mtime)
}

// transientError marks an injected failure that a bounded retry may clear
// (the disk-level analogue of EINTR/EAGAIN). The cache retries operations
// whose errors satisfy IsTransient and gives up on everything else.
type transientError struct{ msg string }

func (e *transientError) Error() string   { return e.msg }
func (e *transientError) Transient() bool { return true }

// ErrTransient is a sentinel transient error for tests.
var ErrTransient error = &transientError{msg: "injected transient I/O error"}

// IsTransient reports whether an error is worth a bounded retry: it (or
// anything it wraps) implements Transient() bool returning true.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}
