// Package state defines states (assignments of values to variables), steps
// (pairs of states), finite behaviors, and lasso representations of infinite
// behaviors, following the semantics of TLA in Abadi & Lamport,
// "Open Systems in TLA" (§2.1).
package state

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"opentla/internal/value"
)

type binding struct {
	name string
	val  value.Value
}

// State is an immutable assignment of values to a finite set of variables.
// In the paper a state assigns values to all variables of the universe; here
// a State mentions only the variables relevant to the systems under check,
// which is sound because every formula we evaluate mentions only those.
//
// Concurrency contract: a State is immutable after construction and safe to
// share across goroutines without synchronization. The only mutable word is
// the lazily cached fingerprint, which is maintained with atomic loads and
// stores (see Fingerprint).
type State struct {
	bindings []binding // sorted by name
	fp       uint64    // lazily cached fingerprint (0 = not yet computed); aglint:atomic
}

// New constructs a state from a variable→value map.
func New(vars map[string]value.Value) *State {
	bs := make([]binding, 0, len(vars))
	for n, v := range vars {
		bs = append(bs, binding{name: n, val: v})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].name < bs[j].name })
	return &State{bindings: bs}
}

// FromPairs constructs a state from alternating name/value pairs, e.g.
// FromPairs("x", value.Int(0), "y", value.True). It panics on a malformed
// argument list; it is intended for tests and example construction.
func FromPairs(pairs ...any) *State {
	if len(pairs)%2 != 0 {
		panic("state.FromPairs: odd number of arguments")
	}
	m := make(map[string]value.Value, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("state.FromPairs: argument %d is not a string", i))
		}
		v, ok := pairs[i+1].(value.Value)
		if !ok {
			panic(fmt.Sprintf("state.FromPairs: argument %d is not a value.Value", i+1))
		}
		m[name] = v
	}
	return New(m)
}

// Get returns the value of variable name. The second result is false if the
// state does not bind name. The binary search is hand-rolled: Get is the
// innermost call of formula evaluation and sort.Search's closure defeats
// inlining.
func (s *State) Get(name string) (value.Value, bool) {
	lo, hi := 0, len(s.bindings)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.bindings[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.bindings) && s.bindings[lo].name == name {
		return s.bindings[lo].val, true
	}
	return value.Value{}, false
}

// At returns the value at binding position i in the state's sorted name
// order — the positional dual of Get, used by compiled expression
// evaluation (form.CompilePred) after positions are resolved once against
// a fixed variable layout. The caller must ensure 0 <= i < Len().
func (s *State) At(i int) value.Value { return s.bindings[i].val }

// MustGet returns the value of variable name and panics if unbound. Use in
// contexts where the variable set has been validated.
func (s *State) MustGet(name string) value.Value {
	v, ok := s.Get(name)
	if !ok {
		panic(fmt.Sprintf("state: variable %q unbound", name))
	}
	return v
}

// With returns a new state equal to s except that name is bound to v.
func (s *State) With(name string, v value.Value) *State {
	out := make([]binding, 0, len(s.bindings)+1)
	inserted := false
	for _, b := range s.bindings {
		switch {
		case b.name == name:
			out = append(out, binding{name: name, val: v})
			inserted = true
		case !inserted && b.name > name:
			out = append(out, binding{name: name, val: v}, b)
			inserted = true
		default:
			out = append(out, b)
		}
	}
	if !inserted {
		out = append(out, binding{name: name, val: v})
	}
	return &State{bindings: out}
}

// WithAll returns a new state equal to s with every binding in updates
// applied. Existing bindings are replaced; new names are inserted in order.
func (s *State) WithAll(updates map[string]value.Value) *State {
	if len(updates) == 0 {
		return s
	}
	news := make([]binding, 0, len(updates))
	for n, v := range updates {
		news = append(news, binding{name: n, val: v})
	}
	sort.Slice(news, func(i, j int) bool { return news[i].name < news[j].name })
	out := make([]binding, 0, len(s.bindings)+len(news))
	i, j := 0, 0
	for i < len(s.bindings) && j < len(news) {
		switch {
		case s.bindings[i].name < news[j].name:
			out = append(out, s.bindings[i])
			i++
		case s.bindings[i].name > news[j].name:
			out = append(out, news[j])
			j++
		default:
			out = append(out, news[j])
			i++
			j++
		}
	}
	out = append(out, s.bindings[i:]...)
	out = append(out, news[j:]...)
	return &State{bindings: out}
}

// PosUpdate assigns Val to the binding at index Pos in a state's sorted
// binding order (see PosOf). Positional updates let the successor generator
// build candidate states with a single slice copy instead of repeated
// map-merge-sort passes.
type PosUpdate struct {
	Pos int
	Val value.Value
}

// PosOf returns the index of name within the state's sorted bindings, for
// use with CloneWith.
func (s *State) PosOf(name string) (int, bool) {
	lo, hi := 0, len(s.bindings)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.bindings[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.bindings) && s.bindings[lo].name == name {
		return lo, true
	}
	return -1, false
}

// CloneWith returns a copy of s with every update group applied in order.
// Groups may be nil or empty; positions must come from PosOf on a state
// with the same variable set. Unlike WithAll it cannot introduce new
// variables — it only reassigns existing ones.
func (s *State) CloneWith(groups ...[]PosUpdate) *State {
	bs := make([]binding, len(s.bindings))
	copy(bs, s.bindings)
	for _, g := range groups {
		for _, u := range g {
			bs[u.Pos].val = u.Val
		}
	}
	return &State{bindings: bs}
}

// OverwriteInto copies s's bindings into dst (reusing its capacity), applies
// the update groups, and invalidates dst's cached fingerprint. It exists so
// successor enumeration can evaluate millions of candidate states against a
// single scratch State instead of allocating one per candidate; dst must be
// goroutine-local and must not escape while being reused — materialize an
// accepted candidate with Clone.
func (s *State) OverwriteInto(dst *State, groups ...[]PosUpdate) {
	if cap(dst.bindings) < len(s.bindings) {
		dst.bindings = make([]binding, len(s.bindings))
	}
	dst.bindings = dst.bindings[:len(s.bindings)]
	copy(dst.bindings, s.bindings)
	for _, g := range groups {
		for _, u := range g {
			dst.bindings[u.Pos].val = u.Val
		}
	}
	atomic.StoreUint64(&dst.fp, 0)
}

// Clone returns an immutable snapshot of s, preserving the cached
// fingerprint. It materializes a scratch state (see OverwriteInto) into one
// that may be shared and retained.
func (s *State) Clone() *State {
	bs := make([]binding, len(s.bindings))
	copy(bs, s.bindings)
	return &State{bindings: bs, fp: atomic.LoadUint64(&s.fp)}
}

// Restrict returns the state containing only the named variables (those of
// them that s binds).
func (s *State) Restrict(names []string) *State {
	m := make(map[string]value.Value, len(names))
	for _, n := range names {
		if v, ok := s.Get(n); ok {
			m[n] = v
		}
	}
	return New(m)
}

// Drop returns the state without the named variables.
func (s *State) Drop(names []string) *State {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	m := make(map[string]value.Value, len(s.bindings))
	for _, b := range s.bindings {
		if !drop[b.name] {
			m[b.name] = b.val
		}
	}
	return New(m)
}

// Vars returns the sorted variable names bound by s.
func (s *State) Vars() []string {
	out := make([]string, len(s.bindings))
	for i, b := range s.bindings {
		out[i] = b.name
	}
	return out
}

// Map returns a fresh map copy of the bindings.
func (s *State) Map() map[string]value.Value {
	m := make(map[string]value.Value, len(s.bindings))
	for _, b := range s.bindings {
		m[b.name] = b.val
	}
	return m
}

// Len returns the number of bound variables.
func (s *State) Len() int { return len(s.bindings) }

// Equal reports whether s and t bind the same variables to equal values.
func (s *State) Equal(t *State) bool {
	if s == t {
		return true
	}
	if s == nil || t == nil || len(s.bindings) != len(t.bindings) {
		return false
	}
	for i := range s.bindings {
		if s.bindings[i].name != t.bindings[i].name || !s.bindings[i].val.Equal(t.bindings[i].val) {
			return false
		}
	}
	return true
}

// EqualOn reports whether s and t agree on every variable in names.
// Variables unbound in both states are considered in agreement.
func (s *State) EqualOn(t *State, names []string) bool {
	for _, n := range names {
		sv, sok := s.Get(n)
		tv, tok := t.Get(n)
		if sok != tok {
			return false
		}
		if sok && !sv.Equal(tv) {
			return false
		}
	}
	return true
}

// Fingerprint returns the 64-bit hash of the state, computed lazily and
// cached. It is safe for concurrent use: states are shared across the
// worker goroutines of the parallel frontier exploration, so the cache word
// is read and written atomically. Racing callers may each compute the
// (identical, deterministic) hash; whichever store lands last is the same
// value, so no caller ever observes a torn or stale fingerprint.
func (s *State) Fingerprint() uint64 {
	if fp := atomic.LoadUint64(&s.fp); fp != 0 {
		return fp
	}
	fp := s.computeFingerprint()
	if fp == 0 {
		fp = 1 // reserve 0 as the "not yet computed" sentinel
	}
	atomic.StoreUint64(&s.fp, fp)
	return fp
}

// FNV-1a 64-bit constants; the hash is unrolled by hand because this is the
// hottest function of graph exploration and hash/fnv's interface-based
// Writer both allocates and defeats inlining. The byte stream (and hence
// every fingerprint) is identical to the previous hash/fnv implementation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (s *State) computeFingerprint() uint64 {
	h := uint64(fnvOffset64)
	for _, b := range s.bindings {
		for i := 0; i < len(b.name); i++ {
			h = (h ^ uint64(b.name[i])) * fnvPrime64
		}
		h = (h ^ '=') * fnvPrime64
		f := b.val.Fingerprint()
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(f>>(8*i)))) * fnvPrime64
		}
		h = (h ^ ';') * fnvPrime64
	}
	return h
}

// Key returns a canonical string key for the state, usable as a map key
// with no collision risk (unlike Fingerprint).
func (s *State) Key() string {
	var sb strings.Builder
	for _, b := range s.bindings {
		sb.WriteString(b.name)
		sb.WriteByte('=')
		sb.WriteString(b.val.String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// String renders the state as [x=1 y=TRUE ...].
func (s *State) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, b := range s.bindings {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(b.name)
		sb.WriteByte('=')
		sb.WriteString(b.val.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// Step is a pair of states ⟨From, To⟩. An action is true or false of a
// step, with primed variables referring to To (§2.1).
type Step struct {
	From *State
	To   *State
}

// Stutters reports whether the step leaves every variable in names
// unchanged (a ⟨names⟩-stuttering step).
func (p Step) Stutters(names []string) bool { return p.From.EqualOn(p.To, names) }

// String renders the step.
func (p Step) String() string { return p.From.String() + " -> " + p.To.String() }
