package state

import (
	"sync"
	"testing"
	"testing/quick"

	"opentla/internal/value"
)

func s(pairs ...any) *State { return FromPairs(pairs...) }

func TestGetAndVars(t *testing.T) {
	st := s("y", value.Int(2), "x", value.Int(1))
	if v, ok := st.Get("x"); !ok || !v.Equal(value.Int(1)) {
		t.Error("Get(x) failed")
	}
	if _, ok := st.Get("z"); ok {
		t.Error("Get(z) should fail")
	}
	vars := st.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v (should be sorted)", vars)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on unbound variable should panic")
		}
	}()
	s("x", value.Int(1)).MustGet("nope")
}

func TestWith(t *testing.T) {
	base := s("b", value.Int(2), "d", value.Int(4))
	// Replace existing.
	st := base.With("b", value.Int(9))
	if !st.MustGet("b").Equal(value.Int(9)) {
		t.Error("With replace failed")
	}
	// Insert before, between, after.
	for _, name := range []string{"a", "c", "e"} {
		st := base.With(name, value.Int(7))
		if !st.MustGet(name).Equal(value.Int(7)) {
			t.Errorf("With insert %q failed: %s", name, st)
		}
		if st.Len() != 3 {
			t.Errorf("With insert %q: Len = %d", name, st.Len())
		}
		vars := st.Vars()
		for i := 1; i < len(vars); i++ {
			if vars[i-1] >= vars[i] {
				t.Errorf("With insert %q: unsorted %v", name, vars)
			}
		}
	}
	// Original untouched.
	if !base.MustGet("b").Equal(value.Int(2)) {
		t.Error("With mutated the original")
	}
}

func TestWithAll(t *testing.T) {
	base := s("a", value.Int(1), "c", value.Int(3))
	st := base.WithAll(map[string]value.Value{
		"a": value.Int(10),
		"b": value.Int(20),
		"d": value.Int(40),
	})
	want := s("a", value.Int(10), "b", value.Int(20), "c", value.Int(3), "d", value.Int(40))
	if !st.Equal(want) {
		t.Fatalf("WithAll = %s, want %s", st, want)
	}
	if got := base.WithAll(nil); got != base {
		t.Error("WithAll(nil) should return the receiver")
	}
}

// TestWithAllMatchesMapRebuild property-checks the merge-based WithAll
// against the naive map-based construction.
func TestWithAllMatchesMapRebuild(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	pick := func(vals []uint8, i int) int64 {
		if len(vals) == 0 {
			return 0
		}
		return int64(vals[i%len(vals)] % 4)
	}
	f := func(baseVals, upVals []uint8, upMask uint8) bool {
		base := make(map[string]value.Value)
		for i, n := range names {
			base[n] = value.Int(pick(baseVals, i))
		}
		st := New(base)
		updates := make(map[string]value.Value)
		for i, n := range names {
			if upMask&(1<<i) != 0 {
				updates[n+"x"] = value.Int(pick(upVals, i))
				updates[n] = value.Int(pick(upVals, i))
			}
		}
		got := st.WithAll(updates)
		for k, v := range updates {
			base[k] = v
		}
		return got.Equal(New(base))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRestrictAndDrop(t *testing.T) {
	st := s("x", value.Int(1), "y", value.Int(2), "z", value.Int(3))
	r := st.Restrict([]string{"x", "z", "missing"})
	if r.Len() != 2 || !r.MustGet("z").Equal(value.Int(3)) {
		t.Errorf("Restrict = %s", r)
	}
	d := st.Drop([]string{"y"})
	if d.Len() != 2 {
		t.Errorf("Drop = %s", d)
	}
	if _, ok := d.Get("y"); ok {
		t.Error("Drop left y")
	}
}

func TestEqualOn(t *testing.T) {
	a := s("x", value.Int(1), "y", value.Int(2))
	b := s("x", value.Int(1), "y", value.Int(9))
	if !a.EqualOn(b, []string{"x"}) {
		t.Error("EqualOn x should hold")
	}
	if a.EqualOn(b, []string{"x", "y"}) {
		t.Error("EqualOn x,y should fail")
	}
	if !a.EqualOn(b, []string{"absent"}) {
		t.Error("EqualOn absent-in-both should hold")
	}
	c := s("x", value.Int(1))
	if a.EqualOn(c, []string{"y"}) {
		t.Error("EqualOn with var bound on one side only should fail")
	}
}

func TestFingerprintAndKey(t *testing.T) {
	a := s("x", value.Int(1), "y", value.Int(2))
	b := s("y", value.Int(2), "x", value.Int(1))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint should be order-independent")
	}
	if a.Key() != b.Key() {
		t.Error("key should be order-independent")
	}
	c := s("x", value.Int(2), "y", value.Int(1))
	if a.Key() == c.Key() {
		t.Error("different states share a key")
	}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal misbehaves")
	}
}

func TestStepStutters(t *testing.T) {
	a := s("x", value.Int(1), "y", value.Int(2))
	b := a.With("y", value.Int(3))
	step := Step{From: a, To: b}
	if !step.Stutters([]string{"x"}) {
		t.Error("x unchanged")
	}
	if step.Stutters([]string{"x", "y"}) {
		t.Error("y changed")
	}
}

func TestLassoIndexing(t *testing.T) {
	s0 := s("x", value.Int(0))
	s1 := s("x", value.Int(1))
	s2 := s("x", value.Int(2))
	l, err := NewLasso([]*State{s0}, []*State{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	want := []*State{s0, s1, s2, s1, s2, s1}
	for i, w := range want {
		if !l.At(i).Equal(w) {
			t.Errorf("At(%d) = %s, want %s", i, l.At(i), w)
		}
	}
	if l.Horizon() != 3 {
		t.Errorf("Horizon = %d", l.Horizon())
	}
	steps := l.CycleSteps()
	if len(steps) != 2 {
		t.Fatalf("CycleSteps: %d", len(steps))
	}
	if !steps[1].To.Equal(s1) {
		t.Error("cycle wrap-around step wrong")
	}
	fp := l.FinitePrefix(5)
	if len(fp) != 5 || !fp[4].Equal(s2) {
		t.Errorf("FinitePrefix = %v", fp)
	}
}

func TestNewLassoRejectsEmptyCycle(t *testing.T) {
	if _, err := NewLasso(nil, nil); err == nil {
		t.Error("empty cycle should be rejected")
	}
}

func TestStutterLasso(t *testing.T) {
	s0 := s("x", value.Int(0))
	l := StutterLasso(nil, s0)
	if l.CycleLen() != 1 || !l.At(7).Equal(s0) {
		t.Error("StutterLasso misbehaves")
	}
}

func TestBehaviorHelpers(t *testing.T) {
	b := Behavior{s("x", value.Int(0)), s("x", value.Int(1)), s("x", value.Int(2))}
	if len(b.Prefix(2)) != 2 || len(b.Prefix(9)) != 3 {
		t.Error("Prefix misbehaves")
	}
	var steps int
	b.Steps(func(i int, st Step) bool {
		steps++
		return true
	})
	if steps != 2 {
		t.Errorf("Steps visited %d", steps)
	}
	steps = 0
	b.Steps(func(i int, st Step) bool {
		steps++
		return false
	})
	if steps != 1 {
		t.Error("Steps should stop early")
	}
}

// TestFingerprintConcurrent exercises the atomic lazy-cache contract: many
// goroutines racing to fingerprint the same fresh state must all observe the
// same nonzero value. Run with -race.
func TestFingerprintConcurrent(t *testing.T) {
	for round := 0; round < 50; round++ {
		st := s("x", value.Int(int64(round)), "y", value.True)
		const goroutines = 8
		got := make([]uint64, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got[g] = st.Fingerprint()
			}(g)
		}
		wg.Wait()
		for g := 1; g < goroutines; g++ {
			if got[g] != got[0] || got[g] == 0 {
				t.Fatalf("round %d: inconsistent fingerprints %v", round, got)
			}
		}
	}
}
