package state

import (
	"fmt"
	"strings"
)

// Behavior is a finite sequence of states — a "finite behavior" in the
// paper's terminology (§2.4). Infinite behaviors are represented by Lasso.
type Behavior []*State

// String renders the behavior one state per line.
func (b Behavior) String() string {
	var sb strings.Builder
	for i, s := range b {
		fmt.Fprintf(&sb, "%3d: %s\n", i, s)
	}
	return sb.String()
}

// Prefix returns the first n states of b (all of b if n exceeds its length).
func (b Behavior) Prefix(n int) Behavior {
	if n > len(b) {
		n = len(b)
	}
	return b[:n]
}

// Steps calls f for each consecutive step of the behavior, stopping early
// if f returns false.
func (b Behavior) Steps(f func(i int, step Step) bool) {
	for i := 0; i+1 < len(b); i++ {
		if !f(i, Step{From: b[i], To: b[i+1]}) {
			return
		}
	}
}

// Lasso is an eventually-periodic infinite behavior: the states of Prefix
// followed by the states of Cycle repeated forever. Cycle must be nonempty;
// the behavior is
//
//	Prefix[0] … Prefix[p-1] Cycle[0] … Cycle[c-1] Cycle[0] … Cycle[c-1] …
//
// A purely periodic behavior has an empty Prefix. Lassos suffice for
// explicit-state model checking: a finite-state system violates a TLA
// property iff some lasso of its state graph does.
type Lasso struct {
	Prefix []*State
	Cycle  []*State
}

// NewLasso constructs a lasso, validating that the cycle is nonempty.
func NewLasso(prefix, cycle []*State) (*Lasso, error) {
	if len(cycle) == 0 {
		return nil, fmt.Errorf("lasso: empty cycle")
	}
	p := make([]*State, len(prefix))
	copy(p, prefix)
	c := make([]*State, len(cycle))
	copy(c, cycle)
	return &Lasso{Prefix: p, Cycle: c}, nil
}

// StutterLasso returns the behavior that reaches s and stutters there
// forever — the simplest infinite extension of any finite behavior.
func StutterLasso(prefix []*State, s *State) *Lasso {
	l, err := NewLasso(prefix, []*State{s})
	if err != nil {
		panic("state: StutterLasso constructed empty cycle") // unreachable
	}
	return l
}

// At returns the i-th state (0-based) of the infinite behavior.
func (l *Lasso) At(i int) *State {
	if i < len(l.Prefix) {
		return l.Prefix[i]
	}
	j := (i - len(l.Prefix)) % len(l.Cycle)
	return l.Cycle[j]
}

// StepAt returns the i-th step ⟨At(i), At(i+1)⟩.
func (l *Lasso) StepAt(i int) Step { return Step{From: l.At(i), To: l.At(i + 1)} }

// PrefixLen returns the length of the non-repeating prefix.
func (l *Lasso) PrefixLen() int { return len(l.Prefix) }

// CycleLen returns the period of the repeating part.
func (l *Lasso) CycleLen() int { return len(l.Cycle) }

// Horizon returns the number of leading states after which the behavior's
// suffix structure repeats exactly: len(Prefix) + len(Cycle). Evaluating a
// stutter-insensitive temporal operator only requires examining states and
// steps up to index Horizon (steps up to Horizon wrap back into the cycle).
func (l *Lasso) Horizon() int { return len(l.Prefix) + len(l.Cycle) }

// CycleStates returns the set of states occurring infinitely often.
func (l *Lasso) CycleStates() []*State {
	out := make([]*State, len(l.Cycle))
	copy(out, l.Cycle)
	return out
}

// CycleSteps returns the steps occurring infinitely often: each consecutive
// pair within the cycle, including the wrap-around step.
func (l *Lasso) CycleSteps() []Step {
	n := len(l.Cycle)
	out := make([]Step, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Step{From: l.Cycle[i], To: l.Cycle[(i+1)%n]})
	}
	return out
}

// FinitePrefix returns the first n states of the infinite behavior as a
// finite Behavior.
func (l *Lasso) FinitePrefix(n int) Behavior {
	out := make(Behavior, n)
	for i := 0; i < n; i++ {
		out[i] = l.At(i)
	}
	return out
}

// String renders the lasso, marking where the cycle begins.
func (l *Lasso) String() string {
	var sb strings.Builder
	for i, s := range l.Prefix {
		fmt.Fprintf(&sb, "%3d: %s\n", i, s)
	}
	sb.WriteString("  -- cycle --\n")
	for i, s := range l.Cycle {
		fmt.Fprintf(&sb, "%3d: %s\n", len(l.Prefix)+i, s)
	}
	return sb.String()
}
