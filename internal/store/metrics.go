package store

import (
	"strconv"
	"sync/atomic"

	"opentla/internal/metrics"
)

// Metrics counts the interner's lock behavior and collision probes for the
// performance-telemetry layer. The exploration attaches one per Store via
// SetMetrics; with none attached the hot paths pay a single atomic pointer
// load and branch (the "nil fast path" the telemetry overhead gate pins).
//
// Three totals are kept:
//
//   - lock acquisitions: every time a shard mutex is taken (Intern, batch
//     shard visits, Lookup, State);
//   - contended acquisitions: those where TryLock failed and the caller had
//     to block — the direct measure of shard contention, attributed
//     per-shard so a skewed fingerprint distribution is visible;
//   - collision probes: structural-equality comparisons inside buckets, the
//     price of fingerprint collisions (and of dedup hits, which probe once).
type Metrics struct {
	acquisitions *metrics.Counter
	contended    *metrics.Counter
	probes       *metrics.Counter
	reg          *metrics.Registry
	perShard     [numShards]atomic.Int64
}

// NewMetrics returns store metrics registered in reg, or nil for a nil
// registry (nil *Metrics disables all counting).
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		acquisitions: reg.Counter("opentla_store_lock_acquisitions_total",
			"store shard-lock acquisitions"),
		contended: reg.Counter("opentla_store_lock_contended_total",
			"store shard-lock acquisitions that had to block"),
		probes: reg.Counter("opentla_store_collision_probes_total",
			"structural-equality probes inside fingerprint buckets"),
		reg: reg,
	}
}

// Flush exports the per-shard contention breakdown as labeled counters,
// skipping shards that never contended so the report stays readable.
// Call after exploration finishes; safe on a nil receiver.
func (sm *Metrics) Flush() {
	if sm == nil {
		return
	}
	for i := range sm.perShard {
		if n := sm.perShard[i].Swap(0); n > 0 {
			sm.reg.LabeledCounter("opentla_store_lock_contended_total",
				"store shard-lock acquisitions that had to block",
				"shard", strconv.Itoa(i)).Add(n)
		}
	}
}

// SetMetrics attaches (or, with nil, detaches) contention counting. Safe to
// call concurrently with interning, though the intended use is once, before
// the exploration starts.
func (st *Store) SetMetrics(sm *Metrics) { st.metrics.Store(sm) }

// lock takes a shard's mutex, counting the acquisition and — when TryLock
// fails — the contention, if metrics are attached. The disabled path is one
// atomic load and branch.
func (st *Store) lock(sh *shard, shardIdx uint64) {
	sm := st.metrics.Load()
	if sm == nil {
		sh.mu.Lock()
		return
	}
	sm.acquisitions.Inc()
	if sh.mu.TryLock() {
		return
	}
	sm.contended.Inc()
	sm.perShard[shardIdx].Add(1)
	sh.mu.Lock()
}

// addProbes records n structural-equality probes, if metrics are attached.
func (st *Store) addProbes(n int64) {
	if n == 0 {
		return
	}
	if sm := st.metrics.Load(); sm != nil {
		sm.probes.Add(n)
	}
}
