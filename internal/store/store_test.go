package store

import (
	"fmt"
	"sync"
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

func mkState(x int64) *state.State {
	return state.FromPairs("x", value.Int(x))
}

func mkState2(x, y int64) *state.State {
	return state.FromPairs("x", value.Int(x), "y", value.Int(y))
}

func TestInternDedupes(t *testing.T) {
	st := New()
	a := mkState(1)
	b := mkState(1) // distinct object, equal state
	refA, added := st.Intern(a)
	if !added {
		t.Fatal("first intern should add")
	}
	refB, added := st.Intern(b)
	if added {
		t.Fatal("second intern of an equal state should not add")
	}
	if refA != refB {
		t.Fatalf("refs differ: %v vs %v", refA, refB)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if got := st.State(refA); !got.Equal(a) {
		t.Fatalf("State(ref) = %v, want %v", got, a)
	}
	if _, ok := st.Lookup(mkState(1)); !ok {
		t.Error("Lookup should find the interned state")
	}
	if _, ok := st.Lookup(mkState(2)); ok {
		t.Error("Lookup should miss an un-interned state")
	}
}

// TestCollisionFallback injects a degenerate hash so every state collides,
// proving dedup falls back to structural equality: distinct states sharing a
// fingerprint must never be merged.
func TestCollisionFallback(t *testing.T) {
	constant := func(*state.State) uint64 { return 42 }
	st := NewWithHash(constant)
	const n = 20
	refs := make(map[Ref]int64)
	for i := int64(0); i < n; i++ {
		ref, added := st.Intern(mkState(i))
		if !added {
			t.Fatalf("state x=%d should be new despite the colliding hash", i)
		}
		refs[ref] = i
	}
	if len(refs) != n {
		t.Fatalf("got %d distinct refs, want %d", len(refs), n)
	}
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
	// Every ref resolves to the exact state that produced it.
	for ref, x := range refs {
		if got := st.State(ref); !got.Equal(mkState(x)) {
			t.Errorf("ref of x=%d resolves to %v", x, got)
		}
	}
	// Re-interning any of them still dedups.
	for i := int64(0); i < n; i++ {
		if _, added := st.Intern(mkState(i)); added {
			t.Errorf("re-intern of x=%d should not add", i)
		}
	}
}

// TestConcurrentIntern hammers one store from many goroutines interning
// overlapping states: exactly one goroutine must win each state, all refs
// must agree, and the final count must be exact. Run with -race.
func TestConcurrentIntern(t *testing.T) {
	st := New()
	const (
		goroutines = 8
		distinct   = 500
	)
	wins := make([][]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wins[g] = make([]bool, distinct)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < distinct; i++ {
				_, added := st.Intern(mkState2(int64(i), int64(i%7)))
				wins[g][i] = added
			}
		}(g)
	}
	wg.Wait()
	if st.Len() != distinct {
		t.Fatalf("Len = %d, want %d", st.Len(), distinct)
	}
	for i := 0; i < distinct; i++ {
		winners := 0
		for g := 0; g < goroutines; g++ {
			if wins[g][i] {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("state %d has %d winners, want exactly 1", i, winners)
		}
	}
	// All goroutines observe the same ref for the same state.
	for i := 0; i < distinct; i++ {
		s := mkState2(int64(i), int64(i%7))
		ref1, _ := st.Lookup(s)
		ref2, added := st.Intern(s)
		if added || ref1 != ref2 {
			t.Fatalf("state %d: inconsistent refs after concurrent intern", i)
		}
	}
}

func TestIndexCollisions(t *testing.T) {
	ix := NewIndexWithHash(func(*state.State) uint64 { return 7 })
	for i := int64(0); i < 10; i++ {
		ix.Put(mkState(i), int(i))
	}
	if ix.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ix.Len())
	}
	for i := int64(0); i < 10; i++ {
		id, ok := ix.Get(mkState(i))
		if !ok || id != int(i) {
			t.Errorf("Get(x=%d) = %d,%v; want %d,true", i, id, ok, i)
		}
	}
	if _, ok := ix.Get(mkState(99)); ok {
		t.Error("Get of an absent state should miss even with a colliding hash")
	}
}

func TestSet(t *testing.T) {
	se := NewSet()
	if !se.Add(mkState(1)) {
		t.Error("first Add should report new")
	}
	if se.Add(mkState(1)) {
		t.Error("second Add of an equal state should report existing")
	}
	if !se.Has(mkState(1)) || se.Has(mkState(2)) {
		t.Error("membership wrong")
	}
	if se.Len() != 1 {
		t.Fatalf("Len = %d, want 1", se.Len())
	}
	// Colliding hash keeps distinct states distinct.
	sc := NewSetWithHash(func(*state.State) uint64 { return 0 })
	for i := int64(0); i < 5; i++ {
		if !sc.Add(mkState(i)) {
			t.Fatalf("colliding Add of x=%d should be new", i)
		}
	}
	if sc.Len() != 5 {
		t.Fatalf("colliding set Len = %d, want 5", sc.Len())
	}
}

func TestRefPacksShardAndSlot(t *testing.T) {
	st := New()
	// Enough states to populate many shards and multiple slots per shard.
	for i := int64(0); i < 1000; i++ {
		ref, added := st.Intern(mkState(i))
		if !added {
			t.Fatalf("x=%d should be new", i)
		}
		if got := st.State(ref); !got.Equal(mkState(i)) {
			t.Fatalf("round-trip of x=%d through Ref %v yields %v", i, ref, got)
		}
	}
	if st.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", st.Len())
	}
}

func ExampleStore_Intern() {
	st := New()
	s := state.FromPairs("x", value.Int(3))
	_, added := st.Intern(s)
	_, addedAgain := st.Intern(state.FromPairs("x", value.Int(3)))
	fmt.Println(added, addedAgain, st.Len())
	// Output: true false 1
}
