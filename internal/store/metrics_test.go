package store

import (
	"sync"
	"testing"

	"opentla/internal/metrics"
	"opentla/internal/state"
	"opentla/internal/value"
)

// mkNamed builds a one-variable state with a chosen name, so tests control
// which states are structurally distinct.
func mkNamed(name string, v int64) *state.State {
	return state.FromPairs(name, value.Int(v))
}

func metricValue(t *testing.T, reg *metrics.Registry, name, labels string) int64 {
	t.Helper()
	for _, p := range reg.Snapshot() {
		if p.Name == name && p.Labels == labels {
			return p.Value
		}
	}
	return 0
}

func TestMetricsCountAcquisitionsAndProbes(t *testing.T) {
	reg := metrics.NewRegistry()
	st := New()
	st.SetMetrics(NewMetrics(reg))

	a := mkNamed("a", 1)
	b := mkNamed("b", 2)
	st.Intern(a) // 1 acquisition, 0 probes (empty bucket)
	st.Intern(a) // 1 acquisition, 1 probe (dedup hit)
	st.Intern(b) // 1 acquisition

	if got := metricValue(t, reg, "opentla_store_lock_acquisitions_total", ""); got != 3 {
		t.Fatalf("acquisitions = %d, want 3", got)
	}
	if got := metricValue(t, reg, "opentla_store_collision_probes_total", ""); got != 1 {
		t.Fatalf("probes = %d, want 1", got)
	}
}

func TestMetricsCollisionProbesOnCollidingHash(t *testing.T) {
	reg := metrics.NewRegistry()
	st := NewWithHash(func(*state.State) uint64 { return 42 })
	st.SetMetrics(NewMetrics(reg))
	for i := 0; i < 4; i++ {
		st.Intern(mkNamed("x", int64(i)))
	}
	// Interning the i-th distinct state probes the i earlier entries:
	// 0+1+2+3 = 6.
	if got := metricValue(t, reg, "opentla_store_collision_probes_total", ""); got != 6 {
		t.Fatalf("probes = %d, want 6", got)
	}
	if st.Len() != 4 {
		t.Fatalf("collisions must not merge distinct states: len=%d", st.Len())
	}
}

func TestMetricsBatchCountsOnce(t *testing.T) {
	reg := metrics.NewRegistry()
	st := NewWithHash(func(*state.State) uint64 { return 7 }) // one shard, one bucket
	st.SetMetrics(NewMetrics(reg))
	batch := []*state.State{mkNamed("x", 1), mkNamed("x", 2), mkNamed("x", 1)}
	fps := make([]uint64, 3)
	refs := make([]Ref, 3)
	added := make([]bool, 3)
	st.InternBatch(batch, fps, refs, added)
	// Everything maps to one shard: the lock is taken once per batch.
	if got := metricValue(t, reg, "opentla_store_lock_acquisitions_total", ""); got != 1 {
		t.Fatalf("acquisitions = %d, want 1 (one shard visit per batch)", got)
	}
	if refs[0] != refs[2] || !added[0] || added[2] {
		t.Fatalf("batch dedup semantics broke: refs=%v added=%v", refs, added)
	}
}

func TestMetricsContentionAndFlush(t *testing.T) {
	reg := metrics.NewRegistry()
	st := NewWithHash(func(*state.State) uint64 { return 3 }) // all states → shard 3
	sm := NewMetrics(reg)
	st.SetMetrics(sm)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st.Intern(mkNamed("v", int64(g*1000+i)))
			}
		}(g)
	}
	wg.Wait()
	sm.Flush()

	total := metricValue(t, reg, "opentla_store_lock_contended_total", "")
	perShard := metricValue(t, reg, "opentla_store_lock_contended_total", `shard="3"`)
	if total != perShard {
		t.Fatalf("single-shard contention must attribute to shard 3: total=%d shard3=%d", total, perShard)
	}
	if got := metricValue(t, reg, "opentla_store_lock_acquisitions_total", ""); got != goroutines*500 {
		t.Fatalf("acquisitions = %d, want %d", got, goroutines*500)
	}
	// Flush drains the per-shard counters; a second flush adds nothing.
	sm.Flush()
	if again := metricValue(t, reg, "opentla_store_lock_contended_total", `shard="3"`); again != perShard {
		t.Fatalf("double flush must not double-count: %d vs %d", again, perShard)
	}
}

func TestNilMetricsPathUnchanged(t *testing.T) {
	st := New() // no SetMetrics: every operation runs the nil fast path
	var refs []Ref
	for i := 0; i < 100; i++ {
		r, added := st.Intern(mkNamed("k", int64(i)))
		if !added {
			t.Fatalf("state %d should be new", i)
		}
		refs = append(refs, r)
	}
	if _, ok := st.Lookup(mkNamed("k", 50)); !ok {
		t.Fatalf("lookup must find interned state")
	}
	if st.Len() != 100 {
		t.Fatalf("len = %d, want 100", st.Len())
	}
	// Detach/attach round trip keeps working.
	reg := metrics.NewRegistry()
	st.SetMetrics(NewMetrics(reg))
	st.SetMetrics(nil)
	if _, ok := st.Lookup(mkNamed("k", 51)); !ok {
		t.Fatalf("lookup after detach must still work")
	}
	_ = refs
}
