// Package store provides interned-state storage for explicit-state model
// checking: states are deduplicated by their 64-bit fingerprint with
// collision-verified structural equality, so the string serialization
// state.Key() never enters a hot path (it survives only in diagnostics and
// golden files).
//
// Two families of containers are provided:
//
//   - Store: a sharded, concurrency-safe interner used by the parallel
//     frontier exploration of package ts. Interning returns a stable Ref;
//     many goroutines may intern concurrently and exactly one of them is
//     told a given state was new.
//   - Index and Set: single-goroutine fingerprint-keyed id maps and
//     membership sets for the sequential portions of the checker
//     (successor dedup, generator audits, final graph lookup).
//
// All containers fall back to structural equality (state.Equal) when two
// distinct states share a fingerprint, so a 64-bit collision can never
// merge distinct states — the failure mode that silently truncates state
// graphs in fingerprint-only checkers.
package store

import (
	"sync"
	"sync/atomic"

	"opentla/internal/state"
)

// shardBits is log2 of the shard count. 64 shards keeps lock contention
// negligible for worker pools up to a few dozen goroutines.
const (
	shardBits = 6
	numShards = 1 << shardBits
	shardMask = numShards - 1
)

// Ref is an opaque handle to an interned state, stable for the lifetime of
// its Store. Refs order is an implementation detail (arrival order within a
// shard); deterministic numbering is the caller's concern.
type Ref uint64

// Hash maps a state to its dedup fingerprint. The default is
// (*state.State).Fingerprint; tests inject degenerate hashes to exercise
// the collision path.
type Hash func(*state.State) uint64

type entry struct {
	st  *state.State
	ref Ref
}

type shard struct {
	mu      sync.Mutex
	buckets map[uint64][]entry
	states  []*state.State // slot-indexed backing store for Ref resolution
}

// Store is a sharded, concurrency-safe interned-state store.
type Store struct {
	hash    Hash
	count   atomic.Int64
	metrics atomic.Pointer[Metrics] // nil unless telemetry attached (SetMetrics)
	shards  [numShards]shard
}

// New returns an empty store deduplicating by state.Fingerprint.
func New() *Store { return NewWithHash(nil) }

// NewWithHash returns an empty store deduplicating by the given hash (nil
// means state.Fingerprint). Injecting a colliding hash exercises the
// structural-equality fallback.
func NewWithHash(h Hash) *Store {
	if h == nil {
		h = (*state.State).Fingerprint
	}
	s := &Store{hash: h}
	for i := range s.shards {
		s.shards[i].buckets = make(map[uint64][]entry)
	}
	return s
}

// Intern deduplicates s into the store, returning its Ref and whether this
// call added it. For concurrent interns of equal states exactly one caller
// observes added == true. The caller must not mutate s afterwards (states
// are immutable by construction).
func (st *Store) Intern(s *state.State) (Ref, bool) {
	fp := st.hash(s)
	sh := &st.shards[fp&shardMask]
	st.lock(sh, fp&shardMask)
	var probes int64
	for _, e := range sh.buckets[fp] {
		probes++
		if e.st.Equal(s) {
			sh.mu.Unlock()
			st.addProbes(probes)
			return e.ref, false
		}
	}
	ref := Ref(len(sh.states))<<shardBits | Ref(fp&shardMask)
	sh.states = append(sh.states, s)
	sh.buckets[fp] = append(sh.buckets[fp], entry{st: s, ref: ref})
	sh.mu.Unlock()
	st.addProbes(probes)
	st.count.Add(1)
	return ref, true
}

// noRef marks an unprocessed slot during batch interning; it can never be a
// real Ref (a real slot index would have to exhaust the address space).
const noRef = ^Ref(0)

// InternBatch deduplicates a batch of states in one pass, filling refs and
// added (all four slices must share the batch's length; fps is scratch for
// the precomputed hashes). The batch is processed shard-by-shard so each
// shard's lock is taken at most once per call instead of once per state —
// the batched-interning path of the parallel frontier, where a state's
// successor list lands in few shards and per-state locking dominates.
// Semantics match len(batch) Intern calls in order: intra-batch duplicates
// resolve to one Ref with added reported only for the first occurrence.
func (st *Store) InternBatch(batch []*state.State, fps []uint64, refs []Ref, added []bool) {
	for i, s := range batch {
		fps[i] = st.hash(s)
		refs[i] = noRef
	}
	newCount := 0
	var probes int64
	for i := range batch {
		if refs[i] != noRef {
			continue
		}
		shardIdx := fps[i] & shardMask
		sh := &st.shards[shardIdx]
		st.lock(sh, shardIdx)
		for j := i; j < len(batch); j++ {
			if refs[j] != noRef || fps[j]&shardMask != shardIdx {
				continue
			}
			fp, s := fps[j], batch[j]
			found := false
			for _, e := range sh.buckets[fp] {
				probes++
				if e.st.Equal(s) {
					refs[j], added[j] = e.ref, false
					found = true
					break
				}
			}
			if !found {
				ref := Ref(len(sh.states))<<shardBits | Ref(shardIdx)
				sh.states = append(sh.states, s)
				sh.buckets[fp] = append(sh.buckets[fp], entry{st: s, ref: ref})
				refs[j], added[j] = ref, true
				newCount++
			}
		}
		sh.mu.Unlock()
	}
	st.addProbes(probes)
	if newCount > 0 {
		st.count.Add(int64(newCount))
	}
}

// Dense returns a small-integer encoding of the Ref suitable for direct
// slice indexing: refs encode slot<<shardBits|shard, so Dense values are
// unique per store and bounded by numShards × (largest shard's size) —
// close to the interned-state count when fingerprints spread evenly. The
// frontier's barrier uses this to replace its ref→final-id map with a flat
// array.
func (r Ref) Dense() int { return int(r) }

// Lookup returns the Ref of a state equal to s, if interned.
func (st *Store) Lookup(s *state.State) (Ref, bool) {
	fp := st.hash(s)
	sh := &st.shards[fp&shardMask]
	st.lock(sh, fp&shardMask)
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[fp] {
		if e.st.Equal(s) {
			return e.ref, true
		}
	}
	return 0, false
}

// State resolves a Ref produced by Intern.
func (st *Store) State(r Ref) *state.State {
	sh := &st.shards[r&shardMask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.states[r>>shardBits]
}

// Len returns the number of interned states.
func (st *Store) Len() int { return int(st.count.Load()) }

// Partitioning: the parallel level barrier of package ts splits a level's
// newly discovered states into NumPartitions fingerprint ranges (the top
// PartitionBits bits) and numbers each range on its own worker. Index shards
// its buckets by the same function, so two barrier partitions may Put
// concurrently — they can never touch the same shard. Concatenating the
// ranges in ascending partition order preserves the global fingerprint sort,
// which is what keeps the parallel numbering byte-identical to a single
// global sort.
const (
	// PartitionBits is log2 of NumPartitions.
	PartitionBits = 6
	// NumPartitions is the fingerprint-range fan-out of the parallel barrier
	// (and the shard count of Index).
	NumPartitions = 1 << PartitionBits
)

// Partition maps a fingerprint to its barrier partition / Index shard: the
// top PartitionBits bits, so partition order is fingerprint order.
func Partition(fp uint64) int { return int(fp >> (64 - PartitionBits)) }

// Index maps states to caller-chosen integer ids, keyed by fingerprint with
// structural-equality collision verification. Buckets are sharded by
// Partition(fingerprint): Puts within one partition must be serialized, but
// Puts in distinct partitions may run concurrently (the parallel barrier of
// package ts relies on this). Gets must not overlap Puts; once construction
// pauses at a barrier, any number of goroutines may Get concurrently (the
// monitor-product workers resolve base-state ids against the finished base
// graph's index, and the frontier workers probe committed states mid-level).
type Index struct {
	hash   Hash
	shards [NumPartitions]idxShard
}

type idxShard struct {
	buckets map[uint64][]idEntry
	n       int
}

type idEntry struct {
	st *state.State
	id int
}

// NewIndex returns an empty index keyed by state.Fingerprint.
func NewIndex() *Index { return NewIndexWithHash(nil) }

// NewIndexWithHash returns an empty index keyed by the given hash (nil
// means state.Fingerprint). Shard maps allocate lazily on first Put, so
// small single-partition indexes (sets, audits) pay for one map.
func NewIndexWithHash(h Hash) *Index {
	if h == nil {
		h = (*state.State).Fingerprint
	}
	return &Index{hash: h}
}

// NewIndexFrom builds an index mapping each state to its slice position,
// the lookup structure of a graph reconstructed from a snapshot (state ids
// are their positions in the snapshot's final-id ordering).
func NewIndexFrom(states []*state.State) *Index {
	ix := NewIndex()
	for i, s := range states {
		ix.Put(s, i)
	}
	return ix
}

// Put records id for s. A state equal to s must not already be present.
// Puts for states in the same partition must be serialized; Puts in
// distinct partitions may run concurrently (see the Index doc).
func (ix *Index) Put(s *state.State, id int) {
	fp := ix.hash(s)
	sh := &ix.shards[Partition(fp)]
	if sh.buckets == nil {
		sh.buckets = make(map[uint64][]idEntry)
	}
	sh.buckets[fp] = append(sh.buckets[fp], idEntry{st: s, id: id})
	sh.n++
}

// Get returns the id recorded for a state equal to s.
func (ix *Index) Get(s *state.State) (int, bool) {
	fp := ix.hash(s)
	for _, e := range ix.shards[Partition(fp)].buckets[fp] {
		if e.st.Equal(s) {
			return e.id, true
		}
	}
	return 0, false
}

// Len returns the number of states in the index.
func (ix *Index) Len() int {
	n := 0
	for i := range ix.shards {
		n += ix.shards[i].n
	}
	return n
}

// Set is a fingerprint-keyed state membership set with structural-equality
// collision fallback, replacing string-keyed map[string]bool sets in hot
// paths. Not safe for concurrent use.
type Set struct {
	ix *Index
	n  int
}

// NewSet returns an empty set keyed by state.Fingerprint.
func NewSet() *Set { return &Set{ix: NewIndex()} }

// NewSetWithHash returns an empty set keyed by the given hash.
func NewSetWithHash(h Hash) *Set { return &Set{ix: NewIndexWithHash(h)} }

// Add inserts s and reports whether it was newly added.
func (se *Set) Add(s *state.State) bool {
	if _, ok := se.ix.Get(s); ok {
		return false
	}
	se.ix.Put(s, se.n)
	se.n++
	return true
}

// Has reports membership of a state equal to s.
func (se *Set) Has(s *state.State) bool {
	_, ok := se.ix.Get(s)
	return ok
}

// Len returns the number of states in the set.
func (se *Set) Len() int { return se.n }
