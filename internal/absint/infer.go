package absint

import (
	"sort"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/value"
)

// Options configures an analysis run.
type Options struct {
	// Declared maps variables to their declared finite domains; variables
	// absent from the map start from an unconstrained domain.
	Declared map[string][]value.Value
	// WidenAfter is the fixpoint iteration after which widening kicks in
	// (default 64). Lower values converge faster but lose precision on
	// slowly-growing domains such as bounded queues.
	WidenAfter int
	// MaxIter hard-caps fixpoint iterations (default 256); variables
	// still changing at the cap are forced to Top.
	MaxIter int
}

// ActionFacts are the per-action inference results.
type ActionFacts struct {
	// Component and Action identify the action.
	Component, Action string
	// Writes is the inferred stutter-free write set.
	Writes map[string]bool
	// Reads are the unprimed state variables the definition depends on.
	Reads []string
	// Enabled is the guard's satisfiability under the inferred reachable
	// domains: False means the action provably never takes a step.
	Enabled Tri
	// Post maps each variable the action constrains (including stutter
	// conjuncts) to the inferred domain of its next-state value.
	Post map[string]*Dom
}

// Analysis is the result of abstractly interpreting a composition: an
// over-approximation of every variable's reachable value set, plus
// per-action facts. All fields are deterministic functions of the input.
type Analysis struct {
	// Names is the sorted variable universe: every variable declared by a
	// component, appearing in a constraint, or given a declared domain.
	Names []string
	// Vars maps each universe variable to the inferred over-approximation
	// of its reachable values.
	Vars map[string]*Dom
	// DeclaredDom holds the declared domains lifted to the abstract
	// lattice (Top for undeclared variables).
	DeclaredDom map[string]*Dom
	// Free marks variables owned by no component: the environment may
	// rewrite them every step, so they range over their declared domains.
	Free map[string]bool
	// Actions holds per-action facts in component order, action order.
	Actions []ActionFacts
	// Iterations is the number of fixpoint passes used; Widened reports
	// whether widening was applied.
	Iterations int
	Widened    bool
}

// Analyze runs the abstract interpreter over a composition. constraints
// are the composition's step-constraint actions; they only restrict which
// steps are allowed, so ignoring their effect is sound — they contribute
// their variables to the universe.
func Analyze(comps []*spec.Component, constraints []form.Expr, opt Options) *Analysis {
	if opt.WidenAfter <= 0 {
		opt.WidenAfter = 64
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 256
	}

	universe := map[string]bool{}
	owned := map[string]bool{}
	for _, c := range comps {
		for _, v := range c.Vars() {
			universe[v] = true
		}
		for _, v := range c.Owned() {
			owned[v] = true
		}
	}
	for _, e := range constraints {
		for _, v := range form.AllVars(e) {
			universe[v] = true
		}
	}
	for v := range opt.Declared {
		universe[v] = true
	}
	names := make([]string, 0, len(universe))
	for v := range universe {
		names = append(names, v)
	}
	sort.Strings(names)

	a := &Analysis{
		Names:       names,
		Vars:        make(map[string]*Dom, len(names)),
		DeclaredDom: make(map[string]*Dom, len(names)),
		Free:        make(map[string]bool),
	}
	for _, v := range names {
		if vs, ok := opt.Declared[v]; ok && len(vs) > 0 {
			a.DeclaredDom[v] = FromValues(vs...)
		} else {
			a.DeclaredDom[v] = Top()
		}
		if !owned[v] {
			a.Free[v] = true
		}
	}
	declaredFn := func(v string) *Dom { return a.DeclaredDom[v] }

	// Initial domains: declared domains narrowed by every component's
	// initial predicate (they all hold in the initial state).
	init := make(env, len(names))
	for _, v := range names {
		init[v] = a.DeclaredDom[v]
	}
	for _, c := range comps {
		if c.Init != nil {
			refine(c.Init, init)
		}
	}
	// Unowned variables may be rewritten to any declared value at every
	// step, so their reachable set is the full declared domain.
	for _, v := range names {
		if a.Free[v] {
			a.Vars[v] = a.DeclaredDom[v]
		} else {
			a.Vars[v] = init[v]
		}
	}

	// Fixpoint: join every feasible action's post-domains into the
	// reachable approximation until nothing changes.
	for iter := 1; iter <= opt.MaxIter; iter++ {
		a.Iterations = iter
		contrib := map[string]*Dom{}
		for _, c := range comps {
			for _, act := range c.Actions {
				st := analyzeAction(act.Def, a.Vars, declaredFn)
				if st.enabled == False {
					continue // provably disabled: contributes no steps
				}
				for v, d := range st.writes {
					if !universe[v] {
						continue // quantifier residue or undeclared: not state
					}
					if prev, ok := contrib[v]; ok {
						contrib[v] = Join(prev, d)
					} else {
						contrib[v] = d
					}
				}
			}
		}
		changed := false
		for _, v := range names {
			d, ok := contrib[v]
			if !ok {
				continue
			}
			next := Join(a.Vars[v], d)
			if Incl(next, a.Vars[v]) {
				continue
			}
			if iter >= opt.WidenAfter {
				next = Widen(a.Vars[v], next)
				a.Widened = true
			}
			if iter == opt.MaxIter {
				next = Top() // convergence safety net
			}
			a.Vars[v] = next
			changed = true
		}
		if !changed {
			break
		}
	}

	// Per-action facts under the final (largest, hence sound) domains.
	for _, c := range comps {
		for _, act := range c.Actions {
			st := analyzeAction(act.Def, a.Vars, declaredFn)
			a.Actions = append(a.Actions, ActionFacts{
				Component: c.Name,
				Action:    act.Name,
				Writes:    Writes(act.Def),
				Reads:     Reads(act.Def),
				Enabled:   st.enabled,
				Post:      st.writes,
			})
		}
	}
	return a
}

// ComponentWrites returns the union of a component's inferred per-action
// write sets — the variables the component's next-state relation actually
// changes, regardless of what its declaration claims.
func (a *Analysis) ComponentWrites(name string) map[string]bool {
	out := map[string]bool{}
	for _, f := range a.Actions {
		if f.Component != name {
			continue
		}
		for v := range f.Writes {
			out[v] = true
		}
	}
	return out
}

// VarDom returns the inferred reachable domain for a variable (Top when
// the variable is unknown to the analysis).
func (a *Analysis) VarDom(name string) *Dom {
	if d, ok := a.Vars[name]; ok {
		return d
	}
	return Top()
}
