package absint

import (
	"opentla/internal/form"
	"opentla/internal/value"
)

// stepInfo is the result of abstractly interpreting one action definition:
// guard-refined pre-state domains, post-state domains for every variable
// the action constrains, and a three-valued enabledness verdict.
type stepInfo struct {
	pre     env             // pre-state domains, refined by the action's guards
	writes  map[string]*Dom // post-state domain per primed variable
	enabled Tri             // False ⇒ the action can never take a step
}

// analyzeAction interprets an action definition under the pre-state
// domains. declared supplies the fallback domain for a variable whose
// primed value the action constrains opaquely (or leaves unconstrained in
// one disjunct): the brute-force generator enumerates such variables over
// their declared domains, so that is the sound post-approximation.
func analyzeAction(def form.Expr, pre env, declared func(string) *Dom) stepInfo {
	st := stepInfo{pre: pre.clone(), writes: map[string]*Dom{}, enabled: True}
	var primed []form.Expr
	for _, c := range flattenAnd(def) {
		if len(form.PrimedVars(c)) == 0 {
			st.enabled = triAnd(st.enabled, refineGuard(c, st.pre))
		} else {
			primed = append(primed, c)
		}
	}
	// Primed conjuncts see the fully guard-refined pre-state.
	for _, c := range primed {
		st.applyPrimed(c, declared)
	}
	return st
}

// applyPrimed folds one primed conjunct into the step's write map. Each
// conjunct further constrains the post-state, so contributions for the
// same variable are intersected (Meet).
func (st *stepInfo) applyPrimed(c form.Expr, declared func(string) *Dom) {
	switch x := c.(type) {
	case form.AndE:
		for _, sub := range x.Xs {
			if len(form.PrimedVars(sub)) == 0 {
				st.enabled = triAnd(st.enabled, refineGuard(sub, st.pre))
			} else {
				st.applyPrimed(sub, declared)
			}
		}
		return
	case form.CmpE:
		if x.Op == form.OpEq {
			if name, rhs, ok := assignment(x); ok {
				st.mergeWrite(name, absEval(rhs, st.pre))
				return
			}
		}
	case form.OrE:
		// Analyze each disjunct as a sub-action and join: a variable not
		// constrained by a feasible disjunct may take any declared value.
		branches := make([]stepInfo, 0, len(x.Xs))
		vars := map[string]bool{}
		orEnabled := False
		for _, b := range x.Xs {
			sub := analyzeAction(b, st.pre, declared)
			orEnabled = triOr(orEnabled, sub.enabled)
			if sub.enabled == False {
				continue // an infeasible disjunct contributes no steps
			}
			branches = append(branches, sub)
			for v := range sub.writes {
				vars[v] = true
			}
		}
		st.enabled = triAnd(st.enabled, orEnabled)
		for v := range vars {
			d := Bot()
			for _, b := range branches {
				if w, ok := b.writes[v]; ok {
					d = Join(d, w)
				} else {
					d = Join(d, declared(v))
				}
			}
			st.mergeWrite(v, d)
		}
		return
	case form.QuantE:
		if x.Exists {
			if len(x.Domain) == 0 {
				st.enabled = False
				return
			}
			inner := st.pre.clone()
			inner[x.Name] = FromValues(x.Domain...)
			sub := analyzeAction(x.Body, inner, declared)
			st.enabled = triAnd(st.enabled, sub.enabled)
			for v, d := range sub.writes {
				if v == x.Name {
					continue // rigid bound variable, not a state variable
				}
				st.mergeWrite(v, d)
			}
			return
		}
	}
	// Opaque constraint: every variable it primes may end up anywhere in
	// its declared domain.
	for _, v := range form.PrimedVars(c) {
		st.mergeWrite(v, declared(v))
	}
}

func (st *stepInfo) mergeWrite(name string, d *Dom) {
	if prev, ok := st.writes[name]; ok {
		st.writes[name] = Meet(prev, d)
		return
	}
	st.writes[name] = d
}

// assignment matches x' = rhs (either operand order) with a prime-free
// right-hand side.
func assignment(x form.CmpE) (name string, rhs form.Expr, ok bool) {
	if p, isP := x.A.(form.PrimeE); isP {
		if v, isV := p.X.(form.VarE); isV && len(form.PrimedVars(x.B)) == 0 {
			return v.Name, x.B, true
		}
	}
	if p, isP := x.B.(form.PrimeE); isP {
		if v, isV := p.X.(form.VarE); isV && len(form.PrimedVars(x.A)) == 0 {
			return v.Name, x.A, true
		}
	}
	return "", nil, false
}

// flattenAnd returns the conjunct list of e, recursively flattening
// nested conjunctions.
func flattenAnd(e form.Expr) []form.Expr {
	if a, ok := e.(form.AndE); ok {
		var out []form.Expr
		for _, c := range a.Xs {
			out = append(out, flattenAnd(c)...)
		}
		return out
	}
	return []form.Expr{e}
}

// refineGuard narrows the domains in en using a prime-free guard and
// returns the guard's satisfiability under the pre-refinement domains.
// Refinement is sound: the narrowed domain still contains every value
// that can satisfy the guard.
func refineGuard(g form.Expr, en env) Tri {
	t := evalTri(g, en)
	refine(g, en)
	return t
}

func refine(g form.Expr, en env) {
	switch x := g.(type) {
	case form.AndE:
		for _, c := range x.Xs {
			refine(c, en)
		}
	case form.CmpE:
		refineCmp(x.Op, x.A, x.B, en)
	case form.NotE:
		if c, ok := x.X.(form.CmpE); ok {
			refineCmp(negCmp(c.Op), c.A, c.B, en)
		}
	}
}

func refineCmp(op form.CmpOp, a, b form.Expr, en env) {
	if va, ok := a.(form.VarE); ok {
		if vb, ok := b.(form.VarE); ok && op == form.OpEq {
			m := Meet(en.get(va.Name), en.get(vb.Name))
			en[va.Name], en[vb.Name] = m, m
			return
		}
		en[va.Name] = refineVar(en.get(va.Name), op, absEval(b, en))
		return
	}
	if vb, ok := b.(form.VarE); ok {
		en[vb.Name] = refineVar(en.get(vb.Name), flipCmp(op), absEval(a, en))
		return
	}
	if q, ok := lenOf(a); ok {
		en[q] = refineLen(en.get(q), op, absEval(b, en))
		return
	}
	if q, ok := lenOf(b); ok {
		en[q] = refineLen(en.get(q), flipCmp(op), absEval(a, en))
	}
}

// lenOf matches Len(x) for a plain variable x.
func lenOf(e form.Expr) (string, bool) {
	if s, ok := e.(form.SeqUnE); ok && s.Op == form.OpLen {
		if v, ok := s.X.(form.VarE); ok {
			return v.Name, true
		}
	}
	return "", false
}

// refineVar narrows d under the constraint "x op other".
func refineVar(d *Dom, op form.CmpOp, other *Dom) *Dom {
	switch op {
	case form.OpEq:
		return Meet(d, other)
	case form.OpNe:
		if d.k == kFinite && other.k == kFinite && len(other.vals) == 1 {
			var out []value.Value
			for _, v := range d.vals {
				if !v.Equal(other.vals[0]) {
					out = append(out, v)
				}
			}
			return FromValues(out...)
		}
		return d
	}
	lo, hi, loInf, hiInf, ok := other.intRange()
	if !ok {
		return d
	}
	switch op {
	case form.OpLt:
		if !hiInf {
			return Meet(d, &Dom{k: kInt, hi: hi - 1, loInf: true})
		}
	case form.OpLe:
		if !hiInf {
			return Meet(d, &Dom{k: kInt, hi: hi, loInf: true})
		}
	case form.OpGt:
		if !loInf {
			return Meet(d, &Dom{k: kInt, lo: lo + 1, hiInf: true})
		}
	case form.OpGe:
		if !loInf {
			return Meet(d, &Dom{k: kInt, lo: lo, hiInf: true})
		}
	}
	return d
}

// refineLen narrows a sequence domain under the constraint
// "Len(x) op other".
func refineLen(d *Dom, op form.CmpOp, other *Dom) *Dom {
	lo, hi, loInf, hiInf, ok := other.intRange()
	if !ok {
		return d
	}
	// Translate into a length window [minL, maxL] (maxOpen ⇒ no upper cut).
	minL, maxL := 0, 0
	maxOpen := true
	switch op {
	case form.OpEq:
		if loInf || hiInf {
			return d
		}
		minL, maxL, maxOpen = int(lo), int(hi), false
	case form.OpLt:
		if hiInf {
			return d
		}
		maxL, maxOpen = int(hi)-1, false
	case form.OpLe:
		if hiInf {
			return d
		}
		maxL, maxOpen = int(hi), false
	case form.OpGt:
		if loInf {
			return d
		}
		minL = int(lo) + 1
	case form.OpGe:
		if loInf {
			return d
		}
		minL = int(lo)
	default:
		return d
	}
	if minL < 0 {
		minL = 0
	}
	switch d.k {
	case kFinite:
		window := &Dom{k: kSeq, elem: Top(), minLen: minL, maxLen: maxL, maxInf: maxOpen}
		return filterFinite(d, window)
	case kSeq:
		newMin := maxInt(d.minLen, minL)
		newMax, newInf := d.maxLen, d.maxInf
		if !maxOpen && (newInf || maxL < newMax) {
			newMax, newInf = maxL, false
		}
		return SeqOf(d.elem, newMin, newMax, newInf)
	case kTop:
		// Len(x) applies only to sequences, so x is one.
		if maxOpen {
			return SeqOf(Top(), minL, 0, true)
		}
		return SeqOf(Top(), minL, maxL, false)
	}
	return d
}

func negCmp(op form.CmpOp) form.CmpOp {
	switch op {
	case form.OpEq:
		return form.OpNe
	case form.OpNe:
		return form.OpEq
	case form.OpLt:
		return form.OpGe
	case form.OpLe:
		return form.OpGt
	case form.OpGt:
		return form.OpLe
	case form.OpGe:
		return form.OpLt
	}
	return op
}

// flipCmp mirrors the operator for swapped operands: a op b ⇔ b flip(op) a.
func flipCmp(op form.CmpOp) form.CmpOp {
	switch op {
	case form.OpLt:
		return form.OpGt
	case form.OpLe:
		return form.OpGe
	case form.OpGt:
		return form.OpLt
	case form.OpGe:
		return form.OpLe
	}
	return op
}

func triAnd(a, b Tri) Tri {
	if a == False || b == False {
		return False
	}
	if a == True && b == True {
		return True
	}
	return Unknown
}

func triOr(a, b Tri) Tri {
	if a == True || b == True {
		return True
	}
	if a == False && b == False {
		return False
	}
	return Unknown
}
