package absint

import (
	"fmt"
	"strings"
)

// VarBound is the per-variable contribution to the state-space bound.
type VarBound struct {
	// Var is the variable name.
	Var string
	// Card is the (saturating) cardinality of the variable's inferred
	// reachable domain; CardInf when not finite.
	Card uint64
	// Finite reports whether the cardinality is a finite number.
	Finite bool
}

// Bound is a sound upper bound on the number of distinct states a
// composition can reach: the product of the per-variable reachable-domain
// cardinalities. Every reachable state assigns each variable a value from
// its inferred domain, so the product dominates the true count; it is not
// tight (variable correlations are deliberately ignored).
type Bound struct {
	// Finite reports whether every variable's domain is provably finite.
	Finite bool
	// States is the saturating product of the per-variable cardinalities;
	// CardInf when Finite is false or the product overflows uint64.
	States uint64
	// Vars lists the per-variable cardinalities, sorted by name.
	Vars []VarBound
}

// String renders the bound for reports: "≤ 4608 states" or "unbounded".
func (b *Bound) String() string {
	if b == nil {
		return "unknown"
	}
	if !b.Finite {
		infinite := []string{}
		for _, v := range b.Vars {
			if !v.Finite {
				infinite = append(infinite, v.Var)
			}
		}
		if len(infinite) > 0 {
			return fmt.Sprintf("unbounded (via %s)", strings.Join(infinite, ", "))
		}
		return "unbounded"
	}
	return fmt.Sprintf("≤ %d states", b.States)
}

// Exceeds reports whether the bound exceeds a state budget; an infinite
// bound exceeds every budget. A budget ≤ 0 means "no budget".
func (b *Bound) Exceeds(budget int64) bool {
	if b == nil || budget <= 0 {
		return false
	}
	return !b.Finite || b.States > uint64(budget)
}

// Sabotage disables parts of the bound computation for fault-injection
// testing (package faultinject): the detector harness proves that an
// unsound bound — one smaller than the explored state count — cannot
// survive the registry cross-check. The zero value sabotages nothing.
type Sabotage struct {
	// DropVar omits one variable from the product, as an analyzer bug
	// that loses track of a state variable would.
	DropVar string
	// HalveCards divides every per-variable cardinality by two (rounding
	// up), mimicking a systematically optimistic counting bug.
	HalveCards bool
}

// Bound computes the state-space bound from the inferred domains.
func (a *Analysis) Bound() *Bound {
	return a.BoundWith(Sabotage{})
}

// BoundWith computes the bound under a sabotage configuration; production
// callers use Bound.
func (a *Analysis) BoundWith(sab Sabotage) *Bound {
	b := &Bound{Finite: true, States: 1}
	for _, v := range a.Names {
		card, fin := a.Vars[v].Card()
		if sab.HalveCards && fin {
			card = (card + 1) / 2
		}
		b.Vars = append(b.Vars, VarBound{Var: v, Card: card, Finite: fin})
		if v == sab.DropVar {
			continue
		}
		if !fin {
			b.Finite = false
		}
		b.States = satMul(b.States, card)
	}
	if !b.Finite {
		b.States = CardInf
	}
	return b
}
