package absint

import (
	"math"

	"opentla/internal/form"
	"opentla/internal/value"
)

// Tri is a three-valued truth verdict: a predicate evaluated over abstract
// domains is provably false, provably true, or undecided.
type Tri int

// The three truth values.
const (
	False   Tri = iota - 1
	Unknown     // not decided by the abstraction
	True
)

// String returns "false", "unknown", or "true".
func (t Tri) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	}
	return "unknown"
}

// Not negates a three-valued verdict.
func (t Tri) Not() Tri { return -t }

// env maps variable names (and quantifier-bound names) to their abstract
// domains.
type env map[string]*Dom

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func (e env) get(name string) *Dom {
	if d, ok := e[name]; ok {
		return d
	}
	return Top()
}

// absEval computes an over-approximating domain for the value of
// expression x under the variable domains in en. Primed variables abstract
// to Top — callers analyzing actions substitute assignment information via
// the transfer functions instead.
func absEval(x form.Expr, en env) *Dom {
	switch e := x.(type) {
	case form.VarE:
		return en.get(e.Name)
	case form.ConstE:
		return FromValues(e.V)
	case form.PrimeE:
		return Top()
	case form.ArithE:
		return arithDom(e, en)
	case form.IfE:
		switch evalTri(e.C, en) {
		case True:
			return absEval(e.T, en)
		case False:
			return absEval(e.E, en)
		}
		return Join(absEval(e.T, en), absEval(e.E, en))
	case form.TupleE:
		subs := make([]*Dom, len(e.Xs))
		allSingle := true
		for i, sub := range e.Xs {
			subs[i] = absEval(sub, en)
			if subs[i].k != kFinite || len(subs[i].vals) != 1 {
				allSingle = false
			}
		}
		if allSingle {
			elems := make([]value.Value, len(subs))
			for i, d := range subs {
				elems[i] = d.vals[0]
			}
			return FromValues(value.Tuple(elems...))
		}
		elem := Bot()
		for _, d := range subs {
			elem = Join(elem, d)
		}
		return SeqOf(elem, len(e.Xs), len(e.Xs), false)
	case form.SeqUnE:
		elem, minLen, maxLen, maxInf, ok := absEval(e.X, en).seqView()
		if !ok {
			if e.Op == form.OpLen {
				return &Dom{k: kInt, lo: 0, hiInf: true}
			}
			return Top()
		}
		switch e.Op {
		case form.OpHead:
			return orBot(elem)
		case form.OpTail:
			if maxInf {
				return SeqOf(orBot(elem), maxInt(0, minLen-1), 0, true)
			}
			return SeqOf(orBot(elem), maxInt(0, minLen-1), maxLen-1, false)
		case form.OpLen:
			if maxInf {
				return &Dom{k: kInt, lo: int64(minLen), hiInf: true}
			}
			return Interval(int64(minLen), int64(maxLen))
		}
		return Top()
	case form.ConcatE:
		ae, amin, amax, ainf, aok := absEval(e.A, en).seqView()
		be, bmin, bmax, binf, bok := absEval(e.B, en).seqView()
		if !aok || !bok {
			return Top()
		}
		return SeqOf(Join(orBot(ae), orBot(be)), amin+bmin, amax+bmax, ainf || binf)
	case form.AndE, form.OrE, form.NotE, form.ImpliesE, form.EquivE, form.CmpE, form.QuantE:
		return triToDom(evalTri(x, en))
	}
	return Top()
}

// triToDom lifts a truth verdict to a boolean domain.
func triToDom(t Tri) *Dom {
	switch t {
	case True:
		return FromValues(value.True)
	case False:
		return FromValues(value.False)
	}
	return FromValues(value.False, value.True)
}

// evalTri decides a predicate over abstract domains: True/False only when
// every (resp. no) concrete instantiation satisfies it.
func evalTri(x form.Expr, en env) Tri {
	switch e := x.(type) {
	case form.ConstE:
		if b, ok := e.V.AsBool(); ok {
			if b {
				return True
			}
			return False
		}
		return Unknown
	case form.VarE:
		return domTri(en.get(e.Name))
	case form.NotE:
		return evalTri(e.X, en).Not()
	case form.AndE:
		out := True
		for _, c := range e.Xs {
			switch evalTri(c, en) {
			case False:
				return False
			case Unknown:
				out = Unknown
			}
		}
		return out
	case form.OrE:
		out := False
		for _, c := range e.Xs {
			switch evalTri(c, en) {
			case True:
				return True
			case Unknown:
				out = Unknown
			}
		}
		return out
	case form.ImpliesE:
		a, b := evalTri(e.A, en), evalTri(e.B, en)
		if a == False || b == True {
			return True
		}
		if a == True && b == False {
			return False
		}
		return Unknown
	case form.EquivE:
		a, b := evalTri(e.A, en), evalTri(e.B, en)
		if a == Unknown || b == Unknown {
			return Unknown
		}
		if a == b {
			return True
		}
		return False
	case form.IfE:
		switch evalTri(e.C, en) {
		case True:
			return evalTri(e.T, en)
		case False:
			return evalTri(e.E, en)
		}
		t, f := evalTri(e.T, en), evalTri(e.E, en)
		if t == f {
			return t
		}
		return Unknown
	case form.CmpE:
		return cmpTri(e.Op, absEval(e.A, en), absEval(e.B, en))
	case form.QuantE:
		out := False
		if !e.Exists {
			out = True
		}
		for _, v := range e.Domain {
			inner := en.clone()
			inner[e.Name] = FromValues(v)
			t := evalTri(e.Body, inner)
			if e.Exists && t == True {
				return True
			}
			if !e.Exists && t == False {
				return False
			}
			if t == Unknown {
				out = Unknown
			}
		}
		return out
	}
	return Unknown
}

// domTri reads a boolean domain as a verdict.
func domTri(d *Dom) Tri {
	if d.k != kFinite {
		return Unknown
	}
	hasT, hasF := false, false
	for _, v := range d.vals {
		b, ok := v.AsBool()
		if !ok {
			return Unknown
		}
		if b {
			hasT = true
		} else {
			hasF = true
		}
	}
	if hasT && !hasF {
		return True
	}
	if hasF && !hasT {
		return False
	}
	return Unknown
}

// cmpTri compares two abstract domains under op.
func cmpTri(op form.CmpOp, a, b *Dom) Tri {
	if a.IsBot() || b.IsBot() {
		// Vacuous: no concrete instantiation exists. Treat as undecided.
		return Unknown
	}
	switch op {
	case form.OpEq, form.OpNe:
		t := eqTri(a, b)
		if op == form.OpNe {
			return t.Not()
		}
		return t
	}
	alo, ahi, aloInf, ahiInf, aok := a.intRange()
	blo, bhi, bloInf, bhiInf, bok := b.intRange()
	if !aok || !bok || a.k != kInt && a.k != kFinite || b.k != kInt && b.k != kFinite {
		return Unknown
	}
	if a.k == kFinite && !a.allInts() || b.k == kFinite && !b.allInts() {
		return Unknown
	}
	lt := func(strict bool) Tri {
		// a < b (strict) or a ≤ b.
		if !ahiInf && !bloInf && (ahi < blo || !strict && ahi == blo) {
			return True
		}
		if !aloInf && !bhiInf && (alo > bhi || strict && alo == bhi) {
			return False
		}
		return Unknown
	}
	switch op {
	case form.OpLt:
		return lt(true)
	case form.OpLe:
		return lt(false)
	case form.OpGt:
		return lt(false).Not()
	case form.OpGe:
		return lt(true).Not()
	}
	return Unknown
}

// eqTri decides equality of two domains: True when both are the same
// singleton, False when they are provably disjoint.
func eqTri(a, b *Dom) Tri {
	if a.k == kFinite && b.k == kFinite && len(a.vals) == 1 && len(b.vals) == 1 {
		if a.vals[0].Equal(b.vals[0]) {
			return True
		}
		return False
	}
	if Meet(a, b).IsBot() {
		return False
	}
	return Unknown
}

// arithDom evaluates integer arithmetic over domains.
func arithDom(e form.ArithE, en env) *Dom {
	a, b := absEval(e.A, en), absEval(e.B, en)
	// Exact pairwise evaluation for small finite operand sets.
	if a.k == kFinite && b.k == kFinite && a.allInts() && b.allInts() && len(a.vals)*len(b.vals) <= 256 {
		var out []value.Value
		for _, va := range a.vals {
			for _, vb := range b.vals {
				x, _ := va.AsInt()
				y, _ := vb.AsInt()
				if r, ok := arithInt(e.Op, x, y); ok {
					out = append(out, value.Int(r))
				}
			}
		}
		return FromValues(out...)
	}
	alo, ahi, aloInf, ahiInf, aok := a.intRange()
	blo, bhi, bloInf, bhiInf, bok := b.intRange()
	if !aok || !bok {
		return Top()
	}
	switch e.Op {
	case form.OpAdd:
		lo, loOv := addOv(alo, blo)
		hi, hiOv := addOv(ahi, bhi)
		return &Dom{k: kInt, lo: lo, hi: hi, loInf: aloInf || bloInf || loOv, hiInf: ahiInf || bhiInf || hiOv}
	case form.OpSub:
		lo, loOv := addOv(alo, -bhi)
		hi, hiOv := addOv(ahi, -blo)
		return &Dom{k: kInt, lo: lo, hi: hi, loInf: aloInf || bhiInf || loOv, hiInf: ahiInf || bloInf || hiOv}
	case form.OpMul:
		if aloInf || ahiInf || bloInf || bhiInf {
			return &Dom{k: kInt, loInf: true, hiInf: true}
		}
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		ov := false
		for _, x := range []int64{alo, ahi} {
			for _, y := range []int64{blo, bhi} {
				p, pOv := mulOv(x, y)
				ov = ov || pOv
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		}
		if ov {
			return &Dom{k: kInt, loInf: true, hiInf: true}
		}
		return Interval(lo, hi)
	case form.OpMod:
		// x % k over positive k is confined to [0, k-1] for non-negative
		// x (the evaluator's convention); keep the conservative hull.
		if !bhiInf && bhi > 0 {
			return Interval(-(bhi - 1), bhi-1)
		}
		return Top()
	}
	return Top()
}

// arithInt evaluates one integer operation; ok is false on division-like
// errors (mod by zero).
func arithInt(op form.ArithOp, a, b int64) (int64, bool) {
	switch op {
	case form.OpAdd:
		return a + b, true
	case form.OpSub:
		return a - b, true
	case form.OpMul:
		return a * b, true
	case form.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
	return 0, false
}

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, true
	}
	return s, false
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, true
	}
	return p, false
}
