// Package absint is a deterministic abstract interpreter over the
// canonical-form component specifications of package spec (Abadi & Lamport,
// "Open Systems in TLA" §2.2). It infers, without enumerating states,
//
//   - a per-variable over-approximation of the reachable value set (a
//     finite-set / interval / sequence abstraction, see Dom);
//   - per-action read and write sets, from the action definitions rather
//     than from the declared Inputs/Outputs/Internals partition;
//   - satisfiability verdicts for guards (three-valued), exposing actions
//     that can provably never take a step; and
//   - a state-space cardinality upper bound (Bound) — the product of the
//     per-variable domain cardinalities — used by the checker CLIs to
//     predict intractable instances before exploration starts.
//
// Everything absint reports is sound with respect to the declarative
// semantics: inferred domains only ever over-approximate the reachable
// values, so "provably finite", "provably disabled", and the state bound
// are theorems about the specification, not heuristics. Package vet turns
// these facts into SV100+ diagnostics.
package absint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"opentla/internal/value"
)

// kind discriminates the shapes of an abstract domain.
type kind int

const (
	kBot    kind = iota // empty set: no value reaches here
	kFinite             // explicit finite value set, sorted and deduplicated
	kInt                // integer interval, either end possibly unbounded
	kSeq                // sequences: element domain plus a length range
	kTop                // all values
)

// Dom is an abstract value domain: an over-approximation of the set of
// values a variable (or expression) can take. Dom values are immutable;
// all operations return fresh domains.
type Dom struct {
	k            kind
	vals         []value.Value // kFinite: sorted ascending by value.Compare, deduplicated
	lo           int64         // kInt lower bound, valid when !loInf
	hi           int64         // kInt upper bound, valid when !hiInf
	loInf, hiInf bool
	elem         *Dom // kSeq element domain; nil means only empty sequences occur
	minLen       int  // kSeq minimum length (≥ 0)
	maxLen       int  // kSeq maximum length, valid when !maxInf
	maxInf       bool
}

// Bot returns the empty domain.
func Bot() *Dom { return &Dom{k: kBot} }

// Top returns the domain of all values.
func Top() *Dom { return &Dom{k: kTop} }

// FromValues returns the finite domain holding exactly vs.
func FromValues(vs ...value.Value) *Dom {
	if len(vs) == 0 {
		return Bot()
	}
	sorted := make([]value.Value, len(vs))
	copy(sorted, vs)
	value.SortValues(sorted)
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if !v.Equal(out[len(out)-1]) {
			out = append(out, v)
		}
	}
	return &Dom{k: kFinite, vals: out}
}

// Interval returns the integer domain [lo, hi]; Bot if empty.
func Interval(lo, hi int64) *Dom {
	if lo > hi {
		return Bot()
	}
	return &Dom{k: kInt, lo: lo, hi: hi}
}

// SeqOf returns the sequence domain with the given element domain and
// length range [minLen, maxLen]; maxInf means unbounded length. A nil or
// Bot elem with minLen 0 denotes the singleton {⟨⟩}.
func SeqOf(elem *Dom, minLen, maxLen int, maxInf bool) *Dom {
	if minLen < 0 {
		minLen = 0
	}
	if elem != nil && elem.k == kBot {
		elem = nil
	}
	if elem == nil {
		// Only empty sequences are possible.
		if minLen > 0 {
			return Bot()
		}
		return &Dom{k: kFinite, vals: []value.Value{value.Empty}}
	}
	if !maxInf && maxLen < minLen {
		return Bot()
	}
	return &Dom{k: kSeq, elem: elem, minLen: minLen, maxLen: maxLen, maxInf: maxInf}
}

// IsBot reports whether the domain is empty.
func (d *Dom) IsBot() bool { return d == nil || d.k == kBot }

// IsTop reports whether the domain is unrestricted.
func (d *Dom) IsTop() bool { return d != nil && d.k == kTop }

// intRange extracts the integer hull [lo, hi] of a domain, with
// unbounded-end flags. ok is false when the domain holds no integers or
// the hull is unknowable (kTop counts as unbounded-both-ends, ok true).
func (d *Dom) intRange() (lo, hi int64, loInf, hiInf, ok bool) {
	switch d.k {
	case kInt:
		return d.lo, d.hi, d.loInf, d.hiInf, true
	case kTop:
		return 0, 0, true, true, true
	case kFinite:
		first := true
		for _, v := range d.vals {
			n, isInt := v.AsInt()
			if !isInt {
				continue
			}
			if first || n < lo {
				lo = n
			}
			if first || n > hi {
				hi = n
			}
			first = false
		}
		return lo, hi, false, false, !first
	}
	return 0, 0, false, false, false
}

// allInts reports whether every value in a finite domain is an integer.
func (d *Dom) allInts() bool {
	if d.k != kFinite {
		return false
	}
	for _, v := range d.vals {
		if v.Kind() != value.KindInt {
			return false
		}
	}
	return true
}

// allTuples reports whether every value in a finite domain is a tuple.
func (d *Dom) allTuples() bool {
	if d.k != kFinite {
		return false
	}
	for _, v := range d.vals {
		if v.Kind() != value.KindTuple {
			return false
		}
	}
	return true
}

// seqView reinterprets d as a sequence domain, over-approximating: the
// result contains every sequence in d. ok is false when d provably holds
// no sequences or is not representable (kTop yields an unbounded view).
func (d *Dom) seqView() (elem *Dom, minLen, maxLen int, maxInf, ok bool) {
	switch d.k {
	case kSeq:
		return d.elem, d.minLen, d.maxLen, d.maxInf, true
	case kTop:
		return Top(), 0, 0, true, true
	case kFinite:
		if !d.allTuples() || len(d.vals) == 0 {
			return nil, 0, 0, false, false
		}
		var elems []value.Value
		minLen, maxLen = d.vals[0].Len(), d.vals[0].Len()
		for _, v := range d.vals {
			n := v.Len()
			if n < minLen {
				minLen = n
			}
			if n > maxLen {
				maxLen = n
			}
			elems = append(elems, v.Elems()...)
		}
		if len(elems) == 0 {
			return nil, minLen, maxLen, false, true
		}
		return FromValues(elems...), minLen, maxLen, false, true
	}
	return nil, 0, 0, false, false
}

// Contains reports whether v may be in the domain. It is exact for kBot,
// kFinite, kTop, and integer intervals; for sequence domains it checks the
// element domain and length range.
func (d *Dom) Contains(v value.Value) bool {
	switch d.k {
	case kBot:
		return false
	case kTop:
		return true
	case kFinite:
		i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i].Compare(v) >= 0 })
		return i < len(d.vals) && d.vals[i].Equal(v)
	case kInt:
		n, ok := v.AsInt()
		if !ok {
			return false
		}
		return (d.loInf || n >= d.lo) && (d.hiInf || n <= d.hi)
	case kSeq:
		if v.Kind() != value.KindTuple {
			return false
		}
		n := v.Len()
		if n < d.minLen || (!d.maxInf && n > d.maxLen) {
			return false
		}
		for _, e := range v.Elems() {
			if !d.elem.Contains(e) {
				return false
			}
		}
		return true
	}
	return false
}

// Join returns the least over-approximation of a ∪ b representable in the
// lattice.
func Join(a, b *Dom) *Dom {
	if a.IsBot() {
		return b
	}
	if b.IsBot() {
		return a
	}
	if a.IsTop() || b.IsTop() {
		return Top()
	}
	if a.k == kFinite && b.k == kFinite {
		return FromValues(append(append([]value.Value{}, a.vals...), b.vals...)...)
	}
	// Integer hulls.
	if (a.k == kInt || a.allInts()) && (b.k == kInt || b.allInts()) {
		alo, ahi, aloInf, ahiInf, _ := a.intRange()
		blo, bhi, bloInf, bhiInf, _ := b.intRange()
		out := &Dom{k: kInt, lo: minI(alo, blo), hi: maxI(ahi, bhi), loInf: aloInf || bloInf, hiInf: ahiInf || bhiInf}
		return out
	}
	// Sequence joins.
	ae, amin, amax, ainf, aok := a.seqView()
	be, bmin, bmax, binf, bok := b.seqView()
	if aok && bok {
		return SeqOf(Join(orBot(ae), orBot(be)), minInt(amin, bmin), maxInt(amax, bmax), ainf || binf)
	}
	return Top()
}

// Meet returns an over-approximation of a ∩ b: the result contains every
// value in both domains, and is never larger than either input where the
// shapes allow an exact intersection.
func Meet(a, b *Dom) *Dom {
	if a.IsBot() || b.IsBot() {
		return Bot()
	}
	if a.IsTop() {
		return b
	}
	if b.IsTop() {
		return a
	}
	if a.k == kFinite {
		return filterFinite(a, b)
	}
	if b.k == kFinite {
		return filterFinite(b, a)
	}
	if a.k == kInt && b.k == kInt {
		lo, loInf := a.lo, a.loInf
		if !b.loInf && (loInf || b.lo > lo) {
			lo, loInf = b.lo, false
		}
		hi, hiInf := a.hi, a.hiInf
		if !b.hiInf && (hiInf || b.hi < hi) {
			hi, hiInf = b.hi, false
		}
		if !loInf && !hiInf && lo > hi {
			return Bot()
		}
		return &Dom{k: kInt, lo: lo, hi: hi, loInf: loInf, hiInf: hiInf}
	}
	if a.k == kSeq && b.k == kSeq {
		minLen := maxInt(a.minLen, b.minLen)
		maxLen, maxInf := a.maxLen, a.maxInf
		if !b.maxInf && (maxInf || b.maxLen < maxLen) {
			maxLen, maxInf = b.maxLen, false
		}
		return SeqOf(Meet(a.elem, b.elem), minLen, maxLen, maxInf)
	}
	// Incomparable shapes: keep the smaller side (sound: result ⊇ a∩b).
	if ca, af := a.Card(); af {
		if cb, bf := b.Card(); !bf || ca <= cb {
			return a
		}
	}
	return b
}

// filterFinite keeps the members of finite domain f that other may contain.
func filterFinite(f, other *Dom) *Dom {
	var out []value.Value
	for _, v := range f.vals {
		if other.Contains(v) {
			out = append(out, v)
		}
	}
	return FromValues(out...)
}

// Widen accelerates convergence: where next has grown past prev, the
// moving bound is pushed to infinity (intervals, sequence lengths) or the
// domain is abandoned to Top (growing finite sets). Widen(prev, next) is
// an upper bound of both arguments, so the fixpoint remains sound.
func Widen(prev, next *Dom) *Dom {
	if prev.IsBot() {
		return next
	}
	if next.IsBot() {
		return prev
	}
	j := Join(prev, next)
	if Incl(j, prev) {
		return prev
	}
	switch j.k {
	case kFinite:
		// A still-growing finite set: widen ints to an open interval,
		// everything else to Top.
		if j.allInts() && prev.k == kFinite {
			lo, hi, _, _, ok := j.intRange()
			plo, phi, _, _, _ := prev.intRange()
			if ok {
				out := &Dom{k: kInt, lo: lo, hi: hi}
				if lo < plo {
					out.loInf = true
				}
				if hi > phi {
					out.hiInf = true
				}
				return out
			}
		}
		return Top()
	case kInt:
		out := &Dom{k: kInt, lo: j.lo, hi: j.hi, loInf: j.loInf, hiInf: j.hiInf}
		if plo, phi, ploInf, phiInf, ok := prev.intRange(); ok {
			// A bound that moved since the previous iterate is pushed
			// straight to infinity.
			if !ploInf && !out.loInf && out.lo < plo {
				out.loInf = true
			}
			if !phiInf && !out.hiInf && out.hi > phi {
				out.hiInf = true
			}
		}
		return out
	case kSeq:
		pe, pmin, pmax, pinf, pok := prev.seqView()
		out := SeqOf(Widen(widenBase(pok, pe), j.elem), j.minLen, j.maxLen, j.maxInf)
		if out.k != kSeq {
			return out
		}
		cp := *out
		if pok && !pinf && !cp.maxInf && cp.maxLen > pmax {
			cp.maxInf = true
		}
		if pok && cp.minLen < pmin {
			cp.minLen = 0
		}
		return &cp
	}
	return j
}

// widenBase returns the previous element domain for sequence widening,
// Bot when the previous domain had no sequence view.
func widenBase(ok bool, e *Dom) *Dom {
	if !ok {
		return Bot()
	}
	return orBot(e)
}

// Incl reports whether a ⊆ b is provable. False means "not proven", not
// "disjoint".
func Incl(a, b *Dom) bool {
	if a.IsBot() || b.IsTop() {
		return true
	}
	if b.IsBot() || a.IsTop() {
		return false
	}
	if a.k == kFinite {
		for _, v := range a.vals {
			if !b.Contains(v) {
				return false
			}
		}
		return true
	}
	switch b.k {
	case kInt:
		lo, hi, loInf, hiInf, ok := a.intRange()
		if !ok || a.k != kInt {
			return false
		}
		if loInf && !b.loInf || hiInf && !b.hiInf {
			return false
		}
		return (b.loInf || (!loInf && lo >= b.lo)) && (b.hiInf || (!hiInf && hi <= b.hi))
	case kSeq:
		ae, amin, amax, ainf, ok := a.seqView()
		if !ok {
			return false
		}
		if ainf && !b.maxInf {
			return false
		}
		if amin < b.minLen || (!b.maxInf && amax > b.maxLen) {
			return false
		}
		if ae == nil {
			return true
		}
		return Incl(ae, b.elem)
	}
	return false
}

// CardInf is the saturated cardinality reported for infinite (or
// too-large) domains.
const CardInf = math.MaxUint64

// Card returns the number of values in the domain and whether that count
// is finite. Arithmetic saturates at CardInf.
func (d *Dom) Card() (uint64, bool) {
	switch d.k {
	case kBot:
		return 0, true
	case kFinite:
		return uint64(len(d.vals)), true
	case kInt:
		if d.loInf || d.hiInf {
			return CardInf, false
		}
		// Width as unsigned difference avoids overflow for huge spans.
		return satAdd(uint64(d.hi-d.lo), 1), true
	case kSeq:
		if d.maxInf {
			return CardInf, false
		}
		ec, fin := d.elem.Card()
		if !fin {
			if d.maxLen == 0 {
				return 1, true
			}
			return CardInf, false
		}
		var total uint64
		pow := uint64(1)
		for l := 0; l <= d.maxLen; l++ {
			if l >= d.minLen {
				total = satAdd(total, pow)
			}
			pow = satMul(pow, ec)
		}
		return total, total != CardInf
	}
	return CardInf, false
}

// String renders the domain for diagnostics.
func (d *Dom) String() string {
	switch d.k {
	case kBot:
		return "∅"
	case kTop:
		return "⊤"
	case kInt:
		lo, hi := "-∞", "∞"
		if !d.loInf {
			lo = fmt.Sprint(d.lo)
		}
		if !d.hiInf {
			hi = fmt.Sprint(d.hi)
		}
		return fmt.Sprintf("[%s..%s]", lo, hi)
	case kSeq:
		hi := "∞"
		if !d.maxInf {
			hi = fmt.Sprint(d.maxLen)
		}
		return fmt.Sprintf("Seq(%s)[len %d..%s]", d.elem.String(), d.minLen, hi)
	case kFinite:
		if len(d.vals) <= 8 {
			parts := make([]string, len(d.vals))
			for i, v := range d.vals {
				parts[i] = v.String()
			}
			return "{" + strings.Join(parts, ",") + "}"
		}
		return fmt.Sprintf("{%s,… %d values}", d.vals[0], len(d.vals))
	}
	return "?"
}

func orBot(d *Dom) *Dom {
	if d == nil {
		return Bot()
	}
	return d
}

func satAdd(a, b uint64) uint64 {
	if a > CardInf-b {
		return CardInf
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > CardInf/b {
		return CardInf
	}
	return a * b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
