package absint

import (
	"sort"

	"opentla/internal/form"
)

// Writes returns the variables whose next-state values e genuinely
// constrains. Benign stuttering conjuncts of the form f' = f — the
// UNCHANGED idiom every interleaving action uses for the variables it
// leaves alone — are not writes: [A]_v would otherwise make every action
// "write" every subscript variable. The analysis descends through the
// boolean structure so that stutter equations are recognized wherever the
// action places them; any other construct mentioning a primed variable
// (inequalities, arithmetic, negations) counts as a write.
//
// This is the canonical write-set inference shared by the syntactic vet
// checks (SV002/SV003) and the semantic pass: both must agree on what
// counts as a write, or a declared-ownership proof in one layer could be
// refuted in the other.
func Writes(e form.Expr) map[string]bool {
	out := make(map[string]bool)
	collectWrites(e, out)
	return out
}

func collectWrites(e form.Expr, out map[string]bool) {
	switch x := e.(type) {
	case form.AndE:
		for _, c := range x.Xs {
			collectWrites(c, out)
		}
	case form.OrE:
		for _, c := range x.Xs {
			collectWrites(c, out)
		}
	case form.QuantE:
		sub := make(map[string]bool)
		collectWrites(x.Body, sub)
		// The bound name is rigid within the body, not a state variable.
		delete(sub, x.Name)
		for v := range sub {
			out[v] = true
		}
	case form.CmpE:
		if x.Op == form.OpEq && IsStutterEq(x) {
			return
		}
		for _, v := range form.PrimedVars(x) {
			out[v] = true
		}
	default:
		if e == nil {
			return
		}
		for _, v := range form.PrimedVars(e) {
			out[v] = true
		}
	}
}

// IsStutterEq reports whether the equality has the shape f' = f (either
// operand order) for some state function f — i.e. it keeps f unchanged
// rather than writing it.
func IsStutterEq(x form.CmpE) bool {
	if p, ok := x.A.(form.PrimeE); ok && p.X.String() == x.B.String() {
		return true
	}
	if p, ok := x.B.(form.PrimeE); ok && p.X.String() == x.A.String() {
		return true
	}
	return false
}

// Reads returns the unprimed state variables the expression depends on,
// sorted.
func Reads(e form.Expr) []string {
	unprimed, _ := form.FreeVars(e)
	return unprimed
}

// SortedVars returns the keys of a variable set in sorted order.
func SortedVars(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
