package absint

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/value"
)

func ints(vs ...int64) []value.Value {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		out[i] = value.Int(v)
	}
	return out
}

func TestDomFiniteBasics(t *testing.T) {
	d := FromValues(value.Int(3), value.Int(1), value.Int(3), value.Int(2))
	if c, fin := d.Card(); !fin || c != 3 {
		t.Fatalf("dedup/sort: card = %d, finite %v, want 3 true", c, fin)
	}
	if !d.Contains(value.Int(2)) || d.Contains(value.Int(4)) {
		t.Fatalf("Contains wrong on %s", d)
	}
	j := Join(d, FromValues(value.Int(7)))
	if c, _ := j.Card(); c != 4 {
		t.Fatalf("join card = %d, want 4", c)
	}
	m := Meet(d, Interval(2, 9))
	if c, _ := m.Card(); c != 2 {
		t.Fatalf("meet card = %d, want 2 (values 2,3), got %s", c, m)
	}
	if !Incl(m, d) || Incl(d, m) {
		t.Fatalf("Incl wrong: %s vs %s", m, d)
	}
}

func TestDomIntervalAndWiden(t *testing.T) {
	a := Interval(0, 5)
	if c, fin := a.Card(); !fin || c != 6 {
		t.Fatalf("interval card = %d, want 6", c)
	}
	grown := Join(a, Interval(0, 7))
	w := Widen(a, grown)
	if _, fin := w.Card(); fin {
		t.Fatalf("widened moving upper bound should be infinite, got %s", w)
	}
	if !w.Contains(value.Int(1000)) {
		t.Fatalf("widened domain must contain large values, got %s", w)
	}
	// A stable domain must not be widened.
	if got := Widen(a, Interval(1, 4)); !Incl(got, a) || !Incl(a, got) {
		t.Fatalf("widen of stable domain changed it: %s", got)
	}
}

func TestSeqDomCard(t *testing.T) {
	// Sequences of {0,1} with length 0..3: 1+2+4+8 = 15.
	d := SeqOf(FromValues(ints(0, 1)...), 0, 3, false)
	if c, fin := d.Card(); !fin || c != 15 {
		t.Fatalf("seq card = %d finite %v, want 15 true", c, fin)
	}
	if c, _ := SeqOf(FromValues(ints(0, 1)...), 2, 3, false).Card(); c != 12 {
		t.Fatalf("minLen-trimmed seq card = %d, want 12", c)
	}
	if _, fin := SeqOf(FromValues(ints(0, 1)...), 0, 0, true).Card(); fin {
		t.Fatalf("unbounded-length seq must be infinite")
	}
	// The singleton empty sequence is representable and finite.
	if c, fin := SeqOf(nil, 0, 0, false).Card(); !fin || c != 1 {
		t.Fatalf("empty-seq dom card = %d, want 1", c)
	}
	// A finite set of tuples round-trips through the sequence view.
	fin := FromValues(value.Empty, value.Tuple(value.Int(0)), value.Tuple(value.Int(1)))
	j := Join(fin, SeqOf(FromValues(ints(0, 1)...), 1, 1, false))
	if c, ok := j.Card(); !ok || c != 3 {
		t.Fatalf("tuple-set ⊔ seq card = %d, want 3 (len 0..1 over {0,1}), got %s", c, j)
	}
}

func TestEvalTriComparisons(t *testing.T) {
	en := env{
		"x": FromValues(ints(0, 1)...),
		"y": FromValues(ints(5)...),
		"z": Interval(2, 3),
	}
	cases := []struct {
		e    form.Expr
		want Tri
	}{
		{form.Lt(form.Var("x"), form.Var("y")), True},
		{form.Gt(form.Var("x"), form.Var("y")), False},
		{form.Eq(form.Var("x"), form.Var("z")), False}, // disjoint
		{form.Eq(form.Var("y"), form.IntC(5)), True},   // singleton
		{form.Eq(form.Var("x"), form.IntC(0)), Unknown},
		{form.Ne(form.Var("x"), form.Var("z")), True},
		{form.And(form.TrueE, form.Le(form.Var("z"), form.IntC(3))), True},
		{form.Exists("v", nil, form.TrueE), False}, // empty domain
		{form.Exists("v", ints(0, 1), form.Eq(form.Var("v"), form.IntC(1))), True},
	}
	for i, c := range cases {
		if got := evalTri(c.e, en); got != c.want {
			t.Errorf("case %d: evalTri(%s) = %s, want %s", i, c.e, got, c.want)
		}
	}
}

func TestGuardRefinement(t *testing.T) {
	en := env{"q": SeqOf(FromValues(ints(0, 1)...), 0, 5, false), "x": Interval(0, 9)}
	refine(form.Lt(form.Len(form.Var("q")), form.IntC(2)), en)
	if c, _ := en["q"].Card(); c != 3 {
		t.Fatalf("Len(q)<2 should trim to lengths 0..1 (card 3), got %s", en["q"])
	}
	refine(form.Ge(form.Var("x"), form.IntC(7)), en)
	if c, _ := en["x"].Card(); c != 3 {
		t.Fatalf("x≥7 should trim [0..9] to [7..9], got %s", en["x"])
	}
}

// counter builds a one-variable component: x starts at 0 and increments,
// optionally guarded by x < limit.
func counter(name string, guarded bool, limit int64) *spec.Component {
	inc := form.Eq(form.PrimedVar("x"), form.Add(form.Var("x"), form.IntC(1)))
	def := inc
	if guarded {
		def = form.And(form.Lt(form.Var("x"), form.IntC(limit)), inc)
	}
	return &spec.Component{
		Name:    name,
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Inc", Def: def}},
	}
}

func TestAnalyzeGuardedCounterIsFinite(t *testing.T) {
	a := Analyze([]*spec.Component{counter("ctr", true, 5)}, nil, Options{})
	b := a.Bound()
	if !b.Finite || b.States != 6 {
		t.Fatalf("guarded counter bound = %s (finite %v), want ≤ 6 states", b, b.Finite)
	}
}

func TestAnalyzeUnguardedCounterIsInfinite(t *testing.T) {
	a := Analyze([]*spec.Component{counter("ctr", false, 0)}, nil, Options{})
	if !a.Widened {
		t.Fatalf("unguarded counter must trigger widening")
	}
	b := a.Bound()
	if b.Finite {
		t.Fatalf("unguarded counter bound should be infinite, got %s", b)
	}
}

func TestAnalyzeDeadAction(t *testing.T) {
	c := &spec.Component{
		Name:    "dead",
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(0)),
		Actions: []spec.Action{
			{Name: "Stay", Def: form.And(form.Eq(form.Var("x"), form.IntC(0)), form.Eq(form.PrimedVar("x"), form.Var("x")))},
			{Name: "Never", Def: form.And(form.Gt(form.Var("x"), form.IntC(10)), form.Eq(form.PrimedVar("x"), form.IntC(1)))},
		},
	}
	a := Analyze([]*spec.Component{c}, nil, Options{Declared: map[string][]value.Value{"x": ints(0, 1)}})
	var never, stay Tri
	for _, f := range a.Actions {
		switch f.Action {
		case "Never":
			never = f.Enabled
		case "Stay":
			stay = f.Enabled
		}
	}
	if never != False {
		t.Fatalf("Never guard x>10 over x∈{0} should be provably disabled, got %s", never)
	}
	if stay == False {
		t.Fatalf("Stay should not be provably disabled")
	}
	// The dead action's write must not pollute the reachable domain.
	if d := a.VarDom("x"); d.Contains(value.Int(1)) {
		t.Fatalf("x domain %s includes the dead action's write", d)
	}
}

func TestBoundSabotage(t *testing.T) {
	a := Analyze([]*spec.Component{counter("ctr", true, 5)}, nil, Options{
		Declared: map[string][]value.Value{"y": ints(0, 1, 2)},
	})
	full := a.Bound()
	if full.States != 18 {
		t.Fatalf("bound = %s, want ≤ 18 (6 × 3)", full)
	}
	if got := a.BoundWith(Sabotage{DropVar: "y"}); got.States != 6 {
		t.Fatalf("DropVar bound = %s, want 6", got)
	}
	if got := a.BoundWith(Sabotage{HalveCards: true}); got.States >= full.States {
		t.Fatalf("HalveCards bound %s not smaller than %s", got, full)
	}
}

func TestExistsTransferBindsDomain(t *testing.T) {
	// x' = v for v ∈ {3,4}: the post-domain is exactly {3,4}.
	c := &spec.Component{
		Name:    "pick",
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(3)),
		Actions: []spec.Action{{
			Name: "Pick",
			Def:  form.Exists("v", ints(3, 4), form.Eq(form.PrimedVar("x"), form.Var("v"))),
		}},
	}
	a := Analyze([]*spec.Component{c}, nil, Options{})
	d := a.VarDom("x")
	if c, fin := d.Card(); !fin || c != 2 {
		t.Fatalf("x domain = %s, want {3,4}", d)
	}
}
