// External test package: these tests pull in the handshake and queue
// models, which import internal/ag → internal/vet → absint. Keeping
// them out of package absint avoids the resulting test import cycle.
package absint_test

import (
	"testing"

	"opentla/internal/absint"
	"opentla/internal/handshake"
	"opentla/internal/queue"
	"opentla/internal/spec"
	"opentla/internal/value"
)

func TestAnalyzeHandshake(t *testing.T) {
	hc := handshake.Chan("c")
	hvals := value.Ints(0, 1)
	comps := []*spec.Component{
		handshake.Sender("sender", hc, hvals),
		handshake.Receiver("receiver", hc),
	}
	a := absint.Analyze(comps, nil, absint.Options{Declared: hc.Domains(hvals)})
	b := a.Bound()
	if !b.Finite || b.States != 8 {
		t.Fatalf("handshake bound = %s, want ≤ 8 states", b)
	}
	for _, f := range a.Actions {
		if f.Enabled == absint.False {
			t.Errorf("action %s.%s inferred as never enabled", f.Component, f.Action)
		}
	}
	// Inferred write sets must stay inside the declared ownership.
	sw := a.ComponentWrites("sender")
	for v := range sw {
		if v != hc.Sig() && v != hc.Val() {
			t.Errorf("sender inferred to write %q", v)
		}
	}
	if rw := a.ComponentWrites("receiver"); !rw[hc.Ack()] || len(rw) != 1 {
		t.Errorf("receiver writes = %v, want {%s}", rw, hc.Ack())
	}
}

func TestAnalyzeQueueInfersQueueDomain(t *testing.T) {
	cfg := queue.Config{N: 1, Vals: 2}
	comps := []*spec.Component{
		queue.QE("QE", queue.In, queue.Out, cfg.ValueDomain()),
		queue.QM("QM", cfg.N, queue.In, queue.Out, "q", cfg.ValueDomain()),
	}
	// Withhold the queue's declared domain: the analyzer must derive the
	// length bound from the Enq guard alone.
	domains := cfg.Domains()
	delete(domains, "q")
	a := absint.Analyze(comps, nil, absint.Options{Declared: domains})
	q := a.VarDom("q")
	if c, fin := q.Card(); !fin || c != 3 {
		t.Fatalf("inferred q domain %s has card %d, want 3 (len ≤ 1 over 2 values)", q, c)
	}
	b := a.Bound()
	if !b.Finite || b.States != 192 {
		t.Fatalf("queue bound = %s, want ≤ 192 states", b)
	}
}
