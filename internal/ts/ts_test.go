package ts

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// counterComponent counts x from 0 up to top, then stops.
func counterComponent(top int64) *spec.Component {
	inc := form.And(
		form.Lt(form.Var("x"), form.IntC(top)),
		form.Eq(form.PrimedVar("x"), form.Add(form.Var("x"), form.IntC(1))),
	)
	return &spec.Component{
		Name:    "counter",
		Outputs: []string{"x"},
		Init:    form.Eq(form.Var("x"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Inc", Def: inc}},
	}
}

func counterSystem(top int64) *System {
	return &System{
		Name:       "counter",
		Components: []*spec.Component{counterComponent(top)},
		Domains:    map[string][]value.Value{"x": value.Ints(0, top)},
	}
}

func TestBuildCounterGraph(t *testing.T) {
	g, err := counterSystem(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", g.NumStates())
	}
	if len(g.Inits) != 1 {
		t.Fatalf("inits = %d", len(g.Inits))
	}
	// Every state has a self-loop; non-top states have one more successor.
	for id := 0; id < g.NumStates(); id++ {
		x, _ := g.States[id].MustGet("x").AsInt()
		want := 2
		if x == 3 {
			want = 1
		}
		if g.Degree(id) != want {
			t.Errorf("state x=%d has %d successors, want %d", x, g.Degree(id), want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	// Two components owning the same variable.
	sys := &System{
		Name:       "dup",
		Components: []*spec.Component{counterComponent(1), counterComponent(1)},
		Domains:    map[string][]value.Value{"x": value.Bits()},
	}
	if err := sys.Validate(); err == nil {
		t.Error("shared ownership should be rejected")
	}
	// Missing domain.
	sys2 := counterSystem(1)
	sys2.Domains = map[string][]value.Value{}
	if err := sys2.Validate(); err == nil {
		t.Error("missing domain should be rejected")
	}
}

func TestFreeVarsChangeArbitrarily(t *testing.T) {
	// A component that owns y and reads free variable x.
	copyY := form.And(form.Eq(form.PrimedVar("y"), form.Var("x")), form.Unchanged("x"))
	sys := &System{
		Name: "free-x",
		Components: []*spec.Component{{
			Name:    "copier",
			Inputs:  []string{"x"},
			Outputs: []string{"y"},
			Init:    form.Eq(form.Var("y"), form.IntC(0)),
			Actions: []spec.Action{{Name: "Copy", Def: copyY}},
		}},
		Domains: map[string][]value.Value{"x": value.Bits(), "y": value.Bits()},
	}
	if got := sys.FreeVars(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("FreeVars = %v", got)
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	// x free: both initial values; y then copies: all 4 states reachable.
	if g.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", g.NumStates())
	}
	// From (x=0,y=0): successors include x flipping freely.
	id := g.ID(state.FromPairs("x", value.Int(0), "y", value.Int(0)))
	if id < 0 {
		t.Fatal("state not found")
	}
	foundFlip := false
	g.ForEachSucc(id, func(to int) bool {
		if g.States[to].MustGet("x").Equal(value.Int(1)) {
			foundFlip = true
		}
		return true
	})
	if !foundFlip {
		t.Error("free variable x should be able to change on any step")
	}
}

func TestStepConstraintsPruneEdges(t *testing.T) {
	// Two independent counters; a constraint forbids simultaneous change.
	a := counterComponent(1)
	b := counterComponent(1).Rename("counter-y", map[string]string{"x": "y"})
	mk := func(cons []StepConstraint) *Graph {
		sys := &System{
			Name:        "pair",
			Components:  []*spec.Component{a, b},
			Constraints: cons,
			Domains:     map[string][]value.Value{"x": value.Bits(), "y": value.Bits()},
		}
		g, err := sys.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	unconstrained := mk(nil)
	// Without constraints the diagonal step (0,0)→(1,1) exists.
	from := unconstrained.ID(state.FromPairs("x", value.Int(0), "y", value.Int(0)))
	diag := unconstrained.ID(state.FromPairs("x", value.Int(1), "y", value.Int(1)))
	if !unconstrained.HasEdge(from, diag) {
		t.Fatal("expected diagonal edge without constraints")
	}
	constrained := mk([]StepConstraint{{
		Name:   "interleave",
		Action: form.DisjointSteps([]string{"x"}, []string{"y"})[0],
	}})
	from = constrained.ID(state.FromPairs("x", value.Int(0), "y", value.Int(0)))
	diag = constrained.ID(state.FromPairs("x", value.Int(1), "y", value.Int(1)))
	if diag >= 0 && constrained.HasEdge(from, diag) {
		t.Error("Disjoint constraint should prune the diagonal edge")
	}
}

func TestPathTo(t *testing.T) {
	g, err := counterSystem(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	target := g.ID(state.FromPairs("x", value.Int(3)))
	path := g.PathTo(target)
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	for i, id := range path {
		if x, _ := g.States[id].MustGet("x").AsInt(); x != int64(i) {
			t.Errorf("path[%d] has x=%d", i, x)
		}
	}
}

func TestSCCs(t *testing.T) {
	// Counter to 2: each state is its own SCC (self-loops), reverse
	// topological order puts x=2 first.
	g, err := counterSystem(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	sccs := g.SCCs(nil, nil)
	if len(sccs) != 3 {
		t.Fatalf("%d SCCs, want 3", len(sccs))
	}
	if x, _ := g.States[sccs[0][0]].MustGet("x").AsInt(); x != 2 {
		t.Errorf("first SCC (reverse topological) should be x=2, got %d", x)
	}
	// Restricting away a state.
	sccs = g.SCCs(func(id int) bool {
		x, _ := g.States[id].MustGet("x").AsInt()
		return x != 1
	}, nil)
	if len(sccs) != 2 {
		t.Errorf("filtered: %d SCCs, want 2", len(sccs))
	}
}

func TestMonitorProductSafety(t *testing.T) {
	// Monitor "x stayed below 2".
	g, err := counterSystem(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	mon := SafetyMonitor("$ok", form.TrueE, []form.Expr{form.Lt(form.PrimedVar("x"), form.IntC(2))}, true)
	prod, err := Product(g, []*Monitor{mon})
	if err != nil {
		t.Fatal(err)
	}
	// The product distinguishes x=2 reached (monitor dead) and beyond.
	deadSeen := false
	for _, s := range prod.States {
		alive, _ := s.MustGet("$ok").AsBool()
		x, _ := s.MustGet("x").AsInt()
		if x >= 2 && alive {
			t.Errorf("monitor should be dead at x=%d: %s", x, s)
		}
		if !alive {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Error("monitor death never observed")
	}
}

func TestPlusMonitorFreezesSubscript(t *testing.T) {
	g, err := counterSystem(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	// E: x stays below 2 (dies on the step reaching 2). v = ⟨x⟩: after the
	// death step, x must freeze.
	mon := PlusMonitor("$plus", form.TrueE,
		[]form.Expr{form.Lt(form.PrimedVar("x"), form.IntC(2))},
		form.VarTuple("x"))
	prod, err := Product(g, []*Monitor{mon})
	if err != nil {
		t.Fatal(err)
	}
	// No product edge may leave a dead state while changing x.
	prod.ForEachEdge(func(from, to int) bool {
		s, u := prod.States[from], prod.States[to]
		alive, _ := s.MustGet("$plus").AsBool()
		if !alive && !s.MustGet("x").Equal(u.MustGet("x")) {
			t.Errorf("frozen x changed: %s -> %s", s, u)
		}
		return true
	})
	// x=3 must be unreachable in the product: reaching 3 requires the step
	// 2→3 after E died on 1→2... actually the death step 1→2 may change x,
	// then x freezes at 2, so 3 is unreachable while 2 is reachable dead.
	for _, s := range prod.States {
		if s.MustGet("x").Equal(value.Int(3)) {
			alive, _ := s.MustGet("$plus").AsBool()
			if !alive {
				t.Errorf("x=3 reachable dead: %s", s)
			}
		}
	}
}
