package ts

import (
	"fmt"
	"strings"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/obs"
	"opentla/internal/state"
	"opentla/internal/value"
)

// Monitor is a (possibly nondeterministic) safety automaton run in product
// with a state graph. Its current value is recorded in the product states
// under Var, so ordinary state predicates can inspect it.
//
// Monitors express history-dependent constraints such as the paper's
// C(E) +v operator (§4.1): "E held for some prefix, after which v froze".
type Monitor struct {
	Var string
	// Domain lists the monitor's possible values (used for the product
	// context's domains).
	Domain []value.Value
	// Desc is a canonical description of the monitor's semantics, used to
	// content-address monitor products in the graph cache. Constructors
	// (SafetyMonitor, PlusMonitor) fill it from their defining formulas; a
	// hand-rolled monitor may leave it empty, which disables caching for any
	// product it participates in (opaque callbacks cannot be fingerprinted).
	Desc string
	// Init returns the allowed starting values in an initial state
	// (empty = state disallowed).
	Init func(s *state.State) ([]value.Value, error)
	// Step returns the allowed next values given the base step and the
	// current value (empty = edge disallowed for this value).
	Step func(st state.Step, cur value.Value) ([]value.Value, error)
}

// Product runs the monitors in lockstep with the graph and returns the
// product graph. Product states extend base states with the monitor
// variables; edges exist where the base edge exists and every monitor
// permits it. The product context's domains include the monitor variables.
//
// The product is explored by the same parallel frontier engine as BuildWith
// (worker count g.Sys.Workers, deterministic numbering at any setting) and
// inherits the base graph's resource meter: product states and edges draw
// from the same budget as the base exploration, and exhaustion aborts with
// an *engine.BudgetError. Panics inside monitor callbacks are contained as
// *engine.EngineError with the current product state's fingerprint.
func Product(g *Graph, mons []*Monitor) (p *Graph, err error) {
	meter := g.Meter()
	defer obs.SpanFromMeter(meter, "product:"+g.Sys.Name)()
	defer engine.Capture(&err, "ts.Product", nil)
	domains := make(map[string][]value.Value, len(g.Ctx.Domains)+len(mons))
	for k, v := range g.Ctx.Domains {
		domains[k] = v
	}
	for _, m := range mons {
		if _, dup := domains[m.Var]; dup {
			return nil, fmt.Errorf("monitor variable %q collides with a system variable", m.Var)
		}
		domains[m.Var] = m.Domain
	}

	// When the base graph was built under symmetry, the product inherits the
	// reduction: product states are canonicalized on their base part (monitor
	// values ride along unchanged), and every product edge records its real
	// successor. Monitors always evaluate on genuine base steps — the base
	// edge's real successor — never on representative-to-representative
	// pseudo-steps.
	pcanon := productCanon(g, mons)

	// Products are cached like base graphs, keyed by the base system's
	// description extended with the monitors' semantic descriptions. A
	// monitor without a Desc disables caching for this product.
	var desc string
	var resumeSnap *Snapshot
	if g.Sys.Cache != nil {
		if d, ok := productDesc(g.Sys, mons); ok {
			desc = d
			if snap := cacheLoad(g.Sys.Cache, meter, desc); snap != nil {
				return graphFromSnapshot(g.Sys, form.NewCtx(domains), meter, snap, pcanon), nil
			}
			if g.Sys.Resume {
				snap, lerr := g.Sys.Cache.LoadCheckpoint(desc)
				switch {
				case lerr != nil:
					meter.Note("cache-corrupt", fmt.Sprintf("product checkpoint unusable, cold build: %v", lerr))
				case snap != nil && !validSnapshot(snap, false):
					meter.Note("cache-corrupt", "product checkpoint fails validation, cold build")
				case snap != nil:
					resumeSnap = snap
					meter.Note("resume", fmt.Sprintf("product of %s: resuming from level %d (%d states)",
						g.Sys.Name, snap.Level, len(snap.States)))
				}
			}
		}
	}

	// Initial product states. A base init may admit no monitor values, and
	// all of them may: an empty product graph is a legal (vacuous) outcome,
	// unlike an empty base graph.
	var inits []*state.State
	if resumeSnap == nil {
		for _, bid := range g.Inits {
			base := g.States[bid]
			combos, err := monitorInitCombos(mons, base)
			if err != nil {
				return nil, err
			}
			for _, combo := range combos {
				inits = append(inits, base.WithAll(combo))
			}
		}
	}

	// The base id of a product state is recoverable from the state itself:
	// stripping the monitor variables yields the base state, which the base
	// graph's fingerprint index resolves. This replaces the baseOf side
	// table of the sequential implementation and keeps expansion stateless,
	// hence safe for concurrent workers.
	res, err := explore(exploreParams{
		op:        "ts.Product",
		workers:   g.Sys.Workers,
		limit:     g.Sys.maxStates(),
		limitName: "monitor product",
		meter:     meter,
		inits:     inits,
		expand: func(cur *state.State, _ func(*state.State) bool) ([]*state.State, error) {
			base := BaseState(cur, mons)
			bid := g.ID(base)
			if bid < 0 {
				return nil, fmt.Errorf("ts.Product: base state %s not in base graph", base)
			}
			var out []*state.State
			var expErr error
			g.ForEachSuccStep(bid, func(tbid int, real *state.State) bool {
				baseStep := state.Step{From: g.States[bid], To: real}
				combos, cerr := monitorStepCombos(mons, baseStep, cur)
				if cerr != nil {
					expErr = cerr
					return false
				}
				for _, combo := range combos {
					out = append(out, real.WithAll(combo))
				}
				return true
			})
			if expErr != nil {
				return nil, expErr
			}
			return out, nil
		},
		canon:        pcanon,
		resume:       resumeSnap,
		onCheckpoint: checkpointSaver(g.Sys.Cache, meter, desc),
	})
	if err != nil {
		return nil, err
	}
	if pcanon != nil && res.symCollapsed > 0 {
		meter.NoteReduction("ts.Product", engine.ReductionStats{SymCollapsed: res.symCollapsed})
	}
	prod := &Graph{
		Sys:        g.Sys,
		Ctx:        form.NewCtx(domains),
		States:     res.states,
		Inits:      res.inits,
		offsets:    res.offsets,
		targets:    res.targets,
		edgeStates: res.edgeStates,
		idx:        res.idx,
		meter:      meter,
		reduced:    g.reduced,
		canon:      pcanon,
	}
	cacheStore(g.Sys.Cache, meter, desc, prod)
	return prod, nil
}

// productCanon lifts the base graph's symmetry canonicalizer to product
// states: the base part is canonicalized, the monitor bindings ride along
// unchanged. Returns nil when the base graph has no canonicalizer. Like
// every canon function, it returns its argument pointer when the state is
// already canonical.
func productCanon(g *Graph, mons []*Monitor) func(*state.State) *state.State {
	if g.canon == nil {
		return nil
	}
	names := make([]string, len(mons))
	for i, m := range mons {
		names[i] = m.Var
	}
	return func(s *state.State) *state.State {
		base := s.Drop(names)
		c := g.canon(base)
		if c == base {
			return s
		}
		binds := make(map[string]value.Value, len(names))
		for _, n := range names {
			if v, ok := s.Get(n); ok {
				binds[n] = v
			}
		}
		return c.WithAll(binds)
	}
}

// BaseState strips monitor variables from a product state.
func BaseState(s *state.State, mons []*Monitor) *state.State {
	names := make([]string, len(mons))
	for i, m := range mons {
		names[i] = m.Var
	}
	return s.Drop(names)
}

func monitorInitCombos(mons []*Monitor, base *state.State) ([]map[string]value.Value, error) {
	combos := []map[string]value.Value{{}}
	for _, m := range mons {
		vals, err := m.Init(base)
		if err != nil {
			return nil, fmt.Errorf("monitor %s init on %s: %w", m.Var, base, err)
		}
		combos = extendCombos(combos, m.Var, vals)
		if len(combos) == 0 {
			return nil, nil
		}
	}
	return combos, nil
}

func monitorStepCombos(mons []*Monitor, st state.Step, cur *state.State) ([]map[string]value.Value, error) {
	combos := []map[string]value.Value{{}}
	for _, m := range mons {
		curVal, ok := cur.Get(m.Var)
		if !ok {
			return nil, fmt.Errorf("monitor %s: variable missing from product state %s", m.Var, cur)
		}
		vals, err := m.Step(st, curVal)
		if err != nil {
			return nil, fmt.Errorf("monitor %s step on %s: %w", m.Var, st, err)
		}
		combos = extendCombos(combos, m.Var, vals)
		if len(combos) == 0 {
			return nil, nil
		}
	}
	return combos, nil
}

func extendCombos(combos []map[string]value.Value, name string, vals []value.Value) []map[string]value.Value {
	if len(vals) == 0 {
		return nil
	}
	out := make([]map[string]value.Value, 0, len(combos)*len(vals))
	for _, c := range combos {
		for _, v := range vals {
			n := make(map[string]value.Value, len(c)+1)
			for k, vv := range c {
				n[k] = vv
			}
			n[name] = v
			out = append(out, n)
		}
	}
	return out
}

// monitorDesc renders the canonical description of a constructor-built
// monitor from its defining formulas, so equal semantics yield equal cache
// keys regardless of how the closures were assembled.
func monitorDesc(kind string, init form.Expr, squares []form.Expr, v form.Expr, strict bool) string {
	var sb strings.Builder
	sb.WriteString(kind)
	sb.WriteString("-monitor(init=")
	writeExpr(&sb, init)
	sb.WriteString(", squares=[")
	for i, sq := range squares {
		if i > 0 {
			sb.WriteString("; ")
		}
		writeExpr(&sb, sq)
	}
	sb.WriteString("]")
	if v != nil {
		sb.WriteString(", v=")
		writeExpr(&sb, v)
	}
	if strict {
		sb.WriteString(", strict")
	}
	sb.WriteString(")")
	return sb.String()
}

// SafetyMonitor builds a two-state monitor tracking whether the safety
// formula with initial predicate init and step actions boxes (each already
// in [A]_v form) has held so far: the monitor value is TRUE while the
// prefix satisfies the formula and FALSE forever after. Both transitions
// out of TRUE are offered when the step satisfies the boxes, modelling the
// nondeterministic "die early" choice needed for +v (see PlusMonitor).
//
// If strict is true the monitor only dies when the safety formula is
// actually violated (no early death) — the right semantics for tracking
// closure death indices.
func SafetyMonitor(varName string, init form.Expr, squares []form.Expr, strict bool) *Monitor {
	// The squares are evaluated once per product edge per monitor value;
	// lazily compiled predicates (layout learned from the first step) keep
	// that hot path positional and allocation-free.
	sqPreds := make([]form.CompiledPred, len(squares))
	for i, sq := range squares {
		sqPreds[i] = form.LazyPred(sq)
	}
	var initPred form.CompiledPred
	if init != nil {
		initPred = form.LazyPred(init)
	}
	return &Monitor{
		Var:    varName,
		Domain: value.Bools(),
		Desc:   monitorDesc("safety", init, squares, nil, strict),
		Init: func(s *state.State) ([]value.Value, error) {
			ok := true
			if initPred != nil {
				var err error
				ok, err = initPred(state.Step{From: s})
				if err != nil {
					return nil, err
				}
			}
			if ok {
				return []value.Value{value.True}, nil
			}
			return []value.Value{value.False}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			alive, _ := cur.AsBool()
			if !alive {
				return []value.Value{value.False}, nil
			}
			ok := true
			for _, sq := range sqPreds {
				good, err := sq(st)
				if err != nil {
					return nil, err
				}
				if !good {
					ok = false
					break
				}
			}
			if ok {
				if strict {
					return []value.Value{value.True}, nil
				}
				return []value.Value{value.True, value.False}, nil
			}
			return []value.Value{value.False}, nil
		},
	}
}

// PlusMonitor builds the monitor for C(E) +v (§4.1): while TRUE, the
// E-safety conjuncts must hold on every step; the monitor may drop to FALSE
// at any time (or start FALSE), after which the state function v must never
// change. Edges violating the frozen-v requirement in the FALSE state are
// pruned from the product.
func PlusMonitor(varName string, init form.Expr, squares []form.Expr, v form.Expr) *Monitor {
	unchanged := form.LazyPred(form.UnchangedExpr(v))
	sqPreds := make([]form.CompiledPred, len(squares))
	for i, sq := range squares {
		sqPreds[i] = form.LazyPred(sq)
	}
	var initPred form.CompiledPred
	if init != nil {
		initPred = form.LazyPred(init)
	}
	return &Monitor{
		Var:    varName,
		Domain: value.Bools(),
		Desc:   monitorDesc("plus", init, squares, v, false),
		Init: func(s *state.State) ([]value.Value, error) {
			ok := true
			if initPred != nil {
				var err error
				ok, err = initPred(state.Step{From: s})
				if err != nil {
					return nil, err
				}
			}
			if ok {
				// May start alive, or immediately frozen (n = 0).
				return []value.Value{value.True, value.False}, nil
			}
			return []value.Value{value.False}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			alive, _ := cur.AsBool()
			if !alive {
				frozen, err := unchanged(st)
				if err != nil {
					return nil, err
				}
				if frozen {
					return []value.Value{value.False}, nil
				}
				return nil, nil // v changed after freezing: edge disallowed
			}
			ok := true
			for _, sq := range sqPreds {
				good, err := sq(st)
				if err != nil {
					return nil, err
				}
				if !good {
					ok = false
					break
				}
			}
			if ok {
				// Stay alive, or die with freezing starting at the target
				// state (the dying step itself may change v).
				return []value.Value{value.True, value.False}, nil
			}
			// E violated on this step: freezing starts at the target.
			return []value.Value{value.False}, nil
		},
	}
}
